package alpusim

// One testing.B benchmark per table and figure of the paper's evaluation
// section (§VI), plus ablation benches for the design choices DESIGN.md
// calls out. Simulated quantities are reported as custom metrics
// (sim-ns-*): wall-clock ns/op measures the simulator, the sim-ns metrics
// measure the modelled hardware.
//
// Regenerate everything at full sweep resolution with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/alpusim -experiment all

import (
	"runtime"
	"testing"

	"alpusim/internal/alpu"
	"alpusim/internal/bench"
	"alpusim/internal/fpga"
	"alpusim/internal/match"
	"alpusim/internal/mpi"
	"alpusim/internal/nic"
	"alpusim/internal/portals"
	"alpusim/internal/sim"
)

// --- Tables IV and V -------------------------------------------------

func benchmarkFPGATable(b *testing.B, v alpu.Variant) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		for _, pub := range fpga.PublishedFor(v) {
			e := fpga.PrototypeParams(v, pub.Cells, pub.BlockSize).Estimate()
			for _, pair := range [...][2]float64{
				{float64(e.LUTs), float64(pub.LUTs)},
				{float64(e.FFs), float64(pub.FFs)},
				{float64(e.Slices), float64(pub.Slices)},
			} {
				err := 100 * abs(pair[0]-pair[1]) / pair[1]
				if err > maxErr {
					maxErr = err
				}
			}
		}
	}
	b.ReportMetric(maxErr, "max-err-%")
}

// BenchmarkTable4 regenerates Table IV (posted receives ALPU prototypes).
func BenchmarkTable4(b *testing.B) { benchmarkFPGATable(b, alpu.PostedReceives) }

// BenchmarkTable5 regenerates Table V (unexpected messages ALPU).
func BenchmarkTable5(b *testing.B) { benchmarkFPGATable(b, alpu.UnexpectedMessages) }

// --- Figure 5 --------------------------------------------------------

// benchJobs fans each sweep's independent worlds across the machine; the
// sim-ns metrics are identical at any setting (see internal/sweep), only
// wall-clock ns/op changes.
var benchJobs = runtime.GOMAXPROCS(0)

// fig5Rep measures the representative cut of a Fig. 5 surface: base
// latency, the in-ALPU (or in-cache) region, and the deep-queue region.
func fig5Rep(b *testing.B, kind bench.NICKind) {
	var base, mid, deep sim.Time
	for i := 0; i < b.N; i++ {
		pts := bench.RunPreposted(bench.PrepostedConfig{
			NIC:       bench.NICConfig(kind),
			QueueLens: []int{0, 200, 400},
			Fracs:     []float64{1.0},
			Jobs:      benchJobs,
		})
		base, mid, deep = pts[0].Latency, pts[1].Latency, pts[2].Latency
	}
	b.ReportMetric(base.Nanoseconds(), "sim-ns-q0")
	b.ReportMetric(mid.Nanoseconds(), "sim-ns-q200")
	b.ReportMetric(deep.Nanoseconds(), "sim-ns-q400")
}

// BenchmarkFig5Baseline regenerates the Fig. 5(a,b) cut: baseline NIC.
func BenchmarkFig5Baseline(b *testing.B) { fig5Rep(b, bench.Baseline) }

// BenchmarkFig5ALPU128 regenerates the Fig. 5(c,d) cut: 128-entry ALPU.
func BenchmarkFig5ALPU128(b *testing.B) { fig5Rep(b, bench.ALPU128) }

// BenchmarkFig5ALPU256 regenerates the Fig. 5(e,f) cut: 256-entry ALPU.
func BenchmarkFig5ALPU256(b *testing.B) { fig5Rep(b, bench.ALPU256) }

// --- Figure 6 --------------------------------------------------------

func fig6Rep(b *testing.B, kind bench.NICKind) {
	var short, mid, deep sim.Time
	for i := 0; i < b.N; i++ {
		pts := bench.RunUnexpected(bench.UnexpectedConfig{
			NIC:       bench.NICConfig(kind),
			QueueLens: []int{0, 100, 300},
			Jobs:      benchJobs,
		})
		short, mid, deep = pts[0].Latency, pts[1].Latency, pts[2].Latency
	}
	b.ReportMetric(short.Nanoseconds(), "sim-ns-u0")
	b.ReportMetric(mid.Nanoseconds(), "sim-ns-u100")
	b.ReportMetric(deep.Nanoseconds(), "sim-ns-u300")
}

// BenchmarkFig6Baseline regenerates the Fig. 6 baseline series cut.
func BenchmarkFig6Baseline(b *testing.B) { fig6Rep(b, bench.Baseline) }

// BenchmarkFig6ALPU128 regenerates the Fig. 6 128-entry ALPU series cut.
func BenchmarkFig6ALPU128(b *testing.B) { fig6Rep(b, bench.ALPU128) }

// BenchmarkFig6ALPU256 regenerates the Fig. 6 256-entry ALPU series cut.
func BenchmarkFig6ALPU256(b *testing.B) { fig6Rep(b, bench.ALPU256) }

// --- Ablations (DESIGN.md §4) ----------------------------------------

// BenchmarkAblationBlockSize exercises the §III-B block-size trade-off:
// smaller blocks clock faster but cost more logic; the pipeline depth
// follows the geometry rule. Reported per block size: device-level match
// latency and the estimator's slice count.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, bs := range []int{8, 16, 32} {
		bs := bs
		b.Run(benchName("block", bs), func(b *testing.B) {
			cfg := alpu.Config{
				Variant:  alpu.PostedReceives,
				Geometry: alpu.Geometry{Cells: 256, BlockSize: bs},
				// MatchCycles 0: use the geometry's pipeline rule, at the
				// FPGA-measured clock for this block size.
			}
			est := fpga.PrototypeParams(alpu.PostedReceives, 256, bs).Estimate()
			cfg.Clock = sim.MHz(int64(est.FreqMHz))
			var matchNs float64
			for i := 0; i < b.N; i++ {
				matchNs = deviceMatchLatency(cfg)
			}
			b.ReportMetric(matchNs, "sim-ns-match")
			b.ReportMetric(float64(est.Slices), "slices")
			b.ReportMetric(est.FreqMHz, "MHz")
		})
	}
}

// deviceMatchLatency measures one probe through an idle, single-entry
// device.
func deviceMatchLatency(cfg alpu.Config) float64 {
	eng := sim.NewEngine()
	dev := alpu.MustDevice(eng, "alpu", cfg)
	var lat sim.Time
	eng.Spawn("drv", func(p *sim.Process) {
		dev.PushCommand(alpu.Command{Op: alpu.OpStartInsert})
		p.WaitCond(dev.Results.NotEmpty, func() bool { return dev.Results.Len() > 0 })
		dev.Results.Pop()
		bits, mask := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 3})
		dev.PushCommand(alpu.Command{Op: alpu.OpInsert, Bits: bits, Mask: mask, Tag: 1})
		dev.PushCommand(alpu.Command{Op: alpu.OpStopInsert})
		p.Sleep(sim.Microsecond)
		start := p.Now()
		dev.PushProbe(alpu.Probe{Bits: match.Pack(match.Header{Context: 1, Source: 2, Tag: 3})})
		p.WaitCond(dev.Results.NotEmpty, func() bool { return dev.Results.Len() > 0 })
		lat = p.Now() - start
	})
	eng.Run()
	return lat.Nanoseconds()
}

// BenchmarkAblationThreshold exercises the §VI-B heuristic: with a
// threshold of 10 the ALPU stays disengaged for short queues, avoiding
// its ~80 ns interface penalty, while long queues still get the full
// benefit. (The preposted workload keeps a handful of matching receives
// posted, so a queue-length-2 point holds ~5 entries.)
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []int{0, 10} {
		th := th
		b.Run(benchName("threshold", th), func(b *testing.B) {
			var shortQ, longQ sim.Time
			for i := 0; i < b.N; i++ {
				cfg := nic.Config{UseALPU: true, Cells: 256, Threshold: th}
				pts := bench.RunPreposted(bench.PrepostedConfig{
					NIC: cfg, QueueLens: []int{2, 100}, Fracs: []float64{1.0}, Jobs: benchJobs,
				})
				shortQ, longQ = pts[0].Latency, pts[1].Latency
			}
			b.ReportMetric(shortQ.Nanoseconds(), "sim-ns-q2")
			b.ReportMetric(longQ.Nanoseconds(), "sim-ns-q100")
		})
	}
}

// BenchmarkAblationHashList exercises the §II discussion: hash-table
// queues help exact-match search but penalise insertion and wildcard
// probes; the paper rejected them for the latency-critical short-queue
// case. Reported: zero-queue latency (insert cost visible) and deep-queue
// latency (search win visible).
func BenchmarkAblationHashList(b *testing.B) {
	for _, cfg := range []struct {
		name string
		nic  nic.Config
	}{
		{"list", nic.Config{}},
		{"hash", nic.Config{UseHashList: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var q0, q400 sim.Time
			for i := 0; i < b.N; i++ {
				pts := bench.RunPreposted(bench.PrepostedConfig{
					NIC: cfg.nic, QueueLens: []int{0, 400}, Fracs: []float64{1.0}, Jobs: benchJobs,
				})
				q0, q400 = pts[0].Latency, pts[1].Latency
			}
			b.ReportMetric(q0.Nanoseconds(), "sim-ns-q0")
			b.ReportMetric(q400.Nanoseconds(), "sim-ns-q400")
		})
	}
}

// BenchmarkAblationCompaction compares the prototype's block-granular
// "space available" rule with the wider any-higher-block alternative
// §III-B mentions. The paper argues the restricted rule "is likely
// sufficient for all real cases": end-to-end latency should match, with
// the wide rule draining holes in fewer active cycles (sim-shift-cycles)
// and a burst of inserts into a fragmented array completing no later.
func BenchmarkAblationCompaction(b *testing.B) {
	for _, any := range []bool{false, true} {
		any := any
		name := "block-rule"
		if any {
			name = "any-block"
		}
		b.Run(name, func(b *testing.B) {
			var burst, lat sim.Time
			for i := 0; i < b.N; i++ {
				burst = insertBurstTime(any)
				acfg := alpu.DefaultConfig(alpu.PostedReceives, 256)
				acfg.CompactAnyBlock = any
				ncfg := nic.Config{UseALPU: true, Cells: 256, ALPUConfig: &acfg}
				pts := bench.RunPreposted(bench.PrepostedConfig{
					NIC: ncfg, QueueLens: []int{100}, Fracs: []float64{1.0},
				})
				lat = pts[0].Latency
			}
			b.ReportMetric(burst.Nanoseconds(), "sim-ns-burst")
			b.ReportMetric(lat.Nanoseconds(), "sim-ns-q100")
		})
	}
}

// insertBurstTime fragments a device (spaced inserts), then times a burst
// of inserts that must wait for holes to drain to cell 0.
func insertBurstTime(anyBlock bool) sim.Time {
	cfg := alpu.DefaultConfig(alpu.PostedReceives, 256)
	cfg.CompactAnyBlock = anyBlock
	eng := sim.NewEngine()
	dev := alpu.MustDevice(eng, "alpu", cfg)
	var burst sim.Time
	eng.Spawn("drv", func(p *sim.Process) {
		bits, mask := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 3})
		ack := func() {
			p.WaitCond(dev.Results.NotEmpty, func() bool { return dev.Results.Len() > 0 })
			dev.Results.Pop()
		}
		// Fragment: inserts spaced so entries migrate apart.
		for k := 0; k < 64; k++ {
			dev.PushCommand(alpu.Command{Op: alpu.OpStartInsert})
			ack()
			dev.PushCommand(alpu.Command{Op: alpu.OpInsert, Bits: bits, Mask: mask, Tag: uint32(k)})
			dev.PushCommand(alpu.Command{Op: alpu.OpStopInsert})
			p.Sleep(20 * sim.Nanosecond)
		}
		// Burst.
		start := p.Now()
		dev.PushCommand(alpu.Command{Op: alpu.OpStartInsert})
		ack()
		for k := 0; k < 128; k++ {
			for !dev.PushCommand(alpu.Command{Op: alpu.OpInsert, Bits: bits, Mask: mask, Tag: uint32(100 + k)}) {
				p.WaitCond(dev.Commands.NotFull, func() bool { return !dev.Commands.Full() })
			}
		}
		for !dev.PushCommand(alpu.Command{Op: alpu.OpStopInsert}) {
			p.WaitCond(dev.Commands.NotFull, func() bool { return !dev.Commands.Full() })
		}
		for dev.InsertMode() || dev.Commands.Len() > 0 {
			p.Sleep(10 * sim.Nanosecond)
		}
		burst = p.Now() - start
	})
	eng.Run()
	return burst
}

// BenchmarkAblationInsertBatch compares conglomerated inserts (§IV-B)
// against one INSERT per START/STOP episode: batching amortises the
// episode handshake across the queue build.
func BenchmarkAblationInsertBatch(b *testing.B) {
	for _, batchMax := range []int{0, 1} {
		batchMax := batchMax
		name := "batched"
		if batchMax == 1 {
			name = "single"
		}
		b.Run(name, func(b *testing.B) {
			var buildDone sim.Time
			var episodes uint64
			for i := 0; i < b.N; i++ {
				cfg := nic.Config{UseALPU: true, Cells: 256, InsertBatchMax: batchMax}
				w := mpi.RunPrograms(mpi.Config{Ranks: 2, NIC: cfg}, []mpi.Program{
					func(r *mpi.Rank) { r.Barrier(); r.Send(1, 0x500, 0) },
					func(r *mpi.Rank) {
						for k := 0; k < 200; k++ {
							r.Irecv(0, 0x100+k, 0)
						}
						req := r.Irecv(0, 0x500, 0)
						r.Barrier()
						r.Wait(req)
						buildDone = r.Now()
					},
				})
				episodes = w.NICs[1].Stats().InsertEpisodes
			}
			b.ReportMetric(buildDone.Nanoseconds(), "sim-ns-total")
			b.ReportMetric(float64(episodes), "episodes")
		})
	}
}

// --- Gap / message rate (§I motivation; §VI-B Elan comparison) --------

// BenchmarkGap measures the receiver-side inter-message gap at three
// match depths for each NIC, plus the Quadrics-class comparison point.
func BenchmarkGap(b *testing.B) {
	configs := []struct {
		name string
		nic  nic.Config
	}{
		{"baseline", bench.NICConfig(bench.Baseline)},
		{"alpu-256", bench.NICConfig(bench.ALPU256)},
		{"elan4-class", bench.ElanNICConfig()},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var pts []bench.GapPoint
			for i := 0; i < b.N; i++ {
				pts = bench.RunGap(bench.GapConfig{NIC: cfg.nic, Depths: []int{0, 100}, Jobs: benchJobs})
			}
			b.ReportMetric(pts[0].NsPerMsg, "sim-ns-msg-d0")
			b.ReportMetric(pts[1].NsPerMsg, "sim-ns-msg-d100")
		})
	}
}

// --- Portals extension (§III-A footnote 7, §VIII future work) ---------

// BenchmarkPortalsWideMatch measures the full-width (64-bit match, mask
// per bit) configuration on a Portals-style match list: software
// traversal cost grows with the list, the ALPU-fronted table stays flat.
// The fpga metrics report what the wide unit would cost on the prototype
// part.
func BenchmarkPortalsWideMatch(b *testing.B) {
	est := fpga.PortalsParams(128, 16).Estimate()
	for _, depth := range []int{8, 64, 120} {
		depth := depth
		b.Run(benchName("depth", depth), func(b *testing.B) {
			var devNs float64
			for i := 0; i < b.N; i++ {
				t := portals.NewAccelTable(128)
				for k := 0; k < depth; k++ {
					t.Attach(&portals.MatchEntry{
						Match:   portals.MatchBits(0xABCD_0000_0000_0000 | uint64(k)),
						UseOnce: true,
					})
				}
				// Match the deepest entry; the unit answers in pipeline
				// time regardless of depth.
				before := t.DeviceTime
				t.ProcessPut(portals.Put{Bits: portals.MatchBits(0xABCD_0000_0000_0000 | uint64(depth-1))}, 0)
				devNs = (t.DeviceTime - before).Nanoseconds()
			}
			b.ReportMetric(devNs, "sim-ns-match")
			b.ReportMetric(float64(est.Slices), "wide-unit-slices")
			b.ReportMetric(est.FreqMHz, "wide-unit-MHz")
		})
	}
}

// --- helpers ----------------------------------------------------------

func benchName(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
