// Appstudy reproduces the motivation study behind the ALPU (the paper's
// §I-II, after refs [8] and [9]) at example scale: run three application
// patterns, watch the MPI queues grow with the process count, and see
// where the accelerator pays.
//
//	go run ./examples/appstudy
package main

import (
	"fmt"

	"alpusim/internal/nic"
	"alpusim/internal/stats"
	"alpusim/internal/workloads"
)

func main() {
	base := nic.Config{}
	alpu := nic.Config{UseALPU: true, Cells: 128}

	fmt.Println("Queue behaviour by application pattern (baseline NIC):")
	tb := stats.NewTable("pattern", "ranks", "peak posted", "peak unexpected", "match depths")
	type entry struct {
		name string
		rep  workloads.Report
	}
	var rows []entry
	for _, n := range []int{4, 8, 16} {
		rows = append(rows,
			entry{"halo-1d", workloads.Halo(base, n, 8, 1024, 4)},
			entry{"master-worker", workloads.MasterWorker(base, n, 4, 256, 3)},
			entry{"unexpected-storm", workloads.UnexpectedStorm(base, n, 20, 64)},
		)
	}
	for _, e := range rows {
		depths := e.rep.PostedDepths
		depths.Merge(&e.rep.UnexpDepths)
		tb.AddRow(e.name, e.rep.Ranks, e.rep.PeakPosted, e.rep.PeakUnexp, depths.String())
	}
	fmt.Println(tb.String())

	fmt.Println("The manager/worker and storm queues grow with the process count —")
	fmt.Println("the refs [8]/[9] observation. With a 128-entry ALPU:")
	fmt.Println()

	tb2 := stats.NewTable("pattern", "ranks", "baseline", "with ALPU", "speedup")
	for _, n := range []int{8, 16} {
		for _, p := range []struct {
			name string
			run  func(nic.Config) workloads.Report
		}{
			{"halo-1d", func(c nic.Config) workloads.Report { return workloads.Halo(c, n, 8, 1024, 4) }},
			{"master-worker", func(c nic.Config) workloads.Report { return workloads.MasterWorker(c, n, 4, 256, 3) }},
			{"unexpected-storm", func(c nic.Config) workloads.Report { return workloads.UnexpectedStorm(c, n, 20, 64) }},
		} {
			b := p.run(base)
			a := p.run(alpu)
			tb2.AddRow(p.name, n,
				fmt.Sprintf("%.1fus", b.Elapsed.Microseconds()),
				fmt.Sprintf("%.1fus", a.Elapsed.Microseconds()),
				fmt.Sprintf("%.2fx", float64(b.Elapsed)/float64(a.Elapsed)))
		}
	}
	fmt.Println(tb2.String())
	fmt.Println("Short-queue codes are near-neutral (the ~80 ns interface cost);")
	fmt.Println("deep-queue codes win, exactly the paper's §VI conclusion.")
}
