// Alpudirect drives the ALPU device model directly with the Table I/II
// command protocol — the walk a firmware author would take before wiring
// the unit into the NIC loop: reset, batched inserts behind START/STOP
// INSERT, wildcard matching with first-posted-wins priority, delete-on-
// match, and the held-failure retry rule of insert mode.
//
//	go run ./examples/alpudirect
package main

import (
	"fmt"

	"alpusim/internal/alpu"
	"alpusim/internal/match"
	"alpusim/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	dev := alpu.MustDevice(eng, "alpu", alpu.DefaultConfig(alpu.PostedReceives, 128))

	eng.Spawn("firmware", func(p *sim.Process) {
		result := func() alpu.Response {
			p.WaitCond(dev.Results.NotEmpty, func() bool { return dev.Results.Len() > 0 })
			r, _ := dev.Results.Pop()
			return r
		}
		say := func(f string, args ...any) {
			fmt.Printf("[%9v] %s\n", p.Now(), fmt.Sprintf(f, args...))
		}

		// 1. Insert three receives: an ANY_SOURCE wildcard first, then two
		// explicit ones — the §II ordering trap.
		dev.PushCommand(alpu.Command{Op: alpu.OpStartInsert})
		r := result()
		say("%v: %d free cells", r.Kind, r.Free)

		entries := []struct {
			recv match.Recv
			tag  uint32
		}{
			{match.Recv{Context: 1, Source: match.AnySource, Tag: 7}, 100},
			{match.Recv{Context: 1, Source: 3, Tag: 7}, 200},
			{match.Recv{Context: 1, Source: 4, Tag: 9}, 300},
		}
		for _, e := range entries {
			b, m := match.PackRecv(e.recv)
			dev.PushCommand(alpu.Command{Op: alpu.OpInsert, Bits: b, Mask: m, Tag: e.tag})
			say("INSERT tag=%d %+v", e.tag, e.recv)
		}
		dev.PushCommand(alpu.Command{Op: alpu.OpStopInsert})
		p.Sleep(100 * sim.Nanosecond)
		say("occupancy after inserts: %d", dev.Occupancy())

		// 2. A header from source 3, tag 7: both the wildcard (tag 100)
		// and the explicit entry (tag 200) match — MPI ordering demands
		// the first posted wins.
		dev.PushProbe(alpu.Probe{Bits: match.Pack(match.Header{Context: 1, Source: 3, Tag: 7})})
		r = result()
		say("probe {src=3 tag=7} -> %v tag=%d (first-posted wildcard wins)", r.Kind, r.Tag)

		// 3. Same probe again: the wildcard was consumed by the match, so
		// now the explicit entry answers.
		dev.PushProbe(alpu.Probe{Bits: match.Pack(match.Header{Context: 1, Source: 3, Tag: 7})})
		r = result()
		say("probe {src=3 tag=7} -> %v tag=%d (delete-on-match exposed it)", r.Kind, r.Tag)

		// 4. A probe that matches nothing.
		dev.PushProbe(alpu.Probe{Bits: match.Pack(match.Header{Context: 1, Source: 9, Tag: 1})})
		r = result()
		say("probe {src=9 tag=1} -> %v", r.Kind)

		// 5. Insert-mode hold: a failing probe during insert mode is held,
		// and succeeds after the matching entry is inserted (§III-C).
		dev.PushCommand(alpu.Command{Op: alpu.OpStartInsert})
		result() // ack
		dev.PushProbe(alpu.Probe{Bits: match.Pack(match.Header{Context: 1, Source: 5, Tag: 5})})
		say("probe {src=5 tag=5} pushed during insert mode (no match yet)")
		p.Sleep(50 * sim.Nanosecond) // let the device fail the match and hold it
		b, m := match.PackRecv(match.Recv{Context: 1, Source: 5, Tag: 5})
		dev.PushCommand(alpu.Command{Op: alpu.OpInsert, Bits: b, Mask: m, Tag: 400})
		dev.PushCommand(alpu.Command{Op: alpu.OpStopInsert})
		r = result()
		say("held probe retried at STOP INSERT -> %v tag=%d", r.Kind, r.Tag)

		// 6. RESET clears everything.
		dev.PushCommand(alpu.Command{Op: alpu.OpReset})
		p.Sleep(50 * sim.Nanosecond)
		say("after RESET: occupancy %d", dev.Occupancy())

		st := dev.Stats()
		say("device stats: %d matches (%d hits), %d inserts, %d held retries",
			st.Matches, st.Hits, st.Inserts, st.HeldRetries)
	})

	eng.Run()
}
