// Unexpected: the Fig. 6 phenomenon at example scale. A rank is flooded
// with messages it has not posted receives for (the classic unexpected-
// message storm of loosely synchronised applications); posting the next
// receive must then search the unexpected queue, and latency — including
// that posting time — grows with the queue unless an ALPU handles it.
//
//	go run ./examples/unexpected
package main

import (
	"fmt"

	"alpusim/internal/bench"
	"alpusim/internal/stats"
)

func main() {
	fmt.Println("Unexpected queue length vs. latency (posting time included, §V-A)")
	fmt.Println()

	queueLens := []int{0, 25, 50, 75, 100, 150, 200, 300}
	series := map[bench.NICKind][]bench.UnexpectedPoint{}
	for _, k := range []bench.NICKind{bench.Baseline, bench.ALPU256} {
		series[k] = bench.RunUnexpected(bench.UnexpectedConfig{
			NIC:       bench.NICConfig(k),
			QueueLens: queueLens,
		})
	}

	tb := stats.NewTable("Unexpected len", "baseline (ns)", "alpu-256 (ns)", "winner")
	for i, u := range queueLens {
		b := series[bench.Baseline][i].Latency
		a := series[bench.ALPU256][i].Latency
		winner := "alpu"
		if b <= a {
			winner = "baseline"
		}
		tb.AddRow(u, fmt.Sprintf("%.0f", b.Nanoseconds()), fmt.Sprintf("%.0f", a.Nanoseconds()), winner)
	}
	fmt.Println(tb.String())

	anchors := bench.ExtractFig6(series[bench.Baseline], series[bench.ALPU256])
	fmt.Printf("short queues: the ALPU loses ~%.0f ns to its interface overhead;\n", anchors.ShortQueueLossNs)
	if anchors.CrossoverEntries >= 0 {
		fmt.Printf("past ~%d entries it wins and its curve stays flat (paper: ~70, §VI-C).\n",
			anchors.CrossoverEntries)
	}
}
