// Preposted: the Fig. 5 phenomenon at example scale. A worker pool where
// the master pre-posts one receive per worker (common in manager/worker
// MPI codes, the motivation in the paper's §I-II): as the pool grows, the
// posted receive queue grows, and every arriving result message pays a
// traversal proportional to its position — unless an ALPU is fitted.
//
//	go run ./examples/preposted
package main

import (
	"fmt"

	"alpusim/internal/bench"
	"alpusim/internal/stats"
)

func main() {
	fmt.Println("Posted receive queue length vs. message latency (0-byte, one-way)")
	fmt.Println("Full traversal: the message matches the last entry of the queue.")
	fmt.Println()

	queueLens := []int{0, 8, 32, 64, 128, 192, 256, 384}
	series := map[bench.NICKind][]bench.PrepostedPoint{}
	for _, k := range []bench.NICKind{bench.Baseline, bench.ALPU128, bench.ALPU256} {
		series[k] = bench.RunPreposted(bench.PrepostedConfig{
			NIC:       bench.NICConfig(k),
			QueueLens: queueLens,
			Fracs:     []float64{1.0},
		})
	}

	tb := stats.NewTable("Queue length", "baseline (ns)", "alpu-128 (ns)", "alpu-256 (ns)")
	for i, q := range queueLens {
		tb.AddRow(q,
			fmt.Sprintf("%.0f", series[bench.Baseline][i].Latency.Nanoseconds()),
			fmt.Sprintf("%.0f", series[bench.ALPU128][i].Latency.Nanoseconds()),
			fmt.Sprintf("%.0f", series[bench.ALPU256][i].Latency.Nanoseconds()))
	}
	fmt.Println(tb.String())

	b0 := series[bench.Baseline][0].Latency
	bN := series[bench.Baseline][len(queueLens)-1].Latency
	a0 := series[bench.ALPU256][0].Latency
	aN := series[bench.ALPU256][len(queueLens)-1].Latency
	fmt.Printf("baseline grows %.1fx across the sweep; the 256-entry ALPU grows %.2fx\n",
		float64(bN)/float64(b0), float64(aN)/float64(a0))
	fmt.Println("and stays flat until the queue exceeds its cell count (§VI-B).")
}
