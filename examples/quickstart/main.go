// Quickstart: a two-rank MPI ping-pong through the full simulated stack
// (host CPU model -> NIC firmware -> network -> NIC -> host), comparing
// the baseline NIC with an ALPU-equipped one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"alpusim/internal/mpi"
	"alpusim/internal/nic"
	"alpusim/internal/sim"
)

func pingPong(nc nic.Config, iters int, size int) sim.Time {
	var total sim.Time
	mpi.Run(mpi.Config{Ranks: 2, NIC: nc}, func(r *mpi.Rank) {
		if r.Rank() == 0 {
			r.Barrier()
			start := r.Now()
			for i := 0; i < iters; i++ {
				r.Send(1, i, size)
				r.Recv(1, 1000+i, size)
			}
			total = (r.Now() - start) / sim.Time(2*iters)
		} else {
			r.Barrier()
			for i := 0; i < iters; i++ {
				r.Recv(0, i, size)
				r.Send(0, 1000+i, size)
			}
		}
	})
	return total
}

func main() {
	fmt.Println("Zero-byte ping-pong half-round-trip latency (10 iterations):")
	for _, c := range []struct {
		name string
		cfg  nic.Config
	}{
		{"baseline NIC           ", nic.Config{}},
		{"NIC + 128-entry ALPU   ", nic.Config{UseALPU: true, Cells: 128}},
		{"NIC + 256-entry ALPU   ", nic.Config{UseALPU: true, Cells: 256}},
	} {
		lat := pingPong(c.cfg, 10, 0)
		fmt.Printf("  %s %8.0f ns\n", c.name, lat.Nanoseconds())
	}
	fmt.Println()
	fmt.Println("With empty queues the ALPU costs a few tens of ns (the paper's")
	fmt.Println("~80 ns zero-length-queue penalty, §VI-B); its payoff appears as")
	fmt.Println("queues grow — run examples/preposted and examples/unexpected.")
}
