module alpusim

go 1.22
