#!/bin/sh
# Runs the bench-gate benchmark set — the engine event loop, the
# event-queue and partition-runner micro-benchmarks, the ALPU device
# micro-benchmarks, the matching-fabric dispatch/overflow and dispatch-
# cache micro-benchmarks, and the quick Fig. 5 sweep cuts — and appends
# the raw `go test -bench` output to the given file (default
# BENCH_CURRENT.txt). CI compares that output against the committed
# BENCH_BASELINE.txt with cmd/benchgate; regenerate the baseline by
# running this script with BENCH_BASELINE.txt as the argument on the
# reference machine and committing the result.
#
# -count 3 runs every benchmark three times; the gate keeps the minimum,
# which is the least-noise estimate of true cost.
set -e
out="${1:-BENCH_CURRENT.txt}"
: > "$out"
go test -run '^$' -bench 'BenchmarkEngineScheduleStep$' -benchtime 1s -count 3 ./internal/sim | tee -a "$out"
# Time-based benchtime: the queue and partition-window ops are tens to
# hundreds of ns, so a fixed small iteration count would be all timer
# noise.
go test -run '^$' -bench 'BenchmarkQueueMicro/' -benchtime 0.2s -count 3 ./internal/sim | tee -a "$out"
go test -run '^$' -bench 'BenchmarkMicro/' -benchtime 2000x -count 3 ./internal/alpu | tee -a "$out"
# Fabric hot paths: shard routing + overflow promote/demote are a few ns
# to ~100 ns each, so time-based benchtime again.
go test -run '^$' -bench 'BenchmarkFabric' -benchtime 0.2s -count 3 ./internal/match | tee -a "$out"
go test -run '^$' -bench 'BenchmarkCacheDispatch' -benchtime 0.2s -count 3 ./internal/cache | tee -a "$out"
go test -run '^$' -bench 'BenchmarkFig5' -benchtime 3x -count 3 . | tee -a "$out"
