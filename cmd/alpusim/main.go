// Command alpusim reruns the paper's simulation experiments and prints
// the series behind each figure and table.
//
// Experiments (-experiment):
//
//	tab3           print the Table III processor parameters in use
//	tab4, tab5     the FPGA prototype tables (see also cmd/fpgareport)
//	fig5-baseline  latency surface, baseline NIC (Fig. 5a/b)
//	fig5-alpu128   latency surface, NIC + 128-entry ALPU (Fig. 5c/d)
//	fig5-alpu256   latency surface, NIC + 256-entry ALPU (Fig. 5e/f)
//	fig6           unexpected-queue latency series, all 3 NICs (Fig. 6)
//	anchors        the §VI-B/§VI-C text anchors, measured vs published
//	phases         per-message latency phase breakdown: the Fig. 5 workload
//	               decomposed into inject/wire/recovery/rxfifo/search/
//	               deliver/host phases that sum to the end-to-end latency
//	critpath       causal critical-path analysis: the Fig. 5 workload as a
//	               causal DAG — per-resource blame for the critical path
//	               (sums to 100.0%), what-if speedups with one resource
//	               zeroed, and the slowest causal chains; -metrics FILE
//	               writes the machine-readable JSON report
//	chaos          the figure workloads over a faulty network: injected
//	               faults vs the NIC reliability protocol's recovery stats
//	devchaos       the device-chaos campaign: an N-rank soak over NICs
//	               whose ALPUs flip bits, drop results, stall or die and
//	               whose firmware crashes, every scenario digest-verified
//	               against a clean software-only run of the same plan
//	tenancy        the heavy-tenancy matching sweep: Zipf-skewed traffic
//	               over many communicators driven through the software
//	               list, a single ALPU, and the sharded matching fabric
//	               at 2/4/8 units — digest-verified rows with dispatch
//	               cache hit rate, per-shard occupancy, overflow churn
//	               and match-latency quantiles; -shards N instead dumps
//	               that one configuration's receive outcomes line by
//	               line (the CI byte-diff format)
//	bench          wall-clock harness: times every figure sweep at -jobs 1
//	               and -jobs N and appends a timestamped record with the
//	               speedups and micro-benchmarks to BENCH.json
//	scale          conservative-PDES scaling study: a large halo-exchange
//	               world run on the serial engine and again split across
//	               -par partitions, with wall-clock speedup
//	stall          forces a watchdog stall (endless ping-pong world) and
//	               writes the flight-recorder post-mortem (-flightdump)
//	all            the table and figure experiments plus phases (excludes
//	               critpath, chaos, devchaos, tenancy, bench, scale, stall)
//	list           print the experiment table and exit
//
// Flags: -quick shrinks the sweeps (~10x faster), -format csv emits
// machine-readable series instead of tables, -jobs N fans the independent
// simulation worlds of each sweep across N workers (results are
// byte-identical at any setting; -jobs 1 is fully sequential).
//
// -par N runs every simulated world as a conservative parallel simulation
// over N per-rank partitions (mpi.Config.Partitions): per-partition event
// engines synchronized by the wire-latency lookahead. Output is
// byte-identical for every -par N >= 1 — including chaos runs, phase
// tables, traces and metrics — so the determinism CI diffs -par 1 against
// -par 8. -par 0 (default) keeps the classic serial engine.
//
// Fault injection: -faults installs a fault model for experiments that
// support one (chaos, devchaos, phases): either one probability for all
// wire classes ("0.02") or per-class pairs ("drop=0.01,reorder=0.05").
// Device-level classes ride the same grammar: "alpubitflip=0.01",
// "alpuresultdrop=0.02", "alpustuck=0.1", "alpudeath@50us",
// "fwcrash=0.005", "linkflap=0.05". -seed seeds the injection streams;
// the same seed reproduces the identical run byte for byte.
//
// Telemetry: for the phases experiment, -trace FILE writes a Chrome
// trace-event JSON (load at ui.perfetto.dev) and -metrics FILE writes the
// merged metrics-registry snapshot as JSON; "-" means stdout. Both are
// byte-identical across runs with the same flags at any -jobs setting.
//
// Run reports: for the phases experiment, -report FILE writes a
// self-contained static HTML run report (occupancy waterlines as inline
// SVG, phase breakdown, latency quantiles; no JavaScript, no external
// references), -timeseries FILE writes the decimated simulated-time
// series as JSON, and -simprof FILE writes a pprof-compatible sim-time
// profile — span self-times weighted by simulated nanoseconds — that
// `go tool pprof -top` (or -http for a flamegraph) reads directly. All
// three are byte-identical at any -par/-jobs setting.
//
// Live observability: -serve ADDR runs an HTTP server for the duration of
// the experiments exposing /metrics (Prometheus text format), /healthz,
// /progress (sweep completion, JSON or SSE), /critpath (causal reports),
// /report (the HTML run report) and /timeseries (series JSON; the latter
// two answer 503 until the run finishes). Serving is strictly read-only —
// experiment output stays byte-identical with and without it. -linger
// keeps the server up after the run so scrapers can catch the final
// state; -log FILE ("-" = stderr) writes structured simulated-time
// diagnostics (watchdog expiry, protocol errors, flight dumps).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"time"

	"alpusim/internal/alpu"
	"alpusim/internal/bench"
	"alpusim/internal/fpga"
	"alpusim/internal/mpi"
	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/obs"
	"alpusim/internal/params"
	"alpusim/internal/profiling"
	"alpusim/internal/sim"
	"alpusim/internal/stats"
	"alpusim/internal/sweep"
	"alpusim/internal/telemetry"
	"alpusim/internal/workloads"
)

var (
	experiment = flag.String("experiment", "all", "which experiment to run (see doc)")
	quick      = flag.Bool("quick", false, "reduced sweeps")
	format     = flag.String("format", "table", "output format: table or csv")
	msgSize    = flag.Int("size", 0, "message payload bytes for fig5/fig6")
	jobs       = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation worlds per sweep (1 = sequential)")
	par        = flag.Int("par", 0, "partitions per simulated world: conservative parallel simulation on per-partition engines (0 = serial engine; output is identical for any value >= 1)")
	benchOut   = flag.String("benchout", "BENCH.json", "output path for -experiment bench")
	faultSpec  = flag.String("faults", "", "fault model: a probability (\"0.02\") or class=prob pairs (\"drop=0.01,dup=0.01,reorder=0.02,corrupt=0.005\")")
	faultSeed  = flag.Int64("seed", 1, "fault-injection seed (same seed => byte-identical run)")
	tracePath  = flag.String("trace", "", "phases experiment: write Chrome trace-event JSON to this file (\"-\" = stdout)")
	metricsOut = flag.String("metrics", "", "phases: write the merged metrics snapshot JSON to this file; critpath: write the causal report JSON (\"-\" = stdout)")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	perCycle   = flag.Bool("percycle", false, "force the per-cycle ALPU reference model (no cycle batching); outputs must be byte-identical")
	reportOut  = flag.String("report", "", "phases experiment: write the self-contained HTML run report to this file (\"-\" = stdout); with -serve it is also published at /report")
	tsOut      = flag.String("timeseries", "", "phases experiment: write the simulated-time series dump as JSON to this file (\"-\" = stdout); with -serve it is also published at /timeseries")
	simprofOut = flag.String("simprof", "", "phases experiment: write a pprof-compatible simulated-time profile to this file (read with `go tool pprof`)")
	serveAddr  = flag.String("serve", "", "serve the live observability plane (/metrics, /healthz, /progress, /critpath, /report, /timeseries) on this address while experiments run (e.g. \":9090\"; \":0\" picks a port)")
	linger     = flag.Duration("linger", 0, "with -serve: keep the observability server up this long after the experiments finish")
	logPath    = flag.String("log", "", "write structured diagnostics (slog text, simulated-time stamped) to this file (\"-\" = stderr)")
	flightDump = flag.String("flightdump", "flight.json", "stall experiment: write the flight-recorder dump (Perfetto-loadable trace JSON) here on watchdog expiry")
	flightSize = flag.Int("flightsize", 0, "flight-recorder ring capacity in events (0 = default when a watchdog is armed; < 0 disables the recorder)")
	shards     = flag.Int("shards", 0, "tenancy experiment: dump the receive outcomes of this one fabric width instead of the full sweep (1 = single-ALPU baseline)")
)

// diagLog is the process's structured diagnostic logger (nil without
// -log); progressTracker is the live sweep tracker (nil without -serve).
var (
	diagLog         *slog.Logger
	progressTracker *sweep.Progress
	obsSrv          *obs.Server
)

// experimentList names every -experiment value with a one-line
// description — the table behind "-experiment list" and the
// unknown-experiment error.
var experimentList = []struct{ name, desc string }{
	{"tab3", "Table III processor parameters in use"},
	{"tab4", "FPGA prototype table, posted receives ALPU (Table IV)"},
	{"tab5", "FPGA prototype table, unexpected messages ALPU (Table V)"},
	{"fig5-baseline", "latency surface, baseline NIC (Fig. 5a/b)"},
	{"fig5-alpu128", "latency surface, NIC + 128-entry ALPU (Fig. 5c/d)"},
	{"fig5-alpu256", "latency surface, NIC + 256-entry ALPU (Fig. 5e/f)"},
	{"fig6", "unexpected-queue latency series, all 3 NICs (Fig. 6)"},
	{"gap", "inverse message rate vs match depth, incl. the Elan4-class point"},
	{"anchors", "the §VI-B/§VI-C text anchors, measured vs published"},
	{"phases", "per-message latency phase breakdown of the Fig. 5 workload"},
	{"critpath", "causal critical-path analysis: per-resource blame and what-ifs"},
	{"chaos", "figure workloads over a faulty network vs protocol recovery"},
	{"devchaos", "device-chaos soak: ALPUs that flip bits, stall or die"},
	{"tenancy", "heavy-tenancy matching sweep incl. the sharded fabric"},
	{"bench", "wall-clock harness; appends a timestamped record to BENCH.json"},
	{"scale", "conservative-PDES scaling study: serial engine vs -par"},
	{"stall", "forced watchdog stall with a flight-recorder post-mortem"},
	{"all", "tables, figures, gap, anchors and phases (the deterministic core)"},
	{"list", "print this table and exit"},
}

// printExperiments renders the experiment table to w.
func printExperiments(w io.Writer) {
	tb := stats.NewTable("experiment", "description")
	for _, e := range experimentList {
		tb.AddRow(e.name, e.desc)
	}
	tb.Render(w)
}

// openLog builds the -log slog logger; "" disables, "-" is stderr.
func openLog(path string) (*slog.Logger, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	if path == "-" {
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return slog.New(slog.NewTextHandler(f, nil)), func() { f.Close() }, nil
}

// obsLabel names the sweeps an experiment is about to run on the
// /progress endpoint; a no-op without -serve.
func obsLabel(name string) { progressTracker.SetLabel(name) }

func main() {
	flag.Parse()
	if *jobs < 1 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alpusim:", err)
		os.Exit(1)
	}
	defer stopProf()
	var closeLog func()
	diagLog, closeLog, err = openLog(*logPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alpusim: -log: %v\n", err)
		os.Exit(1)
	}
	defer closeLog()
	if *serveAddr != "" {
		progressTracker = sweep.NewProgress()
		sweep.SetProgress(progressTracker)
		obsSrv = obs.NewServer(obs.Options{Progress: progressTracker, Log: diagLog})
		addr, err := obsSrv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "alpusim: observability plane on http://%s\n", addr)
		bench.WorldObserver = func(w *mpi.World) { obsSrv.MergeSnapshot(w.TelemetrySnapshot()) }
		bench.CritPathObserver = func(label string, rep telemetry.CausalReport) { obsSrv.AddCritPath(label, rep) }
	}
	bench.PerCycleALPU = *perCycle
	switch *experiment {
	case "tab3":
		tab3()
	case "tab4":
		fpgaTable(alpu.PostedReceives)
	case "tab5":
		fpgaTable(alpu.UnexpectedMessages)
	case "fig5-baseline":
		fig5(bench.Baseline)
	case "fig5-alpu128":
		fig5(bench.ALPU128)
	case "fig5-alpu256":
		fig5(bench.ALPU256)
	case "fig6":
		fig6()
	case "gap":
		gapExp()
	case "anchors":
		anchors()
	case "phases":
		phasesExp()
	case "critpath":
		critpathExp()
	case "chaos":
		chaosExp()
	case "devchaos":
		devchaosExp()
	case "tenancy":
		tenancyExp()
	case "bench":
		benchHarness()
	case "scale":
		scaleExp()
	case "stall":
		stallExp()
	case "list":
		printExperiments(os.Stdout)
	case "all":
		tab3()
		fpgaTable(alpu.PostedReceives)
		fpgaTable(alpu.UnexpectedMessages)
		fig5(bench.Baseline)
		fig5(bench.ALPU128)
		fig5(bench.ALPU256)
		fig6()
		gapExp()
		anchors()
		phasesExp()
	default:
		fmt.Fprintf(os.Stderr, "alpusim: unknown experiment %q; valid experiments:\n\n", *experiment)
		printExperiments(os.Stderr)
		os.Exit(1)
	}
	if obsSrv != nil {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "alpusim: experiments done; serving for another %v\n", *linger)
			time.Sleep(*linger)
		}
		obsSrv.Close()
	}
}

// stallExp forces a stall on purpose: two ranks ping-pong forever so the
// event queue never drains, a short watchdog converts the livelock into
// a *sim.WatchdogError, and the always-on flight recorder dumps the
// pre-stall event history as Perfetto-loadable JSON — the post-mortem
// workflow, demonstrated end to end.
func stallExp() {
	limit := 200 * sim.Microsecond
	w := mpi.NewWorld(mpi.Config{
		Ranks:          2,
		NIC:            bench.NICConfig(bench.Baseline),
		Partitions:     *par,
		WatchdogLimit:  limit,
		FlightEvents:   *flightSize,
		FlightDumpPath: *flightDump,
		Log:            diagLog,
	})
	prog := func(r *mpi.Rank) {
		peer := 1 - r.Rank()
		for k := 0; ; k++ {
			if r.Rank() == 0 {
				r.Send(peer, k%64, 8)
				r.Recv(peer, k%64, 8)
			} else {
				r.Recv(peer, k%64, 8)
				r.Send(peer, k%64, 8)
			}
		}
	}
	for i := 0; i < 2; i++ {
		w.SpawnRank(i, prog)
	}
	defer func() {
		r := recover()
		if r == nil {
			fmt.Fprintln(os.Stderr, "alpusim: stall experiment drained without expiring the watchdog")
			os.Exit(1)
		}
		we, ok := r.(*sim.WatchdogError)
		if !ok {
			panic(r)
		}
		fmt.Printf("stall: watchdog expired at %v (as intended)\n", we.Limit)
		events, dropped := w.FlightStats()
		fmt.Printf("stall: flight recorder dumped %d events to %s (%d older events dropped by the ring)\n",
			events, *flightDump, dropped)
	}()
	w.RunSim()
}

func queueLens() []int {
	if *quick {
		return []int{0, 50, 100, 200, 300, 400, 500}
	}
	out := []int{0}
	for q := 25; q <= 500; q += 25 {
		out = append(out, q)
	}
	return out
}

func fracs() []float64 {
	if *quick {
		return []float64{0, 0.5, 1.0}
	}
	return []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
}

func unexpLens() []int {
	if *quick {
		return []int{0, 50, 100, 200, 300, 400, 500}
	}
	out := []int{0, 10, 25}
	for u := 50; u <= 500; u += 25 {
		out = append(out, u)
	}
	return out
}

func tab3() {
	fmt.Println("Table III: processor simulation parameters (in use)")
	tb := stats.NewTable("Parameter", "CPU", "NIC Processor")
	host, nicCPU := params.HostCPU(), params.NICCPU()
	tb.AddRow("Clock Speed", fmt.Sprintf("%.0f MHz", host.Clock.Freq()), fmt.Sprintf("%.0f MHz", nicCPU.Clock.Freq()))
	tb.AddRow("L1 Cache", fmt.Sprintf("%dK %d-way", host.L1Size>>10, host.L1Assoc), fmt.Sprintf("%dK %d-way", nicCPU.L1Size>>10, nicCPU.L1Assoc))
	tb.AddRow("L2 Cache", fmt.Sprintf("%dK", host.L2Size>>10), "none")
	tb.AddRow("Lat. To Main Memory", fmt.Sprintf("%d cycles", host.MemLatency), fmt.Sprintf("%d cycles", nicCPU.MemLatency))
	tb.AddRow("Network Wire Lat.", params.WireLatency.String(), "")
	tb.AddRow("NIC local bus", "", params.NICBusDelay.String())
	tb.Render(os.Stdout)
	fmt.Println()
}

func fpgaTable(v alpu.Variant) {
	name := "Table IV (posted receives ALPU)"
	if v == alpu.UnexpectedMessages {
		name = "Table V (unexpected messages ALPU)"
	}
	fmt.Println(name)
	tb := stats.NewTable("Cells", "Block", "LUTs", "FFs", "Slices", "MHz", "Latency")
	for _, pub := range fpga.PublishedFor(v) {
		e := fpga.PrototypeParams(v, pub.Cells, pub.BlockSize).Estimate()
		tb.AddRow(pub.Cells, pub.BlockSize, e.LUTs, e.FFs, e.Slices, e.FreqMHz, e.LatencyCycles)
	}
	tb.Render(os.Stdout)
	fmt.Println("(run cmd/fpgareport for the side-by-side comparison with the published values)")
	fmt.Println()
}

func fig5(kind bench.NICKind) {
	obsLabel(fmt.Sprintf("fig5-%s", kind))
	fmt.Printf("Fig. 5 surface: %s NIC, %d-byte messages (one-way latency, ns)\n", kind, *msgSize)
	pts := bench.RunPreposted(bench.PrepostedConfig{
		NIC:        bench.NICConfig(kind),
		QueueLens:  queueLens(),
		Fracs:      fracs(),
		MsgSize:    *msgSize,
		Jobs:       *jobs,
		Partitions: *par,
	})
	if *format == "csv" {
		rows := make([][]any, 0, len(pts))
		for _, p := range pts {
			rows = append(rows, []any{p.QueueLen, p.Traversed, p.MsgSize, p.Latency.Nanoseconds()})
		}
		stats.CSV(os.Stdout, []string{"queue_len", "traversed", "msg_size", "latency_ns"}, rows)
		fmt.Println()
		return
	}
	// Render as queue-length x fraction grid (the 3D surface flattened).
	byQ := map[int]map[float64]bench.PrepostedPoint{}
	for _, p := range pts {
		if byQ[p.QueueLen] == nil {
			byQ[p.QueueLen] = map[float64]bench.PrepostedPoint{}
		}
		byQ[p.QueueLen][p.Frac] = p
	}
	header := []any{"Q \\ frac"}
	for _, f := range fracs() {
		header = append(header, fmt.Sprintf("%.0f%%", f*100))
	}
	hs := make([]string, len(header))
	for i, h := range header {
		hs[i] = fmt.Sprint(h)
	}
	tb := stats.NewTable(hs...)
	for _, q := range queueLens() {
		row := []any{q}
		for _, f := range fracs() {
			if p, ok := byQ[q][f]; ok {
				row = append(row, fmt.Sprintf("%.0f", p.Latency.Nanoseconds()))
			} else {
				row = append(row, "·") // aliased with a smaller fraction
			}
		}
		tb.AddRow(row...)
	}
	tb.Render(os.Stdout)
	fmt.Println()
}

// unexpectedByQ indexes a Fig. 6 series by queue length, so row assembly
// across separately-run configs keys on the measured point rather than its
// slice position — a filtered or reordered sweep cannot silently misalign
// the table.
func unexpectedByQ(pts []bench.UnexpectedPoint) map[int]bench.UnexpectedPoint {
	m := make(map[int]bench.UnexpectedPoint, len(pts))
	for _, p := range pts {
		m[p.QueueLen] = p
	}
	return m
}

func fig6() {
	obsLabel("fig6")
	fmt.Printf("Fig. 6: unexpected queue latency, %d-byte messages (ns)\n", *msgSize)
	kinds := []bench.NICKind{bench.Baseline, bench.ALPU128, bench.ALPU256}
	series := map[bench.NICKind]map[int]bench.UnexpectedPoint{}
	for _, k := range kinds {
		series[k] = unexpectedByQ(bench.RunUnexpected(bench.UnexpectedConfig{
			NIC:        bench.NICConfig(k),
			QueueLens:  unexpLens(),
			MsgSize:    *msgSize,
			Jobs:       *jobs,
			Partitions: *par,
		}))
	}
	if *format == "csv" {
		rows := make([][]any, 0)
		for _, u := range unexpLens() {
			b, okB := series[bench.Baseline][u]
			a1, okA1 := series[bench.ALPU128][u]
			a2, okA2 := series[bench.ALPU256][u]
			if !okB || !okA1 || !okA2 {
				continue // length missing from a series: drop, never misalign
			}
			rows = append(rows, []any{u,
				b.Latency.Nanoseconds(),
				a1.Latency.Nanoseconds(),
				a2.Latency.Nanoseconds()})
		}
		stats.CSV(os.Stdout, []string{"queue_len", "baseline_ns", "alpu128_ns", "alpu256_ns"}, rows)
		fmt.Println()
		return
	}
	tb := stats.NewTable("Unexpected Q", "baseline", "alpu-128", "alpu-256")
	for _, u := range unexpLens() {
		row := []any{u}
		for _, k := range kinds {
			if p, ok := series[k][u]; ok {
				row = append(row, fmt.Sprintf("%.0f", p.Latency.Nanoseconds()))
			} else {
				row = append(row, "·")
			}
		}
		tb.AddRow(row...)
	}
	tb.Render(os.Stdout)
	fmt.Println()
}

// gapExp reports the message-rate study behind the paper's §I gap
// motivation, including the §VI-B Quadrics Elan4 comparison point.
func gapExp() {
	obsLabel("gap")
	fmt.Println("Gap (inverse message rate) vs. match depth, plus the Elan4-class comparison")
	depths := []int{0, 25, 50, 100, 150, 200}
	if *quick {
		depths = []int{0, 50, 150}
	}
	configs := []struct {
		name string
		nic  nic.Config
	}{
		{"baseline", bench.NICConfig(bench.Baseline)},
		{"alpu-128", bench.NICConfig(bench.ALPU128)},
		{"alpu-256", bench.NICConfig(bench.ALPU256)},
		{"elan4-class", bench.ElanNICConfig()},
	}
	// As in fig6: key each series by depth so separately-run configs can
	// never be joined by slice position.
	series := map[string]map[int]bench.GapPoint{}
	for _, c := range configs {
		byDepth := make(map[int]bench.GapPoint, len(depths))
		for _, p := range bench.RunGap(bench.GapConfig{NIC: c.nic, Depths: depths, Jobs: *jobs, Partitions: *par}) {
			byDepth[p.Depth] = p
		}
		series[c.name] = byDepth
	}

	tb := stats.NewTable("depth", "baseline ns/msg", "alpu-128", "alpu-256", "elan4-class")
	for _, d := range depths {
		row := []any{d}
		for _, c := range configs {
			if p, ok := series[c.name][d]; ok {
				row = append(row, fmt.Sprintf("%.0f", p.NsPerMsg))
			} else {
				row = append(row, "·")
			}
		}
		tb.AddRow(row...)
	}
	tb.Render(os.Stdout)
	fmt.Println()
}

// benchResult is one experiment entry of a BENCH.json record: the same
// sweep timed sequentially and with the worker pool.
type benchResult struct {
	Experiment    string  `json:"experiment"`
	Points        int     `json:"points"`
	SequentialSec float64 `json:"sequential_sec"`
	ParallelSec   float64 `json:"parallel_sec"`
	Speedup       float64 `json:"speedup"`
}

// benchSchema versions the benchReport layout. Version 2 turned
// BENCH.json into an append-only array of timestamped records and added
// the -par setting and the event-queue micro-benchmarks; the original
// layout (a single bare record, implicitly version 1) is migrated in
// place by appendBenchRecord.
const benchSchema = 2

// benchReport is one BENCH.json record: a per-experiment wall-clock
// trajectory future PRs can diff against.
type benchReport struct {
	Schema     int    `json:"schema"`
	RecordedAt string `json:"recorded_at"` // RFC 3339 UTC
	Quick      bool   `json:"quick"`
	Jobs       int    `json:"jobs"`
	// Par is the -par setting the sweeps ran with (partitions per world;
	// 0 = serial engine).
	Par         int           `json:"par"`
	NumCPU      int           `json:"num_cpu"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Experiments []benchResult `json:"experiments"`
	// ALPUMicro holds the device micro-benchmarks (internal/alpu
	// MicroCases): host ns/op and allocs/op of simulating one insert,
	// search, or compaction drain per geometry.
	ALPUMicro []alpu.MicroResult `json:"alpu_micro"`
	// QueueMicro holds the event-kernel micro-benchmarks (internal/sim
	// QueueMicroCases): schedule/step and cancellation costs of the heap
	// and ladder queues, plus the partition-runner barrier overhead.
	QueueMicro  []sim.MicroResult `json:"queue_micro"`
	TotalSeqSec float64           `json:"total_sequential_sec"`
	TotalParSec float64           `json:"total_parallel_sec"`
	Speedup     float64           `json:"speedup"`
}

// appendBenchRecord appends rep to the BENCH.json record array (newest
// last) so successive runs accumulate a wall-clock history instead of
// overwriting it. A legacy file holding a single bare report object
// becomes the array's first record.
func appendBenchRecord(path string, rep benchReport) error {
	var records []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		data = bytes.TrimSpace(data)
		switch {
		case len(data) == 0:
		case data[0] == '[':
			if err := json.Unmarshal(data, &records); err != nil {
				return fmt.Errorf("existing %s: %w", path, err)
			}
		default:
			var legacy json.RawMessage
			if err := json.Unmarshal(data, &legacy); err != nil {
				return fmt.Errorf("existing %s: %w", path, err)
			}
			records = append(records, legacy)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	rec, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	records = append(records, rec)
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// benchHarness times the full Fig. 5 + Fig. 6 + gap sweeps at -jobs 1 and
// at -jobs N and appends the record to BENCH.json. The sweeps are the
// ones the figure experiments run (honouring -quick and -par); output
// tables are skipped so the numbers measure simulation, not rendering.
func benchHarness() {
	obsLabel("bench")
	parJobs := *jobs
	type exp struct {
		name string
		run  func(jobs int) int // returns number of points simulated
	}
	fig5 := func(kind bench.NICKind) func(int) int {
		return func(jobs int) int {
			return len(bench.RunPreposted(bench.PrepostedConfig{
				NIC:        bench.NICConfig(kind),
				QueueLens:  queueLens(),
				Fracs:      fracs(),
				MsgSize:    *msgSize,
				Jobs:       jobs,
				Partitions: *par,
			}))
		}
	}
	exps := []exp{
		{"fig5-baseline", fig5(bench.Baseline)},
		{"fig5-alpu128", fig5(bench.ALPU128)},
		{"fig5-alpu256", fig5(bench.ALPU256)},
		{"fig6", func(jobs int) int {
			n := 0
			for _, k := range []bench.NICKind{bench.Baseline, bench.ALPU128, bench.ALPU256} {
				n += len(bench.RunUnexpected(bench.UnexpectedConfig{
					NIC: bench.NICConfig(k), QueueLens: unexpLens(), MsgSize: *msgSize, Jobs: jobs,
					Partitions: *par,
				}))
			}
			return n
		}},
		{"gap", func(jobs int) int {
			depths := []int{0, 25, 50, 100, 150, 200}
			if *quick {
				depths = []int{0, 50, 150}
			}
			n := 0
			for _, c := range []nic.Config{
				bench.NICConfig(bench.Baseline),
				bench.NICConfig(bench.ALPU128),
				bench.NICConfig(bench.ALPU256),
				bench.ElanNICConfig(),
			} {
				n += len(bench.RunGap(bench.GapConfig{NIC: c, Depths: depths, Jobs: jobs, Partitions: *par}))
			}
			return n
		}},
	}

	rep := benchReport{
		Schema:     benchSchema,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:      *quick,
		Jobs:       parJobs,
		Par:        *par,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, x := range exps {
		t0 := time.Now()
		points := x.run(1)
		seq := time.Since(t0).Seconds()
		t0 = time.Now()
		x.run(parJobs)
		par := time.Since(t0).Seconds()
		r := benchResult{Experiment: x.name, Points: points, SequentialSec: seq, ParallelSec: par}
		if par > 0 {
			r.Speedup = seq / par
		}
		rep.Experiments = append(rep.Experiments, r)
		rep.TotalSeqSec += seq
		rep.TotalParSec += par
		fmt.Printf("%-14s %3d points  seq %6.2fs  par(%d) %6.2fs  %.2fx\n",
			x.name, points, seq, parJobs, par, r.Speedup)
	}
	if rep.TotalParSec > 0 {
		rep.Speedup = rep.TotalSeqSec / rep.TotalParSec
	}
	rep.ALPUMicro = alpu.RunMicroBenchmarks()
	for _, m := range rep.ALPUMicro {
		fmt.Printf("micro %-32s %9.0f ns/op  %d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}
	rep.QueueMicro = sim.RunQueueMicroBenchmarks()
	for _, m := range rep.QueueMicro {
		fmt.Printf("micro %-32s %9.0f ns/op  %d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}
	if err := appendBenchRecord(*benchOut, rep); err != nil {
		fmt.Fprintf(os.Stderr, "alpusim: bench report: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("total: seq %.2fs, par %.2fs, %.2fx -> appended to %s\n",
		rep.TotalSeqSec, rep.TotalParSec, rep.Speedup, *benchOut)
}

// scaleExp measures what the partitioned engines buy: one large
// halo-exchange world run to completion on the serial engine and again
// split across -par partitions (default GOMAXPROCS). The simulated
// behaviour is identical; only the wall clock moves, and the speedup
// tracks the number of physical cores — on a single-core box the
// partitioned run can only show the synchronization overhead.
func scaleExp() {
	obsLabel("scale")
	ranks, iters := 64, 48
	if *quick {
		iters = 8
	}
	parts := *par
	if parts <= 0 {
		parts = runtime.GOMAXPROCS(0)
	}
	nicCfg := bench.NICConfig(bench.ALPU128)
	run := func(opts ...workloads.Option) (workloads.Report, float64) {
		t0 := time.Now()
		rep := workloads.Halo(nicCfg, ranks, iters, 1024, 8, opts...)
		return rep, time.Since(t0).Seconds()
	}
	serialRep, serialSec := run()
	parRep, parSec := run(workloads.WithPartitions(parts))
	fmt.Printf("Scaling study: halo exchange, %d ranks x %d iters, alpu-128 NIC\n", ranks, iters)
	tb := stats.NewTable("engine", "wall-clock s", "simulated time")
	tb.AddRow("serial", fmt.Sprintf("%.3f", serialSec), serialRep.Elapsed.String())
	tb.AddRow(fmt.Sprintf("par-%d", parts), fmt.Sprintf("%.3f", parSec), parRep.Elapsed.String())
	tb.Render(os.Stdout)
	if parSec > 0 {
		fmt.Printf("wall-clock speedup %.2fx at %d partitions on %d CPU core(s)\n",
			serialSec/parSec, parts, runtime.NumCPU())
	}
	fmt.Println()
}

// phasesLens is smaller than the figure sweeps: the breakdown is about
// where the cycles go at representative depths, not the full surface.
func phasesLens() []int {
	if *quick {
		return []int{0, 32, 128}
	}
	return []int{0, 32, 128, 512}
}

// writeOutput writes to path via write, with "-" meaning stdout.
func writeOutput(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// phasesExp decomposes the Fig. 5 end-to-end latency into pipeline
// phases per NIC kind and queue length. The phase columns telescope —
// they sum to the "total" column, which equals the independently
// measured "e2e" latency. With -faults, retransmit recovery time lands
// in the recovery column; -trace and -metrics export the runs'
// telemetry.
func phasesExp() {
	obsLabel("phases")
	var fm *network.FaultModel
	if *faultSpec != "" {
		var err error
		fm, err = network.ParseFaults(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -faults: %v\n", err)
			os.Exit(2)
		}
	}
	// The run report and the /report, /timeseries endpoints need the
	// time-series sampler; the sim-time profile rides on the tracer.
	wantReport := *reportOut != "" || *tsOut != "" || obsSrv != nil
	pts := bench.RunPhases(bench.PhasesConfig{
		QueueLens:  phasesLens(),
		MsgSize:    *msgSize,
		Jobs:       *jobs,
		Partitions: *par,
		Faults:     fm,
		Trace:      *tracePath != "" || *simprofOut != "",
		Series:     wantReport,
	})
	if *format == "csv" {
		header := []string{"nic", "queue_len"}
		for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
			header = append(header, p.String()+"_ns")
		}
		header = append(header, "total_ns", "e2e_ns")
		rows := make([][]any, 0, len(pts))
		for _, p := range pts {
			row := []any{p.Kind.String(), p.QueueLen}
			for ph := telemetry.Phase(0); ph < telemetry.NumPhases; ph++ {
				row = append(row, p.Breakdown.Durs[ph].Nanoseconds())
			}
			row = append(row, p.Breakdown.Total.Nanoseconds(), p.Latency.Nanoseconds())
			rows = append(rows, row)
		}
		stats.CSV(os.Stdout, header, rows)
		fmt.Println()
	} else {
		fmt.Printf("Latency phase breakdown: final-iteration phases (ns), %d-byte messages\n", *msgSize)
		bench.RenderPhases(os.Stdout, pts)
		fmt.Println()
	}
	if *tracePath != "" {
		err := writeOutput(*tracePath, func(w io.Writer) error {
			return telemetry.WriteTrace(w, bench.Tracers(pts)...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		err := writeOutput(*metricsOut, func(w io.Writer) error {
			return bench.MergedMetrics(pts).WriteJSON(w)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *simprofOut != "" {
		err := writeOutput(*simprofOut, func(w io.Writer) error {
			return telemetry.WriteSimProfile(w, bench.Tracers(pts)...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -simprof: %v\n", err)
			os.Exit(1)
		}
	}
	if wantReport {
		// The title describes the workload only: anything -par/-jobs
		// dependent would break the byte-identity CI asserts on the report.
		title := "alpusim phases experiment"
		if *faultSpec != "" {
			title += fmt.Sprintf(" (faults %s, seed %d)", *faultSpec, *faultSeed)
		}
		var totals telemetry.Totals
		for _, p := range pts {
			totals.Merge(p.Totals)
		}
		emitReport(&obs.Report{
			Title:    title,
			Series:   bench.MergedSeries(pts),
			Phases:   totals,
			Snapshot: bench.MergedMetrics(pts),
		})
	}
}

// emitReport renders the run report once and fans it out to every sink
// the flags asked for: the -report HTML file, the -timeseries JSON file,
// and the obs server's /report and /timeseries endpoints.
func emitReport(rep *obs.Report) {
	html, tsJSON := rep.HTML(), rep.TimeseriesJSON()
	if *reportOut != "" {
		if err := writeOutput(*reportOut, func(w io.Writer) error {
			_, err := w.Write(html)
			return err
		}); err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -report: %v\n", err)
			os.Exit(1)
		}
	}
	if *tsOut != "" {
		if err := writeOutput(*tsOut, func(w io.Writer) error {
			_, err := w.Write(tsJSON)
			return err
		}); err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -timeseries: %v\n", err)
			os.Exit(1)
		}
	}
	if obsSrv != nil {
		obsSrv.SetReport(html, tsJSON)
	}
}

// critpathExp runs the causal critical-path analysis over the Fig. 5
// workload: each (NIC kind, queue length) cell becomes a causal DAG, and
// the report shows where the end-to-end critical path actually goes
// (blame shares sum to 100.0%), what zeroing one resource would buy
// (the Fig. 5 argument, computed instead of asserted), and the slowest
// message chains. -metrics FILE writes the machine-readable JSON report;
// output is byte-identical at any -jobs / -par setting.
func critpathExp() {
	obsLabel("critpath")
	var fm *network.FaultModel
	if *faultSpec != "" {
		var err error
		fm, err = network.ParseFaults(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -faults: %v\n", err)
			os.Exit(2)
		}
	}
	pts := bench.RunCritPath(bench.CritPathConfig{
		QueueLens:  phasesLens(),
		MsgSize:    *msgSize,
		Jobs:       *jobs,
		Partitions: *par,
		Faults:     fm,
	})
	fmt.Printf("Causal critical-path analysis: %d-byte messages, final-iteration chains\n", *msgSize)
	bench.RenderCritPath(os.Stdout, pts)
	fmt.Println()
	if *metricsOut != "" {
		err := writeOutput(*metricsOut, func(w io.Writer) error {
			return bench.WriteCritPathJSON(w, pts)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// chaosExp re-runs the figure workloads over a faulty network and reports
// the reliability protocol's recovery statistics. With -faults the given
// mix is the whole matrix; otherwise every default mix runs. Output is a
// pure function of the flags (same -seed => identical bytes).
func chaosExp() {
	obsLabel("chaos")
	var mixes []bench.ChaosMix
	if *faultSpec != "" {
		fm, err := network.ParseFaults(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -faults: %v\n", err)
			os.Exit(2)
		}
		mixes = []bench.ChaosMix{{Name: "custom", Faults: *fm}}
	}
	for _, kind := range []bench.NICKind{bench.Baseline, bench.ALPU128} {
		fmt.Printf("Chaos: figure workloads under injected faults — %s NIC, seed %d\n", kind, *faultSeed)
		results := bench.RunChaos(bench.ChaosConfig{
			NIC: bench.NICConfig(kind), Seed: *faultSeed,
			Mixes: mixes, MsgSize: *msgSize, Jobs: *jobs,
			Partitions: *par,
		})
		bench.RenderChaos(os.Stdout, results)
		fmt.Println()
	}
}

// devchaosExp runs the device-chaos campaign: an N-rank soak over ALPU
// NICs whose devices flip bits, drop results, stall, die, or whose
// firmware crashes, with every scenario's matching digest verified
// against a clean software-only run of the same plan. With -faults the
// given mix is the whole matrix. Output is a pure function of the flags
// (same -seed => identical bytes at any -par).
func devchaosExp() {
	obsLabel("devchaos")
	var scenarios []bench.DevChaosScenario
	if *faultSpec != "" {
		fm, err := network.ParseFaults(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alpusim: -faults: %v\n", err)
			os.Exit(2)
		}
		scenarios = []bench.DevChaosScenario{{Name: "custom", Faults: *fm}}
	}
	fmt.Printf("Device chaos: soak under injected device faults vs clean software reference — seed %d\n", *faultSeed)
	bench.RenderDevChaos(os.Stdout, bench.RunDevChaos(bench.DevChaosConfig{
		NIC: bench.NICConfig(bench.ALPU128), Seed: *faultSeed,
		Scenarios: scenarios, Jobs: *jobs, Partitions: *par,
	}))
	fmt.Println()
}

// tenancyCfg shapes the heavy-tenancy sweep from the shared flags:
// -quick shrinks the plan, -seed steers the Zipf schedule, and -par
// exercises the determinism claim across partitioned engines.
func tenancyCfg() bench.TenancyBenchConfig {
	cfg := bench.TenancyBenchConfig{Seed: *faultSeed, Jobs: *jobs, Partitions: *par}
	if *quick {
		cfg.Comms = 6
		cfg.Msgs = 512
	}
	return cfg
}

// tenancyExp runs the heavy-tenancy matching sweep behind the sharded
// fabric: software list vs single ALPU vs 2/4/8-shard fabric over the
// identical Zipf plan, every row digest-verified. With -shards N it
// instead dumps that one configuration's receive outcomes — the format
// the determinism CI byte-diffs across shard counts and -par settings.
func tenancyExp() {
	obsLabel("tenancy")
	cfg := tenancyCfg()
	if *shards > 0 {
		p, rep := bench.TenancyOutcomes(cfg, *shards)
		bench.WriteTenancyOutcomes(os.Stdout, p, rep)
		return
	}
	// The report wants the occupancy waterlines (per-config queue depths,
	// per-shard fabric balance) the sweep table cannot show.
	wantReport := *reportOut != "" || *tsOut != "" || obsSrv != nil
	cfg.Series = wantReport
	fmt.Printf("Heavy tenancy: Zipf-skewed multi-communicator matching, seed %d\n", *faultSeed)
	rows := bench.RunTenancy(cfg)
	bench.RenderTenancy(os.Stdout, rows)
	fmt.Println()
	if wantReport {
		emitReport(&obs.Report{
			Title:  fmt.Sprintf("alpusim tenancy sweep (seed %d)", *faultSeed),
			Series: bench.MergedTenancySeries(rows),
		})
	}
}

func anchors() {
	obsLabel("anchors")
	fmt.Println("Measured vs published anchors (§VI-B, §VI-C)")
	qls := []int{0, 5, 25, 50, 100, 150, 200, 350, 400, 450, 500}
	base := bench.RunPreposted(bench.PrepostedConfig{
		NIC: bench.NICConfig(bench.Baseline), QueueLens: qls, Fracs: []float64{0.8, 1.0}, Jobs: *jobs, Partitions: *par,
	})
	al := bench.RunPreposted(bench.PrepostedConfig{
		NIC: bench.NICConfig(bench.ALPU256), QueueLens: qls, Fracs: []float64{1.0}, Jobs: *jobs, Partitions: *par,
	})
	a5 := bench.ExtractFig5(base, al, 256)

	uls := []int{0, 25, 50, 60, 70, 80, 90, 100, 150}
	b6 := bench.RunUnexpected(bench.UnexpectedConfig{NIC: bench.NICConfig(bench.Baseline), QueueLens: uls, Jobs: *jobs, Partitions: *par})
	a6x := bench.RunUnexpected(bench.UnexpectedConfig{NIC: bench.NICConfig(bench.ALPU256), QueueLens: uls, Jobs: *jobs, Partitions: *par})
	a6 := bench.ExtractFig6(b6, a6x)

	tb := stats.NewTable("Anchor", "Paper", "Measured")
	tb.AddRow("per-entry traversal, in cache", "~15 ns", fmt.Sprintf("%.1f ns", a5.InCacheNsPerEntry))
	tb.AddRow("per-entry traversal, out of cache", "~64 ns", fmt.Sprintf("%.1f ns", a5.OutOfCacheNsPerEntry))
	tb.AddRow("full 400-entry traversal", "~13 us", fmt.Sprintf("%.1f us", a5.Full400TraversalUs))
	tb.AddRow("80% of 500-entry traversal", "~24 us", fmt.Sprintf("%.1f us", a5.Traverse80Of500Us))
	tb.AddRow("ALPU zero-queue penalty", "~80 ns", fmt.Sprintf("%.0f ns", a5.PenaltyNs))
	tb.AddRow("ALPU break-even queue length", "~5", fmt.Sprintf("%.1f", a5.BreakEvenEntries))
	tb.AddRow("ALPU-256 flat until", "~256", fmt.Sprintf("%d", a5.FlatUntil))
	tb.AddRow("unexpected: ALPU short-queue loss", "tens of ns", fmt.Sprintf("%.0f ns", a6.ShortQueueLossNs))
	tb.AddRow("unexpected: crossover", "~70", fmt.Sprintf("%d", a6.CrossoverEntries))
	tb.Render(os.Stdout)
	fmt.Println()
}
