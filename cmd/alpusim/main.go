// Command alpusim reruns the paper's simulation experiments and prints
// the series behind each figure and table.
//
// Experiments (-experiment):
//
//	tab3           print the Table III processor parameters in use
//	tab4, tab5     the FPGA prototype tables (see also cmd/fpgareport)
//	fig5-baseline  latency surface, baseline NIC (Fig. 5a/b)
//	fig5-alpu128   latency surface, NIC + 128-entry ALPU (Fig. 5c/d)
//	fig5-alpu256   latency surface, NIC + 256-entry ALPU (Fig. 5e/f)
//	fig6           unexpected-queue latency series, all 3 NICs (Fig. 6)
//	anchors        the §VI-B/§VI-C text anchors, measured vs published
//	all            everything above
//
// Flags: -quick shrinks the sweeps (~10x faster), -format csv emits
// machine-readable series instead of tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"alpusim/internal/alpu"
	"alpusim/internal/bench"
	"alpusim/internal/fpga"
	"alpusim/internal/params"
	"alpusim/internal/stats"
)

var (
	experiment = flag.String("experiment", "all", "which experiment to run (see doc)")
	quick      = flag.Bool("quick", false, "reduced sweeps")
	format     = flag.String("format", "table", "output format: table or csv")
	msgSize    = flag.Int("size", 0, "message payload bytes for fig5/fig6")
)

func main() {
	flag.Parse()
	switch *experiment {
	case "tab3":
		tab3()
	case "tab4":
		fpgaTable(alpu.PostedReceives)
	case "tab5":
		fpgaTable(alpu.UnexpectedMessages)
	case "fig5-baseline":
		fig5(bench.Baseline)
	case "fig5-alpu128":
		fig5(bench.ALPU128)
	case "fig5-alpu256":
		fig5(bench.ALPU256)
	case "fig6":
		fig6()
	case "gap":
		gapExp()
	case "anchors":
		anchors()
	case "all":
		tab3()
		fpgaTable(alpu.PostedReceives)
		fpgaTable(alpu.UnexpectedMessages)
		fig5(bench.Baseline)
		fig5(bench.ALPU128)
		fig5(bench.ALPU256)
		fig6()
		gapExp()
		anchors()
	default:
		fmt.Fprintf(os.Stderr, "alpusim: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(1)
	}
}

func queueLens() []int {
	if *quick {
		return []int{0, 50, 100, 200, 300, 400, 500}
	}
	out := []int{0}
	for q := 25; q <= 500; q += 25 {
		out = append(out, q)
	}
	return out
}

func fracs() []float64 {
	if *quick {
		return []float64{0, 0.5, 1.0}
	}
	return []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
}

func unexpLens() []int {
	if *quick {
		return []int{0, 50, 100, 200, 300, 400, 500}
	}
	out := []int{0, 10, 25}
	for u := 50; u <= 500; u += 25 {
		out = append(out, u)
	}
	return out
}

func tab3() {
	fmt.Println("Table III: processor simulation parameters (in use)")
	tb := stats.NewTable("Parameter", "CPU", "NIC Processor")
	host, nicCPU := params.HostCPU(), params.NICCPU()
	tb.AddRow("Clock Speed", fmt.Sprintf("%.0f MHz", host.Clock.Freq()), fmt.Sprintf("%.0f MHz", nicCPU.Clock.Freq()))
	tb.AddRow("L1 Cache", fmt.Sprintf("%dK %d-way", host.L1Size>>10, host.L1Assoc), fmt.Sprintf("%dK %d-way", nicCPU.L1Size>>10, nicCPU.L1Assoc))
	tb.AddRow("L2 Cache", fmt.Sprintf("%dK", host.L2Size>>10), "none")
	tb.AddRow("Lat. To Main Memory", fmt.Sprintf("%d cycles", host.MemLatency), fmt.Sprintf("%d cycles", nicCPU.MemLatency))
	tb.AddRow("Network Wire Lat.", params.WireLatency.String(), "")
	tb.AddRow("NIC local bus", "", params.NICBusDelay.String())
	tb.Render(os.Stdout)
	fmt.Println()
}

func fpgaTable(v alpu.Variant) {
	name := "Table IV (posted receives ALPU)"
	if v == alpu.UnexpectedMessages {
		name = "Table V (unexpected messages ALPU)"
	}
	fmt.Println(name)
	tb := stats.NewTable("Cells", "Block", "LUTs", "FFs", "Slices", "MHz", "Latency")
	for _, pub := range fpga.PublishedFor(v) {
		e := fpga.PrototypeParams(v, pub.Cells, pub.BlockSize).Estimate()
		tb.AddRow(pub.Cells, pub.BlockSize, e.LUTs, e.FFs, e.Slices, e.FreqMHz, e.LatencyCycles)
	}
	tb.Render(os.Stdout)
	fmt.Println("(run cmd/fpgareport for the side-by-side comparison with the published values)")
	fmt.Println()
}

func fig5(kind bench.NICKind) {
	fmt.Printf("Fig. 5 surface: %s NIC, %d-byte messages (one-way latency, ns)\n", kind, *msgSize)
	pts := bench.RunPreposted(bench.PrepostedConfig{
		NIC:       bench.NICConfig(kind),
		QueueLens: queueLens(),
		Fracs:     fracs(),
		MsgSize:   *msgSize,
	})
	if *format == "csv" {
		rows := make([][]any, 0, len(pts))
		for _, p := range pts {
			rows = append(rows, []any{p.QueueLen, p.Traversed, p.MsgSize, p.Latency.Nanoseconds()})
		}
		stats.CSV(os.Stdout, []string{"queue_len", "traversed", "msg_size", "latency_ns"}, rows)
		fmt.Println()
		return
	}
	// Render as queue-length x fraction grid (the 3D surface flattened).
	byQ := map[int]map[float64]bench.PrepostedPoint{}
	for _, p := range pts {
		if byQ[p.QueueLen] == nil {
			byQ[p.QueueLen] = map[float64]bench.PrepostedPoint{}
		}
		byQ[p.QueueLen][p.Frac] = p
	}
	header := []any{"Q \\ frac"}
	for _, f := range fracs() {
		header = append(header, fmt.Sprintf("%.0f%%", f*100))
	}
	hs := make([]string, len(header))
	for i, h := range header {
		hs[i] = fmt.Sprint(h)
	}
	tb := stats.NewTable(hs...)
	for _, q := range queueLens() {
		row := []any{q}
		for _, f := range fracs() {
			if p, ok := byQ[q][f]; ok {
				row = append(row, fmt.Sprintf("%.0f", p.Latency.Nanoseconds()))
			} else {
				row = append(row, "·") // aliased with a smaller fraction
			}
		}
		tb.AddRow(row...)
	}
	tb.Render(os.Stdout)
	fmt.Println()
}

func fig6() {
	fmt.Printf("Fig. 6: unexpected queue latency, %d-byte messages (ns)\n", *msgSize)
	series := map[bench.NICKind][]bench.UnexpectedPoint{}
	kinds := []bench.NICKind{bench.Baseline, bench.ALPU128, bench.ALPU256}
	for _, k := range kinds {
		series[k] = bench.RunUnexpected(bench.UnexpectedConfig{
			NIC:       bench.NICConfig(k),
			QueueLens: unexpLens(),
			MsgSize:   *msgSize,
		})
	}
	if *format == "csv" {
		rows := make([][]any, 0)
		for i, u := range unexpLens() {
			rows = append(rows, []any{u,
				series[bench.Baseline][i].Latency.Nanoseconds(),
				series[bench.ALPU128][i].Latency.Nanoseconds(),
				series[bench.ALPU256][i].Latency.Nanoseconds()})
		}
		stats.CSV(os.Stdout, []string{"queue_len", "baseline_ns", "alpu128_ns", "alpu256_ns"}, rows)
		fmt.Println()
		return
	}
	tb := stats.NewTable("Unexpected Q", "baseline", "alpu-128", "alpu-256")
	for i, u := range unexpLens() {
		tb.AddRow(u,
			fmt.Sprintf("%.0f", series[bench.Baseline][i].Latency.Nanoseconds()),
			fmt.Sprintf("%.0f", series[bench.ALPU128][i].Latency.Nanoseconds()),
			fmt.Sprintf("%.0f", series[bench.ALPU256][i].Latency.Nanoseconds()))
	}
	tb.Render(os.Stdout)
	fmt.Println()
}

// gapExp reports the message-rate study behind the paper's §I gap
// motivation, including the §VI-B Quadrics Elan4 comparison point.
func gapExp() {
	fmt.Println("Gap (inverse message rate) vs. match depth, plus the Elan4-class comparison")
	depths := []int{0, 25, 50, 100, 150, 200}
	if *quick {
		depths = []int{0, 50, 150}
	}
	series := map[string][]bench.GapPoint{}
	order := []string{"baseline", "alpu-128", "alpu-256", "elan4-class"}
	series["baseline"] = bench.RunGap(bench.GapConfig{NIC: bench.NICConfig(bench.Baseline), Depths: depths})
	series["alpu-128"] = bench.RunGap(bench.GapConfig{NIC: bench.NICConfig(bench.ALPU128), Depths: depths})
	series["alpu-256"] = bench.RunGap(bench.GapConfig{NIC: bench.NICConfig(bench.ALPU256), Depths: depths})
	series["elan4-class"] = bench.RunGap(bench.GapConfig{NIC: bench.ElanNICConfig(), Depths: depths})

	tb := stats.NewTable("depth", "baseline ns/msg", "alpu-128", "alpu-256", "elan4-class")
	for i, d := range depths {
		row := []any{d}
		for _, k := range order {
			row = append(row, fmt.Sprintf("%.0f", series[k][i].NsPerMsg))
		}
		tb.AddRow(row...)
	}
	tb.Render(os.Stdout)
	fmt.Println()
}

func anchors() {
	fmt.Println("Measured vs published anchors (§VI-B, §VI-C)")
	qls := []int{0, 5, 25, 50, 100, 150, 200, 350, 400, 450, 500}
	base := bench.RunPreposted(bench.PrepostedConfig{
		NIC: bench.NICConfig(bench.Baseline), QueueLens: qls, Fracs: []float64{0.8, 1.0},
	})
	al := bench.RunPreposted(bench.PrepostedConfig{
		NIC: bench.NICConfig(bench.ALPU256), QueueLens: qls, Fracs: []float64{1.0},
	})
	a5 := bench.ExtractFig5(base, al, 256)

	uls := []int{0, 25, 50, 60, 70, 80, 90, 100, 150}
	b6 := bench.RunUnexpected(bench.UnexpectedConfig{NIC: bench.NICConfig(bench.Baseline), QueueLens: uls})
	a6x := bench.RunUnexpected(bench.UnexpectedConfig{NIC: bench.NICConfig(bench.ALPU256), QueueLens: uls})
	a6 := bench.ExtractFig6(b6, a6x)

	tb := stats.NewTable("Anchor", "Paper", "Measured")
	tb.AddRow("per-entry traversal, in cache", "~15 ns", fmt.Sprintf("%.1f ns", a5.InCacheNsPerEntry))
	tb.AddRow("per-entry traversal, out of cache", "~64 ns", fmt.Sprintf("%.1f ns", a5.OutOfCacheNsPerEntry))
	tb.AddRow("full 400-entry traversal", "~13 us", fmt.Sprintf("%.1f us", a5.Full400TraversalUs))
	tb.AddRow("80% of 500-entry traversal", "~24 us", fmt.Sprintf("%.1f us", a5.Traverse80Of500Us))
	tb.AddRow("ALPU zero-queue penalty", "~80 ns", fmt.Sprintf("%.0f ns", a5.PenaltyNs))
	tb.AddRow("ALPU break-even queue length", "~5", fmt.Sprintf("%.1f", a5.BreakEvenEntries))
	tb.AddRow("ALPU-256 flat until", "~256", fmt.Sprintf("%d", a5.FlatUntil))
	tb.AddRow("unexpected: ALPU short-queue loss", "tens of ns", fmt.Sprintf("%.0f ns", a6.ShortQueueLossNs))
	tb.AddRow("unexpected: crossover", "~70", fmt.Sprintf("%d", a6.CrossoverEntries))
	tb.Render(os.Stdout)
	fmt.Println()
}
