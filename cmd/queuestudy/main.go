// Command queuestudy reruns the style of application queue study that
// motivated the ALPU (the paper's §I-II, following refs [8] and [9]):
// for a set of application patterns and process counts, it reports how
// deep the MPI queues grow, where matches land in them, and what the
// ALPU does to traversal work and completion time.
//
//	queuestudy [-ranks 4,8,16] [-workload all|halo|master|storm|sweep|irregular] [-cells 128] [-shards N]
//	           [-jobs N] [-par N] [-faults drop=0.01,corrupt=0.01] [-seed N] [-breakdown] [-trace FILE] [-metrics FILE]
//
// With -faults every study runs over a faulty network with the NIC
// reliability protocol recovering; a second table reports what the
// recovery cost. The same -seed reproduces the identical run.
//
// -shards N runs the accelerated configurations on the sharded matching
// fabric (N ALPU instances per posted queue, see alpusim -help) and adds
// a per-shard occupancy/overflow table. Matching outcomes are identical
// to the single-ALPU runs; only the cost model moves.
//
// Telemetry: -breakdown adds a per-study table of mean per-message
// latency phases; -trace FILE writes a Chrome trace-event JSON of every
// study world (load at ui.perfetto.dev); -metrics FILE writes the merged
// metrics-registry snapshot as JSON; -report FILE writes a
// self-contained static HTML run report with per-study occupancy
// waterlines (inline SVG, no JavaScript). "-" means stdout. All outputs
// are byte-identical at any -jobs setting.
//
// -serve ADDR runs the observability HTTP server while the studies run
// (/metrics, /healthz, /progress, /critpath, /report, /timeseries); with
// -report data collected, the run report and series are published on
// /report and /timeseries once the studies finish.
//
// -par N splits every study world into N per-rank partitions run as a
// conservative parallel simulation (see alpusim -help); every output is
// byte-identical for any -par N >= 1, with 0 keeping the serial engine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/obs"
	"alpusim/internal/profiling"
	"alpusim/internal/sim"
	"alpusim/internal/stats"
	"alpusim/internal/sweep"
	"alpusim/internal/telemetry"
	"alpusim/internal/workloads"
)

var (
	ranksFlag  = flag.String("ranks", "4,8,16", "comma-separated process counts")
	workload   = flag.String("workload", "all", "halo, master, storm, sweep, irregular, or all")
	cells      = flag.Int("cells", 128, "ALPU cells for the accelerated runs")
	shardsFlag = flag.Int("shards", 0, "matching-fabric shards for the accelerated runs (0/1 = single ALPU); adds a per-shard occupancy table")
	jobsFlag   = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation worlds (1 = sequential)")
	parFlag    = flag.Int("par", 0, "partitions per study world: conservative parallel simulation (0 = serial engine; output identical for any value >= 1)")
	faultSpec  = flag.String("faults", "", "fault model: a probability or class=prob pairs (see alpusim -help)")
	faultSeed  = flag.Int64("seed", 1, "fault-injection seed")
	breakdown  = flag.Bool("breakdown", false, "report mean per-message latency phases per study")
	tracePath  = flag.String("trace", "", "write Chrome trace-event JSON to this file (\"-\" = stdout)")
	metricsOut = flag.String("metrics", "", "write the merged metrics snapshot JSON to this file (\"-\" = stdout)")
	reportOut  = flag.String("report", "", "write the self-contained HTML run report to this file (\"-\" = stdout); with -serve it is also published at /report")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	serveAddr  = flag.String("serve", "", "serve the live observability plane (/metrics, /healthz, /progress, /critpath, /report, /timeseries) on this address while the studies run")
	linger     = flag.Duration("linger", 0, "with -serve: keep the observability server up this long after the studies finish")
	flightSize = flag.Int("flightsize", 0, "flight-recorder ring capacity in events per study world (0 = default when a watchdog is armed; < 0 disables the recorder)")
)

// faultyWatchdog bounds each study world when faults are injected; the
// studies drain in well under a simulated second even while recovering.
const faultyWatchdog = 500 * sim.Millisecond

type runner struct {
	name string
	run  func(cfg nic.Config, ranks int, opts ...workloads.Option) workloads.Report
}

func runners() []runner {
	return []runner{
		{"halo", func(cfg nic.Config, n int, opts ...workloads.Option) workloads.Report {
			return workloads.Halo(cfg, n, 10, 1024, 5, opts...)
		}},
		{"master", func(cfg nic.Config, n int, opts ...workloads.Option) workloads.Report {
			return workloads.MasterWorker(cfg, n, 4, 256, 3, opts...)
		}},
		{"storm", func(cfg nic.Config, n int, opts ...workloads.Option) workloads.Report {
			return workloads.UnexpectedStorm(cfg, n, 30, 64, opts...)
		}},
		{"sweep", func(cfg nic.Config, n int, opts ...workloads.Option) workloads.Report {
			return workloads.Sweep(cfg, n, 4, 512, opts...)
		}},
		{"irregular", func(cfg nic.Config, n int, opts ...workloads.Option) workloads.Report {
			return workloads.Irregular(cfg, n, 4, 3, 128, 7, opts...)
		}},
	}
}

func main() {
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queuestudy:", err)
		os.Exit(1)
	}
	defer stopProf()
	if *jobsFlag < 1 {
		*jobsFlag = runtime.GOMAXPROCS(0)
	}
	var ranks []int
	for _, part := range strings.Split(*ranksFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 2 {
			fmt.Fprintln(os.Stderr, "queuestudy: bad -ranks")
			os.Exit(1)
		}
		ranks = append(ranks, v)
	}
	fm, err := network.ParseFaults(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "queuestudy: -faults: %v\n", err)
		os.Exit(1)
	}
	var opts []workloads.Option
	if fm != nil {
		opts = []workloads.Option{workloads.WithFaults(fm), workloads.WithWatchdog(faultyWatchdog)}
	}
	if *parFlag > 0 {
		opts = append(opts, workloads.WithPartitions(*parFlag))
	}
	if *flightSize != 0 {
		opts = append(opts, workloads.WithFlightEvents(*flightSize))
	}
	var srv *obs.Server
	if *serveAddr != "" {
		progress := sweep.NewProgress()
		progress.SetLabel("queuestudy")
		sweep.SetProgress(progress)
		srv = obs.NewServer(obs.Options{Progress: progress})
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "queuestudy: -serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "queuestudy: observability plane on http://%s\n", addr)
	}

	fmt.Printf("Application queue study (refs [8]/[9] methodology), ALPU cells=%d\n", *cells)
	if fm != nil {
		fmt.Printf("fault injection: %s, seed %d\n", *faultSpec, *faultSeed)
	}
	fmt.Println()
	tb := stats.NewTable("workload", "ranks",
		"peak posted", "peak unexp", "match depth p50/p99/max",
		"traversed base", "traversed alpu", "elapsed base", "elapsed alpu", "speedup")

	// Every (workload, ranks, NIC) simulation is an independent world:
	// enumerate the matrix, fan it across the sweep pool, and assemble
	// rows in enumeration order so output is identical at any -jobs.
	type study struct {
		name        string
		ranks       int
		base, accel workloads.Report
	}
	var studies []study
	var runs []func() workloads.Report
	// Per-run recorders (phases, tracer, sampler), indexed like runs:
	// each world owns its recorders; outputs merge in enumeration order.
	wantReport := *reportOut != "" || srv != nil
	var phases []*telemetry.Phases
	var tracers []*telemetry.Tracer
	var samplers []*telemetry.Sampler
	var runLabels []string
	addRun := func(cfg nic.Config, n int, r runner, label string) {
		var p *telemetry.Phases
		var tr *telemetry.Tracer
		var sa *telemetry.Sampler
		if *breakdown {
			p = telemetry.NewPhases()
		}
		if *tracePath != "" {
			tr = telemetry.NewTracer()
		}
		if wantReport {
			sa = telemetry.NewSampler(0, 0)
		}
		phases = append(phases, p)
		tracers = append(tracers, tr)
		samplers = append(samplers, sa)
		runLabels = append(runLabels, fmt.Sprintf("%s/r%d/%s/", r.name, n, label))
		ro := append(append([]workloads.Option{}, opts...),
			workloads.WithPhases(p), workloads.WithTracer(tr), workloads.WithSeries(sa))
		runs = append(runs, func() workloads.Report { return r.run(cfg, n, ro...) })
	}
	for _, r := range runners() {
		if *workload != "all" && *workload != r.name {
			continue
		}
		for _, n := range ranks {
			r, n := r, n
			studies = append(studies, study{name: r.name, ranks: n})
			addRun(nic.Config{}, n, r, "base")
			accel := nic.Config{UseALPU: true, Cells: *cells}
			if *shardsFlag > 1 {
				accel.MatchShards = *shardsFlag
			}
			addRun(accel, n, r, "alpu")
		}
	}
	reports := sweep.Map(*jobsFlag, len(runs), func(i int) workloads.Report { return runs[i]() })
	for i := range studies {
		studies[i].base, studies[i].accel = reports[2*i], reports[2*i+1]
	}
	if srv != nil {
		for _, rep := range reports {
			srv.MergeSnapshot(rep.Telemetry)
		}
	}

	for _, s := range studies {
		depths := s.base.PostedDepths
		depths.Merge(&s.base.UnexpDepths)
		speedup := float64(s.base.Elapsed) / float64(s.accel.Elapsed)
		tb.AddRow(s.name, s.ranks,
			s.base.PeakPosted, s.base.PeakUnexp,
			fmt.Sprintf("%d/%d/%d", depths.Percentile(0.5), depths.Percentile(0.99), depths.Max()),
			s.base.EntriesTraversed, s.accel.EntriesTraversed,
			fmt.Sprintf("%.1fus", s.base.Elapsed.Microseconds()),
			fmt.Sprintf("%.1fus", s.accel.Elapsed.Microseconds()),
			fmt.Sprintf("%.2fx", speedup))
	}
	tb.Render(os.Stdout)
	fmt.Println()
	if *shardsFlag > 1 {
		// Per-shard fabric view of every accelerated run: how evenly the
		// dispatch hash spread each study's posted traffic, how much of it
		// sat in software overflow, and the hot-entry cache's hit rate.
		// Peaks are folded across the world's NICs by maximum, counters by
		// sum, matching Snapshot.Merge semantics.
		ft := stats.NewTable("workload", "ranks", "shard",
			"peak len", "promotions", "demotions", "cache hit%")
		for _, s := range studies {
			snap := s.accel.Telemetry
			hitCol := "·"
			if total := snap.Sum("fabric/cache_hits") + snap.Sum("fabric/cache_misses"); total > 0 {
				hitCol = fmt.Sprintf("%.1f", 100*float64(snap.Sum("fabric/cache_hits"))/float64(total))
			}
			for sh := 0; sh < *shardsFlag; sh++ {
				sp := fmt.Sprintf("fabric/shard%d", sh)
				peak := int64(0)
				for name, g := range snap.Gauges {
					if strings.HasSuffix(name, sp+"/peak_len") && g > peak {
						peak = g
					}
				}
				cacheCell := "·"
				if sh == 0 {
					cacheCell = hitCol
				}
				ft.AddRow(s.name, s.ranks, sh, peak,
					snap.Sum(sp+"/promotions"), snap.Sum(sp+"/demotions"), cacheCell)
			}
		}
		ft.Render(os.Stdout)
		fmt.Println()
	}
	if fm != nil {
		// The recovery table: what the injected faults cost each study
		// (base + ALPU runs summed). Completion at all is the correctness
		// check — every study drains only if every message matched.
		rt := stats.NewTable("workload", "ranks", "injected", "retransmits", "nacks", "rnr", "recoveries", "errors")
		for _, s := range studies {
			rt.AddRow(s.name, s.ranks,
				s.base.FaultsInjected+s.accel.FaultsInjected,
				s.base.Retransmits+s.accel.Retransmits,
				s.base.NacksSent+s.accel.NacksSent,
				s.base.RNRSent+s.accel.RNRSent,
				s.base.Recoveries+s.accel.Recoveries,
				s.base.ProtocolErrors+s.accel.ProtocolErrors)
		}
		rt.Render(os.Stdout)
		fmt.Println()
	}
	if *breakdown {
		// Mean per-message phases: every eager message a study world
		// completed, decomposed into the telemetry pipeline phases.
		bt := stats.NewTable("workload", "ranks", "nic", "msgs",
			"wire", "recovery", "rxfifo", "search", "deliver", "host", "mean total (ns)")
		for i, s := range studies {
			for j, label := range []string{"baseline", "alpu"} {
				tot := phases[2*i+j].Totals()
				bt.AddRow(s.name, s.ranks, label, tot.Messages,
					tot.MeanNs(telemetry.PhaseWire),
					tot.MeanNs(telemetry.PhaseRecovery),
					tot.MeanNs(telemetry.PhaseRxFIFO),
					tot.MeanNs(telemetry.PhaseSearch),
					tot.MeanNs(telemetry.PhaseDeliver),
					tot.MeanNs(telemetry.PhaseHost),
					tot.MeanTotalNs())
			}
		}
		bt.Render(os.Stdout)
		fmt.Println()
	}
	if *tracePath != "" {
		err := writeOutput(*tracePath, func(w io.Writer) error {
			return telemetry.WriteTrace(w, tracers...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "queuestudy: -trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		var merged telemetry.Snapshot
		for _, rep := range reports {
			merged.Merge(rep.Telemetry)
		}
		err := writeOutput(*metricsOut, func(w io.Writer) error {
			return merged.WriteJSON(w)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "queuestudy: -metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if wantReport {
		// Fold the per-run samplers under study-scoped prefixes
		// ("halo/r8/alpu/..."), as the waterline names in the report. The
		// title carries only workload parameters — nothing -jobs or -par
		// dependent — so the report bytes are parallelism-invariant.
		series := telemetry.NewSampler(0, 0)
		for i, sa := range samplers {
			series.AbsorbAs(runLabels[i], sa)
		}
		title := fmt.Sprintf("queuestudy %s, ranks %s, cells %d", *workload, *ranksFlag, *cells)
		if fm != nil {
			title += fmt.Sprintf(" (faults %s, seed %d)", *faultSpec, *faultSeed)
		}
		var totals telemetry.Totals
		for _, p := range phases {
			totals.Merge(p.Totals())
		}
		var merged telemetry.Snapshot
		for _, rep := range reports {
			merged.Merge(rep.Telemetry)
		}
		rep := &obs.Report{Title: title, Series: series, Phases: totals, Snapshot: merged}
		html, tsJSON := rep.HTML(), rep.TimeseriesJSON()
		if *reportOut != "" {
			err := writeOutput(*reportOut, func(w io.Writer) error {
				_, err := w.Write(html)
				return err
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "queuestudy: -report: %v\n", err)
				os.Exit(1)
			}
		}
		if srv != nil {
			srv.SetReport(html, tsJSON)
		}
	}
	fmt.Println("Reading the table: queue depth and match depth grow with the process")
	fmt.Println("count for manager/worker and storm patterns (the paper's motivation);")
	fmt.Println("the ALPU collapses software traversals and pays off exactly there,")
	fmt.Println("while staying near-neutral for short-queue nearest-neighbour codes.")
	if srv != nil {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "queuestudy: studies done; serving for another %v\n", *linger)
			time.Sleep(*linger)
		}
		srv.Close()
	}
}

// writeOutput writes to path via write, with "-" meaning stdout.
func writeOutput(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
