// Command queuestudy reruns the style of application queue study that
// motivated the ALPU (the paper's §I-II, following refs [8] and [9]):
// for a set of application patterns and process counts, it reports how
// deep the MPI queues grow, where matches land in them, and what the
// ALPU does to traversal work and completion time.
//
//	queuestudy [-ranks 4,8,16] [-workload all|halo|master|storm|sweep|irregular] [-cells 128]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"alpusim/internal/nic"
	"alpusim/internal/stats"
	"alpusim/internal/workloads"
)

var (
	ranksFlag = flag.String("ranks", "4,8,16", "comma-separated process counts")
	workload  = flag.String("workload", "all", "halo, master, storm, sweep, irregular, or all")
	cells     = flag.Int("cells", 128, "ALPU cells for the accelerated runs")
)

type runner struct {
	name string
	run  func(cfg nic.Config, ranks int) workloads.Report
}

func runners() []runner {
	return []runner{
		{"halo", func(cfg nic.Config, n int) workloads.Report {
			return workloads.Halo(cfg, n, 10, 1024, 5)
		}},
		{"master", func(cfg nic.Config, n int) workloads.Report {
			return workloads.MasterWorker(cfg, n, 4, 256, 3)
		}},
		{"storm", func(cfg nic.Config, n int) workloads.Report {
			return workloads.UnexpectedStorm(cfg, n, 30, 64)
		}},
		{"sweep", func(cfg nic.Config, n int) workloads.Report {
			return workloads.Sweep(cfg, n, 4, 512)
		}},
		{"irregular", func(cfg nic.Config, n int) workloads.Report {
			return workloads.Irregular(cfg, n, 4, 3, 128, 7)
		}},
	}
}

func main() {
	flag.Parse()
	var ranks []int
	for _, part := range strings.Split(*ranksFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 2 {
			fmt.Fprintln(os.Stderr, "queuestudy: bad -ranks")
			os.Exit(1)
		}
		ranks = append(ranks, v)
	}

	fmt.Printf("Application queue study (refs [8]/[9] methodology), ALPU cells=%d\n\n", *cells)
	tb := stats.NewTable("workload", "ranks",
		"peak posted", "peak unexp", "match depth p50/p99/max",
		"traversed base", "traversed alpu", "elapsed base", "elapsed alpu", "speedup")

	for _, r := range runners() {
		if *workload != "all" && *workload != r.name {
			continue
		}
		for _, n := range ranks {
			base := r.run(nic.Config{}, n)
			accel := r.run(nic.Config{UseALPU: true, Cells: *cells}, n)
			depths := base.PostedDepths
			depths.Merge(&base.UnexpDepths)
			speedup := float64(base.Elapsed) / float64(accel.Elapsed)
			tb.AddRow(r.name, n,
				base.PeakPosted, base.PeakUnexp,
				fmt.Sprintf("%d/%d/%d", depths.Percentile(0.5), depths.Percentile(0.99), depths.Max()),
				base.EntriesTraversed, accel.EntriesTraversed,
				fmt.Sprintf("%.1fus", base.Elapsed.Microseconds()),
				fmt.Sprintf("%.1fus", accel.Elapsed.Microseconds()),
				fmt.Sprintf("%.2fx", speedup))
		}
	}
	tb.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Reading the table: queue depth and match depth grow with the process")
	fmt.Println("count for manager/worker and storm patterns (the paper's motivation);")
	fmt.Println("the ALPU collapses software traversals and pays off exactly there,")
	fmt.Println("while staying near-neutral for short-queue nearest-neighbour codes.")
}
