// Command fpgareport regenerates the paper's Tables IV and V (sizes and
// speeds of the posted-receive and unexpected-message ALPU prototypes on a
// Virtex-II Pro 100 -5) from the structural estimator, printing each
// estimate next to the published value and the relative error.
//
// Usage:
//
//	fpgareport [-cells 128,256] [-blocks 8,16,32] [-asic]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"alpusim/internal/alpu"
	"alpusim/internal/fpga"
	"alpusim/internal/stats"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	cells := flag.String("cells", "256,128", "comma-separated total cell counts")
	blocks := flag.String("blocks", "8,16,32", "comma-separated block sizes")
	asic := flag.Bool("asic", false, "also print the projected ASIC clock (5x, §VI-A)")
	flag.Parse()

	cellList, err := parseInts(*cells)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgareport: bad -cells:", err)
		os.Exit(1)
	}
	blockList, err := parseInts(*blocks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgareport: bad -blocks:", err)
		os.Exit(1)
	}

	for _, v := range []alpu.Variant{alpu.PostedReceives, alpu.UnexpectedMessages} {
		table := "Table IV (posted receives ALPU)"
		if v == alpu.UnexpectedMessages {
			table = "Table V (unexpected messages ALPU)"
		}
		fmt.Println(table)
		header := []string{"Cells", "Block", "LUTs", "FFs", "Slices", "MHz", "Lat"}
		if *asic {
			header = append(header, "ASIC MHz")
		}
		header = append(header, "paper LUTs/FFs/Slices/MHz/Lat", "max err")
		tb := stats.NewTable(header...)
		for _, c := range cellList {
			for _, b := range blockList {
				p := fpga.PrototypeParams(v, c, b)
				if err := p.Geometry.Validate(); err != nil {
					fmt.Fprintln(os.Stderr, "fpgareport:", err)
					os.Exit(1)
				}
				e := p.Estimate()
				row := []any{c, b, e.LUTs, e.FFs, e.Slices, e.FreqMHz, e.LatencyCycles}
				if *asic {
					row = append(row, e.ASICFreqMHz())
				}
				pub, maxErr := published(v, c, b, e)
				row = append(row, pub, maxErr)
				tb.AddRow(row...)
			}
		}
		tb.Render(os.Stdout)
		fmt.Println()
	}
}

// published returns the paper's row (when this build point was published)
// and the largest relative error across the resource columns.
func published(v alpu.Variant, cells, block int, e fpga.Estimate) (string, string) {
	for _, pub := range fpga.PublishedFor(v) {
		if pub.Cells != cells || pub.BlockSize != block {
			continue
		}
		maxErr := 0.0
		for _, pair := range [][2]int{{e.LUTs, pub.LUTs}, {e.FFs, pub.FFs}, {e.Slices, pub.Slices}} {
			err := 100 * abs(float64(pair[0]-pair[1])) / float64(pair[1])
			if err > maxErr {
				maxErr = err
			}
		}
		return fmt.Sprintf("%d/%d/%d/%.1f/%d", pub.LUTs, pub.FFs, pub.Slices, pub.FreqMHz, pub.LatencyCycles),
			fmt.Sprintf("%.1f%%", maxErr)
	}
	return "(not prototyped in the paper)", "-"
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
