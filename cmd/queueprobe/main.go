// Command queueprobe drives a standalone ALPU device model with the
// Table I/II command protocol, the role the paper's FPGA prototype played
// for exploring and refining the control interface (§I, §V-D).
//
// It reads a small command language from stdin (or runs a demo script
// with -demo):
//
//	start                         START INSERT
//	insert <ctx> <src|*> <tag|*> <alputag>
//	stop                          STOP INSERT
//	reset                         RESET
//	probe <ctx> <src|*> <tag|*>   push a header/receive probe
//	occupancy | tags | stats      inspect the device
//
// Responses are printed as they appear in the result FIFO, with
// simulated timestamps.
//
//	queueprobe [-cells 128] [-block 16] [-variant posted|unexpected] [-demo]
//	           [-trace FILE] [-metrics FILE]
//
// -trace FILE writes the session's device activity (insert/search spans
// on the simulated clock) as Chrome trace-event JSON; -metrics FILE
// writes the device counters as a metrics snapshot. "-" means stdout.
//
// -serve ADDR runs the shared observability HTTP server (/metrics,
// /healthz, /progress, /critpath, /report, /timeseries) for the session;
// queueprobe re-publishes the device counters to /metrics after every
// command. The run-report endpoints answer 503 here — single-device
// probing has no world to report on; they are alpusim's and
// queuestudy's.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"flag"

	"alpusim/internal/alpu"
	"alpusim/internal/match"
	"alpusim/internal/obs"
	"alpusim/internal/profiling"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

var (
	cells      = flag.Int("cells", 128, "total cells")
	block      = flag.Int("block", 16, "cells per block (power of 2)")
	variant    = flag.String("variant", "posted", "posted or unexpected")
	demo       = flag.Bool("demo", false, "run the built-in demo script")
	tracePath  = flag.String("trace", "", "write Chrome trace-event JSON to this file (\"-\" = stdout)")
	metricsOut = flag.String("metrics", "", "write the device metrics snapshot JSON to this file (\"-\" = stdout)")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	serveAddr  = flag.String("serve", "", "serve the live observability plane (/metrics, /healthz, /progress, /critpath, /report, /timeseries) on this address; the device counters are re-published after every command")
	linger     = flag.Duration("linger", 0, "with -serve: keep the observability server up this long after the session ends")
)

const demoScript = `start
insert 1 * 7 100
insert 1 3 7 200
insert 1 4 9 300
stop
occupancy
probe 1 3 7
probe 1 3 7
probe 1 9 1
tags
reset
occupancy
stats
`

func main() {
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queueprobe:", err)
		os.Exit(1)
	}
	defer stopProf()
	v := alpu.PostedReceives
	if strings.HasPrefix(*variant, "unexp") {
		v = alpu.UnexpectedMessages
	}
	cfg := alpu.DefaultConfig(v, *cells)
	cfg.Geometry.BlockSize = *block
	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = telemetry.NewTracer()
		tracer.NameProcess(0, "alpu")
		cfg.Tracer = tracer
	}
	eng := sim.NewEngine()
	dev, err := alpu.NewDevice(eng, "alpu", cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queueprobe:", err)
		os.Exit(1)
	}
	fmt.Printf("ALPU %s: %d cells, block %d, %d-cycle pipeline at %.0f MHz\n",
		v, *cells, *block, cfg.MatchCycles, cfg.Clock.Freq())

	// The REPL is single-threaded, so the server never reads the device
	// directly: after each command settles, the counters are harvested
	// into a frozen snapshot the scrape handler serves from behind its
	// own lock.
	var srv *obs.Server
	publish := func() {
		if srv == nil {
			return
		}
		reg := telemetry.NewRegistry()
		dev.Publish(reg, "alpu")
		srv.SetSnapshot(reg.Snapshot())
	}
	if *serveAddr != "" {
		srv = obs.NewServer(obs.Options{})
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queueprobe: -serve:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "queueprobe: observability plane on http://%s\n", addr)
		publish()
	}

	var in *bufio.Scanner
	if *demo {
		in = bufio.NewScanner(strings.NewReader(demoScript))
	} else {
		in = bufio.NewScanner(os.Stdin)
	}
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if *demo {
			fmt.Println("> " + line)
		}
		if err := exec(eng, dev, line); err != nil {
			fmt.Fprintln(os.Stderr, "queueprobe:", err)
		}
		// Let the hardware settle, then print any responses.
		eng.Run()
		for {
			r, ok := dev.Results.Pop()
			if !ok {
				break
			}
			switch r.Kind {
			case alpu.RespStartAck:
				fmt.Printf("[%9v] %v: %d free\n", eng.Now(), r.Kind, r.Free)
			case alpu.RespMatchSuccess:
				fmt.Printf("[%9v] %v: tag=%d\n", eng.Now(), r.Kind, r.Tag)
			default:
				fmt.Printf("[%9v] %v\n", eng.Now(), r.Kind)
			}
		}
		publish()
	}
	if *tracePath != "" {
		if err := writeOutput(*tracePath, tracer.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "queueprobe: -trace:", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		reg := telemetry.NewRegistry()
		dev.Publish(reg, "alpu")
		if err := writeOutput(*metricsOut, reg.Snapshot().WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "queueprobe: -metrics:", err)
			os.Exit(1)
		}
	}
	if srv != nil {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "queueprobe: session done; serving for another %v\n", *linger)
			time.Sleep(*linger)
		}
		srv.Close()
	}
}

// writeOutput writes to path via write, with "-" meaning stdout.
func writeOutput(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// field parses a decimal or the wildcard "*".
func field(s string) (int32, bool, error) {
	if s == "*" {
		return 0, true, nil
	}
	v, err := strconv.Atoi(s)
	return int32(v), false, err
}

func exec(eng *sim.Engine, dev *alpu.Device, line string) error {
	parts := strings.Fields(line)
	switch parts[0] {
	case "start":
		dev.PushCommand(alpu.Command{Op: alpu.OpStartInsert})
	case "stop":
		dev.PushCommand(alpu.Command{Op: alpu.OpStopInsert})
	case "reset":
		dev.PushCommand(alpu.Command{Op: alpu.OpReset})
	case "insert":
		if len(parts) != 5 {
			return fmt.Errorf("usage: insert <ctx> <src|*> <tag|*> <alputag>")
		}
		bits, mask, err := parseTriple(parts[1:4])
		if err != nil {
			return err
		}
		t, err := strconv.Atoi(parts[4])
		if err != nil {
			return err
		}
		dev.PushCommand(alpu.Command{Op: alpu.OpInsert, Bits: bits, Mask: mask, Tag: uint32(t)})
	case "probe":
		if len(parts) != 4 {
			return fmt.Errorf("usage: probe <ctx> <src|*> <tag|*>")
		}
		bits, mask, err := parseTriple(parts[1:4])
		if err != nil {
			return err
		}
		dev.PushProbe(alpu.Probe{Bits: bits, Mask: mask})
	case "occupancy":
		fmt.Printf("[%9v] occupancy: %d of %d\n", eng.Now(), dev.Occupancy(), dev.Config().Geometry.Cells)
	case "tags":
		fmt.Printf("[%9v] tags (oldest first): %v\n", eng.Now(), dev.Tags())
	case "stats":
		fmt.Printf("[%9v] %+v\n", eng.Now(), dev.Stats())
	default:
		return fmt.Errorf("unknown command %q", parts[0])
	}
	return nil
}

func parseTriple(f []string) (match.Bits, match.Bits, error) {
	ctx, ctxWild, err := field(f[0])
	if err != nil || ctxWild {
		return 0, 0, fmt.Errorf("context must be explicit (§II): %q", f[0])
	}
	src, srcWild, err := field(f[1])
	if err != nil {
		return 0, 0, err
	}
	tag, tagWild, err := field(f[2])
	if err != nil {
		return 0, 0, err
	}
	r := match.Recv{Context: uint16(ctx), Source: src, Tag: tag}
	if srcWild {
		r.Source = match.AnySource
	}
	if tagWild {
		r.Tag = match.AnyTag
	}
	b, m := match.PackRecv(r)
	return b, m, nil
}
