package main

import (
	"bufio"
	"strings"
	"testing"
)

func parseString(t *testing.T, s string) map[string]float64 {
	t.Helper()
	out, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseBenchOutput(t *testing.T) {
	out := parseString(t, `
goos: linux
BenchmarkEngineScheduleStep-8   	12345678	        95.1 ns/op
BenchmarkMicro/insert/cells=128/block=8-8         	  500	      2612 ns/op	      64 B/op	       3 allocs/op
BenchmarkFig5ALPU256-8  	       2	 12345678 ns/op	  1536 sim-ns-q0
PASS
`)
	want := map[string]float64{
		"BenchmarkEngineScheduleStep":             95.1,
		"BenchmarkMicro/insert/cells=128/block=8": 2612,
		"BenchmarkFig5ALPU256":                    12345678,
	}
	if len(out) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(out), len(want), out)
	}
	for name, v := range want {
		if out[name] != v {
			t.Errorf("%s = %v, want %v", name, out[name], v)
		}
	}
}

func TestParseKeepsMinimumOfDuplicates(t *testing.T) {
	out := parseString(t, `
BenchmarkX-8   10   200 ns/op
BenchmarkX-8   10   150 ns/op
BenchmarkX-8   10   180 ns/op
`)
	if out["BenchmarkX"] != 150 {
		t.Fatalf("duplicate handling: got %v, want 150", out["BenchmarkX"])
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	out := parseString(t, "Benchmarks are fun\nBenchmarkY-4 oops\nBenchmarkZ-4 5 10 MB/s\n")
	if len(out) != 0 {
		t.Fatalf("parsed %v from non-result lines", out)
	}
}
