package main

import (
	"bufio"
	"strings"
	"testing"
)

func parseString(t *testing.T, s string) map[string]float64 {
	t.Helper()
	out, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseBenchOutput(t *testing.T) {
	out := parseString(t, `
goos: linux
BenchmarkEngineScheduleStep-8   	12345678	        95.1 ns/op
BenchmarkMicro/insert/cells=128/block=8-8         	  500	      2612 ns/op	      64 B/op	       3 allocs/op
BenchmarkFig5ALPU256-8  	       2	 12345678 ns/op	  1536 sim-ns-q0
PASS
`)
	want := map[string]float64{
		"BenchmarkEngineScheduleStep":             95.1,
		"BenchmarkMicro/insert/cells=128/block=8": 2612,
		"BenchmarkFig5ALPU256":                    12345678,
	}
	if len(out) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(out), len(want), out)
	}
	for name, v := range want {
		if out[name] != v {
			t.Errorf("%s = %v, want %v", name, out[name], v)
		}
	}
}

func TestParseKeepsMinimumOfDuplicates(t *testing.T) {
	out := parseString(t, `
BenchmarkX-8   10   200 ns/op
BenchmarkX-8   10   150 ns/op
BenchmarkX-8   10   180 ns/op
`)
	if out["BenchmarkX"] != 150 {
		t.Fatalf("duplicate handling: got %v, want 150", out["BenchmarkX"])
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	out := parseString(t, "Benchmarks are fun\nBenchmarkY-4 oops\nBenchmarkZ-4 5 10 MB/s\n")
	if len(out) != 0 {
		t.Fatalf("parsed %v from non-result lines", out)
	}
}

func TestReportPasses(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200}
	cur := map[string]float64{"BenchmarkA": 110, "BenchmarkB": 150}
	out, failed := report(base, cur, 0.15)
	if failed {
		t.Fatalf("gate failed without a regression:\n%s", out)
	}
	for _, want := range []string{
		"ok       BenchmarkA",
		"faster   BenchmarkB",
		"benchgate: 2 compared (1 faster, 0 regressed), 0 new, 0 missing",
		"benchgate: ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportFailsOnRegression(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100}
	cur := map[string]float64{"BenchmarkA": 130, "BenchmarkB": 101}
	out, failed := report(base, cur, 0.15)
	if !failed {
		t.Fatalf("30%% regression passed the 15%% gate:\n%s", out)
	}
	for _, want := range []string{
		"FAIL     BenchmarkA",
		"ok       BenchmarkB", // the full table prints even on failure
		"+30.0%",
		"benchgate: 2 compared (0 faster, 1 regressed), 0 new, 0 missing",
		"benchgate: regression over 15% threshold",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportNewAndMissingAreSortedAndHarmless(t *testing.T) {
	base := map[string]float64{"BenchmarkGone": 50}
	cur := map[string]float64{"BenchmarkZeta": 1, "BenchmarkAlpha": 2, "BenchmarkMu": 3}
	out, failed := report(base, cur, 0.15)
	if failed {
		t.Fatalf("renames must not fail the gate:\n%s", out)
	}
	if !strings.Contains(out, "MISSING  BenchmarkGone") {
		t.Errorf("missing baseline-only entry:\n%s", out)
	}
	alpha := strings.Index(out, "NEW      BenchmarkAlpha")
	mu := strings.Index(out, "NEW      BenchmarkMu")
	zeta := strings.Index(out, "NEW      BenchmarkZeta")
	if alpha < 0 || mu < 0 || zeta < 0 || !(alpha < mu && mu < zeta) {
		t.Errorf("NEW entries not sorted (alpha=%d mu=%d zeta=%d):\n%s", alpha, mu, zeta, out)
	}
	if !strings.Contains(out, "benchgate: 0 compared (0 faster, 0 regressed), 3 new, 1 missing") {
		t.Errorf("bad summary line:\n%s", out)
	}
}

func TestReportDeterministic(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 1, "BenchmarkB": 2, "BenchmarkC": 3}
	cur := map[string]float64{"BenchmarkB": 2, "BenchmarkD": 4, "BenchmarkE": 5}
	first, _ := report(base, cur, 0.15)
	for i := 0; i < 20; i++ {
		again, _ := report(base, cur, 0.15)
		if again != first {
			t.Fatalf("report output varies across calls:\n%s\nvs\n%s", first, again)
		}
	}
}
