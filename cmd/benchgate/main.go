// Command benchgate compares two `go test -bench` outputs and fails when
// any benchmark present in both regressed by more than a threshold on
// ns/op. It is the CI regression gate for the simulator's performance
// work (ISSUE: cycle-batching fast path): the repository commits a
// baseline (BENCH_BASELINE.txt) and CI re-runs the same benchmarks,
// comparing like benchstat would but with a pass/fail verdict and no
// external dependency.
//
// Usage:
//
//	benchgate [-threshold 0.15] baseline.txt current.txt
//
// Benchmarks appearing in only one file are reported but never fail the
// gate (renames should not break unrelated PRs); a benchmark that got
// faster is reported as an improvement. Exit status 1 on regression, 2 on
// usage or parse errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op regression before failing")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-threshold f] baseline.txt current.txt")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	out, failed := report(base, cur, *threshold)
	os.Stdout.WriteString(out)
	if failed {
		os.Exit(1)
	}
}

// report renders the sorted per-benchmark delta table — the same table
// on success and failure, so CI logs always show the perf trajectory —
// and returns it with the gate verdict. All output is deterministic:
// compared benchmarks sort by name, as do NEW/MISSING entries.
func report(base, cur map[string]float64, threshold float64) (string, bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-60s %12s    %12s  %s\n", "", "benchmark", "old ns/op", "new ns/op", "delta")
	var compared, faster, regressed, missing int
	for _, name := range names {
		old := base[name]
		c, ok := cur[name]
		if !ok {
			missing++
			fmt.Fprintf(&b, "MISSING  %-60s (in baseline only)\n", name)
			continue
		}
		compared++
		ratio := c / old
		status := "ok"
		switch {
		case ratio > 1+threshold:
			regressed++
			status = "FAIL"
		case ratio < 1-threshold:
			faster++
			status = "faster"
		}
		fmt.Fprintf(&b, "%-8s %-60s %12.1f -> %12.1f  %+.1f%%\n", status, name, old, c, (ratio-1)*100)
	}
	var added []string
	for name := range cur {
		if _, ok := base[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(&b, "NEW      %-60s (not in baseline)\n", name)
	}
	fmt.Fprintf(&b, "benchgate: %d compared (%d faster, %d regressed), %d new, %d missing\n",
		compared, faster, regressed, len(added), missing)
	if regressed > 0 {
		fmt.Fprintf(&b, "benchgate: regression over %.0f%% threshold\n", threshold*100)
		return b.String(), true
	}
	b.WriteString("benchgate: ok\n")
	return b.String(), false
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out, err := parse(bufio.NewScanner(f))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// parse extracts name -> ns/op from `go test -bench` output. A result
// line is "BenchmarkName[-P] <iters> <value> ns/op [...]"; the -P
// GOMAXPROCS suffix is stripped so baselines transfer across -cpu
// settings. Duplicate names (e.g. -count > 1) keep the minimum, the
// least-noise estimate of the benchmark's true cost.
func parse(sc *bufio.Scanner) (map[string]float64, error) {
	out := map[string]float64{}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
			}
			if prev, ok := out[name]; !ok || v < prev {
				out[name] = v
			}
			break
		}
	}
	return out, sc.Err()
}
