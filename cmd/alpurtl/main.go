// Command alpurtl emits parameterized Verilog for an ALPU build point —
// the role JHDL played for the paper's FPGA prototype (§V-D). The
// datapath (cells, blocks, priority trees, compaction/spill chains) is
// complete; the top-level sequencing is a behavioural skeleton of the
// Fig. 3 machine. The emitted register counts are cross-checked against
// the internal/fpga resource model by the test suite.
//
//	alpurtl [-cells 128] [-block 16] [-variant posted|unexpected]
//	        [-match 42] [-tag 16] [-name alpu] [-o alpu.v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"alpusim/internal/alpu"
	"alpusim/internal/fpga"
	"alpusim/internal/rtl"
)

func main() {
	cells := flag.Int("cells", 128, "total cells")
	block := flag.Int("block", 16, "cells per block (power of 2)")
	variant := flag.String("variant", "posted", "posted or unexpected")
	matchW := flag.Int("match", 42, "match width in bits")
	tagW := flag.Int("tag", 16, "tag width in bits")
	name := flag.String("name", "alpu", "module name prefix")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	d := rtl.Design{
		Geometry:   alpu.Geometry{Cells: *cells, BlockSize: *block},
		MatchWidth: *matchW,
		TagWidth:   *tagW,
		Masked:     !strings.HasPrefix(*variant, "unexp"),
		Name:       *name,
	}
	src, err := d.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "alpurtl:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alpurtl:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprint(w, src)

	est := fpga.Params{
		Geometry:   d.Geometry,
		MatchWidth: d.MatchWidth,
		TagWidth:   d.TagWidth,
		Masked:     d.Masked,
	}.Estimate()
	fmt.Fprintf(os.Stderr,
		"alpurtl: %d data register bits emitted; estimator projects %d FFs total, %d LUTs, %.1f MHz, %d-cycle pipeline on the prototype part\n",
		d.TotalDataRegBits(), est.FFs, est.LUTs, est.FreqMHz, est.LatencyCycles)
}
