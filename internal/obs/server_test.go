package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"alpusim/internal/sim"
	"alpusim/internal/sweep"
	"alpusim/internal/telemetry"
)

func startServer(t *testing.T, o Options) (*Server, string) {
	t.Helper()
	srv := NewServer(o)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + addr
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestServerEndpoints(t *testing.T) {
	progress := sweep.NewProgress()
	srv, base := startServer(t, Options{Progress: progress})

	body, resp := get(t, base+"/healthz")
	var health struct {
		Status     string `json:"status"`
		Goroutines int    `json:"goroutines"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.Goroutines < 1 {
		t.Errorf("/healthz = %+v", health)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/healthz content-type %q", ct)
	}

	// Merge a world snapshot; it must appear on /metrics alongside the
	// host runtime gauges.
	r := telemetry.NewRegistry()
	r.Counter("nic0/rel/retransmits").Add(7)
	srv.MergeSnapshot(r.Snapshot())
	body, resp = get(t, base+"/metrics")
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type %q", resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		"alpusim_nic0_rel_retransmits 7",
		"# TYPE alpusim_goroutines gauge",
		"alpusim_uptime_seconds",
		"alpusim_sweep_points_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Merging again sums — the commutative fold.
	srv.MergeSnapshot(r.Snapshot())
	body, _ = get(t, base+"/metrics")
	if !strings.Contains(body, "alpusim_nic0_rel_retransmits 14") {
		t.Errorf("second merge did not sum:\n%s", body)
	}

	// SetSnapshot replaces wholesale.
	srv.SetSnapshot(r.Snapshot())
	body, _ = get(t, base+"/metrics")
	if !strings.Contains(body, "alpusim_nic0_rel_retransmits 7") {
		t.Errorf("SetSnapshot did not replace:\n%s", body)
	}

	body, _ = get(t, base+"/")
	if !strings.Contains(body, "/progress") {
		t.Errorf("index page missing endpoint listing:\n%s", body)
	}
	if _, resp := get(t, base+"/nonexistent"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path returned %d", resp.StatusCode)
	}
}

func TestServerProgress(t *testing.T) {
	progress := sweep.NewProgress()
	progress.SetLabel("unit-test")
	sweep.SetProgress(progress)
	defer sweep.SetProgress(nil)

	_, base := startServer(t, Options{Progress: progress})

	read := func() (doc struct {
		PointsTotal int64   `json:"points_total"`
		PointsDone  int64   `json:"points_done"`
		EtaSec      float64 `json:"eta_sec"`
		Sweeps      []struct {
			Label string `json:"label"`
			Total int    `json:"total"`
			Done  int64  `json:"done"`
		} `json:"sweeps"`
	}) {
		body, resp := get(t, base+"/progress")
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("/progress content-type %q", ct)
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("/progress not JSON: %v\n%s", err, body)
		}
		return doc
	}

	before := read()
	if before.PointsTotal != 0 || before.EtaSec != -1 {
		t.Errorf("idle progress = %+v, want zero points and ETA -1", before)
	}

	sweep.Map(2, 5, func(i int) int { return i * i })
	after := read()
	if after.PointsTotal != 5 || after.PointsDone != 5 {
		t.Errorf("after sweep: %+v, want 5/5", after)
	}
	if after.PointsDone < before.PointsDone || after.PointsTotal < before.PointsTotal {
		t.Error("progress counters went backwards")
	}
	if len(after.Sweeps) != 1 || after.Sweeps[0].Label != "unit-test" ||
		after.Sweeps[0].Done != 5 || after.Sweeps[0].Total != 5 {
		t.Errorf("sweep entry = %+v", after.Sweeps)
	}
	if after.EtaSec != 0 {
		t.Errorf("finished sweep ETA = %v, want 0", after.EtaSec)
	}
}

func TestServerProgressSSE(t *testing.T) {
	_, base := startServer(t, Options{Progress: sweep.NewProgress()})
	resp, err := http.Get(base + "/progress?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content-type %q", ct)
	}
	// The first event is written immediately; read one frame and bail.
	buf := make([]byte, 4096)
	n, err := resp.Body.Read(buf)
	if err != nil && n == 0 {
		t.Fatal(err)
	}
	frame := string(buf[:n])
	if !strings.HasPrefix(frame, "event: progress\ndata: ") {
		t.Errorf("SSE frame = %q", frame)
	}
}

// A server with no progress tracker still serves /progress (the zero
// snapshot) rather than panicking — binaries pass Options{} freely.
func TestServerNilProgress(t *testing.T) {
	_, base := startServer(t, Options{})
	body, _ := get(t, base+"/progress")
	if !strings.Contains(body, `"points_total": 0`) {
		t.Errorf("nil-progress /progress = %s", body)
	}
}

// /critpath serves the causal reports of finished worlds, in arrival
// order, as a stable JSON document.
func TestServerCritPath(t *testing.T) {
	srv, base := startServer(t, Options{})

	body, resp := get(t, base+"/critpath")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/critpath content-type %q", ct)
	}
	var doc struct {
		Worlds []struct {
			Label  string                 `json:"label"`
			Report telemetry.CausalReport `json:"report"`
		} `json:"worlds"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/critpath not JSON: %v\n%s", err, body)
	}
	if len(doc.Worlds) != 0 {
		t.Fatalf("empty server reported %d worlds", len(doc.Worlds))
	}

	c := telemetry.NewCausal()
	for s := telemetry.Stamp(0); s < 8; s++ {
		c.Stamp(1, s, 10*sim.Time(s))
	}
	rep, ok := c.Analyze(1)
	if !ok {
		t.Fatal("no report from stamped chain")
	}
	srv.AddCritPath("baseline q=8", rep)
	srv.AddCritPath("alpu-128 q=8", rep)

	body, _ = get(t, base+"/critpath")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/critpath not JSON after AddCritPath: %v", err)
	}
	if len(doc.Worlds) != 2 || doc.Worlds[0].Label != "baseline q=8" {
		t.Fatalf("worlds = %+v, want 2 in arrival order", doc.Worlds)
	}
	if doc.Worlds[0].Report.CriticalPath != rep.CriticalPath {
		t.Errorf("served critical path %v, want %v",
			doc.Worlds[0].Report.CriticalPath, rep.CriticalPath)
	}
	if !strings.Contains(body, `"permille"`) {
		t.Error("served report missing blame permille field")
	}
}
