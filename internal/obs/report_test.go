package obs

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

// reportFixture builds a report with every section populated.
func reportFixture() *Report {
	sa := telemetry.NewSampler(10, 8)
	var depth int64
	sa.Probe("nic0/posted/depth", func() int64 { return depth })
	for _, v := range []int64{1, 4, 2} {
		depth = v
		// Drive samples directly through the probe path via Finalize's
		// padding: simplest deterministic way to push without an engine.
		sa.Finalize(sim.Time(10 * (depth + 1)))
	}

	ph := telemetry.NewPhases()
	// One complete message: all eight stamps, 10 ps apart.
	for s := 0; s < 8; s++ {
		ph.Stamp(7, telemetry.Stamp(s), sim.Time(s*10))
	}

	reg := telemetry.NewRegistry()
	h := reg.Histogram("nic0/match/latency")
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}

	return &Report{
		Title:    "test run",
		Series:   sa,
		Phases:   ph.Totals(),
		Snapshot: reg.Snapshot(),
		Causal: []NamedCausal{{
			Label: "alpu-128 q=96",
			Report: telemetry.CausalReport{
				Messages:     12,
				CriticalPath: 123_000,
				Blame: []telemetry.CausalBlame{
					{Resource: "wire", Dur: 100_000, Permille: 813},
					{Resource: "alpu<search>", Dur: 23_000, Permille: 187},
				},
			},
		}},
	}
}

// TestReportHTML checks every section renders, the output is standalone
// (no script tags, no external references), and the bytes are stable
// across renders.
func TestReportHTML(t *testing.T) {
	r := reportFixture()
	doc := string(r.HTML())
	for _, want := range []string{
		"<!DOCTYPE html>",
		"test run",
		"Occupancy waterlines",
		"nic0/posted/depth",
		"<polyline",
		"Pipeline phase breakdown",
		"Critical-path blame",
		"alpu-128 q=96",
		"alpu&lt;search&gt;", // HTML-escaped resource name
		"81.3%",
		"Latency quantiles",
		"nic0/match/latency",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, forbid := range []string{"<script", "http://", "https://", "src="} {
		if strings.Contains(doc, forbid) {
			t.Errorf("report is not self-contained: found %q", forbid)
		}
	}
	if doc2 := string(r.HTML()); doc2 != doc {
		t.Error("report bytes not stable across renders")
	}
}

// TestReportEmptySections: a zero report still renders a valid shell.
func TestReportEmptySections(t *testing.T) {
	r := &Report{}
	doc := string(r.HTML())
	if !strings.Contains(doc, "alpusim run") {
		t.Errorf("default title missing:\n%s", doc)
	}
	for _, absent := range []string{"waterlines", "phase breakdown", "blame", "quantiles"} {
		if strings.Contains(doc, absent) {
			t.Errorf("empty report renders section %q", absent)
		}
	}
	if ts := r.TimeseriesJSON(); !bytes.Contains(ts, []byte(`"series": []`)) {
		t.Errorf("empty timeseries JSON: %s", ts)
	}
}

// TestServerReportEndpoints: /report and /timeseries 503 until
// SetReport, then serve the published bytes with the right content
// types.
func TestServerReportEndpoints(t *testing.T) {
	s := NewServer(Options{})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, resp.Header.Get("Content-Type"), buf.String()
	}

	if code, _, _ := get("/report"); code != http.StatusServiceUnavailable {
		t.Errorf("/report before SetReport: %d, want 503", code)
	}
	if code, _, _ := get("/timeseries"); code != http.StatusServiceUnavailable {
		t.Errorf("/timeseries before SetReport: %d, want 503", code)
	}

	r := reportFixture()
	s.SetReport(r.HTML(), r.TimeseriesJSON())

	code, ctype, body := get("/report")
	if code != http.StatusOK || !strings.Contains(ctype, "text/html") {
		t.Errorf("/report: %d %s", code, ctype)
	}
	if !strings.Contains(body, "Occupancy waterlines") {
		t.Error("/report body is not the published report")
	}
	code, ctype, body = get("/timeseries")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Errorf("/timeseries: %d %s", code, ctype)
	}
	if !strings.Contains(body, "nic0/posted/depth") {
		t.Error("/timeseries body is not the published dump")
	}

	if code, _, body := get("/"); code != http.StatusOK ||
		!strings.Contains(body, "/report") || !strings.Contains(body, "/timeseries") {
		t.Errorf("index does not list the report endpoints:\n%s", body)
	}
}
