package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"nic0/rel/retransmits", "alpusim_nic0_rel_retransmits"},
		{"alpu/search.hit", "alpusim_alpu_search_hit"},
		{"already_legal:name", "alpusim_already_legal:name"},
		{"0starts/with-digit", "alpusim_0starts_with_digit"}, // prefix keeps it legal
		{"", "alpusim_"},
		{"spaces and ünicode", "alpusim_spaces_and___nicode"}, // ü is 2 bytes, 2 underscores
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
}

// The golden exposition: one counter, one gauge, one histogram, rendered
// byte-exactly. Guards family ordering, TYPE lines, and the cumulative
// le-bucket shape end to end.
func TestWritePromGolden(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("nic0/rel/retransmits").Add(5)
	r.Gauge("queue/peak").Set(-2)
	h := r.Histogram("depth")
	h.Add(1)
	h.Add(3)
	h.Add(5000)

	var b bytes.Buffer
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE alpusim_nic0_rel_retransmits counter
alpusim_nic0_rel_retransmits 5
# TYPE alpusim_queue_peak gauge
alpusim_queue_peak -2
# TYPE alpusim_depth histogram
alpusim_depth_bucket{le="0"} 0
alpusim_depth_bucket{le="1"} 1
alpusim_depth_bucket{le="2"} 1
alpusim_depth_bucket{le="4"} 2
alpusim_depth_bucket{le="8"} 2
alpusim_depth_bucket{le="16"} 2
alpusim_depth_bucket{le="32"} 2
alpusim_depth_bucket{le="64"} 2
alpusim_depth_bucket{le="128"} 2
alpusim_depth_bucket{le="256"} 2
alpusim_depth_bucket{le="512"} 2
alpusim_depth_bucket{le="1024"} 2
alpusim_depth_bucket{le="4096"} 2
alpusim_depth_bucket{le="+Inf"} 3
alpusim_depth_sum 5004
alpusim_depth_count 3
# TYPE alpusim_depth_quantiles gauge
alpusim_depth_quantiles{quantile="0.5"} 1
alpusim_depth_quantiles{quantile="0.95"} 4
alpusim_depth_quantiles{quantile="0.99"} 4
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// The device-fault exposition: the rollup families the mpi layer emits
// when device faults are configured (alpu_faults/* summed over units,
// nic_failover/* summed over NICs) must surface as the documented
// alpusim_alpu_faults_* and alpusim_nic_failover_* Prometheus families,
// byte-exactly, so dashboards watching a chaos campaign can rely on them.
func TestWritePromDeviceFaultFamilies(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("alpu_faults/bit_flips").Add(6)
	r.Counter("alpu_faults/parity_quarantines").Add(6)
	r.Counter("alpu_faults/dropped_results").Add(2)
	r.Counter("alpu_faults/stuck_cycles").Add(1179)
	r.Counter("alpu_faults/dead_discards").Add(70)
	r.Counter("nic_failover/strikes").Add(23)
	r.Counter("nic_failover/resyncs").Add(19)
	r.Counter("nic_failover/deaths").Add(4)
	r.Counter("nic_failover/shadow_rebuilds").Add(4)
	r.Counter("nic_failover/fw_crashes").Add(7)
	r.Counter("nic_failover/fw_restarts").Add(7)
	r.Counter("nic_failover/fault_responses").Add(6)
	r.Gauge("nic0/failover/dead_units").Set(1)

	var b bytes.Buffer
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE alpusim_alpu_faults_bit_flips counter
alpusim_alpu_faults_bit_flips 6
# TYPE alpusim_alpu_faults_dead_discards counter
alpusim_alpu_faults_dead_discards 70
# TYPE alpusim_alpu_faults_dropped_results counter
alpusim_alpu_faults_dropped_results 2
# TYPE alpusim_alpu_faults_parity_quarantines counter
alpusim_alpu_faults_parity_quarantines 6
# TYPE alpusim_alpu_faults_stuck_cycles counter
alpusim_alpu_faults_stuck_cycles 1179
# TYPE alpusim_nic_failover_deaths counter
alpusim_nic_failover_deaths 4
# TYPE alpusim_nic_failover_fault_responses counter
alpusim_nic_failover_fault_responses 6
# TYPE alpusim_nic_failover_fw_crashes counter
alpusim_nic_failover_fw_crashes 7
# TYPE alpusim_nic_failover_fw_restarts counter
alpusim_nic_failover_fw_restarts 7
# TYPE alpusim_nic_failover_resyncs counter
alpusim_nic_failover_resyncs 19
# TYPE alpusim_nic_failover_shadow_rebuilds counter
alpusim_nic_failover_shadow_rebuilds 4
# TYPE alpusim_nic_failover_strikes counter
alpusim_nic_failover_strikes 23
# TYPE alpusim_nic0_failover_dead_units gauge
alpusim_nic0_failover_dead_units 1
`
	if b.String() != want {
		t.Errorf("device-fault exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// The matching-fabric exposition: the rollup families the mpi layer
// emits when a sharded fabric is configured (match_fabric/* summed over
// NICs) must surface as the documented alpusim_match_fabric_* Prometheus
// families, byte-exactly, together with a representative per-shard gauge.
func TestWritePromMatchFabricFamilies(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("match_fabric/cache_hits").Add(950)
	r.Counter("match_fabric/cache_misses").Add(50)
	r.Counter("match_fabric/wild_broadcasts").Add(191)
	r.Counter("match_fabric/wild_purges").Add(191)
	r.Counter("match_fabric/stale_wild_hits").Add(3)
	r.Counter("match_fabric/overflow_promotions").Add(532)
	r.Counter("match_fabric/overflow_demotions").Add(2)
	r.Gauge("nic0/fabric/shard1/peak_len").Set(517)

	var b bytes.Buffer
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE alpusim_match_fabric_cache_hits counter
alpusim_match_fabric_cache_hits 950
# TYPE alpusim_match_fabric_cache_misses counter
alpusim_match_fabric_cache_misses 50
# TYPE alpusim_match_fabric_overflow_demotions counter
alpusim_match_fabric_overflow_demotions 2
# TYPE alpusim_match_fabric_overflow_promotions counter
alpusim_match_fabric_overflow_promotions 532
# TYPE alpusim_match_fabric_stale_wild_hits counter
alpusim_match_fabric_stale_wild_hits 3
# TYPE alpusim_match_fabric_wild_broadcasts counter
alpusim_match_fabric_wild_broadcasts 191
# TYPE alpusim_match_fabric_wild_purges counter
alpusim_match_fabric_wild_purges 191
# TYPE alpusim_nic0_fabric_shard1_peak_len gauge
alpusim_nic0_fabric_shard1_peak_len 517
`
	if b.String() != want {
		t.Errorf("match-fabric exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// The time-series exposition: the gauge pairs Sampler.Publish emits for
// each series (ts/<name>/last, ts/<name>/peak) must surface as
// alpusim_ts_* gauge families, byte-exactly — the waterline endpoints
// dashboards scrape between full /timeseries pulls.
func TestWritePromSeriesGauges(t *testing.T) {
	sa := telemetry.NewSampler(0, 8)
	var depth, window int64
	sa.Probe("nic0/posted/depth", func() int64 { return depth })
	sa.Probe("nic0/rel/window", func() int64 { return window })
	for i, v := range []int64{3, 11, 7} {
		depth, window = v, v*2
		// Finalize pads to the growing canonical count each round — an
		// engine-free way to drive samples through the probes.
		sa.Finalize(telemetry.DefaultSampleInterval * sim.Time(i+1))
	}

	r := telemetry.NewRegistry()
	sa.Publish(r)
	var b bytes.Buffer
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE alpusim_ts_nic0_posted_depth_last gauge
alpusim_ts_nic0_posted_depth_last 7
# TYPE alpusim_ts_nic0_posted_depth_peak gauge
alpusim_ts_nic0_posted_depth_peak 11
# TYPE alpusim_ts_nic0_rel_window_last gauge
alpusim_ts_nic0_rel_window_last 14
# TYPE alpusim_ts_nic0_rel_window_peak gauge
alpusim_ts_nic0_rel_window_peak 22
`
	if b.String() != want {
		t.Errorf("series-gauge exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// Two paths that sanitize to the same metric name must each keep their
// identity via a path label, in sorted path order.
func TestWritePromCollision(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("a/b").Add(1)
	r.Counter("a_b").Add(2)
	var b bytes.Buffer
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE alpusim_a_b counter\n" +
		"alpusim_a_b{path=\"a/b\"} 1\n" +
		"alpusim_a_b{path=\"a_b\"} 2\n"
	if b.String() != want {
		t.Errorf("collision rendering:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// Histogram buckets must be cumulative (monotone non-decreasing) and the
// +Inf bucket must equal _count — the properties Prometheus consumers
// assume when computing quantiles.
func TestWritePromHistogramCumulative(t *testing.T) {
	r := telemetry.NewRegistry()
	h := r.Histogram("d")
	for _, v := range []int{0, 0, 2, 7, 7, 100, 9999, 12} {
		h.Add(v)
	}
	var b bytes.Buffer
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	var inf, count uint64
	var buckets int
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "alpusim_d_bucket"):
			buckets++
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("bucket counts not cumulative at %q (prev %d)", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, "alpusim_d_count"):
			count, _ = strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		}
	}
	if buckets != 14 {
		t.Errorf("emitted %d buckets, want all 14", buckets)
	}
	if inf != 8 || count != 8 {
		t.Errorf("+Inf bucket %d and _count %d must both equal 8", inf, count)
	}
}

func TestWritePromEmptySnapshot(t *testing.T) {
	var b bytes.Buffer
	if err := WriteProm(&b, telemetry.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty snapshot rendered output:\n%s", b.String())
	}
}
