// Package obs is the live observability plane: a Prometheus text
// renderer for telemetry snapshots and an opt-in HTTP server exposing
// /metrics, /healthz and /progress while experiments run.
//
// Everything here is host-side and strictly read-only with respect to
// the simulated worlds: the server observes frozen telemetry.Snapshot
// merges and the sweep pool's atomic progress counters, so serving can
// never perturb simulation results — the experiment output stays
// byte-identical with and without -serve.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"alpusim/internal/telemetry"
)

// promPrefix namespaces every exported metric, per Prometheus naming
// conventions (and it guarantees sanitized names never start with a
// digit).
const promPrefix = "alpusim_"

// PromName maps a hierarchical slash-separated telemetry path to a legal
// Prometheus metric name: every byte outside [a-zA-Z0-9_:] becomes '_'
// and the result is prefixed with "alpusim_". The mapping is lossy
// ("a/b" and "a_b" collide); WriteProm disambiguates collisions with a
// path label.
func PromName(path string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(path))
	b.WriteString(promPrefix)
	for i := 0; i < len(path); i++ {
		c := path[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// pathLabel renders the disambiguating label set for a sample whose
// sanitized name collides with another path ("" when unique).
func pathLabel(path string, multi bool) string {
	if !multi {
		return ""
	}
	return fmt.Sprintf(`{path="%s"}`, escapeLabel(path))
}

// groupByPromName buckets metric paths by sanitized name, returning the
// names sorted and each bucket's paths sorted — the deterministic emit
// order.
func groupByPromName(paths []string) ([]string, map[string][]string) {
	byName := make(map[string][]string, len(paths))
	for _, p := range paths {
		n := PromName(p)
		byName[n] = append(byName[n], p)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
		sort.Strings(byName[n])
	}
	sort.Strings(names)
	return names, byName
}

// WriteProm renders a telemetry snapshot in the Prometheus text
// exposition format (text/plain; version=0.0.4): counters as counter
// families, gauges as gauge families, and fixed-bucket histograms as
// cumulative le-labelled histogram families with _sum and _count.
// Output is deterministic: families sort by metric name, colliding
// paths sort within a family and carry a path label.
func WriteProm(w io.Writer, s telemetry.Snapshot) error {
	bw := bufio.NewWriter(w)

	names, byName := groupByPromName(keys(s.Counters))
	for _, name := range names {
		paths := byName[name]
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		for _, p := range paths {
			fmt.Fprintf(bw, "%s%s %d\n", name, pathLabel(p, len(paths) > 1), s.Counters[p])
		}
	}

	names, byName = groupByPromName(keys(s.Gauges))
	for _, name := range names {
		paths := byName[name]
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		for _, p := range paths {
			fmt.Fprintf(bw, "%s%s %d\n", name, pathLabel(p, len(paths) > 1), s.Gauges[p])
		}
	}

	names, byName = groupByPromName(keys(s.Hists))
	for _, name := range names {
		paths := byName[name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		for _, p := range paths {
			h := s.Hists[p]
			extra := ""
			if len(paths) > 1 {
				extra = fmt.Sprintf(`,path="%s"`, escapeLabel(p))
			}
			for _, b := range h.CumBuckets() {
				le := "+Inf"
				if b.Le >= 0 {
					le = strconv.Itoa(b.Le)
				}
				fmt.Fprintf(bw, "%s_bucket{le=%q%s} %d\n", name, le, extra, b.Count)
			}
			fmt.Fprintf(bw, "%s_sum%s %d\n", name, pathLabel(p, len(paths) > 1), h.Sum())
			fmt.Fprintf(bw, "%s_count%s %d\n", name, pathLabel(p, len(paths) > 1), h.N())
		}
	}

	// Summary-style quantile estimates for each histogram family, as a
	// parallel gauge family under a _quantiles suffix (a histogram family
	// may not carry extra samples, and dashboards want p50/p95/p99 without
	// doing histogram_quantile over fixed buckets).
	for _, name := range names {
		paths := byName[name]
		fmt.Fprintf(bw, "# TYPE %s_quantiles gauge\n", name)
		for _, p := range paths {
			h := s.Hists[p]
			extra := ""
			if len(paths) > 1 {
				extra = fmt.Sprintf(`,path="%s"`, escapeLabel(p))
			}
			for _, q := range h.SummaryQuantiles() {
				fmt.Fprintf(bw, "%s_quantiles{quantile=%q%s} %d\n",
					name, strconv.FormatFloat(q.P, 'g', -1, 64), extra, q.Value)
			}
		}
	}

	return bw.Flush()
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
