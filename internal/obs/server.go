package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"alpusim/internal/sweep"
	"alpusim/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Progress, when set, backs /progress and the sweep gauges on
	// /metrics.
	Progress *sweep.Progress
	// Snapshot, when set, supplies the complete current snapshot on every
	// scrape (single-world tools like queueprobe). When nil the server
	// renders the running merge fed through MergeSnapshot/SetSnapshot.
	Snapshot func() telemetry.Snapshot
	// Log receives server diagnostics (never written to stdout, which
	// belongs to experiment output).
	Log *slog.Logger
}

// Server is the live observability HTTP endpoint. It only ever reads
// frozen snapshots and atomic counters, so it cannot perturb a running
// simulation.
type Server struct {
	opts  Options
	start time.Time

	mu         sync.Mutex
	merged     telemetry.Snapshot
	critpath   []namedCritPath
	reportHTML []byte
	tsJSON     []byte

	ln  net.Listener
	srv *http.Server
}

// namedCritPath is one world's causal analysis as served on /critpath.
type namedCritPath struct {
	Label  string                 `json:"label"`
	Report telemetry.CausalReport `json:"report"`
}

// NewServer returns an unstarted server.
func NewServer(o Options) *Server {
	return &Server{opts: o, start: time.Now()}
}

// MergeSnapshot folds a finished world's snapshot into the served
// totals (counters sum, gauges max, histograms merge — the commutative
// fold, so the served state is independent of worker scheduling). Safe
// from any goroutine.
func (s *Server) MergeSnapshot(sn telemetry.Snapshot) {
	s.mu.Lock()
	s.merged.Merge(sn)
	s.mu.Unlock()
}

// SetSnapshot replaces the served snapshot wholesale — the fit for
// tools that re-harvest one long-lived world (merging those snapshots
// would double-count the idempotent harvest).
func (s *Server) SetSnapshot(sn telemetry.Snapshot) {
	s.mu.Lock()
	s.merged = sn
	s.mu.Unlock()
}

// AddCritPath appends a finished world's causal critical-path report to
// the read-only /critpath endpoint, under a label naming the world
// (e.g. "alpu-128 q=96"). Safe from any goroutine.
func (s *Server) AddCritPath(label string, rep telemetry.CausalReport) {
	s.mu.Lock()
	s.critpath = append(s.critpath, namedCritPath{Label: label, Report: rep})
	s.mu.Unlock()
}

// SetReport publishes a finished run's rendered report: the /report
// HTML document and the /timeseries JSON dump. Until it is called both
// endpoints answer 503, the signal that the run is still in flight.
// Safe from any goroutine.
func (s *Server) SetReport(html, timeseries []byte) {
	s.mu.Lock()
	s.reportHTML = html
	s.tsJSON = timeseries
	s.mu.Unlock()
}

// Start listens on addr (":0" picks a free port) and serves in the
// background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/critpath", s.handleCritPath)
	mux.HandleFunc("/report", s.handleReport)
	mux.HandleFunc("/timeseries", s.handleTimeseries)
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if s.opts.Log != nil {
				s.opts.Log.Error("obs server exited", "err", err)
			}
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down, letting in-flight scrapes finish
// briefly.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "alpusim observability plane\n\n"+
		"  /healthz   liveness (JSON)\n"+
		"  /metrics   Prometheus text exposition\n"+
		"  /progress  sweep completion (JSON; ?stream=1 or Accept: text/event-stream for SSE)\n"+
		"  /critpath  causal critical-path reports of finished worlds (JSON)\n"+
		"  /report    self-contained HTML run report (503 until the run finishes)\n"+
		"  /timeseries  simulated-time series dump (JSON; 503 until the run finishes)\n")
}

func (s *Server) handleReport(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	doc := s.reportHTML
	s.mu.Unlock()
	if doc == nil {
		http.Error(w, "report not ready: run still in flight", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(doc)
}

func (s *Server) handleTimeseries(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	doc := s.tsJSON
	s.mu.Unlock()
	if doc == nil {
		http.Error(w, "time series not ready: run still in flight", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

func (s *Server) handleCritPath(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	reports := make([]namedCritPath, len(s.critpath))
	copy(reports, s.critpath)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	doc := struct {
		Worlds []namedCritPath `json:"worlds"`
	}{Worlds: reports}
	if doc.Worlds == nil {
		doc.Worlds = []namedCritPath{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	doc := struct {
		Status     string  `json:"status"`
		UptimeSec  float64 `json:"uptime_sec"`
		Goroutines int     `json:"goroutines"`
	}{"ok", time.Since(s.start).Seconds(), runtime.NumGoroutine()}
	json.NewEncoder(w).Encode(doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if s.opts.Snapshot != nil {
		WriteProm(&buf, s.opts.Snapshot())
	} else {
		// Render under the lock: Merge mutates the maps WriteProm reads.
		s.mu.Lock()
		err := WriteProm(&buf, s.merged)
		s.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.writeHostMetrics(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// writeHostMetrics appends the host-side runtime gauges: scheduler and
// heap state, GC cycles, process uptime, and the sweep pool's live
// totals including cumulative and mean per-world wall time.
func (s *Server) writeHostMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	family := func(name, typ string, format string, v any) {
		fmt.Fprintf(w, "# TYPE %s %s\n%s "+format+"\n", name, typ, name, v)
	}
	family("alpusim_goroutines", "gauge", "%d", runtime.NumGoroutine())
	family("alpusim_heap_alloc_bytes", "gauge", "%d", ms.HeapAlloc)
	family("alpusim_heap_sys_bytes", "gauge", "%d", ms.HeapSys)
	family("alpusim_gc_cycles_total", "counter", "%d", ms.NumGC)
	family("alpusim_uptime_seconds", "gauge", "%.3f", time.Since(s.start).Seconds())
	if p := s.opts.Progress; p != nil {
		ps := p.Snapshot()
		family("alpusim_sweeps_total", "counter", "%d", len(ps.Sweeps))
		family("alpusim_sweep_points_total", "gauge", "%d", ps.PointsTotal)
		family("alpusim_sweep_points_done", "gauge", "%d", ps.PointsDone)
		family("alpusim_world_wall_seconds_total", "counter", "%.6f", float64(ps.PointWallNs)/1e9)
		if ps.PointsDone > 0 {
			family("alpusim_world_wall_mean_seconds", "gauge", "%.6f",
				float64(ps.PointWallNs)/1e9/float64(ps.PointsDone))
		}
	}
}

// progressDoc is the /progress JSON shape: the sweep tracker snapshot
// plus derived operator-facing numbers (elapsed, completion rate, ETA).
type progressDoc struct {
	sweep.ProgressSnapshot
	ElapsedSec   float64 `json:"elapsed_sec"`
	WorldWallSec float64 `json:"world_wall_sec"`
	// EtaSec estimates the remaining wall time for the points registered
	// so far (-1 when unknowable: nothing done yet). Sweeps register as
	// experiments reach them, so the estimate sharpens over a run.
	EtaSec float64 `json:"eta_sec"`
}

func (s *Server) progressSnapshot() progressDoc {
	doc := progressDoc{
		ProgressSnapshot: s.opts.Progress.Snapshot(), // nil-safe: zero snapshot
		ElapsedSec:       time.Since(s.start).Seconds(),
		EtaSec:           -1,
	}
	doc.WorldWallSec = float64(doc.PointWallNs) / 1e9
	if doc.PointsDone > 0 && doc.ElapsedSec > 0 {
		rate := float64(doc.PointsDone) / doc.ElapsedSec
		doc.EtaSec = float64(doc.PointsTotal-doc.PointsDone) / rate
	}
	return doc
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("stream") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamProgress(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.progressSnapshot())
}

// streamProgress serves /progress as an SSE stream: one `progress`
// event every 500 ms until the client disconnects.
func (s *Server) streamProgress(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		data, err := json.Marshal(s.progressSnapshot())
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}
