package alpu

import (
	"fmt"

	"alpusim/internal/match"
	"alpusim/internal/params"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

// Config describes a Device build point and its timing.
type Config struct {
	Variant  Variant
	Geometry Geometry
	Clock    sim.Clock

	// MatchCycles is the pipeline occupancy of one match; 0 selects the
	// geometry rule (§V-D). The paper's simulations assume 7.
	MatchCycles int
	// InsertCycles is the spacing between inserts; 0 selects the
	// prototype's 2 (§V-D).
	InsertCycles int

	HeaderFIFODepth  int
	CommandFIFODepth int
	ResultFIFODepth  int

	// CompactAnyBlock widens the "space available" definition from
	// "higher cell in this block or the lowest cell of the next block" to
	// "any empty cell anywhere above" (§III-B discusses this as a timing
	// trade-off). Used by the abl-compaction ablation.
	CompactAnyBlock bool

	// Tracer, when set, records search/insert spans and delete instants
	// on the (TracePID, TraceTID) track.
	Tracer   *telemetry.Tracer
	TracePID int
	TraceTID int
}

// DefaultConfig returns the simulated configuration used by the paper's
// Fig. 5/6 runs: the ASIC-speed unit at 500 MHz with a 7-cycle pipeline.
func DefaultConfig(v Variant, cells int) Config {
	return Config{
		Variant:          v,
		Geometry:         Geometry{Cells: cells, BlockSize: params.ALPUDefaultBlockSize},
		Clock:            sim.MHz(params.ALPUClockMHz),
		MatchCycles:      params.ALPUMatchCycles,
		InsertCycles:     params.ALPUInsertCycles,
		HeaderFIFODepth:  params.ALPUHeaderFIFODepth,
		CommandFIFODepth: params.ALPUCommandFIFODepth,
		ResultFIFODepth:  params.ALPUResultFIFODepth,
	}
}

type cell struct {
	valid bool
	bits  match.Bits
	mask  match.Bits
	tag   uint32
}

// Stats counts Device activity for the benchmark reports.
type Stats struct {
	Matches      uint64 // probes processed to completion
	Hits         uint64 // MATCH SUCCESS responses
	Failures     uint64 // MATCH FAILURE responses
	HeldRetries  uint64 // failed matches held during insert mode
	Inserts      uint64 // entries written
	LostInserts  uint64 // inserts arriving with no free cell (protocol violation)
	Resets       uint64
	Discarded    uint64 // commands discarded in the wrong state (§III-C)
	StartInserts uint64
	MaxOccupancy int
	ShiftCycles  uint64 // cycles in which compaction moved data
	ResultStalls uint64 // cycles stalled on a full result FIFO
}

// Device is the cycle-level ALPU model. It runs as its own co-simulated
// process; the NIC interacts with it only through the three FIFOs, exactly
// as in Fig. 1.
type Device struct {
	cfg  Config
	eng  *sim.Engine
	name string

	// Headers receives probe copies (incoming headers for the
	// posted-receive unit, new receives for the unexpected unit).
	Headers *sim.FIFO[Probe]
	// Commands receives Table I commands from the processor.
	Commands *sim.FIFO[Command]
	// Results delivers Table II responses to the processor.
	Results *sim.FIFO[Response]

	kick  *sim.Signal
	cells []cell
	held  *Probe // failed match held for retry during insert mode (§III-C)

	// Scratch buffers for shiftStep (it runs every device cycle).
	validBuf   []bool
	enabledBuf []bool

	insertMode bool
	stats      Stats
}

// NewDevice creates and starts a Device on eng.
func NewDevice(eng *sim.Engine, name string, cfg Config) (*Device, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Clock.Period == 0 {
		cfg.Clock = sim.MHz(params.ALPUClockMHz)
	}
	if cfg.MatchCycles == 0 {
		cfg.MatchCycles = cfg.Geometry.PipelineCycles()
	}
	if cfg.InsertCycles == 0 {
		cfg.InsertCycles = params.ALPUInsertCycles
	}
	d := &Device{
		cfg:      cfg,
		eng:      eng,
		name:     name,
		Headers:  sim.NewFIFO[Probe](eng, name+".hdr", cfg.HeaderFIFODepth),
		Commands: sim.NewFIFO[Command](eng, name+".cmd", cfg.CommandFIFODepth),
		Results:  sim.NewFIFO[Response](eng, name+".res", cfg.ResultFIFODepth),
		kick:     sim.NewSignal(eng),
		cells:    make([]cell, cfg.Geometry.Cells),
	}
	eng.Spawn(name, d.run)
	return d, nil
}

// MustDevice is NewDevice for known-good configurations.
func MustDevice(eng *sim.Engine, name string, cfg Config) *Device {
	d, err := NewDevice(eng, name, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// InsertMode reports whether the device is between START and STOP INSERT.
func (d *Device) InsertMode() bool { return d.insertMode }

// Publish harvests the device's activity counters into a telemetry
// registry under prefix (e.g. "nic0/alpu/posted"). Idempotent: values
// are Set, so repeated harvests never double-count.
func (d *Device) Publish(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	s := d.stats
	reg.Counter(prefix + "/matches").Set(s.Matches)
	reg.Counter(prefix + "/hits").Set(s.Hits)
	reg.Counter(prefix + "/failures").Set(s.Failures)
	reg.Counter(prefix + "/held_retries").Set(s.HeldRetries)
	reg.Counter(prefix + "/inserts").Set(s.Inserts)
	reg.Counter(prefix + "/lost_inserts").Set(s.LostInserts)
	reg.Counter(prefix + "/resets").Set(s.Resets)
	reg.Counter(prefix + "/discarded").Set(s.Discarded)
	reg.Counter(prefix + "/start_inserts").Set(s.StartInserts)
	reg.Counter(prefix + "/shift_cycles").Set(s.ShiftCycles)
	reg.Counter(prefix + "/result_stalls").Set(s.ResultStalls)
	reg.Gauge(prefix + "/max_occupancy").SetMax(int64(s.MaxOccupancy))
	reg.Gauge(prefix + "/occupancy").Set(int64(d.Occupancy()))
}

// PushProbe delivers a header/receive copy into the header FIFO (the
// hardware path of Fig. 1; no processor involvement). It reports false if
// the FIFO was full and the probe was dropped.
func (d *Device) PushProbe(p Probe) bool {
	ok := d.Headers.Push(p)
	d.kick.Raise()
	return ok
}

// PushCommand delivers a command into the command FIFO. The *processor
// side* cost (bus transaction) is charged by the caller.
func (d *Device) PushCommand(c Command) bool {
	ok := d.Commands.Push(c)
	d.kick.Raise()
	return ok
}

// Occupancy returns the number of valid cells.
func (d *Device) Occupancy() int {
	n := 0
	for _, c := range d.cells {
		if c.valid {
			n++
		}
	}
	return n
}

// free returns the number of invalid cells.
func (d *Device) free() int { return d.cfg.Geometry.Cells - d.Occupancy() }

// Tags returns the stored tags from oldest (highest priority) to newest,
// for tests.
func (d *Device) Tags() []uint32 {
	var out []uint32
	for i := len(d.cells) - 1; i >= 0; i-- {
		if d.cells[i].valid {
			out = append(out, d.cells[i].tag)
		}
	}
	return out
}

// run is the controlling state machine (Fig. 3). The outer loop is the
// Match state; a non-empty command FIFO at a match boundary enters the
// Read Command state; START INSERT enters insert mode.
func (d *Device) run(p *sim.Process) {
	for {
		if d.Commands.Len() == 0 && d.Headers.Len() == 0 {
			if d.needsCompaction() {
				d.tick(p, 1)
				continue
			}
			p.WaitCond(d.kick, func() bool {
				return d.Commands.Len() > 0 || d.Headers.Len() > 0
			})
		}

		// Read Command state: only RESET and START INSERT are valid here;
		// everything else is discarded (§III-C footnote 3).
		if c, ok := d.Commands.Pop(); ok {
			d.tick(p, 1)
			switch c.Op {
			case OpReset:
				d.reset()
			case OpStartInsert:
				d.insertLoop(p)
			default:
				d.stats.Discarded++
			}
			continue
		}

		if probe, ok := d.Headers.Pop(); ok {
			d.doMatch(p, probe, false)
		}
	}
}

// insertLoop is insert mode: inserts are accepted, and matching continues
// between inserts until a match fails; failed matches are held for retry
// until insert mode exits (§III-C, §IV-C).
func (d *Device) insertLoop(p *sim.Process) {
	d.insertMode = true
	d.stats.StartInserts++
	d.pushResult(p, Response{Kind: RespStartAck, Free: d.free()})

	for {
		if c, ok := d.Commands.Pop(); ok {
			switch c.Op {
			case OpInsert:
				d.doInsert(p, c)
			case OpStopInsert:
				d.insertMode = false
				if d.held != nil {
					probe := *d.held
					d.held = nil
					// Retry the held match against the post-insert list.
					d.doMatch(p, probe, false)
				}
				return
			default:
				// START INSERT while inserting, or RESET mid-insert: the
				// prototype discards these (§III-C).
				d.stats.Discarded++
			}
			continue
		}

		// Between inserts, matching continues until a match fails.
		if d.held == nil {
			if probe, ok := d.Headers.Pop(); ok {
				d.doMatch(p, probe, true)
				continue
			}
		}

		if d.needsCompaction() {
			d.tick(p, 1)
			continue
		}
		p.WaitCond(d.kick, func() bool {
			return d.Commands.Len() > 0 || (d.held == nil && d.Headers.Len() > 0)
		})
	}
}

// doInsert writes a new entry into cell 0, waiting for compaction to
// vacate it if necessary. Inserts are irrevocable (§IV-C footnote 4): an
// insert with no free cell is lost and counted.
func (d *Device) doInsert(p *sim.Process, c Command) {
	if t := d.cfg.Tracer; t != nil {
		start := p.Now()
		defer func() { t.Span(d.cfg.TracePID, d.cfg.TraceTID, "alpu", "insert", start, p.Now()) }()
	}
	if d.free() == 0 {
		d.stats.LostInserts++
		d.tick(p, d.cfg.InsertCycles)
		return
	}
	for d.cells[0].valid {
		d.tick(p, 1) // compaction will drain the hole down to cell 0
	}
	d.cells[0] = cell{valid: true, bits: c.Bits, mask: c.Mask, tag: c.Tag}
	d.stats.Inserts++
	if occ := d.Occupancy(); occ > d.stats.MaxOccupancy {
		d.stats.MaxOccupancy = occ
	}
	d.tick(p, d.cfg.InsertCycles)
}

// doMatch runs one probe through the pipeline. In insert mode a failure is
// held for retry instead of producing MATCH FAILURE (§IV-A: failure never
// appears between START ACKNOWLEDGE and STOP INSERT).
func (d *Device) doMatch(p *sim.Process, probe Probe, inInsertMode bool) {
	// Resolve the match and delete against the pipeline-entry state; the
	// tick below models the pipeline occupancy. Compaction during the tick
	// may move cells, so the result must be captured first.
	searchStart := p.Now()
	idx := d.findMatch(probe)
	hit := idx >= 0
	var tag uint32
	if hit {
		tag = d.cells[idx].tag
		d.deleteAt(idx)
	}
	d.tick(p, d.cfg.MatchCycles)
	if t := d.cfg.Tracer; t != nil {
		t.Span(d.cfg.TracePID, d.cfg.TraceTID, "alpu", "search", searchStart, p.Now())
		if hit {
			t.Instant(d.cfg.TracePID, d.cfg.TraceTID, "alpu", "delete", p.Now())
		}
	}
	d.stats.Matches++
	if hit {
		d.stats.Hits++
		d.pushResult(p, Response{Kind: RespMatchSuccess, Tag: tag, Probe: probe})
		return
	}
	if inInsertMode {
		d.stats.HeldRetries++
		held := probe
		d.held = &held
		return
	}
	d.stats.Failures++
	d.pushResult(p, Response{Kind: RespMatchFailure, Probe: probe})
}

// findMatch returns the index of the highest-priority (highest index,
// oldest) matching valid cell, or -1. This is the priority mux tree of
// §III-B collapsed into its functional result.
func (d *Device) findMatch(probe Probe) int {
	pm := probeMask(d.cfg.Variant, probe)
	for i := len(d.cells) - 1; i >= 0; i-- {
		c := d.cells[i]
		if c.valid && match.Matches(c.bits, entryMask(d.cfg.Variant, c.mask), probe.Bits, pm) {
			return i
		}
	}
	return -1
}

// deleteAt removes the matched cell: cells below the match location shift
// up by one, leaving the lowest-priority cell empty; no hole is created
// (§III-B footnote 2).
func (d *Device) deleteAt(idx int) {
	copy(d.cells[1:idx+1], d.cells[0:idx])
	d.cells[0] = cell{}
}

// reset clears all valid flags (the RESET command).
func (d *Device) reset() {
	for i := range d.cells {
		d.cells[i] = cell{}
	}
	d.held = nil
	d.stats.Resets++
}

// tick advances n device clock cycles, performing one compaction step per
// cycle (the per-cycle register enables of §III-B).
func (d *Device) tick(p *sim.Process, n int) {
	for i := 0; i < n; i++ {
		if d.shiftStep() {
			d.stats.ShiftCycles++
		}
		p.Sleep(d.cfg.Clock.Period)
	}
}

// shiftStep performs one cycle of hole compaction. A cell's data moves up
// one position when the cell is enabled under the "space available"
// definition: an empty cell higher in its own block, or an empty lowest
// cell of the next block (§III-B); CompactAnyBlock widens this to any
// empty cell above. Enables are computed from the pre-cycle state, as the
// hardware's registered control does.
func (d *Device) shiftStep() bool {
	n := len(d.cells)
	bs := d.cfg.Geometry.BlockSize
	if d.validBuf == nil {
		d.validBuf = make([]bool, n)
		d.enabledBuf = make([]bool, n)
	}
	validBefore := d.validBuf
	anyHole := false
	for i, c := range d.cells {
		validBefore[i] = c.valid
		if !c.valid {
			anyHole = true
		}
	}
	if !anyHole {
		return false
	}

	enabled := d.enabledBuf
	// holeAbove[i]: is there an empty cell at any j > i (pre-cycle state)?
	holeAbove := false
	for i := n - 1; i >= 0; i-- {
		if d.cfg.CompactAnyBlock {
			enabled[i] = holeAbove
		} else {
			blockEnd := (i/bs+1)*bs - 1 // top index of i's block
			e := false
			for j := i + 1; j <= blockEnd; j++ {
				if !validBefore[j] {
					e = true
					break
				}
			}
			if !e && blockEnd+1 < n && !validBefore[blockEnd+1] {
				e = true // lowest cell of the next block is empty
			}
			enabled[i] = e
		}
		if !validBefore[i] {
			holeAbove = true
		}
	}

	moved := false
	// Each enabled cell's data moves to the cell above; apply from the top
	// down so a contiguous enabled run shifts by one as a group.
	for i := n - 2; i >= 0; i-- {
		if enabled[i] && d.cells[i].valid && !d.cells[i+1].valid {
			d.cells[i+1] = d.cells[i]
			d.cells[i] = cell{}
			moved = true
		}
	}
	return moved
}

// needsCompaction reports whether any valid cell still has an empty cell
// above it (the valid cells are not yet a contiguous suffix at the
// high-priority end). Holes below all data are the compacted steady state.
func (d *Device) needsCompaction() bool {
	seenEmpty := false
	for i := len(d.cells) - 1; i >= 0; i-- {
		if !d.cells[i].valid {
			seenEmpty = true
		} else if seenEmpty {
			return true
		}
	}
	return false
}

// pushResult appends to the result FIFO, stalling (as real hardware would
// backpressure) while it is full until the processor drains it (§IV-C).
// While stalled the device is not idle-spinning: compaction steps keep
// running (one per cycle, as the hardware's register enables would), and
// only once the array is fully compacted does the device park on the
// FIFO's not-full edge. ResultStalls counts every stalled device cycle on
// both paths, so the backpressure is visible in the stats either way.
func (d *Device) pushResult(p *sim.Process, r Response) {
	for d.Results.Full() {
		if d.needsCompaction() {
			d.stats.ResultStalls++
			d.tick(p, 1)
			continue
		}
		start := p.Now()
		p.WaitCond(d.Results.NotFull, func() bool { return !d.Results.Full() })
		d.stats.ResultStalls += uint64((p.Now() - start) / d.cfg.Clock.Period)
	}
	if !d.Results.Push(r) {
		panic(fmt.Sprintf("%s: result FIFO rejected push while not full", d.name))
	}
}
