package alpu

import (
	"fmt"
	"math/bits"

	"alpusim/internal/match"
	"alpusim/internal/params"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
	"alpusim/internal/trace"
)

// Config describes a Device build point and its timing.
type Config struct {
	Variant  Variant
	Geometry Geometry
	Clock    sim.Clock

	// MatchCycles is the pipeline occupancy of one match; 0 selects the
	// geometry rule (§V-D). The paper's simulations assume 7.
	MatchCycles int
	// InsertCycles is the spacing between inserts; 0 selects the
	// prototype's 2 (§V-D).
	InsertCycles int

	HeaderFIFODepth  int
	CommandFIFODepth int
	ResultFIFODepth  int

	// CompactAnyBlock widens the "space available" definition from
	// "higher cell in this block or the lowest cell of the next block" to
	// "any empty cell anywhere above" (§III-B discusses this as a timing
	// trade-off). Used by the abl-compaction ablation.
	CompactAnyBlock bool

	// PerCycle forces the reference stepping model: one engine event per
	// device clock edge. The default batches cycles whose intermediate
	// states are unobservable (see DESIGN.md "model performance"); the two
	// modes are bit-identical in observable behaviour, enforced by the
	// equivalence oracle in internal/bench.
	PerCycle bool

	// Faults, when Active, enables seeded device-level fault injection
	// (see FaultModel). Fault injection forces PerCycle: stuck cycles
	// perturb the per-cycle stepping schedule, which the cycle-batching
	// equivalence lemmas assume is fault-free.
	Faults *FaultModel

	// Tracer, when set, records search/insert spans and delete instants
	// on the (TracePID, TraceTID) track.
	Tracer   *telemetry.Tracer
	TracePID int
	TraceTID int
}

// DefaultConfig returns the simulated configuration used by the paper's
// Fig. 5/6 runs: the ASIC-speed unit at 500 MHz with a 7-cycle pipeline.
func DefaultConfig(v Variant, cells int) Config {
	return Config{
		Variant:          v,
		Geometry:         Geometry{Cells: cells, BlockSize: params.ALPUDefaultBlockSize},
		Clock:            sim.MHz(params.ALPUClockMHz),
		MatchCycles:      params.ALPUMatchCycles,
		InsertCycles:     params.ALPUInsertCycles,
		HeaderFIFODepth:  params.ALPUHeaderFIFODepth,
		CommandFIFODepth: params.ALPUCommandFIFODepth,
		ResultFIFODepth:  params.ALPUResultFIFODepth,
	}
}

type cell struct {
	valid bool
	bits  match.Bits
	mask  match.Bits
	tag   uint32
	// par is the parity bit stamped over (bits, mask, tag) at insert time.
	// A transient bit-flip leaves it stale, which is how the scrubber
	// detects corruption. Living inside the cell, it rides every
	// compaction move and delete shift for free.
	par bool
}

// cellParity computes the stored parity bit for a cell's payload.
func cellParity(b, m match.Bits, tag uint32) bool {
	return bits.OnesCount64(uint64(b)^uint64(m)^uint64(tag))&1 == 1
}

// Stats counts Device activity for the benchmark reports.
type Stats struct {
	Matches      uint64 // probes processed to completion
	Hits         uint64 // MATCH SUCCESS responses
	Failures     uint64 // MATCH FAILURE responses
	HeldRetries  uint64 // failed matches held during insert mode
	Inserts      uint64 // entries written
	LostInserts  uint64 // inserts arriving with no free cell (protocol violation)
	Resets       uint64
	Invalidates  uint64 // INVALIDATE commands that found and cleared a cell
	Discarded    uint64 // commands discarded in the wrong state (§III-C)
	StartInserts uint64
	MaxOccupancy int
	ShiftCycles  uint64 // cycles in which compaction moved data
	ResultStalls uint64 // cycles stalled on a full result FIFO

	// Fault-injection activity (zero unless Config.Faults is Active).
	BitFlips       uint64 // transient cell corruptions injected
	ParityFaults   uint64 // corrupted cells the scrubber quarantined
	DroppedResults uint64 // result-FIFO entries silently lost
	StuckCycles    uint64 // dead compaction cycles from stuck steps
	DeadDiscards   uint64 // FIFO entries swallowed after device death

	// SearchCycles distributes per-probe search service time in device
	// clock cycles (pipeline occupancy plus any stuck-step stall), the
	// device-side complement of the firmware's match-depth histograms.
	SearchCycles trace.Histogram
}

// Device is the cycle-level ALPU model. It runs as its own co-simulated
// process; the NIC interacts with it only through the three FIFOs, exactly
// as in Fig. 1.
type Device struct {
	cfg  Config
	eng  *sim.Engine
	name string

	// Headers receives probe copies (incoming headers for the
	// posted-receive unit, new receives for the unexpected unit).
	Headers *sim.FIFO[Probe]
	// Commands receives Table I commands from the processor.
	Commands *sim.FIFO[Command]
	// Results delivers Table II responses to the processor.
	Results *sim.FIFO[Response]

	kick  *sim.Signal
	cells []cell
	held  *Probe // failed match held for retry during insert mode (§III-C)

	// Scratch bitmaps for the generic (per-bool) compaction step, used
	// only when the geometry rules out the word-parallel path below.
	validBuf []bool
	curBuf   []bool

	// Word-parallel compaction state (block size ≤ 64; the power-of-two
	// constraint then makes blocks word-aligned). valid mirrors the cells'
	// valid flags bit-for-bit and is maintained persistently, so a
	// compaction step is a few shift/mask ops per 64 cells and only actual
	// data moves touch the cell structs. nil when the geometry is
	// unsupported, selecting the per-bool fallback everywhere.
	valid    []uint64
	moveBuf  []uint64 // scratch: per-word move masks for one step
	lookBuf  []uint64 // scratch: bitmap copy for insert-wait lookahead
	lastMask uint64   // bits of the top word that name real cells
	lowMask  uint64   // the lowest bit of every block
	topMask  uint64   // the top bit of every block
	bcastMul uint64   // spreads a block-low bit across its whole block
	sufShift []uint   // doubling shifts for the in-block suffix OR
	sufMask  []uint64 // matching masks keeping each shift inside its block

	// Idle-drain state (see idle): a drain is the compaction the device
	// runs while parked waiting for work, advanced by chunked timers
	// instead of per-cycle wakes.
	drainStart sim.Time
	drainSteps int // compaction cycles materialised since drainStart
	drainDone  bool
	drainTimer sim.EventID

	insertMode bool
	stats      Stats

	// frng is the device's private fault stream; nil when fault injection
	// is off, which keeps every fault check a single nil test.
	frng *devRand
}

// NewDevice creates and starts a Device on eng.
func NewDevice(eng *sim.Engine, name string, cfg Config) (*Device, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Clock.Period == 0 {
		cfg.Clock = sim.MHz(params.ALPUClockMHz)
	}
	if cfg.MatchCycles == 0 {
		cfg.MatchCycles = cfg.Geometry.PipelineCycles()
	}
	if cfg.InsertCycles == 0 {
		cfg.InsertCycles = params.ALPUInsertCycles
	}
	if cfg.Faults.Active() {
		// Stuck cycles perturb the stepping schedule the cycle-batching
		// equivalence lemmas assume, so fault injection runs the per-cycle
		// reference model.
		cfg.PerCycle = true
	}
	d := &Device{
		cfg:      cfg,
		eng:      eng,
		name:     name,
		Headers:  sim.NewFIFO[Probe](eng, name+".hdr", cfg.HeaderFIFODepth),
		Commands: sim.NewFIFO[Command](eng, name+".cmd", cfg.CommandFIFODepth),
		Results:  sim.NewFIFO[Response](eng, name+".res", cfg.ResultFIFODepth),
		kick:     sim.NewSignal(eng),
		cells:    make([]cell, cfg.Geometry.Cells),
	}
	d.initBits()
	if cfg.Faults.Active() {
		d.frng = newDevRand(cfg.Faults.Seed, 1)
	}
	eng.Spawn(name, d.run)
	return d, nil
}

// initBits sets up the word-parallel compaction state when the geometry
// supports it. Block size is a validated power of two, so bs ≤ 64 means
// every block lies within one 64-bit word at a fixed offset pattern — the
// per-block scans become constant masks shared by all words.
func (d *Device) initBits() {
	bs := d.cfg.Geometry.BlockSize
	n := d.cfg.Geometry.Cells
	if bs > 64 {
		return // whole-word blocks only; fall back to the per-bool step
	}
	words := (n + 63) / 64
	d.valid = make([]uint64, words)
	d.moveBuf = make([]uint64, words)
	d.lookBuf = make([]uint64, words)
	d.lastMask = ^uint64(0)
	if r := n % 64; r != 0 {
		d.lastMask = 1<<uint(r) - 1
	}
	for p := 0; p < 64; p += bs {
		d.lowMask |= 1 << uint(p)
	}
	d.topMask = d.lowMask << uint(bs-1)
	d.bcastMul = ^uint64(0)
	if bs < 64 {
		d.bcastMul = 1<<uint(bs) - 1
	}
	for k := 1; k < bs; k <<= 1 {
		pat := uint64(1)<<uint(bs-k) - 1
		var mask uint64
		for p := 0; p < 64; p += bs {
			mask |= pat << uint(p)
		}
		d.sufShift = append(d.sufShift, uint(k))
		d.sufMask = append(d.sufMask, mask)
	}
}

// rebuildBits resyncs the packed valid bitmap from the cell array, for
// the few writers that restructure many cells at once (and white-box
// tests that poke cells directly).
func (d *Device) rebuildBits() {
	if d.valid == nil {
		return
	}
	for w := range d.valid {
		d.valid[w] = 0
	}
	for i, c := range d.cells {
		if c.valid {
			d.valid[i/64] |= 1 << uint(i%64)
		}
	}
}

// MustDevice is NewDevice for known-good configurations.
func MustDevice(eng *sim.Engine, name string, cfg Config) *Device {
	d, err := NewDevice(eng, name, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// InsertMode reports whether the device is between START and STOP INSERT.
func (d *Device) InsertMode() bool { return d.insertMode }

// Publish harvests the device's activity counters into a telemetry
// registry under prefix (e.g. "nic0/alpu/posted"). Idempotent: values
// are Set, so repeated harvests never double-count.
func (d *Device) Publish(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	s := d.stats
	reg.Counter(prefix + "/matches").Set(s.Matches)
	reg.Counter(prefix + "/hits").Set(s.Hits)
	reg.Counter(prefix + "/failures").Set(s.Failures)
	reg.Counter(prefix + "/held_retries").Set(s.HeldRetries)
	reg.Counter(prefix + "/inserts").Set(s.Inserts)
	reg.Counter(prefix + "/lost_inserts").Set(s.LostInserts)
	reg.Counter(prefix + "/resets").Set(s.Resets)
	reg.Counter(prefix + "/invalidates").Set(s.Invalidates)
	reg.Counter(prefix + "/discarded").Set(s.Discarded)
	reg.Counter(prefix + "/start_inserts").Set(s.StartInserts)
	reg.Counter(prefix + "/shift_cycles").Set(s.ShiftCycles)
	reg.Counter(prefix + "/result_stalls").Set(s.ResultStalls)
	reg.Gauge(prefix + "/max_occupancy").SetMax(int64(s.MaxOccupancy))
	reg.Gauge(prefix + "/occupancy").Set(int64(d.Occupancy()))
	reg.Histogram(prefix + "/search_cycles").Set(s.SearchCycles)
	if d.cfg.Faults.Active() {
		reg.Counter(prefix + "/faults/bit_flips").Set(s.BitFlips)
		reg.Counter(prefix + "/faults/parity_quarantines").Set(s.ParityFaults)
		reg.Counter(prefix + "/faults/dropped_results").Set(s.DroppedResults)
		reg.Counter(prefix + "/faults/stuck_cycles").Set(s.StuckCycles)
		reg.Counter(prefix + "/faults/dead_discards").Set(s.DeadDiscards)
		dead := int64(0)
		if d.Dead() {
			dead = 1
		}
		reg.Gauge(prefix + "/faults/dead").Set(dead)
	}
}

// Dead reports whether the device has passed its configured death instant
// and gone dark on the bus. Exposed for tests and telemetry; the firmware
// never peeks — it detects death through response timeouts, as a real host
// would.
func (d *Device) Dead() bool {
	f := d.cfg.Faults
	return f != nil && f.DeathAt > 0 && d.eng.Now() >= f.DeathAt
}

// PushProbe delivers a header/receive copy into the header FIFO (the
// hardware path of Fig. 1; no processor involvement). It reports false if
// the FIFO was full and the probe was dropped.
func (d *Device) PushProbe(p Probe) bool {
	ok := d.Headers.Push(p)
	d.kick.Raise()
	return ok
}

// PushCommand delivers a command into the command FIFO. The *processor
// side* cost (bus transaction) is charged by the caller.
func (d *Device) PushCommand(c Command) bool {
	ok := d.Commands.Push(c)
	d.kick.Raise()
	return ok
}

// Occupancy returns the number of valid cells.
func (d *Device) Occupancy() int {
	if d.valid != nil {
		n := 0
		for _, v := range d.valid {
			n += bits.OnesCount64(v)
		}
		return n
	}
	n := 0
	for _, c := range d.cells {
		if c.valid {
			n++
		}
	}
	return n
}

// free returns the number of invalid cells.
func (d *Device) free() int { return d.cfg.Geometry.Cells - d.Occupancy() }

// Tags returns the stored tags from oldest (highest priority) to newest,
// for tests.
func (d *Device) Tags() []uint32 {
	var out []uint32
	for i := len(d.cells) - 1; i >= 0; i-- {
		if d.cells[i].valid {
			out = append(out, d.cells[i].tag)
		}
	}
	return out
}

// run is the controlling state machine (Fig. 3). The outer loop is the
// Match state; a non-empty command FIFO at a match boundary enters the
// Read Command state; START INSERT enters insert mode.
func (d *Device) run(p *sim.Process) {
	ready := func() bool {
		return d.Commands.Len() > 0 || d.Headers.Len() > 0
	}
	for {
		d.idle(p, ready)
		if d.Dead() {
			d.playDead(p)
		}
		d.faultHook(p)

		// Read Command state: only RESET and START INSERT are valid here;
		// everything else is discarded (§III-C footnote 3).
		if c, ok := d.Commands.Pop(); ok {
			d.tick(p, 1)
			switch c.Op {
			case OpReset:
				d.reset()
			case OpStartInsert:
				d.insertLoop(p)
			case OpInvalidate:
				d.invalidate(c.Tag)
			default:
				d.stats.Discarded++
			}
			continue
		}

		if probe, ok := d.Headers.Pop(); ok {
			d.doMatch(p, probe, false)
		}
	}
}

// playDead never returns: a hard-failed unit stops responding on the bus.
// Anything already queued — and anything pushed later — is swallowed so the
// producer-side FIFOs keep draining (a wedged command FIFO would park the
// firmware's pushCommand forever); no response is ever emitted again. The
// process parks between kicks, so a dead device never keeps the engine
// alive and the world still drains to quiescence.
func (d *Device) playDead(p *sim.Process) {
	for {
		for {
			if _, ok := d.Commands.Pop(); !ok {
				break
			}
			d.stats.DeadDiscards++
		}
		for {
			if _, ok := d.Headers.Pop(); !ok {
				break
			}
			d.stats.DeadDiscards++
		}
		p.WaitCond(d.kick, func() bool {
			return d.Commands.Len() > 0 || d.Headers.Len() > 0
		})
	}
}

// faultHook is the per-opportunity fault point: possibly corrupt one cell,
// then scrub. Scrubbing immediately after injection models parity checking
// on the match/readout path — a corrupted cell is quarantined before any
// probe can (mis)match against it, which is what lets the firmware repair
// from its shadow copy with zero wrong matches.
func (d *Device) faultHook(p *sim.Process) {
	if d.frng == nil {
		return
	}
	d.maybeFlip()
	d.scrub(p)
}

// maybeFlip draws the bit-flip chance and, on a hit, flips one random bit
// of one random valid cell's match bits, leaving its parity bit stale.
func (d *Device) maybeFlip() {
	if !d.frng.chance(d.cfg.Faults.BitFlipProb) {
		return
	}
	occ := d.Occupancy()
	if occ == 0 {
		return
	}
	k := d.frng.intn(occ)
	for i := range d.cells {
		if !d.cells[i].valid {
			continue
		}
		if k == 0 {
			d.cells[i].bits ^= 1 << uint(d.frng.intn(64))
			d.stats.BitFlips++
			return
		}
		k--
	}
}

// scrub scans for parity-bad cells and quarantines each: the cell is
// invalidated (leaving a hole for compaction) and a FAULT response carrying
// the lost entry's tag tells the firmware which entry to repair from its
// host-side shadow copy.
func (d *Device) scrub(p *sim.Process) {
	for i := range d.cells {
		c := &d.cells[i]
		if !c.valid || cellParity(c.bits, c.mask, c.tag) == c.par {
			continue
		}
		tag := c.tag
		*c = cell{}
		if d.valid != nil {
			d.valid[i/64] &^= 1 << uint(i%64)
		}
		d.stats.ParityFaults++
		d.pushResult(p, Response{Kind: RespFault, Tag: tag})
	}
}

// drainChunk is the number of idle cycles one drain timer covers. Bigger
// chunks mean fewer engine events on a long drain; the chunk length never
// overshoots quiescence (armDrainChunk lands the final timer exactly on
// the quiescent edge), so the value only trades event count against the
// cost of the capped lookahead in the drain tail.
const drainChunk = 64

// idle runs the device's compaction-while-waiting behaviour until ready
// reports work to do: each idle cycle performs one compaction step, and
// once the array is quiescent the device parks on its kick signal.
//
// The fast path parks immediately and advances the drain with chunked
// timers (armDrainChunk) instead of one engine event per cycle, paying
// simulated-cycle cost only per state change. If work arrives mid-drain,
// the pending timer is cancelled and exactly the cycles the per-cycle
// model would have stepped by the next clock edge are materialised,
// re-aligning to that edge. Intermediate layouts are unobservable from
// outside the device (the FIFOs are the only interface and compaction
// never reorders valid cells), so the two paths are bit-identical in
// observable behaviour; see DESIGN.md "model performance" for the
// argument and the producer-granularity assumption.
func (d *Device) idle(p *sim.Process, ready func() bool) {
	if d.cfg.PerCycle {
		for !ready() {
			if d.needsCompaction() {
				d.tick(p, 1)
				continue
			}
			p.WaitCond(d.kick, ready)
		}
		return
	}
	per := d.cfg.Clock.Period
	for !ready() {
		if !d.needsCompaction() {
			p.WaitCond(d.kick, ready)
			continue
		}
		d.drainStart = p.Now()
		d.drainSteps = 0
		d.drainDone = false
		d.armDrainChunk()
		p.WaitCond(d.kick, ready)
		if d.drainDone {
			continue // quiesced before the kick; the device was just parked
		}
		d.eng.Cancel(d.drainTimer)
		// Work arrived mid-drain. The per-cycle model commits a step+sleep
		// at every edge before it can observe anything, so it would react
		// at the first clock edge at-or-after now (strictly after when the
		// kick landed on the edge that started the drain), having stepped
		// once per edge. Catch up to that edge.
		elapsed := p.Now() - d.drainStart
		k := int((elapsed + per - 1) / per)
		if k == 0 {
			k = 1
		}
		if want := k - d.drainSteps; want > 0 {
			d.materializeSteps(want)
		}
		if align := sim.Time(k)*per - elapsed; align > 0 {
			p.Sleep(align)
		}
	}
}

// armDrainChunk schedules the next slice of an idle drain. The pending
// timer is what keeps Engine.Alive positive while compaction is still
// running, exactly as the per-cycle model's wake events would, so it must
// never outlive quiescence: a full chunk is armed only when at least
// drainChunk cycles provably remain (the lowest valid cell climbs past
// every hole above it at most one position per cycle, so that hole count
// is a lower bound), and otherwise a capped lookahead finds the exact
// remaining cycle count and the final timer lands on the quiescent edge —
// the instant the per-cycle model's last wake would fire.
func (d *Device) armDrainChunk() {
	// The hole count is a provable lower bound on the cycles remaining, so
	// a chunk of min(holes, drainChunk) cycles never overshoots, and every
	// cycle it covers moves data (the progress property of shiftStep while
	// compaction is pending). Chunks therefore sum to exactly the
	// cycles-to-quiescence: the chunk whose materialisation reaches
	// quiescence fires precisely when the per-cycle model's last wake
	// would, with no lookahead ever simulated.
	q := d.holesAboveLowestValid()
	if q > drainChunk {
		q = drainChunk
	}
	d.drainTimer = d.eng.ScheduleCancellable(sim.Time(q)*d.cfg.Clock.Period, func() {
		d.drainSteps += q
		d.materializeSteps(q)
		if d.needsCompaction() {
			d.armDrainChunk()
			return
		}
		d.drainDone = true
	})
}

// holesAboveLowestValid counts the empty cells above the lowest valid
// cell — a lower bound on the compaction cycles remaining, computable in
// one O(cells) pass.
func (d *Device) holesAboveLowestValid() int {
	if d.valid != nil {
		// Equals (cells above the lowest valid one) − (valid cells above
		// it): n − lowest − popcount.
		pop, lowest := 0, -1
		for w, v := range d.valid {
			if v == 0 {
				continue
			}
			if lowest < 0 {
				lowest = w*64 + bits.TrailingZeros64(v)
			}
			pop += bits.OnesCount64(v)
		}
		if lowest < 0 {
			return 0
		}
		return d.cfg.Geometry.Cells - lowest - pop
	}
	lowest := -1
	holes := 0
	for i, c := range d.cells {
		if c.valid {
			if lowest < 0 {
				lowest = i
			}
		} else if lowest >= 0 {
			holes++
		}
	}
	return holes
}

// insertLoop is insert mode: inserts are accepted, and matching continues
// between inserts until a match fails; failed matches are held for retry
// until insert mode exits (§III-C, §IV-C).
func (d *Device) insertLoop(p *sim.Process) {
	d.insertMode = true
	d.stats.StartInserts++
	d.pushResult(p, Response{Kind: RespStartAck, Free: d.free()})

	ready := func() bool {
		return d.Commands.Len() > 0 || (d.held == nil && d.Headers.Len() > 0)
	}
	for {
		if d.Dead() {
			// A unit that dies mid-insert-episode just stops; the firmware's
			// response timeouts notice. Fall back to the outer loop, which
			// parks the corpse.
			d.insertMode = false
			d.held = nil
			return
		}
		if c, ok := d.Commands.Pop(); ok {
			switch c.Op {
			case OpInsert:
				d.doInsert(p, c)
			case OpStopInsert:
				d.insertMode = false
				if d.held != nil {
					probe := *d.held
					d.held = nil
					// Retry the held match against the post-insert list.
					d.doMatch(p, probe, false)
				}
				return
			case OpInvalidate:
				// Honored in insert mode too: commands stay strictly FIFO
				// and always precede header processing, so a probe pushed
				// after an INVALIDATE can never observe the cleared cell.
				// A discarded invalidate would leave a purged wildcard copy
				// resident, silently skewing the firmware's mirror.
				d.invalidate(c.Tag)
			default:
				// START INSERT while inserting, or RESET mid-insert: the
				// prototype discards these (§III-C).
				d.stats.Discarded++
			}
			continue
		}

		// Between inserts, matching continues until a match fails.
		if d.held == nil {
			if probe, ok := d.Headers.Pop(); ok {
				d.doMatch(p, probe, true)
				continue
			}
		}

		d.idle(p, ready)
	}
}

// doInsert writes a new entry into cell 0, waiting for compaction to
// vacate it if necessary. Inserts are irrevocable (§IV-C footnote 4): an
// insert with no free cell is lost and counted.
func (d *Device) doInsert(p *sim.Process, c Command) {
	if t := d.cfg.Tracer; t != nil {
		start := p.Now()
		defer func() { t.Span(d.cfg.TracePID, d.cfg.TraceTID, "alpu", "insert", start, p.Now()) }()
	}
	if d.free() == 0 {
		d.stats.LostInserts++
		d.tick(p, d.cfg.InsertCycles)
		return
	}
	for d.cells[0].valid {
		// Compaction will drain a hole down to cell 0 (one exists: free>0).
		if d.cfg.PerCycle {
			d.tick(p, 1)
			continue
		}
		d.tick(p, d.cyclesUntilCellZeroFree())
	}
	d.cells[0] = cell{valid: true, bits: c.Bits, mask: c.Mask, tag: c.Tag,
		par: cellParity(c.Bits, c.Mask, c.Tag)}
	if d.valid != nil {
		d.valid[0] |= 1
	}
	d.stats.Inserts++
	if occ := d.Occupancy(); occ > d.stats.MaxOccupancy {
		d.stats.MaxOccupancy = occ
	}
	d.tick(p, d.cfg.InsertCycles)
}

// doMatch runs one probe through the pipeline. In insert mode a failure is
// held for retry instead of producing MATCH FAILURE (§IV-A: failure never
// appears between START ACKNOWLEDGE and STOP INSERT).
func (d *Device) doMatch(p *sim.Process, probe Probe, inInsertMode bool) {
	d.faultHook(p)
	// Resolve the match and delete against the pipeline-entry state; the
	// tick below models the pipeline occupancy. Compaction during the tick
	// may move cells, so the result must be captured first.
	searchStart := p.Now()
	idx := d.findMatch(probe)
	hit := idx >= 0
	var tag uint32
	if hit {
		tag = d.cells[idx].tag
		d.deleteAt(idx)
	}
	d.tick(p, d.cfg.MatchCycles)
	if t := d.cfg.Tracer; t != nil {
		t.Span(d.cfg.TracePID, d.cfg.TraceTID, "alpu", "search", searchStart, p.Now())
		if hit {
			t.Instant(d.cfg.TracePID, d.cfg.TraceTID, "alpu", "delete", p.Now())
		}
	}
	d.stats.Matches++
	if period := d.cfg.Clock.Period; period > 0 {
		d.stats.SearchCycles.Add(int((p.Now() - searchStart) / period))
	}
	if hit {
		d.stats.Hits++
		d.pushResult(p, Response{Kind: RespMatchSuccess, Tag: tag, Probe: probe})
		return
	}
	if inInsertMode {
		d.stats.HeldRetries++
		held := probe
		d.held = &held
		return
	}
	d.stats.Failures++
	d.pushResult(p, Response{Kind: RespMatchFailure, Probe: probe})
}

// findMatch returns the index of the highest-priority (highest index,
// oldest) matching valid cell, or -1. This is the priority mux tree of
// §III-B collapsed into its functional result.
func (d *Device) findMatch(probe Probe) int {
	pm := probeMask(d.cfg.Variant, probe)
	for i := len(d.cells) - 1; i >= 0; i-- {
		c := d.cells[i]
		if c.valid && match.Matches(c.bits, entryMask(d.cfg.Variant, c.mask), probe.Bits, pm) {
			return i
		}
	}
	return -1
}

// deleteAt removes the matched cell: cells below the match location shift
// up by one, leaving the lowest-priority cell empty; no hole is created
// (§III-B footnote 2).
func (d *Device) deleteAt(idx int) {
	copy(d.cells[1:idx+1], d.cells[0:idx])
	d.cells[0] = cell{}
	if d.valid == nil {
		return
	}
	// Mirror in the bitmap: bits [0, idx] become the old bits [0, idx-1]
	// shifted up one with a zero shifted in; bits above idx are unchanged.
	wEnd := idx / 64
	carry := uint64(0)
	for w := 0; w <= wEnd; w++ {
		v := d.valid[w]
		sv := v<<1 | carry
		carry = v >> 63
		if w == wEnd {
			low := ^uint64(0)
			if b := uint(idx % 64); b < 63 {
				low = 1<<(b+1) - 1
			}
			sv = sv&low | v&^low
		}
		d.valid[w] = sv
	}
}

// invalidate clears the cell holding tag, if any, leaving a hole that
// compacts lazily exactly like a quarantined cell (§III-B). The tag
// lookup is associative, so the command costs only its Read Command
// cycle. No response is emitted: an absent tag means a match raced ahead
// of the invalidate in the FIFOs and already consumed the copy.
func (d *Device) invalidate(tag uint32) {
	for i := range d.cells {
		c := &d.cells[i]
		if !c.valid || c.tag != tag {
			continue
		}
		*c = cell{}
		if d.valid != nil {
			d.valid[i/64] &^= 1 << uint(i%64)
		}
		d.stats.Invalidates++
		return
	}
}

// reset clears all valid flags (the RESET command).
func (d *Device) reset() {
	for i := range d.cells {
		d.cells[i] = cell{}
	}
	for i := range d.valid {
		d.valid[i] = 0
	}
	d.held = nil
	d.stats.Resets++
}

// tick advances n device clock cycles, performing one compaction step per
// cycle (the per-cycle register enables of §III-B). The batched model
// applies all n steps' worth of state change up front — the intermediate
// layouts are internal to the device — and sleeps the burst in two events:
// the final wake is scheduled one period early, exactly when the per-cycle
// model schedules its last wake, so same-instant event ordering against
// other processes is preserved.
func (d *Device) tick(p *sim.Process, n int) {
	if n <= 0 {
		return
	}
	per := d.cfg.Clock.Period
	if d.cfg.PerCycle {
		for i := 0; i < n; i++ {
			if d.frng != nil && d.frng.chance(d.cfg.Faults.StuckProb) {
				// Stuck compaction: the step machinery wedges for a short
				// run of cycles in which time passes but nothing moves.
				k := 1 + d.frng.intn(8)
				d.stats.StuckCycles += uint64(k)
				for j := 0; j < k; j++ {
					p.Sleep(per)
				}
			}
			if d.shiftStep() {
				d.stats.ShiftCycles++
			}
			p.Sleep(per)
		}
		return
	}
	d.materializeSteps(n)
	if n > 1 {
		p.Sleep(sim.Time(n-1) * per)
	}
	p.Sleep(per)
}

// materializeSteps applies up to n compaction cycles of state change
// immediately, counting ShiftCycles exactly as per-cycle stepping would.
// Cells change only through the device itself, so once one step moves
// nothing, no later step in the burst can move either. The valid bitmap
// is carried across the burst so each step scans bools, not cell
// structs; only actual moves touch cells.
func (d *Device) materializeSteps(n int) {
	if n <= 0 {
		return
	}
	if d.valid != nil {
		for i := 0; i < n; i++ {
			if !d.bitStep(d.valid, true) {
				return
			}
			d.stats.ShiftCycles++
		}
		return
	}
	before, cur := d.scratch()
	anyHole := false
	for i, c := range d.cells {
		cur[i] = c.valid
		if !c.valid {
			anyHole = true
		}
	}
	if !anyHole {
		return
	}
	move := func(i int) {
		d.cells[i+1] = d.cells[i]
		d.cells[i] = cell{}
	}
	for i := 0; i < n; i++ {
		copy(before, cur)
		if !d.stepValid(before, cur, move) {
			return
		}
		d.stats.ShiftCycles++
	}
}

// scratch returns the two lazily-allocated bitmap buffers.
func (d *Device) scratch() (before, cur []bool) {
	if d.validBuf == nil {
		d.validBuf = make([]bool, len(d.cells))
		d.curBuf = make([]bool, len(d.cells))
	}
	return d.validBuf, d.curBuf
}

// shiftStep performs one cycle of hole compaction. A cell's data moves up
// one position when the cell is enabled under the "space available"
// definition: an empty cell higher in its own block, or an empty lowest
// cell of the next block (§III-B); CompactAnyBlock widens this to any
// empty cell above. Enables are computed from the pre-cycle state, as the
// hardware's registered control does.
func (d *Device) shiftStep() bool {
	if d.valid != nil {
		return d.bitStep(d.valid, true)
	}
	before, cur := d.scratch()
	anyHole := false
	for i, c := range d.cells {
		before[i] = c.valid
		cur[i] = c.valid
		if !c.valid {
			anyHole = true
		}
	}
	if !anyHole {
		return false
	}
	return d.stepValid(before, cur, func(i int) {
		d.cells[i+1] = d.cells[i]
		d.cells[i] = cell{}
	})
}

// stepValid advances a valid bitmap by one compaction cycle: enables come
// from before (the pre-cycle state, left unchanged), moves are applied to
// cur (which must start equal to before), and move(i) — when non-nil — is
// invoked for every cell whose data shifts up. Data movement depends only
// on the valid bits, so the same routine drives both the real cell array
// (via the move callback) and the analytic cycles-to-quiescence counting.
// One descending O(cells) pass: moves apply top-down so a contiguous
// enabled run shifts by one as a group, and the running suffix scans
// replace the per-cell inner block loop.
func (d *Device) stepValid(before, cur []bool, move func(i int)) bool {
	n := len(before)
	moved := false
	if d.cfg.CompactAnyBlock {
		holeAbove := !before[n-1] // empty cell at any j > i, pre-cycle
		for i := n - 2; i >= 0; i-- {
			if holeAbove && cur[i] && !cur[i+1] {
				cur[i+1], cur[i] = true, false
				if move != nil {
					move(i)
				}
				moved = true
			}
			if !before[i] {
				holeAbove = true
			}
		}
		return moved
	}
	bs := d.cfg.Geometry.BlockSize
	holeInBlock := !before[n-1] // empty cell above i within i's block
	nextLow := false            // lowest cell of the block above is empty
	for i := n - 2; i >= 0; i-- {
		if i%bs == bs-1 { // i is the top cell of its block
			holeInBlock = false
			nextLow = !before[i+1]
		}
		if (holeInBlock || nextLow) && cur[i] && !cur[i+1] {
			cur[i+1], cur[i] = true, false
			if move != nil {
				move(i)
			}
			moved = true
		}
		if !before[i] {
			holeInBlock = true
		}
	}
	return moved
}

// suffixOR64 ORs into every bit all bits above it: result bit i is the OR
// of x's bits i..63.
func suffixOR64(x uint64) uint64 {
	x |= x >> 1
	x |= x >> 2
	x |= x >> 4
	x |= x >> 8
	x |= x >> 16
	x |= x >> 32
	return x
}

// bitStep is stepValid on the packed bitmap: one compaction cycle in a
// few word ops per 64 cells. The per-bool scan's run-group behaviour
// collapses to a closed form — a valid cell moves up exactly when its
// space-available enable (from the pre-cycle state) holds, because a
// valid cell directly above an enabled cell is itself enabled and vacates
// the slot in the same cycle — so the move mask is just valid & enable
// and the new bitmap is (valid &^ moves) | moves<<1 with cross-word
// carry. When moveCells is set, the set bits of the move mask are applied
// to the cell array top-down, as the scan would.
func (d *Device) bitStep(v []uint64, moveCells bool) bool {
	m := d.moveBuf
	moved := false
	if d.cfg.CompactAnyBlock {
		// Enable: any empty cell anywhere above. Within a word that is the
		// strict suffix OR of the hole bits; a hole in any higher word
		// enables the whole word.
		holeAbove := false
		for w := len(v) - 1; w >= 0; w-- {
			h := ^v[w]
			if w == len(v)-1 {
				h &= d.lastMask
			}
			e := suffixOR64(h) >> 1
			if holeAbove {
				e = ^uint64(0)
			}
			if mw := v[w] & e; mw != 0 {
				m[w] = mw
				moved = true
			} else {
				m[w] = 0
			}
			if h != 0 {
				holeAbove = true
			}
		}
	} else {
		// Enable: an empty cell higher in the same block (in-block strict
		// suffix OR of the holes, via masked doubling), or an empty lowest
		// cell of the next block (each block-low hole bit shifted down one
		// block and broadcast across it; the word's top block takes the
		// carry from the word above).
		bs := uint(d.cfg.Geometry.BlockSize)
		carryLow := uint64(0)
		for w := len(v) - 1; w >= 0; w-- {
			h := ^v[w]
			if w == len(v)-1 {
				h &= d.lastMask
			}
			f := h
			for j, k := range d.sufShift {
				f |= f >> k & d.sufMask[j]
			}
			lows := h & d.lowMask
			nl := (lows>>bs | carryLow<<(64-bs)) * d.bcastMul
			carryLow = lows & 1
			if mw := v[w] & (f>>1&^d.topMask | nl); mw != 0 {
				m[w] = mw
				moved = true
			} else {
				m[w] = 0
			}
		}
	}
	if !moved {
		return false
	}
	carry := uint64(0)
	for w := 0; w < len(v); w++ {
		mw := m[w]
		v[w] = v[w]&^mw | mw<<1 | carry
		carry = mw >> 63
	}
	if !moveCells {
		return true
	}
	for w := len(v) - 1; w >= 0; w-- {
		mw := m[w]
		for mw != 0 {
			b := bits.Len64(mw) - 1
			i := w*64 + b
			d.cells[i+1] = d.cells[i]
			d.cells[i] = cell{}
			mw &^= 1 << uint(b)
		}
	}
	return true
}

// cyclesUntilCellZeroFree counts the compaction cycles until cell 0 is
// empty so an insert can land, stepping the valid bitmap analytically.
// The caller must ensure a free cell exists; compaction then always
// drains a hole down to cell 0, so the count is finite (and checked
// before each step, matching a caller that re-tests per cycle).
func (d *Device) cyclesUntilCellZeroFree() int {
	if d.valid != nil {
		copy(d.lookBuf, d.valid)
		steps := 0
		for d.lookBuf[0]&1 != 0 {
			if !d.bitStep(d.lookBuf, false) {
				break // cannot happen while a free cell exists
			}
			steps++
		}
		return steps
	}
	before, cur := d.scratch()
	for i := range d.cells {
		cur[i] = d.cells[i].valid
	}
	steps := 0
	for cur[0] {
		copy(before, cur)
		if !d.stepValid(before, cur, nil) {
			break // cannot happen while a free cell exists
		}
		steps++
	}
	return steps
}

// needsCompaction reports whether any valid cell still has an empty cell
// above it (the valid cells are not yet a contiguous suffix at the
// high-priority end). Holes below all data are the compacted steady state.
func (d *Device) needsCompaction() bool {
	if d.valid != nil {
		seenHole := false
		for w := len(d.valid) - 1; w >= 0; w-- {
			v := d.valid[w]
			h := ^v
			if w == len(d.valid)-1 {
				h &= d.lastMask
			}
			if seenHole && v != 0 {
				return true
			}
			if suffixOR64(h)>>1&v != 0 {
				return true
			}
			if h != 0 {
				seenHole = true
			}
		}
		return false
	}
	seenEmpty := false
	for i := len(d.cells) - 1; i >= 0; i-- {
		if !d.cells[i].valid {
			seenEmpty = true
		} else if seenEmpty {
			return true
		}
	}
	return false
}

// pushResult appends to the result FIFO, stalling (as real hardware would
// backpressure) while it is full until the processor drains it (§IV-C).
// While stalled the device is not idle-spinning: compaction steps keep
// running (one per cycle, as the hardware's register enables would), and
// only once the array is fully compacted does the device park on the
// FIFO's not-full edge. ResultStalls is charged at a single site from
// elapsed stall time, so the per-cycle and cycle-batched paths count
// identically by construction (tick(p, 1) advances exactly one clock
// period in both modes; the fast-vs-reference oracle in
// TestPushResultStallOracle pins this).
func (d *Device) pushResult(p *sim.Process, r Response) {
	for d.Results.Full() {
		start := p.Now()
		if d.needsCompaction() {
			d.tick(p, 1)
		} else {
			p.WaitCond(d.Results.NotFull, func() bool { return !d.Results.Full() })
		}
		d.stats.ResultStalls += uint64((p.Now() - start) / d.cfg.Clock.Period)
	}
	if d.frng != nil && d.frng.chance(d.cfg.Faults.ResultDropProb) {
		d.stats.DroppedResults++
		return
	}
	if !d.Results.Push(r) {
		panic(fmt.Sprintf("%s: result FIFO rejected push while not full", d.name))
	}
}
