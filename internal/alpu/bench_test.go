package alpu

import "testing"

// BenchmarkMicro exposes the MicroCases grid (microbench.go) to go test
// -bench; the CI bench gate and the BENCH.json harness both consume the
// same cases.
func BenchmarkMicro(b *testing.B) {
	for _, c := range MicroCases() {
		b.Run(c.Name, c.Bench)
	}
}
