package alpu

import (
	"fmt"
	"testing"

	"alpusim/internal/match"
	"alpusim/internal/sim"
)

// Micro-benchmarks of the Device hot paths — insert, search at depth
// (hit and miss), and the compaction drain after an insert fragments the
// array — across the §VI-A geometry grid (128/256 cells × block
// 8/16/32). They exist in a non-test file so the alpusim bench harness
// can fold the results into BENCH.json; go test -bench reaches them
// through BenchmarkMicro. The numbers measure host cost of simulating
// the operation (the model-performance target of DESIGN.md), not
// simulated latency — that is what the figure benchmarks report.

// MicroResult is one micro-benchmark measurement for BENCH.json.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// MicroCase names one runnable micro-benchmark.
type MicroCase struct {
	Name  string
	Bench func(b *testing.B)
}

// MicroGeometries is the benchmark grid: the geometries §VI-A explores.
func MicroGeometries() []Geometry {
	var gs []Geometry
	for _, cells := range []int{128, 256} {
		for _, block := range []int{8, 16, 32} {
			gs = append(gs, Geometry{Cells: cells, BlockSize: block})
		}
	}
	return gs
}

// MicroCases enumerates every micro-benchmark on the geometry grid.
func MicroCases() []MicroCase {
	var cases []MicroCase
	for _, g := range MicroGeometries() {
		g := g
		suffix := fmt.Sprintf("/cells=%d/block=%d", g.Cells, g.BlockSize)
		cases = append(cases,
			MicroCase{"insert" + suffix, func(b *testing.B) { microInsert(b, g) }},
			MicroCase{"search-hit" + suffix, func(b *testing.B) { microSearch(b, g, true) }},
			MicroCase{"search-miss" + suffix, func(b *testing.B) { microSearch(b, g, false) }},
			MicroCase{"compact-drain" + suffix, func(b *testing.B) { microCompactDrain(b, g) }},
		)
	}
	return cases
}

// RunMicroBenchmarks runs every case through testing.Benchmark for the
// BENCH.json harness.
func RunMicroBenchmarks() []MicroResult {
	var out []MicroResult
	for _, c := range MicroCases() {
		r := testing.Benchmark(c.Bench)
		out = append(out, MicroResult{
			Name:        c.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}

func microConfig(g Geometry) Config {
	cfg := DefaultConfig(PostedReceives, g.Cells)
	cfg.Geometry = g
	return cfg
}

// microFill writes a compacted suffix of n entries directly (white-box),
// the lowest of which matches microProbe() when withMatch is set.
func microFill(d *Device, n int, withMatch bool) {
	hitBits, hitMask := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 3})
	missBits, missMask := match.PackRecv(match.Recv{Context: 7, Source: 8, Tag: 9})
	cells := len(d.cells)
	for i := 0; i < n; i++ {
		idx := cells - n + i
		c := cell{valid: true, bits: missBits, mask: missMask, tag: uint32(i)}
		if withMatch && i == 0 {
			c.bits, c.mask = hitBits, hitMask
		}
		d.cells[idx] = c
	}
	d.rebuildBits()
}

func microProbe() Probe {
	return Probe{Bits: match.Pack(match.Header{Context: 1, Source: 2, Tag: 3})}
}

// microInsert measures one INSERT through the command FIFO, including
// the climb out of cell 0, with the array held near half occupancy by
// periodic resets (amortised into the loop).
func microInsert(b *testing.B, g Geometry) {
	eng := sim.NewEngine()
	d := MustDevice(eng, "bench", microConfig(g))
	bits, mask := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 3})
	eng.Spawn("drv", func(p *sim.Process) {
		ack := func() {
			p.WaitCond(d.Results.NotEmpty, func() bool { return d.Results.Len() > 0 })
			d.Results.Pop()
		}
		push := func(c Command) {
			for !d.PushCommand(c) {
				p.WaitCond(d.Commands.NotFull, func() bool { return !d.Commands.Full() })
			}
		}
		push(Command{Op: OpStartInsert})
		ack()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d.Occupancy() >= g.Cells/2 {
				push(Command{Op: OpStopInsert})
				push(Command{Op: OpReset})
				push(Command{Op: OpStartInsert})
				ack()
			}
			push(Command{Op: OpInsert, Bits: bits, Mask: mask, Tag: uint32(i)})
		}
		b.StopTimer()
	})
	eng.Run()
}

// microSearch measures one probe through the header FIFO against a
// half-full array. The hit case matches the deepest (lowest-index)
// entry, so the priority scan traverses the full occupied suffix; the
// deleted entry is restored between iterations (white-box) to keep the
// depth constant.
func microSearch(b *testing.B, g Geometry, hit bool) {
	eng := sim.NewEngine()
	d := MustDevice(eng, "bench", microConfig(g))
	depth := g.Cells / 2
	microFill(d, depth, hit)
	snapshot := append([]cell(nil), d.cells...)
	probe := microProbe()
	eng.Spawn("drv", func(p *sim.Process) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.PushProbe(probe)
			p.WaitCond(d.Results.NotEmpty, func() bool { return d.Results.Len() > 0 })
			r, _ := d.Results.Pop()
			if hit {
				if r.Kind != RespMatchSuccess {
					b.Fatalf("want hit, got %v", r.Kind)
				}
				copy(d.cells, snapshot)
				d.rebuildBits()
			} else if r.Kind != RespMatchFailure {
				b.Fatalf("want miss, got %v", r.Kind)
			}
		}
		b.StopTimer()
	})
	eng.Run()
}

// microCompactDrain measures a full idle compaction: a fresh entry in
// cell 0 below a compacted half-full suffix, stepped until quiescent.
// This exercises the step kernel directly, without engine events.
func microCompactDrain(b *testing.B, g Geometry) {
	d := MustDevice(sim.NewEngine(), "bench", microConfig(g))
	microFill(d, g.Cells/2, false)
	bits, mask := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 3})
	d.cells[0] = cell{valid: true, bits: bits, mask: mask, tag: 99}
	d.rebuildBits()
	template := append([]cell(nil), d.cells...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(d.cells, template)
		d.rebuildBits()
		for d.shiftStep() {
		}
	}
}
