package alpu

import (
	"testing"

	"alpusim/internal/match"
	"alpusim/internal/sim"
)

// TestPushResultStallOracle pins the satellite claim that ResultStalls is
// counted identically on the per-cycle reference path and the
// cycle-batched fast path: same protocol, same tiny result FIFO, same
// slow consumer — the full Stats (ResultStalls included) and the response
// sequences must be bit-identical.
func TestPushResultStallOracle(t *testing.T) {
	run := func(perCycle bool) (Stats, []Response) {
		cfg := testConfig(PostedReceives, 32, 8)
		cfg.ResultFIFODepth = 2 // force backpressure quickly
		cfg.PerCycle = perCycle
		eng := sim.NewEngine()
		dev := MustDevice(eng, "alpu", cfg)
		var got []Response
		eng.Spawn("driver", func(p *sim.Process) {
			dr := &driver{p: p, dev: dev}
			var entries []Command
			for i := 0; i < 16; i++ {
				entries = append(entries, Command{
					Bits: match.Bits(i), Mask: match.FullMask, Tag: uint32(i),
				})
			}
			dr.insertAll(entries)
			// Burst probes so responses pile into the depth-2 FIFO, then
			// drain slowly: the device must stall in pushResult.
			for i := 0; i < 16; i++ {
				dev.PushProbe(Probe{Bits: match.Bits(i)})
			}
			for len(got) < 16 {
				p.Sleep(200 * sim.Nanosecond) // far slower than the pipeline
				for {
					r, ok := dev.Results.Pop()
					if !ok {
						break
					}
					got = append(got, r)
				}
			}
		})
		eng.Run()
		return dev.Stats(), got
	}

	refStats, refResp := run(true)
	fastStats, fastResp := run(false)
	if refStats.ResultStalls == 0 {
		t.Fatal("scenario produced no result stalls; backpressure not exercised")
	}
	if refStats != fastStats {
		t.Errorf("stats diverge:\n per-cycle: %+v\n batched:   %+v", refStats, fastStats)
	}
	if len(refResp) != len(fastResp) {
		t.Fatalf("response counts diverge: %d vs %d", len(refResp), len(fastResp))
	}
	for i := range refResp {
		if refResp[i] != fastResp[i] {
			t.Errorf("response %d diverges: %+v vs %+v", i, refResp[i], fastResp[i])
		}
	}
}

// TestBitFlipScrubQuarantines checks the detection path: injected cell
// corruption is caught by parity before any probe can match against it,
// the cell is quarantined, and a FAULT response names the lost tag.
func TestBitFlipScrubQuarantines(t *testing.T) {
	cfg := testConfig(PostedReceives, 32, 8)
	cfg.Faults = &FaultModel{Seed: 7, BitFlipProb: 0.5}
	eng := sim.NewEngine()
	dev := MustDevice(eng, "alpu", cfg)
	inserted := map[uint32]bool{}
	faultTags := map[uint32]bool{}
	matched := map[uint32]bool{}
	eng.Spawn("driver", func(p *sim.Process) {
		dr := &driver{p: p, dev: dev}
		var entries []Command
		for i := 0; i < 24; i++ {
			entries = append(entries, Command{
				Bits: match.Bits(i), Mask: match.FullMask, Tag: uint32(i),
			})
			inserted[uint32(i)] = true
		}
		dr.insertAll(entries)
		for i := 0; i < 24; i++ {
			dev.PushProbe(Probe{Bits: match.Bits(i)})
		}
		// Every probe produces exactly one match-class response; FAULTs
		// arrive interleaved as the scrubber quarantines corrupted cells.
		answers := 0
		for answers < 24 {
			r := dr.waitResult()
			switch r.Kind {
			case RespFault:
				faultTags[r.Tag] = true
			case RespMatchSuccess:
				matched[r.Tag] = true
				answers++
			case RespMatchFailure:
				answers++
			default:
				t.Errorf("unexpected response %+v", r)
			}
		}
	})
	eng.Run()
	s := dev.Stats()
	if s.BitFlips == 0 || s.ParityFaults == 0 {
		t.Fatalf("fault injection idle: %+v", s)
	}
	if s.BitFlips != s.ParityFaults {
		t.Errorf("every flip must be quarantined exactly once: flips=%d quarantines=%d",
			s.BitFlips, s.ParityFaults)
	}
	for tag := range faultTags {
		if !inserted[tag] {
			t.Errorf("FAULT named tag %d that was never inserted", tag)
		}
		if matched[tag] {
			t.Errorf("tag %d both quarantined and matched — corrupt cell served a probe", tag)
		}
	}
	if len(faultTags) == 0 {
		t.Fatal("no FAULT responses observed")
	}
}

// TestDeviceDeathGoesDark checks the hard-failure mode: after DeathAt the
// device swallows everything and never responds, but its FIFOs keep
// draining so producers are not wedged — and the world still quiesces.
func TestDeviceDeathGoesDark(t *testing.T) {
	cfg := testConfig(PostedReceives, 32, 8)
	cfg.Faults = &FaultModel{Seed: 1, DeathAt: 2 * sim.Microsecond}
	eng := sim.NewEngine()
	dev := MustDevice(eng, "alpu", cfg)
	var before, after int
	eng.Spawn("driver", func(p *sim.Process) {
		dr := &driver{p: p, dev: dev}
		dr.insertAll([]Command{{Bits: 1, Mask: match.FullMask, Tag: 1}})
		dev.PushProbe(Probe{Bits: 1})
		if r := dr.waitResult(); r.Kind == RespMatchSuccess {
			before++
		}
		p.Sleep(3 * sim.Microsecond) // cross the death instant
		if !dev.Dead() {
			t.Error("device not dead after DeathAt")
		}
		for i := 0; i < 8; i++ {
			dev.PushProbe(Probe{Bits: 1})
			dev.PushCommand(Command{Op: OpStartInsert})
		}
		// A live device would answer within a handful of cycles; give it
		// generously longer, using a timed wait so the test cannot hang.
		if p.WaitCondUntil(dev.Results.NotEmpty,
			func() bool { return dev.Results.Len() > 0 }, 10*sim.Microsecond) {
			after++
		}
	})
	eng.Run()
	if before != 1 {
		t.Fatalf("pre-death match did not complete: %d", before)
	}
	if after != 0 {
		t.Fatal("dead device produced a response")
	}
	if dev.Stats().DeadDiscards == 0 {
		t.Fatal("dead device did not swallow queued work")
	}
}

// TestFaultDeterminism: the same seed yields the same fault schedule and
// the same final stats, run to run.
func TestFaultDeterminism(t *testing.T) {
	run := func() Stats {
		cfg := testConfig(PostedReceives, 32, 8)
		cfg.Faults = &FaultModel{Seed: 99, BitFlipProb: 0.3, ResultDropProb: 0.1, StuckProb: 0.2}
		eng := sim.NewEngine()
		dev := MustDevice(eng, "alpu", cfg)
		eng.Spawn("driver", func(p *sim.Process) {
			dr := &driver{p: p, dev: dev}
			var entries []Command
			for i := 0; i < 16; i++ {
				entries = append(entries, Command{
					Bits: match.Bits(i), Mask: match.FullMask, Tag: uint32(i),
				})
			}
			dr.insertAll(entries)
			for i := 0; i < 16; i++ {
				dev.PushProbe(Probe{Bits: match.Bits(i)})
			}
			// Drain with timeouts: dropped results mean fewer responses
			// than probes, and the exact count is the seed's business.
			for p.WaitCondUntil(dev.Results.NotEmpty,
				func() bool { return dev.Results.Len() > 0 }, 5*sim.Microsecond) {
				dev.Results.Pop()
			}
		})
		eng.Run()
		return dev.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different stats:\n a: %+v\n b: %+v", a, b)
	}
	if a.BitFlips == 0 && a.DroppedResults == 0 && a.StuckCycles == 0 {
		t.Fatalf("fault injection idle: %+v", a)
	}
}
