package alpu

// priotree.go models the §III-B priority-selection hardware at the
// bit/mux level: within a cell block, pairs of (match, tag) outputs are
// combined through a log2(blockSize)-deep tree of 2-to-1 muxes, with the
// mux select lines encoding successive bits of the "match location"; the
// same structure repeats across blocks to form the unit-level result.
// The functional Device uses the collapsed findMatch; this model exists
// to verify that the hardware encoding described in the paper computes
// the same answer, and it is what the FPGA estimator's LUT counts are
// grounded in.

import "alpusim/internal/match"

// prioIn is one leaf of the priority tree: a cell's (or block's) match
// flag, its tag output, and its already-encoded location bits.
type prioIn struct {
	match bool
	tag   uint32
	loc   int // location bits encoded so far
}

// prioLevel combines adjacent pairs with the paper's rule: "the higher
// cell in each pair selects its tag if it matched and the partner tag if
// it did not", and the pair's OR of match bits drives the next level. The
// select decision is encoded into location bit `bit` — the first level
// produces the lowest order bit of the match location, exactly as §III-B
// describes.
func prioLevel(in []prioIn, bit int) []prioIn {
	out := make([]prioIn, 0, (len(in)+1)/2)
	for i := 0; i < len(in); i += 2 {
		if i+1 >= len(in) {
			out = append(out, in[i])
			continue
		}
		lo, hi := in[i], in[i+1]
		var sel prioIn
		if hi.match {
			// Higher order = higher priority (§III-B: the highest order
			// cell, furthest right, is the highest priority).
			sel = hi
			sel.loc = hi.loc | 1<<bit
		} else {
			sel = lo
		}
		sel.match = lo.match || hi.match
		out = append(out, sel)
	}
	return out
}

// prioTree runs the full mux tree over the leaves and returns whether any
// leaf matched, the winning tag, and the encoded match location
// (the winning leaf's index).
func prioTree(in []prioIn) (matched bool, tag uint32, loc int) {
	if len(in) == 0 {
		return false, 0, 0
	}
	level := in
	for bit := 0; len(level) > 1; bit++ {
		level = prioLevel(level, bit)
	}
	root := level[0]
	if !root.match {
		return false, 0, 0
	}
	return true, root.tag, root.loc
}

// MatchLocation runs the hardware priority structure over the device's
// current cells for a probe: per-block trees feed an inter-block tree,
// exactly as the cell block (Fig. 2(c)) feeds the associative match
// engine (Fig. 2(d)). It returns whether a match exists, the winning tag,
// and the absolute cell index.
func (d *Device) MatchLocation(probe Probe) (bool, uint32, int) {
	bs := d.cfg.Geometry.BlockSize
	nb := d.cfg.Geometry.Blocks()
	pm := probeMask(d.cfg.Variant, probe)

	blocks := make([]prioIn, nb)
	for b := 0; b < nb; b++ {
		leaves := make([]prioIn, bs)
		for i := 0; i < bs; i++ {
			c := d.cells[b*bs+i]
			// The leaf match bit is the AND of the compare output and the
			// valid flag (§III-A: "invalid data cannot produce a valid
			// match").
			leaves[i] = prioIn{
				match: c.valid && match0(c, d.cfg.Variant, probe.Bits, pm),
				tag:   c.tag,
			}
		}
		m, t, loc := prioTree(leaves)
		blocks[b] = prioIn{match: m, tag: t, loc: loc}
	}
	// Inter-block prioritisation: "the cell block outputs are combined and
	// prioritized in the same manner as cell outputs" (§III-C).
	interIn := make([]prioIn, nb)
	for b := 0; b < nb; b++ {
		interIn[b] = prioIn{match: blocks[b].match, tag: blocks[b].tag, loc: b}
	}
	m, t, blockIdx := prioTreeKeepLoc(interIn)
	if !m {
		return false, 0, -1
	}
	return true, t, blockIdx*bs + blocks[blockIdx].loc
}

// prioTreeKeepLoc is prioTree for inputs that carry pre-assigned location
// values (block indices) rather than encoding them level by level.
func prioTreeKeepLoc(in []prioIn) (bool, uint32, int) {
	best := -1
	var tag uint32
	// Hardware equivalence: the mux tree selects the highest-index
	// matching input; expressed directly.
	for i := len(in) - 1; i >= 0; i-- {
		if in[i].match {
			best = i
			tag = in[i].tag
			break
		}
	}
	if best < 0 {
		return false, 0, -1
	}
	return true, tag, best
}

// match0 is the cell compare (Fig. 2(a)/(b)) for the RTL-level model.
func match0(c cell, v Variant, probeBits, pm match.Bits) bool {
	return match.Matches(c.bits, entryMask(v, c.mask), probeBits, pm)
}
