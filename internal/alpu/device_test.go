package alpu

import (
	"math/rand"
	"testing"

	"alpusim/internal/match"
	"alpusim/internal/sim"
)

// testConfig returns a small, fast device for protocol tests.
func testConfig(v Variant, cells, block int) Config {
	return Config{
		Variant:          v,
		Geometry:         Geometry{Cells: cells, BlockSize: block},
		Clock:            sim.MHz(500),
		MatchCycles:      7,
		InsertCycles:     2,
		HeaderFIFODepth:  16,
		CommandFIFODepth: 8,
		ResultFIFODepth:  16,
	}
}

// driver wraps the processor side of the Table I/II protocol for tests.
type driver struct {
	p   *sim.Process
	dev *Device
}

func (d *driver) waitResult() Response {
	d.p.WaitCond(d.dev.Results.NotEmpty, func() bool { return d.dev.Results.Len() > 0 })
	r, _ := d.dev.Results.Pop()
	return r
}

// insertAll performs the §IV-C sequence: START INSERT, drain until the
// START ACKNOWLEDGE (collecting any match results), INSERTs, STOP INSERT.
// It returns the responses drained while waiting for the ack.
func (d *driver) insertAll(entries []Command) (drained []Response, free int) {
	d.dev.PushCommand(Command{Op: OpStartInsert})
	for {
		r := d.waitResult()
		if r.Kind == RespStartAck {
			free = r.Free
			break
		}
		drained = append(drained, r)
	}
	for _, c := range entries {
		c.Op = OpInsert
		d.pushCommandWait(c)
	}
	d.pushCommandWait(Command{Op: OpStopInsert})
	return drained, free
}

// pushCommandWait respects command-FIFO backpressure, as real firmware
// tracking the FIFO depth would.
func (d *driver) pushCommandWait(c Command) {
	for !d.dev.PushCommand(c) {
		d.p.WaitCond(d.dev.Commands.NotFull, func() bool { return !d.dev.Commands.Full() })
	}
}

// run spawns a driver process, runs the simulation to quiescence.
func runDriver(t *testing.T, cfg Config, body func(dr *driver)) *Device {
	t.Helper()
	eng := sim.NewEngine()
	dev := MustDevice(eng, "alpu", cfg)
	done := false
	eng.Spawn("driver", func(p *sim.Process) {
		body(&driver{p: p, dev: dev})
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("driver did not finish (deadlock: waiting on a result that never came?)")
	}
	return dev
}

func TestDeviceMatchFailureOnEmpty(t *testing.T) {
	dev := runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		dr.dev.PushProbe(Probe{Bits: hdrBits(1, 0, 0)})
		r := dr.waitResult()
		if r.Kind != RespMatchFailure {
			t.Errorf("probe on empty device: %v, want MATCH FAILURE", r.Kind)
		}
	})
	st := dev.Stats()
	if st.Matches != 1 || st.Failures != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeviceInsertThenMatch(t *testing.T) {
	dev := runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		b, m := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 3})
		_, free := dr.insertAll([]Command{{Bits: b, Mask: m, Tag: 77}})
		if free != 32 {
			t.Errorf("START ACKNOWLEDGE free = %d, want 32", free)
		}
		dr.p.Sleep(100 * sim.Nanosecond) // let the insert land
		dr.dev.PushProbe(Probe{Bits: hdrBits(1, 2, 3)})
		r := dr.waitResult()
		if r.Kind != RespMatchSuccess || r.Tag != 77 {
			t.Errorf("got %v tag=%d, want MATCH SUCCESS tag=77", r.Kind, r.Tag)
		}
		// The match deleted the entry (MPI semantics).
		dr.dev.PushProbe(Probe{Bits: hdrBits(1, 2, 3)})
		if r := dr.waitResult(); r.Kind != RespMatchFailure {
			t.Errorf("re-probe: %v, want MATCH FAILURE after delete-on-match", r.Kind)
		}
	})
	if dev.Occupancy() != 0 {
		t.Errorf("occupancy = %d after consuming the only entry", dev.Occupancy())
	}
}

func TestDeviceMatchLatencySevenCycles(t *testing.T) {
	runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		start := dr.p.Now()
		dr.dev.PushProbe(Probe{Bits: hdrBits(1, 0, 0)})
		dr.waitResult()
		elapsed := dr.p.Now() - start
		// 7 cycles at 500 MHz = 14 ns (§V-D).
		if elapsed != 14*sim.Nanosecond {
			t.Errorf("match latency = %v, want 14ns", elapsed)
		}
	})
}

func TestDeviceInsertEveryOtherCycle(t *testing.T) {
	runDriver(t, testConfig(PostedReceives, 64, 8), func(dr *driver) {
		dr.dev.PushCommand(Command{Op: OpStartInsert})
		r := dr.waitResult()
		if r.Kind != RespStartAck {
			t.Fatalf("expected ack, got %v", r.Kind)
		}
		start := dr.p.Now()
		const n = 16
		for i := 0; i < n; i++ {
			dr.pushCommandWait(Command{Op: OpInsert, Bits: hdrBits(1, 0, int32(i)), Mask: match.FullMask, Tag: uint32(i)})
		}
		dr.pushCommandWait(Command{Op: OpStopInsert})
		for dr.dev.InsertMode() || dr.dev.Commands.Len() > 0 {
			dr.p.Sleep(2 * sim.Nanosecond)
		}
		// One insert per 2 cycles (§V-D): 16 inserts ~ 32 cycles = 64 ns
		// (allow a little slack for compaction waits at cell 0).
		elapsed := dr.p.Now() - start
		if elapsed < 32*2*sim.Nanosecond {
			t.Errorf("insert burst too fast: %v < 64ns", elapsed)
		}
		if elapsed > 48*2*sim.Nanosecond {
			t.Errorf("insert burst too slow: %v (want about 64ns)", elapsed)
		}
	})
}

func TestDeviceInsertModeHoldsFailures(t *testing.T) {
	// §IV-A: MATCH FAILURE cannot occur between START ACKNOWLEDGE and
	// STOP INSERT. A probe that fails mid-insert is retried against the
	// post-insert contents and can then succeed.
	runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		dr.dev.PushCommand(Command{Op: OpStartInsert})
		if r := dr.waitResult(); r.Kind != RespStartAck {
			t.Fatalf("want ack, got %v", r.Kind)
		}
		// Probe now: the unit is empty, so this match fails and is held.
		dr.dev.PushProbe(Probe{Bits: hdrBits(1, 2, 3)})
		dr.p.Sleep(100 * sim.Nanosecond)
		if dr.dev.Results.Len() != 0 {
			r, _ := dr.dev.Results.Pop()
			t.Fatalf("response %v emitted during insert mode", r.Kind)
		}
		// Insert the entry the held probe wants, then stop.
		b, m := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 3})
		dr.dev.PushCommand(Command{Op: OpInsert, Bits: b, Mask: m, Tag: 5})
		dr.dev.PushCommand(Command{Op: OpStopInsert})
		r := dr.waitResult()
		if r.Kind != RespMatchSuccess || r.Tag != 5 {
			t.Fatalf("held retry: %v tag=%d, want success tag=5", r.Kind, r.Tag)
		}
	})
}

func TestDeviceHeldFailureEmittedAfterStop(t *testing.T) {
	dev := runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		dr.dev.PushCommand(Command{Op: OpStartInsert})
		if r := dr.waitResult(); r.Kind != RespStartAck {
			t.Fatalf("want ack, got %v", r.Kind)
		}
		dr.dev.PushProbe(Probe{Bits: hdrBits(1, 2, 3)})
		dr.p.Sleep(100 * sim.Nanosecond)
		dr.dev.PushCommand(Command{Op: OpStopInsert})
		r := dr.waitResult()
		if r.Kind != RespMatchFailure {
			t.Fatalf("after stop: %v, want MATCH FAILURE", r.Kind)
		}
	})
	if dev.Stats().HeldRetries != 1 {
		t.Errorf("HeldRetries = %d, want 1", dev.Stats().HeldRetries)
	}
}

func TestDeviceDiscardsInvalidCommands(t *testing.T) {
	dev := runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		// INSERT and STOP INSERT outside insert mode are discarded
		// (§III-C footnote 3).
		dr.dev.PushCommand(Command{Op: OpInsert, Bits: hdrBits(1, 0, 0), Tag: 1})
		dr.dev.PushCommand(Command{Op: OpStopInsert})
		dr.p.Sleep(200 * sim.Nanosecond)
		dr.dev.PushProbe(Probe{Bits: hdrBits(1, 0, 0)})
		if r := dr.waitResult(); r.Kind != RespMatchFailure {
			t.Errorf("discarded INSERT still matched: %v", r.Kind)
		}
	})
	if dev.Stats().Discarded != 2 {
		t.Errorf("Discarded = %d, want 2", dev.Stats().Discarded)
	}
	if dev.Stats().Inserts != 0 {
		t.Errorf("Inserts = %d, want 0", dev.Stats().Inserts)
	}
}

func TestDeviceReset(t *testing.T) {
	runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		b, m := match.PackRecv(match.Recv{Context: 1, Source: 0, Tag: 0})
		dr.insertAll([]Command{{Bits: b, Mask: m, Tag: 9}})
		dr.p.Sleep(100 * sim.Nanosecond)
		dr.dev.PushCommand(Command{Op: OpReset})
		dr.p.Sleep(100 * sim.Nanosecond)
		if dr.dev.Occupancy() != 0 {
			t.Errorf("occupancy after RESET = %d", dr.dev.Occupancy())
		}
		dr.dev.PushProbe(Probe{Bits: hdrBits(1, 0, 0)})
		if r := dr.waitResult(); r.Kind != RespMatchFailure {
			t.Errorf("match after RESET: %v", r.Kind)
		}
	})
}

func TestDevicePriorityOldestWins(t *testing.T) {
	runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		wb, wm := match.PackRecv(match.Recv{Context: 1, Source: match.AnySource, Tag: 4})
		eb, em := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 4})
		dr.insertAll([]Command{
			{Bits: wb, Mask: wm, Tag: 100}, // wildcard first
			{Bits: eb, Mask: em, Tag: 200}, // exact second
		})
		dr.p.Sleep(200 * sim.Nanosecond)
		dr.dev.PushProbe(Probe{Bits: hdrBits(1, 2, 4)})
		if r := dr.waitResult(); r.Tag != 100 {
			t.Errorf("priority: tag %d matched, want first-posted 100", r.Tag)
		}
	})
}

func TestDeviceUnexpectedVariant(t *testing.T) {
	runDriver(t, testConfig(UnexpectedMessages, 32, 8), func(dr *driver) {
		// Store exact headers; probe with a wildcard receive.
		dr.insertAll([]Command{
			{Bits: hdrBits(1, 3, 9), Tag: 1},
			{Bits: hdrBits(1, 4, 9), Tag: 2},
		})
		dr.p.Sleep(200 * sim.Nanosecond)
		pb, pm := match.PackRecv(match.Recv{Context: 1, Source: match.AnySource, Tag: 9})
		dr.dev.PushProbe(Probe{Bits: pb, Mask: pm})
		if r := dr.waitResult(); r.Kind != RespMatchSuccess || r.Tag != 1 {
			t.Errorf("wildcard probe: %v tag=%d, want success tag=1", r.Kind, r.Tag)
		}
	})
}

func TestDeviceLostInsertWhenFull(t *testing.T) {
	cfg := testConfig(PostedReceives, 8, 8)
	cfg.CommandFIFODepth = 16
	dev := runDriver(t, cfg, func(dr *driver) {
		var cmds []Command
		for i := 0; i < 9; i++ { // one more than capacity
			cmds = append(cmds, Command{Bits: hdrBits(1, 0, int32(i)), Mask: match.FullMask, Tag: uint32(i)})
		}
		dr.insertAll(cmds)
		dr.p.Sleep(sim.Microsecond)
	})
	if dev.Stats().LostInserts != 1 {
		t.Errorf("LostInserts = %d, want 1", dev.Stats().LostInserts)
	}
	if dev.Occupancy() != 8 {
		t.Errorf("occupancy = %d, want 8", dev.Occupancy())
	}
}

func TestDeviceTagsOrderAfterMigration(t *testing.T) {
	dev := runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		var cmds []Command
		for i := 0; i < 10; i++ {
			cmds = append(cmds, Command{Bits: hdrBits(1, 0, int32(i)), Mask: match.FullMask, Tag: uint32(i + 1)})
		}
		dr.insertAll(cmds)
		dr.p.Sleep(sim.Microsecond) // full compaction
	})
	tags := dev.Tags()
	if len(tags) != 10 {
		t.Fatalf("Tags len = %d", len(tags))
	}
	for i, tag := range tags {
		if tag != uint32(i+1) {
			t.Fatalf("Tags = %v, want oldest-first 1..10", tags)
		}
	}
}

func TestDeviceResultFIFOBackpressure(t *testing.T) {
	cfg := testConfig(PostedReceives, 32, 8)
	cfg.ResultFIFODepth = 2
	runDriver(t, cfg, func(dr *driver) {
		// Burst of 6 probes; drain slowly. The device must stall, not drop.
		for i := 0; i < 6; i++ {
			dr.dev.PushProbe(Probe{Bits: hdrBits(1, 0, int32(i))})
		}
		got := 0
		for got < 6 {
			dr.p.Sleep(100 * sim.Nanosecond)
			for {
				if _, ok := dr.dev.Results.Pop(); !ok {
					break
				}
				got++
			}
		}
		if got != 6 {
			t.Errorf("drained %d results, want 6", got)
		}
	})
}

// TestDeviceResultStallAccounting pins the ResultStalls accounting on the
// parked backpressure path: while the result FIFO stays full and the array
// has nothing to compact, the device waits on the FIFO's not-full edge, and
// every waited device cycle must still land in ResultStalls.
func TestDeviceResultStallAccounting(t *testing.T) {
	cfg := testConfig(PostedReceives, 32, 8)
	cfg.ResultFIFODepth = 2
	const idle = 1000 * sim.Nanosecond // 500 cycles at 500 MHz
	dev := runDriver(t, cfg, func(dr *driver) {
		// Three failures on an empty (hole-free) array: two fill the FIFO,
		// the third forces the device into the parked stall.
		for i := 0; i < 3; i++ {
			dr.dev.PushProbe(Probe{Bits: hdrBits(1, 0, int32(i))})
		}
		dr.p.Sleep(idle)
		got := 0
		for got < 3 {
			if _, ok := dr.dev.Results.Pop(); ok {
				got++
				continue
			}
			dr.p.Sleep(10 * sim.Nanosecond)
		}
	})
	stalls := dev.Stats().ResultStalls
	cycles := uint64(idle / cfg.Clock.Period)
	// The stall spans the driver's idle window minus the handful of cycles
	// spent producing the first three results; demand most of the window.
	if stalls < cycles/2 || stalls > cycles+10 {
		t.Errorf("ResultStalls=%d, want roughly the %d stalled cycles", stalls, cycles)
	}
}

func TestDeviceCompactionPoliciesEquivalentSemantics(t *testing.T) {
	for _, anyBlock := range []bool{false, true} {
		cfg := testConfig(PostedReceives, 32, 8)
		cfg.CompactAnyBlock = anyBlock
		runDriver(t, cfg, func(dr *driver) {
			// Create interior holes: insert with idle gaps so entries
			// migrate apart, then verify matching and order are unaffected.
			for i := 0; i < 5; i++ {
				b := hdrBits(1, 0, int32(i))
				dr.insertAll([]Command{{Bits: b, Mask: match.FullMask, Tag: uint32(i)}})
				dr.p.Sleep(30 * sim.Nanosecond)
			}
			for i := 0; i < 5; i++ {
				dr.dev.PushProbe(Probe{Bits: hdrBits(1, 0, int32(i))})
				r := dr.waitResult()
				if r.Kind != RespMatchSuccess || r.Tag != uint32(i) {
					t.Errorf("anyBlock=%v: probe %d got %v tag=%d", anyBlock, i, r.Kind, r.Tag)
				}
			}
		})
	}
}

// The central correctness property: for random batched-insert/probe
// workloads, the cycle-level Device produces exactly the responses of the
// functional Reference.
func TestDeviceEquivalentToReference(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		rng := rand.New(rand.NewSource(int64(trial)))
		variant := PostedReceives
		if trial%2 == 1 {
			variant = UnexpectedMessages
		}
		cfg := testConfig(variant, 32, 8)
		ref := NewReference(variant, 32)
		nextTag := uint32(1)

		randomEntry := func() Command {
			if variant == PostedReceives {
				r := match.Recv{
					Context: uint16(rng.Intn(2)),
					Source:  int32(rng.Intn(3)),
					Tag:     int32(rng.Intn(3)),
				}
				if rng.Intn(4) == 0 {
					r.Source = match.AnySource
				}
				if rng.Intn(6) == 0 {
					r.Tag = match.AnyTag
				}
				b, m := match.PackRecv(r)
				return Command{Bits: b, Mask: m}
			}
			return Command{Bits: hdrBits(uint16(rng.Intn(2)), int32(rng.Intn(3)), int32(rng.Intn(3))), Mask: match.FullMask}
		}
		randomProbe := func() Probe {
			if variant == PostedReceives {
				return Probe{Bits: hdrBits(uint16(rng.Intn(2)), int32(rng.Intn(3)), int32(rng.Intn(3)))}
			}
			r := match.Recv{
				Context: uint16(rng.Intn(2)),
				Source:  int32(rng.Intn(3)),
				Tag:     int32(rng.Intn(3)),
			}
			if rng.Intn(4) == 0 {
				r.Source = match.AnySource
			}
			b, m := match.PackRecv(r)
			return Probe{Bits: b, Mask: m}
		}

		runDriver(t, cfg, func(dr *driver) {
			for phase := 0; phase < 8; phase++ {
				if rng.Intn(2) == 0 {
					// Insert phase: batch up to the free space.
					n := rng.Intn(6) + 1
					if free := ref.Free(); n > free {
						n = free
					}
					var cmds []Command
					for i := 0; i < n; i++ {
						c := randomEntry()
						c.Tag = nextTag
						nextTag++
						cmds = append(cmds, c)
					}
					drained, free := dr.insertAll(cmds)
					if len(drained) != 0 {
						t.Fatalf("trial %d: unexpected responses before ack", trial)
					}
					if free != ref.Free() {
						t.Fatalf("trial %d: ack free=%d, ref free=%d", trial, free, ref.Free())
					}
					for _, c := range cmds {
						if !ref.Insert(c.Bits, c.Mask, c.Tag) {
							t.Fatalf("trial %d: reference rejected insert", trial)
						}
					}
					dr.p.Sleep(2 * sim.Microsecond) // quiesce
				} else {
					// Probe phase: sequential probes.
					n := rng.Intn(6) + 1
					for i := 0; i < n; i++ {
						probe := randomProbe()
						dr.dev.PushProbe(probe)
						got := dr.waitResult()
						wantTag, wantOK := ref.Match(probe)
						if wantOK {
							if got.Kind != RespMatchSuccess || got.Tag != wantTag {
								t.Fatalf("trial %d: device %v tag=%d, reference success tag=%d",
									trial, got.Kind, got.Tag, wantTag)
							}
						} else if got.Kind != RespMatchFailure {
							t.Fatalf("trial %d: device %v, reference failure", trial, got.Kind)
						}
					}
				}
			}
		})
	}
}
