package alpu

import (
	"testing"

	"alpusim/internal/match"
	"alpusim/internal/sim"
)

// The paper's footnote 1: "The prototype design only supports hardware
// acceleration for a single process, but extending it to support a
// limited number of processes is straightforward." The extension needs no
// new cell hardware — a process id rides in (otherwise unused) high match
// bits, so entries and probes of different processes can share one unit
// without ever cross-matching. This test demonstrates that sharing.
func TestMultiProcessPartitioning(t *testing.T) {
	const pidShift = 48 // above the 42-bit MPI triple
	withPID := func(pid uint64, b match.Bits) match.Bits {
		return b | match.Bits(pid<<pidShift)
	}
	pidMask := match.Bits(uint64(0xFFFF) << pidShift)

	runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		// Two processes post receives with identical MPI criteria.
		var cmds []Command
		for pid := uint64(1); pid <= 2; pid++ {
			b, m := match.PackRecv(match.Recv{Context: 1, Source: 3, Tag: 7})
			cmds = append(cmds, Command{
				Bits: withPID(pid, b),
				Mask: m | pidMask, // the PID field always compares
				Tag:  uint32(100 * pid),
			})
		}
		dr.insertAll(cmds)
		dr.p.Sleep(200 * sim.Nanosecond)

		// A header for process 2 must match only process 2's entry, even
		// though process 1's identical (and older) entry sits first.
		hdr := match.Pack(match.Header{Context: 1, Source: 3, Tag: 7})
		dr.dev.PushProbe(Probe{Bits: withPID(2, hdr)})
		r := dr.waitResult()
		if r.Kind != RespMatchSuccess || r.Tag != 200 {
			t.Fatalf("process-2 probe: %v tag=%d, want success tag=200", r.Kind, r.Tag)
		}

		// Process 3 (nothing posted) must miss entirely.
		dr.dev.PushProbe(Probe{Bits: withPID(3, hdr)})
		if r := dr.waitResult(); r.Kind != RespMatchFailure {
			t.Fatalf("process-3 probe: %v, want failure", r.Kind)
		}

		// Process 1's entry is still there.
		dr.dev.PushProbe(Probe{Bits: withPID(1, hdr)})
		if r := dr.waitResult(); r.Kind != RespMatchSuccess || r.Tag != 100 {
			t.Fatalf("process-1 probe: %v tag=%d, want success tag=100", r.Kind, r.Tag)
		}
	})
}

// Wildcards still work within a process partition: an ANY_SOURCE receive
// for process 1 must not absorb process 2's traffic.
func TestMultiProcessWildcardIsolation(t *testing.T) {
	const pidShift = 48
	withPID := func(pid uint64, b match.Bits) match.Bits {
		return b | match.Bits(pid<<pidShift)
	}
	pidMask := match.Bits(uint64(0xFFFF) << pidShift)

	runDriver(t, testConfig(PostedReceives, 32, 8), func(dr *driver) {
		b, m := match.PackRecv(match.Recv{Context: 1, Source: match.AnySource, Tag: 9})
		dr.insertAll([]Command{{Bits: withPID(1, b), Mask: m | pidMask, Tag: 11}})
		dr.p.Sleep(200 * sim.Nanosecond)

		hdr := match.Pack(match.Header{Context: 1, Source: 5, Tag: 9})
		dr.dev.PushProbe(Probe{Bits: withPID(2, hdr)})
		if r := dr.waitResult(); r.Kind != RespMatchFailure {
			t.Fatalf("cross-process wildcard absorption: %v", r.Kind)
		}
		dr.dev.PushProbe(Probe{Bits: withPID(1, hdr)})
		if r := dr.waitResult(); r.Kind != RespMatchSuccess || r.Tag != 11 {
			t.Fatalf("in-process wildcard: %v tag=%d", r.Kind, r.Tag)
		}
	})
}
