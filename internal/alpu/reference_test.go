package alpu

import (
	"testing"

	"alpusim/internal/match"
)

func hdrBits(ctx uint16, src, tag int32) match.Bits {
	return match.Pack(match.Header{Context: ctx, Source: src, Tag: tag})
}

func TestReferenceFirstPostedWins(t *testing.T) {
	r := NewReference(PostedReceives, 8)
	b, m := match.PackRecv(match.Recv{Context: 1, Source: match.AnySource, Tag: 5})
	r.Insert(b, m, 100) // wildcard posted first
	b2, m2 := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 5})
	r.Insert(b2, m2, 200) // exact posted second

	tag, ok := r.Match(Probe{Bits: hdrBits(1, 2, 5)})
	if !ok || tag != 100 {
		t.Fatalf("Match = %d,%v; want 100 (first posted), not the more exact 200", tag, ok)
	}
	// The wildcard was consumed; now the exact one matches.
	tag, ok = r.Match(Probe{Bits: hdrBits(1, 2, 5)})
	if !ok || tag != 200 {
		t.Fatalf("second Match = %d,%v; want 200", tag, ok)
	}
	if _, ok := r.Match(Probe{Bits: hdrBits(1, 2, 5)}); ok {
		t.Fatal("third Match succeeded on empty unit")
	}
}

func TestReferenceUnexpectedVariantMaskFromProbe(t *testing.T) {
	r := NewReference(UnexpectedMessages, 8)
	r.Insert(hdrBits(1, 3, 9), 0, 1) // stored mask ignored for this variant
	r.Insert(hdrBits(1, 4, 9), 0, 2)

	pb, pm := match.PackRecv(match.Recv{Context: 1, Source: match.AnySource, Tag: 9})
	tag, ok := r.Match(Probe{Bits: pb, Mask: pm})
	if !ok || tag != 1 {
		t.Fatalf("wildcard probe matched %d,%v; want oldest (1)", tag, ok)
	}
	// Exact probe for the remaining entry.
	eb, em := match.PackRecv(match.Recv{Context: 1, Source: 4, Tag: 9})
	tag, ok = r.Match(Probe{Bits: eb, Mask: em})
	if !ok || tag != 2 {
		t.Fatalf("exact probe matched %d,%v; want 2", tag, ok)
	}
}

func TestReferenceCapacity(t *testing.T) {
	r := NewReference(PostedReceives, 2)
	if r.Capacity() != 2 || r.Free() != 2 {
		t.Fatal("fresh unit capacity wrong")
	}
	if !r.Insert(hdrBits(1, 0, 0), match.FullMask, 1) {
		t.Fatal("insert 1 failed")
	}
	if !r.Insert(hdrBits(1, 0, 1), match.FullMask, 2) {
		t.Fatal("insert 2 failed")
	}
	if r.Insert(hdrBits(1, 0, 2), match.FullMask, 3) {
		t.Fatal("insert into full unit succeeded")
	}
	if r.Free() != 0 || r.Occupancy() != 2 {
		t.Fatalf("Free=%d Occ=%d", r.Free(), r.Occupancy())
	}
}

func TestReferenceReset(t *testing.T) {
	r := NewReference(PostedReceives, 4)
	r.Insert(hdrBits(1, 0, 0), match.FullMask, 1)
	r.Reset()
	if r.Occupancy() != 0 {
		t.Fatal("Reset left entries")
	}
	if _, ok := r.Peek(Probe{Bits: hdrBits(1, 0, 0)}); ok {
		t.Fatal("Peek matched after Reset")
	}
}

func TestReferencePeekDoesNotConsume(t *testing.T) {
	r := NewReference(PostedReceives, 4)
	r.Insert(hdrBits(1, 0, 7), match.FullMask, 42)
	for i := 0; i < 3; i++ {
		tag, ok := r.Peek(Probe{Bits: hdrBits(1, 0, 7)})
		if !ok || tag != 42 {
			t.Fatalf("Peek %d = %d,%v", i, tag, ok)
		}
	}
	if r.Occupancy() != 1 {
		t.Fatal("Peek consumed the entry")
	}
}

func TestReferenceTagsOrder(t *testing.T) {
	r := NewReference(PostedReceives, 4)
	for i := uint32(1); i <= 3; i++ {
		r.Insert(hdrBits(1, 0, int32(i)), match.FullMask, i)
	}
	tags := r.Tags()
	if len(tags) != 3 || tags[0] != 1 || tags[1] != 2 || tags[2] != 3 {
		t.Fatalf("Tags = %v, want [1 2 3] oldest-first", tags)
	}
}

func TestGeometryValidate(t *testing.T) {
	good := []Geometry{{128, 8}, {256, 32}, {64, 16}, {8, 8}}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", g, err)
		}
	}
	bad := []Geometry{{0, 8}, {128, 0}, {128, 12}, {100, 8}, {-8, 8}}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted bad geometry", g)
		}
	}
}

func TestGeometryPipelineCycles(t *testing.T) {
	// The six published build points (Tables IV/V).
	cases := []struct {
		g    Geometry
		want int
	}{
		{Geometry{256, 8}, 7},
		{Geometry{256, 16}, 7},
		{Geometry{256, 32}, 6},
		{Geometry{128, 8}, 7},
		{Geometry{128, 16}, 6},
		{Geometry{128, 32}, 6},
	}
	for _, c := range cases {
		if got := c.g.PipelineCycles(); got != c.want {
			t.Errorf("PipelineCycles(%+v) = %d, want %d", c.g, got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if PostedReceives.String() != "posted-receives" ||
		UnexpectedMessages.String() != "unexpected-messages" {
		t.Error("Variant.String wrong")
	}
	for op, want := range map[Opcode]string{
		OpStartInsert: "START INSERT",
		OpInsert:      "INSERT",
		OpStopInsert:  "STOP INSERT",
		OpReset:       "RESET",
	} {
		if op.String() != want {
			t.Errorf("%v.String() = %q", int(op), op.String())
		}
	}
	for k, want := range map[RespKind]string{
		RespStartAck:     "START ACKNOWLEDGE",
		RespMatchSuccess: "MATCH SUCCESS",
		RespMatchFailure: "MATCH FAILURE",
	} {
		if k.String() != want {
			t.Errorf("RespKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Opcode(99).String() == "" || RespKind(99).String() == "" {
		t.Error("unknown enum String empty")
	}
}
