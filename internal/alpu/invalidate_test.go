package alpu

import (
	"testing"

	"alpusim/internal/match"
)

// INVALIDATE clears exactly the tagged cell: older and newer neighbours
// keep their priority order, probes that would have hit the cleared entry
// fall through to the next candidate, and an absent tag is a silent no-op.
func TestDeviceInvalidate(t *testing.T) {
	cfg := testConfig(PostedReceives, 16, 8)
	probe := func(tag int32) Probe {
		return Probe{Bits: match.Pack(match.Header{Context: 1, Source: 2, Tag: tag})}
	}
	entry := func(tag int32, devTag uint32) Command {
		b, m := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: tag})
		return Command{Bits: b, Mask: m, Tag: devTag}
	}
	dev := runDriver(t, cfg, func(dr *driver) {
		dr.insertAll([]Command{entry(10, 100), entry(11, 101), entry(12, 102)})
		dr.pushCommandWait(Command{Op: OpInvalidate, Tag: 101})
		// The invalidated entry must not match; its neighbours must.
		dev := dr.dev
		dev.PushProbe(probe(11))
		if r := dr.waitResult(); r.Kind != RespMatchFailure {
			t.Errorf("probe for invalidated entry: got %v, want MATCH FAILURE", r.Kind)
		}
		dev.PushProbe(probe(10))
		if r := dr.waitResult(); r.Kind != RespMatchSuccess || r.Tag != 100 {
			t.Errorf("older neighbour: got %v tag %d", r.Kind, r.Tag)
		}
		dev.PushProbe(probe(12))
		if r := dr.waitResult(); r.Kind != RespMatchSuccess || r.Tag != 102 {
			t.Errorf("newer neighbour: got %v tag %d", r.Kind, r.Tag)
		}
		// Unknown tag: silent no-op, nothing discarded, no response. A
		// subsequent probe must still behave (FIFO not wedged).
		dr.pushCommandWait(Command{Op: OpInvalidate, Tag: 999})
		dev.PushProbe(probe(10))
		if r := dr.waitResult(); r.Kind != RespMatchFailure {
			t.Errorf("after no-op invalidate: got %v, want MATCH FAILURE (entry consumed)", r.Kind)
		}
	})
	if dev.stats.Invalidates != 1 {
		t.Errorf("Invalidates = %d, want 1", dev.stats.Invalidates)
	}
	if dev.stats.Discarded != 0 {
		t.Errorf("Discarded = %d, want 0", dev.stats.Discarded)
	}
	if dev.Occupancy() != 0 {
		t.Errorf("Occupancy = %d, want 0 (matches consumed the rest)", dev.Occupancy())
	}
}
