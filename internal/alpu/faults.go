package alpu

import (
	"fmt"

	"alpusim/internal/sim"
)

// FaultModel describes seeded, deterministic device-level fault injection
// for an ALPU instance. Probabilities are per-opportunity: BitFlipProb per
// cell scrub/inspection, ResultDropProb per result-FIFO push, StuckProb per
// compaction step. DeathAt, when non-zero, hard-fails the whole device at
// that simulated time: every FIFO interaction after the instant is silently
// discarded, modelling a unit that stopped responding on the bus.
//
// All randomness comes from a private splitmix64 stream derived from Seed,
// so a fixed seed reproduces the exact fault schedule regardless of host
// parallelism.
type FaultModel struct {
	Seed           uint64
	BitFlipProb    float64  // transient cell bit-flip per scrub opportunity
	ResultDropProb float64  // result-FIFO entry silently lost per push
	StuckProb      float64  // compaction step stalls for 1..8 dead cycles
	DeathAt        sim.Time // 0 = never; device goes dark at this instant
}

// Active reports whether any fault class is enabled.
func (f *FaultModel) Active() bool {
	if f == nil {
		return false
	}
	return f.BitFlipProb > 0 || f.ResultDropProb > 0 || f.StuckProb > 0 || f.DeathAt > 0
}

// String renders the model for logs and flag echo.
func (f *FaultModel) String() string {
	if !f.Active() {
		return "none"
	}
	return fmt.Sprintf("bitflip=%g resultdrop=%g stuck=%g death@%v seed=%d",
		f.BitFlipProb, f.ResultDropProb, f.StuckProb, f.DeathAt, f.Seed)
}

// devRand is a splitmix64 PRNG (same generator the network fault layer
// uses; duplicated here because that one is unexported and the packages
// must not depend on each other). One stream per device keeps fault draws
// independent of everything else in the world — a precondition for
// byte-identical output at any partition count.
type devRand struct{ state uint64 }

func newDevRand(seed, stream uint64) *devRand {
	return &devRand{state: seed*0x9e3779b97f4a7c15 + stream*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb}
}

func (r *devRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance returns true with probability p.
func (r *devRand) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.next()>>11)/(1<<53) < p
}

// intn returns a value in [0, n).
func (r *devRand) intn(n int) int {
	return int(r.next() % uint64(n))
}
