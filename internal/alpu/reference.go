package alpu

import "alpusim/internal/match"

// Reference is the functional oracle for ALPU behaviour: an ordered,
// bounded list with first-posted-wins matching and delete-on-match. It has
// no notion of time, holes, or blocks; the cycle-level Device must be
// observationally equivalent to it (see the property tests).
type Reference struct {
	variant Variant
	cap     int
	entries []refEntry // index 0 = oldest (highest priority)
}

type refEntry struct {
	bits match.Bits
	mask match.Bits
	tag  uint32
}

// NewReference returns an empty reference unit with the given capacity.
func NewReference(v Variant, capacity int) *Reference {
	return &Reference{variant: v, cap: capacity}
}

// Capacity returns the total number of cells.
func (r *Reference) Capacity() int { return r.cap }

// Occupancy returns the number of valid entries.
func (r *Reference) Occupancy() int { return len(r.entries) }

// Free returns the number of empty cells.
func (r *Reference) Free() int { return r.cap - len(r.entries) }

// Reset clears all entries (the RESET command).
func (r *Reference) Reset() { r.entries = r.entries[:0] }

// Insert appends an entry at the lowest priority position. It reports
// false when the unit is full.
func (r *Reference) Insert(bits, mask match.Bits, tag uint32) bool {
	if len(r.entries) >= r.cap {
		return false
	}
	r.entries = append(r.entries, refEntry{bits: bits, mask: mask, tag: tag})
	return true
}

// Match finds the oldest entry matching the probe. On success it deletes
// the entry (MPI semantics, §III-B) and returns its tag.
func (r *Reference) Match(p Probe) (tag uint32, ok bool) {
	pm := probeMask(r.variant, p)
	for i, e := range r.entries {
		if match.Matches(e.bits, entryMask(r.variant, e.mask), p.Bits, pm) {
			tag = e.tag
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return tag, true
		}
	}
	return 0, false
}

// Peek is Match without the delete, for tests.
func (r *Reference) Peek(p Probe) (tag uint32, ok bool) {
	pm := probeMask(r.variant, p)
	for _, e := range r.entries {
		if match.Matches(e.bits, entryMask(r.variant, e.mask), p.Bits, pm) {
			return e.tag, true
		}
	}
	return 0, false
}

// Tags returns the stored tags from oldest to newest, for tests.
func (r *Reference) Tags() []uint32 {
	out := make([]uint32, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.tag
	}
	return out
}
