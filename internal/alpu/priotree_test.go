package alpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"alpusim/internal/match"
	"alpusim/internal/sim"
)

// fillDevice writes cells directly (white-box) for priority-tree tests.
func fillDevice(cells, block int, occupied map[int]uint32) *Device {
	eng := sim.NewEngine()
	d := MustDevice(eng, "t", Config{
		Variant:  PostedReceives,
		Geometry: Geometry{Cells: cells, BlockSize: block},
		Clock:    sim.MHz(500),
	})
	b, m := match.PackRecv(match.Recv{Context: 1, Source: 2, Tag: 3})
	for idx, tag := range occupied {
		d.cells[idx] = cell{valid: true, bits: b, mask: m, tag: tag}
	}
	d.rebuildBits()
	return d
}

func probeFor() Probe {
	return Probe{Bits: match.Pack(match.Header{Context: 1, Source: 2, Tag: 3})}
}

func TestPrioTreeSingleMatch(t *testing.T) {
	for _, idx := range []int{0, 1, 7, 8, 15, 16, 31} {
		d := fillDevice(32, 8, map[int]uint32{idx: 42})
		ok, tag, loc := d.MatchLocation(probeFor())
		if !ok || tag != 42 || loc != idx {
			t.Errorf("single match at %d: ok=%v tag=%d loc=%d", idx, ok, tag, loc)
		}
	}
}

func TestPrioTreeHighestIndexWins(t *testing.T) {
	d := fillDevice(32, 8, map[int]uint32{3: 1, 17: 2, 30: 3})
	ok, tag, loc := d.MatchLocation(probeFor())
	if !ok || tag != 3 || loc != 30 {
		t.Fatalf("priority: ok=%v tag=%d loc=%d, want tag 3 at 30", ok, tag, loc)
	}
}

func TestPrioTreeNoMatch(t *testing.T) {
	d := fillDevice(32, 8, nil)
	if ok, _, _ := d.MatchLocation(probeFor()); ok {
		t.Fatal("empty device matched")
	}
	// Valid cells that don't compare-match must not match either.
	d = fillDevice(32, 8, map[int]uint32{5: 1})
	wrong := Probe{Bits: match.Pack(match.Header{Context: 9, Source: 9, Tag: 9})}
	if ok, _, _ := d.MatchLocation(wrong); ok {
		t.Fatal("non-matching probe matched")
	}
}

// Property: the RTL-level mux tree computes exactly what the collapsed
// findMatch computes, for every geometry and occupancy pattern.
func TestPrioTreeEquivalentToFindMatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		geoms := []Geometry{{16, 8}, {32, 8}, {64, 16}, {128, 32}, {8, 8}}
		g := geoms[rng.Intn(len(geoms))]
		occ := map[int]uint32{}
		for i := 0; i < g.Cells; i++ {
			if rng.Intn(3) == 0 {
				occ[i] = uint32(i + 1)
			}
		}
		d := fillDevice(g.Cells, g.BlockSize, occ)
		// Randomise which cells actually compare-match by flipping some
		// cells' stored bits.
		other := match.Pack(match.Header{Context: 2, Source: 2, Tag: 2})
		for i := range d.cells {
			if d.cells[i].valid && rng.Intn(2) == 0 {
				d.cells[i].bits = other
			}
		}
		p := probeFor()
		wantIdx := d.findMatch(p)
		ok, tag, loc := d.MatchLocation(p)
		if wantIdx < 0 {
			return !ok
		}
		return ok && loc == wantIdx && tag == d.cells[wantIdx].tag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The location encoding is exactly the §III-B bit pattern: level k of the
// mux tree contributes bit k.
func TestPrioTreeLocationEncoding(t *testing.T) {
	leaves := make([]prioIn, 16)
	for i := range leaves {
		leaves[i] = prioIn{match: false, tag: uint32(i)}
	}
	for idx := 0; idx < 16; idx++ {
		ls := make([]prioIn, 16)
		copy(ls, leaves)
		ls[idx].match = true
		ok, tag, loc := prioTree(ls)
		if !ok || int(tag) != idx || loc != idx {
			t.Errorf("leaf %d: ok=%v tag=%d loc=%d", idx, ok, tag, loc)
		}
	}
}

func TestPrioTreeOddWidth(t *testing.T) {
	// Non-power-of-two inputs (the inter-block stage with an odd block
	// count) still resolve.
	ls := make([]prioIn, 5)
	ls[2].match = true
	ls[2].tag = 7
	ok, tag, _ := prioTree(ls)
	if !ok || tag != 7 {
		t.Fatalf("odd-width tree: ok=%v tag=%d", ok, tag)
	}
}
