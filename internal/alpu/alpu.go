// Package alpu implements the paper's contribution: the Associative List
// Processing Unit (§III), a TCAM-like matching array with the list
// semantics MPI needs — strict first-posted priority, delete-on-match with
// upward shift, and a bulk-insert mode — plus the command/response
// protocol of Tables I and II and the controlling state machine of Fig. 3.
//
// Two models are provided:
//
//   - Reference: a purely functional model of the architecture's visible
//     behaviour, used as the oracle in property tests;
//   - Device: a cycle-level model with the cell/block structure, the
//     pipeline timing measured on the FPGA prototype (§V-D), the
//     decoupling FIFOs of Fig. 1, and block-granular hole compaction
//     (§III-B), integrated into the discrete event simulation.
package alpu

import (
	"fmt"

	"alpusim/internal/match"
)

// Variant selects which of the two cell types (§III-A) a unit is built
// from.
type Variant int

const (
	// PostedReceives cells store a mask per entry (receives may hold
	// wildcards); probes are exact incoming headers. Fig. 2(a).
	PostedReceives Variant = iota
	// UnexpectedMessages cells store exact headers; the mask arrives with
	// the probe (the receive being posted). Fig. 2(b).
	UnexpectedMessages
)

func (v Variant) String() string {
	if v == PostedReceives {
		return "posted-receives"
	}
	return "unexpected-messages"
}

// Geometry describes an ALPU build point (§VI-A explored 128/256 cells
// with block sizes 8/16/32).
type Geometry struct {
	Cells     int
	BlockSize int
}

// Validate reports a configuration error, mirroring the prototype's
// constraint that the block size is a power of two (§III-B) dividing the
// cell count.
func (g Geometry) Validate() error {
	if g.Cells <= 0 || g.BlockSize <= 0 {
		return fmt.Errorf("alpu: non-positive geometry %+v", g)
	}
	if g.BlockSize&(g.BlockSize-1) != 0 {
		return fmt.Errorf("alpu: block size %d not a power of 2", g.BlockSize)
	}
	if g.Cells%g.BlockSize != 0 {
		return fmt.Errorf("alpu: %d cells not divisible by block size %d", g.Cells, g.BlockSize)
	}
	return nil
}

// Blocks returns the number of cell blocks.
func (g Geometry) Blocks() int { return g.Cells / g.BlockSize }

// PipelineCycles returns the match pipeline latency of this geometry per
// the prototype measurements (§V-D, Tables IV/V): stage 4 (inter-block
// priority muxing) takes a second cycle when the inter-block tree is
// large; the published build points show 7 cycles for more than 8 blocks
// and 6 otherwise.
func (g Geometry) PipelineCycles() int {
	if g.Blocks() > 8 {
		return 7
	}
	return 6
}

// Opcode identifies an ALPU command (Table I).
type Opcode int

const (
	// OpStartInsert instructs the ALPU to enter insert mode.
	OpStartInsert Opcode = iota
	// OpInsert inserts a new entry (valid only in insert mode).
	OpInsert
	// OpStopInsert instructs the ALPU to exit insert mode.
	OpStopInsert
	// OpReset clears all entries.
	OpReset
	// OpInvalidate clears the entry carrying the given tag, if present,
	// without shifting its neighbours (the cell is scrubbed in place and
	// the hole compacts lazily like a quarantined cell). The fabric uses
	// it to retire the extra copies of a wildcard receive broadcast to
	// every shard once one shard has matched it. No response is emitted;
	// an absent tag is a no-op, since the copy may already have been
	// consumed by a match racing ahead of the invalidate in the FIFO.
	// Unlike RESET, it is honoured in insert mode as well, so it is never
	// discarded: once pushed, the cell is guaranteed cleared before any
	// subsequently pushed probe is matched.
	OpInvalidate
)

func (o Opcode) String() string {
	switch o {
	case OpStartInsert:
		return "START INSERT"
	case OpInsert:
		return "INSERT"
	case OpStopInsert:
		return "STOP INSERT"
	case OpReset:
		return "RESET"
	case OpInvalidate:
		return "INVALIDATE"
	default:
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
}

// Command is one entry of the command FIFO (Table I). Only INSERT carries
// operands: the match bits, the mask bits (posted-receive variant only),
// and the software-defined tag (§III-A: typically a pointer into the
// processor's copy of the list).
type Command struct {
	Op   Opcode
	Bits match.Bits
	Mask match.Bits
	Tag  uint32
}

// RespKind identifies an ALPU response (Table II).
type RespKind int

const (
	// RespStartAck acknowledges insert-mode entry and reports free slots.
	RespStartAck RespKind = iota
	// RespMatchSuccess reports a match with the stored entry's tag.
	RespMatchSuccess
	// RespMatchFailure reports that a probe matched nothing. Never emitted
	// between a START ACKNOWLEDGE and a STOP INSERT (§IV-A).
	RespMatchFailure
	// RespFault reports that the scrubber quarantined a parity-bad cell.
	// Tag carries the tag of the lost entry so the firmware can repair the
	// device state from its host-side shadow copy of the list.
	RespFault
)

func (k RespKind) String() string {
	switch k {
	case RespStartAck:
		return "START ACKNOWLEDGE"
	case RespMatchSuccess:
		return "MATCH SUCCESS"
	case RespMatchFailure:
		return "MATCH FAILURE"
	case RespFault:
		return "FAULT"
	default:
		return fmt.Sprintf("RespKind(%d)", int(k))
	}
}

// Response is one entry of the result FIFO (Table II).
type Response struct {
	Kind RespKind
	Tag  uint32 // MATCH SUCCESS: tag from the matched entry
	Free int    // START ACKNOWLEDGE: number of free entries
	// Probe echoes the probe a match response answers. Real hardware
	// relies on FIFO ordering for this correlation; the model carries it
	// explicitly so the firmware and the tests can assert against it.
	Probe Probe
}

// Probe is one lookup: an incoming header (posted-receive variant, mask
// ignored and treated as full) or a receive being posted (unexpected
// variant, mask used).
type Probe struct {
	Bits match.Bits
	Mask match.Bits
	Meta any // model-level correlation handle, not part of the hardware
}

// probeMask returns the effective compare mask for a probe under variant
// v. The posted-receive cell (Fig. 2(a)) has no probe-side mask at all —
// every stored mask bit participates, which is what lets wider-than-MPI
// fields (Portals match bits, the footnote-1 process id) ride in the same
// cells.
func probeMask(v Variant, p Probe) match.Bits {
	if v == PostedReceives {
		return ^match.Bits(0)
	}
	return p.Mask
}

// entryMask returns the effective stored-entry mask under variant v.
func entryMask(v Variant, stored match.Bits) match.Bits {
	if v == PostedReceives {
		return stored
	}
	return match.FullMask
}
