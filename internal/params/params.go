// Package params collects every model parameter used by the simulation in
// one place, with provenance: values come either from the paper's Table III,
// from an anchor number stated in the paper's text, or from a calibration
// fit (marked "fit") chosen so the simulated anchors land on the published
// ones. See DESIGN.md §2 and EXPERIMENTS.md for the calibration record.
package params

import "alpusim/internal/sim"

// Match field widths. The paper sets the total match width to 42 bits,
// "adequate to support an MPI implementation supporting the full
// specification on a 32K node system" (§VI-A): 15 source-rank bits (32K
// ranks), 11 context bits, and 16 tag bits.
const (
	SourceBits   = 15
	ContextBits  = 11
	TagFieldBits = 16
	MatchWidth   = SourceBits + ContextBits + TagFieldBits // 42, per §VI-A
	ALPUTagBits  = 16                                      // tag width used in the prototypes (§VI-A)
	// The simulated MPI uses the ALPU tag as a 20-bit pointer into NIC RAM
	// (§III-A mentions a 20-bit pointer variant); 16 bits is the prototyped
	// width and what Tables IV/V report.
)

// CPU describes a processor model per the paper's Table III.
type CPU struct {
	Name       string
	Clock      sim.Clock
	IssueWidth int // instructions per cycle when not memory bound
	L1Size     int // bytes
	L1Assoc    int
	L1Line     int // bytes
	L2Size     int // bytes; 0 = none
	L2Assoc    int
	MemLatency int64 // cycles to main memory (Table III)
	L2Latency  int64 // cycles to hit in L2 (fit; host only)
	// L1RandomRepl selects pseudo-random replacement for the L1 (embedded
	// parts of the era; gives the gradual over-capacity degradation behind
	// the Fig. 5/6 cache knees) instead of exact LRU.
	L1RandomRepl bool
}

// HostCPU is the Opteron-class main processor (Table III).
func HostCPU() CPU {
	return CPU{
		Name:       "host",
		Clock:      sim.MHz(2000), // 2 GHz
		IssueWidth: 4,             // commit width 4
		L1Size:     64 << 10,      // 64K
		L1Assoc:    2,
		L1Line:     64,
		L2Size:     512 << 10, // 512K
		L2Assoc:    8,         // fit: Table III gives size only
		L2Latency:  12,        // fit: typical Opteron-era L2
		MemLatency: 88,        // 85-90 cycles (Table III midpoint)
	}
}

// NICCPU is the PowerPC-440-class embedded NIC processor (Table III).
func NICCPU() CPU {
	return CPU{
		Name:       "nic",
		Clock:      sim.MHz(500),
		IssueWidth: 2,        // dual issue for integers (§VI-B)
		L1Size:     32 << 10, // 32K
		L1Assoc:    64,       // 32K 64-way (Table III)
		L1Line:     32,       // PPC440 line size
		L2Size:     0,        // none
		MemLatency: 30,       // 30-32 cycles (Table III)
		// Embedded-class pseudo-random replacement (see CPU.L1RandomRepl).
		L1RandomRepl: true,
	}
}

// ElanNIC is a Quadrics-Elan4-class comparison profile for the §VI-B
// statement that "for a Quadrics Elan4 NIC, each entry traversed adds
// 150 ns of latency": a slower, single-issue NIC thread whose queue
// traversal effectively runs out of local SDRAM. Clock and memory
// latency are fit to land the published 150 ns/entry; the 10x per-entry
// advantage of the Table III NIC over it is the paper's own comparison.
func ElanNIC() CPU {
	return CPU{
		Name:       "elan4",
		Clock:      sim.MHz(200),
		IssueWidth: 1,
		L1Size:     4 << 10, // effectively uncached queue traversal
		L1Assoc:    4,
		L1Line:     32,
		MemLatency: 27, // 135 ns at 200 MHz
		// Random replacement, as for the embedded profile.
		L1RandomRepl: true,
	}
}

// System-level latencies.
const (
	// NICBusDelay is the delay of the simple bus connecting the NIC
	// processor with the DMA engine, SRAM and matching structure: "This bus
	// was simulated with a 20ns delay" (§V-B).
	NICBusDelay = 20 * sim.Nanosecond

	// WireLatency is the network wire latency (Table III).
	WireLatency = 200 * sim.Nanosecond

	// LinkBandwidth is the network link bandwidth in bytes per nanosecond
	// (fit: Red-Storm-class link, ~1.6 GB/s effective).
	LinkBandwidthBpns = 2

	// HostBusLatency is the latency of a host CPU <-> NIC transaction
	// (doorbell write or status read) across the host I/O bus
	// (fit: HyperTransport-era ~250 ns posted write).
	HostBusLatency = 250 * sim.Nanosecond

	// DMASetupDelay is the fixed cost to program one DMA descriptor (fit).
	DMASetupDelay = 60 * sim.Nanosecond

	// DMABandwidthBpns is host-memory DMA bandwidth in bytes per ns (fit).
	DMABandwidthBpns = 2
)

// ALPU geometry and timing (§III, §V-D, §VI-A).
const (
	// ALPUClockMHz: the simulation assumes the ASIC-speed unit: "the
	// prototypes would all run at about 500MHz" (§VI-A).
	ALPUClockMHz = 500

	// ALPUMatchCycles: "the final implementations can process a new match
	// every 6 or 7 clock cycles"; "the simulation results assume a 7 cycle
	// pipelining latency with no overlap of execution" (§V-D).
	ALPUMatchCycles = 7

	// ALPUInsertCycles: "the current pipelining scheme also allows inserts
	// to happen on every other clock cycle" (§V-D).
	ALPUInsertCycles = 2

	// ALPUDefaultBlockSize is the cell-block size used by the simulated
	// units (the prototypes explored 8/16/32; 16 balances area and speed).
	ALPUDefaultBlockSize = 16

	// Command/result FIFO depths (fit: small hardware FIFOs). The header
	// FIFO is modelled as unbounded: the hardware path that replicates
	// headers (Fig. 1) must be lossless, so a real implementation flow-
	// controls it; dropping probes would desynchronise the §IV-D result
	// protocol. The model records the high-water mark instead.
	ALPUHeaderFIFODepth  = 0
	ALPUCommandFIFODepth = 16
	ALPUResultFIFODepth  = 64
)

// NIC firmware cost model (fit; see EXPERIMENTS.md "calibration").
// Costs are in NIC processor cycles at 500 MHz (2 ns/cycle). The per-entry
// traversal numbers are chosen so the baseline reproduces the paper's
// measured ~15 ns per entry with the queue in cache and ~64 ns per entry
// out of cache (§VI-B): a queue entry spans one 32-byte line; the compare
// plus pointer chase costs ~6 issue cycles, and an L1 miss adds the 30-32
// cycle memory latency but overlaps a few compute cycles.
const (
	// QueueEntryBytes is the NIC-memory footprint of one queue entry that
	// the match loop touches (match bits + next pointer in one line; the
	// rest of the entry is only touched on a hit).
	QueueEntryBytes = 32

	// QueueEntryFullBytes is the full entry footprint: the match line plus
	// the request state (an MPI request structure of the era is well over
	// 100 bytes). The lines behind the match line are fetched under its
	// miss (prefetch), so they pressure the cache without serialising
	// latency. 128 B/entry puts the 32 K NIC cache's capacity knee near
	// 250 entries, which reproduces the paper's 13 us full traversal of a
	// 400-entry list (§VI-B; see EXPERIMENTS.md calibration).
	QueueEntryFullBytes = 128

	// TraverseCyclesPerEntry is the issue-limited cost of one compare +
	// pointer chase (fit -> 15 ns/entry when hitting in L1: (6+1.5)*2ns).
	TraverseCyclesPerEntry = 6

	// L1HitCycles is the NIC L1 load-to-use latency.
	L1HitCycles = 1

	// PollIterationCycles is the cost of one idle firmware loop iteration
	// (checking network, host queue, active lists; fit).
	PollIterationCycles = 40

	// HeaderProcessCycles is the fixed header strip/dispatch cost when a
	// message arrives (fit).
	HeaderProcessCycles = 60

	// PostProcessCycles is the fixed cost to process a new posted-receive
	// request from the host (fit).
	PostProcessCycles = 60

	// SendProcessCycles is the fixed cost to process a send request (fit).
	SendProcessCycles = 80

	// CompletionCycles is the cost to write a completion back toward the
	// host (fit).
	CompletionCycles = 30

	// ALPUStatusPollCycles is the cost to read the ALPU status register
	// (result available?), excluding the 20 ns bus delay (fit).
	ALPUStatusPollCycles = 12

	// ALPUResultPollCycles is the cost for the firmware to read one entry
	// from the ALPU result FIFO over the local bus, excluding the 20 ns bus
	// delay which is charged separately (fit).
	ALPUResultPollCycles = 14

	// ALPUCommandCycles is the firmware cost to compose one ALPU command,
	// excluding the bus delay (fit).
	ALPUCommandCycles = 8
)

// Host-side MPI library cost model (fit). The host only dispatches requests
// and waits for completions (§V-C).
const (
	HostCallCycles     = 300 // MPI call entry/exit + descriptor build, at 2 GHz -> 150 ns
	HostCompletionPoll = 100 // cycles per completion-poll iteration
)

// MPI protocol parameters.
const (
	// EagerLimit is the eager/rendezvous switchover in bytes (fit:
	// Portals-era NICs used a few KB).
	EagerLimit = 4096

	// ALPUUseThreshold is the software heuristic from §VI-B: "it is
	// entirely possible that the MPI library could be optimized to not use
	// the ALPU until the list is at least 5 entries long". The simulated
	// firmware exposes the threshold; the Fig. 5/6 runs use 0 (always use
	// the ALPU) to match the published curves, and the abl-threshold
	// ablation sweeps it.
	ALPUUseThreshold = 0
)

// DRAM timing (fit: DDR-era part behind both processors' Table III
// latencies; the open-row model supplies contention, the fixed Table III
// latencies dominate).
const (
	DRAMBanks          = 8
	DRAMRowBytes       = 2048
	DRAMRowHitLatency  = 20 * sim.Nanosecond
	DRAMRowMissLatency = 50 * sim.Nanosecond
	DRAMBusyPerAccess  = 2 * sim.Nanosecond
)
