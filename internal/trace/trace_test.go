package trace

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.String() != "(empty)" {
		t.Errorf("empty String = %q", h.String())
	}
	for _, d := range []int{0, 1, 1, 3, 7, 100, 5000} {
		h.Add(d)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	if h.Max() != 5000 {
		t.Errorf("Max = %d", h.Max())
	}
	wantMean := float64(0+1+1+3+7+100+5000) / 7
	if h.Mean() != wantMean {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	if !strings.Contains(h.String(), "n=7") {
		t.Errorf("String = %q", h.String())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Max() != 0 || h.Mean() != 0 {
		t.Error("negative depth not clamped to 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Add(1)
	}
	for i := 0; i < 10; i++ {
		h.Add(200)
	}
	if p := h.Percentile(0.5); p != 1 {
		t.Errorf("p50 = %d, want 1", p)
	}
	if p := h.Percentile(0.99); p != 256 {
		t.Errorf("p99 = %d, want bucket edge 256", p)
	}
	var empty Histogram
	if empty.Percentile(0.5) != 0 {
		t.Error("empty percentile not 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(3)
	h.Add(3)
	h.Add(9999)
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("buckets = %+v", bs)
	}
	if bs[0].Label != "0" || bs[0].Count != 1 {
		t.Errorf("bucket 0 = %+v", bs[0])
	}
	if bs[1].Label != "3-4" || bs[1].Count != 2 {
		t.Errorf("bucket 1 = %+v", bs[1])
	}
	if bs[2].Label != ">4096" || bs[2].Count != 1 {
		t.Errorf("bucket 2 = %+v", bs[2])
	}
}

// Property: counts always sum to N and the mean is within the recorded
// range.
func TestHistogramInvariants(t *testing.T) {
	f := func(depths []uint16) bool {
		var h Histogram
		for _, d := range depths {
			h.Add(int(d))
		}
		var sum uint64
		for _, b := range h.Buckets() {
			sum += b.Count
		}
		if sum != h.N() {
			return false
		}
		if h.N() > 0 && (h.Mean() < 0 || h.Mean() > float64(h.Max())) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesDecimation(t *testing.T) {
	s := NewSeries(64)
	for i := 0; i < 10_000; i++ {
		s.Add(int64(i), i)
	}
	if s.Len() > 64 {
		t.Fatalf("series exceeded limit: %d", s.Len())
	}
	if s.Len() < 16 {
		t.Fatalf("series over-decimated: %d", s.Len())
	}
	// Samples stay time-ordered after decimation.
	for i := 1; i < s.Len(); i++ {
		if s.Times[i] <= s.Times[i-1] {
			t.Fatal("series not monotone after decimation")
		}
	}
	if s.MaxValue() == 0 {
		t.Fatal("MaxValue lost all data")
	}
}

func TestSeriesSmall(t *testing.T) {
	s := NewSeries(0) // default limit
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 || s.MaxValue() != 20 {
		t.Fatalf("Len=%d Max=%d", s.Len(), s.MaxValue())
	}
}

// Every bucket edge is the inclusive upper bound of its own bucket:
// adding the edge value twice stays in one bucket, and edge+1 spills
// into the next (4096+1 into the overflow bucket).
func TestHistogramBucketEdgePlacement(t *testing.T) {
	edges := []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
	for _, e := range edges {
		var h Histogram
		h.Add(e)
		h.Add(e)
		bs := h.Buckets()
		if len(bs) != 1 || bs[0].Count != 2 {
			t.Fatalf("Add(%d) x2: buckets = %+v, want one bucket of 2", e, bs)
		}
		if want := fmt.Sprint(e); !strings.HasSuffix(bs[0].Label, want) {
			t.Errorf("Add(%d) bucket label = %q, want upper bound %s", e, bs[0].Label, want)
		}
		var h2 Histogram
		h2.Add(e)
		h2.Add(e + 1)
		if bs := h2.Buckets(); len(bs) != 2 {
			t.Errorf("Add(%d), Add(%d): buckets = %+v, want two buckets", e, e+1, bs)
		}
	}
	var h Histogram
	h.Add(4097)
	if bs := h.Buckets(); len(bs) != 1 || bs[0].Label != ">4096" {
		t.Errorf("overflow buckets = %+v", h.Buckets())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(1)
	a.Add(5)
	b.Add(300)
	b.Add(2)
	a.Merge(&b)
	if a.N() != 4 {
		t.Errorf("merged N = %d, want 4", a.N())
	}
	if a.Max() != 300 {
		t.Errorf("merged Max = %d, want 300", a.Max())
	}
	if want := float64(1+5+300+2) / 4; a.Mean() != want {
		t.Errorf("merged Mean = %v, want %v (sum not propagated)", a.Mean(), want)
	}
	var sum uint64
	for _, bk := range a.Buckets() {
		sum += bk.Count
	}
	if sum != 4 {
		t.Errorf("merged bucket counts sum to %d, want 4", sum)
	}
	var empty Histogram
	a.Merge(&empty)
	if a.N() != 4 || a.Max() != 300 {
		t.Error("merging an empty histogram changed the receiver")
	}
}

// The report string carries the summary quantiles, and SummaryQuantiles
// exposes the same estimates as the conventional p50/p95/p99 set.
func TestHistogramSummaryQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(i)
	}
	qs := h.SummaryQuantiles()
	if len(qs) != 3 || qs[0].P != 0.5 || qs[1].P != 0.95 || qs[2].P != 0.99 {
		t.Fatalf("SummaryQuantiles = %+v, want p50/p95/p99", qs)
	}
	for i, q := range qs {
		if q.Value != h.Percentile(q.P) {
			t.Errorf("quantile %v value %d != Percentile %d", q.P, q.Value, h.Percentile(q.P))
		}
		if i > 0 && q.Value < qs[i-1].Value {
			t.Errorf("quantiles not monotone: %+v", qs)
		}
	}
	s := h.String()
	for _, want := range []string{"p50<=", "p95<=", "p99<="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() %q missing %s", s, want)
		}
	}
}
