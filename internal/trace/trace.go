// Package trace provides the queue-behaviour instrumentation behind the
// paper's motivation: refs [8] and [9] measured how deep real
// applications' posted-receive and unexpected queues grow and how far
// matches land in them — the numbers that justify offloading list
// processing in the first place. The workloads package uses these
// recorders to reproduce that style of study on the simulated cluster.
package trace

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bucket depth histogram with power-of-two-ish
// bucket edges suited to queue depths (0, 1, 2, 3-4, 5-8, ..., >4096).
type Histogram struct {
	counts [14]uint64
	sum    uint64
	max    int
	n      uint64
}

// bucketEdges are the inclusive upper bounds of each bucket.
var bucketEdges = [13]int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// Add records one observation.
func (h *Histogram) Add(depth int) {
	if depth < 0 {
		depth = 0
	}
	h.n++
	h.sum += uint64(depth)
	if depth > h.max {
		h.max = depth
	}
	for i, edge := range bucketEdges {
		if depth <= edge {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// Merge folds other's observations into h (used to aggregate per-NIC
// histograms into a cluster-wide study report).
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.sum += other.sum
	h.n += other.n
	if other.max > h.max {
		h.max = other.max
	}
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Max returns the largest observation.
func (h *Histogram) Max() int { return h.max }

// Mean returns the average observation.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Percentile returns the smallest bucket upper bound covering the
// p-quantile (0 < p <= 1) of observations.
func (h *Histogram) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	target := uint64(p * float64(h.n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(bucketEdges) {
				return bucketEdges[i]
			}
			return h.max
		}
	}
	return h.max
}

// String renders the histogram compactly for reports.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "(empty)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f max=%d p50<=%d p95<=%d p99<=%d",
		h.n, h.Mean(), h.max, h.Percentile(0.5), h.Percentile(0.95), h.Percentile(0.99))
	return b.String()
}

// Quantile is one summary quantile estimate: the P-quantile of the
// observations lies at or below Value (a bucket upper bound).
type Quantile struct {
	P     float64
	Value int
}

// SummaryQuantiles returns the conventional summary quantile set
// (p50/p95/p99) estimated from the fixed buckets — the shape Prometheus
// summary metrics expose under a quantile label.
func (h *Histogram) SummaryQuantiles() []Quantile {
	return []Quantile{
		{0.5, h.Percentile(0.5)},
		{0.95, h.Percentile(0.95)},
		{0.99, h.Percentile(0.99)},
	}
}

// Buckets returns (label, count) pairs for non-empty buckets.
func (h *Histogram) Buckets() []struct {
	Label string
	Count uint64
} {
	var out []struct {
		Label string
		Count uint64
	}
	prev := -1
	for i, c := range h.counts {
		var label string
		if i < len(bucketEdges) {
			edge := bucketEdges[i]
			if edge == prev+1 {
				label = fmt.Sprint(edge)
			} else {
				label = fmt.Sprintf("%d-%d", prev+1, edge)
			}
			prev = edge
		} else {
			label = fmt.Sprintf(">%d", prev)
		}
		if c > 0 {
			out = append(out, struct {
				Label string
				Count uint64
			}{label, c})
		}
	}
	return out
}

// CumBucket is one cumulative histogram bucket: Count observations with
// value <= Le. Le < 0 denotes the +Inf overflow bucket.
type CumBucket struct {
	Le    int
	Count uint64
}

// CumBuckets returns every bucket (including empty ones) in ascending
// edge order with cumulative counts — the Prometheus exposition shape,
// where each le="..." sample counts all observations at or below the
// edge and the final +Inf bucket equals N().
func (h *Histogram) CumBuckets() []CumBucket {
	out := make([]CumBucket, len(h.counts))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		le := -1
		if i < len(bucketEdges) {
			le = bucketEdges[i]
		}
		out[i] = CumBucket{Le: le, Count: cum}
	}
	return out
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Series records a time series of (time, value) samples with bounded
// memory (it keeps every k-th sample once full).
type Series struct {
	Times  []int64
	Values []int
	limit  int
	stride int
	skip   int
}

// NewSeries returns a series keeping at most limit samples (0 = 4096).
func NewSeries(limit int) *Series {
	if limit <= 0 {
		limit = 4096
	}
	return &Series{limit: limit, stride: 1}
}

// Add appends a sample, decimating once the limit is reached.
func (s *Series) Add(t int64, v int) {
	if s.skip > 0 {
		s.skip--
		return
	}
	if len(s.Times) >= s.limit {
		// Halve resolution: drop every other retained sample.
		keep := 0
		for i := 0; i < len(s.Times); i += 2 {
			s.Times[keep] = s.Times[i]
			s.Values[keep] = s.Values[i]
			keep++
		}
		s.Times = s.Times[:keep]
		s.Values = s.Values[:keep]
		s.stride *= 2
	}
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
	s.skip = s.stride - 1
}

// Len returns the retained sample count.
func (s *Series) Len() int { return len(s.Times) }

// MaxValue returns the largest retained value.
func (s *Series) MaxValue() int {
	m := 0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}
