package workloads

import (
	"strings"
	"testing"

	"alpusim/internal/nic"
)

var (
	base = nic.Config{}
	ac   = nic.Config{UseALPU: true, Cells: 128}
)

func TestHaloShortQueues(t *testing.T) {
	rep := Halo(base, 8, 10, 1024, 5)
	if rep.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	// Nearest-neighbour codes keep queues short (§I: the regime where
	// offload NICs are fine without an ALPU).
	if rep.PeakPosted > 16 {
		t.Errorf("halo peak posted queue = %d, expected short", rep.PeakPosted)
	}
	if rep.PostedDepths.Percentile(0.99) > 16 {
		t.Errorf("halo p99 match depth = %d, expected shallow", rep.PostedDepths.Percentile(0.99))
	}
}

func TestHaloALPUNearNeutral(t *testing.T) {
	b := Halo(base, 4, 8, 512, 4)
	a := Halo(ac, 4, 8, 512, 4)
	// Short queues: the ALPU must not help much, and must not hurt more
	// than its small per-message interface cost.
	ratio := float64(a.Elapsed) / float64(b.Elapsed)
	if ratio < 0.95 || ratio > 1.10 {
		t.Errorf("halo ALPU/baseline elapsed ratio = %.3f, expected ~1", ratio)
	}
}

func TestMasterWorkerQueueScalesWithRanks(t *testing.T) {
	small := MasterWorker(base, 5, 4, 256, 2)  // 4 workers
	large := MasterWorker(base, 17, 4, 256, 2) // 16 workers
	if small.PeakPosted >= large.PeakPosted {
		t.Errorf("posted queue did not grow with workers: %d (4w) vs %d (16w)",
			small.PeakPosted, large.PeakPosted)
	}
	// The refs [8]/[9] scaling: peak ~ workers * window.
	if large.PeakPosted < 16 {
		t.Errorf("16-worker peak posted = %d, want >= 16", large.PeakPosted)
	}
	if large.PostedDepths.N() == 0 {
		t.Error("no match depths recorded")
	}
}

func TestMasterWorkerALPUHelps(t *testing.T) {
	// Enough workers that the master's queue makes traversal visible.
	b := MasterWorker(base, 25, 3, 64, 3) // 24 workers x window 3 = 72 entries
	a := MasterWorker(ac, 25, 3, 64, 3)
	if a.ALPUHits == 0 {
		t.Fatal("ALPU never hit in the master-worker pattern")
	}
	if a.Elapsed >= b.Elapsed {
		t.Errorf("ALPU did not help master-worker: %v vs baseline %v", a.Elapsed, b.Elapsed)
	}
	// Software traversal work collapses with the ALPU.
	if a.EntriesTraversed*2 > b.EntriesTraversed {
		t.Errorf("traversals: alpu %d vs baseline %d, expected >2x reduction",
			a.EntriesTraversed, b.EntriesTraversed)
	}
}

func TestUnexpectedStormBuildsDeepQueue(t *testing.T) {
	rep := UnexpectedStorm(base, 5, 30, 0) // 4 senders x 30 = 120 unexpected
	if rep.PeakUnexp < 100 {
		t.Errorf("peak unexpected queue = %d, want ~120", rep.PeakUnexp)
	}
	if rep.UnexpDepths.N() == 0 {
		t.Error("no unexpected match depths recorded")
	}
}

func TestUnexpectedStormALPUHelps(t *testing.T) {
	b := UnexpectedStorm(base, 5, 40, 0)
	a := UnexpectedStorm(ac, 5, 40, 0)
	if a.Elapsed >= b.Elapsed {
		t.Errorf("ALPU did not help the storm: %v vs baseline %v", a.Elapsed, b.Elapsed)
	}
}

func TestSweepRuns(t *testing.T) {
	rep := Sweep(base, 6, 3, 256)
	if rep.Elapsed <= 0 || rep.PostedDepths.N() == 0 {
		t.Fatalf("sweep report empty: %+v", rep)
	}
}

func TestIrregularDeterministicPerSeed(t *testing.T) {
	a := Irregular(base, 6, 3, 2, 128, 42)
	b := Irregular(base, 6, 3, 2, 128, 42)
	if a.Elapsed != b.Elapsed {
		t.Errorf("same seed, different elapsed: %v vs %v", a.Elapsed, b.Elapsed)
	}
	c := Irregular(base, 6, 3, 2, 128, 43)
	if c.Elapsed == a.Elapsed {
		t.Log("different seeds coincided (allowed but unlikely)")
	}
	if a.UnexpDepths.N()+a.PostedDepths.N() == 0 {
		t.Error("irregular recorded no matches")
	}
}

func TestReportString(t *testing.T) {
	rep := Halo(base, 2, 2, 64, 2)
	s := rep.String()
	for _, frag := range []string{"halo-1d", "ranks=2", "peakPosted"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Report.String missing %q: %s", frag, s)
		}
	}
}
