package workloads

import (
	"fmt"
	"math/rand"

	"alpusim/internal/mpi"
	"alpusim/internal/nic"
)

// TenancyParams sizes the heavy-tenancy workload.
type TenancyParams struct {
	Ranks int // world size; rank 0 is the receiver
	Comms int // communicators (tenants), each a Dup of the world comm
	Msgs  int // total messages, all addressed to rank 0
	Seed  int64
}

// TenancyReport extends the common Report with the receive outcomes: one
// status per message, in posting order, plus an FNV-1a digest over them.
// The digest is the workload's correctness fingerprint — every NIC
// configuration (software list, hash list, single ALPU, any fabric shard
// count, any partition count) must produce the identical value.
type TenancyReport struct {
	Report
	Statuses []mpi.Status
	Digest   uint64
}

// tenancyPlan is the precomputed message schedule every rank agrees on.
type tenancyPlan struct {
	comm []int // message i -> communicator index
	src  []int // message i -> sending rank (1..Ranks-1)
	size []int // message i -> payload bytes
	wild []bool
	// perSender[s] lists the message indices rank s sends, in index order.
	perSender [][]int
}

func makeTenancyPlan(p TenancyParams) tenancyPlan {
	rng := rand.New(rand.NewSource(p.Seed))
	// Zipf-skewed tenancy: a few (communicator, source) pairs dominate the
	// traffic — the regime the fabric's hot-entry dispatch cache targets —
	// with a long tail spreading entries across every shard.
	zc := rand.NewZipf(rng, 1.25, 1, uint64(p.Comms-1))
	zs := rand.NewZipf(rng, 1.25, 1, uint64(p.Ranks-2))
	pl := tenancyPlan{
		comm:      make([]int, p.Msgs),
		src:       make([]int, p.Msgs),
		size:      make([]int, p.Msgs),
		wild:      make([]bool, p.Msgs),
		perSender: make([][]int, p.Ranks),
	}
	for i := 0; i < p.Msgs; i++ {
		pl.comm[i] = int(zc.Uint64())
		pl.src[i] = 1 + int(zs.Uint64())
		if rng.Intn(2) == 0 {
			pl.size[i] = 64
		}
		// ~1/8 of the receives are posted MPI_ANY_SOURCE: under the fabric
		// these broadcast to every shard. Tags are unique (tag = i), so
		// each wildcard still matches exactly one message and the outcome
		// stays deterministic.
		pl.wild[i] = rng.Intn(8) == 0
		pl.perSender[pl.src[i]] = append(pl.perSender[pl.src[i]], i)
	}
	return pl
}

// Tenancy runs the heavy-tenancy pattern motivating the sharded matching
// fabric: Comms communicators share the network, rank 0 pre-posts one
// receive per message (all Msgs of them, so the posted queue peaks far
// beyond a single ALPU's cell count), and the senders then fire their
// Zipf-scheduled messages. Matching is entirely posted-side and the
// receive set spans many (context, source) keys — single-unit overflow
// thrash for a lone ALPU, near-ideal spread for the fabric.
func Tenancy(nicCfg nic.Config, p TenancyParams, opts ...Option) TenancyReport {
	if p.Ranks < 3 || p.Comms < 1 || p.Msgs < 1 {
		panic(fmt.Sprintf("workloads: bad tenancy params %+v", p))
	}
	pl := makeTenancyPlan(p)
	name := fmt.Sprintf("tenancy(ranks=%d comms=%d msgs=%d)", p.Ranks, p.Comms, p.Msgs)
	statuses := make([]mpi.Status, p.Msgs)
	rep := run(name, nicCfg, p.Ranks, func(r *mpi.Rank) {
		world := r.Comm()
		// Collective: every rank dups the same K communicators in the same
		// order, so the contexts agree deterministically.
		comms := make([]*mpi.Comm, p.Comms)
		for c := range comms {
			comms[c] = world.Dup()
		}
		if r.Rank() == 0 {
			reqs := make([]*mpi.Request, p.Msgs)
			for i := 0; i < p.Msgs; i++ {
				src := pl.src[i]
				if pl.wild[i] {
					src = mpi.AnySource
				}
				reqs[i] = comms[pl.comm[i]].Irecv(src, i, pl.size[i])
			}
			world.Barrier() // receives are all posted; release the senders
			r.Waitall(reqs...)
			for i, req := range reqs {
				statuses[i] = req.Status()
			}
			world.Barrier()
			return
		}
		world.Barrier() // wait for the receiver to finish posting
		var reqs []*mpi.Request
		for _, i := range pl.perSender[r.Rank()] {
			reqs = append(reqs, comms[pl.comm[i]].Isend(0, i, pl.size[i]))
		}
		r.Waitall(reqs...)
		world.Barrier()
	}, opts)
	return TenancyReport{Report: rep, Statuses: statuses, Digest: TenancyDigest(statuses)}
}

// TenancyDigest folds receive outcomes into an order-sensitive FNV-1a
// fingerprint: index, matched source, tag and size of every receive.
func TenancyDigest(sts []mpi.Status) uint64 {
	h := uint64(0xcbf29ce484222325)
	step := func(v uint64) {
		for b := 0; b < 8; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= 0x100000001b3
		}
	}
	for i, st := range sts {
		step(uint64(i))
		step(uint64(int64(st.Source)))
		step(uint64(int64(st.Tag)))
		step(uint64(int64(st.Size)))
	}
	return h
}
