package workloads

import (
	"testing"

	"alpusim/internal/nic"
)

func tenancyNIC(alpuOn bool, shards int) nic.Config {
	return nic.Config{UseALPU: alpuOn, Cells: 64, MatchShards: shards}
}

// The tenancy digest is the fabric's correctness fingerprint: every
// configuration must produce byte-identical receive outcomes.
func TestTenancySmokeFabric(t *testing.T) {
	p := TenancyParams{Ranks: 4, Comms: 4, Msgs: 200, Seed: 7}
	sw := Tenancy(tenancyNIC(false, 0), p)
	a1 := Tenancy(tenancyNIC(true, 0), p)
	f2 := Tenancy(tenancyNIC(true, 2), p)
	f4 := Tenancy(tenancyNIC(true, 4), p)
	if sw.Digest != a1.Digest || sw.Digest != f2.Digest || sw.Digest != f4.Digest {
		t.Fatalf("digest mismatch: sw=%x a1=%x f2=%x f4=%x", sw.Digest, a1.Digest, f2.Digest, f4.Digest)
	}
	t.Logf("digest=%x elapsed sw=%v a1=%v f2=%v f4=%v", sw.Digest, sw.Elapsed, a1.Elapsed, f2.Elapsed, f4.Elapsed)
}
