package workloads

import (
	"testing"

	"alpusim/internal/nic"
)

// TestPartitionsInvariant checks the workload layer end to end: a halo
// exchange and an unexpected storm produce identical reports and
// telemetry at every partition count.
func TestPartitionsInvariant(t *testing.T) {
	cases := map[string]func(parts int) Report{
		"halo": func(parts int) Report {
			return Halo(nic.Config{UseALPU: true, Cells: 64}, 12, 4, 1024, 2, WithPartitions(parts))
		},
		"storm": func(parts int) Report {
			return UnexpectedStorm(nic.Config{}, 8, 6, 256, WithPartitions(parts))
		},
	}
	for name, make := range cases {
		t.Run(name, func(t *testing.T) {
			ref := make(1)
			refTable := ref.Telemetry.Table()
			for _, parts := range []int{2, 4} {
				rep := make(parts)
				if rep.String() != ref.String() {
					t.Errorf("par%d report diverged:\npar1: %s\npar%d: %s", parts, ref, parts, rep)
				}
				if rep.Elapsed != ref.Elapsed {
					t.Errorf("par%d elapsed %v != par1 %v", parts, rep.Elapsed, ref.Elapsed)
				}
				if got := rep.Telemetry.Table(); got != refTable {
					t.Errorf("par%d telemetry diverged from par1", parts)
				}
			}
		})
	}
}
