// Package workloads reproduces the style of application study that
// motivated the ALPU (the paper's §I-II, following refs [8] and [9]):
// synthetic but structurally faithful communication patterns whose queue
// behaviour spans the design space — nearest-neighbour codes with short
// queues, manager/worker codes whose posted queue grows with the process
// count and uses MPI_ANY_SOURCE heavily, and loosely synchronised codes
// that build deep unexpected queues. Each run reports queue depths, match
// depths and completion time, for baseline and ALPU NICs alike.
package workloads

import (
	"fmt"
	"math/rand"

	"alpusim/internal/mpi"
	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
	"alpusim/internal/trace"
)

// Option adjusts the mpi.Config a workload runs under. Options compose
// with any workload; the zero set reproduces the historical clean runs.
type Option func(*mpi.Config)

// WithFaults runs the workload over a faulty network (the NIC reliability
// protocol is forced on by mpi.NewWorld).
func WithFaults(fm *network.FaultModel) Option {
	return func(cfg *mpi.Config) { cfg.Faults = fm }
}

// WithWatchdog bounds the workload's simulated time; a stalled world
// panics with a diagnostic dump instead of hanging.
func WithWatchdog(limit sim.Time) Option {
	return func(cfg *mpi.Config) { cfg.WatchdogLimit = limit }
}

// WithFlightEvents sizes the flight-recorder ring per world (events
// kept for the post-mortem dump on watchdog expiry); 0 keeps the
// default when a watchdog is armed, n < 0 disables the recorder.
func WithFlightEvents(n int) Option {
	return func(cfg *mpi.Config) { cfg.FlightEvents = n }
}

// WithTelemetry runs the workload against an externally owned metrics
// registry (one per world — see telemetry.Registry).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(cfg *mpi.Config) { cfg.Telemetry = reg }
}

// WithTracer records the workload's run as Chrome trace events.
func WithTracer(t *telemetry.Tracer) Option {
	return func(cfg *mpi.Config) { cfg.Tracer = t }
}

// WithPhases records per-message latency pipeline stamps.
func WithPhases(p *telemetry.Phases) Option {
	return func(cfg *mpi.Config) { cfg.Phases = p }
}

// WithSeries samples per-NIC time series (queue depths, FIFO occupancy,
// go-back-N window, fabric balance, match-latency p99) into the given
// sampler at its interval (one sampler per world, like the registry).
func WithSeries(s *telemetry.Sampler) Option {
	return func(cfg *mpi.Config) { cfg.Series = s }
}

// WithPartitions runs the workload's world as a conservative parallel
// simulation over n per-partition engines (see mpi.Config.Partitions);
// n <= 0 keeps the serial engine.
func WithPartitions(n int) Option {
	return func(cfg *mpi.Config) {
		if n > 0 {
			cfg.Partitions = n
		}
	}
}

// Report summarises one workload run.
type Report struct {
	Name    string
	Ranks   int
	Elapsed sim.Time // time of the last rank to finish

	// Queue behaviour aggregated over all NICs.
	PeakPosted   int
	PeakUnexp    int
	PostedDepths trace.Histogram
	UnexpDepths  trace.Histogram

	// Firmware aggregates.
	EntriesTraversed uint64
	ALPUHits         uint64
	ALPUMisses       uint64

	// Reliability aggregates, nonzero only under WithFaults.
	FaultsInjected uint64
	Retransmits    uint64
	NacksSent      uint64
	RNRSent        uint64
	Recoveries     uint64
	ProtocolErrors uint64

	// Telemetry is the world's harvested metrics snapshot; every world
	// owns a registry (WithTelemetry substitutes an external one), so
	// this is populated on every run.
	Telemetry telemetry.Snapshot
}

func (r Report) String() string {
	return fmt.Sprintf("%s ranks=%d elapsed=%v peakPosted=%d peakUnexp=%d postedDepths{%s} traversed=%d alpuHits=%d",
		r.Name, r.Ranks, r.Elapsed, r.PeakPosted, r.PeakUnexp, r.PostedDepths.String(),
		r.EntriesTraversed, r.ALPUHits)
}

// gather builds a Report from a finished world.
func gather(name string, w *mpi.World, elapsed sim.Time) Report {
	rep := Report{Name: name, Ranks: len(w.NICs), Elapsed: elapsed}
	for _, n := range w.NICs {
		if p := n.PeakPostedLen(); p > rep.PeakPosted {
			rep.PeakPosted = p
		}
		if u := n.PeakUnexpLen(); u > rep.PeakUnexp {
			rep.PeakUnexp = u
		}
		rep.PostedDepths.Merge(n.PostedDepths())
		rep.UnexpDepths.Merge(n.UnexpDepths())
		st := n.Stats()
		rep.EntriesTraversed += st.EntriesTraversed
		rep.ALPUHits += st.ALPUPostedHits + st.ALPUUnexpHits
		rep.ALPUMisses += st.ALPUPostedMisses + st.ALPUUnexpMisses
		rel := n.Rel()
		rep.Retransmits += rel.Retransmits
		rep.NacksSent += rel.NacksSent
		rep.RNRSent += rel.RNRSent
		rep.Recoveries += rel.Recoveries
		rep.ProtocolErrors += n.ErrorsTotal()
	}
	rep.FaultsInjected = w.Net.FaultStats().Total()
	rep.Telemetry = w.TelemetrySnapshot()
	return rep
}

// run executes prog on a fresh cluster and reports.
func run(name string, nicCfg nic.Config, ranks int, prog mpi.Program, opts []Option) Report {
	cfg := mpi.Config{Ranks: ranks, NIC: nicCfg}
	for _, o := range opts {
		o(&cfg)
	}
	// Per-rank finish times, folded after the run: rank goroutines on
	// different partitions finish concurrently, so a shared max would race.
	finished := make([]sim.Time, ranks)
	w := mpi.Run(cfg, func(r *mpi.Rank) {
		prog(r)
		finished[r.Rank()] = r.Now()
	})
	var last sim.Time
	for _, t := range finished {
		if t > last {
			last = t
		}
	}
	return gather(name, w, last)
}

// Halo runs a 1-D periodic halo exchange: every iteration each rank
// exchanges msgSize bytes with both neighbours (Sendrecv) and every
// reduceEvery iterations the ranks Allreduce 8 bytes. Queues stay short;
// this is the regime where the paper expects the ALPU to cost (a little)
// rather than pay.
func Halo(nicCfg nic.Config, ranks, iters, msgSize, reduceEvery int, opts ...Option) Report {
	if reduceEvery <= 0 {
		reduceEvery = 10
	}
	name := fmt.Sprintf("halo-1d(ranks=%d iters=%d size=%d)", ranks, iters, msgSize)
	return run(name, nicCfg, ranks, func(r *mpi.Rank) {
		c := r.Comm()
		n := c.Size()
		left := (c.Rank() - 1 + n) % n
		right := (c.Rank() + 1) % n
		for it := 0; it < iters; it++ {
			// Exchange with both neighbours; tags separate the directions.
			c.Sendrecv(right, 10, msgSize, left, 10, msgSize)
			c.Sendrecv(left, 11, msgSize, right, 11, msgSize)
			r.Compute(2 * sim.Microsecond) // the stencil update
			if (it+1)%reduceEvery == 0 {
				c.Allreduce(8) // convergence check
			}
		}
	}, opts)
}

// MasterWorker runs a manager/worker pattern: the master keeps a window
// of MPI_ANY_SOURCE receives posted (the §II observation that ANY_SOURCE
// use "is most prevalent") plus one explicit-source result receive per
// worker in flight, so its posted receive queue grows with the number of
// workers — the refs [8]/[9] scaling behaviour the ALPU targets.
func MasterWorker(nicCfg nic.Config, ranks, tasksPerWorker, taskSize, window int, opts ...Option) Report {
	if window <= 0 {
		window = 2
	}
	name := fmt.Sprintf("master-worker(ranks=%d tasks=%d size=%d)", ranks, tasksPerWorker, taskSize)
	const (
		tagTask   = 1
		tagResult = 2
	)
	return run(name, nicCfg, ranks, func(r *mpi.Rank) {
		c := r.Comm()
		workers := c.Size() - 1
		if workers == 0 {
			return
		}
		if c.Rank() == 0 {
			// Keep a window of result receives outstanding per worker: the
			// posted queue holds ~workers*window entries, so it scales with
			// the process count (the refs [8]/[9] observation). Each
			// completion identifies its worker, which gets the next task.
			total := workers * tasksPerWorker
			var reqs []*mpi.Request
			var owners []int
			sent := make([]int, workers+1)
			outstanding := make([]int, workers+1)
			// Post the whole receive window first (nonblocking), so the
			// posted queue actually reaches workers*window before results
			// start consuming it; then hand out the initial tasks.
			for w := 1; w <= workers; w++ {
				for k := 0; k < window && k < tasksPerWorker; k++ {
					reqs = append(reqs, c.Irecv(w, tagResult, taskSize))
					owners = append(owners, w)
				}
			}
			var taskReqs []*mpi.Request
			for w := 1; w <= workers; w++ {
				for k := 0; k < window && k < tasksPerWorker; k++ {
					taskReqs = append(taskReqs, c.Isend(w, tagTask, taskSize))
					sent[w]++
					outstanding[w]++
				}
			}
			r.Waitall(taskReqs...)
			done := 0
			for done < total {
				i := r.Waitany(reqs...)
				w := owners[i]
				reqs = append(reqs[:i], reqs[i+1:]...)
				owners = append(owners[:i], owners[i+1:]...)
				outstanding[w]--
				done++
				if sent[w] < tasksPerWorker {
					reqs = append(reqs, c.Irecv(w, tagResult, taskSize))
					owners = append(owners, w)
					c.Send(w, tagTask, taskSize)
					sent[w]++
					outstanding[w]++
				}
			}
			// Release the workers.
			for w := 1; w <= workers; w++ {
				c.Send(w, tagTask+1, 0)
			}
		} else {
			// Higher-ranked workers are faster: their results come back
			// first but their receives were posted last (deepest), so the
			// master's matches land deep in its queue — the worst case the
			// ALPU exists for.
			computeT := sim.Time(1+2*(workers-c.Rank())) * 300 * sim.Nanosecond
			got := 0
			for got < tasksPerWorker {
				c.Recv(0, tagTask, taskSize)
				got++
				r.Compute(computeT)
				c.Send(0, tagResult, taskSize)
			}
			c.Recv(0, tagTask+1, 0)
		}
	}, opts)
}

// UnexpectedStorm runs a loosely synchronised pattern: every rank blasts
// messages at rank 0 before it has posted anything (building a deep
// unexpected queue); rank 0 then posts its receives consecutively, by
// explicit sender and in reverse tag order, so each posting searches deep
// into the unexpected queue. This is the paper's §VI-C "real life"
// scenario: "Each receive would take progressively longer and would
// impact the application execution time directly. In such a case, the
// ALPU would offer a much greater benefit."
func UnexpectedStorm(nicCfg nic.Config, ranks, msgsPerRank, msgSize int, opts ...Option) Report {
	name := fmt.Sprintf("unexpected-storm(ranks=%d msgs=%d size=%d)", ranks, msgsPerRank, msgSize)
	return run(name, nicCfg, ranks, func(r *mpi.Rank) {
		c := r.Comm()
		if c.Rank() != 0 {
			for i := 0; i < msgsPerRank; i++ {
				c.Send(0, 100+i, msgSize)
			}
			c.Barrier()
			return
		}
		c.Barrier() // every sender has finished flooding
		var reqs []*mpi.Request
		for i := msgsPerRank - 1; i >= 0; i-- {
			for src := 1; src < c.Size(); src++ {
				reqs = append(reqs, c.Irecv(src, 100+i, msgSize))
			}
		}
		r.Waitall(reqs...)
	}, opts)
}

// Sweep runs an all-to-all-dominated pattern (spectral/transpose codes):
// iters rounds of Alltoall plus a reduction.
func Sweep(nicCfg nic.Config, ranks, iters, msgSize int, opts ...Option) Report {
	name := fmt.Sprintf("sweep-alltoall(ranks=%d iters=%d size=%d)", ranks, iters, msgSize)
	return run(name, nicCfg, ranks, func(r *mpi.Rank) {
		c := r.Comm()
		for it := 0; it < iters; it++ {
			c.Alltoall(msgSize)
			c.Allreduce(8)
		}
	}, opts)
}

// Irregular runs a randomised sparse communication pattern: each rank
// sends to a few random peers per round (deterministic per seed), with
// receivers posting wildcard receives per round. Mixes unexpected
// arrivals with posted matching at varying depths.
func Irregular(nicCfg nic.Config, ranks, rounds, degree, msgSize int, seed int64, opts ...Option) Report {
	name := fmt.Sprintf("irregular(ranks=%d rounds=%d deg=%d)", ranks, rounds, degree)
	// Precompute the traffic matrix so every rank agrees on counts.
	rng := rand.New(rand.NewSource(seed))
	targets := make([][][]int, rounds)
	incoming := make([][]int, rounds)
	for rd := 0; rd < rounds; rd++ {
		targets[rd] = make([][]int, ranks)
		incoming[rd] = make([]int, ranks)
		for src := 0; src < ranks; src++ {
			for d := 0; d < degree; d++ {
				dst := rng.Intn(ranks)
				if dst == src {
					continue
				}
				targets[rd][src] = append(targets[rd][src], dst)
				incoming[rd][dst]++
			}
		}
	}
	return run(name, nicCfg, ranks, func(r *mpi.Rank) {
		c := r.Comm()
		me := c.Rank()
		for rd := 0; rd < rounds; rd++ {
			// Post wildcard receives for everything due this round first,
			// then send; finish the round with a barrier.
			reqs := make([]*mpi.Request, 0, incoming[rd][me])
			for i := 0; i < incoming[rd][me]; i++ {
				reqs = append(reqs, c.Irecv(mpi.AnySource, rd, msgSize))
			}
			for _, dst := range targets[rd][me] {
				c.Send(dst, rd, msgSize)
			}
			r.Waitall(reqs...)
			c.Barrier()
		}
	}, opts)
}
