package match

// Shard routing for the multi-ALPU matching fabric. A fabric hashes
// posted receives across N ALPU instances by (context, source) — the tag
// field is excluded so every probe for a given sender/communicator pair
// lands on the shard that holds its candidate receives. Wildcard-source
// receives match traffic from any sender, so they cannot be routed; the
// firmware broadcasts a copy to every shard instead (see nic/fabric.go).

// DispatchKey reduces a match word to its shard routing key: the
// (context, source) fields with the tag cleared. Two probes with the same
// communicator and sender always share a dispatch key, whatever their tags.
func DispatchKey(b Bits) Bits { return b &^ tagMask }

// ShardOf maps a match word to a shard index in [0, shards). The dispatch
// key is mixed through a splitmix64-style finalizer so contexts and
// sources spread over shards even when their low bits are clustered
// (communicator ids and ranks are small dense integers). The function is
// pure: routing never depends on simulation state, which is what keeps
// fabric results identical at any partition count.
func ShardOf(b Bits, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := uint64(DispatchKey(b))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// WildcardSource reports whether a receive mask leaves the source field
// unconstrained (MPI_ANY_SOURCE): such receives must be broadcast to every
// shard because any sender's traffic may satisfy them.
func WildcardSource(mask Bits) bool { return mask&srcMask != srcMask }
