package match

import (
	"math/rand"
	"testing"
)

func TestDispatchKeyIgnoresTag(t *testing.T) {
	for src := int32(0); src < 32; src++ {
		for ctx := uint16(0); ctx < 16; ctx++ {
			base := DispatchKey(Pack(Header{Context: ctx, Source: src, Tag: 0}))
			for _, tag := range []int32{1, 7, 4095, 65535} {
				b := Pack(Header{Context: ctx, Source: src, Tag: tag})
				if DispatchKey(b) != base {
					t.Fatalf("DispatchKey varies with tag: ctx=%d src=%d tag=%d", ctx, src, tag)
				}
			}
		}
	}
}

func TestShardOfRangeAndStability(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8} {
		counts := make([]int, shards)
		for src := int32(0); src < 64; src++ {
			for ctx := uint16(0); ctx < 32; ctx++ {
				b := Pack(Header{Context: ctx, Source: src, Tag: 9})
				s := ShardOf(b, shards)
				if s < 0 || s >= shards {
					t.Fatalf("ShardOf out of range: %d for %d shards", s, shards)
				}
				if s2 := ShardOf(Pack(Header{Context: ctx, Source: src, Tag: 17}), shards); s2 != s {
					t.Fatalf("ShardOf not tag-invariant: %d vs %d", s, s2)
				}
				counts[s]++
			}
		}
		// The mixer must actually spread dense (ctx, src) pairs: no shard
		// may be empty, none may hold everything (shards > 1).
		if shards > 1 {
			for s, c := range counts {
				if c == 0 || c == 64*32 {
					t.Fatalf("shards=%d: degenerate spread, shard %d holds %d/%d", shards, s, c, 64*32)
				}
			}
		}
	}
}

func TestWildcardSource(t *testing.T) {
	_, exact := PackRecv(Recv{Context: 1, Source: 3, Tag: 5})
	if WildcardSource(exact) {
		t.Fatal("exact-source mask reported wildcard")
	}
	_, anySrc := PackRecv(Recv{Context: 1, Source: AnySource, Tag: 5})
	if !WildcardSource(anySrc) {
		t.Fatal("ANY_SOURCE mask not reported wildcard")
	}
	_, anyTag := PackRecv(Recv{Context: 1, Source: 3, Tag: AnyTag})
	if WildcardSource(anyTag) {
		t.Fatal("ANY_TAG-only mask reported source wildcard")
	}
}

// Ordered must return posting order however entries are spread over
// buckets. The entries land in many distinct buckets, so any
// implementation that walked the bucket map without sorting would emit a
// random permutation — the map-order dependence this test exists to catch.
func TestHashListOrderedSeqAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHashList()
	var want []*Entry
	for i := 0; i < 500; i++ {
		e := &Entry{Mask: FullMask, Bits: Pack(Header{Context: uint16(rng.Intn(64)), Source: int32(rng.Intn(128)), Tag: int32(i)})}
		if i%7 == 0 { // sprinkle wildcards into the side list too
			e.Bits, e.Mask = PackRecv(Recv{Context: uint16(rng.Intn(64)), Source: AnySource, Tag: int32(i)})
		}
		h.Append(e)
		want = append(want, e)
	}
	for run := 0; run < 3; run++ {
		got := h.Ordered()
		if len(got) != len(want) {
			t.Fatalf("Ordered returned %d entries, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("run %d: Ordered()[%d] out of posting order (seq %d after %d)", run, i, got[i].Seq, got[i-1].Seq)
			}
		}
	}
}

// InsertOrdered must honour an entry's existing Seq stamp: a demoted old
// entry re-inserted behind a newer bucket-mate must still win FindFirst,
// and the wildcard/bucket sequence merge must keep working.
func TestHashListInsertOrderedRestoresOrder(t *testing.T) {
	h := NewHashList()
	mk := func(tag int32, seq uint64) *Entry {
		return &Entry{Bits: Pack(Header{Context: 2, Source: 3, Tag: tag}), Mask: FullMask, Seq: seq}
	}
	newer := mk(5, 10)
	h.InsertOrdered(newer)
	older := mk(5, 4)
	h.InsertOrdered(older)
	if got := h.FindFirst(older.Bits, FullMask); got != older {
		t.Fatalf("FindFirst returned seq %d, want the older seq %d", got.Seq, older.Seq)
	}
	// A wildcard between the two must win against the newer bucket entry
	// but lose to the older one.
	wb, wm := PackRecv(Recv{Context: 2, Source: AnySource, Tag: 5})
	wild := &Entry{Bits: wb, Mask: wm, Seq: 7}
	h.InsertOrdered(wild)
	if got := h.FindFirst(older.Bits, FullMask); got != older {
		t.Fatalf("wildcard merge broke: got seq %d, want %d", got.Seq, older.Seq)
	}
	h.Remove(older)
	if got := h.FindFirst(older.Bits, FullMask); got != wild {
		t.Fatalf("after removing oldest: got seq %d, want wildcard seq %d", got.Seq, wild.Seq)
	}
	// Seq counter must have absorbed the explicit stamps so a later Append
	// still lands strictly after everything inserted.
	tail := &Entry{Bits: mk(5, 0).Bits, Mask: FullMask}
	h.Append(tail)
	if tail.Seq <= newer.Seq {
		t.Fatalf("Append after InsertOrdered stamped seq %d, not past %d", tail.Seq, newer.Seq)
	}
}

func TestHashListDrain(t *testing.T) {
	h := NewHashList()
	for i := 0; i < 32; i++ {
		h.Append(&Entry{Bits: Pack(Header{Context: uint16(i % 5), Source: int32(i % 3), Tag: int32(i)}), Mask: FullMask})
	}
	out := h.Drain()
	if len(out) != 32 || h.Len() != 0 {
		t.Fatalf("Drain returned %d entries, left %d queued", len(out), h.Len())
	}
	for i := 1; i < len(out); i++ {
		if out[i].Seq <= out[i-1].Seq {
			t.Fatalf("Drain out of order at %d", i)
		}
	}
	if h.FindFirst(out[0].Bits, FullMask) != nil {
		t.Fatal("drained list still matches")
	}
}
