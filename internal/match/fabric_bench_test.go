package match

import "testing"

// BenchmarkFabricDispatch measures the pure shard-routing hash: the cost
// every posted receive and every incoming probe pays before touching a
// shard. Keys cycle through a dense (ctx, src) population, the realistic
// heavy-tenancy shape.
func BenchmarkFabricDispatch(b *testing.B) {
	keys := make([]Bits, 256)
	for i := range keys {
		keys[i] = Pack(Header{Context: uint16(i % 16), Source: int32(i / 16), Tag: int32(i)})
	}
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += ShardOf(keys[i%len(keys)], 4)
	}
	_ = sink
}

// BenchmarkFabricOverflowPromote measures the overflow churn primitive:
// removing the oldest overflow entry from a HashList (promotion into ALPU
// cells) and re-inserting it with its Seq preserved (demotion on resync).
func BenchmarkFabricOverflowPromote(b *testing.B) {
	h := NewHashList()
	entries := make([]*Entry, 1024)
	for i := range entries {
		entries[i] = &Entry{Bits: Pack(Header{Context: uint16(i % 32), Source: int32(i % 64), Tag: int32(i)}), Mask: FullMask}
		h.Append(entries[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entries[i%len(entries)]
		h.Remove(e)
		h.InsertOrdered(e)
	}
}
