package match

import (
	"fmt"
	"testing"
)

// benchmarkListFindFirst measures the pure software matching loop at a
// fixed traversal depth: depth-1 non-matching entries ahead of the match,
// the worst case the firmware charges per-entry traversal cost for.
func benchmarkListFindFirst(b *testing.B, depth int) {
	var l List
	for i := 0; i < depth-1; i++ {
		l.Append(&Entry{
			Bits: Pack(Header{Context: 1, Source: 2, Tag: int32(0x1000 + i)}),
			Mask: FullMask,
		})
	}
	l.Append(&Entry{
		Bits: Pack(Header{Context: 1, Source: 2, Tag: 7}),
		Mask: FullMask,
	})
	probe := Pack(Header{Context: 1, Source: 2, Tag: 7})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.FindFirst(probe, FullMask) != depth-1 {
			b.Fatal("probe did not match the tail entry")
		}
	}
}

// BenchmarkListFindFirst covers the depths the figure benchmarks exercise:
// a short in-ALPU queue (16), near the 128-cell unit size, and past the
// NIC cache knee (512).
func BenchmarkListFindFirst(b *testing.B) {
	for _, depth := range []int{16, 128, 512} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			benchmarkListFindFirst(b, depth)
		})
	}
}
