package match

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []Header{
		{Context: 0, Source: 0, Tag: 0},
		{Context: 1, Source: 2, Tag: 3},
		{Context: 2047, Source: 32767, Tag: 65535},
		{Context: 1234, Source: 9999, Tag: 42},
	}
	for _, h := range cases {
		got := Pack(h).Unpack()
		if got != h {
			t.Errorf("Pack/Unpack(%v) = %v", h, got)
		}
	}
}

func TestPackRoundTripProperty(t *testing.T) {
	f := func(ctx uint16, src uint16, tag uint16) bool {
		h := Header{
			Context: ctx & 0x7ff,
			Source:  int32(src & 0x7fff),
			Tag:     int32(tag),
		}
		return Pack(h).Unpack() == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackFieldsDoNotOverlap(t *testing.T) {
	a := Pack(Header{Context: 0x7ff})
	b := Pack(Header{Source: 0x7fff})
	c := Pack(Header{Tag: 0xffff})
	if a&b != 0 || a&c != 0 || b&c != 0 {
		t.Fatalf("field encodings overlap: ctx=%b src=%b tag=%b", a, b, c)
	}
	if a|b|c != FullMask {
		t.Fatalf("fields do not cover FullMask: %b vs %b", a|b|c, FullMask)
	}
}

func TestRecvMatchesExact(t *testing.T) {
	r := Recv{Context: 5, Source: 3, Tag: 7}
	if !RecvMatches(r, Header{Context: 5, Source: 3, Tag: 7}) {
		t.Fatal("exact triple did not match")
	}
	for _, h := range []Header{
		{Context: 6, Source: 3, Tag: 7},
		{Context: 5, Source: 4, Tag: 7},
		{Context: 5, Source: 3, Tag: 8},
	} {
		if RecvMatches(r, h) {
			t.Errorf("mismatched header %v matched", h)
		}
	}
}

func TestRecvMatchesWildcards(t *testing.T) {
	anySrc := Recv{Context: 5, Source: AnySource, Tag: 7}
	if !RecvMatches(anySrc, Header{Context: 5, Source: 999, Tag: 7}) {
		t.Fatal("ANY_SOURCE did not match")
	}
	if RecvMatches(anySrc, Header{Context: 5, Source: 999, Tag: 8}) {
		t.Fatal("ANY_SOURCE matched wrong tag")
	}
	anyTag := Recv{Context: 5, Source: 3, Tag: AnyTag}
	if !RecvMatches(anyTag, Header{Context: 5, Source: 3, Tag: 12345}) {
		t.Fatal("ANY_TAG did not match")
	}
	if RecvMatches(anyTag, Header{Context: 5, Source: 4, Tag: 12345}) {
		t.Fatal("ANY_TAG matched wrong source")
	}
	both := Recv{Context: 5, Source: AnySource, Tag: AnyTag}
	if !RecvMatches(both, Header{Context: 5, Source: 1, Tag: 2}) {
		t.Fatal("double wildcard did not match")
	}
	// Context is never wildcarded (§II).
	if RecvMatches(both, Header{Context: 6, Source: 1, Tag: 2}) {
		t.Fatal("double wildcard matched wrong context")
	}
}

func TestMatchesSymmetric(t *testing.T) {
	rb, rm := PackRecv(Recv{Context: 1, Source: AnySource, Tag: 9})
	hb := Pack(Header{Context: 1, Source: 44, Tag: 9})
	if !Matches(rb, rm, hb, FullMask) || !Matches(hb, FullMask, rb, rm) {
		t.Fatal("Matches is not symmetric")
	}
}

func TestListAppendFindRemove(t *testing.T) {
	var l List
	mk := func(tag int32) *Entry {
		b, m := PackRecv(Recv{Context: 1, Source: 0, Tag: tag})
		return &Entry{Bits: b, Mask: m}
	}
	e1, e2, e3 := mk(1), mk(2), mk(1)
	l.Append(e1)
	l.Append(e2)
	l.Append(e3)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if e1.Seq >= e2.Seq || e2.Seq >= e3.Seq {
		t.Fatal("Seq not monotone")
	}
	probe := Pack(Header{Context: 1, Source: 0, Tag: 1})
	// First match must be the oldest (e1), not the "best" or newest.
	if i := l.FindFirst(probe, FullMask); i != 0 {
		t.Fatalf("FindFirst = %d, want 0", i)
	}
	got := l.RemoveAt(0)
	if got != e1 {
		t.Fatal("RemoveAt returned wrong entry")
	}
	// Now the first tag-1 match is e3 at index 1.
	if i := l.FindFirst(probe, FullMask); i != 1 || l.At(i) != e3 {
		t.Fatalf("after removal FindFirst = %d", i)
	}
	if i := l.IndexOf(e2); i != 0 {
		t.Fatalf("IndexOf(e2) = %d, want 0", i)
	}
	if i := l.IndexOf(e1); i != -1 {
		t.Fatalf("IndexOf(removed) = %d, want -1", i)
	}
}

func TestListFindFrom(t *testing.T) {
	var l List
	for i := 0; i < 5; i++ {
		b, m := PackRecv(Recv{Context: 1, Source: 0, Tag: 7})
		l.Append(&Entry{Bits: b, Mask: m})
	}
	probe := Pack(Header{Context: 1, Source: 0, Tag: 7})
	if i := l.FindFrom(3, probe, FullMask); i != 3 {
		t.Fatalf("FindFrom(3) = %d, want 3", i)
	}
	if i := l.FindFrom(5, probe, FullMask); i != -1 {
		t.Fatalf("FindFrom(past end) = %d, want -1", i)
	}
}

// MPI ordering constraint: an ANY_SOURCE receive posted before an explicit
// one must win even though the explicit one is the "more exact" match
// (the paper's §II LPM discussion).
func TestOrderingBeatsExactness(t *testing.T) {
	var l List
	wb, wm := PackRecv(Recv{Context: 1, Source: AnySource, Tag: 4})
	eb, em := PackRecv(Recv{Context: 1, Source: 2, Tag: 4})
	wild := &Entry{Bits: wb, Mask: wm}
	exact := &Entry{Bits: eb, Mask: em}
	l.Append(wild)
	l.Append(exact)
	probe := Pack(Header{Context: 1, Source: 2, Tag: 4})
	if i := l.FindFirst(probe, FullMask); l.At(i) != wild {
		t.Fatal("explicit-source entry selected over earlier wildcard")
	}
}

func randomEntry(rng *rand.Rand) *Entry {
	r := Recv{
		Context: uint16(rng.Intn(4)),
		Source:  int32(rng.Intn(4)),
		Tag:     int32(rng.Intn(4)),
	}
	if rng.Intn(4) == 0 {
		r.Source = AnySource
	}
	if rng.Intn(8) == 0 {
		r.Tag = AnyTag
	}
	b, m := PackRecv(r)
	return &Entry{Bits: b, Mask: m}
}

// Property: HashList.FindFirst agrees with the linear list's first-match
// semantics for arbitrary posting orders, wildcards and probes.
func TestHashListEquivalentToList(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l List
		h := NewHashList()
		entries := make([]*Entry, 0, 32)
		for i := 0; i < 32; i++ {
			e := randomEntry(rng)
			// Two structures share the entry; List stamps Seq first and
			// HashList must honour it, so stamp via List then force-sync.
			l.Append(e)
			h.seq = e.Seq - 1
			h.Append(e)
			entries = append(entries, e)
		}
		for probe := 0; probe < 50; probe++ {
			ph := Header{
				Context: uint16(rng.Intn(4)),
				Source:  int32(rng.Intn(4)),
				Tag:     int32(rng.Intn(4)),
			}
			pb := Pack(ph)
			li := l.FindFirst(pb, FullMask)
			he := h.FindFirst(pb, FullMask)
			if (li == -1) != (he == nil) {
				return false
			}
			if li != -1 && l.At(li) != he {
				return false
			}
			// Occasionally consume the match from both.
			if li != -1 && rng.Intn(2) == 0 {
				e := l.RemoveAt(li)
				if !h.Remove(e) {
					return false
				}
			}
		}
		_ = entries
		return l.Len() == h.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: wildcard probes against a HashList of exact entries (the
// unexpected-queue direction, §II "reverse lookup") match the list.
func TestHashListWildcardProbeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l List
		h := NewHashList()
		for i := 0; i < 24; i++ {
			hd := Header{
				Context: uint16(rng.Intn(3)),
				Source:  int32(rng.Intn(3)),
				Tag:     int32(rng.Intn(3)),
			}
			e := &Entry{Bits: Pack(hd), Mask: FullMask}
			l.Append(e)
			h.seq = e.Seq - 1
			h.Append(e)
		}
		for probe := 0; probe < 30; probe++ {
			r := Recv{
				Context: uint16(rng.Intn(3)),
				Source:  int32(rng.Intn(3)),
				Tag:     int32(rng.Intn(3)),
			}
			switch rng.Intn(3) {
			case 0:
				r.Source = AnySource
			case 1:
				r.Tag = AnyTag
			}
			pb, pm := PackRecv(r)
			li := l.FindFirst(pb, pm)
			he := h.FindFirst(pb, pm)
			if (li == -1) != (he == nil) {
				return false
			}
			if li != -1 && l.At(li) != he {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHashListInsertCostExceedsList(t *testing.T) {
	h := NewHashList()
	for i := 0; i < 100; i++ {
		b := Pack(Header{Context: 1, Source: int32(i), Tag: 0})
		h.Append(&Entry{Bits: b, Mask: FullMask})
	}
	// §II: hash insert is meaningfully more expensive than list append
	// (one step). The model charges 3 steps per insert.
	if h.InsertSteps < 300 {
		t.Fatalf("InsertSteps = %d, want >= 300", h.InsertSteps)
	}
}

func TestHashListRemoveMissing(t *testing.T) {
	h := NewHashList()
	e := &Entry{Bits: Pack(Header{Context: 1}), Mask: FullMask}
	if h.Remove(e) {
		t.Fatal("Remove of absent entry reported true")
	}
	wb, wm := PackRecv(Recv{Context: 1, Source: AnySource, Tag: 0})
	w := &Entry{Bits: wb, Mask: wm}
	if h.Remove(w) {
		t.Fatal("Remove of absent wildcard entry reported true")
	}
}
