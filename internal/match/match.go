// Package match implements MPI point-to-point matching semantics (§II of
// the paper): the {context, source, tag} triple, wildcard rules
// (MPI_ANY_SOURCE / MPI_ANY_TAG; the context must always match exactly),
// packing into the ALPU's 42-bit match word, and the software queue
// structures — the linear list every published MPI implementation of the
// era used, and the hash-table alternative the paper's §II explains was
// explored and rejected.
package match

import (
	"fmt"

	"alpusim/internal/params"
)

// Wildcard values for Recv selection criteria.
const (
	AnySource int32 = -1 // MPI_ANY_SOURCE
	AnyTag    int32 = -1 // MPI_ANY_TAG
)

// Header is the matching envelope carried by every message.
type Header struct {
	Context uint16 // communicator context id (11 bits used)
	Source  int32  // sender's rank within the communicator (15 bits used)
	Tag     int32  // user tag (16 bits used)
}

func (h Header) String() string {
	return fmt.Sprintf("{ctx=%d src=%d tag=%d}", h.Context, h.Source, h.Tag)
}

// Recv is the selection criterion of a posted receive; Source and Tag may
// be wildcards, Context may not (§II).
type Recv struct {
	Context uint16
	Source  int32
	Tag     int32
}

// Bits is the packed match word fed to the ALPU. Layout (LSB first):
// tag[16] | source[15] | context[11], 42 bits total (§VI-A).
type Bits uint64

// Field masks within a Bits word.
const (
	tagShift = 0
	srcShift = params.TagFieldBits
	ctxShift = params.TagFieldBits + params.SourceBits

	tagMask Bits = (1 << params.TagFieldBits) - 1
	srcMask Bits = ((1 << params.SourceBits) - 1) << srcShift
	ctxMask Bits = ((1 << params.ContextBits) - 1) << ctxShift

	// FullMask compares every bit (no wildcards).
	FullMask Bits = tagMask | srcMask | ctxMask
)

// Pack encodes a header into a match word.
func Pack(h Header) Bits {
	return Bits(uint64(h.Tag)&(uint64(tagMask))) |
		Bits(uint64(h.Source)<<srcShift)&srcMask |
		Bits(uint64(h.Context)<<ctxShift)&ctxMask
}

// Unpack decodes a match word back into a header.
func (b Bits) Unpack() Header {
	return Header{
		Context: uint16((b & ctxMask) >> ctxShift),
		Source:  int32((b & srcMask) >> srcShift),
		Tag:     int32(b & tagMask),
	}
}

// PackRecv encodes a receive's criteria as a match word and a mask whose
// set bits mark positions that must compare equal ("don't care" bits are
// clear, as in the ALPU cell's compare logic, §III-A).
func PackRecv(r Recv) (Bits, Bits) {
	mask := FullMask
	h := Header{Context: r.Context}
	if r.Source == AnySource {
		mask &^= srcMask
	} else {
		h.Source = r.Source
	}
	if r.Tag == AnyTag {
		mask &^= tagMask
	} else {
		h.Tag = r.Tag
	}
	return Pack(h), mask
}

// Matches reports whether two match words agree on every position that both
// masks care about. An exact item (a stored header) carries FullMask.
func Matches(aBits, aMask, bBits, bMask Bits) bool {
	return (aBits^bBits)&aMask&bMask == 0
}

// RecvMatches reports whether a posted receive's criteria select a header.
func RecvMatches(r Recv, h Header) bool {
	rb, rm := PackRecv(r)
	return Matches(rb, rm, Pack(h), FullMask)
}

// Entry is one element of a matching queue. The same structure backs both
// the posted receive queue (Bits/Mask from PackRecv) and the unexpected
// queue (Bits from Pack, Mask = FullMask).
type Entry struct {
	Bits Bits
	Mask Bits
	Seq  uint64 // posting order, for ordering-constraint checks
	Addr uint64 // simulated NIC-memory address (drives the cache model)
	Req  any    // owning request or unexpected-message record
}

// List is the baseline software queue: a linear list traversed in posting
// order, as in MPICH/LAM/MPI-Pro/MPICH2/LA-MPI (§II).
type List struct {
	entries []*Entry
	seq     uint64
}

// Len returns the number of queued entries.
func (l *List) Len() int { return len(l.entries) }

// At returns the i-th oldest entry.
func (l *List) At(i int) *Entry { return l.entries[i] }

// Append adds e at the tail (newest), stamping its Seq.
func (l *List) Append(e *Entry) {
	l.seq++
	e.Seq = l.seq
	l.entries = append(l.entries, e)
}

// FindFirst returns the index of the first (oldest) entry matching the
// probe, or -1. This is the pure matching function; traversal *cost* is
// charged by the firmware that walks the list.
func (l *List) FindFirst(probeBits, probeMask Bits) int {
	for i, e := range l.entries {
		if Matches(e.Bits, e.Mask, probeBits, probeMask) {
			return i
		}
	}
	return -1
}

// FindFrom behaves like FindFirst but starts at index from (used to search
// only the portion of the queue not yet loaded into the ALPU, §IV-D).
func (l *List) FindFrom(from int, probeBits, probeMask Bits) int {
	for i := from; i < len(l.entries); i++ {
		e := l.entries[i]
		if Matches(e.Bits, e.Mask, probeBits, probeMask) {
			return i
		}
	}
	return -1
}

// RemoveAt deletes and returns the i-th entry, preserving order.
func (l *List) RemoveAt(i int) *Entry {
	e := l.entries[i]
	copy(l.entries[i:], l.entries[i+1:])
	l.entries[len(l.entries)-1] = nil
	l.entries = l.entries[:len(l.entries)-1]
	return e
}

// IndexOf returns the position of e, or -1.
func (l *List) IndexOf(e *Entry) int {
	for i, x := range l.entries {
		if x == e {
			return i
		}
	}
	return -1
}
