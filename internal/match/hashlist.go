package match

import "sort"

// HashList is the hash-table queue organisation the paper's §II discusses
// and rejects: search cost drops for exact-match traffic, but insertion
// cost rises (hash + bucket maintenance + ordering bookkeeping), wildcards
// force scans outside the bucket, and MPI's ordering constraint requires a
// sequence-number merge between the bucket and the wildcard list. It is
// retained here as the abl-hash ablation baseline.
//
// Organisation: exact entries hash on the full {context, source, tag}
// triple; entries with any wildcard go to a single ordered side list. A
// probe must consider the oldest candidate from its bucket AND the side
// list and pick the lower sequence number, otherwise ordering (§II) breaks.
type HashList struct {
	buckets map[Bits][]*Entry // key: exact match word
	wild    []*Entry          // entries whose mask != FullMask, in order
	seq     uint64
	size    int

	// Cost accounting for the ablation benches: abstract "steps" that the
	// firmware translates into memory touches.
	InsertSteps uint64
	SearchSteps uint64
}

// NewHashList returns an empty hash-organised queue.
func NewHashList() *HashList {
	return &HashList{buckets: make(map[Bits][]*Entry)}
}

// Len returns the number of queued entries.
func (h *HashList) Len() int { return h.size }

// Append inserts e, stamping Seq.
func (h *HashList) Append(e *Entry) {
	h.seq++
	e.Seq = h.seq
	h.size++
	// Hashing + bucket append costs more than a list append: hash compute,
	// bucket lookup, tail pointer update (the paper: "can also significantly
	// increase the time needed to insert an entry").
	h.InsertSteps += 3
	if e.Mask != FullMask {
		h.wild = append(h.wild, e)
		return
	}
	h.buckets[e.Bits] = append(h.buckets[e.Bits], e)
}

// FindFirst locates the oldest entry matching the probe, honouring MPI
// ordering across the bucket and wildcard list. It returns the entry or
// nil. Exact probes (probeMask == FullMask) are O(1) + wildcard-list scan;
// wildcard probes degrade to a full scan of all buckets.
func (h *HashList) FindFirst(probeBits, probeMask Bits) *Entry {
	// Oldest matching exact entry. Within a bucket all entries share the
	// same match word, so only the FIFO head can be the first match.
	var bucketBest *Entry
	if probeMask == FullMask {
		h.SearchSteps++ // hash + bucket head
		if b := h.buckets[probeBits]; len(b) > 0 {
			bucketBest = b[0]
		}
	} else {
		// Wildcard probe (unexpected-queue search by a wildcard receive):
		// the hash gives no leverage; scan every bucket (§II: "hashing is
		// also complicated by the need to support wildcard matching").
		for _, b := range h.buckets {
			h.SearchSteps++
			if len(b) > 0 && Matches(b[0].Bits, b[0].Mask, probeBits, probeMask) {
				if bucketBest == nil || b[0].Seq < bucketBest.Seq {
					bucketBest = b[0]
				}
			}
		}
	}

	// Oldest matching wildcard entry: the side list is in posting order.
	var wildBest *Entry
	for _, e := range h.wild {
		h.SearchSteps++
		if Matches(e.Bits, e.Mask, probeBits, probeMask) {
			wildBest = e
			break
		}
	}

	// MPI ordering: the overall first match is the one posted earlier.
	switch {
	case bucketBest == nil:
		return wildBest
	case wildBest == nil:
		return bucketBest
	case wildBest.Seq < bucketBest.Seq:
		return wildBest
	default:
		return bucketBest
	}
}

// InsertOrdered inserts e preserving its existing Seq stamp, keeping the
// bucket (or the wildcard side list) in ascending-Seq order. Append stamps
// a fresh sequence number and so may only grow the tail; shard overflow
// demotion and failover rebuild re-insert entries that already carry their
// posting-order stamp — possibly older than entries already present.
func (h *HashList) InsertOrdered(e *Entry) {
	h.size++
	h.InsertSteps += 3
	if e.Seq > h.seq {
		h.seq = e.Seq
	}
	if e.Mask != FullMask {
		h.wild = insertBySeq(h.wild, e)
		return
	}
	h.buckets[e.Bits] = insertBySeq(h.buckets[e.Bits], e)
}

// insertBySeq places e into s keeping ascending Seq. The scan runs from
// the tail: the common case (promotion churn re-adding the newest demoted
// entry) appends, while a demoted old entry walks to the front.
func insertBySeq(s []*Entry, e *Entry) []*Entry {
	i := len(s)
	for i > 0 && s[i-1].Seq > e.Seq {
		i--
	}
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

// Ordered returns every queued entry in posting (Seq) order. The bucket
// map iterates in random order, so the collected slice is explicitly
// sorted — callers that rebuild another structure from a HashList (shard
// failover, overflow demotion) must use this, never a raw map walk, or
// the rebuilt order varies run to run.
func (h *HashList) Ordered() []*Entry {
	out := make([]*Entry, 0, h.size)
	for _, b := range h.buckets {
		out = append(out, b...)
	}
	out = append(out, h.wild...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Drain returns every entry in posting order and empties the queue. The
// cost-accounting counters survive: a drain is bookkeeping, not matching.
func (h *HashList) Drain() []*Entry {
	out := h.Ordered()
	h.buckets = make(map[Bits][]*Entry)
	h.wild = nil
	h.size = 0
	return out
}

// Remove deletes e from whichever structure holds it.
func (h *HashList) Remove(e *Entry) bool {
	if e.Mask != FullMask {
		for i, x := range h.wild {
			if x == e {
				h.wild = append(h.wild[:i], h.wild[i+1:]...)
				h.size--
				return true
			}
		}
		return false
	}
	b := h.buckets[e.Bits]
	for i, x := range b {
		if x == e {
			b = append(b[:i], b[i+1:]...)
			if len(b) == 0 {
				delete(h.buckets, e.Bits)
			} else {
				h.buckets[e.Bits] = b
			}
			h.size--
			return true
		}
	}
	return false
}
