package mpi

import (
	"fmt"
	"sort"

	"alpusim/internal/sim"
)

// Comm is a communicator handle held by one rank: a context id (the
// system-assigned safe matching space of §II) plus the ordered group of
// participating world ranks. MPI_COMM_WORLD is Comm() on any rank;
// Split derives new communicators, each with a fresh context, so traffic
// in one communicator can never match receives of another — the property
// the ALPU's context field exists to preserve.
type Comm struct {
	r     *Rank
	ctx   uint16
	ranks []int // world ranks, indexed by local rank
	local int   // this process's local rank
	seq   int   // per-communicator collective/split sequence number
}

// Comm returns this rank's MPI_COMM_WORLD handle.
func (r *Rank) Comm() *Comm {
	ranks := make([]int, r.Size())
	for i := range ranks {
		ranks[i] = i
	}
	return &Comm{r: r, ctx: worldContext, ranks: ranks, local: r.id}
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.local }

// Size returns the communicator's group size.
func (c *Comm) Size() int { return len(c.ranks) }

// Context exposes the context id (tests and instrumentation).
func (c *Comm) Context() uint16 { return c.ctx }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(local int) int { return c.ranks[local] }

// Isend starts a nonblocking send to a communicator rank.
func (c *Comm) Isend(dst, tag, size int) *Request {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d of comm size %d", dst, c.Size()))
	}
	// The envelope's source is the sender's rank within this communicator
	// (§II: "the local rank of the sending process within the
	// communicator").
	return c.r.isendAs(c.ctx, uint16(c.local), c.ranks[dst], tag, size)
}

// Irecv posts a nonblocking receive on the communicator. src may be
// AnySource.
func (c *Comm) Irecv(src, tag, size int) *Request {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		panic(fmt.Sprintf("mpi: Irecv from invalid rank %d of comm size %d", src, c.Size()))
	}
	return c.r.irecv(c.ctx, src, tag, size)
}

// Iprobe checks for a waiting unexpected message on the communicator.
func (c *Comm) Iprobe(src, tag int) (bool, Status) {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		panic(fmt.Sprintf("mpi: Iprobe from invalid rank %d of comm size %d", src, c.Size()))
	}
	return c.r.iprobe(c.ctx, src, tag)
}

// Send is the blocking send.
func (c *Comm) Send(dst, tag, size int) { c.r.Wait(c.Isend(dst, tag, size)) }

// Recv is the blocking receive.
func (c *Comm) Recv(src, tag, size int) { c.r.Wait(c.Irecv(src, tag, size)) }

// Reserved tag space for communicator-internal traffic (collectives,
// Split exchanges). User tags should stay below commTagBase.
const (
	commTagBase = 0x7000
	tagSplit    = commTagBase + 0x000
	tagBcast    = commTagBase + 0x100
	tagReduce   = commTagBase + 0x200
	tagGather   = commTagBase + 0x300
	tagAlltoall = commTagBase + 0x400
	tagDissem   = commTagBase + 0x500
	tagScatter  = commTagBase + 0x600
	tagAllgath  = commTagBase + 0x700
)

// Split partitions the communicator by color, ordering each new group by
// (key, rank) — MPI_Comm_split. It is collective: every member must call
// it in the same program order. The color/key exchange happens with real
// messages (an allgather over the parent communicator), and the new
// context id is assigned consistently on every member through the
// world-level context table.
func (c *Comm) Split(color, key int) *Comm {
	c.seq++
	n := c.Size()
	// Allgather (color, key) over the parent communicator: linear gather
	// to local rank 0 followed by a broadcast, on reserved tags. Values
	// ride in the message tag-free: the simulation does not model
	// payloads, so the exchange is mirrored through the world (the
	// messages themselves still cross the simulated network with real
	// sizes and matching).
	type ck struct{ color, key, world int }
	all := make([]ck, n)
	all[c.local] = ck{color, key, c.r.id}
	// The world-level blackboard carries the values; the messages carry
	// the synchronisation. Deterministic lock-step makes this exact.
	board := c.r.w.splitBoard(c.ctx, c.seq, n)
	board[c.local] = ck{color, key, c.r.id}

	gtag := tagSplit + (c.seq&0x7f)<<1
	if c.local == 0 {
		for src := 1; src < n; src++ {
			c.Recv(src, gtag, 8)
		}
		for dst := 1; dst < n; dst++ {
			c.Send(dst, gtag+1, 8*n)
		}
	} else {
		c.Send(0, gtag, 8)
		c.Recv(0, gtag+1, 8*n)
	}
	for i := 0; i < n; i++ {
		all[i] = board[i].(ck)
	}

	// Select my color group, order by (key, world rank).
	var group []ck
	for _, e := range all {
		if e.color == color {
			group = append(group, e)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].world < group[j].world
	})
	ranks := make([]int, len(group))
	local := -1
	for i, e := range group {
		ranks[i] = e.world
		if e.world == c.r.id {
			local = i
		}
	}
	ctx := c.r.w.allocContext(fmt.Sprintf("split:%d:%d:%d", c.ctx, c.seq, color))
	return &Comm{r: c.r, ctx: ctx, ranks: ranks, local: local}
}

// Dup returns a communicator with the same group but a fresh context
// (MPI_Comm_dup): same-group traffic on the two communicators can never
// cross-match.
func (c *Comm) Dup() *Comm {
	c.seq++
	ctx := c.r.w.allocContext(fmt.Sprintf("dup:%d:%d", c.ctx, c.seq))
	ranks := make([]int, len(c.ranks))
	copy(ranks, c.ranks)
	// Synchronise the group (a dup is collective): dissemination barrier
	// on the parent context.
	c.barrierOn(c.ctx, c.seq)
	return &Comm{r: c.r, ctx: ctx, ranks: ranks, local: c.local}
}

// Barrier synchronises the communicator with a dissemination barrier:
// log2(n) rounds of pairwise messages.
func (c *Comm) Barrier() {
	c.seq++
	c.barrierOn(c.ctx, c.seq)
}

func (c *Comm) barrierOn(ctx uint16, seq int) {
	n := c.Size()
	if n == 1 {
		return
	}
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := (c.local + dist) % n
		from := (c.local - dist + n) % n
		tag := tagDissem + (seq&0xf)<<4 + round
		sreq := c.r.isendAs(ctx, uint16(c.local), c.ranks[to], tag, 0)
		rreq := c.r.irecv(ctx, from, tag, 0)
		c.r.Wait(sreq)
		c.r.Wait(rreq)
	}
}

// Bcast broadcasts size bytes from root with a binomial tree
// (MPI_Bcast).
func (c *Comm) Bcast(root, size int) {
	c.seq++
	n := c.Size()
	if n == 1 {
		return
	}
	// Rotate so the root is virtual rank 0.
	vrank := (c.local - root + n) % n
	tag := tagBcast + c.seq&0xff

	// Receive from the parent (highest set bit), then forward down.
	if vrank != 0 {
		parent := vrank &^ (1 << (bitLen(vrank) - 1))
		c.Recv((parent+root)%n, tag, size)
	}
	for dist := nextPow2(vrank + 1); dist < n; dist *= 2 {
		child := vrank + dist
		if child < n {
			c.Send((child+root)%n, tag, size)
		}
	}
}

// Reduce combines size bytes from every rank at root with a reversed
// binomial tree (MPI_Reduce). Payload contents are not modelled; the
// traffic and matching are.
func (c *Comm) Reduce(root, size int) {
	c.seq++
	n := c.Size()
	if n == 1 {
		return
	}
	vrank := (c.local - root + n) % n
	tag := tagReduce + c.seq&0xff

	for dist := 1; dist < n; dist *= 2 {
		if vrank&dist != 0 {
			// Send my partial to the partner and leave the tree.
			c.Send((vrank-dist+root)%n, tag, size)
			return
		}
		if vrank+dist < n {
			c.Recv((vrank+dist+root)%n, tag, size)
			c.r.Compute(reduceComputeTime(size))
		}
	}
}

// Allreduce is Reduce to rank 0 followed by Bcast (MPI_Allreduce built
// from its parts, as the Fig. 4 footnote does for the composed calls).
func (c *Comm) Allreduce(size int) {
	c.Reduce(0, size)
	c.Bcast(0, size)
}

// Gather collects size bytes from every rank at root (linear).
func (c *Comm) Gather(root, size int) {
	c.seq++
	n := c.Size()
	tag := tagGather + c.seq&0xff
	if c.local == root {
		reqs := make([]*Request, 0, n-1)
		for src := 0; src < n; src++ {
			if src != root {
				reqs = append(reqs, c.Irecv(src, tag, size))
			}
		}
		c.r.Waitall(reqs...)
		return
	}
	c.Send(root, tag, size)
}

// Scatter distributes size bytes from root to every other rank (linear,
// MPI_Scatter).
func (c *Comm) Scatter(root, size int) {
	c.seq++
	n := c.Size()
	tag := tagScatter + c.seq&0xff
	if c.local == root {
		reqs := make([]*Request, 0, n-1)
		for dst := 0; dst < n; dst++ {
			if dst != root {
				reqs = append(reqs, c.Isend(dst, tag, size))
			}
		}
		c.r.Waitall(reqs...)
		return
	}
	c.Recv(root, tag, size)
}

// Allgather makes every rank's size bytes available everywhere with the
// ring algorithm (MPI_Allgather): n-1 rounds, each forwarding the block
// received in the previous round.
func (c *Comm) Allgather(size int) {
	c.seq++
	n := c.Size()
	if n == 1 {
		return
	}
	tag := tagAllgath + c.seq&0xff
	right := (c.local + 1) % n
	left := (c.local - 1 + n) % n
	for round := 0; round < n-1; round++ {
		c.Sendrecv(right, tag, size, left, tag, size)
	}
}

// Alltoall exchanges size bytes between every pair (rotation algorithm:
// in round k, send to rank+k and receive from rank-k).
func (c *Comm) Alltoall(size int) {
	c.seq++
	n := c.Size()
	tag := tagAlltoall + c.seq&0xff
	for round := 1; round < n; round++ {
		to := (c.local + round) % n
		from := (c.local - round + n) % n
		c.Sendrecv(to, tag, size, from, tag, size)
	}
}

// Sendrecv runs a send and a receive concurrently and waits for both
// (MPI_Sendrecv).
func (c *Comm) Sendrecv(dst, stag, ssize, src, rtag, rsize int) {
	rreq := c.Irecv(src, rtag, rsize)
	sreq := c.Isend(dst, stag, ssize)
	c.r.Wait(sreq)
	c.r.Wait(rreq)
}

// reduceComputeTime models the per-step combine cost of a reduction.
func reduceComputeTime(size int) sim.Time {
	const bytesPerNs = 4 // host-side combine bandwidth (fit)
	ns := size / bytesPerNs
	if ns < 50 {
		ns = 50
	}
	return sim.Time(ns) * sim.Nanosecond
}

// bitLen returns the number of bits needed to represent v (v > 0).
func bitLen(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// nextPow2 returns the smallest power of two >= v.
func nextPow2(v int) int {
	p := 1
	for p < v {
		p *= 2
	}
	return p
}
