package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alpusim/internal/network"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

// worldOutputs captures every observable byte stream a partitioned run
// must reproduce identically at any partition count: the soak matching
// digest, the rendered telemetry table, the merged trace JSON, the phase
// totals, and the fault counters.
type worldOutputs struct {
	digest uint64
	table  string
	trace  string
	phases string
	faults string
	series string
}

func partitionedOutputs(t *testing.T, parts int, withFaults bool) worldOutputs {
	t.Helper()
	const ranks = 8
	plan := buildSoakPlan(rand.New(rand.NewSource(23)), ranks, 64)
	tracer := telemetry.NewTracer()
	phases := telemetry.NewPhases()
	sampler := telemetry.NewSampler(0, 0)
	cfg := Config{
		Ranks:      ranks,
		Partitions: parts,
		Tracer:     tracer,
		Phases:     phases,
		Series:     sampler,
	}
	if withFaults {
		cfg.Faults = &network.FaultModel{
			Seed: 42, DropProb: 0.02, DupProb: 0.02, ReorderProb: 0.02, CorruptProb: 0.01,
		}
	}
	digest, w := soakMatchDigest(t, fmt.Sprintf("par%d", parts), cfg, plan, ranks)
	var buf bytes.Buffer
	if err := telemetry.WriteTrace(&buf, tracer); err != nil {
		t.Fatalf("par%d: trace: %v", parts, err)
	}
	var ts bytes.Buffer
	if err := sampler.WriteJSON(&ts); err != nil {
		t.Fatalf("par%d: timeseries: %v", parts, err)
	}
	return worldOutputs{
		digest: digest,
		table:  w.TelemetrySnapshot().Table(),
		trace:  buf.String(),
		phases: fmt.Sprintf("%+v", phases.Totals()),
		faults: w.Net.FaultStats().String(),
		series: ts.String(),
	}
}

// TestPartitionedCanonicalDeterminism is the tentpole acceptance check at
// package level: the same world produces byte-identical observables at
// every Partitions >= 1 — partitioning decides what runs concurrently,
// never what the simulation computes. Checked clean and under the chaos
// fault mix (where the per-source fault streams must also be layout
// invariant).
func TestPartitionedCanonicalDeterminism(t *testing.T) {
	for _, faults := range []bool{false, true} {
		name := "clean"
		if faults {
			name = "faults"
		}
		t.Run(name, func(t *testing.T) {
			ref := partitionedOutputs(t, 1, faults)
			if ref.trace == "" || !strings.Contains(ref.table, "\n") {
				t.Fatal("reference run produced empty observables")
			}
			if !strings.Contains(ref.series, "nic0/posted/depth") {
				t.Fatalf("reference run produced no time series:\n%s", ref.series)
			}
			for _, parts := range []int{2, 3, 4, 8} {
				got := partitionedOutputs(t, parts, faults)
				if got.digest != ref.digest {
					t.Errorf("par%d: match digest %#x != par1 %#x", parts, got.digest, ref.digest)
				}
				if got.table != ref.table {
					t.Errorf("par%d: telemetry table diverged from par1:\n--- par1\n%s\n--- par%d\n%s",
						parts, ref.table, parts, got.table)
				}
				if got.trace != ref.trace {
					t.Errorf("par%d: trace bytes diverged from par1 (%d vs %d bytes)",
						parts, len(got.trace), len(ref.trace))
				}
				if got.phases != ref.phases {
					t.Errorf("par%d: phase totals %s != par1 %s", parts, got.phases, ref.phases)
				}
				if got.faults != ref.faults {
					t.Errorf("par%d: fault stats %s != par1 %s", parts, got.faults, ref.faults)
				}
				if got.series != ref.series {
					t.Errorf("par%d: time-series bytes diverged from par1:\n--- par1\n%s\n--- par%d\n%s",
						parts, ref.series, parts, got.series)
				}
			}
		})
	}
}

// runRecoveringWatchdog runs progs and returns the recovered watchdog
// error (nil if the world drained).
func runRecoveringWatchdog(cfg Config, progs []Program) (err *sim.WatchdogError) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if err, ok = r.(*sim.WatchdogError); !ok {
				panic(r)
			}
		}
	}()
	RunPrograms(cfg, progs)
	return nil
}

// livelockPair builds 4-rank programs where ranks a and b ping-pong
// forever while the others finish immediately.
func livelockPair(a, b int) []Program {
	progs := make([]Program, 4)
	for i := range progs {
		i := i
		switch i {
		case a:
			progs[i] = func(r *Rank) {
				for {
					r.Send(b, 1, 64)
					r.Recv(b, 2, 64)
				}
			}
		case b:
			progs[i] = func(r *Rank) {
				for {
					r.Recv(a, 1, 64)
					r.Send(a, 2, 64)
				}
			}
		default:
			progs[i] = func(*Rank) {}
		}
	}
	return progs
}

// TestPartitionedWatchdogNonMainPartition pins the regression the
// partition runner makes possible: a stall confined to a partition other
// than the coordinator's must still trip the watchdog, and the flight
// recorder must still dump. Ranks 2 and 3 (partition 1 of 2) livelock
// while partition 0 drains completely.
func TestPartitionedWatchdogNonMainPartition(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "flight.json")
	cfg := Config{
		Ranks:          4,
		Partitions:     2,
		WatchdogLimit:  2 * sim.Millisecond,
		FlightDumpPath: dump,
	}
	err := runRecoveringWatchdog(cfg, livelockPair(2, 3))
	if err == nil {
		t.Fatal("livelocked non-main partition did not trip the watchdog")
	}
	if !strings.Contains(err.Dump, "rank2") && !strings.Contains(err.Dump, "rank3") {
		t.Errorf("watchdog dump does not name the stalled ranks:\n%s", err.Dump)
	}
	if !strings.Contains(err.Dump, "faults:") {
		t.Errorf("watchdog dump is missing the model diagnostics:\n%s", err.Dump)
	}
	data, ferr := os.ReadFile(dump)
	if ferr != nil {
		t.Fatalf("flight recorder did not dump: %v", ferr)
	}
	if !bytes.Contains(data, []byte(`"ph"`)) {
		t.Errorf("flight dump %q does not look like trace JSON", dump)
	}
}

// TestPartitionedWatchdogCrossPartition livelocks ranks 0 and 3 — on
// different partitions, so each partition repeatedly drains, disarms its
// watchdog poller, and is re-armed by the barrier's injection Poke. The
// stall must still be caught.
func TestPartitionedWatchdogCrossPartition(t *testing.T) {
	cfg := Config{
		Ranks:         4,
		Partitions:    2,
		WatchdogLimit: 2 * sim.Millisecond,
		FlightEvents:  -1,
	}
	if err := runRecoveringWatchdog(cfg, livelockPair(0, 3)); err == nil {
		t.Fatal("cross-partition livelock did not trip the watchdog")
	}
}

// TestPartitionedDrainsClean checks a partitioned world still satisfies
// the serial invariants: all queues empty, no ranks blocked, watchdog
// armed but silent.
func TestPartitionedDrainsClean(t *testing.T) {
	const ranks = 6
	plan := buildSoakPlan(rand.New(rand.NewSource(5)), ranks, 48)
	cfg := alpuCfg(ranks, 32)
	cfg.Partitions = 3
	cfg.WatchdogLimit = 50 * sim.Millisecond
	cfg.FlightEvents = -1
	soakMatchDigest(t, "par-alpu", cfg, plan, ranks)
}
