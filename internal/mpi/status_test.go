package mpi

import "testing"

func TestStatusExplicitRecv(t *testing.T) {
	for name, cfg := range map[string]Config{"baseline": baseCfg(2), "alpu": alpuCfg(2, 64)} {
		t.Run(name, func(t *testing.T) {
			Run(cfg, func(r *Rank) {
				if r.Rank() == 0 {
					r.Send(1, 42, 128)
				} else {
					req := r.Irecv(0, 42, 128)
					r.Wait(req)
					st := req.Status()
					if st.Source != 0 || st.Tag != 42 || st.Size != 128 {
						t.Errorf("status = %+v, want src 0 tag 42 size 128", st)
					}
				}
			})
		})
	}
}

func TestStatusAnySourceIdentifiesSender(t *testing.T) {
	// Three senders, one AnySource receiver: the status must reveal who
	// each message came from (the §II reason ANY_SOURCE codes cannot just
	// be rewritten with explicit sources).
	Run(alpuCfg(4, 64), func(r *Rank) {
		if r.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				req := r.Irecv(AnySource, 7, 0)
				r.Wait(req)
				st := req.Status()
				if st.Tag != 7 {
					t.Errorf("tag = %d", st.Tag)
				}
				if st.Source < 1 || st.Source > 3 || seen[st.Source] {
					t.Errorf("bad or duplicate source %d", st.Source)
				}
				seen[st.Source] = true
			}
		} else {
			r.Send(0, 7, 0)
		}
	})
}

func TestStatusAnyTag(t *testing.T) {
	Run(baseCfg(2), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 1234, 64)
		} else {
			req := r.Irecv(0, AnyTag, 64)
			r.Wait(req)
			if st := req.Status(); st.Tag != 1234 {
				t.Errorf("AnyTag status tag = %d, want 1234", st.Tag)
			}
		}
	})
}

func TestStatusRendezvous(t *testing.T) {
	// The status must survive the rendezvous path (captured at RTS match,
	// delivered at DATA completion), both expected and unexpected.
	Run(baseCfg(2), func(r *Rank) {
		const big = 32 << 10
		if r.Rank() == 0 {
			r.Send(1, 5, big) // expected at rank 1 (receive posted first)
			req := r.Isend(1, 6, big)
			r.Barrier() // rank 1 hasn't posted: unexpected RTS
			r.Wait(req)
		} else {
			req := r.Irecv(0, 5, big)
			r.Wait(req)
			if st := req.Status(); st.Source != 0 || st.Tag != 5 || st.Size != big {
				t.Errorf("expected-rndv status = %+v", st)
			}
			r.Barrier()
			req = r.Irecv(0, AnyTag, big)
			r.Wait(req)
			if st := req.Status(); st.Source != 0 || st.Tag != 6 || st.Size != big {
				t.Errorf("unexpected-rndv status = %+v", st)
			}
		}
	})
}

func TestStatusUnexpectedEager(t *testing.T) {
	Run(alpuCfg(2, 64), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 9, 256)
			r.Barrier()
		} else {
			r.Barrier() // message is unexpected by now
			req := r.Irecv(AnySource, AnyTag, 256)
			r.Wait(req)
			if st := req.Status(); st.Source != 0 || st.Tag != 9 || st.Size != 256 {
				t.Errorf("unexpected-eager status = %+v", st)
			}
		}
	})
}

func TestStatusSendIsZero(t *testing.T) {
	Run(baseCfg(2), func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(1, 1, 0)
			r.Wait(req)
			if st := req.Status(); st.Source != -1 || st.Tag != -1 {
				t.Errorf("send status = %+v, want invalid sentinel", st)
			}
		} else {
			r.Recv(0, 1, 0)
		}
	})
}
