package mpi

import (
	"math/rand"
	"testing"

	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/sim"
)

// The chaos soak: the random-traffic soak plan of soak_test.go, run over a
// faulty network with the NIC reliability protocol recovering. The
// invariant is the strongest the model offers: the matching outcome (which
// sender and tag each posted receive resolved to, and its size) must be
// byte-identical to the fault-free run — drops, duplicates, reordering and
// corruption may cost time, never correctness.

// chaosWatchdog bounds each faulty world; a correct protocol drains these
// plans in well under a simulated millisecond.
const chaosWatchdog = 100 * sim.Millisecond

// chaosMixes is the fault matrix: each class alone at >=1%, then all
// together (the ISSUE acceptance mix).
func chaosMixes() map[string]network.FaultModel {
	return map[string]network.FaultModel{
		"drop":    {DropProb: 0.02},
		"dup":     {DupProb: 0.02},
		"reorder": {ReorderProb: 0.05},
		"corrupt": {CorruptProb: 0.02},
		"all":     {DropProb: 0.01, DupProb: 0.01, ReorderProb: 0.01, CorruptProb: 0.01},
	}
}

// soakMatchDigest runs the plan and folds every receive's matching outcome
// into an FNV-1a digest, rank by rank in plan order — deliberately
// independent of completion timing, which faults are allowed to change.
func soakMatchDigest(t *testing.T, label string, cfg Config, plan []soakOp, ranks int) (uint64, *World) {
	t.Helper()
	statuses := make([][]Status, ranks)
	progs := make([]Program, ranks)
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		progs[rank] = func(r *Rank) {
			var reqs []*Request
			for _, op := range plan {
				if op.dst != rank {
					continue
				}
				src := op.src
				if op.wildcard {
					src = AnySource
				}
				reqs = append(reqs, r.Irecv(src, op.tag, op.size))
			}
			r.Barrier()
			for _, op := range plan {
				if op.src != rank {
					continue
				}
				r.Wait(r.Isend(op.dst, op.tag, op.size))
			}
			for _, req := range reqs {
				r.Wait(req)
				statuses[rank] = append(statuses[rank], req.Status())
			}
			r.Barrier()
		}
	}
	w := RunPrograms(cfg, progs)
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 0x100000001b3
		}
	}
	for rank, sts := range statuses {
		for i, st := range sts {
			mix(uint64(rank))
			mix(uint64(i))
			mix(uint64(int64(st.Source)))
			mix(uint64(int64(st.Tag)))
			mix(uint64(int64(st.Size)))
		}
	}
	if label != "" {
		for i, n := range w.NICs {
			if n.PostedLen() != 0 || n.UnexpLen() != 0 {
				t.Errorf("%s nic%d: leftovers posted=%d unexp=%d",
					label, i, n.PostedLen(), n.UnexpLen())
			}
			if p := n.RelPending(); p != 0 {
				t.Errorf("%s nic%d: %d reliability packets still outstanding after drain",
					label, i, p)
			}
		}
	}
	return h, w
}

// relTotals sums the reliability counters over all NICs.
func relTotals(w *World) nic.RelStats {
	var tot nic.RelStats
	for _, n := range w.NICs {
		r := n.Rel()
		tot.DataSent += r.DataSent
		tot.Retransmits += r.Retransmits
		tot.Timeouts += r.Timeouts
		tot.AcksSent += r.AcksSent
		tot.NacksSent += r.NacksSent
		tot.RNRSent += r.RNRSent
		tot.CsumDrops += r.CsumDrops
		tot.DupDrops += r.DupDrops
		tot.GapDrops += r.GapDrops
		tot.Recoveries += r.Recoveries
	}
	return tot
}

// TestChaosSoakMatchesFaultFree is the acceptance gate: every fault mix,
// over both the baseline and an ALPU NIC, must reproduce the fault-free
// matching digest exactly, with the reliability engine visibly working.
func TestChaosSoakMatchesFaultFree(t *testing.T) {
	const ranks = 4
	msgs := 48
	if testing.Short() {
		msgs = 24
	}
	plan := buildSoakPlan(rand.New(rand.NewSource(11)), ranks, msgs)
	configs := map[string]Config{
		"baseline": baseCfg(ranks),
		"alpu64":   alpuCfg(ranks, 64),
	}
	for cfgName, cfg := range configs {
		clean, _ := soakMatchDigest(t, cfgName+"/clean", cfg, plan, ranks)
		for mixName, fm := range chaosMixes() {
			fm := fm
			fm.Seed = 42
			faulty := cfg
			faulty.Faults = &fm
			faulty.WatchdogLimit = chaosWatchdog
			got, w := soakMatchDigest(t, cfgName+"/"+mixName, faulty, plan, ranks)
			if got != clean {
				t.Errorf("%s/%s: matching digest %#x != fault-free %#x",
					cfgName, mixName, got, clean)
			}
			fs := w.Net.FaultStats()
			if fs.Total() == 0 {
				t.Errorf("%s/%s: fault model injected nothing", cfgName, mixName)
			}
			rel := relTotals(w)
			switch mixName {
			case "drop", "all":
				if rel.Retransmits == 0 {
					t.Errorf("%s/%s: %d drops but zero retransmits", cfgName, mixName, fs.Dropped)
				}
			case "dup":
				if rel.DupDrops == 0 {
					t.Errorf("%s/%s: %d duplicates but zero dup discards", cfgName, mixName, fs.Duplicated)
				}
			case "corrupt":
				if rel.CsumDrops == 0 {
					t.Errorf("%s/%s: %d corruptions but zero checksum discards", cfgName, mixName, fs.Corrupted)
				}
			}
			if mixName == "all" && rel.NacksSent == 0 && rel.Timeouts == 0 {
				t.Errorf("%s/all: no NACKs and no timeouts despite %d dropped/reordered",
					cfgName, fs.Dropped+fs.Reordered)
			}
		}
	}
}

// TestChaosSameSeedDeterministic re-runs one chaotic world and requires the
// injected fault sequence, the reliability counters, and the completion
// digest to be bit-identical — the property the CI determinism check and
// the -seed flag rest on.
func TestChaosSameSeedDeterministic(t *testing.T) {
	const ranks = 4
	plan := buildSoakPlan(rand.New(rand.NewSource(5)), ranks, 32)
	run := func() (uint64, network.FaultStats, nic.RelStats) {
		cfg := alpuCfg(ranks, 64)
		cfg.Faults = &network.FaultModel{
			Seed: 99, DropProb: 0.02, DupProb: 0.02, ReorderProb: 0.02, CorruptProb: 0.02,
		}
		cfg.WatchdogLimit = chaosWatchdog
		digest, w := soakMatchDigest(t, "", cfg, plan, ranks)
		return digest, w.Net.FaultStats(), relTotals(w)
	}
	d1, f1, r1 := run()
	d2, f2, r2 := run()
	if d1 != d2 {
		t.Errorf("digest diverged: %#x vs %#x", d1, d2)
	}
	if f1 != f2 {
		t.Errorf("fault stats diverged: %+v vs %+v", f1, f2)
	}
	if r1 != r2 {
		t.Errorf("reliability stats diverged: %+v vs %+v", r1, r2)
	}
}

// TestChaosRNRBackpressure forces the graceful-degradation path
// deterministically: a sender bursts eager messages at a receiver that
// posts no receives for a long while, with a tightly bounded unexpected
// queue. The old behaviour was unbounded queue growth; now the receiver
// must refuse admission with RNR NACKs and the sender must back off and
// recover every message once the receives appear.
func TestChaosRNRBackpressure(t *testing.T) {
	const burst = 24
	cfg := baseCfg(2)
	cfg.NIC.Reliable = true
	cfg.NIC.MaxUnexpected = 4
	cfg.NIC.RxQDepth = 8
	cfg.WatchdogLimit = chaosWatchdog
	progs := []Program{
		func(r *Rank) {
			for i := 0; i < burst; i++ {
				r.Wait(r.Isend(1, i, 64))
			}
		},
		func(r *Rank) {
			// Let the burst pile up against the bounded queue first.
			r.Compute(200 * sim.Microsecond)
			for i := 0; i < burst; i++ {
				r.Recv(0, i, 64)
			}
		},
	}
	w := RunPrograms(cfg, progs)
	rel := relTotals(w)
	if rel.RNRSent == 0 {
		t.Errorf("bounded unexpected queue never refused admission (RNRSent=0); rel=%+v", rel)
	}
	if rel.Retransmits == 0 {
		t.Errorf("RNR backpressure without recovery retransmits; rel=%+v", rel)
	}
	if got := w.NICs[1].UnexpLen(); got != 0 {
		t.Errorf("unexpected queue not drained: %d", got)
	}
	if p := relTotals(w); p.DataSent == 0 {
		t.Errorf("no sequenced traffic recorded: %+v", p)
	}
}

// TestChaosWatchdogCatchesStall wires a world that can never finish — a
// rank waits for a message nobody sends, with a pending reliability
// retransmit keeping the event loop alive — and requires the watchdog to
// convert the livelock into a *sim.WatchdogError instead of spinning.
func TestChaosWatchdogCatchesStall(t *testing.T) {
	cfg := baseCfg(2)
	cfg.Faults = &network.FaultModel{Seed: 1, DropProb: 1.0} // every packet lost
	cfg.WatchdogLimit = 2 * sim.Millisecond
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a watchdog panic, got clean completion")
		}
		var werr *sim.WatchdogError
		if pp, ok := r.(*sim.ProcessPanic); ok {
			werr, _ = pp.Value.(*sim.WatchdogError)
		} else {
			werr, _ = r.(*sim.WatchdogError)
		}
		if werr == nil {
			t.Fatalf("expected *sim.WatchdogError, got %v", r)
		}
	}()
	RunPrograms(cfg, []Program{
		func(r *Rank) { r.Send(1, 7, 64) },
		func(r *Rank) { r.Recv(0, 7, 64) },
	})
}
