package mpi

import (
	"strings"
	"testing"

	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

// pingPong is the stall program: two ranks trade messages forever, so
// the event loop never drains and an armed watchdog must expire.
func pingPong(r *Rank) {
	peer := 1 - r.Rank()
	for k := 0; ; k++ {
		if r.Rank() == 0 {
			r.Send(peer, k%64, 8)
			r.Recv(peer, k%64, 8)
		} else {
			r.Recv(peer, k%64, 8)
			r.Send(peer, k%64, 8)
		}
	}
}

// recoverWatchdog runs progs expecting a watchdog expiry and returns it.
func recoverWatchdog(t *testing.T, cfg Config, progs []Program) (werr *sim.WatchdogError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a watchdog panic, got clean completion")
		}
		if pp, ok := r.(*sim.ProcessPanic); ok {
			werr, _ = pp.Value.(*sim.WatchdogError)
		} else {
			werr, _ = r.(*sim.WatchdogError)
		}
		if werr == nil {
			t.Fatalf("expected *sim.WatchdogError, got %v", r)
		}
	}()
	RunPrograms(cfg, progs)
	return nil
}

// A watchdog expiry on a world with a causal recorder names the slowest
// completed chain in its dump — the first thing to look at when a run
// hangs — in both the serial and the partitioned engine.
func TestWatchdogDumpNamesSlowestCausalChain(t *testing.T) {
	for _, parts := range []int{0, 2} {
		cfg := baseCfg(2)
		cfg.WatchdogLimit = 200 * sim.Microsecond
		cfg.Partitions = parts
		cfg.Causal = telemetry.NewCausal()
		werr := recoverWatchdog(t, cfg, []Program{pingPong, pingPong})
		if !strings.Contains(werr.Dump, "slowest causal chain: msg") {
			t.Errorf("par=%d: watchdog dump missing the causal chain line:\n%s",
				parts, werr.Dump)
		}
		if !strings.Contains(werr.Dump, "watchdog: last external progress poke") && parts > 0 {
			t.Errorf("par=%d: partitioned dump missing the last-poke line:\n%s",
				parts, werr.Dump)
		}
	}
}

// A drained world exposes its merged causal recorder: the analysis sees
// every exchanged message and its report passes the structural checks
// at any partition count, identically.
func TestWorldCausalReportPartitionInvariant(t *testing.T) {
	run := func(parts int) telemetry.CausalReport {
		cfg := baseCfg(2)
		cfg.Partitions = parts
		cfg.Causal = telemetry.NewCausal()
		w := RunPrograms(cfg, []Program{
			func(r *Rank) {
				for k := 0; k < 4; k++ {
					r.Send(1, k, 32)
				}
			},
			func(r *Rank) {
				for k := 0; k < 4; k++ {
					r.Recv(0, k, 32)
				}
			},
		})
		rep, ok := w.Causal.Analyze(2)
		if !ok {
			t.Fatalf("par=%d: no causal report", parts)
		}
		return rep
	}
	serial := run(0)
	if serial.Messages < 4 {
		t.Fatalf("causal recorder saw %d messages, want >= 4", serial.Messages)
	}
	pm := 0
	for _, b := range serial.Blame {
		pm += b.Permille
	}
	if pm != 1000 {
		t.Errorf("blame permille sums to %d", pm)
	}
	for _, parts := range []int{1, 2} {
		got := run(parts)
		if got.CriticalPath != serial.CriticalPath || got.Messages != serial.Messages {
			t.Errorf("par=%d report diverged: critpath %v/%v messages %d/%d",
				parts, got.CriticalPath, serial.CriticalPath, got.Messages, serial.Messages)
		}
	}
}
