package mpi

import (
	"math/rand"
	"testing"

	"alpusim/internal/nic"
)

// soakPlan builds a random but deadlock-free traffic plan: a global
// sequence of matched (send, recv) operations with random sources,
// destinations, tags, sizes and wildcard receives. Per receiver, receives
// are posted up front (nonblocking) so arrival order cannot deadlock.
type soakOp struct {
	src, dst int
	tag      int
	size     int
	wildcard bool // receiver uses AnySource (matching still unambiguous per tag)
}

func buildSoakPlan(rng *rand.Rand, ranks, msgs int) []soakOp {
	ops := make([]soakOp, msgs)
	for i := range ops {
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks)
		for dst == src {
			dst = rng.Intn(ranks)
		}
		ops[i] = soakOp{
			src: src,
			dst: dst,
			// Unique tags keep the matching unambiguous so every config
			// must produce the same pairing.
			tag:      i,
			size:     []int{0, 64, 1024, 8192}[rng.Intn(4)],
			wildcard: rng.Intn(3) == 0,
		}
	}
	return ops
}

// TestSoakAllConfigsAgree drives identical random traffic through the
// baseline, hash, and two ALPU NICs. Invariants: every run completes (no
// deadlock), every receive's status names the planned sender, and all
// queues drain.
func TestSoakAllConfigsAgree(t *testing.T) {
	const ranks = 5
	msgs := 60
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	configs := map[string]Config{
		"baseline": baseCfg(ranks),
		"hash":     {Ranks: ranks, NIC: nic.Config{UseHashList: true}},
		"alpu32":   alpuCfg(ranks, 32), // tiny: forces overflow + refill
		"alpu256":  alpuCfg(ranks, 256),
	}
	for _, seed := range seeds {
		plan := buildSoakPlan(rand.New(rand.NewSource(seed)), ranks, msgs)
		for name, cfg := range configs {
			w := RunPrograms(cfg, soakPrograms(t, name, seed, plan, ranks))
			for i, n := range w.NICs {
				if n.PostedLen() != 0 || n.UnexpLen() != 0 {
					t.Errorf("%s seed %d nic%d: leftovers posted=%d unexp=%d",
						name, seed, i, n.PostedLen(), n.UnexpLen())
				}
				if d := n.PostedALPU(); d != nil && d.Occupancy() != n.PostedLen() {
					// The unit may lag the software copy only by entries
					// never inserted; after drain both must be empty.
					t.Errorf("%s seed %d nic%d: ALPU occupancy %d with empty queue",
						name, seed, i, d.Occupancy())
				}
			}
		}
	}
}

func soakPrograms(t *testing.T, cfgName string, seed int64, plan []soakOp, ranks int) []Program {
	progs := make([]Program, ranks)
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		progs[rank] = func(r *Rank) {
			// Post all my receives first, in plan order.
			var reqs []*Request
			var want []soakOp
			for _, op := range plan {
				if op.dst != rank {
					continue
				}
				src := op.src
				if op.wildcard {
					src = AnySource
				}
				reqs = append(reqs, r.Irecv(src, op.tag, op.size))
				want = append(want, op)
			}
			r.Barrier()
			// Fire my sends, interleaving a little compute jitter.
			for _, op := range plan {
				if op.src != rank {
					continue
				}
				r.Wait(r.Isend(op.dst, op.tag, op.size))
			}
			// Collect and verify statuses.
			for i, req := range reqs {
				r.Wait(req)
				st := req.Status()
				if st.Source != want[i].src || st.Tag != want[i].tag {
					t.Errorf("%s seed %d rank %d: recv %d matched src=%d tag=%d, want src=%d tag=%d",
						cfgName, seed, rank, i, st.Source, st.Tag, want[i].src, want[i].tag)
				}
			}
			r.Barrier()
		}
	}
	return progs
}

// TestSoakDeterministicAcrossRuns re-runs one soak configuration and
// requires bit-identical completion times.
func TestSoakDeterministicAcrossRuns(t *testing.T) {
	plan := buildSoakPlan(rand.New(rand.NewSource(7)), 4, 40)
	capture := func() []int64 {
		var times []int64
		RunPrograms(alpuCfg(4, 64), func() []Program {
			progs := make([]Program, 4)
			for rank := 0; rank < 4; rank++ {
				rank := rank
				progs[rank] = func(r *Rank) {
					var reqs []*Request
					for _, op := range plan {
						if op.dst == rank {
							reqs = append(reqs, r.Irecv(op.src, op.tag, op.size))
						}
					}
					r.Barrier()
					for _, op := range plan {
						if op.src == rank {
							r.Wait(r.Isend(op.dst, op.tag, op.size))
						}
					}
					for _, req := range reqs {
						r.Wait(req)
						times = append(times, int64(req.DoneAt()))
					}
				}
			}
			return progs
		}())
		return times
	}
	a, b := capture(), capture()
	if len(a) != len(b) {
		t.Fatalf("different completion counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at completion %d: %d vs %d", i, a[i], b[i])
		}
	}
}
