package mpi

import (
	"testing"

	"alpusim/internal/nic"
	"alpusim/internal/sim"
)

func baseCfg(ranks int) Config {
	return Config{Ranks: ranks}
}

func alpuCfg(ranks, cells int) Config {
	return Config{Ranks: ranks, NIC: nic.Config{UseALPU: true, Cells: cells}}
}

// allConfigs runs a program under the baseline, hash ablation, and ALPU
// NICs — the semantics must be identical everywhere.
func allConfigs(ranks int) map[string]Config {
	return map[string]Config{
		"baseline": baseCfg(ranks),
		"hash":     {Ranks: ranks, NIC: nic.Config{UseHashList: true}},
		"alpu128":  alpuCfg(ranks, 128),
		"alpu16":   alpuCfg(ranks, 16), // tiny ALPU forces overflow handling
	}
}

func TestPingPong(t *testing.T) {
	for name, cfg := range allConfigs(2) {
		t.Run(name, func(t *testing.T) {
			var latency sim.Time
			w := Run(cfg, func(r *Rank) {
				if r.Rank() == 0 {
					start := r.Now()
					r.Send(1, 7, 0)
					r.Recv(1, 8, 0)
					latency = (r.Now() - start) / 2
				} else {
					r.Recv(0, 7, 0)
					r.Send(0, 8, 0)
				}
			})
			if latency <= 0 {
				t.Fatal("non-positive ping-pong latency")
			}
			// A zero-byte half-round-trip on this class of hardware is a
			// couple of microseconds; sanity-bound it.
			if latency < 500*sim.Nanosecond || latency > 10*sim.Microsecond {
				t.Errorf("half-round-trip = %v, expected ~1-5us", latency)
			}
			for i, n := range w.NICs {
				if n.PostedLen() != 0 || n.UnexpLen() != 0 {
					t.Errorf("nic%d: leftover queue entries posted=%d unexp=%d",
						i, n.PostedLen(), n.UnexpLen())
				}
			}
		})
	}
}

func TestMessageOrdering(t *testing.T) {
	// MPI guarantees matching order between a pair within a context: ten
	// same-tag sends must match ten receives in order. We verify via
	// distinct sizes bound to distinct receives completing.
	for name, cfg := range allConfigs(2) {
		t.Run(name, func(t *testing.T) {
			Run(cfg, func(r *Rank) {
				const n = 10
				if r.Rank() == 0 {
					for i := 0; i < n; i++ {
						r.Send(1, 5, i*16)
					}
				} else {
					for i := 0; i < n; i++ {
						r.Recv(0, 5, i*16)
					}
				}
			})
		})
	}
}

func TestUnexpectedMessages(t *testing.T) {
	for name, cfg := range allConfigs(2) {
		t.Run(name, func(t *testing.T) {
			w := Run(cfg, func(r *Rank) {
				const n = 20
				if r.Rank() == 0 {
					for i := 0; i < n; i++ {
						r.Send(1, i, 0)
					}
					r.Barrier()
				} else {
					r.Barrier() // all 20 are unexpected by now? not guaranteed -- but most
					// Drain in reverse tag order to stress the search.
					for i := n - 1; i >= 0; i-- {
						r.Recv(0, i, 0)
					}
				}
			})
			if w.NICs[1].Stats().Unexpected == 0 {
				t.Error("no messages took the unexpected path")
			}
			if w.NICs[1].UnexpLen() != 0 {
				t.Errorf("unexpected queue not drained: %d", w.NICs[1].UnexpLen())
			}
		})
	}
}

func TestWildcardReceive(t *testing.T) {
	for name, cfg := range allConfigs(3) {
		t.Run(name, func(t *testing.T) {
			Run(cfg, func(r *Rank) {
				switch r.Rank() {
				case 0:
					// Receive from anyone, any tag, twice; then from rank 2
					// specifically.
					r.Recv(AnySource, AnyTag, 0)
					r.Recv(AnySource, AnyTag, 0)
					r.Recv(2, 9, 0)
				case 1:
					r.Send(0, 3, 0)
				case 2:
					r.Send(0, 4, 0)
					r.Send(0, 9, 0)
				}
			})
		})
	}
}

func TestRendezvous(t *testing.T) {
	for name, cfg := range allConfigs(2) {
		t.Run(name, func(t *testing.T) {
			var elapsedBig, elapsedSmall sim.Time
			Run(cfg, func(r *Rank) {
				const big = 64 << 10 // > EagerLimit -> rendezvous
				if r.Rank() == 0 {
					start := r.Now()
					r.Send(1, 1, big)
					elapsedBig = r.Now() - start
					start = r.Now()
					r.Send(1, 2, 16)
					elapsedSmall = r.Now() - start
				} else {
					r.Recv(0, 1, big)
					r.Recv(0, 2, 16)
				}
			})
			if elapsedBig <= elapsedSmall {
				t.Errorf("rendezvous (%v) not slower than eager (%v)", elapsedBig, elapsedSmall)
			}
		})
	}
}

func TestUnexpectedRendezvous(t *testing.T) {
	// An RTS that arrives before the receive is posted must wait on the
	// unexpected queue and complete via CTS when the receive appears.
	for name, cfg := range allConfigs(2) {
		t.Run(name, func(t *testing.T) {
			Run(cfg, func(r *Rank) {
				const big = 32 << 10
				if r.Rank() == 0 {
					req := r.Isend(1, 1, big)
					r.Barrier() // ensure the RTS is unexpected at rank 1
					r.Wait(req)
				} else {
					r.Barrier()
					r.Recv(0, 1, big)
				}
			})
		})
	}
}

func TestBarrierSynchronises(t *testing.T) {
	for _, ranks := range []int{2, 4, 8} {
		var after []sim.Time
		Run(baseCfg(ranks), func(r *Rank) {
			r.Compute(sim.Time(r.Rank()) * sim.Microsecond) // skewed arrival
			r.Barrier()
			after = append(after, r.Now())
		})
		if len(after) != ranks {
			t.Fatalf("ranks=%d: %d exits", ranks, len(after))
		}
		var minT, maxT sim.Time
		for i, tm := range after {
			if i == 0 || tm < minT {
				minT = tm
			}
			if tm > maxT {
				maxT = tm
			}
		}
		// Everyone leaves after the slowest entered.
		slowest := sim.Time(ranks-1) * sim.Microsecond
		if minT < slowest {
			t.Errorf("ranks=%d: a rank left the barrier at %v, before the slowest entered (%v)",
				ranks, minT, slowest)
		}
		if maxT-minT > 100*sim.Microsecond {
			t.Errorf("ranks=%d: barrier exit skew %v too large", ranks, maxT-minT)
		}
	}
}

func TestManyRanksRing(t *testing.T) {
	const ranks = 8
	for name, cfg := range map[string]Config{
		"baseline": baseCfg(ranks),
		"alpu":     alpuCfg(ranks, 128),
	} {
		t.Run(name, func(t *testing.T) {
			Run(cfg, func(r *Rank) {
				next := (r.Rank() + 1) % r.Size()
				prev := (r.Rank() - 1 + r.Size()) % r.Size()
				for round := 0; round < 3; round++ {
					if r.Rank() == 0 {
						r.Send(next, round, 64)
						r.Recv(prev, round, 64)
					} else {
						r.Recv(prev, round, 64)
						r.Send(next, round, 64)
					}
				}
			})
		})
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	Run(alpuCfg(2, 128), func(r *Rank) {
		const n = 16
		reqs := make([]*Request, 0, n)
		if r.Rank() == 0 {
			for i := 0; i < n; i++ {
				reqs = append(reqs, r.Isend(1, i, 32))
			}
		} else {
			for i := 0; i < n; i++ {
				reqs = append(reqs, r.Irecv(0, i, 32))
			}
		}
		r.Waitall(reqs...)
	})
}

func TestDoneNonBlocking(t *testing.T) {
	Run(baseCfg(2), func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Irecv(1, 1, 0)
			if r.Done(req) {
				t.Error("request done before the message could have arrived")
			}
			r.Send(1, 0, 0) // tell rank 1 to go
			r.Wait(req)
			if !r.Done(req) {
				t.Error("request not done after Wait")
			}
		} else {
			r.Recv(0, 0, 0)
			r.Send(0, 1, 0)
		}
	})
}

func TestALPUActuallyUsed(t *testing.T) {
	w := Run(alpuCfg(2, 128), func(r *Rank) {
		const n = 30
		if r.Rank() == 0 {
			r.Barrier()
			for i := 0; i < n; i++ {
				r.Send(1, i, 0)
			}
			r.Barrier()
		} else {
			reqs := make([]*Request, 0, n)
			for i := 0; i < n; i++ {
				reqs = append(reqs, r.Irecv(0, i, 0))
			}
			r.Barrier()
			r.Barrier()
			r.Waitall(reqs...)
		}
	})
	st := w.NICs[1].Stats()
	if st.ALPUInserts == 0 {
		t.Error("posted receives were never inserted into the ALPU")
	}
	if st.ALPUPostedHits == 0 {
		t.Error("no matches were served by the posted-receive ALPU")
	}
	dev := w.NICs[1].PostedALPU()
	if dev.Stats().Hits == 0 {
		t.Error("device-level hit counter is zero")
	}
	if dev.Occupancy() != 0 {
		t.Errorf("posted ALPU not drained: occupancy %d", dev.Occupancy())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		var total sim.Time
		Run(alpuCfg(2, 128), func(r *Rank) {
			if r.Rank() == 0 {
				for i := 0; i < 10; i++ {
					r.Send(1, i, 128)
					r.Recv(1, 100+i, 128)
				}
				total = r.Now()
			} else {
				for i := 0; i < 10; i++ {
					r.Recv(0, i, 128)
					r.Send(0, 100+i, 128)
				}
			}
		})
		return total
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
}
