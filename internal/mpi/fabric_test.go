package mpi

import (
	"fmt"
	"math/rand"
	"testing"

	"alpusim/internal/alpu"
	"alpusim/internal/network"
	"alpusim/internal/sim"
)

// The sharded-matching-fabric property suite. The fabric replaces the
// single posted-receive ALPU with N instances plus per-shard software
// overflow and a dispatch cache, and its one contract is the repo-wide
// invariant: matching outcomes are byte-identical to the plain software
// list for any shard count, under wildcards, overflow churn, device
// faults and partitioning. These tests pin that contract against the
// soak-plan oracle of soak_test.go.

// fabricCfg is alpuCfg on the sharded fabric. Tiny cells keep every
// shard's device overflowing, so promotion churn is constant.
func fabricCfg(ranks, cells, shards int) Config {
	cfg := alpuCfg(ranks, cells)
	cfg.NIC.MatchShards = shards
	return cfg
}

// TestFabricSoakMatchesSoftwareOracle drives identical random traffic —
// wildcard receives included — through the software list and through
// fabrics of 2, 4 and 8 shards with overflow-forcing cell counts, and
// requires the matching digest to agree everywhere.
func TestFabricSoakMatchesSoftwareOracle(t *testing.T) {
	const ranks = 5
	msgs := 60
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		plan := buildSoakPlan(rand.New(rand.NewSource(seed)), ranks, msgs)
		oracle, _ := soakMatchDigest(t, fmt.Sprintf("sw/seed%d", seed), baseCfg(ranks), plan, ranks)
		for _, shards := range []int{2, 4, 8} {
			// cells=16 (the device's minimum block) keeps each shard
			// overflowing (promotion churn); cells=64 covers the
			// all-resident regime.
			for _, cells := range []int{16, 64} {
				label := fmt.Sprintf("fabric%d/cells%d/seed%d", shards, cells, seed)
				got, w := soakMatchDigest(t, label, fabricCfg(ranks, cells, shards), plan, ranks)
				if got != oracle {
					t.Errorf("%s: matching digest %#x != software oracle %#x", label, got, oracle)
				}
				snap := w.TelemetrySnapshot()
				if snap.Sum("fabric/wild_broadcasts") == 0 {
					t.Errorf("%s: no wildcard was ever broadcast across the shards", label)
				}
				if cells == 16 && snap.Sum("fabric/overflow_promotions") == 0 {
					t.Errorf("%s: tiny cells but no overflow promotion happened", label)
				}
			}
		}
	}
}

// TestFabricDevChaosMatchesOracle corrupts, stalls and kills the shard
// devices mid-soak: the fabric must still produce the clean software
// oracle's digest, riding the strike/resync/failover ladder per shard.
func TestFabricDevChaosMatchesOracle(t *testing.T) {
	const ranks = 4
	plan := buildSoakPlan(rand.New(rand.NewSource(11)), ranks, 48)
	oracle, _ := soakMatchDigest(t, "sw/clean", baseCfg(ranks), plan, ranks)
	fm := network.FaultModel{
		Seed:            42,
		ALPUBitFlipProb: 0.02, ALPUResultDropProb: 0.03,
		ALPUDeathAt: 60 * sim.Microsecond,
	}
	cfg := fabricCfg(ranks, 16, 4)
	cfg.NIC.FaultResultTimeout = 1 * sim.Microsecond
	cfg.NIC.FaultRetryBase = 4 * sim.Microsecond
	cfg.Faults = &fm
	cfg.WatchdogLimit = chaosWatchdog
	got, w := soakMatchDigest(t, "fabric/devchaos", cfg, plan, ranks)
	if got != oracle {
		t.Fatalf("fabric under device chaos: digest %#x != clean software %#x", got, oracle)
	}
	snap := w.TelemetrySnapshot()
	injected := snap.Sum("alpu_faults/bit_flips") + snap.Sum("alpu_faults/dropped_results") +
		snap.Sum("alpu_faults/dead_discards")
	if injected == 0 {
		t.Error("fault injection idle: the chaos run exercised nothing")
	}
}

// TestFabricOneShardDeathFailsOverAlone kills exactly one shard's device
// (Config.ShardFaults) and requires a surgical failover: the dead shard
// serves matching from its hash shadow, every sibling shard keeps its
// device, and the matching digest still equals the software oracle.
func TestFabricOneShardDeathFailsOverAlone(t *testing.T) {
	const ranks, shards, victim = 4, 4, 2
	plan := buildSoakPlan(rand.New(rand.NewSource(13)), ranks, 96)
	oracle, _ := soakMatchDigest(t, "sw/clean", baseCfg(ranks), plan, ranks)
	cfg := fabricCfg(ranks, 16, shards)
	cfg.NIC.ShardFaults = make([]*alpu.FaultModel, shards)
	cfg.NIC.ShardFaults[victim] = &alpu.FaultModel{DeathAt: 20 * sim.Microsecond}
	// Tight policy so the death is declared well inside the run.
	cfg.NIC.FaultStrikeLimit = 2
	cfg.NIC.FaultResultTimeout = 1 * sim.Microsecond
	cfg.NIC.FaultRetryBase = 4 * sim.Microsecond
	cfg.WatchdogLimit = chaosWatchdog
	got, w := soakMatchDigest(t, "fabric/sharddeath", cfg, plan, ranks)
	if got != oracle {
		t.Fatalf("one-shard death: digest %#x != software oracle %#x", got, oracle)
	}
	deaths := 0
	for i := range w.NICs {
		for s := 0; s < shards; s++ {
			name := fmt.Sprintf("posted%d", s)
			if w.NICs[i].ALPUDead(name) {
				if s != victim {
					t.Errorf("nic%d: healthy shard %s was declared dead", i, name)
				}
				deaths++
			}
		}
		if w.NICs[i].ALPUDead("unexp") {
			t.Errorf("nic%d: unexpected-queue unit died; only shard %d had a fault model", i, victim)
		}
	}
	if deaths == 0 {
		t.Error("the faulted shard never failed over on any NIC")
	}
	snap := w.TelemetrySnapshot()
	if snap.Sum("nic_failover/deaths") == 0 || snap.Sum("nic_failover/shadow_rebuilds") == 0 {
		t.Error("failover counters idle despite a shard death")
	}
}

// TestFabricPartitionInvariant pins the PDES contract for the fabric: the
// same plan must produce a byte-identical matching digest and identical
// fabric telemetry at every partition count.
func TestFabricPartitionInvariant(t *testing.T) {
	const ranks = 8
	plan := buildSoakPlan(rand.New(rand.NewSource(29)), ranks, 64)
	type result struct {
		digest uint64
		rollup [3]uint64
	}
	run := func(parts int) result {
		cfg := fabricCfg(ranks, 16, 4)
		cfg.Partitions = parts
		digest, w := soakMatchDigest(t, "", cfg, plan, ranks)
		snap := w.TelemetrySnapshot()
		return result{digest, [3]uint64{
			snap.Sum("fabric/wild_broadcasts"),
			snap.Sum("fabric/overflow_promotions"),
			snap.Sum("fabric/cache_misses"),
		}}
	}
	r1 := run(1)
	for _, parts := range []int{2, 8} {
		if r := run(parts); r != r1 {
			t.Errorf("partitions=%d diverged from partitions=1:\n %+v\n %+v", parts, r, r1)
		}
	}
}
