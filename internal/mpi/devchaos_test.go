package mpi

import (
	"math/rand"
	"testing"

	"alpusim/internal/network"
	"alpusim/internal/sim"
)

// The device chaos soak: the random-traffic soak plan over NICs whose
// ALPUs corrupt cells, drop results, stall, die outright, or whose
// firmware crashes — with the wire kept clean or faulty per mix. The
// invariant mirrors chaos_test.go and is the ISSUE acceptance: the
// matching outcome must be byte-identical to a clean run on a healthy
// software-only NIC. Device faults may cost time, never correctness.

// devChaosMixes is the device-fault matrix: each class alone, then the
// meltdown mix that also stresses the wire.
func devChaosMixes() map[string]network.FaultModel {
	return map[string]network.FaultModel{
		"bitflip-storm": {ALPUBitFlipProb: 0.02},
		"result-drops":  {ALPUResultDropProb: 0.05},
		"stuck-cycles":  {ALPUStuckProb: 0.1},
		"alpu-death":    {ALPUDeathAt: 30 * sim.Microsecond},
		"fw-crash-loop": {FwCrashProb: 0.02},
		"meltdown": {
			DropProb: 0.01, DupProb: 0.01, LinkFlapFrac: 0.02,
			ALPUBitFlipProb: 0.01, ALPUResultDropProb: 0.02,
			ALPUDeathAt: 50 * sim.Microsecond, FwCrashProb: 0.005,
		},
	}
}

// devChaosCfg is alpuCfg plus an aggressive recovery policy: these soak
// plans drain in a few hundred simulated microseconds, so the default
// 10µs-doubling response timeouts would let a dead device coast to the
// end of the run without ever striking out. Tight timeouts exercise the
// full strike → resync → failover ladder without changing its semantics.
func devChaosCfg(ranks, cells int) Config {
	cfg := alpuCfg(ranks, cells)
	cfg.NIC.FaultResultTimeout = 1 * sim.Microsecond
	cfg.NIC.FaultRetryBase = 4 * sim.Microsecond
	return cfg
}

// TestDevChaosMatchesSoftwareClean kills, corrupts and crashes the device
// layer mid-soak and requires the matching digest to equal the clean
// software-only baseline — zero lost, duplicated, or misordered matches
// across resyncs, hot failover, and firmware restarts.
func TestDevChaosMatchesSoftwareClean(t *testing.T) {
	const ranks = 4
	msgs := 48
	if testing.Short() {
		msgs = 24
	}
	plan := buildSoakPlan(rand.New(rand.NewSource(17)), ranks, msgs)
	clean, _ := soakMatchDigest(t, "software/clean", baseCfg(ranks), plan, ranks)
	cleanALPU, _ := soakMatchDigest(t, "alpu/clean", alpuCfg(ranks, 64), plan, ranks)
	if cleanALPU != clean {
		t.Fatalf("healthy ALPU digest %#x != software digest %#x", cleanALPU, clean)
	}
	for mixName, fm := range devChaosMixes() {
		fm := fm
		fm.Seed = 42
		cfg := devChaosCfg(ranks, 64)
		cfg.Faults = &fm
		cfg.WatchdogLimit = chaosWatchdog
		got, w := soakMatchDigest(t, "dev/"+mixName, cfg, plan, ranks)
		if got != clean {
			t.Errorf("%s: matching digest %#x != clean software %#x", mixName, got, clean)
		}
		snap := w.TelemetrySnapshot()
		injected := snap.Sum("alpu_faults/bit_flips") + snap.Sum("alpu_faults/dropped_results") +
			snap.Sum("alpu_faults/stuck_cycles") + snap.Sum("alpu_faults/dead_discards") +
			snap.Sum("nic_failover/fw_crashes")
		switch mixName {
		case "alpu-death", "meltdown":
			deaths := 0
			for i := range w.NICs {
				if w.NICs[i].ALPUDead("posted") || w.NICs[i].ALPUDead("unexp") {
					deaths++
				}
			}
			if deaths == 0 {
				t.Errorf("%s: no unit was ever declared dead", mixName)
			}
			if snap.Sum("nic_failover/deaths") == 0 || snap.Sum("nic_failover/shadow_rebuilds") == 0 {
				t.Errorf("%s: failover counters idle", mixName)
			}
		case "fw-crash-loop":
			if snap.Sum("nic_failover/fw_crashes") == 0 {
				t.Errorf("%s: no firmware crash injected", mixName)
			}
		default:
			if injected == 0 {
				t.Errorf("%s: fault injection idle", mixName)
			}
		}
	}
}

// TestDevChaosPartitionInvariant pins the PDES contract under device
// faults: the same seed must produce a byte-identical matching digest and
// identical fault/recovery telemetry at every partition count.
func TestDevChaosPartitionInvariant(t *testing.T) {
	const ranks = 8
	plan := buildSoakPlan(rand.New(rand.NewSource(23)), ranks, 48)
	type result struct {
		digest uint64
		rollup [6]uint64
	}
	run := func(parts int) result {
		cfg := devChaosCfg(ranks, 64)
		// 48 messages over 8 ranks is thin per NIC; a 3-strike policy makes
		// the death declaration land inside the run at every partitioning.
		cfg.NIC.FaultStrikeLimit = 3
		cfg.Partitions = parts
		cfg.Faults = &network.FaultModel{
			Seed:            7,
			ALPUBitFlipProb: 0.01, ALPUResultDropProb: 0.02,
			ALPUDeathAt: 40 * sim.Microsecond, FwCrashProb: 0.005,
		}
		cfg.WatchdogLimit = chaosWatchdog
		digest, w := soakMatchDigest(t, "", cfg, plan, ranks)
		snap := w.TelemetrySnapshot()
		return result{digest, [6]uint64{
			snap.Sum("alpu_faults/bit_flips"),
			snap.Sum("alpu_faults/dropped_results"),
			snap.Sum("nic_failover/strikes"),
			snap.Sum("nic_failover/resyncs"),
			snap.Sum("nic_failover/deaths"),
			snap.Sum("nic_failover/fw_crashes"),
		}}
	}
	r1 := run(1)
	for _, parts := range []int{2, 8} {
		if r := run(parts); r != r1 {
			t.Errorf("partitions=%d diverged from partitions=1:\n %+v\n %+v", parts, r, r1)
		}
	}
	if r1.rollup[0] == 0 || r1.rollup[4] == 0 {
		t.Errorf("scenario injected too little to be meaningful: %+v", r1)
	}
}

// TestHashFallbackMatchesHealthyALPU is the satellite property test: over
// randomized post/arrival interleavings (wildcards, eager and rendezvous
// sizes), the software hash-list organisation — the structure failover
// rebuilds into — must produce the exact per-receive match sequence of a
// healthy ALPU, and so must an ALPU whose device dies at t=0 (pure
// fallback path end to end).
func TestHashFallbackMatchesHealthyALPU(t *testing.T) {
	const ranks = 4
	seeds := []int64{3, 7, 13, 29, 41}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		plan := buildSoakPlan(rand.New(rand.NewSource(seed)), ranks, 40)
		healthy, _ := soakMatchDigest(t, "healthy", alpuCfg(ranks, 64), plan, ranks)

		hashCfg := baseCfg(ranks)
		hashCfg.NIC.UseHashList = true
		hashed, _ := soakMatchDigest(t, "hash", hashCfg, plan, ranks)
		if hashed != healthy {
			t.Errorf("seed %d: hash-list digest %#x != healthy ALPU %#x", seed, hashed, healthy)
		}

		deadCfg := devChaosCfg(ranks, 64)
		deadCfg.Faults = &network.FaultModel{Seed: 1, ALPUDeathAt: 1 * sim.Nanosecond}
		deadCfg.WatchdogLimit = chaosWatchdog
		dead, w := soakMatchDigest(t, "dead-at-0", deadCfg, plan, ranks)
		if dead != healthy {
			t.Errorf("seed %d: dead-device fallback digest %#x != healthy ALPU %#x", seed, dead, healthy)
		}
		failed := false
		for i := range w.NICs {
			if w.NICs[i].ALPUDead("posted") || w.NICs[i].ALPUDead("unexp") {
				failed = true
			}
		}
		if !failed {
			t.Errorf("seed %d: device dead from t=0 but no failover happened", seed)
		}
	}
}
