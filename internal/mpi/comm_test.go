package mpi

import (
	"sync"
	"testing"

	"alpusim/internal/sim"
)

// collect gathers per-rank values from a deterministic lock-step run.
type collect struct {
	mu sync.Mutex
	m  map[int]any
}

func newCollect() *collect { return &collect{m: map[int]any{}} }
func (c *collect) put(rank int, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[rank] = v
}

func TestCommWorldBasics(t *testing.T) {
	Run(baseCfg(4), func(r *Rank) {
		c := r.Comm()
		if c.Rank() != r.Rank() || c.Size() != 4 {
			t.Errorf("world comm rank/size wrong: %d/%d", c.Rank(), c.Size())
		}
		if c.Context() != worldContext {
			t.Errorf("world context = %d", c.Context())
		}
		if c.WorldRank(2) != 2 {
			t.Errorf("WorldRank(2) = %d", c.WorldRank(2))
		}
	})
}

func TestCommSendRecvLocalRanks(t *testing.T) {
	for name, cfg := range map[string]Config{"baseline": baseCfg(2), "alpu": alpuCfg(2, 128)} {
		t.Run(name, func(t *testing.T) {
			Run(cfg, func(r *Rank) {
				c := r.Comm()
				if c.Rank() == 0 {
					c.Send(1, 5, 64)
					c.Recv(1, 6, 64)
				} else {
					c.Recv(0, 5, 64)
					c.Send(0, 6, 64)
				}
			})
		})
	}
}

func TestCommSplit(t *testing.T) {
	got := newCollect()
	Run(baseCfg(6), func(r *Rank) {
		// Evens and odds, ordered by descending world rank via key.
		sub := r.Comm().Split(r.Rank()%2, -r.Rank())
		got.put(r.Rank(), [3]int{sub.Rank(), sub.Size(), int(sub.Context())})
		// Ping within the subcomm: local rank 0 <-> last.
		if sub.Rank() == 0 {
			sub.Send(sub.Size()-1, 1, 0)
		} else if sub.Rank() == sub.Size()-1 {
			sub.Recv(0, 1, 0)
		}
	})
	// Evens {0,2,4} with keys {0,-2,-4} -> order 4,2,0.
	want := map[int][3]int{}
	evenCtx := got.m[4].([3]int)[2]
	oddCtx := got.m[5].([3]int)[2]
	if evenCtx == oddCtx {
		t.Fatalf("split colors share context %d", evenCtx)
	}
	if evenCtx == int(worldContext) || oddCtx == int(worldContext) {
		t.Fatal("split reused the world context")
	}
	want[4] = [3]int{0, 3, evenCtx}
	want[2] = [3]int{1, 3, evenCtx}
	want[0] = [3]int{2, 3, evenCtx}
	want[5] = [3]int{0, 3, oddCtx}
	want[3] = [3]int{1, 3, oddCtx}
	want[1] = [3]int{2, 3, oddCtx}
	for rank, w := range want {
		if got.m[rank].([3]int) != w {
			t.Errorf("rank %d: got %v, want %v", rank, got.m[rank], w)
		}
	}
}

func TestCommDupIsolation(t *testing.T) {
	// Same group, fresh context: a receive on the dup must not match a
	// send on the parent, even with identical source+tag.
	Run(baseCfg(2), func(r *Rank) {
		c := r.Comm()
		d := c.Dup()
		if d.Context() == c.Context() {
			t.Error("Dup kept the parent context")
		}
		if r.Rank() == 0 {
			c.Send(1, 9, 0) // parent context
			d.Send(1, 9, 0) // dup context
		} else {
			// Post the dup receive first; the parent message must NOT
			// match it (context isolation), so this ordering only works
			// if contexts are honoured.
			dreq := d.Irecv(0, 9, 0)
			c.Recv(0, 9, 0)
			r.Wait(dreq)
		}
	})
}

func TestBarrierComm(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		var maxEnter, minExit sim.Time
		minExit = 1 << 62
		var mu sync.Mutex
		Run(baseCfg(n), func(r *Rank) {
			c := r.Comm()
			r.Compute(sim.Time(r.Rank()*300) * sim.Nanosecond)
			enter := r.Now()
			c.Barrier()
			exit := r.Now()
			mu.Lock()
			if enter > maxEnter {
				maxEnter = enter
			}
			if exit < minExit {
				minExit = exit
			}
			mu.Unlock()
		})
		if minExit < maxEnter {
			t.Errorf("n=%d: a rank exited the dissemination barrier at %v before the last entered at %v",
				n, minExit, maxEnter)
		}
	}
}

func TestBcastTree(t *testing.T) {
	for _, n := range []int{2, 4, 5, 8} {
		for _, root := range []int{0, n - 1} {
			w := Run(baseCfg(n), func(r *Rank) {
				r.Comm().Bcast(root, 256)
			})
			// Every rank but the root received exactly one bcast message:
			// total posted matches across the cluster = n-1 (plus none
			// unexpected left).
			for i, nc := range w.NICs {
				if nc.PostedLen() != 0 || nc.UnexpLen() != 0 {
					t.Errorf("n=%d root=%d nic%d: leftovers", n, root, i)
				}
			}
		}
	}
}

func TestReduceAllreduceGatherAlltoall(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} {
		w := Run(alpuCfg(n, 128), func(r *Rank) {
			c := r.Comm()
			c.Reduce(0, 1024)
			c.Allreduce(64)
			c.Gather(n-1, 128)
			c.Alltoall(32)
			c.Barrier()
		})
		for i, nc := range w.NICs {
			if nc.PostedLen() != 0 || nc.UnexpLen() != 0 {
				t.Errorf("n=%d nic%d: leftover entries posted=%d unexp=%d",
					n, i, nc.PostedLen(), nc.UnexpLen())
			}
		}
	}
}

func TestCollectivesOnSubComm(t *testing.T) {
	Run(baseCfg(8), func(r *Rank) {
		sub := r.Comm().Split(r.Rank()/4, r.Rank()) // two groups of 4
		sub.Bcast(0, 64)
		sub.Allreduce(64)
		sub.Barrier()
	})
}

func TestSendrecvNoDeadlock(t *testing.T) {
	// Classic head-to-head exchange that deadlocks with blocking sends if
	// Sendrecv is not genuinely concurrent.
	Run(baseCfg(2), func(r *Rank) {
		c := r.Comm()
		other := 1 - c.Rank()
		c.Sendrecv(other, 1, 8192, other, 1, 8192) // rendezvous-sized both ways
	})
}

func TestWaitany(t *testing.T) {
	Run(baseCfg(3), func(r *Rank) {
		switch r.Rank() {
		case 0:
			a := r.Irecv(1, 1, 0)
			b := r.Irecv(2, 2, 0)
			first := r.Waitany(a, b)
			// Rank 2 sends immediately; rank 1 sends late.
			if first != 1 {
				t.Errorf("Waitany returned %d, want 1 (rank 2's message lands first)", first)
			}
			r.Wait(a)
		case 1:
			r.Recv(2, 3, 0) // wait until rank 2 has sent to rank 0
			r.Compute(5 * sim.Microsecond)
			r.Send(0, 1, 0)
		case 2:
			r.Send(0, 2, 0)
			r.Send(1, 3, 0)
		}
	})
}

func TestCommSplitSingletons(t *testing.T) {
	Run(baseCfg(3), func(r *Rank) {
		solo := r.Comm().Split(r.Rank(), 0) // every rank its own color
		if solo.Size() != 1 || solo.Rank() != 0 {
			t.Errorf("singleton comm wrong: rank %d size %d", solo.Rank(), solo.Size())
		}
		solo.Barrier() // must be a no-op
		solo.Bcast(0, 64)
	})
}

func TestScatterAllgather(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		w := Run(alpuCfg(n, 64), func(r *Rank) {
			c := r.Comm()
			c.Scatter(0, 256)
			c.Scatter(n-1, 64) // non-zero root
			c.Allgather(128)
			c.Barrier()
		})
		for i, nc := range w.NICs {
			if nc.PostedLen() != 0 || nc.UnexpLen() != 0 {
				t.Errorf("n=%d nic%d: leftovers posted=%d unexp=%d",
					n, i, nc.PostedLen(), nc.UnexpLen())
			}
		}
	}
}

func TestAllgatherMovesRingTraffic(t *testing.T) {
	const n = 4
	w := Run(baseCfg(n), func(r *Rank) {
		r.Comm().Allgather(512)
	})
	// Ring algorithm: every endpoint transmits exactly n-1 data messages
	// (plus nothing else in this program).
	for i := 0; i < n; i++ {
		if got := w.Net.TxPackets(i); got != n-1 {
			t.Errorf("endpoint %d sent %d packets, want %d", i, got, n-1)
		}
	}
}
