// Package mpi is the prototype MPI implementation of §V-C: the Fig. 4
// subset (Init/Finalize, Comm_rank/size, Send/Isend, Recv/Irecv,
// Wait/Waitall, Barrier) over MPI_COMM_WORLD, with all queue processing
// performed on the simulated NIC. Application ranks are plain Go
// functions co-simulated with the discrete event engine: each blocking
// call consumes simulated time on the host CPU model, and code between
// calls runs in zero simulated time (use Compute to model computation).
package mpi

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"alpusim/internal/alpu"
	"alpusim/internal/host"
	"alpusim/internal/match"
	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/params"
	"alpusim/internal/proc"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

// Wildcards, as in the MPI standard (§II).
const (
	AnySource = int(match.AnySource)
	AnyTag    = int(match.AnyTag)
)

// worldContext is MPI_COMM_WORLD's context id; context 0 is reserved for
// internal traffic (Barrier).
const (
	systemContext uint16 = 0
	worldContext  uint16 = 1
)

// Config describes the simulated cluster.
type Config struct {
	// Ranks is the number of processes (= nodes; one rank per node).
	Ranks int
	// NIC is the per-node NIC configuration (ID is filled in per node).
	NIC nic.Config
	// WireLatency / LinkBandwidthBpns override the network (0 = Table III
	// defaults).
	WireLatency       sim.Time
	LinkBandwidthBpns int

	// Partitions > 0 runs the world as a conservative parallel simulation:
	// ranks are split into that many contiguous partitions, each with its
	// own engine (on the ladder event kernel) and worker goroutine,
	// synchronized in barrier windows bounded by the wire-latency
	// lookahead (see sim.PartitionSet). Output is canonical — byte
	// identical for every Partitions >= 1, including under faults — but
	// uses the partition-invariant event tie-break, so it can differ from
	// the Partitions == 0 single-engine schedule in tie-sensitive
	// observables (trace interleavings; never in protocol correctness).
	// Values above Ranks are clamped; 0 keeps the classic serial engine.
	Partitions int

	// Faults installs a network fault model (nil = the reliable in-order
	// default). Setting it forces NIC.Reliable on: MPI matching is only
	// correct over in-order loss-free delivery, which the NIC reliability
	// protocol restores.
	Faults *network.FaultModel
	// WatchdogLimit fails the world (panic with *sim.WatchdogError carrying
	// a diagnostic dump) if simulated time passes it — the stall detector
	// for fault mixes that somehow livelock. 0 = no watchdog.
	WatchdogLimit sim.Time

	// Telemetry is the world's metrics registry; nil creates one (shared
	// by all NICs and the network), so TelemetrySnapshot always works.
	Telemetry *telemetry.Registry
	// Tracer records the world's activity as Chrome trace events: NIC
	// firmware/ALPU/reliability tracks plus engine counter sampling.
	Tracer *telemetry.Tracer
	// Phases records per-message latency pipeline stamps.
	Phases *telemetry.Phases
	// Causal records per-message causal context (pipeline stamps, cause
	// links, resource annotations) for critical-path analysis.
	Causal *telemetry.Causal
	// Series, when set, samples per-NIC time series (queue depths, FIFO
	// occupancy, go-back-N window, fabric balance, rolling match-latency
	// p99) on each engine's front-poll chain at the sampler's interval.
	// The caller's sampler is the master: the world attaches one shard
	// per engine and folds them back canonically when the run ends, so
	// series bytes are identical at any Partitions setting.
	Series *telemetry.Sampler

	// FlightEvents sizes the world's flight recorder: a bounded ring of
	// the most recent trace events, recorded even when no full Tracer is
	// configured, so stall post-mortems show the event history rather
	// than just counters. 0 selects telemetry.DefaultFlightEvents
	// whenever a watchdog is armed or FlightDumpPath is set (and leaves
	// recording off otherwise); < 0 disables recording outright. Ignored
	// when Tracer is set — the full tracer already holds everything.
	FlightEvents int
	// FlightDumpPath, when set, is where the flight recorder is written
	// as Perfetto-loadable trace JSON on watchdog expiry and on the
	// first recoverable NIC protocol error.
	FlightDumpPath string
	// Log, when non-nil, receives structured diagnostics (watchdog
	// expiry, recoverable protocol errors, flight dumps); every record
	// is stamped with the simulated clock. Diagnostics never touch
	// stdout, which belongs to experiment output.
	Log *slog.Logger
}

// World is a built cluster.
type World struct {
	// Eng is the world's engine in single-engine mode; in partitioned
	// mode it aliases partition 0's engine (useful for its clock, not for
	// driving the run — use RunSim).
	Eng   *sim.Engine
	Net   *network.Network
	NICs  []*nic.NIC
	Hosts []*host.Host

	// Tel is the world's metrics registry (never nil); Tracer, Phases,
	// Causal and Series mirror the Config fields (nil when not requested).
	Tel    *telemetry.Registry
	Tracer *telemetry.Tracer
	Phases *telemetry.Phases
	Causal *telemetry.Causal
	Series *telemetry.Sampler

	// Flight is the recorder the world's components trace into: the
	// bounded flight ring when no full tracer was configured, or the
	// full tracer itself. Nil when recording is off and in partitioned
	// mode, where each partition records into its own shard — use
	// WriteFlight/FlightStats, which merge.
	Flight *telemetry.Tracer

	// Partitioned mode (Config.Partitions > 0).
	Engines      []*sim.Engine // per-partition engines (nil when serial)
	ps           *sim.PartitionSet
	partOf       []int                // rank -> partition
	recShards    []*telemetry.Tracer  // per-partition tracer/flight shards
	phaseShards  []*telemetry.Phases  // per-partition phase shards
	causalShards []*telemetry.Causal  // per-partition causal shards
	seriesShards []*telemetry.Sampler // per-engine sampler shards (also serial)
	wds          []*sim.Watchdog      // per-partition watchdogs
	wdErrs       []*sim.WatchdogError // per-partition expiry, read at barriers
	absorbed     bool                 // shards folded into Tracer/Phases
	pendingDump  string               // flight dump requested mid-window (under mu)

	log          *slog.Logger
	flightPath   string
	flightDumped bool

	ranksLive atomic.Int32

	// mu guards the cross-partition mutable state: communicator tables,
	// flight dumping, and the watchdog handoff. In single-engine mode it
	// is uncontended.
	mu sync.Mutex

	// Communicator machinery: deterministic context allocation and the
	// Split value blackboards (the simulation does not model payload
	// bytes, so collective *values* ride beside the real messages).
	nextCtx  uint16
	ctxTable map[string]uint16
	boards   map[string][]any

	// devFaults records that device-level fault classes were configured,
	// gating the world-level alpu_faults/nic_failover telemetry rollups.
	devFaults bool
	// matchShards mirrors Config.NIC.MatchShards, gating the world-level
	// match_fabric telemetry rollups.
	matchShards int
}

// nicDeviceFaults reports whether the NIC config itself carries device
// fault models (beyond the world fault model): the per-unit override or
// any per-shard override.
func nicDeviceFaults(nc nic.Config) bool {
	if nc.ALPUFaults.Active() {
		return true
	}
	for _, f := range nc.ShardFaults {
		if f.Active() {
			return true
		}
	}
	return false
}

// applyDeviceFaults maps the device-level classes of the world fault
// model onto one NIC's config. Per-device fault streams are derived
// inside the alpu/nic layers from the seed, the NIC id and the unit id,
// so one world seed yields independent, partition-count-invariant fault
// schedules on every device.
func applyDeviceFaults(nc *nic.Config, f *network.FaultModel) {
	if !f.DeviceActive() {
		return
	}
	if f.ALPUBitFlipProb > 0 || f.ALPUResultDropProb > 0 || f.ALPUStuckProb > 0 || f.ALPUDeathAt > 0 {
		nc.ALPUFaults = &alpu.FaultModel{
			Seed:           uint64(f.Seed),
			BitFlipProb:    f.ALPUBitFlipProb,
			ResultDropProb: f.ALPUResultDropProb,
			StuckProb:      f.ALPUStuckProb,
			DeathAt:        f.ALPUDeathAt,
		}
	}
	if f.FwCrashProb > 0 {
		nc.FwCrashProb = f.FwCrashProb
		nc.FwCrashSeed = uint64(f.Seed)*0x9E3779B97F4A7C15 + uint64(nc.ID) + 1
	}
}

// NewWorld constructs the cluster: network, NICs (with optional ALPUs),
// hosts.
func NewWorld(cfg Config) *World {
	if cfg.Ranks < 1 {
		panic("mpi: need at least one rank")
	}
	if cfg.Partitions > 0 {
		return newPartitionedWorld(cfg)
	}
	eng := sim.NewEngine()
	net := network.New(eng, cfg.Ranks, cfg.WireLatency, cfg.LinkBandwidthBpns)
	if cfg.Faults.WireActive() {
		// Wire classes go to the network; the reliability protocol restores
		// the in-order, loss-free delivery the matching queues assume.
		net.SetFaults(cfg.Faults)
		cfg.NIC.Reliable = true
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	// The recorder components trace into: the full tracer when one was
	// configured, else a bounded flight ring when a watchdog or a dump
	// path asks for post-mortem capture. The ring accepts the same
	// instrumentation calls with O(N) memory, so it can stay on during
	// chaos soaks without changing any simulated outcome.
	rec := cfg.Tracer
	if rec == nil && cfg.FlightEvents >= 0 {
		n := cfg.FlightEvents
		if n == 0 && (cfg.WatchdogLimit > 0 || cfg.FlightDumpPath != "") {
			n = telemetry.DefaultFlightEvents
		}
		if n > 0 {
			rec = telemetry.NewFlightRecorder(n)
		}
	}
	w := &World{
		Eng:         eng,
		Net:         net,
		Tel:         reg,
		Tracer:      cfg.Tracer,
		Phases:      cfg.Phases,
		Series:      cfg.Series,
		Flight:      rec,
		log:         telemetry.SimLogger(cfg.Log, eng.Now),
		flightPath:  cfg.FlightDumpPath,
		devFaults:   cfg.Faults.DeviceActive() || nicDeviceFaults(cfg.NIC),
		matchShards: cfg.NIC.MatchShards,
		nextCtx:     worldContext,
		ctxTable:    make(map[string]uint16),
		boards:      make(map[string][]any),
	}
	if cfg.Phases != nil {
		net.SetPhases(cfg.Phases)
	}
	if cfg.Causal != nil {
		w.Causal = cfg.Causal
		net.SetCausal(cfg.Causal)
	}
	// Engine counter sampling only rides the full tracer: a sampler
	// would flood the small flight ring with counter events and evict
	// the firmware history a post-mortem is actually after.
	telemetry.TraceEngine(eng, cfg.Tracer, 0)
	// The time-series sampler works through a shard even in serial mode,
	// so the fold into the master is identical at any partition count.
	if cfg.Series != nil {
		sh := cfg.Series.Shard()
		w.seriesShards = []*telemetry.Sampler{sh}
		sh.Attach(eng)
	}
	for i := 0; i < cfg.Ranks; i++ {
		nc := cfg.NIC
		nc.ID = i
		applyDeviceFaults(&nc, cfg.Faults)
		nc.Telemetry = reg
		nc.Tracer = rec
		nc.Phases = cfg.Phases
		nc.Causal = cfg.Causal
		if w.seriesShards != nil {
			nc.Series = w.seriesShards[0]
		}
		nc.Log = w.log
		if w.flightPath != "" {
			nc.ErrorHook = func(error) { w.dumpFlight("protocol-error", false) }
		}
		n := nic.New(eng, nc, net)
		w.NICs = append(w.NICs, n)
		w.Hosts = append(w.Hosts, host.New(eng, i, n))
	}
	if cfg.WatchdogLimit > 0 {
		wd := sim.NewWatchdog(eng, cfg.WatchdogLimit, 0)
		wd.Diag = func() string {
			var b strings.Builder
			fmt.Fprintf(&b, "faults: %v injected [%s]\n", cfg.Faults, net.FaultStats().String())
			b.WriteString(w.TelemetrySnapshot().Table())
			if ch, ok := w.Causal.Top1(); ok {
				fmt.Fprintf(&b, "\nslowest causal chain: %s", ch.String())
			}
			return b.String()
		}
		wd.OnDump = func() {
			if w.log != nil {
				w.log.Error("watchdog expired", "limit", cfg.WatchdogLimit.String())
			}
			w.dumpFlight("watchdog", true)
		}
	}
	return w
}

// newPartitionedWorld builds the cluster for conservative parallel
// simulation: one ladder-kernel engine per partition of the rank space,
// synchronized by a sim.PartitionSet whose lookahead is the wire latency
// (the minimum cross-partition delivery delay — see DESIGN.md §5.9).
// Every mutable recorder a partition writes during a window is sharded
// per partition (tracer, flight ring, phase stamps, slog clock) and
// merged canonically afterwards, so the world's outputs are a pure
// function of the simulation, not of the partition count.
func newPartitionedWorld(cfg Config) *World {
	nparts := cfg.Partitions
	if nparts > cfg.Ranks {
		nparts = cfg.Ranks
	}
	wire := cfg.WireLatency
	if wire <= 0 {
		wire = params.WireLatency
	}
	engines := make([]*sim.Engine, nparts)
	for p := range engines {
		engines[p] = sim.NewLadderEngine()
	}
	ps := sim.NewPartitionSet(engines, wire)
	// Contiguous rank blocks: rank i lives on partition i*P/N, so
	// neighbor-heavy workloads (halo exchange) keep most traffic
	// partition-local.
	partOf := make([]int, cfg.Ranks)
	for i := range partOf {
		partOf[i] = i * nparts / cfg.Ranks
	}
	net := network.NewPartitioned(ps, partOf, cfg.WireLatency, cfg.LinkBandwidthBpns)
	if cfg.Faults.WireActive() {
		net.SetFaults(cfg.Faults)
		cfg.NIC.Reliable = true
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	// Recorder shards, one per partition, under the serial path's arming
	// rules: full tracers when tracing was requested, flight rings when a
	// watchdog or dump path asks for post-mortem capture. Components on
	// partition p trace only into shard p; Tracer.Absorb merges the
	// shards into one canonical timeline after the run.
	recShards := make([]*telemetry.Tracer, nparts)
	switch {
	case cfg.Tracer != nil:
		for p := range recShards {
			recShards[p] = telemetry.NewTracer()
		}
	case cfg.FlightEvents >= 0:
		n := cfg.FlightEvents
		if n == 0 && (cfg.WatchdogLimit > 0 || cfg.FlightDumpPath != "") {
			n = telemetry.DefaultFlightEvents
		}
		if n > 0 {
			for p := range recShards {
				recShards[p] = telemetry.NewFlightRecorder(n)
			}
		}
	}
	var phaseShards []*telemetry.Phases
	if cfg.Phases != nil {
		phaseShards = make([]*telemetry.Phases, nparts)
		for p := range phaseShards {
			phaseShards[p] = telemetry.NewPhases()
		}
	}
	var causalShards []*telemetry.Causal
	if cfg.Causal != nil {
		causalShards = make([]*telemetry.Causal, nparts)
		for p := range causalShards {
			causalShards[p] = telemetry.NewCausal()
		}
	}
	var seriesShards []*telemetry.Sampler
	if cfg.Series != nil {
		seriesShards = make([]*telemetry.Sampler, nparts)
		for p := range seriesShards {
			seriesShards[p] = cfg.Series.Shard()
			seriesShards[p].Attach(engines[p])
		}
	}
	w := &World{
		Eng:          engines[0],
		Net:          net,
		Tel:          reg,
		Tracer:       cfg.Tracer,
		Phases:       cfg.Phases,
		Causal:       cfg.Causal,
		Series:       cfg.Series,
		Engines:      engines,
		ps:           ps,
		partOf:       partOf,
		recShards:    recShards,
		phaseShards:  phaseShards,
		causalShards: causalShards,
		seriesShards: seriesShards,
		log:          telemetry.SimLogger(cfg.Log, engines[0].Now),
		flightPath:   cfg.FlightDumpPath,
		devFaults:    cfg.Faults.DeviceActive() || nicDeviceFaults(cfg.NIC),
		matchShards:  cfg.NIC.MatchShards,
		nextCtx:      worldContext,
		ctxTable:     make(map[string]uint16),
		boards:       make(map[string][]any),
	}
	if phaseShards != nil {
		net.SetPhasesSharded(phaseShards)
	}
	if causalShards != nil {
		net.SetCausalSharded(causalShards)
	}
	// No engine counter sampling: the serial sampler's track is a single
	// pid 999 stream, and a per-partition equivalent would make the trace
	// a function of the partition count. The ladder/partition micro
	// benchmarks cover kernel health instead.
	logs := make([]*slog.Logger, nparts)
	for p := range logs {
		logs[p] = telemetry.SimLogger(cfg.Log, engines[p].Now)
	}
	for i := 0; i < cfg.Ranks; i++ {
		p := partOf[i]
		nc := cfg.NIC
		nc.ID = i
		applyDeviceFaults(&nc, cfg.Faults)
		nc.Telemetry = reg
		nc.Tracer = recShards[p]
		if phaseShards != nil {
			nc.Phases = phaseShards[p]
		}
		if causalShards != nil {
			nc.Causal = causalShards[p]
		}
		if seriesShards != nil {
			nc.Series = seriesShards[p]
		}
		nc.Log = logs[p]
		if w.flightPath != "" && recShards[0] != nil {
			// The hook fires on a partition goroutine mid-window, where
			// reading other partitions' shards would race; defer the dump
			// to the next barrier, where the world is quiescent.
			nc.ErrorHook = func(error) { w.requestDump("protocol-error") }
		}
		n := nic.New(engines[p], nc, net)
		w.NICs = append(w.NICs, n)
		w.Hosts = append(w.Hosts, host.New(engines[p], i, n))
	}
	if cfg.WatchdogLimit > 0 {
		w.wds = make([]*sim.Watchdog, nparts)
		w.wdErrs = make([]*sim.WatchdogError, nparts)
		for p := range w.wds {
			wd := sim.NewWatchdog(engines[p], cfg.WatchdogLimit, 0)
			pp := p
			// Capture the expiry and stop this partition's window instead
			// of panicking on a worker goroutine; the coordinator turns it
			// into the world-level failure at the next barrier, appending
			// the model diagnostics once everything is quiescent.
			wd.OnFail = func(err *sim.WatchdogError) {
				w.wdErrs[pp] = err
				engines[pp].Stop()
			}
			w.wds[p] = wd
		}
	}
	ps.OnInject = func(p int) {
		if w.wds != nil {
			w.wds[p].Poke()
		}
		if seriesShards != nil {
			// A drained partition's sampler chain stopped re-arming; an
			// injected delivery is about to wake it, so resume the chain at
			// the tick where it left off. The engine was frozen in between,
			// so the resumed ticks sample what the serial run would have.
			seriesShards[p].Rearm()
		}
	}
	ps.OnBarrier = func() { w.onBarrier(cfg) }
	return w
}

// requestDump records that a partition goroutine wants a flight dump; the
// coordinator performs it at the next barrier.
func (w *World) requestDump(reason string) {
	w.mu.Lock()
	if w.pendingDump == "" && !w.flightDumped {
		w.pendingDump = reason
	}
	w.mu.Unlock()
}

// onBarrier runs on the coordinator between partition windows, with every
// partition quiescent: it performs flight dumps requested mid-window and
// converts a captured watchdog expiry into the world-level panic the
// serial path would have raised, diagnostics appended.
func (w *World) onBarrier(cfg Config) {
	w.mu.Lock()
	reason := w.pendingDump
	w.pendingDump = ""
	w.mu.Unlock()
	var err *sim.WatchdogError
	for _, e := range w.wdErrs {
		if e != nil {
			err = e
			break
		}
	}
	if reason != "" && err == nil {
		w.dumpFlight(reason, false)
	}
	if err != nil {
		var b strings.Builder
		fmt.Fprintf(&b, "faults: %v injected [%s]\n", cfg.Faults, w.Net.FaultStats().String())
		b.WriteString(w.TelemetrySnapshot().Table())
		if w.causalShards != nil {
			// All partitions are quiescent at the barrier, so the causal
			// shards can be merged for the dump without racing writers.
			m := telemetry.NewCausal()
			m.Absorb(w.causalShards...)
			if ch, ok := m.Top1(); ok {
				fmt.Fprintf(&b, "\nslowest causal chain: %s", ch.String())
			}
		}
		err.Dump += "\n" + b.String()
		if w.log != nil {
			w.log.Error("watchdog expired", "limit", cfg.WatchdogLimit.String())
		}
		w.dumpFlight("watchdog", true)
		panic(err)
	}
}

// RunSim drives the built world to completion: the partition coordinator
// in partitioned mode (folding the recorder shards into Tracer/Phases
// when it returns, panic included), the classic serial event loop
// otherwise.
func (w *World) RunSim() {
	if w.ps == nil {
		w.Eng.Run()
		w.finalizeSeries()
		return
	}
	defer w.absorbShards()
	w.ps.Run()
}

// absorbShards folds the per-partition recorder shards into the
// world-level Tracer and Phases in canonical order. Idempotent.
func (w *World) absorbShards() {
	if w.absorbed || w.ps == nil {
		return
	}
	w.absorbed = true
	if w.Tracer != nil {
		w.Tracer.Absorb(w.recShards...)
	}
	if w.Phases != nil {
		w.Phases.Absorb(w.phaseShards...)
	}
	if w.Causal != nil {
		w.Causal.Absorb(w.causalShards...)
	}
	w.finalizeSeries()
}

// finalizeSeries pads every sampler shard to the canonical sample count
// for the world's end-of-model time — max over engines of LastModel, a
// pure function of the modelled event set — and folds the shards into
// the master sampler. Idempotent; runs with every engine drained.
func (w *World) finalizeSeries() {
	if w.Series == nil || w.seriesShards == nil {
		return
	}
	var tEnd sim.Time
	if w.ps == nil {
		tEnd = w.Eng.LastModel()
	} else {
		for _, eng := range w.Engines {
			if t := eng.LastModel(); t > tEnd {
				tEnd = t
			}
		}
	}
	for _, sh := range w.seriesShards {
		sh.Finalize(tEnd)
		w.Series.Absorb(sh)
	}
	w.seriesShards = nil
}

// flightTracer returns the recorder WriteFlight and dumpFlight render:
// the world recorder in serial mode, the partition shards merged into
// one canonical timeline in partitioned mode (nil when recording is
// off). Each partition ring bounds its own history, so a partitioned
// dump can retain up to Partitions x FlightEvents events.
func (w *World) flightTracer() *telemetry.Tracer {
	if w.ps == nil {
		return w.Flight
	}
	if w.recShards[0] == nil {
		return nil
	}
	m := telemetry.NewTracer()
	m.Absorb(w.recShards...)
	return m
}

// FlightStats reports the flight recorder's retained and overwritten
// event counts, summed across partition shards in partitioned mode
// (0, 0 when recording is off).
func (w *World) FlightStats() (events int, dropped uint64) {
	if w.ps == nil {
		return w.Flight.Len(), w.Flight.Dropped()
	}
	for _, sh := range w.recShards {
		events += sh.Len()
		dropped += sh.Dropped()
	}
	return events, dropped
}

// WriteFlight writes the flight recorder's retained events as
// Perfetto-loadable trace JSON. It errors when recording is off.
func (w *World) WriteFlight(out io.Writer) error {
	t := w.flightTracer()
	if t == nil {
		return fmt.Errorf("mpi: no flight recorder configured")
	}
	return telemetry.WriteTrace(out, t)
}

// dumpFlight writes the flight recorder to the configured dump path.
// Protocol errors dump once (the history leading to the *first* fault;
// chaos runs note thousands); a watchdog expiry always dumps, replacing
// any earlier error dump with the complete pre-stall history. Runs on
// the simulation goroutine (the barrier coordinator in partitioned
// mode), so no locking is needed.
func (w *World) dumpFlight(reason string, force bool) {
	t := w.flightTracer()
	if w.flightPath == "" || t == nil || (w.flightDumped && !force) {
		return
	}
	w.flightDumped = true
	err := func() error {
		f, err := os.Create(w.flightPath)
		if err != nil {
			return err
		}
		if err := telemetry.WriteTrace(f, t); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}()
	if w.log == nil {
		return
	}
	if err != nil {
		w.log.Error("flight dump failed", "reason", reason, "path", w.flightPath, "err", err.Error())
		return
	}
	w.log.Warn("flight recorder dumped", "reason", reason, "path", w.flightPath,
		"events", t.Len(), "dropped", t.Dropped())
}

// TelemetrySnapshot harvests every component's counters into the world
// registry and returns the frozen snapshot. Call after (or during) a run;
// harvesting is idempotent.
func (w *World) TelemetrySnapshot() telemetry.Snapshot {
	for _, n := range w.NICs {
		n.PublishTelemetry()
	}
	w.Net.Publish(w.Tel)
	if w.seriesShards == nil {
		// Series gauges publish only once the run ended and the shards
		// folded; mid-run values would depend on the window schedule.
		w.Series.Publish(w.Tel)
	}
	if w.devFaults {
		// World-level rollups of the device-fault and failover counters:
		// these become the alpusim_alpu_faults_* / alpusim_nic_failover_*
		// Prometheus families on the /metrics endpoint.
		failSum := func(name string) (t uint64) {
			for i := range w.NICs {
				t += w.Tel.Counter(fmt.Sprintf("nic%d/failover/%s", i, name)).Get()
			}
			return
		}
		for _, name := range []string{
			"strikes", "resyncs", "deaths", "shadow_rebuilds",
			"fw_crashes", "fw_restarts", "fault_responses",
		} {
			w.Tel.Counter("nic_failover/" + name).Set(failSum(name))
		}
		devSum := func(name string) (t uint64) {
			for i := range w.NICs {
				for _, q := range []string{"posted", "unexp"} {
					t += w.Tel.Counter(fmt.Sprintf("nic%d/alpu/%s/faults/%s", i, q, name)).Get()
				}
				// Fabric shard units publish per shard.
				for s := 0; s < w.matchShards; s++ {
					t += w.Tel.Counter(fmt.Sprintf("nic%d/alpu/posted%d/faults/%s", i, s, name)).Get()
				}
			}
			return
		}
		for _, name := range []string{
			"bit_flips", "parity_quarantines", "dropped_results",
			"stuck_cycles", "dead_discards",
		} {
			w.Tel.Counter("alpu_faults/" + name).Set(devSum(name))
		}
	}
	if w.matchShards > 1 {
		// World-level rollups of the matching-fabric counters: these
		// become the alpusim_match_fabric_* Prometheus families on the
		// /metrics endpoint.
		fabSum := func(name string) (t uint64) {
			for i := range w.NICs {
				t += w.Tel.Counter(fmt.Sprintf("nic%d/fabric/%s", i, name)).Get()
			}
			return
		}
		for _, name := range []string{
			"cache_hits", "cache_misses", "wild_broadcasts", "wild_purges",
			"stale_wild_hits", "overflow_promotions", "overflow_demotions",
		} {
			w.Tel.Counter("match_fabric/" + name).Set(fabSum(name))
		}
	}
	return w.Tel.Snapshot()
}

// MsgKey returns the latency-phase key of a COMM_WORLD message: the
// packed envelope a send from rank src with the given tag puts on the
// wire. Workloads stamp StampInject with it before the send.
func MsgKey(src, tag int) uint64 {
	return uint64(match.Pack(match.Header{Context: worldContext, Source: int32(src), Tag: int32(tag)}))
}

// Rank is the per-process MPI handle passed to application programs.
type Rank struct {
	w  *World
	id int
	p  *sim.Process
	e  *proc.Engine
	h  *host.Host
}

// Request is a nonblocking-operation handle.
type Request struct {
	hr   *host.Request
	rank *Rank
}

// DoneAt reports when the completion became visible to the host (valid
// after Wait). Benchmarks use it for cross-rank one-way latencies.
func (req *Request) DoneAt() sim.Time { return req.hr.DoneAt }

// Status is the completion envelope of a receive (MPI_Status): the rank
// the matched message actually came from (essential for AnySource
// receives), its tag, and its size.
type Status struct {
	Source int
	Tag    int
	Size   int
}

// Status returns the receive's completion status. Valid after the
// request completed; sends return a zero Status.
func (req *Request) Status() Status {
	st := req.hr.Status
	if !st.Valid {
		return Status{Source: -1, Tag: -1}
	}
	return Status{Source: int(st.Source), Tag: int(st.Tag), Size: st.Size}
}

// Program is an application entry point (the rank's "main").
type Program func(r *Rank)

// SpawnRank starts prog as rank id (on its partition's engine when the
// world is partitioned).
func (w *World) SpawnRank(id int, prog Program) {
	h := w.Hosts[id]
	eng := w.Eng
	if w.ps != nil {
		eng = w.Engines[w.partOf[id]]
	}
	w.ranksLive.Add(1)
	eng.Spawn(fmt.Sprintf("rank%d", id), func(p *sim.Process) {
		r := &Rank{
			w:  w,
			id: id,
			p:  p,
			e:  proc.New(p, params.HostCPU(), h.Mem()),
			h:  h,
		}
		prog(r)
		w.ranksLive.Add(-1)
	})
}

// Run builds a world, runs prog on every rank, and simulates to
// completion.
func Run(cfg Config, prog Program) *World {
	w := NewWorld(cfg)
	for i := 0; i < cfg.Ranks; i++ {
		w.SpawnRank(i, prog)
	}
	w.RunSim()
	if n := w.ranksLive.Load(); n != 0 {
		panic(fmt.Sprintf("mpi: deadlock — %d ranks still blocked when the event queue drained", n))
	}
	return w
}

// RunPrograms runs a distinct program per rank.
func RunPrograms(cfg Config, progs []Program) *World {
	if len(progs) != cfg.Ranks {
		panic("mpi: len(progs) != cfg.Ranks")
	}
	w := NewWorld(cfg)
	for i, prog := range progs {
		w.SpawnRank(i, prog)
	}
	w.RunSim()
	if n := w.ranksLive.Load(); n != 0 {
		panic(fmt.Sprintf("mpi: deadlock — %d ranks still blocked when the event queue drained", n))
	}
	return w
}

// Rank returns the calling process's rank (MPI_Comm_rank on COMM_WORLD).
func (r *Rank) Rank() int { return r.id }

// Size returns the number of ranks (MPI_Comm_size on COMM_WORLD).
func (r *Rank) Size() int { return len(r.w.Hosts) }

// Now returns the current simulated time.
func (r *Rank) Now() sim.Time { return r.p.Now() }

// Compute models size-independent application computation.
func (r *Rank) Compute(d sim.Time) { r.p.Sleep(d) }

// World returns the cluster (for instrumentation).
func (r *Rank) World() *World { return r.w }

func (r *Rank) isend(ctx uint16, dst, tag, size int) *Request {
	return r.isendAs(ctx, uint16(r.id), dst, tag, size)
}

// isendAs sends with an explicit envelope source (the sender's rank
// within the communicator) to a world-rank destination.
func (r *Rank) isendAs(ctx, srcLocal uint16, dstWorld, tag, size int) *Request {
	if dstWorld < 0 || dstWorld >= r.Size() {
		panic(fmt.Sprintf("mpi: rank %d Isend to invalid world rank %d", r.id, dstWorld))
	}
	id := r.h.NewID()
	hr := r.h.Submit(r.e, nic.HostRequest{
		Kind: nic.ReqSend,
		ID:   id,
		Dst:  dstWorld,
		Hdr:  match.Header{Context: ctx, Source: int32(srcLocal), Tag: int32(tag)},
		Size: size,
	})
	return &Request{hr: hr, rank: r}
}

// allocContext returns a stable fresh context id for a collective
// derivation key; every rank computing the same key receives the same id.
// In partitioned worlds the table is shared across partitions (hence the
// lock); ids for one key are stable, but two *distinct* keys derived
// concurrently from different partitions without intervening
// communication could allocate in either order — collectives that derive
// communicators synchronize first, so in practice the order is fixed by
// the simulation itself.
func (w *World) allocContext(key string) uint16 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if c, ok := w.ctxTable[key]; ok {
		return c
	}
	w.nextCtx++
	if int(w.nextCtx) >= 1<<params.ContextBits {
		panic("mpi: context ids exhausted")
	}
	w.ctxTable[key] = w.nextCtx
	return w.nextCtx
}

// splitBoard returns the shared value board for one Split invocation.
func (w *World) splitBoard(ctx uint16, seq, n int) []any {
	key := fmt.Sprintf("%d:%d", ctx, seq)
	w.mu.Lock()
	defer w.mu.Unlock()
	if b, ok := w.boards[key]; ok {
		return b
	}
	b := make([]any, n)
	w.boards[key] = b
	return b
}

func (r *Rank) irecv(ctx uint16, src, tag, size int) *Request {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("mpi: rank %d Irecv from invalid rank %d", r.id, src))
	}
	id := r.h.NewID()
	hr := r.h.Submit(r.e, nic.HostRequest{
		Kind:     nic.ReqRecv,
		ID:       id,
		Recv:     match.Recv{Context: ctx, Source: int32(src), Tag: int32(tag)},
		RecvSize: size,
	})
	return &Request{hr: hr, rank: r}
}

// Isend starts a nonblocking send of size bytes (MPI_Isend).
func (r *Rank) Isend(dst, tag, size int) *Request {
	return r.isend(worldContext, dst, tag, size)
}

// Irecv posts a nonblocking receive (MPI_Irecv). src may be AnySource and
// tag may be AnyTag.
func (r *Rank) Irecv(src, tag, size int) *Request {
	return r.irecv(worldContext, src, tag, size)
}

// Send is the blocking send (MPI_Send: built from Isend + Wait, Fig. 4).
func (r *Rank) Send(dst, tag, size int) {
	r.Wait(r.Isend(dst, tag, size))
}

// Recv is the blocking receive (MPI_Recv: Irecv + Wait, Fig. 4).
func (r *Rank) Recv(src, tag, size int) {
	r.Wait(r.Irecv(src, tag, size))
}

// Wait blocks until a request completes (MPI_Wait).
func (r *Rank) Wait(req *Request) {
	if req.rank != r {
		panic("mpi: Wait on a request from another rank")
	}
	r.h.Wait(r.e, req.hr)
}

// Waitall blocks until every request completes (MPI_Waitall, built from
// Wait per Fig. 4).
func (r *Rank) Waitall(reqs ...*Request) {
	for _, req := range reqs {
		r.Wait(req)
	}
}

// Iprobe checks whether a matching message is waiting in the unexpected
// queue without receiving it (MPI_Iprobe). It returns whether one was
// found and, if so, its status. Note the hardware angle (DESIGN.md): the
// ALPU cannot serve probes — its matches are destructive — so this path
// always costs a software traversal, even on an ALPU NIC.
func (r *Rank) Iprobe(src, tag int) (bool, Status) {
	return r.iprobe(worldContext, src, tag)
}

func (r *Rank) iprobe(ctx uint16, src, tag int) (bool, Status) {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("mpi: rank %d Iprobe from invalid rank %d", r.id, src))
	}
	id := r.h.NewID()
	hr := r.h.Submit(r.e, nic.HostRequest{
		Kind: nic.ReqProbe,
		ID:   id,
		Recv: match.Recv{Context: ctx, Source: int32(src), Tag: int32(tag)},
	})
	r.h.Wait(r.e, hr)
	if !hr.Status.Valid {
		return false, Status{Source: -1, Tag: -1}
	}
	return true, Status{Source: int(hr.Status.Source), Tag: int(hr.Status.Tag), Size: hr.Status.Size}
}

// Waitany blocks until at least one of the requests completes and
// returns its index (MPI_Waitany).
func (r *Rank) Waitany(reqs ...*Request) int {
	if len(reqs) == 0 {
		panic("mpi: Waitany with no requests")
	}
	for {
		for i, req := range reqs {
			if req.hr.Done {
				r.e.Cycles(params.HostCompletionPoll)
				r.h.Retire(req.hr)
				return i
			}
		}
		r.h.WaitAnyProgress(r.e)
	}
}

// Done reports (without blocking beyond a status check) whether the
// request has completed — MPI_Test.
func (r *Rank) Done(req *Request) bool {
	r.e.Cycles(params.HostCompletionPoll)
	return req.hr.Done
}

// Barrier tags on the system context.
const (
	barrierGatherTag  = 0x7ff0
	barrierReleaseTag = 0x7ff1
)

// Barrier synchronises all ranks (MPI_Barrier, built from point-to-point
// operations per Fig. 4): a linear gather to rank 0 and a release fan-out.
func (r *Rank) Barrier() {
	size := r.Size()
	if size == 1 {
		return
	}
	if r.id == 0 {
		for src := 1; src < size; src++ {
			r.wait(r.irecv(systemContext, src, barrierGatherTag, 0))
		}
		for dst := 1; dst < size; dst++ {
			r.wait(r.isend(systemContext, dst, barrierReleaseTag, 0))
		}
	} else {
		r.wait(r.isend(systemContext, 0, barrierGatherTag, 0))
		r.wait(r.irecv(systemContext, 0, barrierReleaseTag, 0))
	}
}

func (r *Rank) wait(req *Request) { r.h.Wait(r.e, req.hr) }
