// Package mpi is the prototype MPI implementation of §V-C: the Fig. 4
// subset (Init/Finalize, Comm_rank/size, Send/Isend, Recv/Irecv,
// Wait/Waitall, Barrier) over MPI_COMM_WORLD, with all queue processing
// performed on the simulated NIC. Application ranks are plain Go
// functions co-simulated with the discrete event engine: each blocking
// call consumes simulated time on the host CPU model, and code between
// calls runs in zero simulated time (use Compute to model computation).
package mpi

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"alpusim/internal/host"
	"alpusim/internal/match"
	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/params"
	"alpusim/internal/proc"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

// Wildcards, as in the MPI standard (§II).
const (
	AnySource = int(match.AnySource)
	AnyTag    = int(match.AnyTag)
)

// worldContext is MPI_COMM_WORLD's context id; context 0 is reserved for
// internal traffic (Barrier).
const (
	systemContext uint16 = 0
	worldContext  uint16 = 1
)

// Config describes the simulated cluster.
type Config struct {
	// Ranks is the number of processes (= nodes; one rank per node).
	Ranks int
	// NIC is the per-node NIC configuration (ID is filled in per node).
	NIC nic.Config
	// WireLatency / LinkBandwidthBpns override the network (0 = Table III
	// defaults).
	WireLatency       sim.Time
	LinkBandwidthBpns int

	// Faults installs a network fault model (nil = the reliable in-order
	// default). Setting it forces NIC.Reliable on: MPI matching is only
	// correct over in-order loss-free delivery, which the NIC reliability
	// protocol restores.
	Faults *network.FaultModel
	// WatchdogLimit fails the world (panic with *sim.WatchdogError carrying
	// a diagnostic dump) if simulated time passes it — the stall detector
	// for fault mixes that somehow livelock. 0 = no watchdog.
	WatchdogLimit sim.Time

	// Telemetry is the world's metrics registry; nil creates one (shared
	// by all NICs and the network), so TelemetrySnapshot always works.
	Telemetry *telemetry.Registry
	// Tracer records the world's activity as Chrome trace events: NIC
	// firmware/ALPU/reliability tracks plus engine counter sampling.
	Tracer *telemetry.Tracer
	// Phases records per-message latency pipeline stamps.
	Phases *telemetry.Phases

	// FlightEvents sizes the world's flight recorder: a bounded ring of
	// the most recent trace events, recorded even when no full Tracer is
	// configured, so stall post-mortems show the event history rather
	// than just counters. 0 selects telemetry.DefaultFlightEvents
	// whenever a watchdog is armed or FlightDumpPath is set (and leaves
	// recording off otherwise); < 0 disables recording outright. Ignored
	// when Tracer is set — the full tracer already holds everything.
	FlightEvents int
	// FlightDumpPath, when set, is where the flight recorder is written
	// as Perfetto-loadable trace JSON on watchdog expiry and on the
	// first recoverable NIC protocol error.
	FlightDumpPath string
	// Log, when non-nil, receives structured diagnostics (watchdog
	// expiry, recoverable protocol errors, flight dumps); every record
	// is stamped with the simulated clock. Diagnostics never touch
	// stdout, which belongs to experiment output.
	Log *slog.Logger
}

// World is a built cluster.
type World struct {
	Eng   *sim.Engine
	Net   *network.Network
	NICs  []*nic.NIC
	Hosts []*host.Host

	// Tel is the world's metrics registry (never nil); Tracer and Phases
	// mirror the Config fields (nil when not requested).
	Tel    *telemetry.Registry
	Tracer *telemetry.Tracer
	Phases *telemetry.Phases

	// Flight is the recorder the world's components trace into: the
	// bounded flight ring when no full tracer was configured, or the
	// full tracer itself. Nil when recording is off.
	Flight *telemetry.Tracer

	log          *slog.Logger
	flightPath   string
	flightDumped bool

	ranksLive int

	// Communicator machinery: deterministic context allocation and the
	// Split value blackboards (the simulation does not model payload
	// bytes, so collective *values* ride beside the real messages).
	nextCtx  uint16
	ctxTable map[string]uint16
	boards   map[string][]any
}

// NewWorld constructs the cluster: network, NICs (with optional ALPUs),
// hosts.
func NewWorld(cfg Config) *World {
	if cfg.Ranks < 1 {
		panic("mpi: need at least one rank")
	}
	eng := sim.NewEngine()
	net := network.New(eng, cfg.Ranks, cfg.WireLatency, cfg.LinkBandwidthBpns)
	if cfg.Faults.Active() {
		net.SetFaults(cfg.Faults)
		cfg.NIC.Reliable = true
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	// The recorder components trace into: the full tracer when one was
	// configured, else a bounded flight ring when a watchdog or a dump
	// path asks for post-mortem capture. The ring accepts the same
	// instrumentation calls with O(N) memory, so it can stay on during
	// chaos soaks without changing any simulated outcome.
	rec := cfg.Tracer
	if rec == nil && cfg.FlightEvents >= 0 {
		n := cfg.FlightEvents
		if n == 0 && (cfg.WatchdogLimit > 0 || cfg.FlightDumpPath != "") {
			n = telemetry.DefaultFlightEvents
		}
		if n > 0 {
			rec = telemetry.NewFlightRecorder(n)
		}
	}
	w := &World{
		Eng:        eng,
		Net:        net,
		Tel:        reg,
		Tracer:     cfg.Tracer,
		Phases:     cfg.Phases,
		Flight:     rec,
		log:        telemetry.SimLogger(cfg.Log, eng.Now),
		flightPath: cfg.FlightDumpPath,
		nextCtx:    worldContext,
		ctxTable:   make(map[string]uint16),
		boards:     make(map[string][]any),
	}
	if cfg.Phases != nil {
		net.SetPhases(cfg.Phases)
	}
	// Engine counter sampling only rides the full tracer: a sampler
	// would flood the small flight ring with counter events and evict
	// the firmware history a post-mortem is actually after.
	telemetry.TraceEngine(eng, cfg.Tracer, 0)
	for i := 0; i < cfg.Ranks; i++ {
		nc := cfg.NIC
		nc.ID = i
		nc.Telemetry = reg
		nc.Tracer = rec
		nc.Phases = cfg.Phases
		nc.Log = w.log
		if w.flightPath != "" {
			nc.ErrorHook = func(error) { w.dumpFlight("protocol-error", false) }
		}
		n := nic.New(eng, nc, net)
		w.NICs = append(w.NICs, n)
		w.Hosts = append(w.Hosts, host.New(eng, i, n))
	}
	if cfg.WatchdogLimit > 0 {
		wd := sim.NewWatchdog(eng, cfg.WatchdogLimit, 0)
		wd.Diag = func() string {
			var b strings.Builder
			fmt.Fprintf(&b, "faults: %v injected [%s]\n", cfg.Faults, net.FaultStats().String())
			b.WriteString(w.TelemetrySnapshot().Table())
			return b.String()
		}
		wd.OnDump = func() {
			if w.log != nil {
				w.log.Error("watchdog expired", "limit", cfg.WatchdogLimit.String())
			}
			w.dumpFlight("watchdog", true)
		}
	}
	return w
}

// WriteFlight writes the flight recorder's retained events as
// Perfetto-loadable trace JSON. It errors when recording is off.
func (w *World) WriteFlight(out io.Writer) error {
	if w.Flight == nil {
		return fmt.Errorf("mpi: no flight recorder configured")
	}
	return telemetry.WriteTrace(out, w.Flight)
}

// dumpFlight writes the flight recorder to the configured dump path.
// Protocol errors dump once (the history leading to the *first* fault;
// chaos runs note thousands); a watchdog expiry always dumps, replacing
// any earlier error dump with the complete pre-stall history. Runs on
// the simulation goroutine, so no locking is needed.
func (w *World) dumpFlight(reason string, force bool) {
	if w.flightPath == "" || w.Flight == nil || (w.flightDumped && !force) {
		return
	}
	w.flightDumped = true
	err := func() error {
		f, err := os.Create(w.flightPath)
		if err != nil {
			return err
		}
		if err := telemetry.WriteTrace(f, w.Flight); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}()
	if w.log == nil {
		return
	}
	if err != nil {
		w.log.Error("flight dump failed", "reason", reason, "path", w.flightPath, "err", err.Error())
		return
	}
	w.log.Warn("flight recorder dumped", "reason", reason, "path", w.flightPath,
		"events", w.Flight.Len(), "dropped", w.Flight.Dropped())
}

// TelemetrySnapshot harvests every component's counters into the world
// registry and returns the frozen snapshot. Call after (or during) a run;
// harvesting is idempotent.
func (w *World) TelemetrySnapshot() telemetry.Snapshot {
	for _, n := range w.NICs {
		n.PublishTelemetry()
	}
	w.Net.Publish(w.Tel)
	return w.Tel.Snapshot()
}

// MsgKey returns the latency-phase key of a COMM_WORLD message: the
// packed envelope a send from rank src with the given tag puts on the
// wire. Workloads stamp StampInject with it before the send.
func MsgKey(src, tag int) uint64 {
	return uint64(match.Pack(match.Header{Context: worldContext, Source: int32(src), Tag: int32(tag)}))
}

// Rank is the per-process MPI handle passed to application programs.
type Rank struct {
	w  *World
	id int
	p  *sim.Process
	e  *proc.Engine
	h  *host.Host
}

// Request is a nonblocking-operation handle.
type Request struct {
	hr   *host.Request
	rank *Rank
}

// DoneAt reports when the completion became visible to the host (valid
// after Wait). Benchmarks use it for cross-rank one-way latencies.
func (req *Request) DoneAt() sim.Time { return req.hr.DoneAt }

// Status is the completion envelope of a receive (MPI_Status): the rank
// the matched message actually came from (essential for AnySource
// receives), its tag, and its size.
type Status struct {
	Source int
	Tag    int
	Size   int
}

// Status returns the receive's completion status. Valid after the
// request completed; sends return a zero Status.
func (req *Request) Status() Status {
	st := req.hr.Status
	if !st.Valid {
		return Status{Source: -1, Tag: -1}
	}
	return Status{Source: int(st.Source), Tag: int(st.Tag), Size: st.Size}
}

// Program is an application entry point (the rank's "main").
type Program func(r *Rank)

// SpawnRank starts prog as rank id.
func (w *World) SpawnRank(id int, prog Program) {
	h := w.Hosts[id]
	w.ranksLive++
	w.Eng.Spawn(fmt.Sprintf("rank%d", id), func(p *sim.Process) {
		r := &Rank{
			w:  w,
			id: id,
			p:  p,
			e:  proc.New(p, params.HostCPU(), h.Mem()),
			h:  h,
		}
		prog(r)
		w.ranksLive--
	})
}

// Run builds a world, runs prog on every rank, and simulates to
// completion.
func Run(cfg Config, prog Program) *World {
	w := NewWorld(cfg)
	for i := 0; i < cfg.Ranks; i++ {
		w.SpawnRank(i, prog)
	}
	w.Eng.Run()
	if w.ranksLive != 0 {
		panic(fmt.Sprintf("mpi: deadlock — %d ranks still blocked when the event queue drained", w.ranksLive))
	}
	return w
}

// RunPrograms runs a distinct program per rank.
func RunPrograms(cfg Config, progs []Program) *World {
	if len(progs) != cfg.Ranks {
		panic("mpi: len(progs) != cfg.Ranks")
	}
	w := NewWorld(cfg)
	for i, prog := range progs {
		w.SpawnRank(i, prog)
	}
	w.Eng.Run()
	if w.ranksLive != 0 {
		panic(fmt.Sprintf("mpi: deadlock — %d ranks still blocked when the event queue drained", w.ranksLive))
	}
	return w
}

// Rank returns the calling process's rank (MPI_Comm_rank on COMM_WORLD).
func (r *Rank) Rank() int { return r.id }

// Size returns the number of ranks (MPI_Comm_size on COMM_WORLD).
func (r *Rank) Size() int { return len(r.w.Hosts) }

// Now returns the current simulated time.
func (r *Rank) Now() sim.Time { return r.p.Now() }

// Compute models size-independent application computation.
func (r *Rank) Compute(d sim.Time) { r.p.Sleep(d) }

// World returns the cluster (for instrumentation).
func (r *Rank) World() *World { return r.w }

func (r *Rank) isend(ctx uint16, dst, tag, size int) *Request {
	return r.isendAs(ctx, uint16(r.id), dst, tag, size)
}

// isendAs sends with an explicit envelope source (the sender's rank
// within the communicator) to a world-rank destination.
func (r *Rank) isendAs(ctx, srcLocal uint16, dstWorld, tag, size int) *Request {
	if dstWorld < 0 || dstWorld >= r.Size() {
		panic(fmt.Sprintf("mpi: rank %d Isend to invalid world rank %d", r.id, dstWorld))
	}
	id := r.h.NewID()
	hr := r.h.Submit(r.e, nic.HostRequest{
		Kind: nic.ReqSend,
		ID:   id,
		Dst:  dstWorld,
		Hdr:  match.Header{Context: ctx, Source: int32(srcLocal), Tag: int32(tag)},
		Size: size,
	})
	return &Request{hr: hr, rank: r}
}

// allocContext returns a stable fresh context id for a collective
// derivation key; every rank computing the same key receives the same id.
func (w *World) allocContext(key string) uint16 {
	if c, ok := w.ctxTable[key]; ok {
		return c
	}
	w.nextCtx++
	if int(w.nextCtx) >= 1<<params.ContextBits {
		panic("mpi: context ids exhausted")
	}
	w.ctxTable[key] = w.nextCtx
	return w.nextCtx
}

// splitBoard returns the shared value board for one Split invocation.
func (w *World) splitBoard(ctx uint16, seq, n int) []any {
	key := fmt.Sprintf("%d:%d", ctx, seq)
	if b, ok := w.boards[key]; ok {
		return b
	}
	b := make([]any, n)
	w.boards[key] = b
	return b
}

func (r *Rank) irecv(ctx uint16, src, tag, size int) *Request {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("mpi: rank %d Irecv from invalid rank %d", r.id, src))
	}
	id := r.h.NewID()
	hr := r.h.Submit(r.e, nic.HostRequest{
		Kind:     nic.ReqRecv,
		ID:       id,
		Recv:     match.Recv{Context: ctx, Source: int32(src), Tag: int32(tag)},
		RecvSize: size,
	})
	return &Request{hr: hr, rank: r}
}

// Isend starts a nonblocking send of size bytes (MPI_Isend).
func (r *Rank) Isend(dst, tag, size int) *Request {
	return r.isend(worldContext, dst, tag, size)
}

// Irecv posts a nonblocking receive (MPI_Irecv). src may be AnySource and
// tag may be AnyTag.
func (r *Rank) Irecv(src, tag, size int) *Request {
	return r.irecv(worldContext, src, tag, size)
}

// Send is the blocking send (MPI_Send: built from Isend + Wait, Fig. 4).
func (r *Rank) Send(dst, tag, size int) {
	r.Wait(r.Isend(dst, tag, size))
}

// Recv is the blocking receive (MPI_Recv: Irecv + Wait, Fig. 4).
func (r *Rank) Recv(src, tag, size int) {
	r.Wait(r.Irecv(src, tag, size))
}

// Wait blocks until a request completes (MPI_Wait).
func (r *Rank) Wait(req *Request) {
	if req.rank != r {
		panic("mpi: Wait on a request from another rank")
	}
	r.h.Wait(r.e, req.hr)
}

// Waitall blocks until every request completes (MPI_Waitall, built from
// Wait per Fig. 4).
func (r *Rank) Waitall(reqs ...*Request) {
	for _, req := range reqs {
		r.Wait(req)
	}
}

// Iprobe checks whether a matching message is waiting in the unexpected
// queue without receiving it (MPI_Iprobe). It returns whether one was
// found and, if so, its status. Note the hardware angle (DESIGN.md): the
// ALPU cannot serve probes — its matches are destructive — so this path
// always costs a software traversal, even on an ALPU NIC.
func (r *Rank) Iprobe(src, tag int) (bool, Status) {
	return r.iprobe(worldContext, src, tag)
}

func (r *Rank) iprobe(ctx uint16, src, tag int) (bool, Status) {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("mpi: rank %d Iprobe from invalid rank %d", r.id, src))
	}
	id := r.h.NewID()
	hr := r.h.Submit(r.e, nic.HostRequest{
		Kind: nic.ReqProbe,
		ID:   id,
		Recv: match.Recv{Context: ctx, Source: int32(src), Tag: int32(tag)},
	})
	r.h.Wait(r.e, hr)
	if !hr.Status.Valid {
		return false, Status{Source: -1, Tag: -1}
	}
	return true, Status{Source: int(hr.Status.Source), Tag: int(hr.Status.Tag), Size: hr.Status.Size}
}

// Waitany blocks until at least one of the requests completes and
// returns its index (MPI_Waitany).
func (r *Rank) Waitany(reqs ...*Request) int {
	if len(reqs) == 0 {
		panic("mpi: Waitany with no requests")
	}
	for {
		for i, req := range reqs {
			if req.hr.Done {
				r.e.Cycles(params.HostCompletionPoll)
				r.h.Retire(req.hr)
				return i
			}
		}
		r.h.WaitAnyProgress(r.e)
	}
}

// Done reports (without blocking beyond a status check) whether the
// request has completed — MPI_Test.
func (r *Rank) Done(req *Request) bool {
	r.e.Cycles(params.HostCompletionPoll)
	return req.hr.Done
}

// Barrier tags on the system context.
const (
	barrierGatherTag  = 0x7ff0
	barrierReleaseTag = 0x7ff1
)

// Barrier synchronises all ranks (MPI_Barrier, built from point-to-point
// operations per Fig. 4): a linear gather to rank 0 and a release fan-out.
func (r *Rank) Barrier() {
	size := r.Size()
	if size == 1 {
		return
	}
	if r.id == 0 {
		for src := 1; src < size; src++ {
			r.wait(r.irecv(systemContext, src, barrierGatherTag, 0))
		}
		for dst := 1; dst < size; dst++ {
			r.wait(r.isend(systemContext, dst, barrierReleaseTag, 0))
		}
	} else {
		r.wait(r.isend(systemContext, 0, barrierGatherTag, 0))
		r.wait(r.irecv(systemContext, 0, barrierReleaseTag, 0))
	}
}

func (r *Rank) wait(req *Request) { r.h.Wait(r.e, req.hr) }
