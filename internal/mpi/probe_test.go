package mpi

import (
	"testing"

	"alpusim/internal/nic"
)

func TestIprobeFindsUnexpected(t *testing.T) {
	for name, cfg := range map[string]Config{
		"baseline": baseCfg(2),
		"hash":     {Ranks: 2, NIC: nic.Config{UseHashList: true}},
		"alpu":     alpuCfg(2, 64),
	} {
		t.Run(name, func(t *testing.T) {
			Run(cfg, func(r *Rank) {
				if r.Rank() == 0 {
					r.Send(1, 33, 512)
					r.Barrier()
				} else {
					r.Barrier() // the message is queued unexpected by now
					found, st := r.Iprobe(0, 33)
					if !found {
						t.Fatal("Iprobe missed the waiting message")
					}
					if st.Source != 0 || st.Tag != 33 || st.Size != 512 {
						t.Errorf("probe status = %+v", st)
					}
					// Probing is non-destructive: the message is still
					// there and a second probe sees it again.
					if found2, _ := r.Iprobe(0, 33); !found2 {
						t.Fatal("second Iprobe missed (probe consumed the message?)")
					}
					r.Recv(0, 33, 512)
					// Now it's gone.
					if found3, _ := r.Iprobe(0, 33); found3 {
						t.Fatal("Iprobe found a consumed message")
					}
				}
			})
		})
	}
}

func TestIprobeEmptyQueue(t *testing.T) {
	Run(baseCfg(2), func(r *Rank) {
		if r.Rank() == 1 {
			found, st := r.Iprobe(AnySource, AnyTag)
			if found {
				t.Error("Iprobe found a message on an empty queue")
			}
			if st.Source != -1 || st.Tag != -1 {
				t.Errorf("not-found status = %+v, want sentinel", st)
			}
		}
		r.Barrier()
	})
}

func TestIprobeWildcardAndComm(t *testing.T) {
	Run(baseCfg(3), func(r *Rank) {
		c := r.Comm()
		if c.Rank() == 0 {
			c.Barrier()
			// Two unexpected messages queued (ranks 1, 2). ANY probes
			// must report the first in queue order.
			found, st := c.Iprobe(AnySource, AnyTag)
			if !found {
				t.Fatal("wildcard probe missed")
			}
			if st.Source != 1 && st.Source != 2 {
				t.Errorf("probe source = %d", st.Source)
			}
			// Explicit probe for the other sender.
			other := 3 - st.Source
			found2, st2 := c.Iprobe(other, AnyTag)
			if !found2 || st2.Source != other {
				t.Errorf("explicit probe: found=%v st=%+v", found2, st2)
			}
			c.Recv(AnySource, AnyTag, 0)
			c.Recv(AnySource, AnyTag, 0)
		} else {
			c.Send(0, 50+c.Rank(), 0)
			c.Barrier()
		}
	})
}

// The design note the probe path exists to document: even on an ALPU NIC,
// probes traverse software (the unit cannot match non-destructively), so
// a probe against a deep unexpected queue costs full traversal work.
func TestIprobeBypassesALPU(t *testing.T) {
	const depth = 60
	w := Run(alpuCfg(2, 128), func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < depth; i++ {
				r.Send(1, 100+i, 0)
			}
			r.Barrier()
		} else {
			r.Barrier()
			traversedBefore := r.World().NICs[1].Stats().EntriesTraversed
			// Probe for the deepest message.
			found, _ := r.Iprobe(0, 100+depth-1)
			if !found {
				t.Fatal("probe missed the deepest message")
			}
			traversed := r.World().NICs[1].Stats().EntriesTraversed - traversedBefore
			if traversed < depth-5 {
				t.Errorf("probe traversed only %d entries; it must bypass the ALPU (want ~%d)",
					traversed, depth)
			}
			for i := 0; i < depth; i++ {
				r.Recv(0, 100+i, 0)
			}
		}
	})
	if w.NICs[1].UnexpLen() != 0 {
		t.Error("unexpected queue not drained")
	}
}
