package sweep_test

import (
	"strings"
	"testing"

	"alpusim/internal/bench"
	"alpusim/internal/mpi"
	"alpusim/internal/sweep"
)

func TestMapOrderedResults(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 64} {
		got := sweep.Map(jobs, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("jobs=%d: got %d results, want 100", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: result[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	if got := sweep.Map(4, 0, func(int) int { return 1 }); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	// jobs <= 0 selects GOMAXPROCS; must still produce every result.
	got := sweep.Map(-1, 5, func(i int) int { return i })
	if len(got) != 5 {
		t.Fatalf("jobs=-1: got %d results, want 5", len(got))
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	done := make([]bool, 10)
	tasks := make([]func(), 10)
	for i := range tasks {
		i := i
		tasks[i] = func() { done[i] = true }
	}
	sweep.Run(4, tasks...)
	for i, d := range done {
		if !d {
			t.Fatalf("task %d did not run", i)
		}
	}
}

// TestDeterminism is the ISSUE's acceptance property: the same Fig. 5
// quick sweep at -jobs 1 and -jobs 8 must produce identical points —
// every world is independent, so parallelism may not change any result.
func TestDeterminism(t *testing.T) {
	run := func(jobs int) []bench.PrepostedPoint {
		return bench.RunPreposted(bench.PrepostedConfig{
			NIC:       bench.NICConfig(bench.ALPU128),
			QueueLens: []int{0, 50, 100, 200},
			Fracs:     []float64{0, 0.5, 1.0},
			Jobs:      jobs,
		})
	}
	seq := run(1)
	par := run(8)
	if len(seq) != len(par) {
		t.Fatalf("jobs=1 produced %d points, jobs=8 produced %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("point %d differs: jobs=1 %+v, jobs=8 %+v", i, seq[i], par[i])
		}
	}
}

// TestPanicPropagation: a panicking point must fail the sweep on the
// caller's goroutine — after all workers drained — not deadlock the pool
// or kill the process.
func TestPanicPropagation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sweep with a panicking point did not panic")
		}
		if !strings.Contains(r.(string), "boom-point-3") {
			t.Fatalf("panic %q does not carry the point's panic value", r)
		}
	}()
	sweep.Map(4, 16, func(i int) int {
		if i == 3 {
			panic("boom-point-3")
		}
		return i
	})
}

// TestPanicFromWorld: a panic raised inside a co-simulated rank program —
// on the world's internal process goroutine — must surface through
// mpi.RunPrograms to the sweep worker and fail the sweep the same way.
func TestPanicFromWorld(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sweep with a panicking world did not panic")
		}
		if !strings.Contains(r.(string), "rank-program-boom") {
			t.Fatalf("panic %q does not carry the rank program's panic value", r)
		}
	}()
	sweep.Map(4, 8, func(i int) int {
		progs := []mpi.Program{
			func(r *mpi.Rank) { r.Send(1, 7, 0) },
			func(r *mpi.Rank) {
				r.Recv(0, 7, 0)
				if i == 5 {
					panic("rank-program-boom")
				}
			},
		}
		mpi.RunPrograms(mpi.Config{Ranks: 2}, progs)
		return i
	})
}
