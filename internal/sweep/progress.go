package sweep

import (
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracks live sweep completion for an external observer (the
// observability HTTP server). The hot path touched by workers is two
// atomic adds plus two time.Now calls per point — and nothing at all
// when no Progress is installed, preserving the pool's zero-overhead
// default. All times here are host wall-clock: progress is about the
// operator's wait, not the simulated clock.
type Progress struct {
	mu     sync.Mutex
	label  string // sticky base label applied to subsequently begun sweeps
	sweeps []*SweepStatus

	pointsTotal atomic.Int64
	pointsDone  atomic.Int64
	pointWallNs atomic.Int64 // summed per-point (per-world) wall time
}

// SweepStatus is the live state of one Map call.
type SweepStatus struct {
	owner   *Progress
	label   string
	total   int
	startNs int64
	done    atomic.Int64
	endNs   atomic.Int64 // 0 while running
}

// active is the process-wide tracker consumed by Map. Installed once at
// startup (before any sweeps run) when live observation is requested;
// the nil default costs workers a single atomic load per sweep.
var active atomic.Pointer[Progress]

// NewProgress returns an empty tracker.
func NewProgress() *Progress { return &Progress{} }

// SetProgress installs p as the tracker observed by every subsequent Map
// call (nil uninstalls). Call before launching sweeps.
func SetProgress(p *Progress) { active.Store(p) }

// SetLabel sets the label attached to sweeps begun from now on — the
// experiment phase name ("fig5/alpu-256"). Labels are advisory display
// strings; sweeps begun before the first SetLabel report "sweep".
func (p *Progress) SetLabel(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.label = label
	p.mu.Unlock()
}

// begin registers a sweep of n points and returns its live status (nil
// when p is nil, so Map can guard all accounting with one check).
func (p *Progress) begin(n int) *SweepStatus {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	st := &SweepStatus{owner: p, label: p.label, total: n, startNs: time.Now().UnixNano()}
	if st.label == "" {
		st.label = "sweep"
	}
	p.sweeps = append(p.sweeps, st)
	p.mu.Unlock()
	p.pointsTotal.Add(int64(n))
	return st
}

// point records one completed point and its wall time; safe from any
// worker goroutine, and a no-op on a nil status.
func (st *SweepStatus) point(wall time.Duration) {
	if st == nil {
		return
	}
	st.owner.pointWallNs.Add(int64(wall))
	st.owner.pointsDone.Add(1)
	if st.done.Add(1) == int64(st.total) {
		st.endNs.Store(time.Now().UnixNano())
	}
}

// SweepSnapshot is the frozen state of one sweep.
type SweepSnapshot struct {
	Label       string `json:"label"`
	Total       int    `json:"total"`
	Done        int64  `json:"done"`
	StartUnixNs int64  `json:"start_unix_ns"`
	EndUnixNs   int64  `json:"end_unix_ns,omitempty"` // 0 while running
}

// ProgressSnapshot is the frozen state of the whole tracker.
type ProgressSnapshot struct {
	PointsTotal int64           `json:"points_total"`
	PointsDone  int64           `json:"points_done"`
	PointWallNs int64           `json:"point_wall_ns"`
	Sweeps      []SweepSnapshot `json:"sweeps"`
}

// Snapshot freezes the tracker's current state. Counts are monotonically
// non-decreasing between successive snapshots.
func (p *Progress) Snapshot() ProgressSnapshot {
	var s ProgressSnapshot
	if p == nil {
		return s
	}
	p.mu.Lock()
	sweeps := make([]*SweepStatus, len(p.sweeps))
	copy(sweeps, p.sweeps)
	p.mu.Unlock()
	s.PointsTotal = p.pointsTotal.Load()
	s.PointsDone = p.pointsDone.Load()
	s.PointWallNs = p.pointWallNs.Load()
	s.Sweeps = make([]SweepSnapshot, len(sweeps))
	for i, st := range sweeps {
		s.Sweeps[i] = SweepSnapshot{
			Label:       st.label,
			Total:       st.total,
			Done:        st.done.Load(),
			StartUnixNs: st.startNs,
			EndUnixNs:   st.endNs.Load(),
		}
	}
	return s
}
