// Package sweep is the parallel sweep engine behind the figure benchmarks:
// it fans fully independent (config, point) simulation worlds across a
// worker pool with deterministic, index-ordered result collection.
//
// Every simulated world owns its engine, NICs, caches and RNG state
// (internal/sim engines are independent by construction), so point i's
// result depends only on i — never on scheduling — and a parallel sweep is
// byte-identical to a sequential one. Panics inside a world (including
// panics from co-simulated rank programs, which internal/sim re-raises on
// the world's goroutine) fail the whole sweep rather than deadlocking the
// pool.
package sweep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Jobs normalises a worker-count setting: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// panicRecord captures the first world panic observed by the pool.
type panicRecord struct {
	index int
	value any
	stack []byte
}

// Map runs fn(i) for every i in [0, n) on up to jobs workers and returns
// the results in index order. jobs <= 0 selects runtime.GOMAXPROCS(0);
// jobs == 1 runs inline on the caller's goroutine, exactly the historical
// sequential behaviour. If any fn panics, Map re-panics on the caller's
// goroutine with the first panic (by observation order) after all workers
// have drained — no goroutine is left blocked.
func Map[T any](jobs, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	out := make([]T, n)
	st := active.Load().begin(n)
	if jobs == 1 {
		for i := range out {
			runTimed(st, func() { out[i] = fn(i) })
		}
		return out
	}

	var (
		next   atomic.Int64 // next index to claim, minus one
		failed atomic.Bool  // stop claiming new points after a panic
		firstP atomic.Pointer[panicRecord]
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				runPoint(i, &failed, &firstP, func() {
					runTimed(st, func() { out[i] = fn(i) })
				})
			}
		}()
	}
	wg.Wait()
	if pr := firstP.Load(); pr != nil {
		panic(fmt.Sprintf("sweep: point %d panicked: %v\n%s", pr.index, pr.value, pr.stack))
	}
	return out
}

// runTimed runs one point, reporting completion and wall time to the
// live tracker when one is installed; the nil-status path adds nothing
// beyond this call.
func runTimed(st *SweepStatus, run func()) {
	if st == nil {
		run()
		return
	}
	t0 := time.Now()
	run()
	st.point(time.Since(t0))
}

// runPoint executes one point, converting a panic into a recorded failure.
func runPoint(i int, failed *atomic.Bool, firstP *atomic.Pointer[panicRecord], run func()) {
	defer func() {
		if r := recover(); r != nil {
			firstP.CompareAndSwap(nil, &panicRecord{index: i, value: r, stack: debug.Stack()})
			failed.Store(true)
		}
	}()
	run()
}

// Run executes heterogeneous independent tasks (e.g. the per-NIC series of
// one figure) across the pool and waits for all of them.
func Run(jobs int, tasks ...func()) {
	Map(jobs, len(tasks), func(i int) struct{} {
		tasks[i]()
		return struct{}{}
	})
}
