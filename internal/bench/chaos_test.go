package bench

import (
	"strings"
	"testing"
)

// TestRunChaosRecoversEveryMix: both figure workloads must finish under
// every fault mix (completion is the matching-correctness check — every
// probe must match its intended receive for the programs to drain), with
// the reliability machinery visibly engaged and zero unrecovered errors
// surfacing as panics.
func TestRunChaosRecoversEveryMix(t *testing.T) {
	results := RunChaos(ChaosConfig{NIC: NICConfig(ALPU128), Seed: 17, QueueLen: 30})
	if len(results) != 12 { // 2 workloads x (clean + 5 mixes)
		t.Fatalf("got %d results, want 12", len(results))
	}
	for _, r := range results {
		if r.Mix == "clean" {
			if r.Faults.Total() != 0 || r.Rel.Retransmits != 0 {
				t.Errorf("%s/clean: faults or retransmits in the fault-free reference: %+v %+v",
					r.Workload, r.Faults, r.Rel)
			}
			continue
		}
		if r.Faults.Total() == 0 {
			t.Errorf("%s/%s: fault model injected nothing", r.Workload, r.Mix)
		}
		if r.Latency <= 0 {
			t.Errorf("%s/%s: nonpositive latency %v", r.Workload, r.Mix, r.Latency)
		}
		switch r.Mix {
		case "drop":
			if r.Rel.Retransmits == 0 {
				t.Errorf("%s/drop: %d drops, zero retransmits", r.Workload, r.Faults.Dropped)
			}
		case "corrupt":
			if r.Rel.CsumDrops == 0 {
				t.Errorf("%s/corrupt: %d corruptions, zero checksum discards", r.Workload, r.Faults.Corrupted)
			}
		case "dup":
			if r.Rel.DupDrops == 0 {
				t.Errorf("%s/dup: %d duplicates, zero dup discards", r.Workload, r.Faults.Duplicated)
			}
		}
	}
}

// TestChaosReportDeterministic: same seed, bit-identical rendered report —
// the property the CI chaos determinism diff asserts end to end.
func TestChaosReportDeterministic(t *testing.T) {
	render := func() string {
		var b strings.Builder
		RenderChaos(&b, RunChaos(ChaosConfig{NIC: NICConfig(Baseline), Seed: 23, QueueLen: 20, Jobs: 4}))
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("chaos report diverged between identical runs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if !strings.Contains(a, "preposted") || !strings.Contains(a, "unexpected") {
		t.Errorf("report missing workloads:\n%s", a)
	}
}
