package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"alpusim/internal/network"
	"alpusim/internal/sim"
	"alpusim/internal/stats"
	"alpusim/internal/sweep"
	"alpusim/internal/telemetry"
)

// The critpath experiment: the Fig. 5 full-traversal workload re-run
// with the causal recorder attached, turning each cell's world into a
// causal DAG and reporting, per cell, the critical path from the first
// inject to the last completion, the per-resource blame table (fractions
// sum to exactly 100.0%), a what-if table (predicted critical path with
// one resource's edges zeroed — the Fig. 5 argument "what would a free
// search buy" computed from first principles), and the top-K slowest
// message chains. Every number is a pure function of the simulation, so
// the rendered report is byte-identical at any -jobs / -par setting.

// CritPathConfig parameterises the causal critical-path experiment: one
// cell per (NIC kind, queue length), each cell a fresh two-rank world
// with the posted queue traversed end to end.
type CritPathConfig struct {
	Kinds     []NICKind // nil = baseline, alpu-128, alpu-256
	QueueLens []int     // nil = {0, 32, 128, 512}
	MsgSize   int
	Iters     int
	// Jobs: parallel worlds, as in the figure benchmarks.
	Jobs int
	// Partitions: conservative parallel simulation per cell world.
	Partitions int
	// Faults runs the cells over a faulty network/device mix (reliability
	// forced on), so retransmit recovery and resync windows appear as
	// recovery/resync blame.
	Faults *network.FaultModel
	// TopK is the number of slowest chains kept per cell (default 3).
	TopK int
}

// CritPathPoint is one cell of the experiment.
type CritPathPoint struct {
	Kind     NICKind
	QueueLen int
	// Latency is the final-iteration end-to-end latency, measured exactly
	// as in the Fig. 5 benchmark; Report is the cell world's full causal
	// analysis.
	Latency sim.Time
	Report  telemetry.CausalReport
}

// Label names the cell for the obs /critpath endpoint.
func (p CritPathPoint) Label() string {
	return fmt.Sprintf("%s q=%d", p.Kind.String(), p.QueueLen)
}

func (c CritPathConfig) kinds() []NICKind {
	if len(c.Kinds) == 0 {
		return []NICKind{Baseline, ALPU128, ALPU256}
	}
	return c.Kinds
}

func (c CritPathConfig) queueLens() []int {
	if len(c.QueueLens) == 0 {
		return []int{0, 32, 128, 512}
	}
	return c.QueueLens
}

func (c CritPathConfig) topK() int {
	if c.TopK <= 0 {
		return 3
	}
	return c.TopK
}

// RunCritPath measures every (kind, queue length) cell. Cells are
// independent worlds with private recorders and run on cfg.Jobs workers;
// the result order is the enumeration order regardless of parallelism.
func RunCritPath(cfg CritPathConfig) []CritPathPoint {
	type cell struct {
		kind NICKind
		q    int
	}
	var cells []cell
	for _, k := range cfg.kinds() {
		for _, q := range cfg.queueLens() {
			cells = append(cells, cell{k, q})
		}
	}
	return sweep.Map(normJobs(cfg.Jobs), len(cells), func(i int) CritPathPoint {
		c := cells[i]
		pc := PrepostedConfig{
			NIC: NICConfig(c.kind), MsgSize: cfg.MsgSize, Iters: cfg.Iters,
			Partitions: cfg.Partitions,
			Telemetry:  telemetry.NewRegistry(),
			Causal:     telemetry.NewCausal(),
		}
		if cfg.Faults != nil {
			fm := *cfg.Faults
			pc.Faults = &fm
			pc.Watchdog = chaosWatchdogLimit
		}
		lat, _ := prepostedPoint(pc, c.q, c.q)
		rep, _ := pc.Causal.Analyze(cfg.topK())
		pt := CritPathPoint{Kind: c.kind, QueueLen: c.q, Latency: lat, Report: rep}
		if f := CritPathObserver; f != nil {
			f(pt.Label(), rep)
		}
		return pt
	})
}

// CritPathObserver, when set before RunCritPath, receives every cell's
// causal report after its world drained — the obs-server hook feeding
// /critpath. Called from sweep workers; must be safe for concurrent use.
var CritPathObserver func(label string, rep telemetry.CausalReport)

// permilleStr renders a permille share as a fixed-point percentage
// ("12.3%"), keeping the output integer-deterministic.
func permilleStr(pm int) string {
	return fmt.Sprintf("%d.%d%%", pm/10, pm%10)
}

// RenderCritPath writes the three report tables: per-cell blame (one
// resource column each, shares of the critical path summing to 100.0%),
// the what-if table (predicted critical path and speedup per zeroed
// resource), and the top-K slowest chains per cell.
func RenderCritPath(out io.Writer, points []CritPathPoint) {
	hdr := []string{"nic", "qlen", "msgs", "critpath_ns"}
	for res := telemetry.Resource(0); res < telemetry.NumResources; res++ {
		hdr = append(hdr, res.String())
	}
	tb := stats.NewTable(hdr...)
	for _, pt := range points {
		row := []any{pt.Kind.String(), pt.QueueLen, pt.Report.Messages,
			pt.Report.CriticalPath.Nanoseconds()}
		for _, b := range pt.Report.Blame {
			row = append(row, permilleStr(b.Permille))
		}
		tb.AddRow(row...)
	}
	fmt.Fprintln(out, "critical-path blame (share of critical path per resource):")
	tb.Render(out)

	wt := stats.NewTable(hdr...)
	for _, pt := range points {
		row := []any{pt.Kind.String(), pt.QueueLen, pt.Report.Messages,
			pt.Report.CriticalPath.Nanoseconds()}
		for _, wi := range pt.Report.WhatIf {
			row = append(row, fmt.Sprintf("%.2fx", wi.Speedup))
		}
		wt.AddRow(row...)
	}
	fmt.Fprintln(out, "\nwhat-if speedups (critical path re-walked with one resource free):")
	wt.Render(out)

	fmt.Fprintln(out, "\nslowest causal chains:")
	for _, pt := range points {
		fmt.Fprintf(out, "  %s:\n", pt.Label())
		for _, ch := range pt.Report.TopK {
			fmt.Fprintf(out, "    %s\n", ch.String())
		}
	}
}

// critPathDoc is the deterministic JSON shape of the experiment report.
type critPathDoc struct {
	Cells []critPathCell `json:"cells"`
}

type critPathCell struct {
	NIC        string                 `json:"nic"`
	QueueLen   int                    `json:"queue_len"`
	E2ELatency sim.Time               `json:"e2e_latency_ps"`
	Report     telemetry.CausalReport `json:"report"`
}

// WriteCritPathJSON renders the machine-readable report: one cell per
// (kind, queue length) in enumeration order. Identical runs produce
// identical bytes.
func WriteCritPathJSON(out io.Writer, points []CritPathPoint) error {
	doc := critPathDoc{Cells: []critPathCell{}}
	for _, pt := range points {
		doc.Cells = append(doc.Cells, critPathCell{
			NIC: pt.Kind.String(), QueueLen: pt.QueueLen,
			E2ELatency: pt.Latency, Report: pt.Report,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = out.Write(append(data, '\n'))
	return err
}
