package bench

import (
	"alpusim/internal/mpi"
	"alpusim/internal/nic"
	"alpusim/internal/params"
	"alpusim/internal/sim"
	"alpusim/internal/sweep"
)

// GapPoint is one measurement of the message-rate benchmark.
type GapPoint struct {
	Depth     int     // posted-queue entries ahead of every match
	NsPerMsg  float64 // receiver-side inter-message gap
	MsgsPerUs float64
}

// GapConfig parameterises the gap (message rate) benchmark. The paper's
// §I frames the ALPU's purpose in LogP terms: offload bought low
// overhead at the price of gap, because "time spent traversing queues
// leads to an increase in gap" — the NIC cannot service the next message
// until the current one's traversal finishes. A burst of back-to-back
// messages that each match at a fixed depth measures exactly that.
type GapConfig struct {
	NIC     nic.Config
	Depths  []int
	Burst   int // messages per measurement (default 32)
	MsgSize int
	// Jobs: parallel worlds, as in PrepostedConfig.
	Jobs int
	// Partitions: conservative parallel simulation, as in PrepostedConfig.
	Partitions int
}

// RunGap measures the achieved receiver-side message rate as a function
// of the match depth. Depths run on cfg.Jobs parallel worlds.
func RunGap(cfg GapConfig) []GapPoint {
	burst := cfg.Burst
	if burst <= 0 {
		burst = 32
	}
	return sweep.Map(normJobs(cfg.Jobs), len(cfg.Depths), func(i int) GapPoint {
		gap := gapPoint(cfg, cfg.Depths[i], burst)
		return GapPoint{
			Depth:     cfg.Depths[i],
			NsPerMsg:  gap.Nanoseconds(),
			MsgsPerUs: 1000 / gap.Nanoseconds(),
		}
	})
}

// gapPoint measures one depth: the receiver pre-posts d never-matching
// receives followed by the burst's receives in order, so every arriving
// message traverses exactly d entries before matching (consuming match k
// leaves match k+1 at the same depth).
func gapPoint(cfg GapConfig, d, burst int) sim.Time {
	var firstDone, lastDone sim.Time

	progs := []mpi.Program{
		func(r *mpi.Rank) {
			r.Barrier()
			reqs := make([]*mpi.Request, burst)
			for k := 0; k < burst; k++ {
				reqs[k] = r.Isend(1, matchBase+k, cfg.MsgSize)
			}
			r.Waitall(reqs...)
		},
		func(r *mpi.Rank) {
			for i := 0; i < d; i++ {
				r.Irecv(0, noMatchTag+i, 0)
			}
			reqs := make([]*mpi.Request, burst)
			for k := 0; k < burst; k++ {
				reqs[k] = r.Irecv(0, matchBase+k, cfg.MsgSize)
			}
			r.Barrier()
			r.Waitall(reqs...)
			firstDone = reqs[0].DoneAt()
			lastDone = reqs[burst-1].DoneAt()
		},
	}
	observeWorld(mpi.RunPrograms(mpi.Config{Ranks: 2, NIC: cfg.NIC, Partitions: cfg.Partitions}, progs))
	return (lastDone - firstDone) / sim.Time(burst-1)
}

// ElanNICConfig returns the §VI-B comparison NIC: a Quadrics-Elan4-class
// processor (~150 ns per traversed entry) with no ALPU.
func ElanNICConfig() nic.Config {
	cpu := params.ElanNIC()
	return nic.Config{CPUProfile: &cpu}
}
