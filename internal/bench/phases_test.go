package bench

import (
	"bytes"
	"strings"
	"testing"

	"alpusim/internal/network"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
	"alpusim/internal/trace"
)

// The acceptance check of the phase experiment: for every NIC kind the
// phase columns telescope to the message's own total, and that total IS
// the independently measured Fig. 5 end-to-end latency.
func TestPhasesSumToEndToEnd(t *testing.T) {
	pts := RunPhases(PhasesConfig{QueueLens: []int{0, 64}, Jobs: -1})
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6 (3 kinds x 2 queue lens)", len(pts))
	}
	for _, p := range pts {
		var sum int64
		for _, d := range p.Breakdown.Durs {
			sum += int64(d)
		}
		if sum != int64(p.Breakdown.Total) {
			t.Errorf("%s q=%d: phases sum to %d, total %d",
				p.Kind, p.QueueLen, sum, p.Breakdown.Total)
		}
		if p.Breakdown.Total != p.Latency {
			t.Errorf("%s q=%d: breakdown total %v != measured latency %v",
				p.Kind, p.QueueLen, p.Breakdown.Total, p.Latency)
		}
		if p.Latency <= 0 {
			t.Errorf("%s q=%d: non-positive latency %v", p.Kind, p.QueueLen, p.Latency)
		}
		if p.Totals.Messages == 0 {
			t.Errorf("%s q=%d: no completed messages in totals", p.Kind, p.QueueLen)
		}
	}
	// The ALPU's reason to exist: at a deep queue its search phase beats
	// the baseline's firmware traversal.
	byKind := map[NICKind]PhasePoint{}
	for _, p := range pts {
		if p.QueueLen == 64 {
			byKind[p.Kind] = p
		}
	}
	base := byKind[Baseline].Breakdown.Durs[telemetry.PhaseSearch]
	alpu := byKind[ALPU256].Breakdown.Durs[telemetry.PhaseSearch]
	if alpu >= base {
		t.Errorf("alpu-256 search phase %v not below baseline %v at q=64", alpu, base)
	}
}

// Satellite: telemetry output is a pure function of config and seed —
// table, merged metrics JSON, and trace bytes identical at any -jobs.
func TestPhasesDeterministic(t *testing.T) {
	run := func(jobs int) (string, string, string) {
		pts := RunPhases(PhasesConfig{
			Kinds:     []NICKind{Baseline, ALPU128},
			QueueLens: []int{8, 32},
			Iters:     6,
			Jobs:      jobs,
			Faults:    &network.FaultModel{DropProb: 0.05, Seed: 42},
			Trace:     true,
		})
		var table, metrics, tr bytes.Buffer
		RenderPhases(&table, pts)
		if err := MergedMetrics(pts).WriteJSON(&metrics); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WriteTrace(&tr, Tracers(pts)...); err != nil {
			t.Fatal(err)
		}
		return table.String(), metrics.String(), tr.String()
	}
	t1, m1, tr1 := run(1)
	t8, m8, tr8 := run(8)
	if t1 != t8 {
		t.Errorf("phase table differs across -jobs:\n%s\nvs\n%s", t1, t8)
	}
	if m1 != m8 {
		t.Error("metrics JSON differs across -jobs")
	}
	if tr1 != tr8 {
		t.Error("trace differs across -jobs")
	}
	if !strings.Contains(m1, "rel/data_sent") {
		t.Errorf("metrics JSON missing reliability counters:\n%.400s", m1)
	}
}

// The trace of a faulty ALPU run must show the hardware at work: search
// spans on the ALPU track and retransmit markers on the reliability
// track.
func TestTraceShowsSearchAndRetransmits(t *testing.T) {
	pts := RunPhases(PhasesConfig{
		Kinds:     []NICKind{ALPU128},
		QueueLens: []int{16},
		Iters:     30,
		Faults:    &network.FaultModel{DropProb: 0.1, Seed: 7},
		Trace:     true,
	})
	p := pts[0]
	if p.Metrics.Sum("rel/retransmits") == 0 {
		t.Fatal("fault model injected no retransmits; test needs a harsher mix")
	}
	var b bytes.Buffer
	if err := telemetry.WriteTrace(&b, p.Tracer); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"name":"search"`, `"name":"retransmit"`, `"posted-alpu"`, `"reliability"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

// Fault-free cells publish zeroed reliability counters only when the
// reliability engine is on; a clean run's error counters stay zero.
func TestPhasesCleanMetrics(t *testing.T) {
	pts := RunPhases(PhasesConfig{Kinds: []NICKind{Baseline}, QueueLens: []int{4}})
	s := pts[0].Metrics
	if s.Sum("err") != 0 {
		t.Errorf("clean run recorded %d protocol errors", s.Sum("err"))
	}
	if got := s.Sum("faults"); got != 0 {
		t.Errorf("clean run recorded %d injected faults", got)
	}
	if s.Sum("fw/packets_handled") == 0 {
		t.Error("firmware packet counters not published")
	}
}

// Device-fault recovery must stamp into the right phases: the retry,
// resync and failover delay a degraded cell suffers lands in the
// search/recovery/rxfifo side of the pipeline — never in deliver
// (match -> completion write), which is fault-free by construction — and
// the columns still telescope to the measured end-to-end latency.
func TestPhasesDeviceFaultsLandBeforeDeliver(t *testing.T) {
	clean := RunPhases(PhasesConfig{Kinds: []NICKind{ALPU128}, QueueLens: []int{64}})[0]
	cleanPerMsg := func(p telemetry.Phase) sim.Time {
		return clean.Totals.Durs[p] / sim.Time(clean.Totals.Messages)
	}
	scenarios := []struct {
		name string
		fm   network.FaultModel
	}{
		{"bitflip", network.FaultModel{Seed: 42, ALPUBitFlipProb: 0.1}},
		{"death-failover", network.FaultModel{Seed: 42, ALPUDeathAt: 1 * sim.Nanosecond}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			fm := sc.fm
			p := RunPhases(PhasesConfig{
				Kinds: []NICKind{ALPU128}, QueueLens: []int{64}, Faults: &fm,
			})[0]
			if p.Totals.Messages == 0 {
				t.Fatal("no completed messages under device faults")
			}
			// Telescoping must survive the fault machinery, per message and
			// in aggregate.
			var sum sim.Time
			for _, d := range p.Totals.Durs {
				sum += d
			}
			if sum != p.Totals.Total {
				t.Errorf("aggregate phases sum to %v, total %v", sum, p.Totals.Total)
			}
			var bsum sim.Time
			for _, d := range p.Breakdown.Durs {
				bsum += d
			}
			if bsum != p.Breakdown.Total || p.Breakdown.Total != p.Latency {
				t.Errorf("final-iteration phases %v / total %v / e2e %v diverge",
					bsum, p.Breakdown.Total, p.Latency)
			}
			// The recovery delay is real and visible upstream of delivery.
			perMsg := func(ph telemetry.Phase) sim.Time {
				return p.Totals.Durs[ph] / sim.Time(p.Totals.Messages)
			}
			degraded := perMsg(telemetry.PhaseSearch) + perMsg(telemetry.PhaseRecovery) +
				perMsg(telemetry.PhaseRxFIFO)
			baseline := cleanPerMsg(telemetry.PhaseSearch) + cleanPerMsg(telemetry.PhaseRecovery) +
				cleanPerMsg(telemetry.PhaseRxFIFO)
			if degraded <= baseline {
				t.Errorf("device faults added no search/recovery/rxfifo time: %v <= clean %v",
					degraded, baseline)
			}
			// Deliver (match -> completion) must not absorb recovery time.
			if got, want := perMsg(telemetry.PhaseDeliver), cleanPerMsg(telemetry.PhaseDeliver); got > want {
				t.Errorf("deliver phase grew under device faults: %v > clean %v", got, want)
			}
		})
	}
}

// The ALPU device publishes its per-probe search service time as a
// histogram, so the snapshot table and the Prometheus quantile gauges
// can report p50/p95/p99 search latency per unit.
func TestALPUSearchCyclesHistogramPublished(t *testing.T) {
	p := RunPhases(PhasesConfig{Kinds: []NICKind{ALPU128}, QueueLens: []int{32}})[0]
	populated := 0
	for name, h := range p.Metrics.Hists {
		if !strings.HasSuffix(name, "/search_cycles") || h.N() == 0 {
			continue // the unexpected-queue unit sees no probes here
		}
		populated++
		if h.Percentile(0.5) <= 0 {
			t.Errorf("%s p50 = %d, want > 0", name, h.Percentile(0.5))
		}
	}
	if populated == 0 {
		t.Errorf("no populated search_cycles histogram in snapshot; hists: %v",
			keysOf(p.Metrics.Hists))
	}
}

func keysOf(m map[string]trace.Histogram) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
