package bench

import (
	"fmt"
	"io"

	"alpusim/internal/mpi"
	"alpusim/internal/network"
	"alpusim/internal/sim"
	"alpusim/internal/stats"
	"alpusim/internal/sweep"
	"alpusim/internal/telemetry"
)

// The phases experiment: the Fig. 5 full-traversal workload re-run with
// the per-message phase recorder attached, decomposing the end-to-end
// latency into the pipeline phases of telemetry.Phases. The phase
// columns telescope — they sum exactly to the independently measured
// end-to-end latency — which is the cross-check RenderPhases exposes as
// its last two columns.

// PhasesConfig parameterises the phase-breakdown experiment: one cell
// per (NIC kind, queue length), each cell a fresh fully-instrumented
// two-rank world with the posted queue traversed end to end (the Fig. 5
// frac-1.0 diagonal).
type PhasesConfig struct {
	Kinds     []NICKind // nil = baseline, alpu-128, alpu-256
	QueueLens []int     // nil = {0, 32, 128, 512}
	MsgSize   int
	Iters     int
	// Jobs: parallel worlds, as in the figure benchmarks.
	Jobs int
	// Partitions: conservative parallel simulation per cell world, as in
	// PrepostedConfig.
	Partitions int
	// Faults runs the cells over a faulty network (reliability forced
	// on), so retransmit recovery shows up in the recovery column.
	Faults *network.FaultModel
	// Trace additionally collects a Chrome trace per cell
	// (PhasePoint.Tracer), ready for telemetry.WriteTrace.
	Trace bool
	// Series additionally samples per-NIC time series per cell
	// (PhasePoint.Series) at the default interval — the waterline data
	// behind the run report and the /timeseries endpoint.
	Series bool
}

// PhasePoint is one cell of the experiment.
type PhasePoint struct {
	Kind     NICKind
	QueueLen int
	// Latency is the final-iteration end-to-end latency, measured the
	// same way as the Fig. 5 benchmark (host send start -> host recv
	// completion); Breakdown is that iteration's phase decomposition,
	// whose Durs sum to Breakdown.Total == Latency.
	Latency   sim.Time
	Breakdown telemetry.Breakdown
	// Totals aggregates every instrumented message the cell completed
	// (probes, acks, barrier traffic), for mean-phase reporting.
	Totals telemetry.Totals
	// Metrics is the cell world's registry snapshot; Tracer is non-nil
	// when PhasesConfig.Trace was set, Series when PhasesConfig.Series
	// was.
	Metrics telemetry.Snapshot
	Tracer  *telemetry.Tracer
	Series  *telemetry.Sampler
}

func (c PhasesConfig) kinds() []NICKind {
	if len(c.Kinds) == 0 {
		return []NICKind{Baseline, ALPU128, ALPU256}
	}
	return c.Kinds
}

func (c PhasesConfig) queueLens() []int {
	if len(c.QueueLens) == 0 {
		return []int{0, 32, 128, 512}
	}
	return c.QueueLens
}

// RunPhases measures every (kind, queue length) cell. Cells are
// independent worlds with private recorders and run on cfg.Jobs workers;
// the result order is the enumeration order regardless of parallelism.
func RunPhases(cfg PhasesConfig) []PhasePoint {
	type cell struct {
		kind NICKind
		q    int
	}
	var cells []cell
	for _, k := range cfg.kinds() {
		for _, q := range cfg.queueLens() {
			cells = append(cells, cell{k, q})
		}
	}
	iters := PrepostedConfig{Iters: cfg.Iters}.iters()
	return sweep.Map(normJobs(cfg.Jobs), len(cells), func(i int) PhasePoint {
		c := cells[i]
		pc := PrepostedConfig{
			NIC: NICConfig(c.kind), MsgSize: cfg.MsgSize, Iters: iters,
			Partitions: cfg.Partitions,
			Telemetry:  telemetry.NewRegistry(),
			Phases:     telemetry.NewPhases(),
		}
		if cfg.Faults != nil {
			fm := *cfg.Faults
			pc.Faults = &fm
			pc.Watchdog = chaosWatchdogLimit
		}
		if cfg.Trace {
			pc.Tracer = telemetry.NewTracer()
		}
		if cfg.Series {
			pc.Series = telemetry.NewSampler(0, 0)
		}
		lat, w := prepostedPoint(pc, c.q, c.q)
		bd, _ := pc.Phases.Breakdown(mpi.MsgKey(0, matchBase+iters-1))
		return PhasePoint{
			Kind: c.kind, QueueLen: c.q, Latency: lat,
			Breakdown: bd, Totals: pc.Phases.Totals(),
			Metrics: w.TelemetrySnapshot(), Tracer: pc.Tracer,
			Series: pc.Series,
		}
	})
}

// MergedMetrics folds the per-cell registry snapshots in enumeration
// order (counters sum, gauges max, histograms merge).
func MergedMetrics(points []PhasePoint) telemetry.Snapshot {
	var s telemetry.Snapshot
	for _, p := range points {
		s.Merge(p.Metrics)
	}
	return s
}

// MergedSeries folds the per-cell samplers into one set, each cell's
// series prefixed "kind/q<len>/" — the experiment-wide waterline data
// behind -report and /timeseries. Returns nil when sampling was off.
func MergedSeries(points []PhasePoint) *telemetry.Sampler {
	var m *telemetry.Sampler
	for _, p := range points {
		if p.Series == nil {
			continue
		}
		if m == nil {
			m = telemetry.NewSampler(p.Series.Interval(), 0)
		}
		m.AbsorbAs(fmt.Sprintf("%s/q%d/", p.Kind, p.QueueLen), p.Series)
	}
	return m
}

// Tracers collects the non-nil per-cell tracers in enumeration order,
// ready for telemetry.WriteTrace.
func Tracers(points []PhasePoint) []*telemetry.Tracer {
	var ts []*telemetry.Tracer
	for _, p := range points {
		if p.Tracer != nil {
			ts = append(ts, p.Tracer)
		}
	}
	return ts
}

// RenderPhases writes the phase table: one row per cell, the phase
// columns in pipeline order (nanoseconds, final iteration), their
// telescoped total, and the independently measured end-to-end latency —
// total and e2e agreeing is the built-in consistency check.
func RenderPhases(out io.Writer, points []PhasePoint) {
	hdr := []string{"nic", "qlen"}
	for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
		hdr = append(hdr, p.String())
	}
	hdr = append(hdr, "total", "e2e")
	tb := stats.NewTable(hdr...)
	for _, pt := range points {
		row := []any{pt.Kind.String(), pt.QueueLen}
		for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
			row = append(row, pt.Breakdown.Durs[p].Nanoseconds())
		}
		row = append(row, pt.Breakdown.Total.Nanoseconds(), pt.Latency.Nanoseconds())
		tb.AddRow(row...)
	}
	tb.Render(out)
}
