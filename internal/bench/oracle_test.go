package bench

import (
	"bytes"
	"reflect"
	"testing"

	"alpusim/internal/alpu"
	"alpusim/internal/nic"
	"alpusim/internal/telemetry"
)

// The equivalence oracle for the batched ALPU fast path: every observable
// output — the Fig. 5/6 and gap benchmark results, the per-device
// alpu.Stats counters (including ShiftCycles and ResultStalls, which
// count simulated cycles the batching coalesces), and the telemetry
// metrics JSON — must be bit-identical between the default batched model
// and the per-cycle reference model (nic.Config.PerCycleALPU). See
// DESIGN.md "model performance" for why this holds by construction.

func oracleNIC(k NICKind, perCycle bool) nic.Config {
	c := NICConfig(k)
	c.PerCycleALPU = perCycle
	return c
}

func TestOracleFastPathMatchesPerCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("per-cycle reference runs are slow")
	}
	qs := []int{0, 40, 120}
	for _, k := range []NICKind{Baseline, ALPU128, ALPU256} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			fig5 := func(pc bool) []PrepostedPoint {
				return RunPreposted(PrepostedConfig{
					NIC: oracleNIC(k, pc), QueueLens: qs, Fracs: []float64{0, 0.5, 1},
				})
			}
			if fast, ref := fig5(false), fig5(true); !reflect.DeepEqual(fast, ref) {
				t.Errorf("fig5 diverges:\nfast: %+v\nref:  %+v", fast, ref)
			}
			fig6 := func(pc bool) []UnexpectedPoint {
				return RunUnexpected(UnexpectedConfig{
					NIC: oracleNIC(k, pc), QueueLens: qs, MsgSize: 64,
				})
			}
			if fast, ref := fig6(false), fig6(true); !reflect.DeepEqual(fast, ref) {
				t.Errorf("fig6 diverges:\nfast: %+v\nref:  %+v", fast, ref)
			}
			gap := func(pc bool) []GapPoint {
				return RunGap(GapConfig{NIC: oracleNIC(k, pc), Depths: []int{0, 50}})
			}
			if fast, ref := gap(false), gap(true); !reflect.DeepEqual(fast, ref) {
				t.Errorf("gap diverges:\nfast: %+v\nref:  %+v", fast, ref)
			}

			// One deep point with full instrumentation: ALPU counters and
			// the rendered metrics JSON.
			type deviceStats struct {
				Posted, Unexp alpu.Stats
			}
			deep := func(pc bool) ([]deviceStats, string) {
				reg := telemetry.NewRegistry()
				_, w := prepostedPoint(PrepostedConfig{
					NIC: oracleNIC(k, pc), Telemetry: reg,
				}, 120, 120)
				var stats []deviceStats
				for _, n := range w.NICs {
					var ds deviceStats
					if d := n.PostedALPU(); d != nil {
						ds.Posted = d.Stats()
					}
					if d := n.UnexpALPU(); d != nil {
						ds.Unexp = d.Stats()
					}
					stats = append(stats, ds)
				}
				var buf bytes.Buffer
				if err := w.TelemetrySnapshot().WriteJSON(&buf); err != nil {
					t.Fatalf("metrics JSON: %v", err)
				}
				return stats, buf.String()
			}
			fastStats, fastJSON := deep(false)
			refStats, refJSON := deep(true)
			if !reflect.DeepEqual(fastStats, refStats) {
				t.Errorf("alpu.Stats diverge:\nfast: %+v\nref:  %+v", fastStats, refStats)
			}
			if fastJSON != refJSON {
				t.Errorf("metrics JSON diverges:\nfast: %s\nref:  %s", fastJSON, refJSON)
			}
		})
	}
}
