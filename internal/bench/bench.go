// Package bench implements the two benchmarks of §V-A — the pre-posted
// receive queue benchmark behind Fig. 5 and the unexpected message queue
// benchmark behind Fig. 6 — plus the NIC configurations they compare
// (baseline, 128-entry ALPU, 256-entry ALPU) and helpers that extract the
// §VI-B text anchors from the measured series.
package bench

import (
	"alpusim/internal/mpi"
	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/sim"
	"alpusim/internal/sweep"
	"alpusim/internal/telemetry"
)

// Tags used by the workloads. NoMatchTag entries never match a probe;
// MatchBase+k is iteration k's probe; control-flow tags are above those.
const (
	noMatchTag = 0x1000
	matchBase  = 0x2000
	doneTag    = 0x3000
	goTag      = 0x3001
	ackBase    = 0x3100
)

// NICKind names the three evaluated configurations.
type NICKind int

const (
	// Baseline is the embedded-processor-only NIC (Red-Storm-like, §VI-B).
	Baseline NICKind = iota
	// ALPU128 adds 128-entry units for both queues.
	ALPU128
	// ALPU256 adds 256-entry units for both queues.
	ALPU256
)

func (k NICKind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case ALPU128:
		return "alpu-128"
	case ALPU256:
		return "alpu-256"
	default:
		return "custom"
	}
}

// PerCycleALPU, when set before building configs, forces the per-cycle
// ALPU reference model on every NICConfig result (the alpusim -percycle
// flag). The batched fast path and the reference model are bit-identical
// in observable behaviour; oracle_test.go enforces it per kind.
var PerCycleALPU bool

// WorldObserver, when set before any sweep starts, receives every
// benchmark world after it has drained — the live observability hook:
// alpusim -serve wires it to fold each world's telemetry snapshot into
// the /metrics endpoint. Called from sweep worker goroutines, so the
// observer must be safe for concurrent use; the world itself is
// finished and exclusively owned by the caller. Observation happens
// after all measured values are extracted and must not (and cannot)
// change them.
var WorldObserver func(w *mpi.World)

// observeWorld hands a drained world to the observer, if any.
func observeWorld(w *mpi.World) {
	if f := WorldObserver; f != nil && w != nil {
		f(w)
	}
}

// NICConfig returns the nic.Config for a named configuration.
func NICConfig(k NICKind) nic.Config {
	switch k {
	case ALPU128:
		return nic.Config{UseALPU: true, Cells: 128, PerCycleALPU: PerCycleALPU}
	case ALPU256:
		return nic.Config{UseALPU: true, Cells: 256, PerCycleALPU: PerCycleALPU}
	default:
		return nic.Config{}
	}
}

// PrepostedPoint is one cell of the Fig. 5 surface.
type PrepostedPoint struct {
	QueueLen  int     // non-matching entries in the posted receive queue
	Frac      float64 // requested fraction of the queue to traverse
	Traversed int     // entries actually in front of the match
	MsgSize   int
	Latency   sim.Time // one-way: send start (host) -> recv complete (host)
}

// PrepostedConfig parameterises the Fig. 5 benchmark (§V-A: three degrees
// of freedom — queue length, portion traversed, message size).
type PrepostedConfig struct {
	NIC       nic.Config
	QueueLens []int
	Fracs     []float64
	MsgSize   int
	// Iters is the number of measured probes per point; the final
	// iteration (cache steady state) is reported. Default 3.
	Iters int
	// Jobs is the number of simulation worlds run in parallel (each point
	// is an independent world, so results are identical at any setting).
	// 0 or 1 runs sequentially; < 0 selects runtime.GOMAXPROCS(0).
	Jobs int

	// Partitions runs each point's world under conservative parallel
	// simulation (mpi.Config.Partitions); 0 keeps the serial engine.
	Partitions int

	// Faults, when non-nil, runs each point's world over a faulty network
	// (the NIC reliability protocol is forced on); Watchdog bounds the
	// simulated time of such worlds (0 = none). Used by the chaos harness.
	Faults   *network.FaultModel
	Watchdog sim.Time

	// Telemetry / Tracer / Phases / Causal / Series instrument the point's
	// world. Each world must own its recorders, so these only make sense
	// when the config describes a single point (the phases, chaos and
	// critpath harnesses build a fresh config per cell).
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
	Phases    *telemetry.Phases
	Causal    *telemetry.Causal
	Series    *telemetry.Sampler
}

// jobs maps the config's zero value to the historical sequential run.
func normJobs(jobs int) int {
	if jobs == 0 {
		return 1
	}
	return sweep.Jobs(jobs)
}

// iters-many matching receives are pre-posted back to back at the chosen
// depth, so that consuming iteration k's entry leaves iteration k+1's at
// the same depth — traversal depth is constant across iterations without
// re-posting (which would move the entry to the tail).
func (c PrepostedConfig) iters() int {
	if c.Iters <= 0 {
		return 3
	}
	return c.Iters
}

// prepostedCell is one (queue length, fraction, traversed) cell of the
// surface, enumerated up front so the sweep engine can fan the cells out.
type prepostedCell struct {
	q int
	f float64
	p int
}

func (c PrepostedConfig) cells() []prepostedCell {
	var cells []prepostedCell
	for _, q := range c.QueueLens {
		seen := map[int]bool{}
		for _, f := range c.Fracs {
			p := int(f*float64(q) + 0.5)
			if p > q {
				p = q
			}
			if seen[p] {
				continue // distinct fractions can alias at small Q
			}
			seen[p] = true
			cells = append(cells, prepostedCell{q: q, f: f, p: p})
		}
	}
	return cells
}

// RunPreposted measures the full surface for one NIC configuration. Each
// point runs in a fresh two-node world: rank 0 sends the probe messages,
// rank 1 holds the pre-posted queue. Points are independent worlds and run
// on cfg.Jobs workers; the result order is the enumeration order
// regardless of parallelism.
func RunPreposted(cfg PrepostedConfig) []PrepostedPoint {
	cells := cfg.cells()
	return sweep.Map(normJobs(cfg.Jobs), len(cells), func(i int) PrepostedPoint {
		c := cells[i]
		lat, _ := prepostedPoint(cfg, c.q, c.p)
		return PrepostedPoint{
			QueueLen: c.q, Frac: c.f, Traversed: c.p,
			MsgSize: cfg.MsgSize, Latency: lat,
		}
	})
}

// prepostedPoint measures one (queue length, traversed) cell, returning
// the drained world for stats extraction (chaos harness).
func prepostedPoint(cfg PrepostedConfig, q, p int) (sim.Time, *mpi.World) {
	iters := cfg.iters()
	sendStart := make([]sim.Time, iters)
	recvDone := make([]sim.Time, iters)

	progs := []mpi.Program{
		// Rank 0: probe sender. Pre-posts its ack receives so the
		// return path never traverses a long queue.
		func(r *mpi.Rank) {
			acks := make([]*mpi.Request, iters)
			for k := 0; k < iters; k++ {
				acks[k] = r.Irecv(1, ackBase+k, 0)
			}
			r.Barrier()
			for k := 0; k < iters; k++ {
				key := mpi.MsgKey(0, matchBase+k)
				sendStart[k] = r.Now()
				cfg.Phases.Stamp(key, telemetry.StampInject, r.Now())
				cfg.Causal.Stamp(key, telemetry.StampInject, r.Now())
				// Rank 0 alone records the cause links — it owns the static
				// dependency structure of this workload: the ack exists
				// because the probe matched, and the next probe is posted
				// only once the ack completed. Single-writer, so the links
				// are identical at any partition count.
				cfg.Causal.Cause(mpi.MsgKey(1, ackBase+k), key)
				if k > 0 {
					cfg.Causal.Cause(key, mpi.MsgKey(1, ackBase+k-1))
				}
				r.Send(1, matchBase+k, cfg.MsgSize)
				r.Wait(acks[k])
			}
		},
		// Rank 1: queue holder. Builds [p non-matching][iters matching]
		// [q-p non-matching], then consumes the matching entries in order.
		func(r *mpi.Rank) {
			for i := 0; i < p; i++ {
				r.Irecv(0, noMatchTag+i, 0)
			}
			matches := make([]*mpi.Request, iters)
			for k := 0; k < iters; k++ {
				matches[k] = r.Irecv(0, matchBase+k, cfg.MsgSize)
			}
			for i := p; i < q; i++ {
				r.Irecv(0, noMatchTag+i, 0)
			}
			r.Barrier()
			for k := 0; k < iters; k++ {
				r.Wait(matches[k])
				recvDone[k] = matches[k].DoneAt()
				r.Send(0, ackBase+k, 0)
			}
		},
	}
	w := mpi.RunPrograms(mpi.Config{
		Ranks: 2, NIC: cfg.NIC, Partitions: cfg.Partitions,
		Faults: cfg.Faults, WatchdogLimit: cfg.Watchdog,
		Telemetry: cfg.Telemetry, Tracer: cfg.Tracer, Phases: cfg.Phases,
		Causal: cfg.Causal, Series: cfg.Series,
	}, progs)

	observeWorld(w)
	// Report the final iteration: cache and ALPU state have reached the
	// steady state the paper's repeated-iteration benchmark measures.
	return recvDone[iters-1] - sendStart[iters-1], w
}

// UnexpectedPoint is one point of the Fig. 6 series.
type UnexpectedPoint struct {
	QueueLen int
	MsgSize  int
	Latency  sim.Time
}

// UnexpectedConfig parameterises the Fig. 6 benchmark (§V-A: queue length
// and message size only).
type UnexpectedConfig struct {
	NIC       nic.Config
	QueueLens []int
	MsgSize   int
	// Jobs: parallel worlds, as in PrepostedConfig.
	Jobs int
	// Partitions: conservative parallel simulation, as in PrepostedConfig.
	Partitions int

	// Faults / Watchdog: as in PrepostedConfig (chaos harness).
	Faults   *network.FaultModel
	Watchdog sim.Time

	// Telemetry / Tracer / Phases: as in PrepostedConfig (single point only).
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
	Phases    *telemetry.Phases
}

// RunUnexpected measures latency — including the time to post the
// receive, overlapped with the transfer (§V-A, §VI-C) — as a function of
// the unexpected queue length. Points run on cfg.Jobs parallel worlds.
func RunUnexpected(cfg UnexpectedConfig) []UnexpectedPoint {
	return sweep.Map(normJobs(cfg.Jobs), len(cfg.QueueLens), func(i int) UnexpectedPoint {
		u := cfg.QueueLens[i]
		lat, _ := unexpectedPoint(cfg, u)
		return UnexpectedPoint{
			QueueLen: u,
			MsgSize:  cfg.MsgSize,
			Latency:  lat,
		}
	})
}

func unexpectedPoint(cfg UnexpectedConfig, u int) (sim.Time, *mpi.World) {
	var t0, t1 sim.Time

	progs := []mpi.Program{
		// Rank 0: floods rank 1 with u unexpected messages, then a DONE
		// marker; on GO it sends the latency-measuring message.
		func(r *mpi.Rank) {
			goReq := r.Irecv(1, goTag, 0)
			r.Barrier()
			for i := 0; i < u; i++ {
				r.Send(1, noMatchTag+i, cfg.MsgSize)
			}
			r.Send(1, doneTag, 0)
			r.Wait(goReq)
			cfg.Phases.Stamp(mpi.MsgKey(0, matchBase), telemetry.StampInject, r.Now())
			r.Send(1, matchBase, cfg.MsgSize)
		},
		// Rank 1: waits until the flood has fully arrived (DONE is
		// ordered behind it), then measures posting + completing the
		// receive; the posting search overlaps the GO/probe flight.
		func(r *mpi.Rank) {
			done := r.Irecv(0, doneTag, 0)
			r.Barrier()
			r.Wait(done)
			t0 = r.Now()
			r.Send(0, goTag, 0)
			req := r.Irecv(0, matchBase, cfg.MsgSize)
			r.Wait(req)
			t1 = req.DoneAt()
		},
	}
	w := mpi.RunPrograms(mpi.Config{
		Ranks: 2, NIC: cfg.NIC, Partitions: cfg.Partitions,
		Faults: cfg.Faults, WatchdogLimit: cfg.Watchdog,
		Telemetry: cfg.Telemetry, Tracer: cfg.Tracer, Phases: cfg.Phases,
	}, progs)
	observeWorld(w)
	return t1 - t0, w
}
