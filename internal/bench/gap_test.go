package bench

import (
	"testing"

	"alpusim/internal/mpi"
)

func TestGapGrowsWithDepthBaseline(t *testing.T) {
	pts := RunGap(GapConfig{NIC: NICConfig(Baseline), Depths: []int{0, 50, 150}})
	if len(pts) != 3 {
		t.Fatalf("points: %d", len(pts))
	}
	if !(pts[0].NsPerMsg < pts[1].NsPerMsg && pts[1].NsPerMsg < pts[2].NsPerMsg) {
		t.Errorf("gap not increasing with depth: %v %v %v",
			pts[0].NsPerMsg, pts[1].NsPerMsg, pts[2].NsPerMsg)
	}
	// Each message's traversal serialises the NIC: the marginal gap per
	// depth entry is roughly the per-entry traversal cost.
	slope := (pts[2].NsPerMsg - pts[0].NsPerMsg) / 150
	if slope < 10 || slope > 30 {
		t.Errorf("gap slope = %.1f ns/entry, want ~15 (warm traversal)", slope)
	}
}

func TestGapFlatWithALPU(t *testing.T) {
	pts := RunGap(GapConfig{NIC: NICConfig(ALPU256), Depths: []int{0, 50, 150}})
	if pts[2].NsPerMsg > pts[0].NsPerMsg*1.15 {
		t.Errorf("ALPU gap grew with depth: %v -> %v", pts[0].NsPerMsg, pts[2].NsPerMsg)
	}
	base := RunGap(GapConfig{NIC: NICConfig(Baseline), Depths: []int{150}})
	if pts[2].NsPerMsg >= base[0].NsPerMsg {
		t.Errorf("ALPU message rate (%.0f ns/msg) not better than baseline (%.0f) at depth 150",
			pts[2].NsPerMsg, base[0].NsPerMsg)
	}
}

// The §VI-B Elan4 comparison: "each entry traversed adds 150 ns of
// latency" on the Quadrics NIC vs ~15 ns on the Table III NIC — "the 10x
// performance improvement is not surprising".
func TestElanPerEntryComparison(t *testing.T) {
	elan := RunPreposted(PrepostedConfig{
		NIC:       ElanNICConfig(),
		QueueLens: []int{0, 100},
		Fracs:     []float64{1.0},
	})
	perEntry := (elan[1].Latency - elan[0].Latency).Nanoseconds() / 100
	if perEntry < 110 || perEntry > 190 {
		t.Errorf("Elan-class per-entry cost = %.1f ns, want ~150 (paper §VI-B)", perEntry)
	}

	table3 := RunPreposted(PrepostedConfig{
		NIC:       NICConfig(Baseline),
		QueueLens: []int{0, 100},
		Fracs:     []float64{1.0},
	})
	t3PerEntry := (table3[1].Latency - table3[0].Latency).Nanoseconds() / 100
	ratio := perEntry / t3PerEntry
	if ratio < 7 || ratio > 14 {
		t.Errorf("Elan/Table-III per-entry ratio = %.1fx, want ~10x (paper §VI-B)", ratio)
	}
}

func TestGapDefaultBurst(t *testing.T) {
	pts := RunGap(GapConfig{NIC: NICConfig(Baseline), Depths: []int{0}})
	if pts[0].NsPerMsg <= 0 || pts[0].MsgsPerUs <= 0 {
		t.Fatalf("degenerate gap point: %+v", pts[0])
	}
}

// Sanity: the gap benchmark layout really holds depth constant — the
// receiver queue keeps d non-matching entries ahead of every match.
func TestGapDepthInvariant(t *testing.T) {
	const d = 40
	var depths []int
	mpi.RunPrograms(mpi.Config{Ranks: 2}, []mpi.Program{
		func(r *mpi.Rank) {
			r.Barrier()
			for k := 0; k < 8; k++ {
				r.Send(1, matchBase+k, 0)
			}
		},
		func(r *mpi.Rank) {
			for i := 0; i < d; i++ {
				r.Irecv(0, noMatchTag+i, 0)
			}
			reqs := make([]*mpi.Request, 8)
			for k := 0; k < 8; k++ {
				reqs[k] = r.Irecv(0, matchBase+k, 0)
			}
			r.Barrier()
			r.Waitall(reqs...)
			h := r.World().NICs[1].PostedDepths()
			depths = append(depths, h.Max())
		},
	})
	// Every measured match landed at depth d; the only deeper match is
	// the barrier-release receive posted behind the whole queue (depth
	// d+burst). Anything beyond that means the depth drifted.
	if len(depths) == 0 || depths[len(depths)-1] < d || depths[len(depths)-1] > d+8 {
		t.Errorf("max match depth = %v, want within [%d, %d]", depths, d, d+8)
	}
}
