package bench

import (
	"testing"

	"alpusim/internal/sim"
)

func TestNICKindStrings(t *testing.T) {
	if Baseline.String() != "baseline" || ALPU128.String() != "alpu-128" ||
		ALPU256.String() != "alpu-256" || NICKind(9).String() != "custom" {
		t.Error("NICKind.String wrong")
	}
	if NICConfig(ALPU128).Cells != 128 || !NICConfig(ALPU128).UseALPU {
		t.Error("NICConfig(ALPU128) wrong")
	}
	if NICConfig(Baseline).UseALPU {
		t.Error("baseline config has ALPU")
	}
}

func TestPrepostedBaselineSlope(t *testing.T) {
	// The headline §VI-B anchor: ~15 ns per traversed entry in cache.
	pts := RunPreposted(PrepostedConfig{
		NIC:       NICConfig(Baseline),
		QueueLens: []int{0, 50, 100, 150, 200},
		Fracs:     []float64{1.0},
	})
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	perEntry := (pts[4].Latency - pts[0].Latency).Nanoseconds() / 200
	if perEntry < 12 || perEntry > 18 {
		t.Errorf("in-cache per-entry cost = %.1f ns, want ~15 (paper §VI-B)", perEntry)
	}
}

func TestPrepostedTraversedFractionMatters(t *testing.T) {
	// At fixed queue length, latency grows with the traversed portion:
	// the benchmark's second degree of freedom.
	pts := RunPreposted(PrepostedConfig{
		NIC:       NICConfig(Baseline),
		QueueLens: []int{200},
		Fracs:     []float64{0, 0.5, 1.0},
	})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if !(pts[0].Latency < pts[1].Latency && pts[1].Latency < pts[2].Latency) {
		t.Errorf("latency not increasing in traversed fraction: %v %v %v",
			pts[0].Latency, pts[1].Latency, pts[2].Latency)
	}
	// Zero-traversal latency is near the base latency regardless of the
	// 200 entries sitting behind the match.
	base := RunPreposted(PrepostedConfig{NIC: NICConfig(Baseline), QueueLens: []int{0}, Fracs: []float64{0}})
	if d := pts[0].Latency - base[0].Latency; d < 0 || d > 400*sim.Nanosecond {
		t.Errorf("untraversed 200-entry queue adds %v to base latency", d)
	}
}

func TestPrepostedALPUFlat(t *testing.T) {
	// §VI-B: "a flat latency curve until the length of the posted receive
	// queue crosses the size of the ALPU."
	pts := RunPreposted(PrepostedConfig{
		NIC:       NICConfig(ALPU128),
		QueueLens: []int{0, 64, 120, 192},
		Fracs:     []float64{1.0},
	})
	if pts[1].Latency != pts[0].Latency || pts[2].Latency != pts[0].Latency {
		t.Errorf("ALPU latency not flat within capacity: %v %v %v",
			pts[0].Latency, pts[1].Latency, pts[2].Latency)
	}
	if pts[3].Latency <= pts[0].Latency {
		t.Errorf("ALPU latency did not rise past capacity: %v vs %v",
			pts[3].Latency, pts[0].Latency)
	}
}

func TestPrepostedALPUPenaltyAndBreakEven(t *testing.T) {
	base := RunPreposted(PrepostedConfig{NIC: NICConfig(ALPU256), QueueLens: []int{0}, Fracs: []float64{1}})
	nolist := RunPreposted(PrepostedConfig{NIC: NICConfig(Baseline), QueueLens: []int{0}, Fracs: []float64{1}})
	penalty := (base[0].Latency - nolist[0].Latency).Nanoseconds()
	// Paper: ~80 ns penalty on zero-length queues.
	if penalty < 50 || penalty > 120 {
		t.Errorf("ALPU zero-queue penalty = %.0f ns, want ~80 (paper §VI-B)", penalty)
	}
	// Paper: break-even at ~5 entries.
	b5 := RunPreposted(PrepostedConfig{NIC: NICConfig(Baseline), QueueLens: []int{8}, Fracs: []float64{1}})
	a5 := RunPreposted(PrepostedConfig{NIC: NICConfig(ALPU256), QueueLens: []int{8}, Fracs: []float64{1}})
	if a5[0].Latency >= b5[0].Latency {
		t.Errorf("ALPU not ahead by 8 entries: alpu %v vs baseline %v", a5[0].Latency, b5[0].Latency)
	}
}

func TestUnexpectedCrossover(t *testing.T) {
	qs := []int{0, 25, 50, 75, 100, 150, 200}
	base := RunUnexpected(UnexpectedConfig{NIC: NICConfig(Baseline), QueueLens: qs})
	al := RunUnexpected(UnexpectedConfig{NIC: NICConfig(ALPU256), QueueLens: qs})
	a := ExtractFig6(base, al)
	// §VI-C: small loss for short queues ("a few tens of nanoseconds"),
	// clear advantage after ~70 entries.
	if a.ShortQueueLossNs <= 0 || a.ShortQueueLossNs > 300 {
		t.Errorf("short-queue ALPU loss = %.0f ns, want small positive", a.ShortQueueLossNs)
	}
	if a.CrossoverEntries < 25 || a.CrossoverEntries > 150 {
		t.Errorf("crossover at %d entries, want ~70 (paper §VI-C)", a.CrossoverEntries)
	}
	// The ALPU curve stays flat across this range.
	if al[len(al)-1].Latency > al[0].Latency+sim.Microsecond {
		t.Errorf("ALPU unexpected latency not flat: %v -> %v", al[0].Latency, al[len(al)-1].Latency)
	}
}

func TestExtractFig5Anchors(t *testing.T) {
	qls := []int{0, 5, 50, 100, 150, 200, 350, 400, 450, 500}
	base := RunPreposted(PrepostedConfig{NIC: NICConfig(Baseline), QueueLens: qls, Fracs: []float64{0.8, 1.0}})
	al := RunPreposted(PrepostedConfig{NIC: NICConfig(ALPU256), QueueLens: qls, Fracs: []float64{1.0}})
	a := ExtractFig5(base, al, 256)
	if a.InCacheNsPerEntry < 12 || a.InCacheNsPerEntry > 18 {
		t.Errorf("in-cache slope %.1f ns/entry, want ~15", a.InCacheNsPerEntry)
	}
	if a.OutOfCacheNsPerEntry < 45 || a.OutOfCacheNsPerEntry > 110 {
		t.Errorf("out-of-cache slope %.1f ns/entry, want ~64", a.OutOfCacheNsPerEntry)
	}
	if a.PenaltyNs < 50 || a.PenaltyNs > 120 {
		t.Errorf("penalty %.0f ns, want ~80", a.PenaltyNs)
	}
	if a.BreakEvenEntries < 3 || a.BreakEvenEntries > 9 {
		t.Errorf("break-even %.1f entries, want ~5", a.BreakEvenEntries)
	}
	if a.Full400TraversalUs < 8 || a.Full400TraversalUs > 26 {
		t.Errorf("400-entry traversal %.1f us, want ~13 (paper §VI-B)", a.Full400TraversalUs)
	}
	if a.Traverse80Of500Us < 15 || a.Traverse80Of500Us > 32 {
		t.Errorf("80%% of 500 traversal %.1f us, want ~24 (paper §VI-B)", a.Traverse80Of500Us)
	}
	if a.FlatUntil < 200 {
		t.Errorf("ALPU-256 flat region ends at %d, want ~256", a.FlatUntil)
	}
}

// The benchmark's third degree of freedom (§V-A): message size. Latency
// grows with payload (DMA + wire time), and the traversal penalty is
// additive on top of it.
func TestPrepostedMessageSizeDimension(t *testing.T) {
	latAt := func(size, q int) float64 {
		pts := RunPreposted(PrepostedConfig{
			NIC:       NICConfig(Baseline),
			QueueLens: []int{q},
			Fracs:     []float64{1.0},
			MsgSize:   size,
		})
		return pts[0].Latency.Nanoseconds()
	}
	zeroQ0 := latAt(0, 0)
	bigQ0 := latAt(2048, 0)
	if bigQ0 <= zeroQ0+1500 {
		// 2 KB at 2 B/ns wire + DMA each side ~ 2-3 us extra.
		t.Errorf("2KB payload added only %.0f ns over 0B", bigQ0-zeroQ0)
	}
	zeroQ100 := latAt(0, 100)
	bigQ100 := latAt(2048, 100)
	travSmall := zeroQ100 - zeroQ0
	travBig := bigQ100 - bigQ0
	// The traversal penalty is size-independent (within noise).
	if travBig < travSmall*0.7 || travBig > travSmall*1.3 {
		t.Errorf("traversal penalty varies with size: %.0f ns (0B) vs %.0f ns (2KB)",
			travSmall, travBig)
	}
}

func TestFracAliasingDeduped(t *testing.T) {
	pts := RunPreposted(PrepostedConfig{
		NIC:       NICConfig(Baseline),
		QueueLens: []int{2},
		Fracs:     []float64{0, 0.1, 0.2, 0.9, 1.0},
	})
	// Rounded depths collapse to {0, 2}: aliased fractions are deduped.
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 after de-aliasing", len(pts))
	}
}
