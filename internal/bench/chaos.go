package bench

import (
	"fmt"
	"io"

	"alpusim/internal/mpi"
	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/sim"
	"alpusim/internal/stats"
	"alpusim/internal/sweep"
)

// The chaos experiment: the Fig. 5 and Fig. 6 workloads re-run over a
// faulty network, with the NIC reliability protocol recovering. Latencies
// are expected to move (recovery costs time); the matching outcome is not
// — the workloads complete only if every probe matched its intended
// receive, so a finished run IS the correctness check, and the report
// focuses on what the recovery cost and how often each mechanism fired.

// chaosWatchdogLimit bounds each faulty world; these two-rank workloads
// drain in microseconds even under heavy recovery.
const chaosWatchdogLimit = 500 * sim.Millisecond

// ChaosMix is one named fault mix of the chaos matrix.
type ChaosMix struct {
	Name   string
	Faults network.FaultModel // Seed is overridden per run
}

// DefaultChaosMixes is the evaluation matrix: each fault class alone, then
// all four together.
func DefaultChaosMixes() []ChaosMix {
	return []ChaosMix{
		{"drop", network.FaultModel{DropProb: 0.02}},
		{"dup", network.FaultModel{DupProb: 0.02}},
		{"reorder", network.FaultModel{ReorderProb: 0.05}},
		{"corrupt", network.FaultModel{CorruptProb: 0.02}},
		{"all", network.FaultModel{DropProb: 0.01, DupProb: 0.01, ReorderProb: 0.01, CorruptProb: 0.01}},
	}
}

// ChaosConfig parameterises the chaos experiment.
type ChaosConfig struct {
	NIC  nic.Config
	Seed int64
	// Mixes is the fault matrix (nil = DefaultChaosMixes). A -faults flag
	// value becomes a single-entry matrix.
	Mixes []ChaosMix
	// QueueLen / MsgSize shape the workloads (0 = 50 entries / 1024 B).
	QueueLen int
	MsgSize  int
	// Jobs: parallel worlds, as in the figure benchmarks.
	Jobs int
	// Partitions: conservative parallel simulation per cell world, as in
	// PrepostedConfig. The report is identical at any setting >= 1.
	Partitions int
}

// ChaosResult is one (workload, mix) cell of the chaos report.
type ChaosResult struct {
	Workload string // "preposted" | "unexpected"
	Mix      string // "clean" is the fault-free reference
	Latency  sim.Time
	Faults   network.FaultStats
	Rel      nic.RelStats
	Errors   uint64 // recoverable protocol errors (NIC.Errors totals)
}

// worldTotals folds the per-NIC reliability and error counters of a
// drained world out of its telemetry registry: Sum("rel/retransmits")
// adds "nic0/rel/retransmits" + "nic1/rel/retransmits" + ...
func worldTotals(w *mpi.World) (nic.RelStats, uint64) {
	s := w.TelemetrySnapshot()
	rel := nic.RelStats{
		DataSent:    s.Sum("rel/data_sent"),
		Retransmits: s.Sum("rel/retransmits"),
		Timeouts:    s.Sum("rel/timeouts"),
		AcksSent:    s.Sum("rel/acks_sent"),
		NacksSent:   s.Sum("rel/nacks_sent"),
		RNRSent:     s.Sum("rel/rnr_sent"),
		AcksRecv:    s.Sum("rel/acks_recv"),
		NacksRecv:   s.Sum("rel/nacks_recv"),
		RNRRecv:     s.Sum("rel/rnr_recv"),
		CsumDrops:   s.Sum("rel/csum_drops"),
		DupDrops:    s.Sum("rel/dup_drops"),
		GapDrops:    s.Sum("rel/gap_drops"),
		Recoveries:  s.Sum("rel/recoveries"),
	}
	return rel, s.Sum("err")
}

// RunChaos runs both figure workloads fault-free and under every mix.
// Results are ordered (workload, then clean + mixes); cells run on
// cfg.Jobs parallel worlds but the order is deterministic regardless.
func RunChaos(cfg ChaosConfig) []ChaosResult {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 50
	}
	if cfg.MsgSize <= 0 {
		cfg.MsgSize = 1024
	}
	mixes := cfg.Mixes
	if mixes == nil {
		mixes = DefaultChaosMixes()
	}
	// Cell 0 of each workload is the fault-free reference.
	type cell struct {
		workload string
		mix      string
		fm       *network.FaultModel
	}
	var cells []cell
	for _, workload := range []string{"preposted", "unexpected"} {
		cells = append(cells, cell{workload, "clean", nil})
		for _, m := range mixes {
			fm := m.Faults
			fm.Seed = cfg.Seed
			cells = append(cells, cell{workload, m.Name, &fm})
		}
	}
	return sweep.Map(normJobs(cfg.Jobs), len(cells), func(i int) ChaosResult {
		c := cells[i]
		var lat sim.Time
		var w *mpi.World
		switch c.workload {
		case "preposted":
			// Many probe iterations: the figure run needs only the cache
			// steady state, but the chaos run needs enough transmissions for
			// percent-level fault rates to fire.
			lat, w = prepostedPoint(PrepostedConfig{
				NIC: cfg.NIC, MsgSize: cfg.MsgSize, Iters: 40,
				Faults: c.fm, Watchdog: chaosWatchdogLimit,
				Partitions: cfg.Partitions,
			}, cfg.QueueLen, cfg.QueueLen)
		default:
			lat, w = unexpectedPoint(UnexpectedConfig{
				NIC: cfg.NIC, MsgSize: cfg.MsgSize,
				Faults: c.fm, Watchdog: chaosWatchdogLimit,
				Partitions: cfg.Partitions,
			}, cfg.QueueLen)
		}
		rel, errs := worldTotals(w)
		return ChaosResult{
			Workload: c.workload, Mix: c.mix, Latency: lat,
			Faults: w.Net.FaultStats(), Rel: rel, Errors: errs,
		}
	})
}

// RenderChaos writes the chaos report as an aligned table. Output is a
// pure function of the config and seed (no wall-clock content), so two
// runs with the same seed diff empty — the CI determinism check.
func RenderChaos(out io.Writer, results []ChaosResult) {
	tb := stats.NewTable("workload", "mix", "latency",
		"injected(d/D/r/c)", "retx", "timeouts", "nacks", "rnr",
		"drops(csum/dup/gap)", "recoveries", "errors")
	for _, r := range results {
		tb.AddRow(
			r.Workload, r.Mix, r.Latency.String(),
			fmt.Sprintf("%d/%d/%d/%d", r.Faults.Dropped, r.Faults.Duplicated, r.Faults.Reordered, r.Faults.Corrupted),
			r.Rel.Retransmits, r.Rel.Timeouts, r.Rel.NacksSent, r.Rel.RNRSent,
			fmt.Sprintf("%d/%d/%d", r.Rel.CsumDrops, r.Rel.DupDrops, r.Rel.GapDrops),
			r.Rel.Recoveries, r.Errors,
		)
	}
	tb.Render(out)
}
