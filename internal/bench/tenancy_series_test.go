package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The tenancy sweep's waterlines: every configuration contributes its
// series under a "<config>/" prefix, the fabric rows expose per-shard
// depths, and the merged bytes are partition-invariant.
func TestTenancySeriesMerged(t *testing.T) {
	cfg := TenancyBenchConfig{
		Seed: 7, Ranks: 4, Comms: 4, Msgs: 128,
		Shards: []int{4}, Jobs: 1, Series: true,
	}
	run := func(par int) []byte {
		c := cfg
		c.Partitions = par
		m := MergedTenancySeries(RunTenancy(c))
		if m == nil {
			t.Fatalf("par %d: no merged series", par)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatalf("par %d: WriteJSON: %v", par, err)
		}
		return buf.Bytes()
	}
	p1 := run(1)
	for _, want := range []string{
		`"alpu-128/nic0/posted/depth"`,
		`"fabric-4/nic0/fabric/shard3/depth"`,
		`"sw-list/nic0/posted/depth"`,
	} {
		if !strings.Contains(string(p1), want) {
			t.Errorf("merged series missing %s", want)
		}
	}
	if p2 := run(2); !bytes.Equal(p1, p2) {
		t.Errorf("merged tenancy series differ between -par 1 and -par 2")
	}
}
