package bench

import (
	"fmt"
	"io"
	"strings"

	"alpusim/internal/nic"
	"alpusim/internal/sim"
	"alpusim/internal/stats"
	"alpusim/internal/sweep"
	"alpusim/internal/telemetry"
	"alpusim/internal/trace"
	"alpusim/internal/workloads"
)

// The heavy-tenancy sweep: the workload motivating the sharded matching
// fabric. K communicators share one receiver, the (communicator, source)
// traffic is Zipf-skewed, and the posted queue peaks far beyond a single
// ALPU's cell count — single-unit overflow thrash for a lone ALPU,
// near-ideal spread for the fabric. Each row runs the identical plan on
// a different matching configuration; the digest column must agree on
// every row (the fabric may cost or save time, never change outcomes).

// TenancyBenchConfig parameterises the sweep.
type TenancyBenchConfig struct {
	Seed  int64
	Ranks int // world size (0 = 8); rank 0 is the receiver
	Comms int // communicators / tenants (0 = 12)
	Msgs  int // pre-posted receives (0 = 1536)
	Cells int // ALPU cells per matching unit (0 = 128)
	// Shards lists the fabric widths to sweep (nil = 2, 4, 8); the
	// software-list and single-ALPU baselines always run first.
	Shards     []int
	Jobs       int
	Partitions int
	// Series attaches a time-series sampler to every configuration's
	// receiver world — the per-config occupancy waterlines behind
	// -report / -timeseries (MergedTenancySeries).
	Series bool
}

func (c *TenancyBenchConfig) norm() {
	if c.Ranks <= 0 {
		c.Ranks = 8
	}
	if c.Comms <= 0 {
		c.Comms = 12
	}
	if c.Msgs <= 0 {
		c.Msgs = 1536
	}
	if c.Cells <= 0 {
		c.Cells = 128
	}
	if c.Shards == nil {
		c.Shards = []int{2, 4, 8}
	}
}

// TenancyRow is one configuration row of the report.
type TenancyRow struct {
	Config  string
	Shards  int // 0 = no fabric (software list or single ALPU)
	Digest  uint64
	Match   bool // digest equals the software-list reference
	Elapsed sim.Time

	// Dispatch-cache split and overflow churn (fabric rows only).
	CacheHits, CacheMisses uint64
	Promotions, Demotions  uint64
	WildBroadcasts         uint64

	PeakPosted int
	ShardPeaks []int // receiver NIC, per-shard peak occupancy

	// Match-latency quantiles (ns) over every posted-side search on the
	// receiver, software and ALPU paths alike.
	P50, P95, P99 int64

	// Series is the configuration's time-series sampler (nil unless
	// TenancyBenchConfig.Series was set).
	Series *telemetry.Sampler
}

// matchLatNs merges the per-NIC match-latency histograms (64 ns units)
// and returns the p-quantile in nanoseconds.
func matchLatNs(rep workloads.Report, p float64) int64 {
	var h trace.Histogram
	for name, hh := range rep.Telemetry.Hists {
		if strings.HasSuffix(name, "/posted/match_lat64") {
			h.Merge(&hh)
		}
	}
	return int64(h.Percentile(p)) * 64
}

// tenancyRow runs one configuration over the shared plan and harvests
// its row. shards == 0 with alpuOn == false is the software-list
// reference; shards <= 1 with alpuOn is the single-ALPU baseline.
func tenancyRow(cfg TenancyBenchConfig, name string, alpuOn bool, shards int) TenancyRow {
	nc := nic.Config{UseALPU: alpuOn, PerCycleALPU: PerCycleALPU}
	if alpuOn {
		nc.Cells = cfg.Cells
	}
	if shards > 1 {
		nc.MatchShards = shards
	}
	var opts []workloads.Option
	if cfg.Partitions > 0 {
		opts = append(opts, workloads.WithPartitions(cfg.Partitions))
	}
	var sa *telemetry.Sampler
	if cfg.Series {
		sa = telemetry.NewSampler(0, 0)
		opts = append(opts, workloads.WithSeries(sa))
	}
	rep := workloads.Tenancy(nc, workloads.TenancyParams{
		Ranks: cfg.Ranks, Comms: cfg.Comms, Msgs: cfg.Msgs, Seed: cfg.Seed,
	}, opts...)
	row := TenancyRow{
		Config: name, Shards: nc.MatchShards, Digest: rep.Digest,
		Elapsed: rep.Elapsed, PeakPosted: rep.PeakPosted,
		P50: matchLatNs(rep.Report, 0.5),
		P95: matchLatNs(rep.Report, 0.95),
		P99: matchLatNs(rep.Report, 0.99),
		Series: sa,
	}
	if nc.MatchShards > 1 {
		snap := rep.Telemetry
		row.CacheHits = snap.Counter("nic0/fabric/cache_hits")
		row.CacheMisses = snap.Counter("nic0/fabric/cache_misses")
		row.Promotions = snap.Counter("nic0/fabric/overflow_promotions")
		row.Demotions = snap.Counter("nic0/fabric/overflow_demotions")
		row.WildBroadcasts = snap.Counter("nic0/fabric/wild_broadcasts")
		for i := 0; i < nc.MatchShards; i++ {
			g := snap.Gauges[fmt.Sprintf("nic0/fabric/shard%d/peak_len", i)]
			row.ShardPeaks = append(row.ShardPeaks, int(g))
		}
	}
	return row
}

// RunTenancy runs the software-list reference, the single-ALPU baseline,
// then every fabric width over the identical Zipf plan. Rows run on
// cfg.Jobs parallel worlds; the report is byte-identical regardless.
func RunTenancy(cfg TenancyBenchConfig) []TenancyRow {
	cfg.norm()
	type cell struct {
		name   string
		alpuOn bool
		shards int
	}
	cells := []cell{
		{"sw-list", false, 0},
		{fmt.Sprintf("alpu-%d", cfg.Cells), true, 0},
	}
	for _, s := range cfg.Shards {
		cells = append(cells, cell{fmt.Sprintf("fabric-%d", s), true, s})
	}
	rows := sweep.Map(normJobs(cfg.Jobs), len(cells), func(i int) TenancyRow {
		c := cells[i]
		return tenancyRow(cfg, c.name, c.alpuOn, c.shards)
	})
	for i := range rows {
		rows[i].Match = rows[i].Digest == rows[0].Digest
	}
	return rows
}

// RenderTenancy writes the sweep as an aligned table plus the headline
// p99 comparison: the fabric's tail win over the single-ALPU baseline.
// Output is a pure function of the config and seed.
func RenderTenancy(out io.Writer, rows []TenancyRow) {
	tb := stats.NewTable("config", "verdict", "digest", "elapsed",
		"cache hit%", "peak(shards)", "promo/demo", "wildcasts",
		"p50 ns", "p95 ns", "p99 ns")
	for _, r := range rows {
		verdict := "MATCH"
		if !r.Match {
			verdict = "DIVERGED"
		}
		cacheCol, peaksCol, churnCol, wildCol := "·", fmt.Sprint(r.PeakPosted), "·", "·"
		if r.Shards > 1 {
			if total := r.CacheHits + r.CacheMisses; total > 0 {
				cacheCol = fmt.Sprintf("%.1f", 100*float64(r.CacheHits)/float64(total))
			}
			peaks := make([]string, len(r.ShardPeaks))
			for i, p := range r.ShardPeaks {
				peaks[i] = fmt.Sprint(p)
			}
			peaksCol = fmt.Sprintf("%d (%s)", r.PeakPosted, strings.Join(peaks, "/"))
			churnCol = fmt.Sprintf("%d/%d", r.Promotions, r.Demotions)
			wildCol = fmt.Sprint(r.WildBroadcasts)
		}
		tb.AddRow(r.Config, verdict, fmt.Sprintf("%016x", r.Digest), r.Elapsed.String(),
			cacheCol, peaksCol, churnCol, wildCol, r.P50, r.P95, r.P99)
	}
	tb.Render(out)
	var base, fab4 *TenancyRow
	for i := range rows {
		r := &rows[i]
		switch {
		case base == nil && r.Shards == 0 && strings.HasPrefix(r.Config, "alpu-"):
			base = r
		case r.Shards == 4:
			fab4 = r
		}
	}
	if base != nil && fab4 != nil && fab4.P99 > 0 {
		fmt.Fprintf(out, "p99 match latency: %s %d ns -> %s %d ns = %.2fx (target >= 2x)\n",
			base.Config, base.P99, fab4.Config, fab4.P99,
			float64(base.P99)/float64(fab4.P99))
	}
}

// MergedTenancySeries folds the per-configuration samplers into one set,
// each row's series prefixed "<config>/" ("alpu-128/nic0/posted/depth",
// "fabric-4/nic0/fabric/shard2/depth", ...) — the waterline comparison
// behind -report and /timeseries. Returns nil when sampling was off.
func MergedTenancySeries(rows []TenancyRow) *telemetry.Sampler {
	var m *telemetry.Sampler
	for _, r := range rows {
		if r.Series == nil {
			continue
		}
		if m == nil {
			m = telemetry.NewSampler(r.Series.Interval(), 0)
		}
		m.AbsorbAs(r.Config+"/", r.Series)
	}
	return m
}

// WriteTenancyOutcomes dumps one configuration's receive outcomes in
// posting order plus the digest — the CI byte-diff format. Any two
// matching configurations (any shard count, any -par) must produce the
// identical bytes: timing never appears here.
func WriteTenancyOutcomes(out io.Writer, p workloads.TenancyParams, rep workloads.TenancyReport) {
	fmt.Fprintf(out, "tenancy ranks=%d comms=%d msgs=%d seed=%d\n", p.Ranks, p.Comms, p.Msgs, p.Seed)
	for i, st := range rep.Statuses {
		fmt.Fprintf(out, "recv %4d src=%d tag=%d size=%d\n", i, st.Source, st.Tag, st.Size)
	}
	fmt.Fprintf(out, "digest %016x\n", rep.Digest)
}

// TenancyOutcomes runs one matching configuration (shards <= 1 is the
// single-ALPU baseline, 0 ALPU cells means software list) over the same
// plan RunTenancy uses and returns its report for WriteTenancyOutcomes.
func TenancyOutcomes(cfg TenancyBenchConfig, shards int) (workloads.TenancyParams, workloads.TenancyReport) {
	cfg.norm()
	nc := nic.Config{UseALPU: true, Cells: cfg.Cells, PerCycleALPU: PerCycleALPU}
	if shards > 1 {
		nc.MatchShards = shards
	}
	var opts []workloads.Option
	if cfg.Partitions > 0 {
		opts = append(opts, workloads.WithPartitions(cfg.Partitions))
	}
	p := workloads.TenancyParams{Ranks: cfg.Ranks, Comms: cfg.Comms, Msgs: cfg.Msgs, Seed: cfg.Seed}
	return p, workloads.Tenancy(nc, p, opts...)
}
