package bench

import (
	"alpusim/internal/sim"
	"alpusim/internal/stats"
)

// Fig5Anchors are the §VI-B text anchors extracted from measured Fig. 5
// series (100 % traversal projections).
type Fig5Anchors struct {
	// BaseLatencyNs is the baseline NIC zero-queue latency.
	BaseLatencyNs float64
	// ALPUBaseLatencyNs is the ALPU NIC zero-queue latency.
	ALPUBaseLatencyNs float64
	// PenaltyNs is the ALPU's added base latency (paper: ~80 ns).
	PenaltyNs float64
	// InCacheNsPerEntry is the per-entry traversal cost while the queue
	// fits in the NIC cache (paper: ~15 ns).
	InCacheNsPerEntry float64
	// OutOfCacheNsPerEntry is the marginal cost past the cache knee
	// (paper: ~64 ns).
	OutOfCacheNsPerEntry float64
	// BreakEvenEntries is the queue length where the ALPU overtakes the
	// baseline (paper: ~5).
	BreakEvenEntries float64
	// Full400TraversalUs is the traversal component of a full 400-entry
	// list (paper: ~13 us).
	Full400TraversalUs float64
	// Traverse80Of500Us is the traversal component of 80 % of a 500-entry
	// list (paper: ~24 us).
	Traverse80Of500Us float64
	// FlatUntil is the largest measured queue length at which the ALPU
	// curve is still within one traversal-entry of its base (paper: the
	// ALPU size).
	FlatUntil int
}

// at returns the latency of the point with the given traversal depth and
// queue length, or -1.
func at(pts []PrepostedPoint, q, traversed int) sim.Time {
	for _, p := range pts {
		if p.QueueLen == q && p.Traversed == traversed {
			return p.Latency
		}
	}
	return -1
}

// fullTraversal returns the (queue length, latency) series of the
// 100 %-traversed points.
func fullTraversal(pts []PrepostedPoint) (qs []float64, lats []float64, base sim.Time) {
	base = -1
	for _, p := range pts {
		if p.Traversed != p.QueueLen {
			continue
		}
		qs = append(qs, float64(p.QueueLen))
		lats = append(lats, p.Latency.Nanoseconds())
		if p.QueueLen == 0 {
			base = p.Latency
		}
	}
	return qs, lats, base
}

// ExtractFig5 computes the anchor numbers from a baseline series and an
// ALPU series (both must cover queue lengths 0..500 at full traversal;
// anchors whose inputs are missing are left zero).
func ExtractFig5(baseline, alpuPts []PrepostedPoint, alpuCells int) Fig5Anchors {
	var a Fig5Anchors
	qs, lats, base := fullTraversal(baseline)
	if base >= 0 {
		a.BaseLatencyNs = base.Nanoseconds()
	}

	// In-cache slope: fit over the region safely below the cache knee.
	var xs, ys []float64
	for i, q := range qs {
		if q >= 5 && q <= 200 {
			xs = append(xs, q)
			ys = append(ys, lats[i])
		}
	}
	a.InCacheNsPerEntry, _ = stats.LinearFit(xs, ys)

	// Out-of-cache cost: the paper reports it as the *average* per-entry
	// cost once the queue no longer fits ("the average time per entry
	// traversed grows to 64 ns", §VI-B) — compute it at the deepest
	// full-traversal point.
	maxQ, maxLat := 0.0, 0.0
	for i, q := range qs {
		if q > maxQ {
			maxQ, maxLat = q, lats[i]
		}
	}
	if maxQ > 0 && base >= 0 {
		a.OutOfCacheNsPerEntry = (maxLat - a.BaseLatencyNs) / maxQ
	}

	if l := at(baseline, 400, 400); l >= 0 && base >= 0 {
		a.Full400TraversalUs = (l - base).Microseconds()
	}
	if l := at(baseline, 500, 400); l >= 0 && base >= 0 {
		a.Traverse80Of500Us = (l - base).Microseconds()
	}

	aqs, alats, abase := fullTraversal(alpuPts)
	if abase >= 0 {
		a.ALPUBaseLatencyNs = abase.Nanoseconds()
		a.PenaltyNs = a.ALPUBaseLatencyNs - a.BaseLatencyNs
	}
	if a.InCacheNsPerEntry > 0 {
		a.BreakEvenEntries = a.PenaltyNs / a.InCacheNsPerEntry
	}
	// Flat region: the largest queue length with latency within one
	// in-cache entry cost of the ALPU base.
	for i, q := range aqs {
		if alats[i] <= a.ALPUBaseLatencyNs+a.InCacheNsPerEntry {
			if int(q) > a.FlatUntil {
				a.FlatUntil = int(q)
			}
		}
	}
	_ = alpuCells
	return a
}

// Fig6Anchors are the §VI-C anchors from the unexpected-queue series.
type Fig6Anchors struct {
	// BaselineFlatNs is the baseline latency with an empty unexpected
	// queue (the overlap-hidden region).
	BaselineFlatNs float64
	// ALPUFlatNs is the ALPU latency in the same region.
	ALPUFlatNs float64
	// ShortQueueLossNs is the ALPU's loss on short queues (paper: a few
	// tens of ns).
	ShortQueueLossNs float64
	// CrossoverEntries is the queue length where the baseline first
	// exceeds the ALPU (paper: ~70).
	CrossoverEntries int
}

// ExtractFig6 computes the Fig. 6 anchors. The two series must share
// queue lengths.
func ExtractFig6(baseline, alpuPts []UnexpectedPoint) Fig6Anchors {
	var a Fig6Anchors
	if len(baseline) == 0 || len(alpuPts) == 0 {
		return a
	}
	a.BaselineFlatNs = baseline[0].Latency.Nanoseconds()
	a.ALPUFlatNs = alpuPts[0].Latency.Nanoseconds()
	a.ShortQueueLossNs = a.ALPUFlatNs - a.BaselineFlatNs
	a.CrossoverEntries = -1
	for i, b := range baseline {
		if i < len(alpuPts) && b.Latency > alpuPts[i].Latency {
			a.CrossoverEntries = b.QueueLen
			break
		}
	}
	return a
}
