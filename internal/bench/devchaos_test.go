package bench

import (
	"strings"
	"testing"
)

// TestRunDevChaosEveryScenarioMatches: every device-fault scenario must
// complete (no hang — a dying device may cost time, never progress) with
// a matching digest byte-identical to the clean software-only reference,
// and with its fault class visibly injected.
func TestRunDevChaosEveryScenarioMatches(t *testing.T) {
	results := RunDevChaos(DevChaosConfig{Seed: 42})
	if len(results) != len(DefaultDevChaosScenarios()) {
		t.Fatalf("got %d results, want %d", len(results), len(DefaultDevChaosScenarios()))
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("%s: digest %016x diverged from the clean reference", r.Scenario, r.Digest)
		}
		if r.Latency <= 0 {
			t.Errorf("%s: nonpositive latency %v", r.Scenario, r.Latency)
		}
		switch r.Scenario {
		case "bitflip-storm":
			if r.BitFlips == 0 || r.Resyncs == 0 {
				t.Errorf("bitflip-storm idle: flips=%d resyncs=%d", r.BitFlips, r.Resyncs)
			}
		case "result-drops":
			if r.DroppedResults == 0 || r.Strikes == 0 {
				t.Errorf("result-drops idle: drops=%d strikes=%d", r.DroppedResults, r.Strikes)
			}
		case "alpu-death":
			if r.Deaths == 0 || r.ShadowRebuilds == 0 {
				t.Errorf("alpu-death: no failover recorded: deaths=%d rebuilds=%d", r.Deaths, r.ShadowRebuilds)
			}
		case "fw-crash-loop":
			if r.FwCrashes == 0 || r.FwCrashes != r.FwRestarts {
				t.Errorf("fw-crash-loop: crashes=%d restarts=%d", r.FwCrashes, r.FwRestarts)
			}
		}
	}
}

// TestDevChaosReportDeterministic: same seed, bit-identical rendered
// report at serial and partitioned simulation — the property the CI
// devchaos determinism diff asserts end to end.
func TestDevChaosReportDeterministic(t *testing.T) {
	render := func(parts int) string {
		var b strings.Builder
		RenderDevChaos(&b, RunDevChaos(DevChaosConfig{Seed: 7, Jobs: 4, Partitions: parts}))
		return b.String()
	}
	serial := render(0)
	if again := render(0); again != serial {
		t.Errorf("devchaos report diverged between identical runs:\n--- run 1\n%s--- run 2\n%s", serial, again)
	}
	if par := render(4); par != serial {
		t.Errorf("devchaos report diverged between -par 1 and -par 4:\n--- serial\n%s--- par\n%s", serial, par)
	}
	if !strings.Contains(serial, "alpu-death") || !strings.Contains(serial, "MATCH") {
		t.Errorf("report missing scenarios:\n%s", serial)
	}
	if strings.Contains(serial, "DIVERGED") {
		t.Errorf("report contains diverged scenario:\n%s", serial)
	}
}
