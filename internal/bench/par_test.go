package bench

import (
	"strings"
	"testing"

	"alpusim/internal/network"
	"alpusim/internal/nic"
)

// renderChaosString runs the chaos matrix at one partition count and
// renders the report.
func renderChaosString(t *testing.T, parts int) string {
	t.Helper()
	var sb strings.Builder
	RenderChaos(&sb, RunChaos(ChaosConfig{
		NIC:  nic.Config{UseALPU: true, Cells: 64},
		Seed: 42,
		Mixes: []ChaosMix{
			{Name: "all", Faults: network.FaultModel{DropProb: 0.01, DupProb: 0.01, ReorderProb: 0.01, CorruptProb: 0.01}},
		},
		QueueLen:   30,
		MsgSize:    512,
		Partitions: parts,
	}))
	return sb.String()
}

// TestChaosReportPartitionsInvariant pins the experiment-level guarantee
// the CI determinism job relies on: the rendered chaos report is
// byte-identical at -par 1 and -par 2 (each cell world has two ranks, so
// two partitions is full spread).
func TestChaosReportPartitionsInvariant(t *testing.T) {
	ref := renderChaosString(t, 1)
	if got := renderChaosString(t, 2); got != ref {
		t.Errorf("chaos report diverged between par1 and par2:\n--- par1\n%s\n--- par2\n%s", ref, got)
	}
	if !strings.Contains(ref, "all") {
		t.Fatalf("chaos report missing the fault mix row:\n%s", ref)
	}
}
