package bench

import (
	"bytes"
	"testing"

	"alpusim/internal/network"
	"alpusim/internal/sim"
)

// The structural invariants of every causal report: blame shares sum to
// exactly 100.0%, blame durations sum to the critical path itself, and
// the critical path covers every single-message makespan component (no
// chain is longer than the path that by construction extends it).
func TestCritPathBlameInvariants(t *testing.T) {
	pts := RunCritPath(CritPathConfig{QueueLens: []int{0, 64}, Jobs: -1})
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6 (3 kinds x 2 queue lens)", len(pts))
	}
	for _, pt := range pts {
		rep := pt.Report
		if rep.Messages == 0 {
			t.Errorf("%s: no completed messages", pt.Label())
			continue
		}
		pm := 0
		var durs sim.Time
		for _, b := range rep.Blame {
			pm += b.Permille
			durs += b.Dur
		}
		if pm != 1000 {
			t.Errorf("%s: blame permille sums to %d, want 1000", pt.Label(), pm)
		}
		if durs != rep.CriticalPath {
			t.Errorf("%s: blame durations sum to %v, critical path %v",
				pt.Label(), durs, rep.CriticalPath)
		}
		if len(rep.PathKeys) == 0 {
			t.Errorf("%s: empty critical path", pt.Label())
		}
		for _, ch := range rep.TopK {
			if rep.CriticalPath < ch.Total {
				t.Errorf("%s: critical path %v shorter than chain %v",
					pt.Label(), rep.CriticalPath, ch.Total)
			}
		}
		// The final-iteration e2e latency is one chain of the DAG, so the
		// critical path can never undercut it.
		if rep.CriticalPath < pt.Latency {
			t.Errorf("%s: critical path %v < measured e2e latency %v",
				pt.Label(), rep.CriticalPath, pt.Latency)
		}
		if rep.LastDone <= rep.FirstStart {
			t.Errorf("%s: degenerate makespan [%v, %v]", pt.Label(), rep.FirstStart, rep.LastDone)
		}
	}
}

// The Fig. 5 argument, derived rather than asserted: at a deep posted
// queue, making search free would shorten the baseline's critical path
// far more than the ALPU world's, because the ALPU already removed the
// linear traversal from the path.
func TestCritPathWhatIfFig5Ordering(t *testing.T) {
	pts := RunCritPath(CritPathConfig{QueueLens: []int{128}, Jobs: -1})
	speedup := func(kind NICKind) float64 {
		for _, pt := range pts {
			if pt.Kind != kind {
				continue
			}
			for _, wi := range pt.Report.WhatIf {
				if wi.Resource == "search" {
					return wi.Speedup
				}
			}
		}
		t.Fatalf("no search what-if row for %s", kind)
		return 0
	}
	base, alpu := speedup(Baseline), speedup(ALPU256)
	if base <= alpu {
		t.Errorf("free search speeds baseline up %vx, alpu-256 %vx; want baseline >",
			base, alpu)
	}
	if alpu < 1.0 {
		t.Errorf("alpu-256 what-if speedup %v < 1 (zeroing a resource cannot slow the run)", alpu)
	}
}

// The whole report — rendered tables and JSON — is byte-identical at any
// -jobs and -par setting, including under a fault mix exercising
// retransmits and device resync windows.
func TestCritPathDeterministic(t *testing.T) {
	run := func(jobs, par int) (string, string) {
		pts := RunCritPath(CritPathConfig{
			Kinds:      []NICKind{Baseline, ALPU128},
			QueueLens:  []int{8, 64},
			Jobs:       jobs,
			Partitions: par,
			Faults: &network.FaultModel{
				Seed: 42, DropProb: 0.05, ALPUBitFlipProb: 0.02,
			},
		})
		var table, doc bytes.Buffer
		RenderCritPath(&table, pts)
		if err := WriteCritPathJSON(&doc, pts); err != nil {
			t.Fatal(err)
		}
		return table.String(), doc.String()
	}
	t1, d1 := run(1, 1)
	t8, d8 := run(8, 1)
	tp, dp := run(1, 2)
	if t1 != t8 {
		t.Errorf("table differs across -jobs:\n%s\nvs\n%s", t1, t8)
	}
	if d1 != d8 {
		t.Error("JSON report differs across -jobs")
	}
	if t1 != tp {
		t.Errorf("table differs across -par:\n%s\nvs\n%s", t1, tp)
	}
	if d1 != dp {
		t.Error("JSON report differs across -par")
	}
}

// Device faults must surface as resync blame on the causal report: a
// bit-flip storm (strikes, retries, resync windows) and an early ALPU
// death (every subsequent search via the firmware's hash shadow) both
// re-attribute search-gap time to the resync resource.
func TestCritPathResyncBlameUnderDeviceFaults(t *testing.T) {
	scenarios := []struct {
		name string
		fm   network.FaultModel
	}{
		{"bitflip", network.FaultModel{Seed: 42, ALPUBitFlipProb: 0.1}},
		{"death-failover", network.FaultModel{Seed: 42, ALPUDeathAt: 1 * sim.Nanosecond}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			fm := sc.fm
			pts := RunCritPath(CritPathConfig{
				Kinds: []NICKind{ALPU128}, QueueLens: []int{64}, Faults: &fm,
			})
			rep := pts[0].Report
			if rep.Messages == 0 {
				t.Fatal("no completed messages under device faults")
			}
			var resync, deliver sim.Time
			for _, b := range rep.Blame {
				switch b.Resource {
				case "resync":
					resync = b.Dur
				case "deliver":
					deliver = b.Dur
				}
			}
			if resync == 0 {
				t.Error("device-fault run attributed no critical-path time to resync")
			}
			// Fault recovery must not leak into the delivery edge: compare
			// against a clean run of the same cell.
			clean := RunCritPath(CritPathConfig{
				Kinds: []NICKind{ALPU128}, QueueLens: []int{64},
			})[0].Report
			var cleanDeliver sim.Time
			for _, b := range clean.Blame {
				if b.Resource == "deliver" {
					cleanDeliver = b.Dur
				}
			}
			if deliver > cleanDeliver {
				t.Errorf("deliver blame grew under device faults: %v > clean %v "+
					"(recovery time must land in resync, not deliver)", deliver, cleanDeliver)
			}
		})
	}
}
