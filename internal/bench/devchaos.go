package bench

import (
	"fmt"
	"io"
	"math/rand"

	"alpusim/internal/mpi"
	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/sim"
	"alpusim/internal/stats"
	"alpusim/internal/sweep"
)

// The device-chaos campaign: a random many-to-many soak over N-rank ALPU
// worlds whose devices corrupt cells, drop results, stall, die outright,
// or whose firmware crashes — each scenario digest-verified against a
// clean software-only run of the identical traffic plan. A scenario
// passes only if the matching outcome (which sender and tag every posted
// receive resolved to, and its size) is byte-identical to the clean
// reference: device faults may cost time, never correctness.

// DevChaosScenario is one named cell of the campaign matrix.
type DevChaosScenario struct {
	Name   string
	Faults network.FaultModel // Seed is overridden per run
}

// DefaultDevChaosScenarios is the campaign matrix: each device-fault
// class alone, a wire-fault rider, then the meltdown mix.
func DefaultDevChaosScenarios() []DevChaosScenario {
	return []DevChaosScenario{
		{"bitflip-storm", network.FaultModel{ALPUBitFlipProb: 0.02}},
		{"result-drops", network.FaultModel{ALPUResultDropProb: 0.05}},
		{"stuck-cycles", network.FaultModel{ALPUStuckProb: 0.1}},
		{"alpu-death", network.FaultModel{ALPUDeathAt: 30 * sim.Microsecond}},
		{"fw-crash-loop", network.FaultModel{FwCrashProb: 0.02}},
		{"link-flap", network.FaultModel{LinkFlapFrac: 0.05}},
		{"meltdown", network.FaultModel{
			DropProb: 0.01, DupProb: 0.01, LinkFlapFrac: 0.02,
			ALPUBitFlipProb: 0.01, ALPUResultDropProb: 0.02,
			ALPUDeathAt: 50 * sim.Microsecond, FwCrashProb: 0.005,
		}},
	}
}

// DevChaosConfig parameterises the campaign.
type DevChaosConfig struct {
	NIC  nic.Config // the ALPU NIC under test (UseALPU is forced on)
	Seed int64
	// Ranks / Msgs shape the soak plan (0 = 4 ranks / 64 messages).
	Ranks int
	Msgs  int
	// Scenarios is the fault matrix (nil = DefaultDevChaosScenarios).
	Scenarios []DevChaosScenario
	// Jobs: parallel worlds, as in the figure benchmarks.
	Jobs int
	// Partitions: conservative parallel simulation per cell world. The
	// report is byte-identical at any setting >= 1.
	Partitions int
}

// DevChaosResult is one scenario row of the campaign report.
type DevChaosResult struct {
	Scenario string
	Digest   uint64
	Match    bool // digest equals the clean software-only reference
	Latency  sim.Time

	// Device-side injection counters (alpu_faults rollup).
	BitFlips, Quarantines, DroppedResults, StuckCycles, DeadDiscards uint64
	// Firmware-side recovery counters (nic_failover rollup).
	Strikes, Resyncs, Deaths, ShadowRebuilds, FwCrashes, FwRestarts uint64
}

// devChaosPlan is the deterministic many-to-many traffic plan: unique
// tags keep the matching unambiguous, so every configuration must produce
// the same pairing; a third of the receives are wildcards.
type devChaosOp struct {
	src, dst, tag, size int
	wildcard            bool
}

func devChaosPlan(seed int64, ranks, msgs int) []devChaosOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]devChaosOp, msgs)
	for i := range ops {
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks)
		for dst == src {
			dst = rng.Intn(ranks)
		}
		ops[i] = devChaosOp{
			src: src, dst: dst, tag: i,
			size:     []int{0, 64, 1024, 8192}[rng.Intn(4)],
			wildcard: rng.Intn(3) == 0,
		}
	}
	return ops
}

// runDevChaosWorld drives the plan through one world and folds every
// receive's matching outcome into an FNV-1a digest, rank by rank in plan
// order — deliberately independent of completion timing, which faults
// are allowed to change.
func runDevChaosWorld(cfg mpi.Config, plan []devChaosOp) (uint64, sim.Time, *mpi.World) {
	ranks := cfg.Ranks
	statuses := make([][]mpi.Status, ranks)
	ends := make([]sim.Time, ranks)
	progs := make([]mpi.Program, ranks)
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		progs[rank] = func(r *mpi.Rank) {
			var reqs []*mpi.Request
			for _, op := range plan {
				if op.dst != rank {
					continue
				}
				src := op.src
				if op.wildcard {
					src = mpi.AnySource
				}
				reqs = append(reqs, r.Irecv(src, op.tag, op.size))
			}
			r.Barrier()
			for _, op := range plan {
				if op.src != rank {
					continue
				}
				r.Wait(r.Isend(op.dst, op.tag, op.size))
			}
			for _, req := range reqs {
				r.Wait(req)
				statuses[rank] = append(statuses[rank], req.Status())
			}
			r.Barrier()
			ends[rank] = r.Now()
		}
	}
	w := mpi.RunPrograms(cfg, progs)
	var end sim.Time
	for _, e := range ends {
		if e > end {
			end = e
		}
	}
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 0x100000001b3
		}
	}
	for rank, sts := range statuses {
		for i, st := range sts {
			mix(uint64(rank))
			mix(uint64(i))
			mix(uint64(int64(st.Source)))
			mix(uint64(int64(st.Tag)))
			mix(uint64(int64(st.Size)))
		}
	}
	return h, end, w
}

// RunDevChaos runs the clean software-only reference, then every scenario
// over the identical plan, verifying each digest against the reference.
// Cells run on cfg.Jobs parallel worlds but the result order (and every
// byte of the report) is deterministic regardless.
func RunDevChaos(cfg DevChaosConfig) []DevChaosResult {
	if cfg.Ranks <= 0 {
		cfg.Ranks = 4
	}
	if cfg.Msgs <= 0 {
		cfg.Msgs = 64
	}
	scenarios := cfg.Scenarios
	if scenarios == nil {
		scenarios = DefaultDevChaosScenarios()
	}
	plan := devChaosPlan(cfg.Seed, cfg.Ranks, cfg.Msgs)
	clean, _, _ := runDevChaosWorld(mpi.Config{
		Ranks: cfg.Ranks, Partitions: cfg.Partitions,
		WatchdogLimit: chaosWatchdogLimit,
	}, plan)
	results := sweep.Map(normJobs(cfg.Jobs), len(scenarios), func(i int) DevChaosResult {
		s := scenarios[i]
		fm := s.Faults
		fm.Seed = cfg.Seed
		nc := cfg.NIC
		nc.UseALPU = true
		if nc.Cells <= 0 {
			nc.Cells = 64
		}
		// Tight recovery policy: these soaks drain in a few hundred
		// simulated microseconds, so the default 10µs-doubling timeouts
		// would let a dying device coast to the end of the run without
		// ever striking out.
		if nc.FaultResultTimeout == 0 {
			nc.FaultResultTimeout = 1 * sim.Microsecond
		}
		if nc.FaultRetryBase == 0 {
			nc.FaultRetryBase = 4 * sim.Microsecond
		}
		digest, lat, w := runDevChaosWorld(mpi.Config{
			Ranks: cfg.Ranks, NIC: nc, Partitions: cfg.Partitions,
			Faults: &fm, WatchdogLimit: chaosWatchdogLimit,
		}, plan)
		snap := w.TelemetrySnapshot()
		return DevChaosResult{
			Scenario: s.Name, Digest: digest, Match: digest == clean, Latency: lat,
			BitFlips:       snap.Sum("alpu_faults/bit_flips"),
			Quarantines:    snap.Sum("alpu_faults/parity_quarantines"),
			DroppedResults: snap.Sum("alpu_faults/dropped_results"),
			StuckCycles:    snap.Sum("alpu_faults/stuck_cycles"),
			DeadDiscards:   snap.Sum("alpu_faults/dead_discards"),
			Strikes:        snap.Sum("nic_failover/strikes"),
			Resyncs:        snap.Sum("nic_failover/resyncs"),
			Deaths:         snap.Sum("nic_failover/deaths"),
			ShadowRebuilds: snap.Sum("nic_failover/shadow_rebuilds"),
			FwCrashes:      snap.Sum("nic_failover/fw_crashes"),
			FwRestarts:     snap.Sum("nic_failover/fw_restarts"),
		}
	})
	return results
}

// RenderDevChaos writes the campaign report as an aligned table. Output
// is a pure function of the config and seed, so two runs with the same
// seed diff empty at any partition count — the CI determinism check.
func RenderDevChaos(out io.Writer, results []DevChaosResult) {
	tb := stats.NewTable("scenario", "verdict", "digest", "latency",
		"flips/quar", "drops", "stuck", "dead-disc",
		"strikes", "resyncs", "deaths/rebuilds", "fwcrash/restart")
	for _, r := range results {
		verdict := "MATCH"
		if !r.Match {
			verdict = "DIVERGED"
		}
		tb.AddRow(
			r.Scenario, verdict, fmt.Sprintf("%016x", r.Digest), r.Latency.String(),
			fmt.Sprintf("%d/%d", r.BitFlips, r.Quarantines),
			r.DroppedResults, r.StuckCycles, r.DeadDiscards,
			r.Strikes, r.Resyncs,
			fmt.Sprintf("%d/%d", r.Deaths, r.ShadowRebuilds),
			fmt.Sprintf("%d/%d", r.FwCrashes, r.FwRestarts),
		)
	}
	tb.Render(out)
}
