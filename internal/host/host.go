// Package host models the main processor's side of the offloaded MPI:
// per §V-C, "the main processor is only required to dispatch message
// requests to the NIC and wait for request completion". Requests cross
// the host bus with the calibrated latency in each direction, and waiting
// is a completion poll charged on the host CPU.
package host

import (
	"fmt"

	"alpusim/internal/dram"
	"alpusim/internal/memsys"
	"alpusim/internal/nic"
	"alpusim/internal/params"
	"alpusim/internal/proc"
	"alpusim/internal/sim"
)

// Request is the host-side handle for an operation dispatched to the NIC.
type Request struct {
	ID     uint64
	Done   bool
	DoneAt sim.Time // when the completion became visible to the host
	Status nic.CompletionStatus
}

// Host is one node's main processor runtime.
type Host struct {
	eng *sim.Engine
	id  int
	mem *memsys.Hierarchy
	nic *nic.NIC

	reqs    map[uint64]*Request
	nextID  uint64
	doneSig *sim.Signal

	completions uint64
}

// New wires a host to its NIC (installing the completion path).
func New(eng *sim.Engine, id int, n *nic.NIC) *Host {
	h := &Host{
		eng:     eng,
		id:      id,
		mem:     memsys.New(params.HostCPU(), dram.New(dram.DefaultConfig())),
		nic:     n,
		reqs:    make(map[uint64]*Request),
		doneSig: sim.NewSignal(eng),
	}
	n.Complete = func(reqID uint64, at sim.Time, st nic.CompletionStatus) {
		// The completion is written toward the host and becomes visible
		// after the host-bus latency.
		if at < eng.Now() {
			at = eng.Now()
		}
		eng.At(at+params.HostBusLatency, func() {
			r := h.reqs[reqID]
			if r == nil {
				panic(fmt.Sprintf("host%d: completion for unknown request %d", h.id, reqID))
			}
			r.Done = true
			r.DoneAt = eng.Now()
			r.Status = st
			h.completions++
			h.doneSig.Raise()
		})
	}
	return h
}

// Mem exposes the host memory hierarchy.
func (h *Host) Mem() *memsys.Hierarchy { return h.mem }

// NIC returns the attached NIC.
func (h *Host) NIC() *nic.NIC { return h.nic }

// Completions reports how many completions the host has observed.
func (h *Host) Completions() uint64 { return h.completions }

// NewID allocates a request id.
func (h *Host) NewID() uint64 {
	h.nextID++
	return h.nextID
}

// Submit charges the library-call cost and dispatches a request descriptor
// to the NIC. It returns the host-side handle.
func (h *Host) Submit(e *proc.Engine, req nic.HostRequest) *Request {
	e.Cycles(params.HostCallCycles)
	r := &Request{ID: req.ID}
	h.reqs[req.ID] = r
	h.nic.SubmitRequest(req)
	return r
}

// Wait polls until the request completes, charging the poll loop.
func (h *Host) Wait(e *proc.Engine, r *Request) {
	for !r.Done {
		e.P.WaitCond(h.doneSig, func() bool { return r.Done })
		e.Cycles(params.HostCompletionPoll)
	}
	delete(h.reqs, r.ID)
}

// WaitAnyProgress parks until some completion (for any request) arrives,
// charging one poll iteration. Used by MPI_Waitany-style loops.
func (h *Host) WaitAnyProgress(e *proc.Engine) {
	e.P.WaitSignal(h.doneSig)
	e.Cycles(params.HostCompletionPoll)
}

// Retire removes a request the caller has finished observing (used by
// Waitany, which completes requests without going through Wait).
func (h *Host) Retire(r *Request) { delete(h.reqs, r.ID) }
