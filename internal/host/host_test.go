package host_test

import (
	"testing"

	"alpusim/internal/host"
	"alpusim/internal/match"
	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/params"
	"alpusim/internal/proc"
	"alpusim/internal/sim"
)

// buildPair wires two host+NIC nodes directly (below the MPI layer).
func buildPair(eng *sim.Engine) (*host.Host, *host.Host) {
	net := network.New(eng, 2, 0, 0)
	n0 := nic.New(eng, nic.Config{ID: 0}, net)
	n1 := nic.New(eng, nic.Config{ID: 1}, net)
	return host.New(eng, 0, n0), host.New(eng, 1, n1)
}

func TestSubmitAndWaitRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	h0, h1 := buildPair(eng)

	var sendDone, recvDone sim.Time
	eng.Spawn("h0", func(p *sim.Process) {
		e := proc.New(p, params.HostCPU(), h0.Mem())
		id := h0.NewID()
		req := h0.Submit(e, nic.HostRequest{
			Kind: nic.ReqSend, ID: id, Dst: 1,
			Hdr:  match.Header{Context: 1, Source: 0, Tag: 9},
			Size: 64,
		})
		h0.Wait(e, req)
		sendDone = p.Now()
	})
	eng.Spawn("h1", func(p *sim.Process) {
		e := proc.New(p, params.HostCPU(), h1.Mem())
		id := h1.NewID()
		req := h1.Submit(e, nic.HostRequest{
			Kind: nic.ReqRecv, ID: id,
			Recv: match.Recv{Context: 1, Source: 0, Tag: 9}, RecvSize: 64,
		})
		h1.Wait(e, req)
		recvDone = p.Now()
	})
	eng.Run()
	if sendDone == 0 || recvDone == 0 {
		t.Fatal("requests did not complete")
	}
	if recvDone <= sendDone-sim.Microsecond {
		t.Errorf("receive completed (%v) long before send (%v)", recvDone, sendDone)
	}
	if h0.Completions() != 1 || h1.Completions() != 1 {
		t.Errorf("completions = %d, %d; want 1, 1", h0.Completions(), h1.Completions())
	}
}

func TestWaitOnAlreadyDoneRequest(t *testing.T) {
	eng := sim.NewEngine()
	h0, h1 := buildPair(eng)

	eng.Spawn("h1", func(p *sim.Process) {
		e := proc.New(p, params.HostCPU(), h1.Mem())
		id := h1.NewID()
		req := h1.Submit(e, nic.HostRequest{
			Kind: nic.ReqRecv, ID: id,
			Recv: match.Recv{Context: 1, Source: 0, Tag: 1},
		})
		// Sleep long past delivery, then Wait: must return immediately.
		p.Sleep(50 * sim.Microsecond)
		if !req.Done {
			t.Error("request not done after 50us")
		}
		before := p.Now()
		h1.Wait(e, req)
		if d := p.Now() - before; d > sim.Microsecond {
			t.Errorf("Wait on done request took %v", d)
		}
	})
	eng.Spawn("h0", func(p *sim.Process) {
		e := proc.New(p, params.HostCPU(), h0.Mem())
		id := h0.NewID()
		req := h0.Submit(e, nic.HostRequest{
			Kind: nic.ReqSend, ID: id, Dst: 1,
			Hdr: match.Header{Context: 1, Source: 0, Tag: 1},
		})
		h0.Wait(e, req)
	})
	eng.Run()
}

func TestCompletionVisibilityDelay(t *testing.T) {
	// The completion crosses the host bus: DoneAt is at least the bus
	// latency after the request could have finished on the NIC.
	eng := sim.NewEngine()
	h0, h1 := buildPair(eng)
	_ = h1
	eng.Spawn("h0", func(p *sim.Process) {
		e := proc.New(p, params.HostCPU(), h0.Mem())
		id := h0.NewID()
		start := p.Now()
		req := h0.Submit(e, nic.HostRequest{
			Kind: nic.ReqSend, ID: id, Dst: 1,
			Hdr: match.Header{Context: 1, Source: 0, Tag: 2},
		})
		h0.Wait(e, req)
		// Submit bus + NIC processing + completion bus: >= 2x bus latency.
		if d := req.DoneAt - start; d < 2*params.HostBusLatency {
			t.Errorf("completion after %v, want >= %v", d, 2*params.HostBusLatency)
		}
	})
	eng.Run()
}
