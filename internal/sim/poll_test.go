package sim

import (
	"reflect"
	"testing"
)

// Front polls must fire before every ordinary event and every delivery at
// the same instant — in both event kernels, since the time-series sampler
// relies on the ordering to observe partition-invariant state.
func TestPollFrontOrdering(t *testing.T) {
	kernels := map[string]func() *Engine{
		"heap":   NewEngine,
		"ladder": NewLadderEngine,
	}
	for name, mk := range kernels {
		t.Run(name, func(t *testing.T) {
			e := mk()
			var order []string
			e.Schedule(100, func() { order = append(order, "ord1") })
			e.AtDelivery(100, 3, 1, func() { order = append(order, "del") })
			e.Schedule(100, func() { order = append(order, "ord2") })
			e.AtPollFront(100, func() { order = append(order, "poll") })
			e.Schedule(50, func() { order = append(order, "early") })
			e.Run()
			want := []string{"early", "poll", "ord1", "ord2", "del"}
			if !reflect.DeepEqual(order, want) {
				t.Errorf("firing order %v, want %v", order, want)
			}
		})
	}
}

// Front polls are housekeeping: excluded from Alive, and excluded from
// LastModel, which tracks only modelled events.
func TestPollFrontAliveAndLastModel(t *testing.T) {
	e := NewEngine()
	e.Schedule(80, func() {})
	e.AtPollFront(40, func() {})
	e.SchedulePoll(200, func() {}) // ordinary-class poll, also excluded
	if got := e.Alive(); got != 1 {
		t.Errorf("Alive = %d with one model event and two polls, want 1", got)
	}
	e.Run()
	if got := e.LastModel(); got != 80 {
		t.Errorf("LastModel = %v, want 80 (polls at 40 and 200 excluded)", got)
	}
	if e.Now() != 200 {
		t.Errorf("Now = %v, want 200 (the last poll still advanced the clock)", e.Now())
	}
}

// A re-arming front-poll chain observes state as of strictly before each
// tick: a counter incremented by model events at the tick instant itself
// must not be visible to that tick's sample.
func TestPollFrontChainSamplesPreTickState(t *testing.T) {
	e := NewLadderEngine()
	counter := 0
	for i := 1; i <= 5; i++ {
		at := Time(i * 10)
		e.At(at, func() { counter++ })
	}
	var samples []int
	var tick func()
	tick = func() {
		samples = append(samples, counter)
		if e.Alive() > 0 {
			e.AtPollFront(e.Now()+10, tick)
		}
	}
	e.AtPollFront(10, tick)
	e.Run()
	// Tick at t=10*k sees the increments from events strictly before it:
	// k-1 of them.
	want := []int{0, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(samples, want) {
		t.Errorf("samples %v, want %v", samples, want)
	}
}
