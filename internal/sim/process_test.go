package sim

import "testing"

func TestProcessSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var wake []Time
	e.Spawn("sleeper", func(p *Process) {
		for i := 0; i < 5; i++ {
			p.Sleep(10 * Nanosecond)
			wake = append(wake, p.Now())
		}
	})
	e.Run()
	if len(wake) != 5 {
		t.Fatalf("woke %d times, want 5", len(wake))
	}
	for i, w := range wake {
		want := Time(i+1) * 10 * Nanosecond
		if w != want {
			t.Errorf("wake %d at %v, want %v", i, w, want)
		}
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Process) {
		p.Sleep(10 * Nanosecond)
		order = append(order, "a10")
		p.Sleep(20 * Nanosecond)
		order = append(order, "a30")
	})
	e.Spawn("b", func(p *Process) {
		p.Sleep(20 * Nanosecond)
		order = append(order, "b20")
	})
	e.Run()
	want := []string{"a10", "b20", "a30"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("interleaving %v, want %v", order, want)
		}
	}
}

func TestProcessZeroSleepYields(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("p", func(p *Process) {
		order = append(order, "p-before")
		p.Sleep(0)
		order = append(order, "p-after")
	})
	// Spawned after p, so its start event is behind p's first run but ahead
	// of p's zero-sleep resume.
	e.Spawn("q", func(p *Process) {
		order = append(order, "q")
	})
	e.Run()
	want := []string{"p-before", "q", "p-after"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSignalWakesWaiter(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var woke Time
	e.Spawn("waiter", func(p *Process) {
		p.WaitSignal(s)
		woke = p.Now()
	})
	e.Schedule(42*Nanosecond, s.Raise)
	e.Run()
	if woke != 42*Nanosecond {
		t.Fatalf("waiter woke at %v, want 42ns", woke)
	}
}

func TestSignalLevelNotLost(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	s.Raise() // raised before anyone waits
	done := false
	e.Spawn("waiter", func(p *Process) {
		p.WaitSignal(s) // must not block forever
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("pre-raised signal was lost")
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	count := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Process) {
			p.WaitCond(s, func() bool { return true })
			count++
		})
	}
	e.Schedule(Nanosecond, s.Raise)
	e.Run()
	if count != 3 {
		t.Fatalf("woke %d waiters, want 3", count)
	}
}

func TestWaitCond(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	n := 0
	var woke Time
	e.Spawn("w", func(p *Process) {
		p.WaitCond(s, func() bool { return n >= 3 })
		woke = p.Now()
	})
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i)*10*Nanosecond, func() {
			n++
			s.Raise()
		})
	}
	e.Run()
	if woke != 30*Nanosecond {
		t.Fatalf("condition satisfied at %v, want 30ns", woke)
	}
}

func TestWaitCondUntilSatisfied(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	n := 0
	var ok bool
	var woke Time
	e.Spawn("w", func(p *Process) {
		ok = p.WaitCondUntil(s, func() bool { return n >= 2 }, 100*Nanosecond)
		woke = p.Now()
	})
	for i := 1; i <= 3; i++ {
		e.Schedule(Time(i)*10*Nanosecond, func() {
			n++
			s.Raise()
		})
	}
	e.Run()
	if !ok || woke != 20*Nanosecond {
		t.Fatalf("WaitCondUntil = %v at %v, want true at 20ns", ok, woke)
	}
}

func TestWaitCondUntilExpires(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var ok bool
	var woke Time
	e.Spawn("w", func(p *Process) {
		ok = p.WaitCondUntil(s, func() bool { return false }, 50*Nanosecond)
		woke = p.Now()
	})
	// Raises that never satisfy the condition must not extend the wait.
	e.Schedule(10*Nanosecond, s.Raise)
	e.Run()
	if ok || woke != 50*Nanosecond {
		t.Fatalf("WaitCondUntil = %v at %v, want false at 50ns", ok, woke)
	}
}

func TestWaitCondUntilImmediate(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var okTrue, okZero bool
	e.Spawn("w", func(p *Process) {
		okTrue = p.WaitCondUntil(s, func() bool { return true }, 0)
		okZero = p.WaitCondUntil(s, func() bool { return false }, 0)
	})
	e.Run()
	if !okTrue || okZero {
		t.Fatalf("immediate WaitCondUntil = %v,%v, want true,false", okTrue, okZero)
	}
}

func TestProcessDone(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("p", func(p *Process) { p.Sleep(Nanosecond) })
	if p.Done() {
		t.Fatal("process done before Run")
	}
	e.Run()
	if !p.Done() {
		t.Fatal("process not done after Run")
	}
	if p.Name() != "p" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestFIFOBasics(t *testing.T) {
	e := NewEngine()
	f := NewFIFO[int](e, "hdr", 3)
	if f.Name() != "hdr" || f.Cap() != 3 {
		t.Fatal("FIFO metadata wrong")
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("Pop on empty FIFO succeeded")
	}
	for i := 1; i <= 3; i++ {
		if !f.Push(i) {
			t.Fatalf("Push %d failed below capacity", i)
		}
	}
	if !f.Full() {
		t.Fatal("FIFO not full at capacity")
	}
	if f.Push(4) {
		t.Fatal("Push succeeded on full FIFO")
	}
	if f.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", f.Drops())
	}
	if v, ok := f.Peek(); !ok || v != 1 {
		t.Fatalf("Peek = %v,%v want 1,true", v, ok)
	}
	for i := 1; i <= 3; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %v,%v want %d,true", v, ok, i)
		}
	}
	if f.MaxDepth() != 3 || f.Pushes() != 3 {
		t.Errorf("MaxDepth=%d Pushes=%d, want 3,3", f.MaxDepth(), f.Pushes())
	}
}

func TestFIFOUnbounded(t *testing.T) {
	e := NewEngine()
	f := NewFIFO[int](e, "u", 0)
	for i := 0; i < 1000; i++ {
		if !f.Push(i) {
			t.Fatal("unbounded FIFO rejected a push")
		}
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFIFONotEmptySignal(t *testing.T) {
	e := NewEngine()
	f := NewFIFO[string](e, "f", 0)
	var got string
	e.Spawn("consumer", func(p *Process) {
		p.WaitCond(f.NotEmpty, func() bool { return f.Len() > 0 })
		got, _ = f.Pop()
	})
	e.Schedule(5*Nanosecond, func() { f.Push("hello") })
	e.Run()
	if got != "hello" {
		t.Fatalf("consumer got %q", got)
	}
}

func TestFIFOProducerConsumerProcesses(t *testing.T) {
	e := NewEngine()
	f := NewFIFO[int](e, "pc", 4)
	var consumed []int
	e.Spawn("producer", func(p *Process) {
		for i := 0; i < 20; i++ {
			p.WaitCond(f.NotFull, func() bool { return !f.Full() })
			f.Push(i)
			p.Sleep(Nanosecond)
		}
	})
	e.Spawn("consumer", func(p *Process) {
		for len(consumed) < 20 {
			p.WaitCond(f.NotEmpty, func() bool { return f.Len() > 0 })
			v, _ := f.Pop()
			consumed = append(consumed, v)
			p.Sleep(3 * Nanosecond)
		}
	})
	e.Run()
	if len(consumed) != 20 {
		t.Fatalf("consumed %d items, want 20", len(consumed))
	}
	for i, v := range consumed {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, consumed)
		}
	}
	if f.MaxDepth() > 4 {
		t.Fatalf("FIFO exceeded capacity: depth %d", f.MaxDepth())
	}
}
