package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// driveQueue runs one pseudo-random event program against an engine and
// returns the execution log. The program mixes plain schedules, absolute
// schedules, cancellable events (some cancelled, some left to fire),
// pollers, delivery-class events, and zero-delay bursts that stress
// same-timestamp FIFO ties; events recursively schedule more work, so the
// queue sees interleaved push/pop traffic rather than a load-then-drain
// pattern. Two engines given the same seed must produce identical logs —
// that is the oracle property pinning the ladder kernel to container/heap.
func driveQueue(e *Engine, seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	var log []string
	var ids []EventID
	var dseq [4]uint64
	born := 0

	record := func(name string) {
		log = append(log, fmt.Sprintf("%s@%d pend=%d alive=%d", name, e.Now(), e.Pending(), e.Alive()))
	}

	var burst func(depth int)
	burst = func(depth int) {
		k := 1 + rng.Intn(4)
		for i := 0; i < k; i++ {
			if born >= n {
				return
			}
			born++
			name := fmt.Sprintf("e%d", born)
			d := Time(rng.Intn(64))
			if rng.Intn(4) == 0 {
				d = 0 // force same-instant ties
			}
			fire := func() {
				record(name)
				if depth < 4 && rng.Intn(3) != 0 {
					burst(depth + 1)
				}
			}
			switch rng.Intn(8) {
			case 0:
				e.At(e.Now()+d, fire)
			case 1:
				id := e.ScheduleCancellable(d, fire)
				ids = append(ids, id)
			case 2:
				id := e.AtCancellable(e.Now()+d, fire)
				ids = append(ids, id)
			case 3:
				e.SchedulePoll(d+1, fire)
			case 4:
				src := uint32(rng.Intn(len(dseq)))
				dseq[src]++
				e.AtDelivery(e.Now()+d, src, dseq[src], fire)
			default:
				e.Schedule(d, fire)
			}
			// Cancel a random outstanding cancellable now and then; the
			// pick is driven by the shared rng, so both kernels attempt
			// the same cancellations in the same order.
			if len(ids) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(ids))
				ok := e.Cancel(ids[i])
				log = append(log, fmt.Sprintf("cancel#%d=%v pend=%d", i, ok, e.Pending()))
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}
		}
	}

	burst(0)
	for e.Step() {
	}
	log = append(log, fmt.Sprintf("done@%d executed=%d pend=%d", e.Now(), e.Executed(), e.Pending()))
	return log
}

// TestLadderMatchesHeap pins the ladder kernel to the container/heap
// reference oracle: identical random Schedule/Cancel/Poll programs must
// pop in identical order, including same-timestamp FIFO ties, and agree
// on Pending/Alive at every step.
func TestLadderMatchesHeap(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		want := driveQueue(NewEngine(), seed, 800)
		got := driveQueue(NewLadderEngine(), seed, 800)
		if len(want) != len(got) {
			t.Fatalf("seed %d: heap log has %d entries, ladder %d", seed, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: logs diverge at entry %d:\n  heap:   %s\n  ladder: %s",
					seed, i, want[i], got[i])
			}
		}
	}
}

// TestLadderWideSpread exercises the respread path: events scattered over
// a wide time range (microseconds to milliseconds) so the far list gets
// rebuilt into rungs several times.
func TestLadderWideSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, l := NewEngine(), NewLadderEngine()
	var hLog, lLog []Time
	for i := 0; i < 5000; i++ {
		at := Time(rng.Int63n(int64(10 * Millisecond)))
		h.At(at, func() { hLog = append(hLog, h.Now()) })
		l.At(at, func() { lLog = append(lLog, l.Now()) })
	}
	for h.Step() {
	}
	for l.Step() {
	}
	if len(hLog) != len(lLog) {
		t.Fatalf("heap ran %d events, ladder %d", len(hLog), len(lLog))
	}
	for i := range hLog {
		if hLog[i] != lLog[i] {
			t.Fatalf("event %d: heap at %v, ladder at %v", i, hLog[i], lLog[i])
		}
	}
}

// TestDeliveryOrdering pins the canonical tie-break: at one instant,
// ordinary events fire in schedule order before any delivery, and
// deliveries fire in (source, per-source sequence) order regardless of
// the order they were scheduled in.
func TestDeliveryOrdering(t *testing.T) {
	for _, kernel := range []string{"heap", "ladder"} {
		e := newQueueEngine(kernel)
		var got []string
		add := func(name string) func() {
			return func() { got = append(got, name) }
		}
		const at = 100 * Nanosecond
		e.AtDelivery(at, 2, 1, add("d:src2#1"))
		e.AtDelivery(at, 1, 7, add("d:src1#7"))
		e.At(at, add("ord1"))
		e.AtDelivery(at, 1, 9, add("d:src1#9"))
		e.At(at, add("ord2"))
		for e.Step() {
		}
		want := []string{"ord1", "ord2", "d:src1#7", "d:src1#9", "d:src2#1"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s kernel: got %v, want %v", kernel, got, want)
		}
	}
}
