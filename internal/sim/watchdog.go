package sim

import (
	"fmt"
	"strings"
)

// WatchdogError is the panic value raised when a watchdog deadline passes:
// the simulated world livelocked (e.g. an unrecoverable retransmit storm)
// instead of draining. It carries a diagnostic dump of the engine and any
// model-level context the creator supplied.
type WatchdogError struct {
	Limit Time
	Dump  string
}

func (w *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog expired at %v\n%s", w.Limit, w.Dump)
}

// Watchdog fails a world whose simulated clock passes a deadline while
// events are still flowing. A discrete-event world cannot "hang" in real
// time — it either drains (done) or runs events forever (livelock); the
// watchdog converts the second case into a diagnosable failure instead of
// a simulation that never returns.
type Watchdog struct {
	eng      *Engine
	limit    Time
	interval Time
	// Diag, when set, is appended to the engine state dump on expiry —
	// model-level context (queue lengths, retransmit counters, ...).
	Diag func() string
	// OnFail handles the expiry; the default panics with *WatchdogError,
	// which sweeps and tests can recover per world.
	OnFail func(*WatchdogError)
	// OnDump, when set, runs once at expiry before OnFail/panic — the
	// hook the MPI layer uses to write the flight-recorder post-mortem
	// while the world's final state is still intact.
	OnDump func()

	fired    bool
	armed    bool // a check poller is pending
	lastPoke Time // simulated time of the latest external Poke
}

// NewWatchdog arms a watchdog that expires when simulated time reaches
// limit. interval is the re-check period (0 selects limit/8). The check
// event re-arms itself only while other events are pending, so a drained
// world still lets Engine.Run return normally.
func NewWatchdog(eng *Engine, limit, interval Time) *Watchdog {
	if limit <= 0 {
		panic("sim: watchdog limit must be positive")
	}
	if interval <= 0 {
		interval = limit / 8
	}
	if interval <= 0 {
		interval = limit
	}
	w := &Watchdog{eng: eng, limit: limit, interval: interval, armed: true}
	eng.SchedulePoll(interval, w.check)
	return w
}

// Fired reports whether the watchdog has expired.
func (w *Watchdog) Fired() bool { return w.fired }

// Poke re-arms the check poller if it has stopped. A watchdog disarms
// itself when its engine runs out of modelled work; the partition
// coordinator pokes it when a barrier injects fresh deliveries into that
// engine, so a partition that drains and is later woken stays guarded.
func (w *Watchdog) Poke() {
	w.lastPoke = w.eng.Now()
	if w.fired || w.armed {
		return
	}
	w.armed = true
	w.eng.SchedulePoll(w.interval, w.check)
}

func (w *Watchdog) check() {
	w.armed = false
	if w.fired {
		return
	}
	if w.eng.Now() >= w.limit {
		w.fired = true
		dump := w.eng.StateDump()
		if w.lastPoke > 0 {
			dump += fmt.Sprintf("\nwatchdog: last external progress poke at %v", w.lastPoke)
		}
		if w.Diag != nil {
			dump += "\n" + w.Diag()
		}
		err := &WatchdogError{Limit: w.limit, Dump: dump}
		if w.OnDump != nil {
			w.OnDump()
		}
		if w.OnFail != nil {
			w.OnFail(err)
			return
		}
		panic(err)
	}
	// Re-arm only while the world is still alive: with no modelled events
	// pending nothing can ever happen again, so the watchdog must not keep
	// the event loop running by itself (or trade keep-alives with another
	// poller, like the telemetry engine sampler).
	if w.eng.Alive() > 0 {
		w.armed = true
		w.eng.SchedulePoll(w.interval, w.check)
	}
}

// StateDump renders the engine state for failure diagnostics: clock,
// event statistics, and the state of every co-simulated process.
func (e *Engine) StateDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: now=%v executed=%d pending=%d procs=%d",
		e.now, e.executed, e.Pending(), len(e.procs))
	for _, p := range e.procs {
		state := "running"
		switch {
		case p.done:
			state = "done"
		case p.parked:
			state = "parked"
		}
		fmt.Fprintf(&b, "\n  proc %-24s %s", p.name, state)
	}
	return b.String()
}
