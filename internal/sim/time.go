// Package sim provides a deterministic component-based discrete event
// simulation framework in the style of Enkidu (Rodrigues, TR04-14), the
// simulator the paper's evaluation environment was built on.
//
// Simulated time is kept in integer picoseconds so that both the 2 GHz host
// clock (500 ps) and the 500 MHz NIC/ALPU clock (2 ns) divide evenly.
// Events scheduled for the same instant fire in schedule order, which makes
// every simulation in this repository bit-for-bit reproducible.
package sim

import "fmt"

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Duration units. All model parameters in this repository are expressed in
// these units rather than time.Duration so that arithmetic stays integral.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time using the most natural unit, for logs and test
// failure messages.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Millisecond == 0 && t >= Millisecond:
		return fmt.Sprintf("%dms", t/Millisecond)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Nanoseconds reports t as a floating point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Clock converts between cycle counts of a fixed-frequency clock and
// simulated time.
type Clock struct {
	// Period is the duration of one clock cycle.
	Period Time
}

// MHz returns a Clock with the given frequency in megahertz. The frequency
// must divide evenly into picoseconds (true for every clock in the paper).
func MHz(f int64) Clock {
	period := int64(Second) / (f * 1e6)
	return Clock{Period: Time(period)}
}

// Cycles returns the duration of n clock cycles.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// CyclesCeil returns the smallest whole number of cycles covering d.
func (c Clock) CyclesCeil(d Time) int64 {
	if d <= 0 {
		return 0
	}
	return (int64(d) + int64(c.Period) - 1) / int64(c.Period)
}

// Freq returns the clock frequency in MHz.
func (c Clock) Freq() float64 {
	return float64(Second) / float64(c.Period) / 1e6
}
