package sim

import "sort"

// ladderQueue is a bucketed priority queue in the ladder-queue family
// (Tang et al.), tuned for the event-dense large worlds the partition
// runner targets. Instead of paying O(log n) comparisons per operation in
// a binary heap, events flow through three tiers:
//
//	far     an unsorted overflow list for events beyond the current rung;
//	        push is O(1) append
//	rung    an array of fixed-width time buckets spreading the far list;
//	        push into an active rung is O(1) bucket append
//	bottom  the sorted run currently being drained; pop is O(1), push of
//	        a near-future event is a binary-search insert into the
//	        (typically one-bucket-sized) run
//
// When bottom drains, the next non-empty bucket is sorted wholesale into
// it; when the rung is exhausted, the far list is respread into a fresh
// rung sized to its time span. Each event is therefore touched a constant
// number of times between push and pop, for amortized O(1) cost.
//
// The sort comparator is eventLess — the same composite (at, k1, k2) key
// the heap kernel uses — so both kernels pop in bit-identical order.
//
// Cancellation is lazy: Engine.Cancel marks the event dead (fn == nil) and
// decrements live; dead events are skipped and recycled when their bucket
// drains. live therefore counts schedulable events only.
type ladderQueue struct {
	bottom []*event // sorted run being drained; next pop at index bot
	bot    int

	rung      [][]*event // fixed-width buckets; indexes < rungIdx are spent
	rungStart Time       // lower time edge of bucket 0
	width     Time       // bucket width (> 0 while rung != nil)
	rungIdx   int        // next bucket to spill into bottom

	// edge is the exclusive upper bound of the region bottom covers: a
	// pushed event below it belongs in the sorted run, at or above it in
	// the rung or far list. It only moves forward, except when a respread
	// rebases it onto the (provably later) far-list minimum.
	edge Time

	far            []*event // unsorted overflow beyond the rung
	farMin, farMax Time

	live    int
	recycle func(*event)
}

// ladderMaxBuckets caps a rung's bucket count; ladderDirect is the far-list
// size below which a respread just sorts directly into bottom.
const (
	ladderMaxBuckets = 1024
	ladderDirect     = 16
)

func (q *ladderQueue) push(ev *event) {
	q.live++
	if ev.at < q.edge {
		q.insertBottom(ev)
		return
	}
	if q.rung != nil {
		if end := q.rungStart + q.width*Time(len(q.rung)); ev.at < end {
			i := int((ev.at - q.rungStart) / q.width)
			q.rung[i] = append(q.rung[i], ev)
			return
		}
	}
	if len(q.far) == 0 || ev.at < q.farMin {
		q.farMin = ev.at
	}
	if len(q.far) == 0 || ev.at > q.farMax {
		q.farMax = ev.at
	}
	q.far = append(q.far, ev)
}

func (q *ladderQueue) insertBottom(ev *event) {
	lo := q.bot
	i := lo + sort.Search(len(q.bottom)-lo, func(k int) bool {
		return eventLess(ev, q.bottom[lo+k])
	})
	q.bottom = append(q.bottom, nil)
	copy(q.bottom[i+1:], q.bottom[i:])
	q.bottom[i] = ev
}

// ensure advances internal state until a live event sits at the front of
// bottom, reporting false when the queue is empty. Dead (cancelled) events
// encountered on the way are recycled.
func (q *ladderQueue) ensure() bool {
	for {
		for q.bot < len(q.bottom) {
			ev := q.bottom[q.bot]
			if ev.fn != nil {
				return true
			}
			q.bottom[q.bot] = nil
			q.bot++
			q.recycle(ev)
		}
		q.bottom = q.bottom[:0]
		q.bot = 0
		if q.rung != nil {
			spilled := false
			for q.rungIdx < len(q.rung) {
				b := q.rung[q.rungIdx]
				q.rung[q.rungIdx] = nil
				q.rungIdx++
				q.edge = q.rungStart + q.width*Time(q.rungIdx)
				if len(b) > 0 {
					sort.Slice(b, func(i, j int) bool { return eventLess(b[i], b[j]) })
					q.bottom = b
					spilled = true
					break
				}
			}
			if spilled {
				continue
			}
			q.rung = nil
		}
		if len(q.far) == 0 {
			return false
		}
		q.respread()
	}
}

// respread rebuilds the rung (or, for small lists, bottom directly) from
// the far list. Every far event was pushed at or above the then-current
// edge, and the edge only grows between respreads, so farMin >= edge and
// rebasing the ladder onto [farMin, farMax] never moves coverage backward.
func (q *ladderQueue) respread() {
	far := q.far
	q.far = nil
	span := q.farMax - q.farMin
	if len(far) <= ladderDirect || span == 0 {
		sort.Slice(far, func(i, j int) bool { return eventLess(far[i], far[j]) })
		q.bottom = far
		q.bot = 0
		q.edge = q.farMax + 1
		return
	}
	nb := len(far)
	if nb > ladderMaxBuckets {
		nb = ladderMaxBuckets
	}
	q.rungStart = q.farMin
	q.width = span/Time(nb) + 1
	q.rung = make([][]*event, nb)
	q.rungIdx = 0
	q.edge = q.rungStart
	for _, ev := range far {
		i := int((ev.at - q.rungStart) / q.width)
		if i >= nb {
			i = nb - 1
		}
		q.rung[i] = append(q.rung[i], ev)
	}
}

func (q *ladderQueue) pop() *event {
	if !q.ensure() {
		return nil
	}
	ev := q.bottom[q.bot]
	q.bottom[q.bot] = nil
	q.bot++
	q.live--
	return ev
}

func (q *ladderQueue) peek() (Time, bool) {
	if !q.ensure() {
		return 0, false
	}
	return q.bottom[q.bot].at, true
}
