package sim

import (
	"strings"
	"testing"
)

// A world that drains before the deadline must not trip the watchdog, and
// the watchdog must not keep the event loop alive after the drain.
func TestWatchdogQuietOnCleanFinish(t *testing.T) {
	eng := NewEngine()
	w := NewWatchdog(eng, 1000*Nanosecond, 10*Nanosecond)
	ran := false
	eng.Schedule(50*Nanosecond, func() { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("payload event did not run")
	}
	if w.Fired() {
		t.Fatal("watchdog fired on a clean finish")
	}
	if eng.Pending() != 0 {
		t.Fatalf("watchdog left %d events pending after drain", eng.Pending())
	}
}

// A livelocked world (an event chain that never ends) must be failed with
// a diagnostic dump once simulated time passes the limit.
func TestWatchdogFailsLivelock(t *testing.T) {
	eng := NewEngine()
	w := NewWatchdog(eng, 500*Nanosecond, 50*Nanosecond)
	var caught *WatchdogError
	w.OnFail = func(err *WatchdogError) {
		caught = err
		eng.Stop()
	}
	eng.Spawn("spinner", func(p *Process) {
		for {
			p.Sleep(10 * Nanosecond)
		}
	})
	eng.Run()
	if caught == nil {
		t.Fatal("watchdog did not fire on a livelocked world")
	}
	if !strings.Contains(caught.Dump, "spinner") {
		t.Errorf("dump does not name the live process:\n%s", caught.Dump)
	}
	if !strings.Contains(caught.Error(), "watchdog expired") {
		t.Errorf("unexpected error text: %v", caught)
	}
}

// The default OnFail panics with *WatchdogError so sweeps can recover it.
func TestWatchdogDefaultPanics(t *testing.T) {
	eng := NewEngine()
	NewWatchdog(eng, 100*Nanosecond, 25*Nanosecond)
	eng.Spawn("spinner", func(p *Process) {
		for {
			p.Sleep(10 * Nanosecond)
		}
	})
	defer func() {
		r := recover()
		pp, ok := r.(*ProcessPanic)
		if ok {
			// The panic unwound through the process goroutine hand-off.
			if _, ok := pp.Value.(*WatchdogError); ok {
				return
			}
		}
		if _, ok := r.(*WatchdogError); ok {
			return
		}
		t.Fatalf("expected *WatchdogError panic, got %v", r)
	}()
	eng.Run()
}

// The diagnostic dump includes the model-supplied context.
func TestWatchdogDiagHook(t *testing.T) {
	eng := NewEngine()
	w := NewWatchdog(eng, 100*Nanosecond, 0) // 0 interval -> limit/8
	w.Diag = func() string { return "retransmits=7" }
	var caught *WatchdogError
	w.OnFail = func(err *WatchdogError) {
		caught = err
		eng.Stop()
	}
	eng.Spawn("spinner", func(p *Process) {
		for {
			p.Sleep(Nanosecond)
		}
	})
	eng.Run()
	if caught == nil || !strings.Contains(caught.Dump, "retransmits=7") {
		t.Fatalf("diag hook output missing from dump: %v", caught)
	}
}
