package sim

import "testing"

// BenchmarkEngineScheduleStep measures the event-kernel hot path used by
// every simulated world: schedule one event, pop and execute it. The
// figure sweeps execute tens of millions of these, so per-event heap
// allocations and map traffic here dominate simulator wall-clock.
func BenchmarkEngineScheduleStep(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Nanosecond, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleStepDepth8 keeps eight events in flight so the
// heap sift work is representative of a busy NIC world rather than the
// single-element degenerate case.
func BenchmarkEngineScheduleStepDepth8(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 8; i++ {
		e.Schedule(Time(i)*Nanosecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(8*Nanosecond, fn)
		e.Step()
	}
}

// BenchmarkEngineCancellable measures the cancellable schedule/cancel
// cycle, the only path that needs the byID map.
func BenchmarkEngineCancellable(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.ScheduleCancellable(Nanosecond, fn)
		e.Cancel(id)
	}
}

// BenchmarkQueueMicro runs the event-queue kernel micro set (heap vs
// ladder, plus the partition-window overhead) — the same cases the
// alpusim bench harness folds into BENCH.json.
func BenchmarkQueueMicro(b *testing.B) {
	for _, c := range QueueMicroCases() {
		b.Run(c.Name, c.Bench)
	}
}
