package sim

import "testing"

// TestFIFOWraparound drives a bounded FIFO through many push/pop cycles so
// the ring indices wrap repeatedly, checking FIFO order and stats.
func TestFIFOWraparound(t *testing.T) {
	e := NewEngine()
	f := NewFIFO[int](e, "ring", 3)
	next := 0 // next value to push
	want := 0 // next value expected from Pop
	// Keep the FIFO at depth 2 while pushing 100 items: head wraps the
	// 3-slot ring dozens of times.
	f.Push(next)
	next++
	for next < 100 {
		if !f.Push(next) {
			t.Fatalf("push %d rejected at len %d", next, f.Len())
		}
		next++
		v, ok := f.Pop()
		if !ok || v != want {
			t.Fatalf("pop = %d,%v want %d", v, ok, want)
		}
		want++
	}
	for f.Len() > 0 {
		v, ok := f.Pop()
		if !ok || v != want {
			t.Fatalf("drain pop = %d,%v want %d", v, ok, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained to %d, pushed %d", want, next)
	}
	if f.Pushes() != 100 || f.Drops() != 0 {
		t.Fatalf("pushes=%d drops=%d want 100,0", f.Pushes(), f.Drops())
	}
	if f.MaxDepth() != 2 {
		t.Fatalf("maxDepth=%d want 2", f.MaxDepth())
	}
}

// TestFIFOWraparoundFull fills a bounded FIFO to capacity from a wrapped
// head position and checks Full/drop behaviour and order.
func TestFIFOWraparoundFull(t *testing.T) {
	e := NewEngine()
	f := NewFIFO[int](e, "ring", 4)
	for i := 0; i < 3; i++ { // advance head so the full window wraps
		f.Push(-1)
		f.Pop()
	}
	for i := 0; i < 4; i++ {
		if !f.Push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if !f.Full() {
		t.Fatal("not full at capacity")
	}
	if f.Push(99) {
		t.Fatal("push succeeded on full FIFO")
	}
	if f.Drops() != 1 {
		t.Fatalf("drops=%d want 1", f.Drops())
	}
	for i := 0; i < 4; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
}

// TestFIFOUnboundedGrowth checks that a capacity-0 FIFO grows through
// several ring reallocations, including from a wrapped state, without
// losing order.
func TestFIFOUnboundedGrowth(t *testing.T) {
	e := NewEngine()
	f := NewFIFO[int](e, "u", 0)
	// Wrap the initial ring before forcing growth.
	for i := 0; i < 5; i++ {
		f.Push(i)
	}
	for i := 0; i < 3; i++ {
		f.Pop()
	}
	for i := 5; i < 200; i++ {
		if !f.Push(i) {
			t.Fatalf("unbounded FIFO rejected push %d", i)
		}
	}
	if f.Len() != 197 {
		t.Fatalf("len=%d want 197", f.Len())
	}
	for i := 3; i < 200; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop succeeded on drained FIFO")
	}
}

// TestFIFOPopZeroesSlot checks that Pop clears the vacated slot so the ring
// retains no reference to popped items (lets the GC reclaim them).
func TestFIFOPopZeroesSlot(t *testing.T) {
	e := NewEngine()
	f := NewFIFO[*int](e, "z", 2)
	v := new(int)
	f.Push(v)
	f.Pop()
	for _, s := range f.buf {
		if s != nil {
			t.Fatal("popped slot still references the item")
		}
	}
}
