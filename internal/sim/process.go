package sim

import (
	"fmt"
	"runtime/debug"
)

// ProcessPanic is the value re-raised on the engine goroutine when a
// co-simulated process panics. Without this hand-off the panic would unwind
// a bare goroutine and abort the whole program — with it, the panic
// propagates out of Engine.Run on the caller's goroutine, where a sweep
// worker (internal/sweep) can recover it and fail just that world.
type ProcessPanic struct {
	Proc  string // name of the process that panicked
	Value any    // the original panic value
	Stack []byte // stack of the panicking process goroutine
}

func (pp *ProcessPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v\n%s", pp.Proc, pp.Value, pp.Stack)
}

// Process is a co-simulated thread of control: a plain Go function that
// consumes simulated time through Sleep/WaitSignal calls. The paper's NIC
// firmware loop and the MPI application ranks both run as Processes, which
// lets them be written as straight-line code instead of hand-built state
// machines while staying deterministic.
//
// The handshake guarantees that exactly one of {engine, one process} runs at
// any instant: when the engine resumes a process it blocks on the process's
// yield channel until the process parks again (in Sleep or WaitSignal) or
// returns.
type Process struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
	parked bool   // true while suspended awaiting a wake event
	gen    uint64 // increments on every wake; stale wake events are dropped
}

// Spawn starts fn as a co-simulated process at the current simulated time.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	p := &Process{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		parked: true,
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		// The final yield runs via defer so that the engine is released
		// even if fn unwinds via runtime.Goexit (e.g. t.Fatal inside a
		// test-driver process). A panic is captured here and re-raised on
		// the engine goroutine (see ProcessPanic); recover returns nil for
		// Goexit, preserving the old behaviour for that path.
		defer func() {
			if r := recover(); r != nil {
				p.eng.procFailure = &ProcessPanic{Proc: p.name, Value: r, Stack: debug.Stack()}
			}
			p.done = true
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.Schedule(0, p.wakeFn())
	return p
}

// wakeFn returns an event body that resumes the process from its *current*
// park. If the process has been woken by some other event in the meantime
// (its generation advanced), the wake is stale and must be dropped — a
// process may be the target of both a timer and a signal broadcast.
func (p *Process) wakeFn() func() {
	gen := p.gen
	return func() { p.run(gen) }
}

// run hands control to the process and waits for it to park or finish.
// It must only be called from an engine event.
func (p *Process) run(gen uint64) {
	if p.done || !p.parked || p.gen != gen {
		return // stale wake
	}
	p.parked = false
	p.gen++
	p.resume <- struct{}{}
	<-p.yield
	if f := p.eng.procFailure; f != nil {
		p.eng.procFailure = nil
		panic(f)
	}
}

// park suspends the process until some engine event calls run again.
// It must only be called from inside the process goroutine.
func (p *Process) park() {
	p.parked = true
	p.yield <- struct{}{}
	<-p.resume
}

// Name returns the name given at Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.eng.Now() }

// Done reports whether the process function has returned.
func (p *Process) Done() bool { return p.done }

// Sleep advances the process's local time by d, yielding to the simulation.
// Sleep(0) yields without advancing time (other events at the same instant
// that were scheduled earlier run first).
func (p *Process) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative sleep %v", p.name, d))
	}
	// The park below is what the scheduled wake resumes: stamp the wake
	// with the post-park generation.
	p.parked = true
	p.eng.Schedule(d, p.wakeFn())
	p.yield <- struct{}{}
	<-p.resume
}

// WaitSignal parks the process until s is raised. If s is already raised the
// process consumes the signal level semantics described on Signal and
// continues without yielding.
func (p *Process) WaitSignal(s *Signal) {
	for !s.TestClear() {
		s.addWaiter(p)
		p.park()
	}
}

// WaitCond parks the process, re-testing cond each time s is raised, until
// cond is true. cond is also tested immediately.
func (p *Process) WaitCond(s *Signal, cond func() bool) {
	for !cond() {
		s.addWaiter(p)
		p.park()
	}
}

// WaitCondAny parks the process, re-testing cond each time either signal
// is raised, until cond is true. cond is also tested immediately. The
// process joins both waiter lists; whichever Raise comes first wakes it,
// and the other signal's wake is dropped by the generation guard.
func (p *Process) WaitCondAny(s1, s2 *Signal, cond func() bool) {
	for !cond() {
		s1.addWaiter(p)
		s2.addWaiter(p)
		p.park()
	}
}

// WaitCondUntil behaves like WaitCond but gives up after d simulated time.
// It reports whether cond held (true) or the deadline expired first (false).
// cond is tested immediately; a zero or negative d degenerates to that
// single test. The deadline timer is cancellable, so a satisfied wait leaves
// no stray event behind — the world can still drain to quiescence.
func (p *Process) WaitCondUntil(s *Signal, cond func() bool, d Time) bool {
	if cond() {
		return true
	}
	if d <= 0 {
		return false
	}
	deadline := p.Now() + d
	expired := false
	id := p.eng.ScheduleCancellable(d, func() {
		expired = true
		s.Raise()
	})
	for !cond() {
		if expired || p.Now() >= deadline {
			return false
		}
		s.addWaiter(p)
		p.park()
	}
	if !expired {
		p.eng.Cancel(id)
	}
	return true
}

// Signal is a wakeup flag processes can block on. Raise stores a level (so a
// Raise with no waiter is not lost) and wakes all current waiters at the
// same simulated instant. It is the moral equivalent of the "FIFO became
// non-empty" wires between the paper's hardware units.
type Signal struct {
	eng     *Engine
	raised  bool
	waiters []*Process
}

// NewSignal returns a lowered signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Raise sets the signal level and schedules every waiting process to resume
// at the current instant.
func (s *Signal) Raise() {
	s.raised = true
	if len(s.waiters) == 0 {
		return
	}
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		s.eng.Schedule(0, p.wakeFn())
	}
}

// TestClear reports whether the signal was raised, clearing it.
func (s *Signal) TestClear() bool {
	r := s.raised
	s.raised = false
	return r
}

func (s *Signal) addWaiter(p *Process) { s.waiters = append(s.waiters, p) }
