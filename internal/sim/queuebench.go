package sim

import (
	"fmt"
	"testing"
)

// Micro-benchmarks of the event-queue kernels — heap vs ladder at several
// steady-state queue depths, the cancellable churn path, and the
// partition-runner barrier window. They live in a non-test file so the
// alpusim bench harness can fold the results into BENCH.json; go test
// -bench reaches them through BenchmarkQueueMicro. The numbers measure
// host cost of simulating the operation, not simulated latency.

// MicroResult is one micro-benchmark measurement for BENCH.json.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// MicroCase names one runnable micro-benchmark.
type MicroCase struct {
	Name  string
	Bench func(b *testing.B)
}

// newQueueEngine builds an engine on the named kernel.
func newQueueEngine(kernel string) *Engine {
	if kernel == "ladder" {
		return NewLadderEngine()
	}
	return NewEngine()
}

// benchHold measures the schedule+step steady state with depth events
// held in flight — the regime where the heap pays O(log depth) sift work
// per operation and the ladder stays O(1).
func benchHold(kernel string, depth int) func(*testing.B) {
	return func(b *testing.B) {
		e := newQueueEngine(kernel)
		fn := func() {}
		for i := 0; i < depth; i++ {
			e.Schedule(Time(i)*Nanosecond, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Schedule(Time(depth)*Nanosecond, fn)
			e.Step()
		}
	}
}

// benchCancel measures the schedule-cancel churn path (timeouts that are
// almost always revoked). The ladder cancels lazily, so the queue carries
// tombstones between iterations.
func benchCancel(kernel string) func(*testing.B) {
	return func(b *testing.B) {
		e := newQueueEngine(kernel)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := e.ScheduleCancellable(Nanosecond, fn)
			e.Cancel(id)
			if i%64 == 63 {
				// Let the clock pass the tombstones so the ladder
				// reclaims them, as a live world would.
				e.Schedule(Nanosecond, fn)
				e.Step()
			}
		}
	}
}

// benchPartitionWindow measures the barrier-window machinery itself: p
// partitions in lockstep, each hopping one delivery to its neighbour per
// window, so every window moves p deliveries through defer+sort+inject.
// Cost per op is the full per-hop overhead (horizon computation, worker
// handoff, outbox flush) on top of the event itself.
func benchPartitionWindow(p int) func(*testing.B) {
	return func(b *testing.B) {
		engines := make([]*Engine, p)
		for i := range engines {
			engines[i] = NewLadderEngine()
		}
		ps := NewPartitionSet(engines, 200*Nanosecond)
		// p chains hop in lockstep, so each window finds every chain in a
		// distinct partition; seqs[part] is only ever touched by the one
		// chain currently resident there.
		seqs := make([]uint64, p)
		hops := b.N/p + 1
		var hop func(part, count int)
		hop = func(part, count int) {
			if count <= 0 {
				return
			}
			dst := (part + 1) % p
			seqs[part]++
			eng := engines[part]
			ps.Defer(part, Delivery{
				At:   eng.Now() + 200*Nanosecond,
				Src:  uint32(part),
				Seq:  seqs[part],
				Part: dst,
				Fn:   func() { hop(dst, count-1) },
			})
		}
		for i := 0; i < p; i++ {
			i := i
			engines[i].Schedule(0, func() { hop(i, hops) })
		}
		b.ReportAllocs()
		b.ResetTimer()
		ps.Run()
	}
}

// QueueMicroCases is the event-queue micro-benchmark set.
func QueueMicroCases() []MicroCase {
	var cases []MicroCase
	for _, kernel := range []string{"heap", "ladder"} {
		for _, depth := range []int{8, 64, 1024} {
			cases = append(cases, MicroCase{
				Name:  fmt.Sprintf("queue/%s/hold%d", kernel, depth),
				Bench: benchHold(kernel, depth),
			})
		}
		cases = append(cases, MicroCase{
			Name:  fmt.Sprintf("queue/%s/cancel", kernel),
			Bench: benchCancel(kernel),
		})
	}
	for _, p := range []int{2, 8} {
		cases = append(cases, MicroCase{
			Name:  fmt.Sprintf("partition/window%d", p),
			Bench: benchPartitionWindow(p),
		})
	}
	return cases
}

// RunQueueMicroBenchmarks executes the micro set via testing.Benchmark,
// for harnesses (the alpusim bench experiment) that want the numbers
// outside go test.
func RunQueueMicroBenchmarks() []MicroResult {
	var out []MicroResult
	for _, c := range QueueMicroCases() {
		r := testing.Benchmark(c.Bench)
		out = append(out, MicroResult{
			Name:        c.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}
