package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{1500 * Nanosecond, "1.500us"},
		{13 * Microsecond, "13.000us"},
		{3 * Millisecond, "3ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestClockMHz(t *testing.T) {
	nic := MHz(500)
	if nic.Period != 2*Nanosecond {
		t.Errorf("500 MHz period = %v, want 2ns", nic.Period)
	}
	host := MHz(2000)
	if host.Period != 500*Picosecond {
		t.Errorf("2 GHz period = %v, want 500ps", host.Period)
	}
	if got := nic.Cycles(7); got != 14*Nanosecond {
		t.Errorf("7 cycles at 500MHz = %v, want 14ns", got)
	}
	if got := nic.CyclesCeil(3 * Nanosecond); got != 2 {
		t.Errorf("CyclesCeil(3ns) = %d, want 2", got)
	}
	if got := nic.CyclesCeil(0); got != 0 {
		t.Errorf("CyclesCeil(0) = %d, want 0", got)
	}
	if f := nic.Freq(); f != 500 {
		t.Errorf("Freq = %v, want 500", f)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
	if e.Now() != 30*Nanosecond {
		t.Errorf("final time = %v, want 30ns", e.Now())
	}
}

func TestEngineTieBreakIsScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events fired out of schedule order: %v", order)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.ScheduleCancellable(10*Nanosecond, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel of pending event reported false")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel reported true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	var ids []EventID
	for i := 0; i < 10; i++ {
		i := i
		ids = append(ids, e.ScheduleCancellable(Time(i+1)*Nanosecond, func() { fired = append(fired, i) }))
	}
	e.Cancel(ids[4])
	e.Cancel(ids[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d*Nanosecond, func() { fired = append(fired, d) })
	}
	e.RunUntil(12 * Nanosecond)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(12ns) fired %d events, want 2", len(fired))
	}
	if e.Now() != 12*Nanosecond {
		t.Errorf("Now = %v, want 12ns", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("Run after RunUntil fired %d total, want 4", len(fired))
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i)*Nanosecond, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("Stop did not halt Run: %d events fired", count)
	}
	e.Run()
	if count != 5 {
		t.Fatalf("resumed Run fired %d total, want 5", count)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var visit func()
	visit = func() {
		depth++
		if depth < 50 {
			e.Schedule(Nanosecond, visit)
		}
	}
	e.Schedule(0, visit)
	e.Run()
	if depth != 50 {
		t.Fatalf("nested chain depth = %d, want 50", depth)
	}
	if e.Now() != 49*Nanosecond {
		t.Errorf("Now = %v, want 49ns", e.Now())
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEngine().Schedule(-Nanosecond, func() {})
}

// Property: for any set of delays, events fire in non-decreasing time order
// and the engine's executed count equals the number scheduled.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			d := Time(d) * Nanosecond
			e.Schedule(d, func() { times = append(times, e.Now()) })
		}
		e.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return e.Executed() == uint64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineFreeListReuse pins the fast-path property the figure sweeps
// rely on: a schedule/step steady state recycles event objects instead of
// allocating, and the byID table is never populated for plain Schedule.
func TestEngineFreeListReuse(t *testing.T) {
	e := NewEngine()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(Nanosecond, func() {})
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %.1f objects/op, want 0", allocs)
	}
	if e.byID != nil {
		t.Fatal("plain Schedule populated the cancellable id table")
	}
}

// TestEngineCancellableInterleaved mixes cancellable and plain events and
// checks ids survive free-list recycling: a recycled object must not be
// cancellable through its old id.
func TestEngineCancellableInterleaved(t *testing.T) {
	e := NewEngine()
	var fired []string
	id := e.ScheduleCancellable(5*Nanosecond, func() { fired = append(fired, "c1") })
	e.Schedule(10*Nanosecond, func() { fired = append(fired, "p1") })
	e.Run() // both fire; c1's object returns to the free list
	if e.Cancel(id) {
		t.Fatal("Cancel succeeded on an already-fired event")
	}
	// The recycled object backs a plain event now; the stale id must not
	// reach it.
	e.Schedule(5*Nanosecond, func() { fired = append(fired, "p2") })
	if e.Cancel(id) {
		t.Fatal("stale id cancelled a recycled plain event")
	}
	e.Run()
	if len(fired) != 3 || fired[0] != "c1" || fired[1] != "p1" || fired[2] != "p2" {
		t.Fatalf("fired %v, want [c1 p1 p2]", fired)
	}
}

// Property: interleaved schedule/cancel/step sequences never corrupt heap
// order.
func TestEngineRandomOpsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		var live []EventID
		last := Time(-1)
		check := func() {
			if e.Now() < last {
				t.Fatalf("time moved backwards: %v < %v", e.Now(), last)
			}
			last = e.Now()
		}
		for op := 0; op < 500; op++ {
			switch rng.Intn(3) {
			case 0:
				id := e.ScheduleCancellable(Time(rng.Intn(100))*Nanosecond, check)
				live = append(live, id)
			case 1:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					e.Cancel(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 2:
				e.Step()
			}
		}
		e.Run()
	}
}

// Two self-re-arming pollers must not keep each other (or an empty
// world) alive: Alive excludes poller events, so both stop as soon as
// the modelled work drains.
func TestPollersDoNotKeepWorldAlive(t *testing.T) {
	eng := NewEngine()
	mkPoller := func(period Time) {
		var poll func()
		poll = func() {
			if eng.Alive() > 0 {
				eng.SchedulePoll(period, poll)
			}
		}
		eng.SchedulePoll(0, poll)
	}
	mkPoller(Microsecond)
	mkPoller(3 * Microsecond)
	// Real work: a chain of 5 events 10us apart.
	work, hops := Time(0), 0
	var step func()
	step = func() {
		hops++
		if hops < 5 {
			eng.Schedule(10*Microsecond, step)
		}
	}
	eng.Schedule(0, step)
	work = 4 * 10 * Microsecond
	eng.Run()
	if hops != 5 {
		t.Fatalf("work did not complete: %d hops", hops)
	}
	if eng.Pending() != 0 {
		t.Fatalf("pollers still pending after drain: %d", eng.Pending())
	}
	// Pollers may overshoot the last event by at most one period.
	if eng.Now() > work+3*Microsecond {
		t.Errorf("pollers kept the clock running: now=%v", eng.Now())
	}
	if eng.Alive() != 0 {
		t.Errorf("Alive = %d after drain", eng.Alive())
	}
}
