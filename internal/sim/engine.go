package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// EventID identifies a cancellable scheduled event (see ScheduleCancellable).
type EventID uint64

// maxTime is the largest representable timestamp; the partition runner uses
// it as the "no event pending" sentinel.
const maxTime = Time(math.MaxInt64)

// Event ordering is a composite key (at, k1, k2). Ordinary events carry
// k1 = 0 and k2 = schedule sequence, which reproduces the classic
// "same-instant events fire in schedule order" rule exactly. Cross-rank
// delivery events (AtDelivery) carry k1 = deliveryClass | source endpoint
// and k2 = the per-source delivery sequence, so that at any instant:
//
//   - all ordinary local events fire before any network delivery, and
//   - concurrent deliveries fire in (source, per-source sequence) order,
//
// neither of which depends on how the world is partitioned. This canonical
// tie-break is what keeps partitioned runs byte-identical at any -par N.
const deliveryClass = uint64(1) << 32

type event struct {
	at   Time
	k1   uint64 // 0 for ordinary events; deliveryClass|src for deliveries
	k2   uint64 // schedule seq (ordinary) or per-source delivery seq
	fn   func()
	id   EventID // non-zero only for cancellable events
	idx  int     // index in heap, -1 when popped or cancelled
	poll bool    // housekeeping observer, excluded from LastModel
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.k1 != b.k1 {
		return a.k1 < b.k1
	}
	return a.k2 < b.k2
}

type eventHeap []*event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// arenaBlock is how many event objects one arena allocation holds. Blocks
// feed the free list in bulk, so event allocation never goes through the
// allocator one object at a time even on cold queues.
const arenaBlock = 256

// Engine is the discrete event simulation kernel. It is not safe for
// concurrent use; co-simulated processes (see Process) hand control back and
// forth so that exactly one goroutine touches the Engine at a time. Distinct
// Engines are fully independent, so whole worlds may run on parallel
// goroutines (see internal/sweep) and a single world may be split across
// per-partition engines (see PartitionSet).
//
// Two event-queue kernels are available behind the same API: the
// container/heap queue (NewEngine — the reference oracle) and the ladder
// queue (NewLadderEngine — O(1) amortized, for event-dense large worlds).
// Both order events by the same composite key, so they are interchangeable
// bit for bit; TestLadderMatchesHeap pins that equivalence.
type Engine struct {
	now     Time
	events  eventHeap
	ladder  *ladderQueue // non-nil selects the ladder kernel
	seq     uint64
	nextID  EventID
	byID    map[EventID]*event // lazily allocated; cancellable events only
	free    []*event           // recycled event objects (hot-path fast path)
	arena   []event            // current arena block feeding the free path
	stopped bool

	// procFailure holds a panic captured from a co-simulated process
	// goroutine, re-raised on the engine goroutine by Process.run.
	procFailure *ProcessPanic

	// Stats.
	executed uint64

	// pollers counts pending housekeeping events scheduled with
	// SchedulePoll — watchdog checks, telemetry samplers. They are
	// excluded from Alive so that pollers watching each other cannot keep
	// a drained world running forever.
	pollers int

	// lastModel is the timestamp of the latest executed event that models
	// the world (every event except poll-class housekeeping). It is a pure
	// function of the modelled event set, so it is identical for the same
	// world at any partitioning — the property the time-series sampler
	// relies on to pad every shard to the same canonical sample count.
	lastModel Time

	procs []*Process
}

// NewEngine returns an empty simulation at time zero, using the
// container/heap event queue (the reference kernel).
func NewEngine() *Engine {
	return &Engine{}
}

// NewLadderEngine returns an empty simulation at time zero, using the
// ladder event queue. Event ordering is identical to NewEngine; only the
// asymptotics differ (amortized O(1) enqueue/dequeue vs O(log n)).
func NewLadderEngine() *Engine {
	e := &Engine{}
	e.ladder = &ladderQueue{recycle: e.recycle}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// alloc takes an event object off the free list, refilling it from the
// arena when empty.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	if len(e.arena) == 0 {
		e.arena = make([]event, arenaBlock)
	}
	ev := &e.arena[0]
	e.arena = e.arena[1:]
	return ev
}

// push stamps a fresh ordinary event and inserts it into the queue.
func (e *Engine) push(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, e.now))
	}
	ev := e.alloc()
	e.seq++
	ev.at, ev.k1, ev.k2, ev.fn, ev.id, ev.poll = t, 0, e.seq, fn, 0, false
	if e.ladder != nil {
		e.ladder.push(ev)
	} else {
		heap.Push(&e.events, ev)
	}
	return ev
}

// recycle returns a popped or cancelled event object to the free list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Schedule runs fn after delay d. A negative delay is an error in the model,
// so it panics rather than silently reordering time. The event cannot be
// cancelled — this is the allocation-free hot path; use ScheduleCancellable
// for timeouts and other maybe-revoked work.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", d, e.now))
	}
	e.push(e.now+d, fn)
}

// At runs fn at absolute time t (>= Now). Like Schedule, the event cannot
// be cancelled.
func (e *Engine) At(t Time, fn func()) {
	e.push(t, fn)
}

// AtDelivery schedules a cross-rank packet delivery at absolute time t.
// Deliveries order canonically by (t, src, dseq) after every ordinary event
// at the same instant, regardless of when or from which partition they were
// scheduled — see the deliveryClass comment. src is the sending endpoint,
// dseq its per-source delivery sequence (strictly increasing at the sender).
func (e *Engine) AtDelivery(t Time, src uint32, dseq uint64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: delivery into the past: %v < %v", t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.k1, ev.k2, ev.fn, ev.id, ev.poll = t, deliveryClass|uint64(src), dseq, fn, 0, false
	if e.ladder != nil {
		e.ladder.push(ev)
	} else {
		heap.Push(&e.events, ev)
	}
}

// ScheduleCancellable is Schedule for events that may later be revoked with
// Cancel. It registers the event in the id table, which the plain
// Schedule/At fast path skips entirely.
func (e *Engine) ScheduleCancellable(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", d, e.now))
	}
	return e.AtCancellable(e.now+d, fn)
}

// AtCancellable is At for events that may later be revoked with Cancel.
func (e *Engine) AtCancellable(t Time, fn func()) EventID {
	ev := e.push(t, fn)
	e.nextID++
	ev.id = e.nextID
	if e.byID == nil {
		e.byID = make(map[EventID]*event)
	}
	e.byID[ev.id] = ev
	return ev.id
}

// Cancel removes a pending cancellable event. Cancelling an event that
// already fired or was already cancelled is a no-op and reports false.
// The heap kernel removes the event physically; the ladder kernel marks it
// dead in place and reclaims it lazily when its timestamp is reached.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.byID[id]
	if !ok {
		return false
	}
	delete(e.byID, id)
	if e.ladder != nil {
		ev.fn = nil
		ev.id = 0
		e.ladder.live--
		return true
	}
	if ev.idx >= 0 {
		heap.Remove(&e.events, ev.idx)
	}
	e.recycle(ev)
	return true
}

// Pending reports the number of scheduled (live) events.
func (e *Engine) Pending() int {
	if e.ladder != nil {
		return e.ladder.live
	}
	return len(e.events)
}

// PeekTime reports the timestamp of the earliest pending event, or ok=false
// when the queue is empty. It does not advance the clock.
func (e *Engine) PeekTime() (Time, bool) {
	if e.ladder != nil {
		return e.ladder.peek()
	}
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// ParkedProcs reports how many co-simulated processes are suspended
// waiting for a wake event. The partition runner uses it to tell an inert
// partition (drained, every rank exited) from a merely quiet one whose
// parked ranks an injected delivery could still wake into sending.
func (e *Engine) ParkedProcs() int {
	n := 0
	for _, p := range e.procs {
		if p.parked && !p.done {
			n++
		}
	}
	return n
}

// SchedulePoll is Schedule for self-re-arming housekeeping events that
// observe the world rather than model it. Pollers must re-arm only while
// Alive() > 0; the bookkeeping lives in the wrapper closure, so the
// Step/Schedule hot path is untouched.
func (e *Engine) SchedulePoll(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", d, e.now))
	}
	e.pollers++
	ev := e.push(e.now+d, func() {
		e.pollers--
		fn()
	})
	ev.poll = true
}

// AtPollFront schedules a front-class poll at absolute time t (>= Now): it
// carries the zero tie-break key (k1 = 0, k2 = 0), sorting before every
// ordinary event (k2 >= 1) and every delivery (k1 >= deliveryClass) at the
// same instant, in both event kernels. A front poll therefore observes the
// world exactly as left by the events strictly before t — a state that does
// not depend on how the world is partitioned. At most one front poll may be
// pending per engine at any one instant (two would tie ambiguously); the
// time-series sampler, its only client, re-arms a single chain of them.
// Front polls are housekeeping: counted in pollers, excluded from Alive and
// from LastModel.
func (e *Engine) AtPollFront(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: front poll into the past: %v < %v", t, e.now))
	}
	ev := e.alloc()
	e.pollers++
	ev.at, ev.k1, ev.k2, ev.id, ev.poll = t, 0, 0, 0, true
	ev.fn = func() {
		e.pollers--
		fn()
	}
	if e.ladder != nil {
		e.ladder.push(ev)
	} else {
		heap.Push(&e.events, ev)
	}
}

// LastModel reports the timestamp of the latest executed modelled event
// (polls excluded). For one world split across per-partition engines, the
// maximum of LastModel over the engines is the world's end-of-model time,
// identical at any -par N.
func (e *Engine) LastModel() Time { return e.lastModel }

// Alive reports the pending events that represent modelled work —
// Pending minus outstanding pollers. When it reaches zero nothing can
// ever happen again in the world, no matter how long pollers poll.
func (e *Engine) Alive() int { return e.Pending() - e.pollers }

// Step executes the single earliest event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	var ev *event
	if e.ladder != nil {
		ev = e.ladder.pop()
		if ev == nil {
			return false
		}
	} else {
		if len(e.events) == 0 {
			return false
		}
		ev = heap.Pop(&e.events).(*event)
	}
	if ev.id != 0 {
		delete(e.byID, ev.id)
	}
	if ev.at < e.now {
		panic("sim: event queue corrupted")
	}
	e.now = ev.at
	if !ev.poll {
		e.lastModel = ev.at
	}
	e.executed++
	// Recycle before running fn: fn may schedule new events, which can
	// legitimately reuse this object, while the local fn value stays valid.
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// (if the simulation had not already advanced past it).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		at, ok := e.PeekTime()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunBefore executes events with timestamps strictly below t and returns.
// Unlike RunUntil it does not advance the clock to t — the partition runner
// calls it repeatedly with growing conservative horizons, and the clock must
// stay at the last executed event so late-injected deliveries (which are
// guaranteed to land at or after it) remain schedulable.
func (e *Engine) RunBefore(t Time) {
	e.stopped = false
	for !e.stopped {
		at, ok := e.PeekTime()
		if !ok || at >= t {
			return
		}
		e.Step()
	}
}

// Stop makes Run/RunUntil/RunBefore return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }
