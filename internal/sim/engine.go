package sim

import (
	"container/heap"
	"fmt"
)

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type event struct {
	at   Time
	seq  uint64 // schedule order; breaks ties deterministically
	fn   func()
	id   EventID
	heap *eventHeap
	idx  int // index in heap, -1 when popped or cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is the discrete event simulation kernel. It is not safe for
// concurrent use; co-simulated processes (see Process) hand control back and
// forth so that exactly one goroutine touches the Engine at a time.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	nextID  EventID
	byID    map[EventID]*event
	stopped bool

	// Stats.
	executed uint64

	procs []*Process
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{byID: make(map[EventID]*event)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule runs fn after delay d. A negative delay is an error in the model,
// so it panics rather than silently reordering time.
func (e *Engine) Schedule(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", d, e.now))
	}
	return e.At(e.now+d, fn)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, e.now))
	}
	e.seq++
	e.nextID++
	ev := &event{at: t, seq: e.seq, fn: fn, id: e.nextID}
	heap.Push(&e.events, ev)
	e.byID[ev.id] = ev
	return ev.id
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op and reports false.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.byID[id]
	if !ok {
		return false
	}
	delete(e.byID, id)
	if ev.idx >= 0 {
		heap.Remove(&e.events, ev.idx)
	}
	return true
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return e.events.Len() }

// Step executes the single earliest event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	delete(e.byID, ev.id)
	if ev.at < e.now {
		panic("sim: event heap corrupted")
	}
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// (if the simulation had not already advanced past it).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && e.events.Len() > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }
