package sim

import (
	"container/heap"
	"fmt"
)

// EventID identifies a cancellable scheduled event (see ScheduleCancellable).
type EventID uint64

type event struct {
	at  Time
	seq uint64 // schedule order; breaks ties deterministically
	fn  func()
	id  EventID // non-zero only for cancellable events
	idx int     // index in heap, -1 when popped or cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is the discrete event simulation kernel. It is not safe for
// concurrent use; co-simulated processes (see Process) hand control back and
// forth so that exactly one goroutine touches the Engine at a time. Distinct
// Engines are fully independent, so whole worlds may run on parallel
// goroutines (see internal/sweep).
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	nextID  EventID
	byID    map[EventID]*event // lazily allocated; cancellable events only
	free    []*event           // recycled event objects (hot-path fast path)
	stopped bool

	// procFailure holds a panic captured from a co-simulated process
	// goroutine, re-raised on the engine goroutine by Process.run.
	procFailure *ProcessPanic

	// Stats.
	executed uint64

	// pollers counts pending housekeeping events scheduled with
	// SchedulePoll — watchdog checks, telemetry samplers. They are
	// excluded from Alive so that pollers watching each other cannot keep
	// a drained world running forever.
	pollers int

	procs []*Process
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// push takes an event object off the free list (or allocates one), stamps
// it, and inserts it into the heap.
func (e *Engine) push(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	e.seq++
	ev.at, ev.seq, ev.fn, ev.id = t, e.seq, fn, 0
	heap.Push(&e.events, ev)
	return ev
}

// recycle returns a popped or cancelled event object to the free list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Schedule runs fn after delay d. A negative delay is an error in the model,
// so it panics rather than silently reordering time. The event cannot be
// cancelled — this is the allocation-free hot path; use ScheduleCancellable
// for timeouts and other maybe-revoked work.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", d, e.now))
	}
	e.push(e.now+d, fn)
}

// At runs fn at absolute time t (>= Now). Like Schedule, the event cannot
// be cancelled.
func (e *Engine) At(t Time, fn func()) {
	e.push(t, fn)
}

// ScheduleCancellable is Schedule for events that may later be revoked with
// Cancel. It registers the event in the id table, which the plain
// Schedule/At fast path skips entirely.
func (e *Engine) ScheduleCancellable(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v at %v", d, e.now))
	}
	return e.AtCancellable(e.now+d, fn)
}

// AtCancellable is At for events that may later be revoked with Cancel.
func (e *Engine) AtCancellable(t Time, fn func()) EventID {
	ev := e.push(t, fn)
	e.nextID++
	ev.id = e.nextID
	if e.byID == nil {
		e.byID = make(map[EventID]*event)
	}
	e.byID[ev.id] = ev
	return ev.id
}

// Cancel removes a pending cancellable event. Cancelling an event that
// already fired or was already cancelled is a no-op and reports false.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.byID[id]
	if !ok {
		return false
	}
	delete(e.byID, id)
	if ev.idx >= 0 {
		heap.Remove(&e.events, ev.idx)
	}
	e.recycle(ev)
	return true
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return e.events.Len() }

// SchedulePoll is Schedule for self-re-arming housekeeping events that
// observe the world rather than model it. Pollers must re-arm only while
// Alive() > 0; the bookkeeping lives in the wrapper closure, so the
// Step/Schedule hot path is untouched.
func (e *Engine) SchedulePoll(d Time, fn func()) {
	e.pollers++
	e.Schedule(d, func() {
		e.pollers--
		fn()
	})
}

// Alive reports the pending events that represent modelled work —
// Pending minus outstanding pollers. When it reaches zero nothing can
// ever happen again in the world, no matter how long pollers poll.
func (e *Engine) Alive() int { return e.events.Len() - e.pollers }

// Step executes the single earliest event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	if ev.id != 0 {
		delete(e.byID, ev.id)
	}
	if ev.at < e.now {
		panic("sim: event heap corrupted")
	}
	e.now = ev.at
	e.executed++
	// Recycle before running fn: fn may schedule new events, which can
	// legitimately reuse this object, while the local fn value stays valid.
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// (if the simulation had not already advanced past it).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && e.events.Len() > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }
