package sim

import "sort"

// Conservative parallel discrete-event simulation of one world.
//
// A world is split into partitions — disjoint groups of ranks, one Engine
// per partition, all sharing one simulated clock domain. The only way one
// partition affects another is a cross-partition packet delivery, and every
// delivery is scheduled at least the wire latency L after the event that
// sends it. That bound is the classic conservative lookahead, and it gives
// partition p two constraints:
//
//   - spontaneous bound: partition q's earliest pending event is at n_q, so
//     no delivery originating at q lands anywhere before n_q + L — p may
//     run strictly below L + min over q != p of n_q;
//   - reaction bound: p's own earliest event at n_p can send a delivery that
//     wakes another partition — even one with an empty queue, whose ranks
//     are merely parked — and the earliest *response* lands back no sooner
//     than one round trip later, n_p + 2L. This term only ever binds for
//     the globally earliest partition (elsewhere n_p + 2L >= min1 + 2L >=
//     the spontaneous bound), and only while some other partition is still
//     reactive (pending events or parked processes).
//
//	h_p = min( L + min over q != p of n_q , n_p + 2L if others can react )
//
// The runner repeats barrier windows: compute each partition's horizon, run
// all partitions concurrently up to their horizons, then exchange the
// deliveries generated during the window in canonical (time, source,
// sequence) order. When no other partition can react — a 1-partition world,
// or the endgame where every other partition has drained and exited — the
// horizon is unbounded and the remainder runs in a single window at
// near-serial speed.
//
// Determinism does not depend on the window schedule. Each rank's event
// chain is rank-local except for deliveries, ordinary events within a rank
// keep schedule order (Engine composite key, k1 = 0), and deliveries fire
// in (time, source, per-source sequence) order whether they were scheduled
// directly (same partition) or injected at a barrier (cross partition) —
// the deliveryClass key class makes both paths sort identically. Output at
// -par N is therefore byte-identical for every N >= 1.

// Delivery is one cross-partition packet handoff, buffered in the sending
// partition's outbox during a window and injected into the destination
// engine at the next barrier.
type Delivery struct {
	At   Time   // absolute delivery time (>= send time + lookahead)
	Src  uint32 // sending endpoint — canonical order, major
	Seq  uint64 // per-source delivery sequence — canonical order, minor
	Part int    // destination partition
	Fn   func()
}

// PartitionSet couples the per-partition engines of one world and runs
// them to completion under conservative synchronization. It is built once
// per world; Run may be called once.
type PartitionSet struct {
	engines   []*Engine
	lookahead Time
	outbox    [][]Delivery

	// OnBarrier, when set, runs single-threaded on the coordinator after
	// every window, with all partitions parked. The MPI layer uses it to
	// surface watchdog expiries: the failing partition's watchdog stops
	// its engine mid-window, and the hook re-raises the failure here,
	// where harvesting world state is race-free.
	OnBarrier func()
	// OnInject, when set, runs single-threaded for each partition that
	// received injected deliveries at a barrier — the hook that re-arms a
	// watchdog whose partition had drained and stopped polling.
	OnInject func(part int)

	next     []Time // per-partition earliest event, this window
	react    []bool // per-partition: can still be woken by a delivery
	fails    []any  // per-partition captured panics
	all      []Delivery
	injected []bool

	start []chan Time
	done  chan struct{}
}

// NewPartitionSet couples engines (one per partition) with the world's
// conservative lookahead — the minimum cross-partition delivery delay,
// i.e. the wire latency.
func NewPartitionSet(engines []*Engine, lookahead Time) *PartitionSet {
	if len(engines) == 0 {
		panic("sim: partition set needs at least one engine")
	}
	if lookahead <= 0 {
		panic("sim: conservative lookahead must be positive")
	}
	n := len(engines)
	return &PartitionSet{
		engines:   engines,
		lookahead: lookahead,
		outbox:    make([][]Delivery, n),
		next:      make([]Time, n),
		react:     make([]bool, n),
		fails:     make([]any, n),
		injected:  make([]bool, n),
	}
}

// Engines returns the per-partition engines, in partition order.
func (ps *PartitionSet) Engines() []*Engine { return ps.engines }

// Lookahead returns the conservative lookahead bound.
func (ps *PartitionSet) Lookahead() Time { return ps.lookahead }

// Defer buffers a cross-partition delivery in partition src's outbox.
// It must be called from within src's window (or single-threaded between
// windows); each partition writes only its own outbox, so windows never
// contend.
func (ps *PartitionSet) Defer(srcPart int, d Delivery) {
	ps.outbox[srcPart] = append(ps.outbox[srcPart], d)
}

// Run executes barrier windows until every partition's queue drains. A
// panic on any partition goroutine (process failure, watchdog) is
// re-raised on the caller's goroutine; with several, the lowest partition
// index wins, deterministically.
func (ps *PartitionSet) Run() {
	n := len(ps.engines)
	ps.start = make([]chan Time, n)
	ps.done = make(chan struct{}, n)
	for p := 1; p < n; p++ {
		ps.start[p] = make(chan Time, 1)
		go ps.worker(p)
	}
	defer func() {
		for p := 1; p < n; p++ {
			close(ps.start[p])
		}
	}()
	for {
		busy := 0
		for i, eng := range ps.engines {
			if t, ok := eng.PeekTime(); ok {
				ps.next[i] = t
				busy++
			} else {
				ps.next[i] = maxTime
			}
			ps.react[i] = ps.next[i] != maxTime || eng.ParkedProcs() > 0
		}
		if busy == 0 {
			return
		}
		// The two earliest next-event times determine every horizon: for
		// the globally earliest partition the binding bound is the second
		// minimum (or its own reaction round trip), for everyone else the
		// minimum.
		min1, arg1, min2 := maxTime, -1, maxTime
		for i, t := range ps.next {
			if t < min1 {
				min1, min2, arg1 = t, min1, i
			} else if t < min2 {
				min2 = t
			}
		}
		launched := 0
		for p := n - 1; p >= 1; p-- {
			if ps.next[p] == maxTime {
				continue
			}
			ps.start[p] <- ps.horizon(p, min1, arg1, min2)
			launched++
		}
		// Partition 0 runs its window inline on the coordinator.
		if ps.next[0] != maxTime {
			ps.window(0, ps.horizon(0, min1, arg1, min2))
		}
		for ; launched > 0; launched-- {
			<-ps.done
		}
		for p, f := range ps.fails {
			if f != nil {
				ps.fails[p] = nil
				panic(f)
			}
		}
		if ps.OnBarrier != nil {
			ps.OnBarrier()
		}
		ps.flush()
	}
}

// horizon is h_p = lookahead + min over other partitions' next-event
// times, capped by p's own reaction round trip (next + 2*lookahead) while
// any other partition can still be woken by a delivery; unbounded when no
// other partition has events or parked processes.
func (ps *PartitionSet) horizon(p int, min1 Time, arg1 int, min2 Time) Time {
	m := min1
	if p == arg1 {
		m = min2
	}
	h := maxTime
	if m != maxTime {
		h = m + ps.lookahead
	}
	for q, r := range ps.react {
		if q != p && r {
			if rb := ps.next[p] + 2*ps.lookahead; rb < h {
				h = rb
			}
			break
		}
	}
	return h
}

func (ps *PartitionSet) worker(p int) {
	for h := range ps.start[p] {
		ps.window(p, h)
		ps.done <- struct{}{}
	}
}

func (ps *PartitionSet) window(p int, h Time) {
	defer func() {
		if r := recover(); r != nil {
			ps.fails[p] = r
		}
	}()
	ps.engines[p].RunBefore(h)
}

// flush merges every outbox, sorts the deliveries by their canonical
// (time, source, sequence) key, and injects them into their destination
// engines. The injection order is a pure function of the deliveries
// themselves, never of the partition layout or window schedule.
func (ps *PartitionSet) flush() {
	all := ps.all[:0]
	for p := range ps.outbox {
		all = append(all, ps.outbox[p]...)
		ob := ps.outbox[p]
		for i := range ob {
			ob[i].Fn = nil
		}
		ps.outbox[p] = ob[:0]
	}
	if len(all) == 0 {
		ps.all = all
		return
	}
	// The key (At, Src, Seq) is unique — Seq increases strictly per
	// source — so an unstable sort is total here.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})
	for i := range ps.injected {
		ps.injected[i] = false
	}
	for _, d := range all {
		ps.engines[d.Part].AtDelivery(d.At, d.Src, d.Seq, d.Fn)
		ps.injected[d.Part] = true
	}
	if ps.OnInject != nil {
		for p, got := range ps.injected {
			if got {
				ps.OnInject(p)
			}
		}
	}
	for i := range all {
		all[i].Fn = nil
	}
	ps.all = all[:0]
}
