package sim

// FIFO is a bounded queue with a "became non-empty" signal, modelling the
// decoupling FIFOs the paper places between the processor, the header
// stream, and the ALPU (Fig. 1). Capacity 0 means unbounded.
type FIFO[T any] struct {
	name     string
	items    []T
	capacity int
	NotEmpty *Signal
	NotFull  *Signal

	// Stats.
	maxDepth int
	pushes   uint64
	drops    uint64
}

// NewFIFO returns an empty FIFO with the given capacity (0 = unbounded).
func NewFIFO[T any](e *Engine, name string, capacity int) *FIFO[T] {
	return &FIFO[T]{
		name:     name,
		capacity: capacity,
		NotEmpty: NewSignal(e),
		NotFull:  NewSignal(e),
	}
}

// Name returns the FIFO's name.
func (f *FIFO[T]) Name() string { return f.name }

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int { return len(f.items) }

// Cap returns the capacity (0 = unbounded).
func (f *FIFO[T]) Cap() int { return f.capacity }

// Full reports whether a Push would fail.
func (f *FIFO[T]) Full() bool { return f.capacity > 0 && len(f.items) >= f.capacity }

// Push appends v. It reports false (dropping v) when the FIFO is full;
// hardware-faithful callers must check Full first or handle the drop.
func (f *FIFO[T]) Push(v T) bool {
	if f.Full() {
		f.drops++
		return false
	}
	f.items = append(f.items, v)
	f.pushes++
	if len(f.items) > f.maxDepth {
		f.maxDepth = len(f.items)
	}
	f.NotEmpty.Raise()
	return true
}

// Pop removes and returns the oldest item.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if len(f.items) == 0 {
		return zero, false
	}
	v := f.items[0]
	// Shift rather than re-slice so the backing array does not grow without
	// bound over long simulations.
	copy(f.items, f.items[1:])
	f.items[len(f.items)-1] = zero
	f.items = f.items[:len(f.items)-1]
	f.NotFull.Raise()
	if len(f.items) > 0 {
		f.NotEmpty.Raise()
	}
	return v, true
}

// Peek returns the oldest item without removing it.
func (f *FIFO[T]) Peek() (T, bool) {
	var zero T
	if len(f.items) == 0 {
		return zero, false
	}
	return f.items[0], true
}

// MaxDepth reports the high-water mark since creation.
func (f *FIFO[T]) MaxDepth() int { return f.maxDepth }

// Pushes reports the number of successful pushes.
func (f *FIFO[T]) Pushes() uint64 { return f.pushes }

// Drops reports the number of pushes rejected because the FIFO was full.
func (f *FIFO[T]) Drops() uint64 { return f.drops }
