package sim

// FIFO is a bounded queue with a "became non-empty" signal, modelling the
// decoupling FIFOs the paper places between the processor, the header
// stream, and the ALPU (Fig. 1). Capacity 0 means unbounded.
//
// Storage is a ring buffer: Push and Pop are O(1), and popped slots are
// zeroed so the FIFO never retains references to items it no longer holds.
type FIFO[T any] struct {
	name     string
	buf      []T
	head     int // index of the oldest item
	count    int
	capacity int
	NotEmpty *Signal
	NotFull  *Signal

	// Stats.
	maxDepth int
	pushes   uint64
	drops    uint64
}

// NewFIFO returns an empty FIFO with the given capacity (0 = unbounded).
func NewFIFO[T any](e *Engine, name string, capacity int) *FIFO[T] {
	f := &FIFO[T]{
		name:     name,
		capacity: capacity,
		NotEmpty: NewSignal(e),
		NotFull:  NewSignal(e),
	}
	if capacity > 0 {
		f.buf = make([]T, capacity)
	}
	return f
}

// Name returns the FIFO's name.
func (f *FIFO[T]) Name() string { return f.name }

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int { return f.count }

// Cap returns the capacity (0 = unbounded).
func (f *FIFO[T]) Cap() int { return f.capacity }

// Full reports whether a Push would fail.
func (f *FIFO[T]) Full() bool { return f.capacity > 0 && f.count >= f.capacity }

// grow doubles the ring for an unbounded FIFO, unwrapping the live items to
// the front of the new buffer.
func (f *FIFO[T]) grow() {
	newCap := 2 * len(f.buf)
	if newCap < 4 {
		newCap = 4
	}
	buf := make([]T, newCap)
	n := copy(buf, f.buf[f.head:])
	copy(buf[n:], f.buf[:f.head])
	f.buf = buf
	f.head = 0
}

// Push appends v. It reports false (dropping v) when the FIFO is full;
// hardware-faithful callers must check Full first or handle the drop.
func (f *FIFO[T]) Push(v T) bool {
	if f.Full() {
		f.drops++
		return false
	}
	if f.count == len(f.buf) {
		f.grow() // unbounded FIFO out of room
	}
	f.buf[(f.head+f.count)%len(f.buf)] = v
	f.count++
	f.pushes++
	if f.count > f.maxDepth {
		f.maxDepth = f.count
	}
	f.NotEmpty.Raise()
	return true
}

// Pop removes and returns the oldest item. The vacated slot is zeroed so
// the backing array retains no reference to the popped item.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if f.count == 0 {
		return zero, false
	}
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	f.NotFull.Raise()
	if f.count > 0 {
		f.NotEmpty.Raise()
	}
	return v, true
}

// Peek returns the oldest item without removing it.
func (f *FIFO[T]) Peek() (T, bool) {
	var zero T
	if f.count == 0 {
		return zero, false
	}
	return f.buf[f.head], true
}

// MaxDepth reports the high-water mark since creation.
func (f *FIFO[T]) MaxDepth() int { return f.maxDepth }

// Pushes reports the number of successful pushes.
func (f *FIFO[T]) Pushes() uint64 { return f.pushes }

// Drops reports the number of pushes rejected because the FIFO was full.
func (f *FIFO[T]) Drops() uint64 { return f.drops }
