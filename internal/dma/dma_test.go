package dma

import (
	"testing"

	"alpusim/internal/sim"
)

func TestTransferTime(t *testing.T) {
	e := New("rx", 60*sim.Nanosecond, 2)
	if got := e.TransferTime(0); got != 60*sim.Nanosecond {
		t.Errorf("zero-byte transfer = %v, want setup only (60ns)", got)
	}
	if got := e.TransferTime(4096); got != (60+2048)*sim.Nanosecond {
		t.Errorf("4KB transfer = %v, want 2108ns", got)
	}
	if got := e.TransferTime(-5); got != 60*sim.Nanosecond {
		t.Errorf("negative size = %v, want setup only", got)
	}
}

func TestTransferSerialisation(t *testing.T) {
	e := New("tx", 10*sim.Nanosecond, 2)
	d1 := e.Transfer(0, 100) // 10 + 50 = done at 60
	if d1 != 60*sim.Nanosecond {
		t.Fatalf("first transfer done at %v, want 60ns", d1)
	}
	d2 := e.Transfer(0, 100) // queued behind the first
	if d2 != 120*sim.Nanosecond {
		t.Fatalf("second transfer done at %v, want 120ns", d2)
	}
	if e.StallTime() != 60*sim.Nanosecond {
		t.Errorf("StallTime = %v, want 60ns", e.StallTime())
	}
	d3 := e.Transfer(sim.Microsecond, 100) // idle engine: no queueing
	if d3 != sim.Microsecond+60*sim.Nanosecond {
		t.Fatalf("third transfer done at %v", d3)
	}
	if e.Transfers() != 3 || e.Bytes() != 300 {
		t.Errorf("Transfers=%d Bytes=%d", e.Transfers(), e.Bytes())
	}
}

func TestDefaults(t *testing.T) {
	e := New("d", 0, 0)
	if e.TransferTime(0) <= 0 {
		t.Fatal("default setup not positive")
	}
}
