// Package dma models the NIC's send and receive DMA engines (Fig. 1): a
// fixed descriptor setup cost, a bandwidth-limited transfer time, and
// serialisation of back-to-back transfers on the same engine.
package dma

import (
	"alpusim/internal/params"
	"alpusim/internal/sim"
)

// Engine is one DMA engine.
type Engine struct {
	name      string
	setup     sim.Time
	bwBpns    int // bytes per nanosecond
	busyUntil sim.Time

	transfers uint64
	bytes     uint64
	stall     sim.Time
}

// New returns an engine with the given setup cost and bandwidth
// (bytes/ns). Zero values select the calibrated defaults.
func New(name string, setup sim.Time, bwBpns int) *Engine {
	if setup == 0 {
		setup = params.DMASetupDelay
	}
	if bwBpns == 0 {
		bwBpns = params.DMABandwidthBpns
	}
	return &Engine{name: name, setup: setup, bwBpns: bwBpns}
}

// TransferTime returns the occupancy of a transfer of size bytes,
// excluding queueing.
func (e *Engine) TransferTime(size int) sim.Time {
	if size < 0 {
		size = 0
	}
	return e.setup + sim.Time(size/e.bwBpns)*sim.Nanosecond
}

// Transfer schedules a transfer of size bytes starting no earlier than now
// and returns its completion time. The engine serialises transfers.
func (e *Engine) Transfer(now sim.Time, size int) sim.Time {
	start := now
	if e.busyUntil > start {
		e.stall += e.busyUntil - start
		start = e.busyUntil
	}
	done := start + e.TransferTime(size)
	e.busyUntil = done
	e.transfers++
	e.bytes += uint64(max(size, 0))
	return done
}

// BusyUntil reports when the engine becomes free.
func (e *Engine) BusyUntil() sim.Time { return e.busyUntil }

// Transfers reports the number of transfers issued.
func (e *Engine) Transfers() uint64 { return e.transfers }

// Bytes reports the total bytes moved.
func (e *Engine) Bytes() uint64 { return e.bytes }

// StallTime reports cumulative queueing delay behind earlier transfers.
func (e *Engine) StallTime() sim.Time { return e.stall }
