package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Cells", "Block", "MHz")
	tb.AddRow(256, 8, 112.5)
	tb.AddRow(128, 32, 100.62)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Cells") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "112.5") {
		t.Errorf("float not formatted: %q", lines[2])
	}
	if !strings.Contains(lines[3], "100.6") {
		t.Errorf("float rounding wrong: %q", lines[3])
	}
	// Columns aligned: every row at least as wide as the header prefix.
	for _, l := range lines[1:] {
		if len(l) < 5 {
			t.Errorf("suspicious row %q", l)
		}
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	CSV(&b, []string{"q", "lat"}, [][]any{{10, 1.5}, {20, 2.25}})
	want := "q,lat\n10,1.500\n20,2.250\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Errorf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty Summarize = %+v", z)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 2x + 5
	m, b := LinearFit(xs, ys)
	if math.Abs(m-2) > 1e-9 || math.Abs(b-5) > 1e-9 {
		t.Errorf("fit = %v, %v; want 2, 5", m, b)
	}
	m, b = LinearFit(nil, nil)
	if m != 0 || b != 0 {
		t.Error("empty fit not zero")
	}
	// Degenerate: all same x.
	m, b = LinearFit([]float64{2, 2}, []float64{1, 3})
	if m != 0 || b != 2 {
		t.Errorf("degenerate fit = %v, %v; want 0, 2", m, b)
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	if got := c.String(); got != "none" {
		t.Fatalf("empty Counters String = %q", got)
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter not zero")
	}
	c.Add("b", 2)
	c.Add("a", 1)
	c.Add("b", 3)
	if got := c.Get("b"); got != 5 {
		t.Fatalf("b = %d, want 5", got)
	}
	if got := c.String(); got != "b=5 a=1" {
		t.Fatalf("String = %q, want first-touch order", got)
	}
	if got := c.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	var d Counters
	d.Add("c", 7)
	d.Add("a", 1)
	c.Merge(&d)
	c.Merge(nil)
	if got := c.String(); got != "b=5 a=2 c=7" {
		t.Fatalf("merged String = %q", got)
	}
	if got := len(c.Names()); got != 3 {
		t.Fatalf("Names len = %d", got)
	}
}
