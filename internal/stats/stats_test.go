package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Cells", "Block", "MHz")
	tb.AddRow(256, 8, 112.5)
	tb.AddRow(128, 32, 100.62)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Cells") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "112.5") {
		t.Errorf("float not formatted: %q", lines[2])
	}
	if !strings.Contains(lines[3], "100.6") {
		t.Errorf("float rounding wrong: %q", lines[3])
	}
	// Columns aligned: every row at least as wide as the header prefix.
	for _, l := range lines[1:] {
		if len(l) < 5 {
			t.Errorf("suspicious row %q", l)
		}
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	CSV(&b, []string{"q", "lat"}, [][]any{{10, 1.5}, {20, 2.25}})
	want := "q,lat\n10,1.500\n20,2.250\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Errorf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty Summarize = %+v", z)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 2x + 5
	m, b := LinearFit(xs, ys)
	if math.Abs(m-2) > 1e-9 || math.Abs(b-5) > 1e-9 {
		t.Errorf("fit = %v, %v; want 2, 5", m, b)
	}
	m, b = LinearFit(nil, nil)
	if m != 0 || b != 0 {
		t.Error("empty fit not zero")
	}
	// Degenerate: all same x.
	m, b = LinearFit([]float64{2, 2}, []float64{1, 3})
	if m != 0 || b != 2 {
		t.Errorf("degenerate fit = %v, %v; want 0, 2", m, b)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0.0"},         // exact zero stays the classic rendering
		{112.5, "112.5"},   // large values keep one decimal
		{100.62, "100.6"},  //
		{-42.04, "-42.0"},  //
		{0.0421, "0.0421"}, // small values keep four significant digits
		{1.2345, "1.234"},  //
		{-0.00037, "-0.00037"},
		{9.9994, "9.999"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAddRowPrecision(t *testing.T) {
	// Regression: per-entry slopes like 0.042 ns used to collapse to "0.0".
	tb := NewTable("name", "slope")
	tb.AddRow("baseline", 0.0421)
	if out := tb.String(); !strings.Contains(out, "0.0421") {
		t.Errorf("small float collapsed:\n%s", out)
	}
}
