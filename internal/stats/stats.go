// Package stats provides the small measurement and report-formatting
// helpers shared by the benchmark harness and the command-line tools:
// aligned text tables (the form the paper's tables take) and CSV series
// (the form its figures take).
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v, except float64,
// which gets value-aware precision via FormatFloat.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat picks a precision that neither collapses small magnitudes
// to "0.0" nor decorates large ones with noise digits: |v| < 10 keeps
// four significant digits, anything else one decimal.
func FormatFloat(v float64) string {
	if v != 0 && math.Abs(v) < 10 {
		return fmt.Sprintf("%.4g", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV renders rows as comma-separated values with a header line.
func CSV(w io.Writer, header []string, rows [][]any) {
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, c := range row {
			switch v := c.(type) {
			case float64:
				parts[i] = fmt.Sprintf("%.3f", v)
			default:
				parts[i] = fmt.Sprint(v)
			}
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
}

// Summary holds min/max/mean of a float series.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// LinearFit returns slope and intercept of a least-squares line through
// (x, y) points — used to extract per-entry traversal costs from latency
// series.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}
