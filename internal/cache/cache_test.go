package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Size: 1024, Assoc: 2, LineSize: 32}) // 16 sets x 2 ways
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if r := c.Access(0x100, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x11f, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Access(0x120, false); r.Hit {
		t.Fatal("next-line access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (stride = numSets*line = 512).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // must evict b
	if !c.Probe(a) {
		t.Fatal("MRU line a was evicted")
	}
	if c.Probe(b) {
		t.Fatal("LRU line b survived")
	}
	if !c.Probe(d) {
		t.Fatal("newly filled line d missing")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := small()
	c.Access(0, true) // dirty
	c.Access(512, false)
	r := c.Access(1024, false) // evicts line 0 (dirty)
	if !r.Writeback {
		t.Fatal("dirty eviction produced no writeback")
	}
	if r.Victim != 0 {
		t.Fatalf("writeback victim = %#x, want 0", r.Victim)
	}
	if c.Writebacks() != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Writebacks())
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(512, false)
	if r := c.Access(1024, false); r.Writeback {
		t.Fatal("clean eviction produced a writeback")
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(0, true) // write hit dirties the line
	c.Access(512, false)
	if r := c.Access(1024, false); !r.Writeback {
		t.Fatal("line dirtied by write hit was evicted without writeback")
	}
}

func TestVictimAddrRoundTrip(t *testing.T) {
	c := small()
	addrs := []uint64{0x40, 0x7c0, 0x12340}
	for _, a := range addrs {
		set, tag := c.index(a)
		base := c.victimAddr(set, tag)
		wantBase := a &^ uint64(c.cfg.LineSize-1)
		if base != wantBase {
			t.Errorf("victimAddr(index(%#x)) = %#x, want %#x", a, base, wantBase)
		}
	}
}

func TestTouchSpansLines(t *testing.T) {
	c := small()
	if m := c.Touch(0x10, 64, false); m != 3 {
		// 0x10..0x4f spans lines 0x00, 0x20, 0x40.
		t.Fatalf("Touch misses = %d, want 3", m)
	}
	if m := c.Touch(0x10, 64, false); m != 0 {
		t.Fatalf("warm Touch misses = %d, want 0", m)
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Access(0x40, false)
	c.Flush()
	if c.Probe(0x40) {
		t.Fatal("line survived Flush")
	}
	if r := c.Access(0x40, false); r.Hit {
		t.Fatal("access after Flush hit")
	}
}

func TestWorkingSetFitsThenThrashes(t *testing.T) {
	// The phenomenon behind the paper's Fig. 5/6 knees: a working set that
	// fits is all hits on re-traversal; one that exceeds capacity with an
	// LRU-hostile sequential scan is all misses.
	c := New(Config{Size: 32 << 10, Assoc: 64, LineSize: 32}) // the NIC L1
	fits := 512                                               // 512 lines * 32B = 16K < 32K
	for i := 0; i < fits; i++ {
		c.Access(uint64(i*32), false)
	}
	h0 := c.Hits()
	for i := 0; i < fits; i++ {
		if r := c.Access(uint64(i*32), false); !r.Hit {
			t.Fatalf("re-traversal of fitting set missed at %d", i)
		}
	}
	if c.Hits()-h0 != uint64(fits) {
		t.Fatal("hit accounting wrong")
	}

	big := 2048 // 64K > 32K
	for i := 0; i < big; i++ {
		c.Access(uint64(0x100000+i*32), false)
	}
	missBefore := c.Misses()
	for i := 0; i < big; i++ {
		c.Access(uint64(0x100000+i*32), false)
	}
	if got := c.Misses() - missBefore; got != uint64(big) {
		t.Fatalf("sequential over-capacity re-scan missed %d of %d (true LRU should miss all)", got, big)
	}
}

func TestHitRate(t *testing.T) {
	c := small()
	if c.HitRate() != 1 {
		t.Fatal("empty cache HitRate != 1")
	}
	c.Access(0, false)
	c.Access(0, false)
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero line size did not panic")
		}
	}()
	New(Config{Size: 1024, Assoc: 2, LineSize: 0})
}

// Property: the cache never holds more distinct lines than its capacity,
// and Probe agrees with a shadow model of per-set LRU.
func TestLRUShadowModelProperty(t *testing.T) {
	type shadowSet struct{ order []uint64 } // front = LRU
	f := func(seed int64, ops []uint16) bool {
		cfg := Config{Size: 512, Assoc: 2, LineSize: 32} // 8 sets
		c := New(cfg)
		numSets := 8
		shadow := make([]shadowSet, numSets)
		rng := rand.New(rand.NewSource(seed))
		for range ops {
			addr := uint64(rng.Intn(64)) * 32
			set := int(addr / 32 % uint64(numSets))
			tag := addr / 32 / uint64(numSets)
			c.Access(addr, rng.Intn(2) == 0)
			s := &shadow[set]
			for i, v := range s.order {
				if v == tag {
					s.order = append(append(s.order[:i], s.order[i+1:]...), tag)
					goto updated
				}
			}
			if len(s.order) == cfg.Assoc {
				s.order = s.order[1:]
			}
			s.order = append(s.order, tag)
		updated:
		}
		// Cross-check every modelled address.
		for a := uint64(0); a < 64*32; a += 32 {
			set := int(a / 32 % uint64(numSets))
			tag := a / 32 / uint64(numSets)
			inShadow := false
			for _, v := range shadow[set].order {
				if v == tag {
					inShadow = true
				}
			}
			if c.Probe(a) != inShadow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
