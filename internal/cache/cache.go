// Package cache implements a set-associative, write-back, write-allocate
// cache model with true-LRU replacement. It models state only (hit/miss and
// writeback traffic); timing is composed by internal/memsys using the
// Table III latencies.
package cache

import "fmt"

// Policy selects the replacement policy.
type Policy int

const (
	// LRU is exact least-recently-used (the host processor model).
	LRU Policy = iota
	// Random is deterministic pseudo-random victim selection, as embedded
	// parts of the PPC440 era used (round-robin/pseudo-random). Unlike
	// exact LRU it degrades gradually when a looping working set exceeds
	// capacity, which is the behaviour behind the paper's Fig. 5/6 cache
	// knees.
	Random
)

// Config describes a cache's geometry.
type Config struct {
	Size     int // total bytes
	Assoc    int // ways
	LineSize int // bytes
	Policy   Policy
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is a single level of set-associative cache.
type Cache struct {
	cfg     Config
	sets    [][]line
	numSets int
	ticks   uint64
	rng     uint64 // xorshift state for Random replacement (deterministic)

	// Stats.
	accesses   uint64
	hits       uint64
	writebacks uint64
}

// New returns an empty cache. It panics on a geometry that does not divide
// evenly, since that is a configuration bug.
func New(cfg Config) *Cache {
	if cfg.LineSize <= 0 || cfg.Assoc <= 0 || cfg.Size <= 0 {
		panic(fmt.Sprintf("cache: bad config %+v", cfg))
	}
	lines := cfg.Size / cfg.LineSize
	if lines%cfg.Assoc != 0 {
		panic(fmt.Sprintf("cache: %d lines not divisible by assoc %d", lines, cfg.Assoc))
	}
	numSets := lines / cfg.Assoc
	sets := make([][]line, numSets)
	backing := make([]line, lines)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{cfg: cfg, sets: sets, numSets: numSets, rng: 0x9e3779b97f4a7c15}
}

// nextRand is a deterministic xorshift64 step.
func (c *Cache) nextRand() uint64 {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return c.rng
}

// Result describes the outcome of one access.
type Result struct {
	Hit bool
	// Writeback is set when a dirty victim was evicted; Victim is the
	// address of its first byte.
	Writeback bool
	Victim    uint64
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(c.cfg.LineSize)
	return int(lineAddr % uint64(c.numSets)), lineAddr / uint64(c.numSets)
}

// Access looks up addr, allocating on miss, and returns what happened.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.accesses++
	c.ticks++
	setIdx, tag := c.index(addr)
	set := c.sets[setIdx]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.hits++
			set[i].lru = c.ticks
			if write {
				set[i].dirty = true
			}
			return Result{Hit: true}
		}
	}

	// Miss: pick the invalid way, else the policy's victim.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		if c.cfg.Policy == Random {
			victim = int(c.nextRand() % uint64(len(set)))
		} else {
			victim = 0
			for i := range set {
				if set[i].lru < set[victim].lru {
					victim = i
				}
			}
		}
	}
	res := Result{}
	if set[victim].valid && set[victim].dirty {
		res.Writeback = true
		res.Victim = c.victimAddr(setIdx, set[victim].tag)
		c.writebacks++
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.ticks}
	return res
}

// Probe reports whether addr is present without touching LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	setIdx, tag := c.index(addr)
	for _, l := range c.sets[setIdx] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// victimAddr reconstructs a line's base address from its set and tag.
func (c *Cache) victimAddr(set int, tag uint64) uint64 {
	return (tag*uint64(c.numSets) + uint64(set)) * uint64(c.cfg.LineSize)
}

// Touch loads every line of [addr, addr+size), as the firmware does when it
// builds a queue entry; it is Access in a loop, provided for convenience.
func (c *Cache) Touch(addr uint64, size int, write bool) (misses int) {
	ls := uint64(c.cfg.LineSize)
	for a := addr &^ (ls - 1); a < addr+uint64(size); a += ls {
		if r := c.Access(a, write); !r.Hit {
			misses++
		}
	}
	return misses
}

// Flush invalidates everything (statistics are preserved).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
}

// LineSize returns the configured line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// Accesses reports the total number of lookups.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Hits reports the number of lookups that hit.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses reports the number of lookups that missed.
func (c *Cache) Misses() uint64 { return c.accesses - c.hits }

// Writebacks reports how many dirty victims were evicted.
func (c *Cache) Writebacks() uint64 { return c.writebacks }

// HitRate returns hits/accesses (1.0 when there were no accesses).
func (c *Cache) HitRate() float64 {
	if c.accesses == 0 {
		return 1
	}
	return float64(c.hits) / float64(c.accesses)
}
