package cache

import "testing"

// The dispatch-cache geometry the NIC fabric uses (nic/fabric.go): 64
// lines, 4-way, LRU. The hit path is the common case for Zipf-skewed
// tenancy traffic; the miss path is the streaming worst case.

func dispatchGeometry() Config {
	return Config{Size: 512, LineSize: 8, Assoc: 4, Policy: LRU}
}

func BenchmarkCacheDispatchHit(b *testing.B) {
	c := New(dispatchGeometry())
	c.Access(0x900_0000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x900_0000, false)
	}
	// Every timed access must hit; only the one warm-up access may miss.
	if c.Hits() != uint64(b.N) {
		b.Fatalf("hit benchmark missed: %d hits over %d timed accesses", c.Hits(), b.N)
	}
}

func BenchmarkCacheDispatchMiss(b *testing.B) {
	c := New(dispatchGeometry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A stride of one line per set sweep: every access conflicts out a
		// resident line, so the cache never hits.
		c.Access(0x900_0000+uint64(i)*8*64, false)
	}
	if c.Hits() != 0 {
		b.Fatalf("miss benchmark hit %d times", c.Hits())
	}
}
