// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the cmds (EXPERIMENTS.md "Profiling the simulator"). It exists so the
// three binaries share one implementation of the start/stop dance.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that finishes the CPU profile and writes an allocation profile
// to memPath (if non-empty). Call the stop function before exiting; it is
// safe to call when both paths are empty.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	stop := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects out of the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}
	return stop, nil
}
