package rtl

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"alpusim/internal/alpu"
)

func design(cells, bs int, masked bool) Design {
	return Design{
		Geometry:   alpu.Geometry{Cells: cells, BlockSize: bs},
		MatchWidth: 42,
		TagWidth:   16,
		Masked:     masked,
	}
}

func TestGenerateValidates(t *testing.T) {
	bad := []Design{
		{Geometry: alpu.Geometry{Cells: 100, BlockSize: 8}, MatchWidth: 42, TagWidth: 16},
		{Geometry: alpu.Geometry{Cells: 128, BlockSize: 16}, MatchWidth: 0, TagWidth: 16},
		{Geometry: alpu.Geometry{Cells: 128, BlockSize: 16}, MatchWidth: 42, TagWidth: 40},
		{Geometry: alpu.Geometry{Cells: 128, BlockSize: 16}, MatchWidth: 90, TagWidth: 16},
	}
	for i, d := range bad {
		if _, err := d.Generate(); err == nil {
			t.Errorf("bad design %d generated without error", i)
		}
	}
}

func TestModuleBalance(t *testing.T) {
	for _, masked := range []bool{true, false} {
		src, err := design(64, 16, masked).Generate()
		if err != nil {
			t.Fatal(err)
		}
		mods := strings.Count(src, "\nmodule ")
		ends := strings.Count(src, "\nendmodule")
		if mods != 3 || ends != 3 {
			t.Errorf("masked=%v: %d modules, %d endmodules; want 3 each", masked, mods, ends)
		}
		// No unresolved placeholders.
		if strings.Contains(src, "%!") {
			t.Error("formatting directive leaked into the Verilog")
		}
	}
}

func TestInstanceCounts(t *testing.T) {
	d := design(128, 16, true)
	src, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cellInsts := regexp.MustCompile(`\balpu_cell c\d+ \(`).FindAllString(src, -1)
	if len(cellInsts) != 16 {
		t.Errorf("cell instances per block = %d, want block size 16", len(cellInsts))
	}
	blockInsts := regexp.MustCompile(`\balpu_block b\d+ \(`).FindAllString(src, -1)
	if len(blockInsts) != 8 {
		t.Errorf("block instances = %d, want 8", len(blockInsts))
	}
}

// extract returns the text of one module.
func extract(src, name string) string {
	start := strings.Index(src, "module "+name+" (")
	if start < 0 {
		return ""
	}
	end := strings.Index(src[start:], "endmodule")
	return src[start : start+end]
}

// regBits parses declared register widths in a module body.
func regBits(mod string) int {
	total := 0
	wide := regexp.MustCompile(`(?m)^\s*(?:output\s+)?reg\s+\[(\d+):0\]\s+\w+`)
	for _, m := range wide.FindAllStringSubmatch(mod, -1) {
		var hi int
		fmt.Sscanf(m[1], "%d", &hi)
		total += hi + 1
	}
	narrow := regexp.MustCompile(`(?m)^\s*(?:output\s+)?reg\s+(\w+)\s*[,;]`)
	total += len(narrow.FindAllString(mod, -1))
	return total
}

// The emitted RTL's data registers must match the structural terms shared
// with the FPGA estimator: cells*(match+mask?+tag+valid) and one request
// register per block.
func TestRegisterBitsMatchEstimatorTerms(t *testing.T) {
	for _, tc := range []struct {
		cells, bs int
		masked    bool
	}{
		{64, 16, true},
		{64, 16, false},
		{128, 8, true},
		{32, 32, false},
	} {
		d := design(tc.cells, tc.bs, tc.masked)
		src, err := d.Generate()
		if err != nil {
			t.Fatal(err)
		}
		cellMod := extract(src, "alpu_cell")
		if cellMod == "" {
			t.Fatal("cell module missing")
		}
		// Per-cell registers: out_match, (out_mask), out_tag, out_valid.
		perCell := regBits(cellMod)
		if perCell != d.CellRegBits() {
			t.Errorf("%+v: emitted cell regs %d, structural model %d", tc, perCell, d.CellRegBits())
		}
		// Per-block request pipeline: probe_q (+ probe_mask_q).
		blockMod := extract(src, "alpu_block")
		reqRe := regexp.MustCompile(`reg \[(\d+):0\] probe(_mask)?_q;`)
		reqBits := 0
		for _, m := range reqRe.FindAllStringSubmatch(blockMod, -1) {
			var hi int
			fmt.Sscanf(m[1], "%d", &hi)
			reqBits += hi + 1
		}
		if reqBits != d.BlockRegBits() {
			t.Errorf("%+v: emitted request regs %d, structural model %d", tc, reqBits, d.BlockRegBits())
		}
		// And the totals line up.
		g := d.Geometry
		want := g.Cells*perCell + g.Blocks()*reqBits
		if d.TotalDataRegBits() != want {
			t.Errorf("%+v: TotalDataRegBits %d, recomputed %d", tc, d.TotalDataRegBits(), want)
		}
	}
}

// The generated register totals are exactly the architectural portion of
// the published flip-flop counts: Tables IV/V minus the fitted control
// overheads. At the prototyped widths the data registers account for over
// 90% of the published FFs.
func TestDataRegsDominatePublishedFFs(t *testing.T) {
	cases := []struct {
		cells, bs int
		masked    bool
		published int
	}{
		{256, 8, true, 28908},
		{128, 16, true, 13897},
		{256, 8, false, 19414},
		{128, 16, false, 8771},
	}
	for _, tc := range cases {
		d := design(tc.cells, tc.bs, tc.masked)
		got := d.TotalDataRegBits()
		if got >= tc.published {
			t.Errorf("%+v: data regs %d exceed published total %d", tc, got, tc.published)
		}
		frac := float64(got) / float64(tc.published)
		if frac < 0.85 {
			t.Errorf("%+v: data regs cover only %.0f%% of published FFs", tc, frac*100)
		}
	}
}

func TestPriorityTreeEmission(t *testing.T) {
	src, err := design(32, 8, true).Generate()
	if err != nil {
		t.Fatal(err)
	}
	blockMod := extract(src, "alpu_block")
	// log2(8)=3 mux levels beyond the leaves.
	for lvl := 1; lvl <= 3; lvl++ {
		if !strings.Contains(blockMod, fmt.Sprintf("h%d[", lvl)) {
			t.Errorf("mux level %d missing from block", lvl)
		}
	}
	if !strings.Contains(blockMod, "assign any_hit = h3[0];") {
		t.Error("tree root not wired to any_hit")
	}
}

func TestTopFSMStates(t *testing.T) {
	src, err := design(32, 8, false).Generate()
	if err != nil {
		t.Fatal(err)
	}
	top := extract(src, "alpu")
	for _, frag := range []string{"S_MATCH", "S_READ_CMD", "S_INSERT", "held_valid", "res_kind"} {
		if !strings.Contains(top, frag) {
			t.Errorf("top module missing %q (Fig. 3 machine / Table II interface)", frag)
		}
	}
	// The unexpected variant's probe mask must flow through the ports.
	if !strings.Contains(top, "hdr_mask") {
		t.Error("mask-input variant lost its probe mask port")
	}
}

func TestCustomName(t *testing.T) {
	d := design(32, 8, true)
	d.Name = "pme"
	src, err := d.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, mod := range []string{"module pme_cell (", "module pme_block (", "module pme ("} {
		if !strings.Contains(src, mod) {
			t.Errorf("missing %q", mod)
		}
	}
	if strings.Contains(src, "module alpu") {
		t.Error("default name leaked despite override")
	}
}
