package telemetry

import (
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"

	"alpusim/internal/sim"
)

// Sim-time profiling: the tracer's span stream refolded as a pprof
// profile weighted by simulated time, so the standard Go toolchain
// (`go tool pprof -top`, `-flamegraph`, `-web`) reads the simulation
// the way it reads a CPU profile — except the "CPU" is the modelled
// hardware and the seconds are simulated nanoseconds.
//
// Each 'X' span becomes a frame; nesting within a (pid, tid) track is
// recovered from timestamps (a span encloses the spans it contains),
// and every stack is weighted by its leaf's self time — the span's
// duration minus its children's. Stacks are rooted at the track's
// process and thread display names, so the flamegraph reads
// world -> nic -> firmware/alpu -> phase.
//
// The encoder writes the profile.proto wire format by hand (varint +
// length-delimited fields only), gzipped with a zeroed header, so the
// bytes are a pure function of the span stream: identical at any
// -par/-jobs, and diffable in CI.

// stackSample is one folded stack: frames root-first, weight in
// simulated picoseconds of self time.
type stackSample struct {
	frames []string
	ps     sim.Time
}

// openSpan is a stack entry during the per-track nesting walk.
type openSpan struct {
	end    sim.Time
	self   sim.Time
	frames []string
}

// simStacks folds every 'X' span of the tracers into self-time-weighted
// stacks, merged by identical frame chains and sorted by chain — the
// canonical order the encoder serialises. With several tracers each is
// rooted under a "world<idx>" frame (argument order, as in WriteTrace).
func simStacks(tracers ...*Tracer) []stackSample {
	type key struct{ pid, tid int }
	agg := make(map[string]*stackSample)
	for idx, t := range tracers {
		if t == nil {
			continue
		}
		procs := make(map[int]string)
		threads := make(map[key]string)
		for _, n := range t.names {
			if n.process {
				procs[n.pid] = n.name
			} else {
				threads[key{n.pid, n.tid}] = n.name
			}
		}
		tracks := make(map[key][]tevent)
		for i := 0; i < len(t.events); i++ {
			e := t.eventAt(i)
			if e.ph == 'X' {
				k := key{e.pid, e.tid}
				tracks[k] = append(tracks[k], e)
			}
		}
		var keys []key
		for k := range tracks {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].pid != keys[j].pid {
				return keys[i].pid < keys[j].pid
			}
			return keys[i].tid < keys[j].tid
		})
		for _, k := range keys {
			var root []string
			if len(tracers) > 1 {
				root = append(root, fmt.Sprintf("world%d", idx))
			}
			pname := procs[k.pid]
			if pname == "" {
				pname = fmt.Sprintf("pid%d", k.pid)
			}
			tname := threads[k]
			if tname == "" {
				tname = fmt.Sprintf("tid%d", k.tid)
			}
			root = append(root, pname, tname)
			foldTrack(tracks[k], root, agg)
		}
	}
	out := make([]stackSample, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].frames, ";") < strings.Join(out[j].frames, ";")
	})
	return out
}

// foldTrack recovers span nesting on one (pid, tid) track and
// accumulates self times into agg. Sorting by (start asc, duration
// desc) puts each enclosing span before the spans it contains, so a
// simple stack walk rebuilds the call tree.
func foldTrack(spans []tevent, root []string, agg map[string]*stackSample) {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].ts != spans[j].ts {
			return spans[i].ts < spans[j].ts
		}
		return spans[i].dur > spans[j].dur
	})
	var stack []openSpan
	emit := func(o openSpan) {
		if o.self <= 0 {
			return
		}
		k := strings.Join(o.frames, ";")
		if s, ok := agg[k]; ok {
			s.ps += o.self
		} else {
			agg[k] = &stackSample{frames: o.frames, ps: o.self}
		}
	}
	for _, sp := range spans {
		for len(stack) > 0 && stack[len(stack)-1].end <= sp.ts {
			emit(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
		}
		parent := root
		if len(stack) > 0 {
			stack[len(stack)-1].self -= sp.dur
			parent = stack[len(stack)-1].frames
		}
		frames := make([]string, len(parent)+1)
		copy(frames, parent)
		frames[len(parent)] = sp.name
		stack = append(stack, openSpan{end: sp.ts + sp.dur, self: sp.dur, frames: frames})
	}
	for len(stack) > 0 {
		emit(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
	}
}

// pbuf is a minimal protobuf wire-format writer: varints and
// length-delimited fields are all profile.proto needs.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

// field emits a varint-typed field, skipping proto3 zero defaults.
func (p *pbuf) field(f int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(f, 0)
	p.varint(v)
}

// bytesField emits a length-delimited field (submessage or string).
func (p *pbuf) bytesField(f int, b []byte) {
	p.tag(f, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// packed emits a packed repeated varint field.
func (p *pbuf) packed(f int, vs []uint64) {
	var inner pbuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(f, inner.b)
}

// profile.proto field numbers (google.golang.org/protobuf definition of
// perftools.profiles.Profile and friends).
const (
	profSampleType    = 1
	profSample        = 2
	profMapping       = 3
	profLocation      = 4
	profFunction      = 5
	profStringTable   = 6
	profDurationNanos = 10
	profPeriodType    = 11
	profPeriod        = 12

	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2

	mapID       = 1
	mapFilename = 5

	locID        = 1
	locMappingID = 2
	locLine      = 4

	lineFunctionID = 1

	funcID   = 1
	funcName = 2
)

// WriteSimProfile folds the tracers' spans into a gzipped
// pprof-compatible profile with one sample type, simtime/nanoseconds.
// The bytes are deterministic: same spans, same profile, at any
// parallelism. An empty span stream still yields a valid (empty)
// profile.
func WriteSimProfile(w io.Writer, tracers ...*Tracer) error {
	stacks := simStacks(tracers...)

	strtab := []string{""}
	strIdx := map[string]uint64{"": 0}
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(strtab))
		strtab = append(strtab, s)
		strIdx[s] = i
		return i
	}

	var prof pbuf

	// sample_type + period_type: simtime in nanoseconds.
	var vt pbuf
	vt.field(vtType, intern("simtime"))
	vt.field(vtUnit, intern("nanoseconds"))
	prof.bytesField(profSampleType, vt.b)

	// One synthetic function+location per distinct frame name, ids
	// assigned in order of first appearance over the sorted stacks.
	locIdx := map[string]uint64{}
	var locs []string
	locOf := func(frame string) uint64 {
		if id, ok := locIdx[frame]; ok {
			return id
		}
		id := uint64(len(locs) + 1)
		locIdx[frame] = id
		locs = append(locs, frame)
		return id
	}
	for _, s := range stacks {
		var sm pbuf
		ids := make([]uint64, len(s.frames))
		for i, f := range s.frames {
			// pprof stacks are leaf-first.
			ids[len(s.frames)-1-i] = locOf(f)
		}
		sm.packed(sampleLocationID, ids)
		sm.packed(sampleValue, []uint64{uint64((s.ps + 500) / 1000)})
		prof.bytesField(profSample, sm.b)
	}

	var mp pbuf
	mp.field(mapID, 1)
	mp.field(mapFilename, intern("[simulated]"))
	prof.bytesField(profMapping, mp.b)

	for i, frame := range locs {
		var fn pbuf
		fn.field(funcID, uint64(i+1))
		fn.field(funcName, intern(frame))
		prof.bytesField(profFunction, fn.b)

		var ln pbuf
		ln.field(lineFunctionID, uint64(i+1))
		var lo pbuf
		lo.field(locID, uint64(i+1))
		lo.field(locMappingID, 1)
		lo.bytesField(locLine, ln.b)
		prof.bytesField(profLocation, lo.b)
	}

	for _, s := range strtab {
		prof.bytesField(profStringTable, []byte(s))
	}

	var total sim.Time
	for _, s := range stacks {
		total += s.ps
	}
	prof.field(profDurationNanos, uint64((total+500)/1000))
	var pt pbuf
	pt.field(vtType, strIdx["simtime"])
	pt.field(vtUnit, strIdx["nanoseconds"])
	prof.bytesField(profPeriodType, pt.b)
	prof.field(profPeriod, 1)

	// Gzip with an all-zero header (no name, no mtime) so the output is
	// byte-stable.
	gz := gzip.NewWriter(w)
	if _, err := gz.Write(prof.b); err != nil {
		return err
	}
	return gz.Close()
}
