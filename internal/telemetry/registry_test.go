package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// A nil registry hands out nil handles, and every nil handle/recorder
// method is a no-op — the zero-overhead-when-disabled contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry returned a live counter")
	}
	c.Inc()
	c.Add(3)
	c.Set(7)
	if c.Get() != 0 {
		t.Error("nil counter Get != 0")
	}
	g := r.Gauge("x")
	g.Set(4)
	g.SetMax(9)
	if g.Get() != 0 {
		t.Error("nil gauge Get != 0")
	}
	h := r.Histogram("x")
	h.Add(2)
	if hh := h.Hist(); hh.N() != 0 {
		t.Error("nil histogram recorded")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Error("nil registry snapshot not empty")
	}

	var tr *Tracer
	tr.NameProcess(0, "p")
	tr.NameThread(0, 0, "t")
	tr.Span(0, 0, "c", "n", 0, 1)
	tr.Instant(0, 0, "c", "n", 0)
	tr.Count(0, 0, "n", 0, 1)
	if tr.Len() != 0 {
		t.Error("nil tracer recorded")
	}

	var p *Phases
	p.Stamp(1, StampWireTx, 10)
	if _, ok := p.Breakdown(1); ok {
		t.Error("nil phases produced a breakdown")
	}
	if p.Totals().Messages != 0 {
		t.Error("nil phases produced totals")
	}
}

func TestRegistryHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nic0/rel/retransmits")
	c.Inc()
	c.Add(2)
	if c.Get() != 3 {
		t.Errorf("counter = %d, want 3", c.Get())
	}
	if r.Counter("nic0/rel/retransmits") != c {
		t.Error("second Counter() call returned a different handle")
	}
	c.Set(5)
	c.Set(5) // harvest path: idempotent
	if c.Get() != 5 {
		t.Errorf("after Set: %d, want 5", c.Get())
	}

	g := r.Gauge("nic0/posted/peak_len")
	g.SetMax(4)
	g.SetMax(2) // lower: ignored
	if g.Get() != 4 {
		t.Errorf("gauge = %d, want 4", g.Get())
	}
	g.Set(1)
	if g.Get() != 1 {
		t.Errorf("gauge after Set = %d, want 1", g.Get())
	}

	h := r.Histogram("nic0/posted/match_depth")
	h.Add(3)
	cp := h.Hist()
	cp.Add(99) // mutating the copy must not touch the registry
	if back := r.Histogram("nic0/posted/match_depth").Hist(); back.N() != 1 {
		t.Errorf("histogram N = %d, want 1 (Hist() did not copy)", back.N())
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	s := r.Snapshot()
	c.Inc()
	if s.Counter("a") != 1 {
		t.Errorf("snapshot followed the live counter: %d", s.Counter("a"))
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("nic0/rel/retransmits").Add(2)
	a.Gauge("nic0/posted/peak_len").Set(10)
	a.Histogram("depth").Add(1)

	b := NewRegistry()
	b.Counter("nic0/rel/retransmits").Add(3)
	b.Counter("nic1/rel/timeouts").Inc()
	b.Gauge("nic0/posted/peak_len").Set(7)
	b.Histogram("depth").Add(5)

	var s Snapshot // zero value: Merge must allocate
	s.Merge(a.Snapshot())
	s.Merge(b.Snapshot())
	if s.Counter("nic0/rel/retransmits") != 5 {
		t.Errorf("counters did not sum: %d", s.Counter("nic0/rel/retransmits"))
	}
	if s.Gauges["nic0/posted/peak_len"] != 10 {
		t.Errorf("gauges did not take max: %d", s.Gauges["nic0/posted/peak_len"])
	}
	if h := s.Hists["depth"]; h.N() != 2 || h.Max() != 5 {
		t.Errorf("histograms did not merge: n=%d max=%d", h.N(), h.Max())
	}
	if s.Counter("nic1/rel/timeouts") != 1 {
		t.Error("one-sided counter lost in merge")
	}
}

func TestSnapshotSum(t *testing.T) {
	r := NewRegistry()
	r.Counter("nic0/rel/retransmits").Add(2)
	r.Counter("nic1/rel/retransmits").Add(3)
	r.Counter("nic0/rel/timeouts").Add(7)
	r.Counter("nic0/err/cts-unknown-send").Add(1)
	r.Counter("relx/other").Add(100) // segment mismatch: must not count
	s := r.Snapshot()

	cases := []struct {
		path string
		want uint64
	}{
		{"rel/retransmits", 5},      // infix across NICs
		{"nic0/rel/retransmits", 2}, // exact
		{"nic0", 10},                // prefix
		{"retransmits", 5},          // suffix
		{"err", 1},                  // single-segment infix
		{"rel", 12},                 // "relx" must not match
		{"missing", 0},              //
		{"relx/other", 100},         // exact still works
		{"", 0},                     // empty path matches nothing, not everything
		{"/", 0},                    // separator-only likewise
		{"rel/", 12},                // trailing separator is forgiven
		{"/nic0", 10},               // leading separator likewise
		{"/nic0/rel/", 9},           // both at once
		{"el/retransmits", 0},       // mid-segment start must not match
		{"nic0/rel/retransmit", 0},  // mid-segment end must not match
	}
	for _, c := range cases {
		if got := s.Sum(c.path); got != c.want {
			t.Errorf("Sum(%q) = %d, want %d", c.path, got, c.want)
		}
	}
}

// pathMatch must anchor every occurrence on segment boundaries, and keep
// scanning past a mid-segment hit to find a later aligned one.
func TestPathMatch(t *testing.T) {
	cases := []struct {
		name, path string
		want       bool
	}{
		{"nic0/rel/retransmits", "rel", true},
		{"nic0/relx/retransmits", "rel", false}, // prefix collision
		{"nic0/xrel/retransmits", "rel", false}, // suffix collision
		{"nic0/rel", "rel", true},               // at the end
		{"rel/retransmits", "rel", true},        // at the start
		{"rel", "rel", true},                    // whole name
		{"relx/rel", "rel", true},               // misaligned hit first, aligned later
		{"a/brel/relb/rel/z", "rel", true},      // two misaligned hits before the real one
		{"a/brel/relb", "rel", false},           // only misaligned hits
		{"nic0/rel/x", "rel/x", true},           // multi-segment path
		{"nic0/relx/x", "rel/x", false},         //
	}
	for _, c := range cases {
		if got := pathMatch(c.name, c.path); got != c.want {
			t.Errorf("pathMatch(%q, %q) = %v, want %v", c.name, c.path, got, c.want)
		}
	}
}

func TestSnapshotTableSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Add(2)
	out := r.Snapshot().Table()
	ia, ib := strings.Index(out, "\na "), strings.Index(out, "\nb ")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("counters not sorted:\n%s", out)
	}
	if !strings.Contains(out, "n=1 mean=2.0") {
		t.Errorf("histogram summary missing:\n%s", out)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("z/c").Add(3)
		r.Counter("a/c").Add(1)
		r.Gauge("m").Set(-2)
		r.Histogram("d").Add(4)
		r.Histogram("d").Add(5000)
		return r.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("identical snapshots rendered different JSON")
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
		Hists    map[string]struct {
			N       uint64 `json:"n"`
			Max     int    `json:"max"`
			Buckets []struct {
				Bucket string `json:"bucket"`
				Count  uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b1.String())
	}
	if doc.Counters["z/c"] != 3 || doc.Gauges["m"] != -2 {
		t.Errorf("values lost: %+v", doc)
	}
	if h := doc.Hists["d"]; h.N != 2 || h.Max != 5000 || len(h.Buckets) != 2 {
		t.Errorf("histogram JSON = %+v", h)
	}
	// An empty snapshot renders empty objects, not nulls.
	var empty Snapshot
	var be bytes.Buffer
	if err := empty.WriteJSON(&be); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(be.String(), "null") {
		t.Errorf("empty snapshot rendered null:\n%s", be.String())
	}
}
