// Package telemetry is the simulated world's observability layer: a
// typed metrics registry with hierarchical names, a simulated-clock
// tracer that emits Chrome trace-event JSON (loadable in Perfetto), and
// a per-message latency phase breakdown.
//
// Design rules, shared by all three parts:
//
//   - zero overhead when disabled: every handle and recorder method is
//     nil-safe, so instrumented code calls straight through a nil check
//     and pays nothing when no registry/tracer/recorder is attached;
//   - deterministic output: snapshots iterate names in sorted order,
//     trace events are emitted in simulation order, and every renderer
//     uses fixed formatting — two runs with the same seed produce
//     byte-identical bytes at any -jobs setting;
//   - single-world ownership: a Registry (or Tracer, or Phases) belongs
//     to one simulated world, exactly like the engine it observes.
//     Cross-world aggregation goes through Snapshot.Merge / WriteTrace
//     in enumeration order, which keeps parallel sweeps deterministic.
package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"

	"alpusim/internal/stats"
	"alpusim/internal/trace"
)

// Counter is a monotonically increasing metric handle.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Set overwrites the value — the harvest path for components that keep
// their own cheap struct counters and publish them at snapshot time
// (idempotent, so repeated harvests never double-count).
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Get returns the current value (0 for a nil handle).
func (c *Counter) Get() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value (queue occupancy, high-water mark).
// Snapshot merges take the maximum, the useful fold for peaks.
type Gauge struct{ v int64 }

// Set overwrites the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// SetMax raises the value to v if larger.
func (g *Gauge) SetMax(v int64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Get returns the current value (0 for a nil handle).
func (g *Gauge) Get() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a registry-owned fixed-bucket histogram (the trace
// package's queue-depth bucket scheme).
type Histogram struct{ h trace.Histogram }

// Add records one observation.
func (h *Histogram) Add(v int) {
	if h != nil {
		h.h.Add(v)
	}
}

// Set overwrites the underlying histogram wholesale — the harvest path
// for components that accumulate into their own trace.Histogram and
// publish it at snapshot time (idempotent, like Counter.Set).
func (h *Histogram) Set(v trace.Histogram) {
	if h != nil {
		h.h = v
	}
}

// Hist returns a copy of the underlying histogram.
func (h *Histogram) Hist() trace.Histogram {
	if h == nil {
		return trace.Histogram{}
	}
	return h.h
}

// Registry is a set of named metrics. Names are hierarchical
// slash-separated paths ("nic0/rel/retransmits"); handles are created on
// first touch and cached by the instrumented component.
//
// Handle creation and Snapshot are guarded by a mutex, because a
// partitioned world (mpi.Config.Partitions) shares one registry across
// its partition goroutines and some components create handles at runtime
// (e.g. per-error-kind counters). The handles themselves stay unlocked:
// each one is written by a single component, and the partition barrier
// orders those writes against any cross-partition read.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating) the named counter; nil registry -> nil
// handle, whose methods no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Counters = make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	s.Gauges = make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	s.Hists = make(map[string]trace.Histogram, len(r.hists))
	for name, h := range r.hists {
		s.Hists[name] = h.h
	}
	return s
}

// Snapshot is a frozen copy of a registry, safe to merge across worlds
// and render deterministically.
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]int64
	Hists    map[string]trace.Histogram
}

// Merge folds other into s: counters sum, gauges take the maximum,
// histograms merge. The fold is commutative, so merging per-world
// snapshots in enumeration order is independent of how the worlds were
// scheduled.
func (s *Snapshot) Merge(other Snapshot) {
	for name, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]uint64)
		}
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64)
		}
		if cur, ok := s.Gauges[name]; !ok || v > cur {
			s.Gauges[name] = v
		}
	}
	for name, h := range other.Hists {
		if s.Hists == nil {
			s.Hists = make(map[string]trace.Histogram)
		}
		cur := s.Hists[name]
		cur.Merge(&h)
		s.Hists[name] = cur
	}
}

// Counter returns a counter's value by exact name.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Sum totals every counter whose slash-separated name contains path as a
// consecutive run of complete segments: Sum("rel/retransmits") folds
// "nic0/rel/retransmits" across all NICs, Sum("err") folds every
// protocol-error counter. Leading and trailing separators in path are
// ignored ("rel/" sums the same counters as "rel"); an empty path — or
// one that is only separators — matches nothing, so a fold of everything
// must be written explicitly.
func (s Snapshot) Sum(path string) uint64 {
	path = strings.Trim(path, "/")
	if path == "" {
		return 0
	}
	var total uint64
	for name, v := range s.Counters {
		if pathMatch(name, path) {
			total += v
		}
	}
	return total
}

// pathMatch reports whether path occurs in name as a run of complete
// segments. The boundary checks are what keep "nic0/rel" from matching
// "nic0/relx/acks": every occurrence must start and end on a separator
// (or a name edge), not merely be a substring.
func pathMatch(name, path string) bool {
	for from := 0; ; {
		i := strings.Index(name[from:], path)
		if i < 0 {
			return false
		}
		i += from
		end := i + len(path)
		if (i == 0 || name[i-1] == '/') && (end == len(name) || name[end] == '/') {
			return true
		}
		from = i + 1
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Table renders the snapshot as an aligned name/value table (counters,
// then gauges, then histogram summaries, each sorted by name) — the
// watchdog diagnostic-dump format.
func (s Snapshot) Table() string {
	tb := stats.NewTable("metric", "value")
	for _, name := range sortedKeys(s.Counters) {
		tb.AddRow(name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		tb.AddRow(name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		tb.AddRow(name, h.String())
	}
	return tb.String()
}

// jsonHist is the deterministic JSON form of a histogram: summary fields
// plus the non-empty buckets as an ordered array.
type jsonHist struct {
	N       uint64       `json:"n"`
	Mean    float64      `json:"mean"`
	Max     int          `json:"max"`
	P50     int          `json:"p50"`
	P95     int          `json:"p95"`
	P99     int          `json:"p99"`
	Buckets []jsonBucket `json:"buckets"`
}

type jsonBucket struct {
	Bucket string `json:"bucket"`
	Count  uint64 `json:"count"`
}

// WriteJSON renders the snapshot as deterministic JSON: map keys are
// emitted sorted (encoding/json's map ordering), histogram buckets in
// bucket order. Identical snapshots produce identical bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	doc := struct {
		Counters map[string]uint64   `json:"counters"`
		Gauges   map[string]int64    `json:"gauges"`
		Hists    map[string]jsonHist `json:"histograms"`
	}{
		Counters: s.Counters,
		Gauges:   s.Gauges,
		Hists:    make(map[string]jsonHist, len(s.Hists)),
	}
	if doc.Counters == nil {
		doc.Counters = map[string]uint64{}
	}
	if doc.Gauges == nil {
		doc.Gauges = map[string]int64{}
	}
	for name, h := range s.Hists {
		jh := jsonHist{
			N: h.N(), Mean: h.Mean(), Max: h.Max(),
			P50: h.Percentile(0.5), P95: h.Percentile(0.95), P99: h.Percentile(0.99),
			Buckets: []jsonBucket{},
		}
		for _, b := range h.Buckets() {
			jh.Buckets = append(jh.Buckets, jsonBucket{Bucket: b.Label, Count: b.Count})
		}
		doc.Hists[name] = jh
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
