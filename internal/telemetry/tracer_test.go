package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"alpusim/internal/sim"
)

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(0, "nic0")
	tr.NameThread(0, 1, "posted-alpu")
	tr.Span(0, 1, "alpu", "search", 1_234_567, 2_000_000)
	tr.Instant(0, 3, "rel", "retransmit", 3*sim.Microsecond)
	tr.Count(999, 0, "pending", 0, 42)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (metadata is separate)", tr.Len())
	}

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, out)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5 (2 metadata + 3)", len(events))
	}
	// Metadata first, then events in call order.
	if events[0]["ph"] != "M" || events[1]["ph"] != "M" {
		t.Errorf("metadata not first: %v", events[:2])
	}
	if events[2]["ph"] != "X" || events[3]["ph"] != "i" || events[4]["ph"] != "C" {
		t.Errorf("event order/kinds wrong: %v", events[2:])
	}
	// Timestamps are exact microseconds with six decimals (1234567 ps).
	if !strings.Contains(out, `"ts":1.234567`) {
		t.Errorf("ps->us timestamp not exact:\n%s", out)
	}
	if !strings.Contains(out, `"dur":0.765433`) {
		t.Errorf("span duration wrong:\n%s", out)
	}
	if !strings.Contains(out, `"s":"t"`) {
		t.Error("instant missing thread scope")
	}
}

func TestSpanClampsBackwardsEnd(t *testing.T) {
	tr := NewTracer()
	tr.Span(0, 0, "c", "n", 100, 50)
	var b bytes.Buffer
	tr.WriteJSON(&b)
	if !strings.Contains(b.String(), `"dur":0.000000`) {
		t.Errorf("backwards span not clamped:\n%s", b.String())
	}
}

// WriteTrace offsets the second tracer's pids so two worlds' tracks stay
// disjoint, and skips nil tracers.
func TestWriteTraceMergesWorlds(t *testing.T) {
	t1 := NewTracer()
	t1.Instant(1, 0, "c", "a", 0)
	t2 := NewTracer()
	t2.Instant(1, 0, "c", "b", 0)
	var b bytes.Buffer
	if err := WriteTrace(&b, t1, nil, t2); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if p0, p1 := events[0]["pid"].(float64), events[1]["pid"].(float64); p0 != 1 || p1 != float64(1+2<<16) {
		t.Errorf("pids = %v, %v; want 1 and %d", p0, p1, 1+2<<16)
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("empty trace invalid: %v (%q)", err, b.String())
	}
	if len(events) != 0 {
		t.Errorf("empty trace has %d events", len(events))
	}
}

// A flight recorder keeps only the newest N events; WriteJSON renders
// them oldest-first so the dump reads as a normal (truncated) trace.
func TestFlightRecorderRing(t *testing.T) {
	tr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		tr.Instant(0, 0, "c", "e", sim.Time(i)*sim.Microsecond)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Ts float64 `json:"ts"`
	}
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v\n%s", err, b.String())
	}
	if len(events) != 4 {
		t.Fatalf("dumped %d events, want 4", len(events))
	}
	// The survivors are the last four, in chronological order.
	for i, e := range events {
		if want := float64(6 + i); e.Ts != want {
			t.Errorf("event %d ts = %v, want %v (ring not chronological)", i, e.Ts, want)
		}
	}
}

func TestFlightRecorderUnderfilled(t *testing.T) {
	tr := NewFlightRecorder(8)
	tr.Instant(0, 0, "c", "a", 0)
	tr.Instant(0, 0, "c", "b", sim.Microsecond)
	if tr.Len() != 2 || tr.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 2 and 0", tr.Len(), tr.Dropped())
	}
	var b bytes.Buffer
	if err := WriteTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 || events[0]["name"] != "a" || events[1]["name"] != "b" {
		t.Errorf("underfilled ring misrendered: %v", events)
	}
}

// Metadata (process/thread names) must survive the ring: a dump without
// them would lose its Perfetto track labels.
func TestFlightRecorderKeepsMetadata(t *testing.T) {
	tr := NewFlightRecorder(2)
	tr.NameProcess(0, "nic0")
	for i := 0; i < 50; i++ {
		tr.Span(0, 0, "fw", "op", sim.Time(i), sim.Time(i+1))
	}
	var b bytes.Buffer
	tr.WriteJSON(&b)
	if !strings.Contains(b.String(), `"nic0"`) {
		t.Errorf("process name evicted from flight dump:\n%s", b.String())
	}
}

// TraceEngine samples the scheduler's counters while events remain and
// stops re-arming once the world drains.
func TestTraceEngine(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTracer()
	TraceEngine(eng, tr, sim.Microsecond)
	for i := 0; i < 5; i++ {
		eng.Schedule(sim.Time(i)*sim.Microsecond, func() {})
	}
	eng.Run()
	if tr.Len() < 4 {
		t.Fatalf("engine sampler recorded %d events, want several", tr.Len())
	}
	var b bytes.Buffer
	tr.WriteJSON(&b)
	if !strings.Contains(b.String(), `"name":"pending"`) ||
		!strings.Contains(b.String(), `"name":"executed"`) {
		t.Errorf("sampler counters missing:\n%s", b.String())
	}
	// nil tracer: no events scheduled, engine drains untouched.
	eng2 := sim.NewEngine()
	TraceEngine(eng2, nil, 0)
	if eng2.Pending() != 0 {
		t.Error("nil tracer still scheduled sampler events")
	}
}

// Flow events render as Perfetto 's'/'f' pairs sharing a correlation id,
// with the terminating end carrying the enclosing-slice binding point.
func TestTracerFlowEvents(t *testing.T) {
	tr := NewTracer()
	tr.FlowStart(0, 0, "mpi", "msg", 1*sim.Microsecond, 0xbeef)
	tr.FlowEnd(1, 0, "mpi", "msg", 2*sim.Microsecond, 0xbeef)
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0]["ph"] != "s" || events[1]["ph"] != "f" {
		t.Errorf("phases = %v, %v; want s, f", events[0]["ph"], events[1]["ph"])
	}
	if events[0]["id"] != events[1]["id"] {
		t.Errorf("flow ids differ: %v vs %v", events[0]["id"], events[1]["id"])
	}
	if events[1]["bp"] != "e" {
		t.Error("flow end missing bp=e binding (arrows land mid-span)")
	}
	if _, ok := events[0]["bp"]; ok {
		t.Error("flow start must not carry a binding point")
	}
}

// A flight ring must not record flows: a ring that overwrote one arrow
// end would render dangling flows, and the post-mortem dump consumers
// assert the plain {M, X, i, C} event alphabet.
func TestFlightRecorderSkipsFlows(t *testing.T) {
	tr := NewFlightRecorder(8)
	tr.FlowStart(0, 0, "mpi", "msg", 0, 1)
	tr.FlowEnd(0, 0, "mpi", "msg", 1, 1)
	tr.Instant(0, 0, "c", "e", 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (flows must be skipped in flight mode)", tr.Len())
	}
}
