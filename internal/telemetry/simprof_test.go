package telemetry

import (
	"bytes"
	"compress/gzip"
	"io"
	"reflect"
	"testing"

	"alpusim/internal/sim"
)

// TestSimStacksNesting pins the fold: nested spans become stacks rooted
// at the track's process/thread names, weighted by self time (duration
// minus children).
func TestSimStacksNesting(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(1, "nic0")
	tr.NameThread(1, 2, "firmware")
	// outer [0,100) contains child [10,40) which contains leaf [20,25).
	tr.Span(1, 2, "fw", "outer", 0, 100)
	tr.Span(1, 2, "fw", "child", 10, 40)
	tr.Span(1, 2, "fw", "leaf", 20, 25)
	// A sibling span after outer on the same track.
	tr.Span(1, 2, "fw", "late", 150, 160)

	got := simStacks(tr)
	want := []stackSample{
		{frames: []string{"nic0", "firmware", "late"}, ps: 10},
		{frames: []string{"nic0", "firmware", "outer"}, ps: 70},
		{frames: []string{"nic0", "firmware", "outer", "child"}, ps: 25},
		{frames: []string{"nic0", "firmware", "outer", "child", "leaf"}, ps: 5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stacks:\n got %+v\nwant %+v", got, want)
	}
}

// TestSimStacksMergesRepeats: repeated identical stacks accumulate into
// one sample.
func TestSimStacksMergesRepeats(t *testing.T) {
	tr := NewTracer()
	for i := sim.Time(0); i < 5; i++ {
		tr.Span(3, 0, "c", "work", i*1000, i*1000+10)
	}
	got := simStacks(tr)
	if len(got) != 1 {
		t.Fatalf("stacks = %+v, want one merged", got)
	}
	if got[0].ps != 50 {
		t.Errorf("merged self time = %d, want 50", got[0].ps)
	}
	if want := []string{"pid3", "tid0", "work"}; !reflect.DeepEqual(got[0].frames, want) {
		t.Errorf("frames = %v, want %v (fallback track names)", got[0].frames, want)
	}
}

// pprofDoc is the decoded skeleton of a profile.proto message — just
// enough structure to verify what go tool pprof would read.
type pprofDoc struct {
	strings   []string
	samples   [][]uint64 // location ids, leaf first
	values    []int64
	functions map[uint64]uint64 // id -> name string index
	locations map[uint64]uint64 // id -> function id (single line)
}

func parseVarint(b []byte) (uint64, []byte) {
	var v uint64
	for i := 0; ; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, b[i+1:]
		}
	}
}

func parseFields(b []byte, fn func(field int, wire int, v uint64, sub []byte)) {
	for len(b) > 0 {
		var key uint64
		key, b = parseVarint(b)
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			var v uint64
			v, b = parseVarint(b)
			fn(field, wire, v, nil)
		case 2:
			var n uint64
			n, b = parseVarint(b)
			fn(field, wire, 0, b[:n])
			b = b[n:]
		default:
			panic("unexpected wire type")
		}
	}
}

func parsePacked(b []byte) []uint64 {
	var out []uint64
	for len(b) > 0 {
		var v uint64
		v, b = parseVarint(b)
		out = append(out, v)
	}
	return out
}

func decodeProfile(t *testing.T, gzipped []byte) pprofDoc {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gzipped))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	doc := pprofDoc{functions: map[uint64]uint64{}, locations: map[uint64]uint64{}}
	parseFields(raw, func(field, wire int, v uint64, sub []byte) {
		switch field {
		case profStringTable:
			doc.strings = append(doc.strings, string(sub))
		case profSample:
			parseFields(sub, func(f, w int, v uint64, sb []byte) {
				switch f {
				case sampleLocationID:
					doc.samples = append(doc.samples, parsePacked(sb))
				case sampleValue:
					vals := parsePacked(sb)
					doc.values = append(doc.values, int64(vals[0]))
				}
			})
		case profFunction:
			var id, name uint64
			parseFields(sub, func(f, w int, v uint64, sb []byte) {
				switch f {
				case funcID:
					id = v
				case funcName:
					name = v
				}
			})
			doc.functions[id] = name
		case profLocation:
			var id, fnID uint64
			parseFields(sub, func(f, w int, v uint64, sb []byte) {
				switch f {
				case locID:
					id = v
				case locLine:
					parseFields(sb, func(lf, lw int, lv uint64, lsb []byte) {
						if lf == lineFunctionID {
							fnID = lv
						}
					})
				}
			})
			doc.locations[id] = fnID
		}
	})
	return doc
}

// TestWriteSimProfileRoundTrip encodes a profile and decodes it with an
// independent minimal parser: stacks come back leaf-first with the
// right names and nanosecond self-time values, and the bytes are
// deterministic across encodes.
func TestWriteSimProfileRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(0, "nic0")
	tr.NameThread(0, 1, "alpu")
	tr.Span(0, 1, "m", "search", 0, 4000) // 4 ns
	tr.Span(0, 1, "m", "hit", 1000, 2000) // 1 ns nested

	var buf bytes.Buffer
	if err := WriteSimProfile(&buf, tr); err != nil {
		t.Fatal(err)
	}
	doc := decodeProfile(t, buf.Bytes())

	if len(doc.strings) == 0 || doc.strings[0] != "" {
		t.Fatalf("string table must start with empty string: %q", doc.strings)
	}
	stackName := func(locIDs []uint64) []string {
		var names []string
		for _, id := range locIDs {
			names = append(names, doc.strings[doc.functions[doc.locations[id]]])
		}
		return names
	}
	if len(doc.samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(doc.samples))
	}
	// Sorted stack order: nic0;alpu;search then nic0;alpu;search;hit —
	// leaf-first in the encoding.
	if got, want := stackName(doc.samples[0]), []string{"search", "alpu", "nic0"}; !reflect.DeepEqual(got, want) {
		t.Errorf("sample 0 stack %v, want %v", got, want)
	}
	if got, want := stackName(doc.samples[1]), []string{"hit", "search", "alpu", "nic0"}; !reflect.DeepEqual(got, want) {
		t.Errorf("sample 1 stack %v, want %v", got, want)
	}
	// search self = 4000 - 1000 = 3000 ps = 3 ns; hit = 1 ns.
	if doc.values[0] != 3 || doc.values[1] != 1 {
		t.Errorf("values = %v, want [3 1]", doc.values)
	}

	var buf2 bytes.Buffer
	if err := WriteSimProfile(&buf2, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("profile bytes not deterministic across encodes")
	}
}

// TestWriteSimProfileEmpty: no spans still yields a decodable profile.
func TestWriteSimProfileEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSimProfile(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decodeProfile(t, buf.Bytes())
	if len(doc.samples) != 0 {
		t.Errorf("empty profile has %d samples", len(doc.samples))
	}
}
