package telemetry

import (
	"reflect"
	"testing"

	"alpusim/internal/sim"
)

// stampChain records a fully completed message with the given boundary
// times (one per stamp, in pipeline order).
func stampChain(c *Causal, key uint64, at ...sim.Time) {
	for s := Stamp(0); s < numStamps; s++ {
		c.Stamp(key, s, at[s])
	}
}

// A convenience pipeline: inject at t0, then fixed 10ps per gap. Total
// chain time = 70ps.
func uniformChain(c *Causal, key uint64, t0 sim.Time) {
	at := make([]sim.Time, numStamps)
	for s := range at {
		at[s] = t0 + sim.Time(s)*10
	}
	stampChain(c, key, at...)
}

func TestCausalIncompleteExcluded(t *testing.T) {
	c := NewCausal()
	uniformChain(c, 1, 100)
	c.Stamp(2, StampWireTx, 500) // never completes
	rep, ok := c.Analyze(3)
	if !ok {
		t.Fatal("Analyze reported no completed messages")
	}
	if rep.Messages != 1 {
		t.Fatalf("Messages = %d, want 1 (incomplete chain must be excluded)", rep.Messages)
	}
	if rep.CriticalPath != 70 {
		t.Fatalf("CriticalPath = %d, want 70", rep.CriticalPath)
	}
}

func TestCausalStampFirstWins(t *testing.T) {
	c := NewCausal()
	uniformChain(c, 1, 100)
	c.Stamp(1, StampMatch, 9999) // must not override
	ch, ok := c.chain(1)
	if !ok {
		t.Fatal("chain(1) incomplete")
	}
	if ch.Total != 70 {
		t.Fatalf("Total = %d after duplicate stamp, want 70", ch.Total)
	}
}

func TestCausalBlameSumsToChainAndPermille(t *testing.T) {
	c := NewCausal()
	// Deliberately lumpy gaps so permille rounding has remainders.
	stampChain(c, 7, 0, 3, 10, 11, 12, 40, 41, 100)
	rep, ok := c.Analyze(0)
	if !ok {
		t.Fatal("no report")
	}
	var durSum sim.Time
	pmSum := 0
	for _, b := range rep.Blame {
		durSum += b.Dur
		pmSum += b.Permille
	}
	if durSum != rep.CriticalPath {
		t.Errorf("blame durations sum to %d, critical path is %d", durSum, rep.CriticalPath)
	}
	if pmSum != 1000 {
		t.Errorf("permille shares sum to %d, want exactly 1000", pmSum)
	}
	if len(rep.Blame) != int(NumResources) {
		t.Errorf("blame rows = %d, want %d (fixed table shape)", len(rep.Blame), NumResources)
	}
}

func TestCausalCauseLinksExtendCriticalPath(t *testing.T) {
	c := NewCausal()
	uniformChain(c, 1, 0)   // [0, 70]
	uniformChain(c, 2, 100) // [100, 170], caused by 1 => host gap 30
	c.Cause(2, 1)
	rep, ok := c.Analyze(0)
	if !ok {
		t.Fatal("no report")
	}
	// 70 (msg 1) + 30 (host gap) + 70 (msg 2)
	if rep.CriticalPath != 170 {
		t.Fatalf("CriticalPath = %d, want 170", rep.CriticalPath)
	}
	if want := []uint64{1, 2}; !reflect.DeepEqual(rep.PathKeys, want) {
		t.Fatalf("PathKeys = %v, want %v (cause-first order)", rep.PathKeys, want)
	}
	// The critical path must be at least the span any single message covers.
	for _, k := range []uint64{1, 2} {
		ch, _ := c.chain(k)
		if rep.CriticalPath < ch.Total {
			t.Errorf("critical path %d shorter than chain %d of msg %d", rep.CriticalPath, ch.Total, k)
		}
	}
}

func TestCausalWhatIfZeroesResource(t *testing.T) {
	c := NewCausal()
	uniformChain(c, 1, 0)
	uniformChain(c, 2, 100)
	c.Cause(2, 1)
	rep, _ := c.Analyze(0)
	byRes := map[string]CausalWhatIf{}
	for _, wi := range rep.WhatIf {
		byRes[wi.Resource] = wi
	}
	// Zeroing host removes the 30ps inter-message gap AND each chain's own
	// 10ps host edge: 170 - 30 - 20 = 120.
	if got := byRes["host"].Predicted; got != 120 {
		t.Errorf("what-if host predicted %d, want 120", got)
	}
	// Zeroing search removes one 10ps edge per message.
	if got := byRes["search"].Predicted; got != 150 {
		t.Errorf("what-if search predicted %d, want 150", got)
	}
	if s := byRes["search"].Speedup; s <= 1.0 {
		t.Errorf("search speedup %v, want > 1", s)
	}
	// Resync was never annotated: zeroing it changes nothing.
	if got := byRes["resync"].Predicted; got != rep.CriticalPath {
		t.Errorf("what-if resync predicted %d, want unchanged %d", got, rep.CriticalPath)
	}
}

func TestCausalAnnotationSplitsSearchGap(t *testing.T) {
	c := NewCausal()
	// Search gap (FwPop -> Match) is 30ps.
	stampChain(c, 3, 0, 10, 20, 30, 40, 70, 80, 90)
	c.Annotate(3, ResResync, 12)
	ch, ok := c.chain(3)
	if !ok {
		t.Fatal("chain incomplete")
	}
	var search, resync sim.Time
	for _, e := range ch.Edges {
		switch e.Resource {
		case "search":
			search = e.Dur
		case "resync":
			resync = e.Dur
		}
	}
	if search != 18 || resync != 12 {
		t.Fatalf("search=%d resync=%d, want 18/12 (annotation carves the gap)", search, resync)
	}
}

func TestCausalAnnotationClampedToGap(t *testing.T) {
	c := NewCausal()
	stampChain(c, 3, 0, 10, 20, 30, 40, 70, 80, 90)
	c.Annotate(3, ResResync, 500) // over-approximation must not break telescoping
	ch, _ := c.chain(3)
	var sum sim.Time
	for _, e := range ch.Edges {
		sum += e.Dur
	}
	if sum != ch.Total {
		t.Fatalf("edges sum to %d, total is %d (clamp failed)", sum, ch.Total)
	}
}

// Absorb must be canonical: the same records split across shards in any
// order produce an identical report.
func TestCausalAbsorbOrderInvariant(t *testing.T) {
	build := func(order []int) CausalReport {
		shards := make([]*Causal, 3)
		for i := range shards {
			shards[i] = NewCausal()
		}
		// Message 1's stamps recorded on shard 0, message 2's split between
		// shards 1 and 2; cause link on shard 0; annotation summed across
		// shards 1 and 2.
		uniformChain(shards[0], 1, 0)
		at := make([]sim.Time, numStamps)
		for s := range at {
			at[s] = 100 + sim.Time(s)*10
		}
		for s := Stamp(0); s < numStamps; s++ {
			shards[1+int(s)%2].Stamp(2, s, at[s])
		}
		shards[0].Cause(2, 1)
		shards[1].Annotate(2, ResResync, 3)
		shards[2].Annotate(2, ResResync, 4)

		merged := NewCausal()
		for _, i := range order {
			merged.Absorb(shards[i])
		}
		rep, ok := merged.Analyze(5)
		if !ok {
			t.Fatalf("merge order %v: no report", order)
		}
		return rep
	}
	ref := build([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 2, 0}, {2, 0, 1}} {
		if got := build(order); !reflect.DeepEqual(got, ref) {
			t.Errorf("report differs for absorb order %v:\n got %+v\nwant %+v", order, got, ref)
		}
	}
}

func TestCausalTop1(t *testing.T) {
	c := NewCausal()
	uniformChain(c, 1, 0)
	stampChain(c, 2, 200, 210, 220, 230, 240, 500, 510, 520) // slowest: 320ps
	ch, ok := c.Top1()
	if !ok {
		t.Fatal("Top1 found nothing")
	}
	if ch.Key != 2 || ch.Total != 320 {
		t.Fatalf("Top1 = key %d total %d, want key 2 total 320", ch.Key, ch.Total)
	}
}

func TestCausalNilSafe(t *testing.T) {
	var c *Causal
	c.Stamp(1, StampInject, 1)
	c.Cause(1, 2)
	c.Annotate(1, ResResync, 3)
	c.Absorb(NewCausal())
	if _, ok := c.Analyze(1); ok {
		t.Error("nil recorder produced a report")
	}
	if _, ok := c.Top1(); ok {
		t.Error("nil recorder produced a Top1 chain")
	}
}

func TestCausalSelfCauseIgnored(t *testing.T) {
	c := NewCausal()
	uniformChain(c, 1, 0)
	c.Cause(1, 1)
	rep, _ := c.Analyze(0)
	if rep.CriticalPath != 70 {
		t.Fatalf("self-cause changed the critical path: %d", rep.CriticalPath)
	}
}
