package telemetry

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"alpusim/internal/sim"
)

// The downsampling property: a decimated series must equal the
// decimation of the full push sequence — sample j holds push j*every —
// at any capacity and any run length, with the stride exactly as small
// as the capacity allows.
func TestSeriesDecimationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, capacity := range []int{8, 16, 64, 256} {
		for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000, 4097, 20000} {
			s := &Series{name: "x", cap: capacity, every: 1}
			full := make([]int64, n)
			for i := range full {
				full[i] = int64(rng.Intn(1000))
				s.Push(full[i])
			}
			every := s.Every()
			if every&(every-1) != 0 {
				t.Fatalf("cap=%d n=%d: stride %d is not a power of two", capacity, n, every)
			}
			vals := s.Samples()
			if len(vals) > capacity {
				t.Fatalf("cap=%d n=%d: retained %d > capacity", capacity, n, len(vals))
			}
			wantLen := 0
			if n > 0 {
				wantLen = (n-1)/int(every) + 1
			}
			if len(vals) != wantLen {
				t.Fatalf("cap=%d n=%d every=%d: retained %d, want %d", capacity, n, every, len(vals), wantLen)
			}
			for j, v := range vals {
				if want := full[uint64(j)*every]; v != want {
					t.Fatalf("cap=%d n=%d every=%d: sample %d = %d, want full[%d] = %d",
						capacity, n, every, j, v, uint64(j)*every, want)
				}
			}
			// Minimality: halving the stride would overflow the capacity.
			if every > 1 && (n-1)/(int(every)/2)+1 <= capacity {
				t.Fatalf("cap=%d n=%d: stride %d not minimal", capacity, n, every)
			}
		}
	}
}

// Decimation is prefix-consistent: two series fed the same stream, one
// stopping early, agree on every sample they both retain once strides
// are accounted for — the property that makes waterlines comparable
// across runs of different lengths.
func TestSeriesPrefixConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	full := make([]int64, 5000)
	for i := range full {
		full[i] = int64(rng.Intn(100))
	}
	long := &Series{name: "x", cap: 32, every: 1}
	short := &Series{name: "x", cap: 32, every: 1}
	for i, v := range full {
		long.Push(v)
		if i < 1200 {
			short.Push(v)
		}
	}
	ratio := long.Every() / short.Every()
	if ratio == 0 {
		t.Fatalf("long stride %d < short stride %d", long.Every(), short.Every())
	}
	for j, v := range long.Samples() {
		k := uint64(j) * ratio
		if k >= uint64(len(short.Samples())) {
			break
		}
		if short.Samples()[k] != v {
			t.Fatalf("sample mismatch at long[%d]/short[%d]: %d != %d", j, k, v, short.Samples()[k])
		}
	}
}

// A sampler attached to an engine ticks at exact interval multiples,
// pads to the canonical count at Finalize, and renders deterministic
// JSON.
func TestSamplerAttachFinalize(t *testing.T) {
	eng := sim.NewEngine()
	depth := 0
	sa := NewSampler(10, 8)
	sa.Probe("q/depth", func() int64 { return int64(depth) })
	sa.Attach(eng)
	eng.At(5, func() { depth = 3 })
	eng.At(25, func() { depth = 7 })
	eng.Run()
	// Model events at 5 and 25: ticks at 10 (depth 3), 20 (3), 30 (7);
	// at 30 Alive == 0, chain ends. Canonical count for tEnd=25 is
	// floor(25/10)+1 = 3 — already reached, Finalize pads nothing.
	sa.Finalize(eng.LastModel())
	all := sa.All()
	if len(all) != 1 || all[0].Name() != "q/depth" {
		t.Fatalf("series = %v", all)
	}
	got := all[0].Samples()
	want := []int64{3, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("samples %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("samples %v, want %v", got, want)
		}
	}

	// A shard that stopped early pads with probe reads up to the same
	// canonical count.
	shard := sa.Shard()
	frozen := int64(42)
	shard.Probe("other/depth", func() int64 { return frozen })
	shard.series["other/depth"].Push(42) // one natural tick
	shard.Finalize(25)
	if n := shard.series["other/depth"].Pushes(); n != 3 {
		t.Fatalf("padded pushes = %d, want 3", n)
	}

	var buf bytes.Buffer
	if err := sa.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"interval_ps": 10`, `"name": "q/depth"`, `"samples"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := sa.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("WriteJSON not deterministic across calls")
	}
}

// Publish surfaces each series' last and peak values as gauges under
// ts/..., the families the Prometheus endpoint renders.
func TestSamplerPublish(t *testing.T) {
	sa := NewSampler(10, 8)
	sa.Probe("nic0/posted/depth", func() int64 { return 0 })
	s := sa.series["nic0/posted/depth"]
	for _, v := range []int64{1, 9, 4} {
		s.Push(v)
	}
	reg := NewRegistry()
	sa.Publish(reg)
	snap := reg.Snapshot()
	if got := snap.Gauges["ts/nic0/posted/depth/last"]; got != 4 {
		t.Errorf("last gauge = %d, want 4", got)
	}
	if got := snap.Gauges["ts/nic0/posted/depth/peak"]; got != 9 {
		t.Errorf("peak gauge = %d, want 9", got)
	}
}

// Nil samplers and series are inert, like every other recorder here.
func TestSamplerNilSafe(t *testing.T) {
	var sa *Sampler
	sa.Probe("x", func() int64 { return 1 })
	sa.Finalize(100)
	sa.Absorb(nil)
	sa.Publish(nil)
	if sa.All() != nil {
		t.Error("nil sampler has series")
	}
	var buf bytes.Buffer
	if err := sa.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"series": []`) {
		t.Errorf("nil sampler JSON: %s", buf.String())
	}
}
