package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"alpusim/internal/sim"
)

// The causal recorder generalises the phase breakdown from "where did the
// mean message spend its time" to "which resource gated the run". Every
// tracked message contributes a chain of typed edges (cause event ->
// effect event, resource, sim-duration) built from the same first-wins
// pipeline stamps as Phases, refined by two extra records only the causal
// analysis needs:
//
//   - a cause link: message B was posted because message A completed
//     (the host-side program order, recorded by the workload, which knows
//     its own dependency structure). Cause links join per-message chains
//     into a run-spanning DAG;
//   - resource annotations: a sub-interval of a stamp gap re-attributed
//     to a finer resource. The firmware uses this to split the search gap
//     into genuine queue search versus device-fault resync/failover time
//     (a software fallback walk under needResync is recovery cost, not
//     search cost).
//
// On the DAG the analysis computes the critical path (longest sim-time
// path from the first inject to the last completion), per-resource blame
// for it (fractions summing to exactly 100.0%), the top-K slowest
// messages with their full chains, and a what-if table: the critical
// path re-walked with one resource's edges zeroed — "how fast would the
// run be if ALPU search were free" — which is the paper's Fig. 5
// argument derived from first principles on every run.
//
// Like every recorder, Causal is sharded per partition and canonically
// merged: stamps are first-wins per (key, stamp) and recorded by exactly
// one side, cause links are first-wins per key and recorded by the
// single workload goroutine that knows the dependency, annotations are
// commutative sums. Analysis iterates keys in sorted order, so every
// report byte is identical at any -par / -jobs.

// Resource classifies a causal edge by the pipeline resource that
// consumed its duration.
type Resource int

// Resources, in pipeline order. The first seven mirror the Phases
// breakdown; ResResync is carved out of the search gap by firmware
// annotations when the time was really spent in device-fault recovery
// (resync windows, widened fallback walks, failover shadow searches).
const (
	ResInject Resource = iota
	ResWire
	ResRecovery
	ResRxFIFO
	ResSearch
	ResResync
	ResDeliver
	ResHost
	NumResources
)

var resourceNames = [NumResources]string{
	"inject", "wire", "recovery", "rxfifo", "search", "resync", "deliver", "host",
}

// String returns the resource's short report name.
func (r Resource) String() string {
	if r < 0 || r >= NumResources {
		return "?"
	}
	return resourceNames[r]
}

type causalRec struct {
	t         [numStamps]sim.Time
	seen      uint16
	parent    uint64
	hasParent bool
	ann       [NumResources]sim.Time
}

// Causal records the per-message causal context for one simulated world.
// Messages are keyed by their packed match bits (mpi.MsgKey); a nil
// *Causal is a valid no-op recorder.
type Causal struct {
	recs map[uint64]*causalRec
	keys []uint64 // first-record order; analysis sorts, so order is cosmetic
}

// NewCausal returns an empty recorder.
func NewCausal() *Causal { return &Causal{recs: make(map[uint64]*causalRec)} }

func (c *Causal) rec(key uint64) *causalRec {
	r := c.recs[key]
	if r == nil {
		r = &causalRec{}
		c.recs[key] = r
		c.keys = append(c.keys, key)
	}
	return r
}

// Stamp records the simulated time of a pipeline boundary for a message,
// with the same first-wins semantics as Phases.Stamp.
func (c *Causal) Stamp(key uint64, s Stamp, at sim.Time) {
	if c == nil || s < 0 || s >= numStamps {
		return
	}
	r := c.rec(key)
	if r.seen&(1<<uint(s)) != 0 {
		return
	}
	r.seen |= 1 << uint(s)
	r.t[s] = at
}

// Cause records that key was posted as a consequence of parent's
// completion (host program order). First-wins; self-causes are ignored.
func (c *Causal) Cause(key, parent uint64) {
	if c == nil || key == parent {
		return
	}
	r := c.rec(key)
	if r.hasParent {
		return
	}
	r.parent = parent
	r.hasParent = true
}

// Annotate re-attributes d of key's stamp-gap time to resource res.
// Additive and commutative, so shard merge order cannot change it. The
// analysis clips the total against the gap the resource is carved from
// (today: ResResync against the search gap).
func (c *Causal) Annotate(key uint64, res Resource, d sim.Time) {
	if c == nil || res < 0 || res >= NumResources || d <= 0 {
		return
	}
	c.rec(key).ann[res] += d
}

// Absorb folds the records of shards into c, in shard order. Stamps keep
// first-wins semantics (any one (key, stamp) is recorded by one side),
// cause links keep first-wins, annotations sum.
func (c *Causal) Absorb(shards ...*Causal) {
	if c == nil {
		return
	}
	for _, s := range shards {
		if s == nil {
			continue
		}
		for _, key := range s.keys {
			sr := s.recs[key]
			for st := Stamp(0); st < numStamps; st++ {
				if sr.seen&(1<<uint(st)) != 0 {
					c.Stamp(key, st, sr.t[st])
				}
			}
			if sr.hasParent {
				c.Cause(key, sr.parent)
			}
			for res := Resource(0); res < NumResources; res++ {
				c.Annotate(key, res, sr.ann[res])
			}
		}
	}
}

// CausalEdge is one typed edge of a message chain.
type CausalEdge struct {
	Resource string   `json:"resource"`
	Dur      sim.Time `json:"ps"`
}

// CausalChain is one message's complete causal chain: its typed edges in
// pipeline order, plus the cause link to its parent when recorded.
type CausalChain struct {
	Key       uint64       `json:"key"`
	Start     sim.Time     `json:"start_ps"`
	End       sim.Time     `json:"end_ps"`
	Total     sim.Time     `json:"total_ps"`
	Parent    uint64       `json:"parent,omitempty"`
	HasParent bool         `json:"has_parent"`
	Edges     []CausalEdge `json:"edges"`
}

// String renders the chain compactly for diagnostic dumps.
func (ch CausalChain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "msg %#x total=%v [%v..%v]", ch.Key, ch.Total, ch.Start, ch.End)
	if ch.HasParent {
		fmt.Fprintf(&b, " cause=%#x", ch.Parent)
	}
	for _, e := range ch.Edges {
		if e.Dur > 0 {
			fmt.Fprintf(&b, " %s=%v", e.Resource, e.Dur)
		}
	}
	return b.String()
}

// CausalBlame is one row of the critical-path blame table. Permille is
// the share of the critical path in tenths of a percent; the rows of a
// report sum to exactly 1000 (largest-remainder apportionment).
type CausalBlame struct {
	Resource string   `json:"resource"`
	Dur      sim.Time `json:"ps"`
	Permille int      `json:"permille"`
}

// CausalWhatIf is one row of the what-if table: the predicted critical
// path with one resource's edges zeroed, and the implied speedup.
type CausalWhatIf struct {
	Resource  string   `json:"resource"`
	Predicted sim.Time `json:"predicted_ps"`
	Speedup   float64  `json:"speedup"`
}

// CausalReport is the full analysis of one world's causal graph.
type CausalReport struct {
	Messages     int            `json:"messages"`
	FirstStart   sim.Time       `json:"first_start_ps"`
	LastDone     sim.Time       `json:"last_done_ps"`
	CriticalPath sim.Time       `json:"critical_path_ps"`
	PathKeys     []uint64       `json:"path_keys"`
	Blame        []CausalBlame  `json:"blame"`
	WhatIf       []CausalWhatIf `json:"what_if"`
	TopK         []CausalChain  `json:"top_k"`
}

// chain builds the decomposed edge list for a completed key, splitting
// the search gap into search + resync per the recorded annotation.
func (c *Causal) chain(key uint64) (CausalChain, bool) {
	r := c.recs[key]
	if r == nil || r.seen&needMask != needMask {
		return CausalChain{}, false
	}
	ch := CausalChain{Key: key, Parent: r.parent, HasParent: r.hasParent}
	start := r.t[StampInject]
	if r.seen&(1<<uint(StampInject)) == 0 {
		start = r.t[StampWireTx]
	}
	ch.Start = start
	ch.End = r.t[StampHostDone]
	ch.Total = ch.End - ch.Start
	phaseRes := [NumPhases]Resource{
		ResInject, ResWire, ResRecovery, ResRxFIFO, ResSearch, ResDeliver, ResHost,
	}
	prev := start
	for s := StampWireTx; s < numStamps; s++ {
		d := r.t[s] - prev
		if d < 0 {
			d = 0
		}
		prev = r.t[s]
		res := phaseRes[Phase(s-1)]
		if res == ResSearch {
			resync := r.ann[ResResync]
			if resync > d {
				resync = d
			}
			ch.Edges = append(ch.Edges,
				CausalEdge{Resource: ResSearch.String(), Dur: d - resync},
				CausalEdge{Resource: ResResync.String(), Dur: resync})
			continue
		}
		ch.Edges = append(ch.Edges, CausalEdge{Resource: res.String(), Dur: d})
	}
	return ch, true
}

// sortedComplete returns the completed keys in ascending order — the
// canonical iteration order for every analysis, independent of shard
// merge order.
func (c *Causal) sortedComplete() []uint64 {
	keys := make([]uint64, 0, len(c.keys))
	for _, k := range c.keys {
		if r := c.recs[k]; r != nil && r.seen&needMask == needMask {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// chainLen sums a chain's edge durations, skipping the zeroed resource
// (zero < 0 keeps everything).
func chainLen(ch CausalChain, zero Resource) sim.Time {
	var total sim.Time
	zname := ""
	if zero >= 0 && zero < NumResources {
		zname = zero.String()
	}
	for _, e := range ch.Edges {
		if e.Resource == zname {
			continue
		}
		total += e.Dur
	}
	return total
}

// longestPath runs the critical-path DP over the cause DAG with the
// given resource zeroed (zero < 0 = the real critical path). dist(K) is
// the longest path ending at K's completion: K's own chain, plus — when
// K's cause parent completed — the parent's dist and the host gap
// between the parent's completion and K's chain start. Cause links
// always point backward in sim time, but a defensive cycle guard breaks
// any malformed link rather than recursing forever.
func (c *Causal) longestPath(keys []uint64, chains map[uint64]CausalChain, zero Resource) (best sim.Time, bestKey uint64, dist map[uint64]sim.Time) {
	dist = make(map[uint64]sim.Time, len(keys))
	state := make(map[uint64]int, len(keys)) // 0 unvisited, 1 in progress, 2 done
	var visit func(k uint64) sim.Time
	visit = func(k uint64) sim.Time {
		if state[k] == 2 {
			return dist[k]
		}
		ch := chains[k]
		d := chainLen(ch, zero)
		if state[k] != 1 {
			state[k] = 1
			if ch.HasParent {
				if pch, ok := chains[ch.Parent]; ok {
					gap := ch.Start - pch.End
					if gap < 0 {
						gap = 0
					}
					if zero == ResHost {
						gap = 0
					}
					d += visit(ch.Parent) + gap
				}
			}
		}
		state[k] = 2
		dist[k] = d
		return d
	}
	first := true
	for _, k := range keys {
		d := visit(k)
		if first || d > best {
			best, bestKey, first = d, k, false
		}
	}
	return best, bestKey, dist
}

// Analyze computes the full causal report: critical path, blame, what-if
// table, and the topK slowest message chains. Returns ok=false when no
// message completed the pipeline.
func (c *Causal) Analyze(topK int) (CausalReport, bool) {
	if c == nil {
		return CausalReport{}, false
	}
	keys := c.sortedComplete()
	if len(keys) == 0 {
		return CausalReport{}, false
	}
	chains := make(map[uint64]CausalChain, len(keys))
	for _, k := range keys {
		ch, _ := c.chain(k)
		chains[k] = ch
	}
	rep := CausalReport{Messages: len(keys)}
	rep.FirstStart = chains[keys[0]].Start
	rep.LastDone = chains[keys[0]].End
	for _, k := range keys {
		if ch := chains[k]; ch.Start < rep.FirstStart {
			rep.FirstStart = ch.Start
		}
		if ch := chains[k]; ch.End > rep.LastDone {
			rep.LastDone = ch.End
		}
	}

	cp, endKey, _ := c.longestPath(keys, chains, Resource(-1))
	rep.CriticalPath = cp

	// Reconstruct the path back from the winning completion, then blame
	// each resource for its share of it.
	var durs [NumResources]sim.Time
	guard := make(map[uint64]bool, len(keys))
	for k := endKey; !guard[k]; {
		guard[k] = true
		ch := chains[k]
		rep.PathKeys = append(rep.PathKeys, k)
		for _, e := range ch.Edges {
			for res := Resource(0); res < NumResources; res++ {
				if e.Resource == res.String() {
					durs[res] += e.Dur
				}
			}
		}
		if !ch.HasParent {
			break
		}
		pch, ok := chains[ch.Parent]
		if !ok {
			break
		}
		if gap := ch.Start - pch.End; gap > 0 {
			durs[ResHost] += gap
		}
		k = ch.Parent
	}
	// Path was built completion-first; present it cause-first.
	for i, j := 0, len(rep.PathKeys)-1; i < j; i, j = i+1, j-1 {
		rep.PathKeys[i], rep.PathKeys[j] = rep.PathKeys[j], rep.PathKeys[i]
	}
	rep.Blame = apportion(durs, cp)

	for res := Resource(0); res < NumResources; res++ {
		pred, _, _ := c.longestPath(keys, chains, res)
		speedup := 1.0
		if pred > 0 {
			speedup = float64(cp) / float64(pred)
		} else if cp > 0 {
			speedup = float64(cp) // everything zeroed away; render as huge
		}
		rep.WhatIf = append(rep.WhatIf, CausalWhatIf{
			Resource: res.String(), Predicted: pred, Speedup: speedup,
		})
	}

	if topK > 0 {
		order := make([]uint64, len(keys))
		copy(order, keys)
		sort.Slice(order, func(i, j int) bool {
			a, b := chains[order[i]], chains[order[j]]
			if a.Total != b.Total {
				return a.Total > b.Total
			}
			return order[i] < order[j]
		})
		if len(order) > topK {
			order = order[:topK]
		}
		for _, k := range order {
			rep.TopK = append(rep.TopK, chains[k])
		}
	}
	return rep, true
}

// Top1 returns the slowest completed message's chain — the watchdog
// stall dump shows it so a hung run names its worst causal chain.
func (c *Causal) Top1() (CausalChain, bool) {
	if c == nil {
		return CausalChain{}, false
	}
	rep, ok := c.Analyze(1)
	if !ok || len(rep.TopK) == 0 {
		return CausalChain{}, false
	}
	return rep.TopK[0], true
}

// apportion converts per-resource durations into permille shares of
// total that sum to exactly 1000, by largest remainder (ties broken by
// resource order). Resources with zero duration still get a row, so the
// blame table shape is fixed.
func apportion(durs [NumResources]sim.Time, total sim.Time) []CausalBlame {
	out := make([]CausalBlame, NumResources)
	if total <= 0 {
		for res := Resource(0); res < NumResources; res++ {
			out[res] = CausalBlame{Resource: res.String()}
		}
		return out
	}
	rem := make([]int64, NumResources)
	assigned := 0
	for res := Resource(0); res < NumResources; res++ {
		scaled := uint64(durs[res]) * 1000
		pm := int(scaled / uint64(total))
		rem[res] = int64(scaled % uint64(total))
		out[res] = CausalBlame{Resource: res.String(), Dur: durs[res], Permille: pm}
		assigned += pm
	}
	for assigned < 1000 {
		best := -1
		for res := 0; res < int(NumResources); res++ {
			if rem[res] == 0 {
				continue
			}
			if best < 0 || rem[res] > rem[best] {
				best = res
			}
		}
		if best < 0 {
			break
		}
		out[best].Permille++
		rem[best] = 0
		assigned++
	}
	return out
}
