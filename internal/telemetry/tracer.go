package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"alpusim/internal/sim"
)

// Tracer records simulated-clock events in the Chrome trace-event JSON
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Events carry the simulation timestamp, so the rendered timeline is the
// hardware's view of time, not wall clock.
//
// A nil *Tracer is a valid no-op recorder: every method returns
// immediately, so instrumentation sites cost one nil check when tracing
// is off. Events append in call order, which for a deterministic
// simulation means the byte stream is identical across runs.
type Tracer struct {
	events []tevent
	names  []tname

	// Flight-recorder mode (NewFlightRecorder): limit bounds events to a
	// ring of the most recent limit entries; start indexes the oldest
	// retained event once the ring has wrapped; dropped counts overwritten
	// events. limit == 0 is the ordinary unbounded tracer.
	limit   int
	start   int
	dropped uint64
}

type tevent struct {
	ph       byte // 'X' span, 'i' instant, 'C' counter, 's'/'f' flow
	name     string
	cat      string
	pid, tid int
	ts, dur  sim.Time
	val      int64
	id       uint64 // flow correlation id ('s'/'f' only)
}

type tname struct {
	process  bool // process_name vs thread_name metadata
	pid, tid int
	name     string
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// DefaultFlightEvents is the flight-recorder ring size used when a world
// arms a watchdog without choosing one: deep enough to hold the last few
// firmware round-trips of every NIC in a stalled world, small enough that
// a full ring is a few hundred kilobytes.
const DefaultFlightEvents = 4096

// NewFlightRecorder returns a tracer that keeps only the most recent n
// events in a preallocated ring — the always-on post-mortem recorder. It
// accepts the same Span/Instant/Count calls as a full tracer at the cost
// of one bounds check (no allocation once the ring is full), so worlds
// can record continuously even when full tracing is off. n <= 0 selects
// DefaultFlightEvents.
func NewFlightRecorder(n int) *Tracer {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &Tracer{limit: n, events: make([]tevent, 0, n)}
}

// Dropped returns the number of events overwritten by the flight ring (0
// for a nil or unbounded tracer).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// add appends an event, overwriting the oldest one when the tracer is a
// full flight ring.
func (t *Tracer) add(e tevent) {
	if t.limit > 0 && len(t.events) == t.limit {
		t.events[t.start] = e
		t.start++
		if t.start == t.limit {
			t.start = 0
		}
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// eventAt returns the i-th retained event in chronological (record)
// order, accounting for ring wraparound.
func (t *Tracer) eventAt(i int) tevent {
	if t.start > 0 {
		i += t.start
		if i >= len(t.events) {
			i -= len(t.events)
		}
	}
	return t.events[i]
}

// NameProcess attaches a display name to a pid track (e.g. "nic0").
func (t *Tracer) NameProcess(pid int, name string) {
	if t != nil {
		t.names = append(t.names, tname{process: true, pid: pid, name: name})
	}
}

// NameThread attaches a display name to a (pid, tid) track
// (e.g. "firmware", "posted-alpu").
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t != nil {
		t.names = append(t.names, tname{pid: pid, tid: tid, name: name})
	}
}

// Span records a complete event from start to end simulated time.
func (t *Tracer) Span(pid, tid int, cat, name string, start, end sim.Time) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.add(tevent{ph: 'X', name: name, cat: cat,
		pid: pid, tid: tid, ts: start, dur: end - start})
}

// Instant records a point event (rendered as a marker).
func (t *Tracer) Instant(pid, tid int, cat, name string, at sim.Time) {
	if t == nil {
		return
	}
	t.add(tevent{ph: 'i', name: name, cat: cat,
		pid: pid, tid: tid, ts: at})
}

// Count records a counter sample (rendered as a stepped graph).
func (t *Tracer) Count(pid, tid int, name string, at sim.Time, v int64) {
	if t == nil {
		return
	}
	t.add(tevent{ph: 'C', name: name,
		pid: pid, tid: tid, ts: at, val: v})
}

// FlowStart opens a flow arrow at (pid, tid, at): Perfetto draws an
// arrow from here to the FlowEnd recorded with the same id, linking
// cross-rank spans (a sender NIC's transmit to the receiver firmware's
// pop) into one causal thread through the timeline. Flows are skipped in
// flight-recorder mode: a ring that overwrote one end of an arrow would
// render dangling flows, and the post-mortem dump consumers assert the
// plain event alphabet.
func (t *Tracer) FlowStart(pid, tid int, cat, name string, at sim.Time, id uint64) {
	if t == nil || t.limit > 0 {
		return
	}
	t.add(tevent{ph: 's', name: name, cat: cat, pid: pid, tid: tid, ts: at, id: id})
}

// FlowEnd terminates the flow arrow opened by FlowStart with the same id.
func (t *Tracer) FlowEnd(pid, tid int, cat, name string, at sim.Time, id uint64) {
	if t == nil || t.limit > 0 {
		return
	}
	t.add(tevent{ph: 'f', name: name, cat: cat, pid: pid, tid: tid, ts: at, id: id})
}

// Absorb folds the events of shards into t in canonical timeline order:
// a stable sort by (timestamp, pid, tid). A partitioned world records
// each partition into its own shard; because every (pid, tid) track is
// written by exactly one partition, the stable sort preserves per-track
// record order while interleaving tracks identically however the world
// was partitioned — the merged byte stream is a pure function of the
// simulation, not of -par N. Track names concatenate in shard order,
// which is partition order (itself rank order, fixed at construction).
// Absorbing into a flight ring keeps only the most recent events, as a
// single ring of the same size would.
func (t *Tracer) Absorb(shards ...*Tracer) {
	if t == nil {
		return
	}
	var all []tevent
	for _, sh := range shards {
		if sh == nil {
			continue
		}
		t.names = append(t.names, sh.names...)
		t.dropped += sh.dropped
		for i := 0; i < len(sh.events); i++ {
			all = append(all, sh.eventAt(i))
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		return a.tid < b.tid
	})
	for _, e := range all {
		t.add(e)
	}
}

// Len returns the number of recorded events (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// WriteJSON writes this tracer's events as a Chrome trace-event JSON
// array.
func (t *Tracer) WriteJSON(w io.Writer) error { return WriteTrace(w, t) }

// WriteTrace writes one JSON trace combining several tracers (one per
// simulated world). Each tracer's pids are offset by its index so
// independent worlds render as separate process groups; tracers merge in
// argument order, so sweeps that collect per-world tracers in
// enumeration order emit identical bytes at any parallelism.
func WriteTrace(w io.Writer, tracers ...*Tracer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
			first = false
		}
		bw.WriteString(s)
	}
	for idx, t := range tracers {
		if t == nil {
			continue
		}
		// Offset keeps distinct worlds' pids disjoint; a single tracer
		// (idx 0) keeps its pids as recorded.
		off := idx << 16
		for _, n := range t.names {
			kind := "thread_name"
			tidField := fmt.Sprintf(`,"tid":%d`, n.tid)
			if n.process {
				kind = "process_name"
				tidField = ""
			}
			emit(fmt.Sprintf(`{"name":%q,"ph":"M","pid":%d%s,"args":{"name":%s}}`,
				kind, n.pid+off, tidField, strconv.Quote(n.name)))
		}
		for i := 0; i < len(t.events); i++ {
			e := t.eventAt(i)
			switch e.ph {
			case 'X':
				emit(fmt.Sprintf(`{"name":%s,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d}`,
					strconv.Quote(e.name), e.cat, usec(e.ts), usec(e.dur), e.pid+off, e.tid))
			case 'i':
				emit(fmt.Sprintf(`{"name":%s,"cat":%q,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d}`,
					strconv.Quote(e.name), e.cat, usec(e.ts), e.pid+off, e.tid))
			case 'C':
				emit(fmt.Sprintf(`{"name":%s,"ph":"C","ts":%s,"pid":%d,"tid":%d,"args":{"v":%d}}`,
					strconv.Quote(e.name), usec(e.ts), e.pid+off, e.tid, e.val))
			case 's':
				emit(fmt.Sprintf(`{"name":%s,"cat":%q,"ph":"s","id":%d,"ts":%s,"pid":%d,"tid":%d}`,
					strconv.Quote(e.name), e.cat, e.id, usec(e.ts), e.pid+off, e.tid))
			case 'f':
				// bp:"e" binds the arrow to the enclosing span's end, the
				// Perfetto convention for flows landing mid-span.
				emit(fmt.Sprintf(`{"name":%s,"cat":%q,"ph":"f","bp":"e","id":%d,"ts":%s,"pid":%d,"tid":%d}`,
					strconv.Quote(e.name), e.cat, e.id, usec(e.ts), e.pid+off, e.tid))
			}
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// usec renders a picosecond simulated time as the trace format's
// microsecond timestamp, exactly (6 decimal digits, no float rounding).
func usec(t sim.Time) string {
	if t < 0 {
		t = 0
	}
	return fmt.Sprintf("%d.%06d", t/sim.Microsecond, t%sim.Microsecond)
}

// TraceEngine samples the engine's pending-event and executed-event
// counters onto tracer counter tracks every `every` of simulated time,
// under a reserved pid. Sampling re-arms only while events remain, so it
// never keeps a drained world alive. It costs nothing when t is nil.
func TraceEngine(eng *sim.Engine, t *Tracer, every sim.Time) {
	if t == nil || eng == nil {
		return
	}
	if every <= 0 {
		every = sim.Microsecond
	}
	const pid = 999
	t.NameProcess(pid, "sim-engine")
	var sample func()
	sample = func() {
		t.Count(pid, 0, "pending", eng.Now(), int64(eng.Pending()))
		t.Count(pid, 0, "executed", eng.Now(), int64(eng.Executed()))
		if eng.Alive() > 0 {
			eng.SchedulePoll(every, sample)
		}
	}
	eng.SchedulePoll(0, sample)
}
