package telemetry

import (
	"testing"

	"alpusim/internal/sim"
)

// stampAll records a monotone pipeline for one message, 100 ns apart.
func stampAll(p *Phases, key uint64, base sim.Time) {
	for s := StampInject; s < numStamps; s++ {
		p.Stamp(key, s, base+sim.Time(s)*100*sim.Nanosecond)
	}
}

func TestBreakdownTelescopes(t *testing.T) {
	p := NewPhases()
	stampAll(p, 1, 5*sim.Microsecond)
	b, ok := p.Breakdown(1)
	if !ok {
		t.Fatal("complete message has no breakdown")
	}
	var sum sim.Time
	for _, d := range b.Durs {
		sum += d
	}
	if sum != b.Total {
		t.Errorf("phases do not telescope: sum %v != total %v", sum, b.Total)
	}
	if want := sim.Time(numStamps-1) * 100 * sim.Nanosecond; b.Total != want {
		t.Errorf("Total = %v, want %v", b.Total, want)
	}
	for ph, d := range b.Durs {
		if d != 100*sim.Nanosecond {
			t.Errorf("phase %v = %v, want 100ns", Phase(ph), d)
		}
	}
}

// Inject is optional (pre-posted receives have no workload stamp): the
// breakdown then starts at WireTx with a zero inject phase.
func TestBreakdownInjectFallback(t *testing.T) {
	p := NewPhases()
	for s := StampWireTx; s < numStamps; s++ {
		p.Stamp(7, s, sim.Time(s)*sim.Microsecond)
	}
	b, ok := p.Breakdown(7)
	if !ok {
		t.Fatal("message without Inject has no breakdown")
	}
	if b.Durs[PhaseInject] != 0 {
		t.Errorf("inject phase = %v, want 0", b.Durs[PhaseInject])
	}
	if want := sim.Time(numStamps-1-StampWireTx) * sim.Microsecond; b.Total != want {
		t.Errorf("Total = %v, want %v", b.Total, want)
	}
}

func TestStampFirstWins(t *testing.T) {
	p := NewPhases()
	stampAll(p, 1, 0)
	// A retransmitted packet re-arrives later; the re-stamp is ignored
	// and the breakdown is unchanged.
	before, _ := p.Breakdown(1)
	p.Stamp(1, StampArrive, sim.Millisecond)
	after, ok := p.Breakdown(1)
	if !ok || after != before {
		t.Errorf("re-stamp changed the breakdown: %+v -> %+v", before, after)
	}
}

func TestBreakdownIncomplete(t *testing.T) {
	p := NewPhases()
	p.Stamp(3, StampWireTx, 0)
	p.Stamp(3, StampArrive, 10)
	if _, ok := p.Breakdown(3); ok {
		t.Error("incomplete pipeline produced a breakdown")
	}
	if _, ok := p.Breakdown(999); ok {
		t.Error("unknown key produced a breakdown")
	}
	if n := p.Totals().Messages; n != 0 {
		t.Errorf("Totals counted %d incomplete messages", n)
	}
}

func TestBreakdownClampsBackwardsStamps(t *testing.T) {
	p := NewPhases()
	stampAll(p, 1, sim.Microsecond)
	// Pathological: Complete stamped before Match (should not happen in a
	// causal pipeline, but must not yield negative phases).
	p.Stamp(2, StampWireTx, 100)
	p.Stamp(2, StampArrive, 200)
	p.Stamp(2, StampDeliver, 300)
	p.Stamp(2, StampFwPop, 400)
	p.Stamp(2, StampMatch, 500)
	p.Stamp(2, StampComplete, 450)
	p.Stamp(2, StampHostDone, 600)
	b, ok := p.Breakdown(2)
	if !ok {
		t.Fatal("no breakdown")
	}
	for ph, d := range b.Durs {
		if d < 0 {
			t.Errorf("phase %v negative: %v", Phase(ph), d)
		}
	}
}

func TestTotalsAndMerge(t *testing.T) {
	p := NewPhases()
	stampAll(p, 1, 0)
	stampAll(p, 2, sim.Microsecond)
	tot := p.Totals()
	if tot.Messages != 2 {
		t.Fatalf("Messages = %d, want 2", tot.Messages)
	}
	if want := 100.0; tot.MeanNs(PhaseSearch) != want {
		t.Errorf("MeanNs(search) = %v, want %v", tot.MeanNs(PhaseSearch), want)
	}
	if want := float64(numStamps-1) * 100; tot.MeanTotalNs() != want {
		t.Errorf("MeanTotalNs = %v, want %v", tot.MeanTotalNs(), want)
	}

	other := NewPhases()
	stampAll(other, 9, 0)
	tot.Merge(other.Totals())
	if tot.Messages != 3 {
		t.Errorf("merged Messages = %d, want 3", tot.Messages)
	}

	var zero Totals
	if zero.MeanNs(PhaseWire) != 0 || zero.MeanTotalNs() != 0 {
		t.Error("zero Totals means not 0")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseSearch.String() != "search" {
		t.Errorf("PhaseSearch = %q", PhaseSearch.String())
	}
	if Phase(-1).String() != "?" || NumPhases.String() != "?" {
		t.Error("out-of-range Phase.String not ?")
	}
}
