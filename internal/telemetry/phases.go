package telemetry

import "alpusim/internal/sim"

// The latency phase breakdown tags a message at injection and stamps it
// at each pipeline boundary as it flows sender-host -> wire -> rx FIFO ->
// firmware -> match engine -> completion -> host. Phases are the deltas
// between consecutive stamps, so by construction they telescope: the
// phase columns sum exactly to the end-to-end latency.
//
// Stamps (in pipeline order):
//
//	Inject   sender host posts the send (optional; workload-level)
//	WireTx   sender NIC puts the first bit on the wire
//	Arrive   packet reaches the receiver endpoint
//	Deliver  packet admitted to the rx FIFO (post-reliability)
//	FwPop    receiver firmware pops the packet
//	Match    match resolved (posted hit or unexpected claim)
//	Complete payload landed, completion raised to the host
//	HostDone host observes the completion (request DoneAt)
//
// Derived phases:
//
//	inject   = WireTx - Inject     send-side host+NIC processing
//	wire     = Arrive - WireTx     serialization + wire latency
//	recovery = Deliver - Arrive    reliability delay (retx, reorder, RNR)
//	rxfifo   = FwPop - Deliver     waiting in the rx FIFO for firmware
//	search   = Match - FwPop       header processing + queue search
//	deliver  = Complete - Match    payload DMA + completion write
//	host     = HostDone - Complete host bus crossing
//
// Stamping is first-wins per (message, stamp): a retransmitted packet
// re-arrives but only its first Arrive counts, and the extra delay shows
// up in the recovery phase — exactly where it belongs.

// Stamp identifies a pipeline boundary.
type Stamp int

// Pipeline boundary stamps, in order.
const (
	StampInject Stamp = iota
	StampWireTx
	StampArrive
	StampDeliver
	StampFwPop
	StampMatch
	StampComplete
	StampHostDone
	numStamps
)

// Phase identifies a delta between consecutive stamps.
type Phase int

// Phases, in pipeline order. Phase p spans stamp p+1 - stamp p.
const (
	PhaseInject Phase = iota
	PhaseWire
	PhaseRecovery
	PhaseRxFIFO
	PhaseSearch
	PhaseDeliver
	PhaseHost
	NumPhases
)

var phaseNames = [NumPhases]string{
	"inject", "wire", "recovery", "rxfifo", "search", "deliver", "host",
}

// String returns the phase's short report name.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "?"
	}
	return phaseNames[p]
}

type phaseRec struct {
	t    [numStamps]sim.Time
	seen uint16
}

// Phases records per-message pipeline stamps for one simulated world.
// Messages are keyed by their packed match bits (mpi.MsgKey); a nil
// *Phases is a valid no-op recorder.
type Phases struct {
	recs map[uint64]*phaseRec
	keys []uint64 // first-stamp order, for deterministic iteration
}

// NewPhases returns an empty recorder.
func NewPhases() *Phases { return &Phases{recs: make(map[uint64]*phaseRec)} }

// Stamp records the simulated time of a pipeline boundary for a message.
// First-wins: re-stamping the same (key, stamp) — a retransmit, a
// duplicate delivery — is ignored.
func (p *Phases) Stamp(key uint64, s Stamp, at sim.Time) {
	if p == nil || s < 0 || s >= numStamps {
		return
	}
	r := p.recs[key]
	if r == nil {
		r = &phaseRec{}
		p.recs[key] = r
		p.keys = append(p.keys, key)
	}
	if r.seen&(1<<uint(s)) != 0 {
		return
	}
	r.seen |= 1 << uint(s)
	r.t[s] = at
}

// Absorb folds the stamps recorded in shards into p, in shard order. A
// partitioned world gives each partition its own recorder (stamping a
// shared map from parallel partitions would race); the stamps for one
// message may split across shards — WireTx on the sender's partition, the
// receive pipeline on the receiver's — and first-wins semantics are
// preserved because any one (message, stamp) pair is only ever recorded
// by one side. Key insertion order after a merge depends on shard order,
// but nothing renders key order: Totals is a commutative fold and
// Breakdown a lookup.
func (p *Phases) Absorb(shards ...*Phases) {
	if p == nil {
		return
	}
	for _, s := range shards {
		if s == nil {
			continue
		}
		for _, key := range s.keys {
			r := s.recs[key]
			for st := Stamp(0); st < numStamps; st++ {
				if r.seen&(1<<uint(st)) != 0 {
					p.Stamp(key, st, r.t[st])
				}
			}
		}
	}
}

// Breakdown is one message's per-phase durations. Durs telescopes:
// sum(Durs) == Total == HostDone - start, where start is Inject when
// stamped and WireTx otherwise (pre-posted receives have no workload
// inject stamp).
type Breakdown struct {
	Durs  [NumPhases]sim.Time
	Total sim.Time
}

// needMask is the stamps a completed message must have: everything from
// WireTx through HostDone. Inject is optional.
const needMask = (1<<uint(numStamps) - 1) &^ (1 << uint(StampInject))

// Breakdown returns the phase breakdown for a message, or ok=false if
// the message never completed the pipeline (e.g. a rendezvous transfer,
// which the recorder does not track end to end).
func (p *Phases) Breakdown(key uint64) (Breakdown, bool) {
	if p == nil {
		return Breakdown{}, false
	}
	r := p.recs[key]
	if r == nil || r.seen&needMask != needMask {
		return Breakdown{}, false
	}
	var b Breakdown
	start := r.t[StampInject]
	if r.seen&(1<<uint(StampInject)) == 0 {
		start = r.t[StampWireTx]
	}
	prev := start
	for s := StampWireTx; s < numStamps; s++ {
		d := r.t[s] - prev
		if d < 0 {
			d = 0
		}
		b.Durs[Phase(s-1)] = d
		prev = r.t[s]
	}
	b.Total = r.t[StampHostDone] - start
	return b, true
}

// Totals aggregates breakdowns across messages (and, via Merge, across
// worlds).
type Totals struct {
	Messages uint64
	Durs     [NumPhases]sim.Time
	Total    sim.Time
}

// Totals sums the breakdowns of every completed message, in first-stamp
// order.
func (p *Phases) Totals() Totals {
	var t Totals
	if p == nil {
		return t
	}
	for _, key := range p.keys {
		b, ok := p.Breakdown(key)
		if !ok {
			continue
		}
		t.add(b)
	}
	return t
}

func (t *Totals) add(b Breakdown) {
	t.Messages++
	for i := range b.Durs {
		t.Durs[i] += b.Durs[i]
	}
	t.Total += b.Total
}

// Merge folds other into t.
func (t *Totals) Merge(other Totals) {
	t.Messages += other.Messages
	for i := range other.Durs {
		t.Durs[i] += other.Durs[i]
	}
	t.Total += other.Total
}

// MeanNs returns the mean duration of one phase in nanoseconds.
func (t Totals) MeanNs(p Phase) float64 {
	if t.Messages == 0 {
		return 0
	}
	return float64(t.Durs[p]) / float64(t.Messages) / float64(sim.Nanosecond)
}

// MeanTotalNs returns the mean end-to-end latency in nanoseconds.
func (t Totals) MeanTotalNs() float64 {
	if t.Messages == 0 {
		return 0
	}
	return float64(t.Total) / float64(t.Messages) / float64(sim.Nanosecond)
}
