package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"alpusim/internal/sim"
)

// Simulated-time series: the time dimension of the observability plane.
//
// A Sampler owns a set of named Series and a chain of front-class polls
// (sim.Engine.AtPollFront) that fires at exact multiples of the sample
// interval. Because a front poll sorts before every modelled event at the
// same instant — in both event kernels — each sample observes the world
// exactly as left by the events strictly before the tick, a state that is
// a pure function of the modelled event set and therefore identical at
// any partitioning.
//
// Determinism at any run length comes from RRD-style power-of-two
// decimation: a Series holds at most its capacity of samples, and when
// full it drops every second retained sample and doubles its stride. The
// retained set is a pure function of (number of pushes, capacity), so two
// runs of different lengths still decimate identically over their common
// prefix, and the same run always yields the same bytes.
//
// Determinism at any -par comes from canonical padding: each partition's
// shard samples only while its local engine has modelled work, so a shard
// may stop early relative to the world's end-of-model time. Finalize pads
// every series to the canonical count floor(tEnd/dt)+1 by re-reading its
// probe — by then the world is drained and every probe reads the same
// frozen state the missed polls would have observed.

// DefaultSampleInterval is the default sampling period: 100 ns of
// simulated time (timestamps are picoseconds).
const DefaultSampleInterval = sim.Time(100_000)

// DefaultSeriesCap is the default per-series capacity (samples retained
// before decimation doubles the stride).
const DefaultSeriesCap = 256

// Series is one fixed-capacity, downsample-on-overflow sample series.
// Values are pushed at every sampler tick; the series retains pushes
// whose index is a multiple of its current stride and doubles the stride
// whenever the buffer fills.
type Series struct {
	name  string
	cap   int    // power of two
	every uint64 // retain push n iff n % every == 0
	n     uint64 // total pushes offered so far
	last  int64  // most recently offered value (retained or not)
	vals  []int64
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Every returns the current decimation stride.
func (s *Series) Every() uint64 { return s.every }

// Pushes returns how many samples were offered in total.
func (s *Series) Pushes() uint64 { return s.n }

// Last returns the most recently offered value.
func (s *Series) Last() int64 { return s.last }

// Samples returns the retained samples. Sample j holds the value offered
// at push index j*Every(); with interval dt, that push happened at
// simulated time (j*Every()+1)*dt.
func (s *Series) Samples() []int64 { return s.vals }

// Push offers one sample. Retention is a pure function of the push index
// and the capacity: push n is kept iff n is a multiple of the current
// stride, and a full buffer halves itself (keeping even positions) and
// doubles the stride before accepting the triggering push — which, the
// capacity being a power of two, is always itself a multiple of the
// doubled stride.
func (s *Series) Push(v int64) {
	s.last = v
	idx := s.n
	s.n++
	if idx%s.every != 0 {
		return
	}
	if len(s.vals) == s.cap {
		for i := 0; i < s.cap/2; i++ {
			s.vals[i] = s.vals[2*i]
		}
		s.vals = s.vals[:s.cap/2]
		s.every *= 2
	}
	s.vals = append(s.vals, v)
}

// Peak returns the maximum retained sample (0 when empty).
func (s *Series) Peak() int64 {
	var peak int64
	for _, v := range s.vals {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// probe pairs a series with the closure that reads its current value.
type probe struct {
	s  *Series
	fn func() int64
}

// Sampler drives a set of probes from one engine's front-poll chain.
// Like every recorder in this package it is single-world (or, in a
// partitioned world, single-partition) owned: one engine, no locks.
// All methods are nil-safe.
type Sampler struct {
	dt  sim.Time
	cap int

	probes []probe
	series map[string]*Series

	eng   *sim.Engine
	armed bool
	nextK uint64 // next tick index; tick k fires at k*dt
}

// NewSampler returns a sampler with the given interval and per-series
// capacity. Non-positive arguments select the defaults; the capacity is
// rounded up to a power of two (minimum 8).
func NewSampler(dt sim.Time, capacity int) *Sampler {
	if dt <= 0 {
		dt = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	c := 8
	for c < capacity {
		c *= 2
	}
	return &Sampler{dt: dt, cap: c, series: make(map[string]*Series)}
}

// Shard returns a new empty sampler with the same interval and capacity —
// the per-partition recorder a partitioned world attaches to each of its
// engines, later folded back with Absorb.
func (sa *Sampler) Shard() *Sampler {
	if sa == nil {
		return nil
	}
	return NewSampler(sa.dt, sa.cap)
}

// Interval returns the sampling period.
func (sa *Sampler) Interval() sim.Time {
	if sa == nil {
		return 0
	}
	return sa.dt
}

// Probe registers a named probe. Each name may be registered once per
// world (nic-scoped names guarantee this across partition shards).
func (sa *Sampler) Probe(name string, fn func() int64) {
	if sa == nil {
		return
	}
	if _, dup := sa.series[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %q", name))
	}
	s := &Series{name: name, cap: sa.cap, every: 1}
	sa.series[name] = s
	sa.probes = append(sa.probes, probe{s: s, fn: fn})
}

// sample reads every probe once, in registration order.
func (sa *Sampler) sample() {
	for _, p := range sa.probes {
		p.s.Push(p.fn())
	}
}

// tick is one firing of the poll chain: sample, then re-arm at the next
// interval multiple while the local engine still has modelled work. A
// chain that stops here can be revived by Rearm (injection into a
// quiescent partition).
func (sa *Sampler) tick() {
	sa.sample()
	sa.nextK++
	if sa.eng.Alive() > 0 {
		sa.eng.AtPollFront(sim.Time(sa.nextK)*sa.dt, sa.tick)
	} else {
		sa.armed = false
	}
}

// Attach arms the sampler's poll chain on eng, first tick one interval
// in. Must be called at time zero, before the engine runs; one sampler
// per engine (AtPollFront allows a single front poll per instant).
func (sa *Sampler) Attach(eng *sim.Engine) {
	if sa == nil {
		return
	}
	sa.eng = eng
	sa.armed = true
	sa.nextK = 1
	eng.AtPollFront(sa.dt, sa.tick)
}

// Rearm revives a chain that stopped because its engine went quiescent —
// the PartitionSet.OnInject hook, called when a barrier injects
// deliveries into a drained partition. The chain resumes at the tick
// index where it stopped; the engine was frozen in between, so the
// resumed ticks sample exactly the values the serial run would have.
func (sa *Sampler) Rearm() {
	if sa == nil || sa.eng == nil || sa.armed {
		return
	}
	sa.armed = true
	sa.eng.AtPollFront(sim.Time(sa.nextK)*sa.dt, sa.tick)
}

// Finalize pads every series to the canonical push count for a world
// whose last modelled event fired at tEnd: floor(tEnd/dt)+1 — exactly
// the ticks a serial run performs. Padding re-reads the probe: the world
// is drained, so the probe reads the frozen state every missed tick
// would have observed. Idempotent once the canonical count is reached.
func (sa *Sampler) Finalize(tEnd sim.Time) {
	if sa == nil {
		return
	}
	canon := uint64(tEnd/sa.dt) + 1
	for _, p := range sa.probes {
		for p.s.n < canon {
			p.s.Push(p.fn())
		}
	}
}

// Absorb folds a shard's series into sa — a union by name, since every
// series is written by exactly one shard. Rendering sorts by name, so
// the fold order is immaterial.
func (sa *Sampler) Absorb(o *Sampler) {
	if sa == nil || o == nil {
		return
	}
	for name, s := range o.series {
		if _, dup := sa.series[name]; dup {
			panic(fmt.Sprintf("telemetry: series %q absorbed twice", name))
		}
		sa.series[name] = s
	}
	o.series = make(map[string]*Series)
	o.probes = nil
}

// AbsorbAs folds a finished sampler's series into sa under a name
// prefix — the cross-world fold: a sweep's per-cell samplers all use
// nic-scoped names, so a cell prefix ("alpu-128/q512/") keeps them
// distinct in the merged set.
func (sa *Sampler) AbsorbAs(prefix string, o *Sampler) {
	if sa == nil || o == nil {
		return
	}
	for name, s := range o.series {
		s.name = prefix + name
		if _, dup := sa.series[s.name]; dup {
			panic(fmt.Sprintf("telemetry: series %q absorbed twice", s.name))
		}
		sa.series[s.name] = s
	}
	o.series = make(map[string]*Series)
	o.probes = nil
}

// All returns every series sorted by name — the canonical render order.
func (sa *Sampler) All() []*Series {
	if sa == nil {
		return nil
	}
	names := sortedKeys(sa.series)
	out := make([]*Series, 0, len(names))
	for _, n := range names {
		out = append(out, sa.series[n])
	}
	return out
}

// Publish writes each series' final and peak values as registry gauges
// (ts/<name>/last, ts/<name>/peak), so the waterlines surface on
// /metrics next to the counters they track.
func (sa *Sampler) Publish(reg *Registry) {
	if sa == nil || reg == nil {
		return
	}
	for _, s := range sa.All() {
		reg.Gauge("ts/" + s.name + "/last").Set(s.last)
		reg.Gauge("ts/" + s.name + "/peak").Set(s.Peak())
	}
}

// seriesJSON is the wire form of one series.
type seriesJSON struct {
	Name    string  `json:"name"`
	Every   uint64  `json:"every"`
	Pushes  uint64  `json:"pushes"`
	Samples []int64 `json:"samples"`
}

// timeseriesJSON is the wire form of a sampler dump.
type timeseriesJSON struct {
	IntervalPs sim.Time     `json:"interval_ps"`
	Series     []seriesJSON `json:"series"`
}

// WriteJSON renders the sampler deterministically: series sorted by
// name, sample j of a series standing for simulated time
// (j*every+1)*interval_ps. Identical worlds produce identical bytes at
// any -par/-jobs setting.
func (sa *Sampler) WriteJSON(w io.Writer) error {
	doc := timeseriesJSON{Series: []seriesJSON{}}
	if sa != nil {
		doc.IntervalPs = sa.dt
		for _, s := range sa.All() {
			samples := s.vals
			if samples == nil {
				samples = []int64{}
			}
			doc.Series = append(doc.Series, seriesJSON{
				Name: s.name, Every: s.every, Pushes: s.n, Samples: samples,
			})
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
