package telemetry

import (
	"context"
	"log/slog"

	"alpusim/internal/sim"
)

// simHandler wraps a slog handler and stamps every record with the
// world's simulated clock, so structured diagnostics line up with trace
// timestamps instead of wall time.
type simHandler struct {
	base slog.Handler
	now  func() sim.Time
}

func (h simHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.base.Enabled(ctx, lvl)
}

func (h simHandler) Handle(ctx context.Context, r slog.Record) error {
	r.AddAttrs(slog.String("t_sim", h.now().String()))
	return h.base.Handle(ctx, r)
}

func (h simHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return simHandler{base: h.base.WithAttrs(attrs), now: h.now}
}

func (h simHandler) WithGroup(name string) slog.Handler {
	return simHandler{base: h.base.WithGroup(name), now: h.now}
}

// SimLogger derives a logger that appends a t_sim attribute (the
// simulated clock at the moment of logging) to every record of base.
// A nil base returns nil, preserving the nil-logger-is-off convention
// used throughout the simulator: instrumentation sites guard with
// `if log != nil`.
func SimLogger(base *slog.Logger, now func() sim.Time) *slog.Logger {
	if base == nil || now == nil {
		return base
	}
	return slog.New(simHandler{base: base.Handler(), now: now})
}
