package memsys

import (
	"testing"

	"alpusim/internal/dram"
	"alpusim/internal/params"
	"alpusim/internal/sim"
)

func nicHier() *Hierarchy {
	return New(params.NICCPU(), dram.New(dram.DefaultConfig()))
}

func hostHier() *Hierarchy {
	return New(params.HostCPU(), dram.New(dram.DefaultConfig()))
}

func TestNICHitLatency(t *testing.T) {
	h := nicHier()
	h.Read(0, 0x1000, 4) // warm
	a := h.Read(sim.Microsecond, 0x1000, 4)
	want := params.NICCPU().Clock.Cycles(params.L1HitCycles)
	if !a.L1Hit || a.Latency != want {
		t.Fatalf("warm read: hit=%v lat=%v, want hit lat=%v", a.L1Hit, a.Latency, want)
	}
}

func TestNICMissLatencyNearTableIII(t *testing.T) {
	h := nicHier()
	a := h.Read(0, 0x2000, 4)
	if a.L1Hit {
		t.Fatal("cold read hit")
	}
	// 30 cycles at 2ns = 60ns, plus open-row delta (cold row: 50-20=30ns).
	min := 60 * sim.Nanosecond
	max := 95 * sim.Nanosecond
	if a.Latency < min || a.Latency > max {
		t.Fatalf("cold miss latency = %v, want within [%v, %v]", a.Latency, min, max)
	}
}

func TestHostL2Hit(t *testing.T) {
	h := hostHier()
	base := uint64(0x10000)
	// Fill L1 well past its 64K capacity so base ages out of L1 but stays
	// in the 512K L2.
	h.Read(0, base, 64)
	for i := uint64(1); i <= 2048; i++ {
		h.Read(sim.Time(i)*sim.Microsecond, base+i*64, 4)
	}
	a := h.Read(sim.Second, base, 4)
	if a.L1Hit {
		t.Fatal("expected L1 miss after capacity eviction")
	}
	if !a.L2Hit {
		t.Fatal("expected L2 hit")
	}
	want := params.HostCPU().Clock.Cycles(params.HostCPU().L2Latency)
	if a.Latency != want {
		t.Fatalf("L2 hit latency = %v, want %v", a.Latency, want)
	}
}

func TestHostMemLatency(t *testing.T) {
	h := hostHier()
	a := h.Read(0, 0x5000, 4)
	if a.L1Hit || a.L2Hit {
		t.Fatal("cold access hit a cache")
	}
	// 88 cycles at 0.5ns = 44ns + open-row delta 30ns.
	if a.Latency < 44*sim.Nanosecond || a.Latency > 80*sim.Nanosecond {
		t.Fatalf("host cold miss = %v", a.Latency)
	}
}

func TestMultiLineAccess(t *testing.T) {
	h := nicHier()
	a := h.Read(0, 0x4000, 64) // two 32-byte lines
	if a.Lines != 2 || a.Misses != 2 {
		t.Fatalf("Lines=%d Misses=%d, want 2,2", a.Lines, a.Misses)
	}
	b := h.Read(sim.Microsecond, 0x4000, 64)
	if !b.L1Hit || b.Misses != 0 {
		t.Fatalf("warm multi-line: hit=%v misses=%d", b.L1Hit, b.Misses)
	}
}

func TestPartialHitNotL1Hit(t *testing.T) {
	h := nicHier()
	h.Read(0, 0x6000, 4) // first line only
	a := h.Read(sim.Microsecond, 0x6000, 64)
	if a.L1Hit {
		t.Fatal("access with one missing line reported as full hit")
	}
	if a.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", a.Misses)
	}
}

func TestWriteAllocates(t *testing.T) {
	h := nicHier()
	h.Write(0, 0x7000, 4)
	a := h.Read(sim.Microsecond, 0x7000, 4)
	if !a.L1Hit {
		t.Fatal("write did not allocate the line")
	}
}

func TestZeroSizeAccess(t *testing.T) {
	h := nicHier()
	a := h.Read(0, 0x8000, 0)
	if a.Lines != 1 {
		t.Fatalf("zero-size access touched %d lines, want 1", a.Lines)
	}
}

func TestFlushCaches(t *testing.T) {
	h := hostHier()
	h.Read(0, 0x9000, 4)
	h.FlushCaches()
	a := h.Read(sim.Microsecond, 0x9000, 4)
	if a.L1Hit || a.L2Hit {
		t.Fatal("caches not flushed")
	}
}

// The calibration check behind the paper's §VI-B numbers: traversing a
// queue that fits in the 32K NIC L1 costs ~15 ns/entry; one that has been
// evicted costs ~60-75 ns/entry.
func TestPerEntryTraversalCalibration(t *testing.T) {
	h := nicHier()
	clock := params.NICCPU().Clock
	entry := uint64(params.QueueEntryBytes)

	// Warm 100 entries, then traverse.
	for i := uint64(0); i < 100; i++ {
		h.Read(0, i*entry, params.QueueEntryBytes)
	}
	var total sim.Time
	for i := uint64(0); i < 100; i++ {
		a := h.Read(sim.Microsecond, i*entry, params.QueueEntryBytes)
		total += a.Latency + clock.Cycles(params.TraverseCyclesPerEntry)
	}
	perEntry := total / 100
	if perEntry < 12*sim.Nanosecond || perEntry > 18*sim.Nanosecond {
		t.Errorf("in-cache per-entry cost = %v, want ~15ns (paper §VI-B)", perEntry)
	}

	// Evict with a large sweep, then traverse cold. Compute overlaps the
	// miss as in proc.LoadOverlapped. The wall clock advances with each
	// access, as it does when a processor issues them.
	now := 2 * sim.Microsecond
	for i := uint64(0); i < 4096; i++ {
		a := h.Read(now, 0x100000+i*32, 4)
		now += a.Latency
	}
	total = 0
	for i := uint64(0); i < 100; i++ {
		a := h.Read(now, i*entry, params.QueueEntryBytes)
		c := clock.Cycles(params.TraverseCyclesPerEntry)
		d := c + a.Latency
		if !a.L1Hit && a.Latency > c {
			d = a.Latency
		}
		total += d
		now += d
	}
	perEntry = total / 100
	if perEntry < 55*sim.Nanosecond || perEntry > 80*sim.Nanosecond {
		t.Errorf("out-of-cache per-entry cost = %v, want ~64ns (paper §VI-B)", perEntry)
	}
}
