// Package memsys composes the cache and DRAM models into the per-processor
// memory hierarchies of the paper's Table III: the NIC processor has a
// single 32K 64-way L1 and a 30-32 cycle path to memory; the host has a 64K
// 2-way L1, a 512K L2, and an 85-90 cycle path to memory.
//
// The Table III "latency to main memory" figures are treated as the
// open-row access latency; DRAM row misses and bank contention add on top
// through the open-row model (§V-B).
package memsys

import (
	"alpusim/internal/cache"
	"alpusim/internal/dram"
	"alpusim/internal/params"
	"alpusim/internal/sim"
)

// Access describes the outcome of one memory reference.
type Access struct {
	Latency sim.Time
	L1Hit   bool
	L2Hit   bool // meaningful only when an L2 exists and L1 missed
	Lines   int  // cache lines touched
	Misses  int  // lines that went to memory (or L2)
}

// Hierarchy is one processor's view of memory.
type Hierarchy struct {
	cpu params.CPU
	l1  *cache.Cache
	l2  *cache.Cache // nil when the CPU has no L2
	mem *dram.DRAM
}

// New builds the hierarchy for cpu in front of the shared DRAM mem.
func New(cpu params.CPU, mem *dram.DRAM) *Hierarchy {
	pol := cache.LRU
	if cpu.L1RandomRepl {
		pol = cache.Random
	}
	h := &Hierarchy{
		cpu: cpu,
		l1:  cache.New(cache.Config{Size: cpu.L1Size, Assoc: cpu.L1Assoc, LineSize: cpu.L1Line, Policy: pol}),
		mem: mem,
	}
	if cpu.L2Size > 0 {
		h.l2 = cache.New(cache.Config{Size: cpu.L2Size, Assoc: cpu.L2Assoc, LineSize: cpu.L1Line})
	}
	return h
}

// L1 exposes the level-1 cache for statistics and tests.
func (h *Hierarchy) L1() *cache.Cache { return h.l1 }

// L2 exposes the level-2 cache; nil when absent.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// CPU returns the processor parameters this hierarchy models.
func (h *Hierarchy) CPU() params.CPU { return h.cpu }

// lineLatency resolves one line reference.
func (h *Hierarchy) lineLatency(now sim.Time, addr uint64, write bool) (sim.Time, bool, bool) {
	hitLat := h.cpu.Clock.Cycles(int64(params.L1HitCycles))
	r := h.l1.Access(addr, write)
	if r.Hit {
		return hitLat, true, false
	}
	if r.Writeback {
		h.fillFromBelow(now, r.Victim, true)
	}
	lat, l2hit := h.fillFromBelow(now, addr, false)
	return lat, false, l2hit
}

// fillFromBelow models an L1 miss being serviced by L2 (if present) or
// memory. Writebacks update DRAM open-row state but are posted (they do not
// add to the demand latency).
func (h *Hierarchy) fillFromBelow(now sim.Time, addr uint64, posted bool) (sim.Time, bool) {
	if h.l2 != nil {
		r := h.l2.Access(addr, false)
		if r.Hit {
			if posted {
				return 0, true
			}
			return h.cpu.Clock.Cycles(h.cpu.L2Latency), true
		}
		if r.Writeback {
			h.mem.WriteBack(now, r.Victim)
		}
	}
	if posted {
		h.mem.WriteBack(now, addr)
		return 0, false
	}
	dl := h.mem.Access(now, addr)
	// Table III latency covers the open-row case; row misses and bank
	// stalls appear as the difference above the row-hit latency.
	extra := dl - params.DRAMRowHitLatency
	if extra < 0 {
		extra = 0
	}
	return h.cpu.Clock.Cycles(h.cpu.MemLatency) + extra, false
}

// Read models a load of size bytes at addr beginning at time now. Lines
// are resolved serially (both Table III processors have a single memory
// port on the path that matters here).
func (h *Hierarchy) Read(now sim.Time, addr uint64, size int) Access {
	return h.access(now, addr, size, false)
}

// Write models a store (write-allocate, write-back).
func (h *Hierarchy) Write(now sim.Time, addr uint64, size int) Access {
	return h.access(now, addr, size, true)
}

func (h *Hierarchy) access(now sim.Time, addr uint64, size int, write bool) Access {
	if size <= 0 {
		size = 1
	}
	ls := uint64(h.cpu.L1Line)
	out := Access{L1Hit: true}
	for a := addr &^ (ls - 1); a < addr+uint64(size); a += ls {
		lat, l1hit, l2hit := h.lineLatency(now+out.Latency, a, write)
		out.Latency += lat
		out.Lines++
		if !l1hit {
			out.Misses++
			out.L1Hit = false
		}
		if out.Lines == 1 {
			out.L2Hit = l2hit
		}
	}
	return out
}

// Prefetch updates cache and DRAM state for [addr, addr+size) without
// accumulating demand latency: it models lines fetched under an already
// outstanding miss (hardware prefetch / memory-level parallelism), e.g.
// the remainder of a queue entry behind its match line. The cache-pressure
// side effects are fully modelled; only the latency is hidden.
func (h *Hierarchy) Prefetch(now sim.Time, addr uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	ls := uint64(h.cpu.L1Line)
	for a := addr &^ (ls - 1); a < addr+uint64(size); a += ls {
		h.lineLatency(now, a, write)
	}
}

// FlushCaches empties every level (used between benchmark configurations).
func (h *Hierarchy) FlushCaches() {
	h.l1.Flush()
	if h.l2 != nil {
		h.l2.Flush()
	}
}
