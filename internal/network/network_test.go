package network

import (
	"testing"

	"alpusim/internal/match"
	"alpusim/internal/sim"
)

func TestWireLatency(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, 2, 200*sim.Nanosecond, 2)
	var arrived sim.Time
	net.Send(Packet{Kind: Eager, Src: 0, Dst: 1, Size: 0})
	eng.Spawn("rx", func(p *sim.Process) {
		p.WaitCond(net.Endpoint(1).Arrived, func() bool { return net.Endpoint(1).RxQ.Len() > 0 })
		arrived = p.Now()
	})
	eng.Run()
	// 32B header at 2 B/ns = 16ns tx + 200ns wire.
	if arrived != 216*sim.Nanosecond {
		t.Fatalf("arrival at %v, want 216ns", arrived)
	}
}

func TestInOrderDelivery(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, 2, 0, 0)
	for i := 0; i < 10; i++ {
		net.Send(Packet{Kind: Eager, Src: 0, Dst: 1, Hdr: match.Header{Tag: int32(i)}})
	}
	var tags []int32
	eng.Spawn("rx", func(p *sim.Process) {
		for len(tags) < 10 {
			p.WaitCond(net.Endpoint(1).Arrived, func() bool { return net.Endpoint(1).RxQ.Len() > 0 })
			for {
				pkt, ok := net.Endpoint(1).RxQ.Pop()
				if !ok {
					break
				}
				tags = append(tags, pkt.Hdr.Tag)
			}
		}
	})
	eng.Run()
	for i, tag := range tags {
		if tag != int32(i) {
			t.Fatalf("out-of-order delivery: %v", tags)
		}
	}
}

func TestTxSerialisation(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, 2, 200*sim.Nanosecond, 2)
	// Two large packets back to back: second is delayed by the first's
	// transmit occupancy.
	net.Send(Packet{Kind: Data, Src: 0, Dst: 1, Size: 2016}) // (32+2016)/2 = 1024ns tx
	net.Send(Packet{Kind: Data, Src: 0, Dst: 1, Size: 0})
	var arrivals []sim.Time
	eng.Spawn("rx", func(p *sim.Process) {
		for len(arrivals) < 2 {
			p.WaitCond(net.Endpoint(1).Arrived, func() bool { return net.Endpoint(1).RxQ.Len() > 0 })
			for {
				if _, ok := net.Endpoint(1).RxQ.Pop(); !ok {
					break
				}
				arrivals = append(arrivals, p.Now())
			}
		}
	})
	eng.Run()
	if arrivals[0] != 1224*sim.Nanosecond {
		t.Errorf("first arrival %v, want 1224ns", arrivals[0])
	}
	if arrivals[1] != 1240*sim.Nanosecond {
		t.Errorf("second arrival %v, want 1240ns (queued behind first)", arrivals[1])
	}
}

func TestOnDeliverHookRunsBeforeQueue(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, 2, 0, 0)
	hookSawEmptyQueue := false
	net.Endpoint(1).OnDeliver = func(p Packet) {
		hookSawEmptyQueue = net.Endpoint(1).RxQ.Len() == 0
	}
	net.Send(Packet{Kind: Eager, Src: 0, Dst: 1})
	eng.Run()
	if !hookSawEmptyQueue {
		t.Fatal("OnDeliver ran after the packet was queued")
	}
	if net.Endpoint(1).RxQ.Len() != 1 {
		t.Fatal("packet not queued")
	}
}

func TestStats(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, 3, 0, 0)
	net.Send(Packet{Src: 0, Dst: 1, Size: 100})
	net.Send(Packet{Src: 0, Dst: 2, Size: 50})
	eng.Run()
	if net.TxPackets(0) != 2 {
		t.Errorf("TxPackets(0) = %d", net.TxPackets(0))
	}
	if net.TxBytes(0) != 100+50+2*HeaderBytes {
		t.Errorf("TxBytes(0) = %d", net.TxBytes(0))
	}
	if net.Size() != 3 {
		t.Errorf("Size = %d", net.Size())
	}
}

func TestPacketKindString(t *testing.T) {
	for k, want := range map[PacketKind]string{Eager: "EAGER", RTS: "RTS", CTS: "CTS", Data: "DATA"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}
