// Package network models the simple network of the paper's simulation
// environment (§V-B): endpoints with FIFO Rx buffering, per-endpoint
// transmit serialisation, a bandwidth-limited link, and a 200 ns wire
// latency (Table III). Delivery between a pair of endpoints is in order,
// which is what MPI's matching-order guarantee rests on.
package network

import (
	"fmt"

	"alpusim/internal/match"
	"alpusim/internal/params"
	"alpusim/internal/sim"
)

// PacketKind distinguishes the protocol messages of the prototype MPI.
type PacketKind int

const (
	// Eager carries the header plus the full payload.
	Eager PacketKind = iota
	// RTS is a rendezvous request: header only; data follows after CTS.
	RTS
	// CTS is the receiver's clear-to-send for a rendezvous.
	CTS
	// Data is the rendezvous payload.
	Data
)

func (k PacketKind) String() string {
	switch k {
	case Eager:
		return "EAGER"
	case RTS:
		return "RTS"
	case CTS:
		return "CTS"
	case Data:
		return "DATA"
	default:
		return fmt.Sprintf("PacketKind(%d)", int(k))
	}
}

// HeaderBytes is the wire overhead of every packet (envelope + routing).
const HeaderBytes = 32

// Packet is one network message.
type Packet struct {
	Kind     PacketKind
	Src, Dst int
	Hdr      match.Header // MPI envelope (Eager and RTS)
	Size     int          // payload bytes
	// SenderReq / RecvReq carry the request handles needed to route
	// rendezvous control traffic back to its request state.
	SenderReq uint64
	RecvReq   uint64
	Seq       uint64
}

// Endpoint is one node's attachment point.
type Endpoint struct {
	ID int
	// RxQ buffers arrived packets until the NIC firmware polls them.
	RxQ *sim.FIFO[Packet]
	// Arrived is raised on each delivery, additionally to RxQ.NotEmpty,
	// so NICs can share one kick signal.
	Arrived *sim.Signal

	txBusyUntil sim.Time
	txBytes     uint64
	txPackets   uint64
	// OnDeliver, when set, runs at delivery time before the packet is
	// queued — the hardware path that replicates headers into the ALPU
	// header FIFO (Fig. 1).
	OnDeliver func(Packet)
}

// Network connects a fixed set of endpoints.
type Network struct {
	eng       *sim.Engine
	wire      sim.Time
	bwBpns    int
	endpoints []*Endpoint
	seq       uint64
}

// New builds a network of n endpoints with the calibrated wire latency and
// bandwidth; zero values select the Table III defaults.
func New(eng *sim.Engine, n int, wire sim.Time, bwBpns int) *Network {
	if wire == 0 {
		wire = params.WireLatency
	}
	if bwBpns == 0 {
		bwBpns = params.LinkBandwidthBpns
	}
	net := &Network{eng: eng, wire: wire, bwBpns: bwBpns}
	for i := 0; i < n; i++ {
		net.endpoints = append(net.endpoints, &Endpoint{
			ID:      i,
			RxQ:     sim.NewFIFO[Packet](eng, fmt.Sprintf("net%d.rx", i), 0),
			Arrived: sim.NewSignal(eng),
		})
	}
	return net
}

// Endpoint returns endpoint i.
func (n *Network) Endpoint(i int) *Endpoint { return n.endpoints[i] }

// Size returns the number of endpoints.
func (n *Network) Size() int { return len(n.endpoints) }

// Send transmits pkt from its Src endpoint at the current time. The
// source link serialises transmissions; the packet arrives at Dst after
// the transmit time plus the wire latency.
func (n *Network) Send(pkt Packet) {
	src := n.endpoints[pkt.Src]
	dst := n.endpoints[pkt.Dst]
	n.seq++
	pkt.Seq = n.seq

	now := n.eng.Now()
	start := now
	if src.txBusyUntil > start {
		start = src.txBusyUntil
	}
	txTime := sim.Time((HeaderBytes+max(pkt.Size, 0))/n.bwBpns) * sim.Nanosecond
	src.txBusyUntil = start + txTime
	src.txBytes += uint64(HeaderBytes + max(pkt.Size, 0))
	src.txPackets++

	deliver := src.txBusyUntil + n.wire - now
	p := pkt
	n.eng.Schedule(deliver, func() {
		if dst.OnDeliver != nil {
			dst.OnDeliver(p)
		}
		dst.RxQ.Push(p)
		dst.Arrived.Raise()
	})
}

// TxPackets reports packets transmitted by endpoint i.
func (n *Network) TxPackets(i int) uint64 { return n.endpoints[i].txPackets }

// TxBytes reports bytes transmitted by endpoint i.
func (n *Network) TxBytes(i int) uint64 { return n.endpoints[i].txBytes }
