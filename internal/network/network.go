// Package network models the simple network of the paper's simulation
// environment (§V-B): endpoints with FIFO Rx buffering, per-endpoint
// transmit serialisation, a bandwidth-limited link, and a 200 ns wire
// latency (Table III). Delivery between a pair of endpoints is in order,
// which is what MPI's matching-order guarantee rests on.
package network

import (
	"fmt"

	"alpusim/internal/match"
	"alpusim/internal/params"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

// PacketKind distinguishes the protocol messages of the prototype MPI.
type PacketKind int

const (
	// Eager carries the header plus the full payload.
	Eager PacketKind = iota
	// RTS is a rendezvous request: header only; data follows after CTS.
	RTS
	// CTS is the receiver's clear-to-send for a rendezvous.
	CTS
	// Data is the rendezvous payload.
	Data
	// Ack is a reliability-protocol cumulative acknowledgement: RelSeq is
	// the highest in-order sequence number received from Dst's peer state.
	Ack
	// Nack is a go-back-N retransmit request: RelSeq is the next sequence
	// number the receiver expects (everything from it was discarded).
	Nack
	// RNR (receiver not ready) is a flow-control Nack: the receiver had no
	// queue space for RelSeq; the sender must back off before resending.
	RNR
)

func (k PacketKind) String() string {
	switch k {
	case Eager:
		return "EAGER"
	case RTS:
		return "RTS"
	case CTS:
		return "CTS"
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Nack:
		return "NACK"
	case RNR:
		return "RNR"
	default:
		return fmt.Sprintf("PacketKind(%d)", int(k))
	}
}

// HeaderBytes is the wire overhead of every packet (envelope + routing).
const HeaderBytes = 32

// Packet is one network message.
type Packet struct {
	Kind     PacketKind
	Src, Dst int
	Hdr      match.Header // MPI envelope (Eager and RTS)
	Size     int          // payload bytes
	// SenderReq / RecvReq carry the request handles needed to route
	// rendezvous control traffic back to its request state.
	SenderReq uint64
	RecvReq   uint64
	Seq       uint64

	// Reliability-protocol fields (internal/nic). RelSeq is the per
	// (src, dst) link sequence number (1-based; 0 = protocol disabled for
	// this packet). Csum covers every protocol-visible field; the network
	// fault model corrupts only checksummed content, so a checksum match
	// certifies the packet.
	RelSeq uint64
	Csum   uint32
}

// Checksum computes the header checksum over the protocol-visible fields.
// The per-delivery Seq and the Csum field itself are excluded. The mix is
// an FNV-1a-style fold, strong enough that the fault model's single-bit
// flips always miss it.
func (p *Packet) Checksum() uint32 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 0x100000001b3
		}
	}
	mix(uint64(p.Kind))
	mix(uint64(p.Src)<<32 | uint64(uint32(p.Dst)))
	mix(uint64(p.Hdr.Context)<<48 | uint64(uint32(p.Hdr.Source))<<16 | uint64(uint16(p.Hdr.Tag)))
	mix(uint64(int64(p.Size)))
	mix(p.SenderReq)
	mix(p.RecvReq)
	mix(p.RelSeq)
	return uint32(h) ^ uint32(h>>32)
}

// Seal stamps the packet's checksum in place (Csum is not self-covered).
func (p *Packet) Seal() { p.Csum = p.Checksum() }

// ChecksumOK verifies a sealed packet.
func (p *Packet) ChecksumOK() bool { return p.Csum == p.Checksum() }

// Endpoint is one node's attachment point.
type Endpoint struct {
	ID int
	// RxQ buffers arrived packets until the NIC firmware polls them.
	RxQ *sim.FIFO[Packet]
	// Arrived is raised on each delivery, additionally to RxQ.NotEmpty,
	// so NICs can share one kick signal.
	Arrived *sim.Signal

	txBusyUntil sim.Time
	txBytes     uint64
	txPackets   uint64
	// OnDeliver, when set, runs at delivery time before the packet is
	// queued — the hardware path that replicates headers into the ALPU
	// header FIFO (Fig. 1).
	OnDeliver func(Packet)
	// Ingress, when set, intercepts every arriving packet before OnDeliver
	// and the RxQ. Returning false consumes the packet (discarded
	// duplicate, failed checksum, protocol control traffic, refused
	// admission) — the NIC reliability engine hangs here.
	Ingress func(Packet) bool

	eng    *sim.Engine
	phases *telemetry.Phases
	causal *telemetry.Causal
}

// phaseKey returns the latency-breakdown key for packets that carry an
// MPI envelope. Only Eager and RTS do; control and rendezvous-payload
// traffic is not tracked per message.
func phaseKey(p Packet) (uint64, bool) {
	if p.Kind != Eager && p.Kind != RTS {
		return 0, false
	}
	return uint64(match.Pack(p.Hdr)), true
}

// deliverNow runs one packet through the endpoint's receive path: the
// optional reliability ingress, the optional hardware header replication,
// then the Rx FIFO. A bounded RxQ that is full drops the packet (counted
// by the FIFO); reliable NICs refuse admission in Ingress instead, so the
// drop path is only reachable on raw unreliable endpoints.
func (ep *Endpoint) deliverNow(p Packet) {
	key, tracked := uint64(0), false
	if ep.phases != nil || ep.causal != nil {
		if key, tracked = phaseKey(p); tracked {
			// Arrive is stamped before the reliability ingress, Deliver
			// only on FIFO admission; the gap is the recovery phase.
			ep.phases.Stamp(key, telemetry.StampArrive, ep.eng.Now())
			ep.causal.Stamp(key, telemetry.StampArrive, ep.eng.Now())
		}
	}
	if ep.Ingress != nil && !ep.Ingress(p) {
		return
	}
	if ep.OnDeliver != nil {
		ep.OnDeliver(p)
	}
	if ep.RxQ.Push(p) {
		if tracked {
			ep.phases.Stamp(key, telemetry.StampDeliver, ep.eng.Now())
			ep.causal.Stamp(key, telemetry.StampDeliver, ep.eng.Now())
		}
		ep.Arrived.Raise()
	}
}

// Network connects a fixed set of endpoints.
type Network struct {
	eng       *sim.Engine
	wire      sim.Time
	bwBpns    int
	endpoints []*Endpoint
	seq       uint64

	// Fault injection (nil/zero = the reliable in-order default).
	faults *FaultModel
	frng   *frand
	fstats FaultStats

	phases *telemetry.Phases
	causal *telemetry.Causal

	// Partitioned mode (NewPartitioned): the world is split across
	// per-partition engines under conservative synchronization, and all
	// per-transmission network state must be owned by the sending
	// endpoint, not the Network — links[src] holds the per-source packet
	// sequence, delivery sequence, fault stream, and fault counters.
	// Cross-partition deliveries detour through the PartitionSet outbox.
	ps     *sim.PartitionSet
	partOf []int     // endpoint -> partition
	links  []srcLink // per source endpoint; nil in single-engine mode
}

// srcLink is the per-source-endpoint transmission state of a partitioned
// network. Everything here is touched only from the source endpoint's
// partition, so windows never contend on it.
type srcLink struct {
	seq   uint64 // per-source packet sequence (Packet.Seq minor bits)
	dseq  uint64 // per-source delivery sequence (canonical tie-break)
	rng   *frand // per-source fault stream
	stats FaultStats
}

// New builds a network of n endpoints with the calibrated wire latency and
// bandwidth; zero values select the Table III defaults.
func New(eng *sim.Engine, n int, wire sim.Time, bwBpns int) *Network {
	if wire == 0 {
		wire = params.WireLatency
	}
	if bwBpns == 0 {
		bwBpns = params.LinkBandwidthBpns
	}
	net := &Network{eng: eng, wire: wire, bwBpns: bwBpns}
	for i := 0; i < n; i++ {
		net.endpoints = append(net.endpoints, &Endpoint{
			ID:      i,
			RxQ:     sim.NewFIFO[Packet](eng, fmt.Sprintf("net%d.rx", i), 0),
			Arrived: sim.NewSignal(eng),
			eng:     eng,
		})
	}
	return net
}

// NewPartitioned builds a network whose endpoints live on the per-partition
// engines of ps: endpoint i runs on ps.Engines()[partOf[i]]. The wire
// latency doubles as the conservative lookahead — every delivery lands at
// least wire after the event that sent it — so ps must have been built
// with lookahead <= wire. Zero wire/bandwidth select the Table III
// defaults, as in New.
func NewPartitioned(ps *sim.PartitionSet, partOf []int, wire sim.Time, bwBpns int) *Network {
	if wire == 0 {
		wire = params.WireLatency
	}
	if bwBpns == 0 {
		bwBpns = params.LinkBandwidthBpns
	}
	if ps.Lookahead() > wire {
		panic(fmt.Sprintf("network: partition lookahead %v exceeds wire latency %v", ps.Lookahead(), wire))
	}
	engines := ps.Engines()
	net := &Network{
		wire: wire, bwBpns: bwBpns,
		ps: ps, partOf: partOf, links: make([]srcLink, len(partOf)),
	}
	for i, p := range partOf {
		eng := engines[p]
		net.endpoints = append(net.endpoints, &Endpoint{
			ID:      i,
			RxQ:     sim.NewFIFO[Packet](eng, fmt.Sprintf("net%d.rx", i), 0),
			Arrived: sim.NewSignal(eng),
			eng:     eng,
		})
	}
	return net
}

// SetPhases installs a latency-phase recorder; the network stamps wire
// transmit and arrival boundaries for envelope-carrying packets.
func (n *Network) SetPhases(p *telemetry.Phases) {
	n.phases = p
	for _, ep := range n.endpoints {
		ep.phases = p
	}
}

// SetPhasesSharded installs one latency-phase recorder per partition on a
// partitioned network: endpoint i stamps shards[partOf[i]]. Send-side
// stamps (WireTx) go to the sender's shard, receive-side stamps to the
// receiver's; Phases.Absorb reassembles them after the run.
func (n *Network) SetPhasesSharded(shards []*telemetry.Phases) {
	for i, ep := range n.endpoints {
		ep.phases = shards[n.partOf[i]]
	}
}

// SetCausal installs a causal recorder; the network contributes the same
// wire-boundary stamps it gives the phase recorder.
func (n *Network) SetCausal(c *telemetry.Causal) {
	n.causal = c
	for _, ep := range n.endpoints {
		ep.causal = c
	}
}

// SetCausalSharded installs one causal recorder per partition, mirroring
// SetPhasesSharded; Causal.Absorb reassembles the shards after the run.
func (n *Network) SetCausalSharded(shards []*telemetry.Causal) {
	for i, ep := range n.endpoints {
		ep.causal = shards[n.partOf[i]]
	}
}

// Endpoint returns endpoint i.
func (n *Network) Endpoint(i int) *Endpoint { return n.endpoints[i] }

// Size returns the number of endpoints.
func (n *Network) Size() int { return len(n.endpoints) }

// Wire returns the configured wire latency (the NIC reliability protocol
// derives its initial retransmit timeout from it).
func (n *Network) Wire() sim.Time { return n.wire }

// Send transmits pkt from its Src endpoint at the current time. The
// source link serialises transmissions; the packet arrives at Dst after
// the transmit time plus the wire latency.
func (n *Network) Send(pkt Packet) {
	if n.links != nil {
		n.sendPartitioned(pkt)
		return
	}
	src := n.endpoints[pkt.Src]
	dst := n.endpoints[pkt.Dst]
	n.seq++
	pkt.Seq = n.seq

	now := n.eng.Now()
	if n.phases != nil || n.causal != nil {
		// WireTx is stamped when the NIC hands the packet to the link, so
		// transmit serialisation waits land in the wire phase. First-wins
		// keeps retransmits from moving the stamp.
		if key, ok := phaseKey(pkt); ok {
			n.phases.Stamp(key, telemetry.StampWireTx, now)
			n.causal.Stamp(key, telemetry.StampWireTx, now)
		}
	}
	start := now
	if src.txBusyUntil > start {
		start = src.txBusyUntil
	}
	txTime := sim.Time((HeaderBytes+max(pkt.Size, 0))/n.bwBpns) * sim.Nanosecond
	src.txBusyUntil = start + txTime
	src.txBytes += uint64(HeaderBytes + max(pkt.Size, 0))
	src.txPackets++

	deliver := src.txBusyUntil + n.wire - now
	p := pkt
	if n.faults.Active() {
		n.inject(p, dst, deliver)
		return
	}
	n.eng.Schedule(deliver, func() { dst.deliverNow(p) })
}

// sendPartitioned is Send on a partitioned network. It runs on the source
// endpoint's partition and uses only per-source state, so concurrent
// windows never contend; Packet.Seq stays globally unique (it is a trace
// correlation key) by carrying the source id in its top bits. The
// delivery is scheduled directly when the destination shares the
// partition and deferred to the barrier outbox otherwise — both paths
// order by the same canonical (time, source, sequence) key.
func (n *Network) sendPartitioned(pkt Packet) {
	src := n.endpoints[pkt.Src]
	dst := n.endpoints[pkt.Dst]
	ln := &n.links[pkt.Src]
	ln.seq++
	pkt.Seq = uint64(pkt.Src+1)<<40 | ln.seq

	now := src.eng.Now()
	if src.phases != nil || src.causal != nil {
		if key, ok := phaseKey(pkt); ok {
			src.phases.Stamp(key, telemetry.StampWireTx, now)
			src.causal.Stamp(key, telemetry.StampWireTx, now)
		}
	}
	start := now
	if src.txBusyUntil > start {
		start = src.txBusyUntil
	}
	txTime := sim.Time((HeaderBytes+max(pkt.Size, 0))/n.bwBpns) * sim.Nanosecond
	src.txBusyUntil = start + txTime
	src.txBytes += uint64(HeaderBytes + max(pkt.Size, 0))
	src.txPackets++

	// Absolute delivery time: at least wire (= the lookahead) after now,
	// which is what licenses the conservative horizon.
	at := src.txBusyUntil + n.wire
	if n.faults.Active() {
		n.injectPartitioned(pkt, src, dst, at)
		return
	}
	n.deliverAt(src, dst, at, pkt)
}

// deliverAt schedules one delivery on a partitioned network, directly on
// the shared engine or via the barrier outbox.
func (n *Network) deliverAt(src, dst *Endpoint, at sim.Time, p Packet) {
	ln := &n.links[src.ID]
	ln.dseq++
	sp, dp := n.partOf[src.ID], n.partOf[dst.ID]
	if sp == dp {
		src.eng.AtDelivery(at, uint32(src.ID), ln.dseq, func() { dst.deliverNow(p) })
		return
	}
	n.ps.Defer(sp, sim.Delivery{
		At: at, Src: uint32(src.ID), Seq: ln.dseq, Part: dp,
		Fn: func() { dst.deliverNow(p) },
	})
}

// TxPackets reports packets transmitted by endpoint i.
func (n *Network) TxPackets(i int) uint64 { return n.endpoints[i].txPackets }

// TxBytes reports bytes transmitted by endpoint i.
func (n *Network) TxBytes(i int) uint64 { return n.endpoints[i].txBytes }

// Publish harvests the network's counters into a telemetry registry:
// injected-fault totals under net/faults and per-endpoint transmit
// counters under net/ep<i>. Idempotent (counters are Set, not added).
func (n *Network) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	fs := n.FaultStats()
	reg.Counter("net/faults/dropped").Set(fs.Dropped)
	reg.Counter("net/faults/duplicated").Set(fs.Duplicated)
	reg.Counter("net/faults/reordered").Set(fs.Reordered)
	reg.Counter("net/faults/corrupted").Set(fs.Corrupted)
	for i, ep := range n.endpoints {
		reg.Counter(fmt.Sprintf("net/ep%d/tx_packets", i)).Set(ep.txPackets)
		reg.Counter(fmt.Sprintf("net/ep%d/tx_bytes", i)).Set(ep.txBytes)
	}
}
