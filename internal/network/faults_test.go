package network

import (
	"testing"

	"alpusim/internal/match"
	"alpusim/internal/sim"
)

// sendN fires n sealed eager packets 0->1 with distinct tags.
func sendN(net *Network, n int) {
	for i := 0; i < n; i++ {
		p := Packet{Kind: Eager, Src: 0, Dst: 1, Hdr: match.Header{Tag: int32(i)}}
		p.Seal()
		net.Send(p)
	}
}

// TestBoundedRxQDropsWhenUnreliable: a bounded endpoint FIFO with no
// ingress protocol sheds overflow and counts it — the raw-hardware
// behaviour the reliability engine exists to prevent.
func TestBoundedRxQDropsWhenUnreliable(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, 2, 0, 0)
	ep := net.Endpoint(1)
	ep.RxQ = sim.NewFIFO[Packet](eng, "bounded", 3)
	sendN(net, 10) // nobody drains
	eng.Run()
	if got := ep.RxQ.Len(); got != 3 {
		t.Errorf("queued %d packets, want the 3 the FIFO holds", got)
	}
	if got := ep.RxQ.Drops(); got != 7 {
		t.Errorf("FIFO counted %d drops, want 7", got)
	}
}

// TestIngressConsumesBeforeQueue: a refusing Ingress hook must consume the
// packet before the OnDeliver replication and the FIFO see it.
func TestIngressConsumesBeforeQueue(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, 2, 0, 0)
	ep := net.Endpoint(1)
	delivered := 0
	ep.OnDeliver = func(Packet) { delivered++ }
	accept := 0
	ep.Ingress = func(p Packet) bool {
		accept++
		return p.Hdr.Tag%2 == 0
	}
	sendN(net, 6)
	eng.Run()
	if accept != 6 {
		t.Errorf("ingress saw %d packets, want 6", accept)
	}
	if delivered != 3 || ep.RxQ.Len() != 3 {
		t.Errorf("odd-tag packets leaked past ingress: OnDeliver=%d queued=%d", delivered, ep.RxQ.Len())
	}
}

// TestFaultInjectionDeterministic: the same seed over the same transmission
// sequence must inject the identical fault mix; a different seed must not.
func TestFaultInjectionDeterministic(t *testing.T) {
	run := func(seed int64) FaultStats {
		eng := sim.NewEngine()
		net := New(eng, 2, 0, 0)
		net.SetFaults(&FaultModel{Seed: seed, DropProb: 0.1, DupProb: 0.1, ReorderProb: 0.1, CorruptProb: 0.1})
		sendN(net, 400)
		eng.Run()
		return net.FaultStats()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Total() == 0 {
		t.Error("10%% fault rates injected nothing over 400 packets")
	}
	if c := run(8); c == a {
		t.Errorf("different seeds produced identical stats %+v — stream not seeded", c)
	}
}

// TestCorruptionAlwaysDetectable: every corrupted delivery must fail the
// checksum — the fault model flips bits only in checksummed content.
func TestCorruptionAlwaysDetectable(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, 2, 0, 0)
	net.SetFaults(&FaultModel{Seed: 3, CorruptProb: 1})
	sendN(net, 50)
	eng.Run()
	ep := net.Endpoint(1)
	if ep.RxQ.Len() != 50 {
		t.Fatalf("delivered %d packets, want 50", ep.RxQ.Len())
	}
	for {
		pkt, ok := ep.RxQ.Pop()
		if !ok {
			break
		}
		if pkt.ChecksumOK() {
			t.Fatalf("corrupted packet passed its checksum: %+v", pkt)
		}
	}
	if got := net.FaultStats().Corrupted; got != 50 {
		t.Errorf("Corrupted=%d, want 50", got)
	}
}

// TestDropAndDupExtremes: probability-1 drop delivers nothing;
// probability-1 duplication delivers everything twice.
func TestDropAndDupExtremes(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, 2, 0, 0)
	net.SetFaults(&FaultModel{Seed: 1, DropProb: 1})
	sendN(net, 20)
	eng.Run()
	if got := net.Endpoint(1).RxQ.Len(); got != 0 {
		t.Errorf("drop=1 still delivered %d packets", got)
	}

	eng = sim.NewEngine()
	net = New(eng, 2, 0, 0)
	net.SetFaults(&FaultModel{Seed: 1, DupProb: 1})
	sendN(net, 20)
	eng.Run()
	if got := net.Endpoint(1).RxQ.Len(); got != 40 {
		t.Errorf("dup=1 delivered %d packets, want 40", got)
	}
}

// TestParseFaults covers the -faults flag grammar.
func TestParseFaults(t *testing.T) {
	if fm, err := ParseFaults("", 1); err != nil || fm != nil {
		t.Errorf("empty spec: %v, %v", fm, err)
	}
	fm, err := ParseFaults("0.02", 9)
	if err != nil || fm.DropProb != 0.02 || fm.CorruptProb != 0.02 || fm.Seed != 9 {
		t.Errorf("uniform spec: %+v, %v", fm, err)
	}
	fm, err = ParseFaults("drop=0.01,reorder=0.05", 2)
	if err != nil || fm.DropProb != 0.01 || fm.ReorderProb != 0.05 || fm.DupProb != 0 {
		t.Errorf("pair spec: %+v, %v", fm, err)
	}
	for _, bad := range []string{"x", "drop=2", "mangle=0.1", "drop"} {
		if _, err := ParseFaults(bad, 0); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestParseFaultsDeviceClasses covers the device-fault grammar additions.
func TestParseFaultsDeviceClasses(t *testing.T) {
	fm, err := ParseFaults("alpubitflip=0.001,alpuresultdrop=0.01,alpustuck=0.02,fwcrash=0.0001,alpudeath@500us,linkflap=0.2", 3)
	if err != nil {
		t.Fatalf("device spec: %v", err)
	}
	if fm.ALPUBitFlipProb != 0.001 || fm.ALPUResultDropProb != 0.01 ||
		fm.ALPUStuckProb != 0.02 || fm.FwCrashProb != 0.0001 ||
		fm.ALPUDeathAt != 500*sim.Microsecond || fm.LinkFlapFrac != 0.2 {
		t.Fatalf("device spec fields: %+v", fm)
	}
	if fm.WireActive() != true || !fm.DeviceActive() || !fm.Active() {
		t.Fatalf("activity split: wire=%v device=%v", fm.WireActive(), fm.DeviceActive())
	}
	fm, err = ParseFaults("alpudeath@2ms", 0)
	if err != nil || fm.ALPUDeathAt != 2*sim.Millisecond || fm.WireActive() {
		t.Fatalf("death-only spec: %+v, %v", fm, err)
	}
	if fm, err = ParseFaults("linkflap", 0); err != nil || fm.LinkFlapFrac != 0.1 {
		t.Fatalf("bare linkflap: %+v, %v", fm, err)
	}
}

// TestParseFaultsErrorsArePositional: a bad element is reported with its
// token and 1-based position, not a bare message.
func TestParseFaultsErrorsArePositional(t *testing.T) {
	_, err := ParseFaults("drop=0.01,bogus=0.5,dup=0.1", 0)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError (%v)", err, err)
	}
	if pe.Pos != 2 || pe.Token != "bogus=0.5" {
		t.Errorf("ParseError = %+v, want Pos 2 token bogus=0.5", pe)
	}
	for _, c := range []struct {
		spec, tok string
		pos       int
	}{
		{"drop=0.01,,dup=0.1", "", 2},
		{"alpudeath@yesterday", "alpudeath@yesterday", 1},
		{"drop=0.01,alpustuck=7", "alpustuck=7", 2},
		{"1.5", "1.5", 1},
	} {
		_, err := ParseFaults(c.spec, 0)
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("spec %q: error type %T, want *ParseError", c.spec, err)
			continue
		}
		if pe.Pos != c.pos || pe.Token != c.tok {
			t.Errorf("spec %q: got pos %d token %q, want pos %d token %q",
				c.spec, pe.Pos, pe.Token, c.pos, c.tok)
		}
	}
}

// TestLinkFlapDropsAndRecovers: a flapping link drops whole windows of
// traffic deterministically; the same (seed, src, t) is down in every run.
func TestLinkFlap(t *testing.T) {
	fm := &FaultModel{Seed: 5, LinkFlapFrac: 0.3}
	downA, downB := 0, 0
	for w := 0; w < 1000; w++ {
		at := sim.Time(w) * flapWindow
		if fm.linkDown(0, at) {
			downA++
		}
		if fm.linkDown(0, at) != fm.linkDown(0, at) {
			t.Fatal("linkDown not deterministic")
		}
		if fm.linkDown(1, at) {
			downB++
		}
	}
	if downA < 200 || downA > 400 {
		t.Errorf("down fraction off: %d/1000 windows at frac 0.3", downA)
	}
	if downA == downB {
		t.Error("sources share a flap schedule")
	}

	eng := sim.NewEngine()
	net := New(eng, 2, 0, 0)
	net.SetFaults(&FaultModel{Seed: 1, LinkFlapFrac: 1})
	sendN(net, 20)
	eng.Run()
	if got := net.Endpoint(1).RxQ.Len(); got != 0 {
		t.Errorf("linkflap=1 still delivered %d packets", got)
	}
	if fs := net.FaultStats(); fs.FlapDropped != 20 || fs.Total() != 20 {
		t.Errorf("flap stats %+v, want 20 flap-dropped", fs)
	}
}
