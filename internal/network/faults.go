// Fault injection: a deterministic, seed-driven fault model layered under
// the reliable default. The paper's simulation environment (§V-B) assumes
// a perfect in-order network; the FaultModel lets the same worlds run over
// a lossy one (drop, duplicate, reorder/delay-jitter, payload corruption)
// so the NIC reliability protocol (internal/nic) can be exercised. All
// randomness comes from a splitmix64 stream owned by the Network, so two
// runs with the same seed inject byte-identical fault sequences.
package network

import (
	"fmt"
	"strconv"
	"strings"

	"alpusim/internal/params"
	"alpusim/internal/sim"
)

// FaultModel describes per-packet fault probabilities on every link.
// The zero value injects nothing; a nil model on the Network is the
// reliable default and skips the fault path entirely.
type FaultModel struct {
	Seed int64

	// DropProb silently loses the packet on the wire.
	DropProb float64
	// DupProb delivers the packet twice (the second copy slightly later).
	DupProb float64
	// ReorderProb adds a delay jitter in (0, MaxJitter] to the delivery,
	// letting later packets overtake this one.
	ReorderProb float64
	// CorruptProb flips a bit in the checksummed portion of the packet
	// (envelope, size, or reliability sequence number).
	CorruptProb float64

	// MaxJitter bounds the reorder delay; 0 selects 4x the wire latency.
	MaxJitter sim.Time
}

// Active reports whether the model can inject any fault at all.
func (f *FaultModel) Active() bool {
	return f != nil && (f.DropProb > 0 || f.DupProb > 0 || f.ReorderProb > 0 || f.CorruptProb > 0)
}

// String renders the model compactly for experiment banners.
func (f *FaultModel) String() string {
	if f == nil {
		return "none"
	}
	return fmt.Sprintf("drop=%g dup=%g reorder=%g corrupt=%g seed=%d",
		f.DropProb, f.DupProb, f.ReorderProb, f.CorruptProb, f.Seed)
}

// ParseFaults parses a -faults flag value: either a single probability
// applied to all four fault classes ("0.02"), or a comma-separated list of
// class=prob pairs ("drop=0.01,dup=0.01,reorder=0.02,corrupt=0.005").
// An empty spec returns nil (no faults).
func ParseFaults(spec string, seed int64) (*FaultModel, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	fm := &FaultModel{Seed: seed}
	if !strings.Contains(spec, "=") {
		p, err := strconv.ParseFloat(spec, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad probability %q", spec)
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("faults: probability %g out of [0,1]", p)
		}
		fm.DropProb, fm.DupProb, fm.ReorderProb, fm.CorruptProb = p, p, p, p
		return fm, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("faults: bad element %q (want class=prob)", part)
		}
		p, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("faults: bad probability %q in %q", kv[1], part)
		}
		switch strings.ToLower(kv[0]) {
		case "drop":
			fm.DropProb = p
		case "dup":
			fm.DupProb = p
		case "reorder":
			fm.ReorderProb = p
		case "corrupt":
			fm.CorruptProb = p
		default:
			return nil, fmt.Errorf("faults: unknown class %q (drop, dup, reorder, corrupt)", kv[0])
		}
	}
	return fm, nil
}

// FaultStats counts injected faults, for the chaos experiment reports.
type FaultStats struct {
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Corrupted  uint64
}

// Total sums the injected-fault counts.
func (s FaultStats) Total() uint64 {
	return s.Dropped + s.Duplicated + s.Reordered + s.Corrupted
}

func (s FaultStats) String() string {
	return fmt.Sprintf("dropped=%d duplicated=%d reordered=%d corrupted=%d",
		s.Dropped, s.Duplicated, s.Reordered, s.Corrupted)
}

// frand is a splitmix64-based PRNG: tiny, fast, and bit-identical on every
// platform and Go version (math/rand's stream is version-stable but this
// removes the dependency on that promise for the determinism CI check).
type frand struct{ state uint64 }

func newFrand(seed int64) *frand {
	// Avoid the all-zero state; splitmix64 escapes it anyway, but mixing
	// the seed keeps nearby seeds decorrelated.
	return &frand{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567890ABCDEF}
}

// newFrandSrc derives the per-source-endpoint stream of a partitioned
// network: the base state advanced by a second odd constant per source,
// so streams for (seed, src) and (seed, src+1) are decorrelated.
func newFrandSrc(seed int64, src int) *frand {
	r := newFrand(seed)
	r.state += (uint64(src) + 1) * 0xD1B54A32D192ED03
	return r
}

func (r *frand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *frand) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n).
func (r *frand) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// maxJitter resolves the configured or default reorder jitter bound.
func (f *FaultModel) maxJitter(wire sim.Time) sim.Time {
	if f.MaxJitter > 0 {
		return f.MaxJitter
	}
	if wire <= 0 {
		wire = params.WireLatency
	}
	return 4 * wire
}

// corrupt flips one bit in a checksummed field of p. The destination is
// left intact (routing is a physical port, not packet content), so the
// corruption is always detectable by the receiver's checksum.
func corrupt(r *frand, p Packet) Packet {
	bit := uint32(1) << uint(r.intn(16))
	switch r.intn(4) {
	case 0:
		p.Hdr.Tag ^= int32(bit)
	case 1:
		p.Hdr.Source ^= int32(bit)
	case 2:
		p.Size ^= int(bit)
	default:
		p.RelSeq ^= uint64(bit)
	}
	return p
}

// SetFaults installs (or, with nil, removes) the fault model. Call before
// traffic flows; changing the model mid-run would break seed determinism.
// A partitioned network derives one independent stream per source
// endpoint from the seed, so concurrent partitions never share a PRNG;
// the per-source sequences are a pure function of (seed, source), not of
// the partition layout.
func (n *Network) SetFaults(fm *FaultModel) {
	n.faults = fm
	if fm == nil {
		n.frng = nil
		for i := range n.links {
			n.links[i].rng = nil
		}
		return
	}
	n.frng = newFrand(fm.Seed)
	for i := range n.links {
		n.links[i].rng = newFrandSrc(fm.Seed, i)
	}
}

// Faults returns the installed fault model (nil = reliable).
func (n *Network) Faults() *FaultModel { return n.faults }

// FaultStats reports the faults injected so far. On a partitioned network
// the per-source counters are summed in source order.
func (n *Network) FaultStats() FaultStats {
	if n.links == nil {
		return n.fstats
	}
	var total FaultStats
	for i := range n.links {
		s := n.links[i].stats
		total.Dropped += s.Dropped
		total.Duplicated += s.Duplicated
		total.Reordered += s.Reordered
		total.Corrupted += s.Corrupted
	}
	return total
}

// inject applies the fault model to one transmission and schedules the
// surviving deliveries. delay is the fault-free delivery delay from now.
func (n *Network) inject(p Packet, dst *Endpoint, delay sim.Time) {
	f, r := n.faults, n.frng
	// Draw in a fixed order so the random stream is a pure function of the
	// transmission sequence, whatever the probabilities.
	drop := r.float64() < f.DropProb
	corr := r.float64() < f.CorruptProb
	reorder := r.float64() < f.ReorderProb
	dup := r.float64() < f.DupProb
	var jitter, dupJitter sim.Time
	if reorder {
		jitter = sim.Time(1 + r.intn(int64(f.maxJitter(n.wire))))
	}
	if dup {
		dupJitter = sim.Time(1 + r.intn(int64(f.maxJitter(n.wire))))
	}

	if drop {
		n.fstats.Dropped++
		return
	}
	if corr {
		n.fstats.Corrupted++
		p = corrupt(r, p)
	}
	if reorder {
		n.fstats.Reordered++
	}
	n.eng.Schedule(delay+jitter, func() { dst.deliverNow(p) })
	if dup {
		n.fstats.Duplicated++
		q := p
		n.eng.Schedule(delay+jitter+dupJitter, func() { dst.deliverNow(q) })
	}
}

// injectPartitioned is inject for a partitioned network: the same draw
// order against the source's own stream, counters on the source's own
// stats, and deliveries routed through deliverAt. at is the fault-free
// absolute delivery time; faults only ever add delay (or drop), so the
// conservative lookahead bound survives injection.
func (n *Network) injectPartitioned(p Packet, src, dst *Endpoint, at sim.Time) {
	f := n.faults
	ln := &n.links[src.ID]
	r := ln.rng
	drop := r.float64() < f.DropProb
	corr := r.float64() < f.CorruptProb
	reorder := r.float64() < f.ReorderProb
	dup := r.float64() < f.DupProb
	var jitter, dupJitter sim.Time
	if reorder {
		jitter = sim.Time(1 + r.intn(int64(f.maxJitter(n.wire))))
	}
	if dup {
		dupJitter = sim.Time(1 + r.intn(int64(f.maxJitter(n.wire))))
	}

	if drop {
		ln.stats.Dropped++
		return
	}
	if corr {
		ln.stats.Corrupted++
		p = corrupt(r, p)
	}
	if reorder {
		ln.stats.Reordered++
	}
	n.deliverAt(src, dst, at+jitter, p)
	if dup {
		ln.stats.Duplicated++
		q := p
		n.deliverAt(src, dst, at+jitter+dupJitter, q)
	}
}
