// Fault injection: a deterministic, seed-driven fault model layered under
// the reliable default. The paper's simulation environment (§V-B) assumes
// a perfect in-order network; the FaultModel lets the same worlds run over
// a lossy one (drop, duplicate, reorder/delay-jitter, payload corruption)
// so the NIC reliability protocol (internal/nic) can be exercised. All
// randomness comes from a splitmix64 stream owned by the Network, so two
// runs with the same seed inject byte-identical fault sequences.
package network

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"alpusim/internal/params"
	"alpusim/internal/sim"
)

// FaultModel describes per-packet fault probabilities on every link.
// The zero value injects nothing; a nil model on the Network is the
// reliable default and skips the fault path entirely.
type FaultModel struct {
	Seed int64

	// DropProb silently loses the packet on the wire.
	DropProb float64
	// DupProb delivers the packet twice (the second copy slightly later).
	DupProb float64
	// ReorderProb adds a delay jitter in (0, MaxJitter] to the delivery,
	// letting later packets overtake this one.
	ReorderProb float64
	// CorruptProb flips a bit in the checksummed portion of the packet
	// (envelope, size, or reliability sequence number).
	CorruptProb float64

	// MaxJitter bounds the reorder delay; 0 selects 4x the wire latency.
	MaxJitter sim.Time

	// LinkFlapFrac is the fraction of time each link spends down: time is
	// cut into fixed windows and each (seed, source, window) is down with
	// this probability — a pure function, so flaps are identical at any
	// partition count. Packets sent into a down window are dropped; the
	// go-back-N reliability layer recovers them.
	LinkFlapFrac float64

	// Device-fault classes. The Network does not interpret these; the
	// world builder (internal/mpi) plumbs them into per-device
	// alpu.FaultModel instances and the NIC firmware, deriving per-unit
	// seeds from Seed.
	ALPUBitFlipProb    float64  // transient ALPU cell bit-flips
	ALPUResultDropProb float64  // ALPU result-FIFO entries silently lost
	ALPUStuckProb      float64  // stuck ALPU compaction cycles
	ALPUDeathAt        sim.Time // hard ALPU failure at this instant (0 = never)
	FwCrashProb        float64  // NIC firmware crash per handled work item
}

// WireActive reports whether any wire-level class is enabled — the classes
// that require the reliability protocol and the Network's inject path.
func (f *FaultModel) WireActive() bool {
	return f != nil && (f.DropProb > 0 || f.DupProb > 0 || f.ReorderProb > 0 ||
		f.CorruptProb > 0 || f.LinkFlapFrac > 0)
}

// DeviceActive reports whether any device-level class (ALPU faults,
// firmware crashes) is enabled.
func (f *FaultModel) DeviceActive() bool {
	return f != nil && (f.ALPUBitFlipProb > 0 || f.ALPUResultDropProb > 0 ||
		f.ALPUStuckProb > 0 || f.ALPUDeathAt > 0 || f.FwCrashProb > 0)
}

// Active reports whether the model can inject any fault at all.
func (f *FaultModel) Active() bool {
	return f.WireActive() || f.DeviceActive()
}

// String renders the model compactly for experiment banners.
func (f *FaultModel) String() string {
	if f == nil {
		return "none"
	}
	s := fmt.Sprintf("drop=%g dup=%g reorder=%g corrupt=%g",
		f.DropProb, f.DupProb, f.ReorderProb, f.CorruptProb)
	if f.LinkFlapFrac > 0 {
		s += fmt.Sprintf(" linkflap=%g", f.LinkFlapFrac)
	}
	if f.ALPUBitFlipProb > 0 {
		s += fmt.Sprintf(" alpubitflip=%g", f.ALPUBitFlipProb)
	}
	if f.ALPUResultDropProb > 0 {
		s += fmt.Sprintf(" alpuresultdrop=%g", f.ALPUResultDropProb)
	}
	if f.ALPUStuckProb > 0 {
		s += fmt.Sprintf(" alpustuck=%g", f.ALPUStuckProb)
	}
	if f.ALPUDeathAt > 0 {
		s += fmt.Sprintf(" alpudeath@%v", f.ALPUDeathAt)
	}
	if f.FwCrashProb > 0 {
		s += fmt.Sprintf(" fwcrash=%g", f.FwCrashProb)
	}
	return s + fmt.Sprintf(" seed=%d", f.Seed)
}

// flapWindow is the granularity of link up/down flaps: each window is
// independently up or down per (seed, source). It comfortably exceeds the
// reliability layer's initial RTO, so a down window forces real
// retransmission backoff rather than sub-RTO blips.
const flapWindow = 5 * sim.Microsecond

// linkDown reports whether src's link is down at instant t — a pure
// function of (Seed, src, t), evaluated without touching any PRNG stream.
func (f *FaultModel) linkDown(src int, t sim.Time) bool {
	if f.LinkFlapFrac <= 0 {
		return false
	}
	w := uint64(t / flapWindow)
	// One splitmix64 scramble of (seed, src, window).
	z := uint64(f.Seed)*0x9E3779B97F4A7C15 + (uint64(src)+1)*0xD1B54A32D192ED03 + w*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < f.LinkFlapFrac
}

// ParseError is an actionable -faults parse failure: it names the bad
// element, its 1-based position in the comma-separated spec, and what
// would have been accepted there.
type ParseError struct {
	Spec  string // the full spec as given
	Pos   int    // 1-based element position within the spec
	Token string // the offending element
	Msg   string // what is wrong and what was expected
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("faults: element %d %q: %s (spec %q)", e.Pos, e.Token, e.Msg, e.Spec)
}

// faultClasses names every class=value key ParseFaults accepts, for error
// messages.
const faultClasses = "drop, dup, reorder, corrupt, linkflap, alpubitflip, alpuresultdrop, alpustuck, fwcrash (value in [0,1]), or alpudeath@<duration>"

// ParseFaults parses a -faults flag value: either a single probability
// applied to all four wire fault classes ("0.02"), or a comma-separated
// list of elements — class=prob pairs ("drop=0.01,corrupt=0.005"), the
// device classes ("alpubitflip=0.001,fwcrash=0.0001"), "linkflap" (bare,
// default 0.1 down-fraction) or "linkflap=frac", and "alpudeath@t" with a
// Go duration ("alpudeath@500us"). An empty spec returns nil (no faults).
func ParseFaults(spec string, seed int64) (*FaultModel, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	fm := &FaultModel{Seed: seed}
	if !strings.ContainsAny(spec, "=@") && !strings.Contains(spec, "linkflap") {
		p, err := strconv.ParseFloat(spec, 64)
		if err != nil {
			return nil, &ParseError{Spec: spec, Pos: 1, Token: spec,
				Msg: "not a probability; want a float in [0,1] or a class list: " + faultClasses}
		}
		if p < 0 || p > 1 {
			return nil, &ParseError{Spec: spec, Pos: 1, Token: spec,
				Msg: fmt.Sprintf("probability %g out of [0,1]", p)}
		}
		fm.DropProb, fm.DupProb, fm.ReorderProb, fm.CorruptProb = p, p, p, p
		return fm, nil
	}
	for i, part := range strings.Split(spec, ",") {
		tok := strings.TrimSpace(part)
		fail := func(msg string) error {
			return &ParseError{Spec: spec, Pos: i + 1, Token: tok, Msg: msg}
		}
		if tok == "" {
			return nil, fail("empty element; want " + faultClasses)
		}
		if tok == "linkflap" {
			fm.LinkFlapFrac = 0.1
			continue
		}
		if rest, ok := strings.CutPrefix(tok, "alpudeath@"); ok {
			d, err := time.ParseDuration(rest)
			if err != nil || d <= 0 {
				return nil, fail(fmt.Sprintf("bad death time %q; want a positive Go duration like 500us", rest))
			}
			fm.ALPUDeathAt = sim.Time(d.Nanoseconds()) * sim.Nanosecond
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fail("want class=value; classes: " + faultClasses)
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fail(fmt.Sprintf("bad probability %q; want a float in [0,1]", val))
		}
		switch strings.ToLower(key) {
		case "drop":
			fm.DropProb = p
		case "dup":
			fm.DupProb = p
		case "reorder":
			fm.ReorderProb = p
		case "corrupt":
			fm.CorruptProb = p
		case "linkflap":
			fm.LinkFlapFrac = p
		case "alpubitflip":
			fm.ALPUBitFlipProb = p
		case "alpuresultdrop":
			fm.ALPUResultDropProb = p
		case "alpustuck":
			fm.ALPUStuckProb = p
		case "fwcrash":
			fm.FwCrashProb = p
		default:
			return nil, fail(fmt.Sprintf("unknown class %q; classes: %s", key, faultClasses))
		}
	}
	return fm, nil
}

// FaultStats counts injected faults, for the chaos experiment reports.
type FaultStats struct {
	Dropped     uint64
	Duplicated  uint64
	Reordered   uint64
	Corrupted   uint64
	FlapDropped uint64 // packets sent into a down link-flap window
}

// Total sums the injected-fault counts.
func (s FaultStats) Total() uint64 {
	return s.Dropped + s.Duplicated + s.Reordered + s.Corrupted + s.FlapDropped
}

func (s FaultStats) String() string {
	out := fmt.Sprintf("dropped=%d duplicated=%d reordered=%d corrupted=%d",
		s.Dropped, s.Duplicated, s.Reordered, s.Corrupted)
	if s.FlapDropped > 0 {
		out += fmt.Sprintf(" flapdropped=%d", s.FlapDropped)
	}
	return out
}

// frand is a splitmix64-based PRNG: tiny, fast, and bit-identical on every
// platform and Go version (math/rand's stream is version-stable but this
// removes the dependency on that promise for the determinism CI check).
type frand struct{ state uint64 }

func newFrand(seed int64) *frand {
	// Avoid the all-zero state; splitmix64 escapes it anyway, but mixing
	// the seed keeps nearby seeds decorrelated.
	return &frand{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567890ABCDEF}
}

// newFrandSrc derives the per-source-endpoint stream of a partitioned
// network: the base state advanced by a second odd constant per source,
// so streams for (seed, src) and (seed, src+1) are decorrelated.
func newFrandSrc(seed int64, src int) *frand {
	r := newFrand(seed)
	r.state += (uint64(src) + 1) * 0xD1B54A32D192ED03
	return r
}

func (r *frand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *frand) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n).
func (r *frand) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// maxJitter resolves the configured or default reorder jitter bound.
func (f *FaultModel) maxJitter(wire sim.Time) sim.Time {
	if f.MaxJitter > 0 {
		return f.MaxJitter
	}
	if wire <= 0 {
		wire = params.WireLatency
	}
	return 4 * wire
}

// corrupt flips one bit in a checksummed field of p. The destination is
// left intact (routing is a physical port, not packet content), so the
// corruption is always detectable by the receiver's checksum.
func corrupt(r *frand, p Packet) Packet {
	bit := uint32(1) << uint(r.intn(16))
	switch r.intn(4) {
	case 0:
		p.Hdr.Tag ^= int32(bit)
	case 1:
		p.Hdr.Source ^= int32(bit)
	case 2:
		p.Size ^= int(bit)
	default:
		p.RelSeq ^= uint64(bit)
	}
	return p
}

// SetFaults installs (or, with nil, removes) the fault model. Call before
// traffic flows; changing the model mid-run would break seed determinism.
// A partitioned network derives one independent stream per source
// endpoint from the seed, so concurrent partitions never share a PRNG;
// the per-source sequences are a pure function of (seed, source), not of
// the partition layout.
func (n *Network) SetFaults(fm *FaultModel) {
	n.faults = fm
	if fm == nil {
		n.frng = nil
		for i := range n.links {
			n.links[i].rng = nil
		}
		return
	}
	n.frng = newFrand(fm.Seed)
	for i := range n.links {
		n.links[i].rng = newFrandSrc(fm.Seed, i)
	}
}

// Faults returns the installed fault model (nil = reliable).
func (n *Network) Faults() *FaultModel { return n.faults }

// FaultStats reports the faults injected so far. On a partitioned network
// the per-source counters are summed in source order.
func (n *Network) FaultStats() FaultStats {
	if n.links == nil {
		return n.fstats
	}
	var total FaultStats
	for i := range n.links {
		s := n.links[i].stats
		total.Dropped += s.Dropped
		total.Duplicated += s.Duplicated
		total.Reordered += s.Reordered
		total.Corrupted += s.Corrupted
		total.FlapDropped += s.FlapDropped
	}
	return total
}

// inject applies the fault model to one transmission and schedules the
// surviving deliveries. delay is the fault-free delivery delay from now.
func (n *Network) inject(p Packet, dst *Endpoint, delay sim.Time) {
	f, r := n.faults, n.frng
	// Link flap is a pure function of (seed, source, window) — checked
	// before any stream draw, so enabling it does not perturb the other
	// classes' random sequences. The instant checked is the fault-free
	// delivery time, matching the partitioned path.
	if f.linkDown(p.Src, n.eng.Now()+delay) {
		n.fstats.FlapDropped++
		return
	}
	// Draw in a fixed order so the random stream is a pure function of the
	// transmission sequence, whatever the probabilities.
	drop := r.float64() < f.DropProb
	corr := r.float64() < f.CorruptProb
	reorder := r.float64() < f.ReorderProb
	dup := r.float64() < f.DupProb
	var jitter, dupJitter sim.Time
	if reorder {
		jitter = sim.Time(1 + r.intn(int64(f.maxJitter(n.wire))))
	}
	if dup {
		dupJitter = sim.Time(1 + r.intn(int64(f.maxJitter(n.wire))))
	}

	if drop {
		n.fstats.Dropped++
		return
	}
	if corr {
		n.fstats.Corrupted++
		p = corrupt(r, p)
	}
	if reorder {
		n.fstats.Reordered++
	}
	n.eng.Schedule(delay+jitter, func() { dst.deliverNow(p) })
	if dup {
		n.fstats.Duplicated++
		q := p
		n.eng.Schedule(delay+jitter+dupJitter, func() { dst.deliverNow(q) })
	}
}

// injectPartitioned is inject for a partitioned network: the same draw
// order against the source's own stream, counters on the source's own
// stats, and deliveries routed through deliverAt. at is the fault-free
// absolute delivery time; faults only ever add delay (or drop), so the
// conservative lookahead bound survives injection.
func (n *Network) injectPartitioned(p Packet, src, dst *Endpoint, at sim.Time) {
	f := n.faults
	ln := &n.links[src.ID]
	// The flap instant is the fault-free delivery time: like everything
	// else here it is a pure function of the transmission, independent of
	// which partition evaluates it.
	if f.linkDown(src.ID, at) {
		ln.stats.FlapDropped++
		return
	}
	r := ln.rng
	drop := r.float64() < f.DropProb
	corr := r.float64() < f.CorruptProb
	reorder := r.float64() < f.ReorderProb
	dup := r.float64() < f.DupProb
	var jitter, dupJitter sim.Time
	if reorder {
		jitter = sim.Time(1 + r.intn(int64(f.maxJitter(n.wire))))
	}
	if dup {
		dupJitter = sim.Time(1 + r.intn(int64(f.maxJitter(n.wire))))
	}

	if drop {
		ln.stats.Dropped++
		return
	}
	if corr {
		ln.stats.Corrupted++
		p = corrupt(r, p)
	}
	if reorder {
		ln.stats.Reordered++
	}
	n.deliverAt(src, dst, at+jitter, p)
	if dup {
		ln.stats.Duplicated++
		q := p
		n.deliverAt(src, dst, at+jitter+dupJitter, q)
	}
}
