// Package dram models main-memory timing with per-bank open-row state:
// "The memory hierarchy was modeled to include contention for open rows on
// the DRAM chips" (§V-B). Accesses that hit the currently open row of a
// bank are cheaper than accesses that force a precharge/activate, and each
// bank serialises its accesses.
package dram

import (
	"alpusim/internal/params"
	"alpusim/internal/sim"
)

// Config sets the geometry and timing of a DRAM part.
type Config struct {
	Banks          int
	RowBytes       int64
	RowHitLatency  sim.Time
	RowMissLatency sim.Time
	BusyPerAccess  sim.Time // bank occupancy per access (serialisation)
}

// DefaultConfig returns the calibrated part from internal/params.
func DefaultConfig() Config {
	return Config{
		Banks:          params.DRAMBanks,
		RowBytes:       params.DRAMRowBytes,
		RowHitLatency:  params.DRAMRowHitLatency,
		RowMissLatency: params.DRAMRowMissLatency,
		BusyPerAccess:  params.DRAMBusyPerAccess,
	}
}

type bank struct {
	openRow   int64
	hasOpen   bool
	busyUntil sim.Time
}

// DRAM is a bank-interleaved open-row memory model.
type DRAM struct {
	cfg   Config
	banks []bank

	// Stats.
	accesses uint64
	rowHits  uint64
	stalls   sim.Time
}

// New returns a DRAM with all rows closed.
func New(cfg Config) *DRAM {
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.RowBytes <= 0 {
		cfg.RowBytes = 1024
	}
	return &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks)}
}

// bankRow maps an address to its bank and row. Consecutive rows interleave
// across banks, the usual mapping for streaming-friendly parts.
func (d *DRAM) bankRow(addr uint64) (int, int64) {
	row := int64(addr) / d.cfg.RowBytes
	return int(row % int64(d.cfg.Banks)), row / int64(d.cfg.Banks)
}

// Access models one line fill or writeback beginning at time now. It
// returns the total latency including any stall waiting for the bank.
func (d *DRAM) Access(now sim.Time, addr uint64) sim.Time {
	b, row := d.bankRow(addr)
	bk := &d.banks[b]
	d.accesses++

	start := now
	if bk.busyUntil > start {
		d.stalls += bk.busyUntil - start
		start = bk.busyUntil
	}

	var lat sim.Time
	if bk.hasOpen && bk.openRow == row {
		lat = d.cfg.RowHitLatency
		d.rowHits++
	} else {
		lat = d.cfg.RowMissLatency
		bk.openRow = row
		bk.hasOpen = true
	}
	bk.busyUntil = start + d.cfg.BusyPerAccess
	return (start + lat) - now
}

// WriteBack models a posted writeback drained from the controller's write
// buffer: it occupies the bank briefly but is scheduled around open-row
// traffic (row-coalesced), so it neither closes the open row nor adds to
// demand latency.
func (d *DRAM) WriteBack(now sim.Time, addr uint64) {
	b, _ := d.bankRow(addr)
	bk := &d.banks[b]
	d.accesses++
	start := now
	if bk.busyUntil > start {
		start = bk.busyUntil
	}
	bk.busyUntil = start + d.cfg.BusyPerAccess
}

// Accesses reports the total access count.
func (d *DRAM) Accesses() uint64 { return d.accesses }

// RowHits reports how many accesses hit an open row.
func (d *DRAM) RowHits() uint64 { return d.rowHits }

// StallTime reports cumulative time spent waiting for busy banks.
func (d *DRAM) StallTime() sim.Time { return d.stalls }

// Reset closes all rows and clears bank occupancy (not statistics).
func (d *DRAM) Reset() {
	for i := range d.banks {
		d.banks[i] = bank{}
	}
}
