package dram

import (
	"testing"

	"alpusim/internal/sim"
)

func cfg() Config {
	return Config{
		Banks:          4,
		RowBytes:       1024,
		RowHitLatency:  20 * sim.Nanosecond,
		RowMissLatency: 50 * sim.Nanosecond,
		BusyPerAccess:  10 * sim.Nanosecond,
	}
}

func TestRowMissThenHit(t *testing.T) {
	d := New(cfg())
	if lat := d.Access(0, 0); lat != 50*sim.Nanosecond {
		t.Fatalf("cold access latency = %v, want 50ns", lat)
	}
	if lat := d.Access(sim.Microsecond, 64); lat != 20*sim.Nanosecond {
		t.Fatalf("open-row access latency = %v, want 20ns", lat)
	}
	if d.RowHits() != 1 {
		t.Fatalf("RowHits = %d, want 1", d.RowHits())
	}
}

func TestRowConflict(t *testing.T) {
	d := New(cfg())
	d.Access(0, 0)
	// Same bank (banks interleave by row): row 0 and row 4 share bank 0.
	conflictAddr := uint64(4 * 1024)
	if lat := d.Access(sim.Microsecond, conflictAddr); lat != 50*sim.Nanosecond {
		t.Fatalf("row conflict latency = %v, want 50ns", lat)
	}
	// Original row is now closed.
	if lat := d.Access(2*sim.Microsecond, 0); lat != 50*sim.Nanosecond {
		t.Fatalf("reopened row latency = %v, want 50ns", lat)
	}
}

func TestBankParallelism(t *testing.T) {
	d := New(cfg())
	// Different banks don't queue behind one another.
	lat0 := d.Access(0, 0)    // bank 0
	lat1 := d.Access(0, 1024) // bank 1, same instant
	if lat0 != 50*sim.Nanosecond || lat1 != 50*sim.Nanosecond {
		t.Fatalf("parallel bank latencies = %v, %v; want 50ns each", lat0, lat1)
	}
	if d.StallTime() != 0 {
		t.Fatalf("StallTime = %v, want 0", d.StallTime())
	}
}

func TestBankSerialisation(t *testing.T) {
	d := New(cfg())
	d.Access(0, 0) // bank 0 busy until 10ns
	// Second access to bank 0 at time 0 stalls 10ns, then row-hits.
	if lat := d.Access(0, 64); lat != 30*sim.Nanosecond {
		t.Fatalf("queued access latency = %v, want 30ns (10 stall + 20 hit)", lat)
	}
	if d.StallTime() != 10*sim.Nanosecond {
		t.Fatalf("StallTime = %v, want 10ns", d.StallTime())
	}
}

func TestReset(t *testing.T) {
	d := New(cfg())
	d.Access(0, 0)
	d.Reset()
	if lat := d.Access(sim.Microsecond, 64); lat != 50*sim.Nanosecond {
		t.Fatalf("post-Reset access = %v, want 50ns (row closed)", lat)
	}
	if d.Accesses() != 2 {
		t.Fatalf("Accesses = %d, want 2 (stats survive Reset)", d.Accesses())
	}
}

func TestDefaultConfig(t *testing.T) {
	d := New(DefaultConfig())
	if lat := d.Access(0, 0); lat <= 0 {
		t.Fatal("default config access has non-positive latency")
	}
}

func TestDegenerateConfigSafe(t *testing.T) {
	d := New(Config{}) // all zero: must self-correct, not divide by zero
	if lat := d.Access(0, 12345); lat < 0 {
		t.Fatal("degenerate config produced negative latency")
	}
}

func TestStreamingRowHits(t *testing.T) {
	d := New(cfg())
	// A sequential stream within one row: first access opens, rest hit.
	var now sim.Time
	miss, hit := 0, 0
	for off := uint64(0); off < 1024; off += 64 {
		lat := d.Access(now, off)
		if lat >= 50*sim.Nanosecond {
			miss++
		} else {
			hit++
		}
		now += 100 * sim.Nanosecond
	}
	if miss != 1 || hit != 15 {
		t.Fatalf("stream: %d misses, %d hits; want 1, 15", miss, hit)
	}
}
