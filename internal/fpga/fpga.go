// Package fpga estimates the size and speed of ALPU prototypes on a
// Virtex-II Pro 100 -5, regenerating the paper's Tables IV and V.
//
// The paper built the prototypes in JHDL and reported post-implementation
// numbers from the Xilinx tool chain; that flow is proprietary and
// hardware-gated, so this package substitutes a structural estimator
// (DESIGN.md §2): it counts the registers and LUT terms the §III
// architecture synthesizes to, with technology coefficients fitted to the
// twelve published build points. Model error against the published tables
// is below 0.3 % for FFs and LUTs and below 2.5 % for slices; frequency is
// reproduced by a two-tier critical-path model within 0.7 MHz. The fit is
// recorded in EXPERIMENTS.md.
package fpga

import (
	"math"

	"alpusim/internal/alpu"
)

// Params describes a build point: the geometry plus the match/tag widths.
// The prototypes used MatchWidth 42 and TagWidth 16 (§VI-A); Masked says
// whether cells store a mask (posted-receive variant) or take it as an
// input (unexpected variant).
type Params struct {
	Geometry   alpu.Geometry
	MatchWidth int
	TagWidth   int
	Masked     bool
}

// PrototypeParams returns the published build point for a variant.
func PrototypeParams(v alpu.Variant, cells, blockSize int) Params {
	return Params{
		Geometry:   alpu.Geometry{Cells: cells, BlockSize: blockSize},
		MatchWidth: 42,
		TagWidth:   16,
		Masked:     v == alpu.PostedReceives,
	}
}

// PortalsParams returns the full-width build point of §III-A: 64 match
// bits with a stored mask bit for each (footnote 7's "worst case" that
// supports protocols beyond MPI, such as Portals).
func PortalsParams(cells, blockSize int) Params {
	return Params{
		Geometry:   alpu.Geometry{Cells: cells, BlockSize: blockSize},
		MatchWidth: 64,
		TagWidth:   16,
		Masked:     true,
	}
}

// Estimate is the resource/speed report for one build point, matching the
// columns of Tables IV and V.
type Estimate struct {
	LUTs          int
	FFs           int
	Slices        int
	FreqMHz       float64
	LatencyCycles int
}

// Technology coefficients (fit to the published tables; see the package
// comment). They are only claimed valid near the prototyped widths.
const (
	// Per-block control overhead beyond the registered request:
	// tag pipeline registers, match-location encode, flow control. Grows
	// with block size (more cells share one block's control).
	blockCtlBase    = 38.0
	blockCtlPerCell = 1.14

	// Top-level control + inter-block tree registers.
	topFFsMasked   = 200.0
	topFFsUnmasked = 110.0

	// Per-cell LUT cost: masked compare of W bits, the cell's share of the
	// T-bit priority-mux tree, and per-cell flow control that grows with
	// block size.
	lutPerMatchBit = 0.97
	lutPerTagBit   = 1.43
	lutCellBase    = 3.28
	lutCellPerBS   = 0.113

	// Slice packing: slices hold two FFs and two LUTs but are rarely
	// packed fully (§VI-A footnote 8); fit across both variants.
	sliceFFWeight  = 0.4422
	sliceLUTWeight = 0.1716

	// Critical path: fanout + compare + intra-block priority muxing fits
	// in an 8.94 ns cycle up to 16-cell blocks; each further doubling of
	// the block adds ~1 ns of mux depth (the published bs=32 points drop
	// to ~100.6 MHz).
	basePeriodNs  = 8.94
	periodPerLvl  = 1.0
	freeMuxLevels = 4 // log2(16)

	// ASICFreqScale is the paper's (conservative) 5x estimate for moving
	// from the FPGA to a standard-cell ASIC (§VI-A footnote 9).
	ASICFreqScale = 5.0
)

// Estimate computes the resource and timing estimate for p.
func (p Params) Estimate() Estimate {
	g := p.Geometry
	nb := g.Blocks()
	w := float64(p.MatchWidth)
	t := float64(p.TagWidth)
	bs := float64(g.BlockSize)
	n := float64(g.Cells)

	// Flip-flops: each cell stores match bits (+ mask bits when Masked),
	// the tag, and a valid bit. Each block registers its copy of the
	// request — the probe's match bits, plus the mask input for the
	// unmasked variant (Fig. 2(b)) — plus block control.
	cellFF := w + t + 1
	reqFF := w
	if p.Masked {
		cellFF += w
	} else {
		reqFF += w
	}
	blockFF := reqFF + blockCtlBase + blockCtlPerCell*bs
	topFF := topFFsUnmasked
	if p.Masked {
		topFF = topFFsMasked
	}
	ffs := n*cellFF + float64(nb)*blockFF + topFF

	// LUTs: compare logic and mux tree scale with the cell count; the
	// compare consumes one 4-LUT per match bit (XOR + mask + AND-tree
	// start) regardless of where the mask comes from, which is why the
	// published LUT counts are nearly identical across the two variants.
	lutCell := lutPerMatchBit*w + lutPerTagBit*t + lutCellBase + lutCellPerBS*bs
	luts := n * lutCell

	slices := sliceFFWeight*ffs + sliceLUTWeight*luts

	lvl := math.Log2(bs) - freeMuxLevels
	if lvl < 0 {
		lvl = 0
	}
	period := basePeriodNs + periodPerLvl*lvl
	freq := 1000.0 / period

	return Estimate{
		LUTs:          int(math.Round(luts)),
		FFs:           int(math.Round(ffs)),
		Slices:        int(math.Round(slices)),
		FreqMHz:       math.Round(freq*10) / 10,
		LatencyCycles: g.PipelineCycles(),
	}
}

// ASICFreqMHz returns the projected standard-cell clock for an estimate,
// per the paper's 5x scaling ("the prototypes would all run at about
// 500 MHz", §VI-A).
func (e Estimate) ASICFreqMHz() float64 { return e.FreqMHz * ASICFreqScale }

// Published is one row of the paper's Tables IV/V for validation.
type Published struct {
	Cells, BlockSize  int
	LUTs, FFs, Slices int
	FreqMHz           float64
	LatencyCycles     int
}

// PublishedPosted is the paper's Table IV (posted receives ALPU).
var PublishedPosted = []Published{
	{256, 8, 17372, 28908, 15766, 112.5, 7},
	{256, 16, 17573, 27656, 15090, 111.4, 7},
	{256, 32, 18054, 26971, 14742, 100.2, 6},
	{128, 8, 8687, 14562, 7945, 111.5, 7},
	{128, 16, 8786, 13897, 7606, 112.1, 6},
	{128, 32, 9025, 13605, 7431, 100.6, 6},
}

// PublishedUnexpected is the paper's Table V (unexpected messages ALPU).
var PublishedUnexpected = []Published{
	{256, 8, 17339, 19414, 11562, 112.1, 7},
	{256, 16, 17556, 17490, 10631, 111.9, 7},
	{256, 32, 18045, 16469, 10350, 100.9, 6},
	{128, 8, 8672, 9773, 5806, 111.2, 7},
	{128, 16, 8777, 8771, 5356, 112.1, 6},
	{128, 32, 9020, 8311, 5215, 100.6, 6},
}

// PublishedFor returns the validation table for a variant.
func PublishedFor(v alpu.Variant) []Published {
	if v == alpu.PostedReceives {
		return PublishedPosted
	}
	return PublishedUnexpected
}
