package fpga

import (
	"math"
	"testing"

	"alpusim/internal/alpu"
)

func relErr(got, want int) float64 {
	return math.Abs(float64(got-want)) / float64(want)
}

// The estimator must land on the published Tables IV and V within the
// documented tolerances.
func TestEstimatorMatchesPublishedTables(t *testing.T) {
	for _, v := range []alpu.Variant{alpu.PostedReceives, alpu.UnexpectedMessages} {
		for _, pub := range PublishedFor(v) {
			p := PrototypeParams(v, pub.Cells, pub.BlockSize)
			e := p.Estimate()
			name := v.String()
			if err := relErr(e.FFs, pub.FFs); err > 0.003 {
				t.Errorf("%s %d/%d: FFs %d vs published %d (%.2f%%)",
					name, pub.Cells, pub.BlockSize, e.FFs, pub.FFs, err*100)
			}
			if err := relErr(e.LUTs, pub.LUTs); err > 0.003 {
				t.Errorf("%s %d/%d: LUTs %d vs published %d (%.2f%%)",
					name, pub.Cells, pub.BlockSize, e.LUTs, pub.LUTs, err*100)
			}
			if err := relErr(e.Slices, pub.Slices); err > 0.025 {
				t.Errorf("%s %d/%d: slices %d vs published %d (%.2f%%)",
					name, pub.Cells, pub.BlockSize, e.Slices, pub.Slices, err*100)
			}
			if d := math.Abs(e.FreqMHz - pub.FreqMHz); d > 1.5 {
				t.Errorf("%s %d/%d: freq %.1f vs published %.1f",
					name, pub.Cells, pub.BlockSize, e.FreqMHz, pub.FreqMHz)
			}
			if e.LatencyCycles != pub.LatencyCycles {
				t.Errorf("%s %d/%d: latency %d vs published %d",
					name, pub.Cells, pub.BlockSize, e.LatencyCycles, pub.LatencyCycles)
			}
		}
	}
}

func TestPostedLargerThanUnexpected(t *testing.T) {
	// The posted-receive cell stores mask bits, so at equal geometry it
	// must cost more FFs and slices (compare Tables IV and V).
	for _, g := range []alpu.Geometry{{Cells: 128, BlockSize: 16}, {Cells: 256, BlockSize: 8}} {
		pr := PrototypeParams(alpu.PostedReceives, g.Cells, g.BlockSize).Estimate()
		un := PrototypeParams(alpu.UnexpectedMessages, g.Cells, g.BlockSize).Estimate()
		if pr.FFs <= un.FFs {
			t.Errorf("geometry %+v: posted FFs %d <= unexpected FFs %d", g, pr.FFs, un.FFs)
		}
		if pr.Slices <= un.Slices {
			t.Errorf("geometry %+v: posted slices %d <= unexpected slices %d", g, pr.Slices, un.Slices)
		}
	}
}

func TestScalingTrends(t *testing.T) {
	// Doubling the cells roughly doubles the resources.
	small := PrototypeParams(alpu.PostedReceives, 128, 16).Estimate()
	big := PrototypeParams(alpu.PostedReceives, 256, 16).Estimate()
	if r := float64(big.FFs) / float64(small.FFs); r < 1.9 || r > 2.1 {
		t.Errorf("FF scaling 128->256 = %.2f, want ~2", r)
	}
	// Bigger blocks cost fewer slices but clock slower (Tables IV/V trend).
	bs8 := PrototypeParams(alpu.PostedReceives, 256, 8).Estimate()
	bs32 := PrototypeParams(alpu.PostedReceives, 256, 32).Estimate()
	if bs32.Slices >= bs8.Slices {
		t.Errorf("slices bs32 (%d) >= bs8 (%d)", bs32.Slices, bs8.Slices)
	}
	if bs32.FreqMHz >= bs8.FreqMHz {
		t.Errorf("freq bs32 (%.1f) >= bs8 (%.1f)", bs32.FreqMHz, bs8.FreqMHz)
	}
}

func TestASICFrequencyNear500MHz(t *testing.T) {
	// §VI-A: "the prototypes would all run at about 500MHz" as ASICs.
	for _, v := range []alpu.Variant{alpu.PostedReceives, alpu.UnexpectedMessages} {
		for _, pub := range PublishedFor(v) {
			e := PrototypeParams(v, pub.Cells, pub.BlockSize).Estimate()
			f := e.ASICFreqMHz()
			if f < 450 || f > 600 {
				t.Errorf("%s %d/%d: ASIC projection %.0f MHz, want ~500", v, pub.Cells, pub.BlockSize, f)
			}
		}
	}
}

func TestUnprototypedGeometry(t *testing.T) {
	// The estimator extrapolates to geometries the paper did not build
	// without producing nonsense.
	e := PrototypeParams(alpu.PostedReceives, 512, 16).Estimate()
	if e.FFs <= 0 || e.LUTs <= 0 || e.Slices <= 0 || e.FreqMHz <= 0 {
		t.Fatalf("bad estimate %+v", e)
	}
	ref := PrototypeParams(alpu.PostedReceives, 256, 16).Estimate()
	if e.FFs < 2*ref.FFs-200 {
		t.Errorf("512-cell FFs %d not ~2x the 256-cell %d", e.FFs, ref.FFs)
	}
	if e.LatencyCycles != 7 {
		t.Errorf("512/16 latency = %d, want 7 (32 blocks)", e.LatencyCycles)
	}
}
