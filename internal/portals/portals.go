// Package portals implements a Portals-3.0-style matching layer — the
// protocol building blocks the paper's NIC environment comes from
// (Red Storm implements Portals, §II; refs [17], [22], [23]) and the
// reason the ALPU carries "a mask bit for every match bit": §III-A sizes
// the cell "to a full width mask as is needed by the Portals interface",
// and footnote 7 calls that configuration the worst case that "supports
// protocols beyond MPI, such as Portals".
//
// The model covers the matching-relevant core of Portals: portal table
// indices holding ordered match lists; match entries with 64-bit match
// bits and ignore bits; use-once vs persistent entries; memory
// descriptors with managed offsets and truncation; event queues with put,
// unlink and drop events. Put processing walks the list in attach order
// and the first entry whose (bits, ~ignore) agree with the incoming bits
// wins — the same first-posted-wins discipline as MPI, over the full
// 64-bit field.
package portals

import (
	"fmt"

	"alpusim/internal/match"
	"alpusim/internal/sim"
)

// MatchBits is the full-width Portals matching field.
type MatchBits = match.Bits

// FullWidth compares all 64 bits (Ignore = 0).
const FullWidth = ^match.Bits(0)

// EventKind enumerates the delivered event types.
type EventKind int

const (
	// EventPut: an incoming put consumed (part of) a match entry.
	EventPut EventKind = iota
	// EventPutOverflow: a put matched but was truncated to the MD's
	// remaining space.
	EventPutOverflow
	// EventUnlink: a match entry left the list (use-once consumption or
	// explicit unlink).
	EventUnlink
	// EventDropped: a put matched nothing and was dropped.
	EventDropped
)

func (k EventKind) String() string {
	switch k {
	case EventPut:
		return "PUT"
	case EventPutOverflow:
		return "PUT_OVERFLOW"
	case EventUnlink:
		return "UNLINK"
	case EventDropped:
		return "DROPPED"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one event-queue record.
type Event struct {
	Kind    EventKind
	Bits    MatchBits
	RLength int // requested length
	MLength int // manipulated (actually deposited) length
	Offset  int // offset within the MD at which the deposit landed
	ME      *MatchEntry
	At      sim.Time
}

// EventQueue collects events in delivery order.
type EventQueue struct {
	events []Event
	// Dropped counts events lost to a full queue when Cap > 0.
	Cap     int
	Dropped int
}

// Push appends an event (dropping when over capacity, as Portals EQs do).
func (q *EventQueue) Push(ev Event) {
	if q.Cap > 0 && len(q.events) >= q.Cap {
		q.Dropped++
		return
	}
	q.events = append(q.events, ev)
}

// Poll removes and returns the oldest event.
func (q *EventQueue) Poll() (Event, bool) {
	if len(q.events) == 0 {
		return Event{}, false
	}
	ev := q.events[0]
	q.events = q.events[1:]
	return ev, true
}

// Len returns the number of queued events.
func (q *EventQueue) Len() int { return len(q.events) }

// MemDesc is a memory descriptor: a landing region with an optionally
// managed local offset.
type MemDesc struct {
	Length        int
	ManagedOffset bool
	// used is the managed offset high-water mark.
	used int
	EQ   *EventQueue
}

// Remaining returns the space left under managed offset.
func (md *MemDesc) Remaining() int { return md.Length - md.used }

// MatchEntry is one element of a portal index's match list.
type MatchEntry struct {
	Match  MatchBits
	Ignore MatchBits // set bits are "don't care"
	// UseOnce unlinks the entry when it matches (MPI-style turnover —
	// what the ALPU's delete-on-match implements in hardware). Persistent
	// entries stay linked and absorb any number of puts.
	UseOnce bool
	MD      *MemDesc

	// Stats.
	Matches int
}

// mask returns the compare mask (care bits).
func (me *MatchEntry) maskBits() match.Bits { return ^me.Ignore }

// matches reports whether incoming bits select this entry.
func (me *MatchEntry) matches(bits MatchBits) bool {
	return match.Matches(me.Match, me.maskBits(), bits, FullWidth)
}

// Put describes one incoming put operation's matching-relevant fields.
type Put struct {
	Bits   MatchBits
	Length int
}

// Table is one portal index: an ordered match list with Portals put
// semantics. It is the pure functional core; AccelTable layers the ALPU
// on top and is property-tested against this.
type Table struct {
	entries []*MatchEntry

	// Stats.
	Puts      uint64
	Drops     uint64
	Traversed uint64 // entries examined across all puts
}

// Attach appends a match entry at the end of the list (lowest priority),
// as PtlMEAttach with PTL_INS_AFTER does.
func (t *Table) Attach(me *MatchEntry) {
	t.entries = append(t.entries, me)
}

// Len returns the list length.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns the current list, oldest first (for tests).
func (t *Table) Entries() []*MatchEntry { return t.entries }

// Unlink removes an entry explicitly.
func (t *Table) Unlink(me *MatchEntry) bool {
	for i, e := range t.entries {
		if e == me {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return true
		}
	}
	return false
}

// ProcessPut walks the list for an incoming put, applies MD semantics
// (managed offset, truncation), fires events, and unlinks use-once
// entries. It returns the matched entry, or nil when dropped.
func (t *Table) ProcessPut(p Put, now sim.Time) *MatchEntry {
	t.Puts++
	for i, me := range t.entries {
		t.Traversed++
		if !me.matches(p.Bits) {
			continue
		}
		t.consume(me, i, p, now)
		return me
	}
	t.Drops++
	t.event(nil, Event{Kind: EventDropped, Bits: p.Bits, RLength: p.Length, At: now})
	return nil
}

// consume applies the MD bookkeeping for a matched put.
func (t *Table) consume(me *MatchEntry, idx int, p Put, now sim.Time) {
	me.Matches++
	ev := Event{Kind: EventPut, Bits: p.Bits, RLength: p.Length, MLength: p.Length, ME: me, At: now}
	if md := me.MD; md != nil {
		if md.ManagedOffset {
			ev.Offset = md.used
			if p.Length > md.Remaining() {
				ev.MLength = md.Remaining()
				ev.Kind = EventPutOverflow
			}
			md.used += ev.MLength
		} else if p.Length > md.Length {
			ev.MLength = md.Length
			ev.Kind = EventPutOverflow
		}
	}
	t.event(me, ev)
	if me.UseOnce || (me.MD != nil && me.MD.ManagedOffset && me.MD.Remaining() == 0) {
		t.entries = append(t.entries[:idx], t.entries[idx+1:]...)
		t.event(me, Event{Kind: EventUnlink, ME: me, At: now})
	}
}

func (t *Table) event(me *MatchEntry, ev Event) {
	if me != nil && me.MD != nil && me.MD.EQ != nil {
		me.MD.EQ.Push(ev)
		return
	}
	// Dropped puts have no ME; they are visible through Drops only in
	// this model (Portals would deliver them to the portal's default EQ).
}
