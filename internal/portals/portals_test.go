package portals

import (
	"math/rand"
	"testing"
	"testing/quick"

	"alpusim/internal/match"
)

func bitsOf(v uint64) MatchBits { return MatchBits(v) }

func TestMatchEntryWideMask(t *testing.T) {
	me := &MatchEntry{
		Match:  bitsOf(0xDEAD_BEEF_0000_1234),
		Ignore: bitsOf(0x0000_0000_FFFF_0000), // middle field wildcarded
	}
	if !me.matches(bitsOf(0xDEAD_BEEF_0000_1234)) {
		t.Fatal("exact bits did not match")
	}
	if !me.matches(bitsOf(0xDEAD_BEEF_ABCD_1234)) {
		t.Fatal("ignored-field variation did not match")
	}
	if me.matches(bitsOf(0xDEAD_BEEF_0000_1235)) {
		t.Fatal("cared-field variation matched")
	}
	// Unlike MPI's three fields, the wildcard sits mid-word: the §II
	// argument for why LPM-style structures cannot express this.
	if me.matches(bitsOf(0x0EAD_BEEF_0000_1234)) {
		t.Fatal("high cared bits ignored")
	}
}

func TestTableFirstAttachedWins(t *testing.T) {
	var tab Table
	a := &MatchEntry{Match: 5, Ignore: 0, UseOnce: true}
	b := &MatchEntry{Match: 5, Ignore: 0, UseOnce: true}
	tab.Attach(a)
	tab.Attach(b)
	if got := tab.ProcessPut(Put{Bits: 5}, 0); got != a {
		t.Fatal("second-attached entry matched first")
	}
	if got := tab.ProcessPut(Put{Bits: 5}, 0); got != b {
		t.Fatal("use-once entry not unlinked")
	}
	if got := tab.ProcessPut(Put{Bits: 5}, 0); got != nil {
		t.Fatal("empty list matched")
	}
	if tab.Drops != 1 {
		t.Errorf("Drops = %d, want 1", tab.Drops)
	}
}

func TestPersistentEntryAbsorbsPuts(t *testing.T) {
	var tab Table
	me := &MatchEntry{Match: 7, UseOnce: false}
	tab.Attach(me)
	for i := 0; i < 5; i++ {
		if tab.ProcessPut(Put{Bits: 7}, 0) != me {
			t.Fatalf("put %d missed the persistent entry", i)
		}
	}
	if me.Matches != 5 || tab.Len() != 1 {
		t.Fatalf("Matches=%d Len=%d", me.Matches, tab.Len())
	}
}

func TestManagedOffsetAndTruncation(t *testing.T) {
	eq := &EventQueue{}
	md := &MemDesc{Length: 100, ManagedOffset: true, EQ: eq}
	me := &MatchEntry{Match: 1, MD: md}
	var tab Table
	tab.Attach(me)

	tab.ProcessPut(Put{Bits: 1, Length: 60}, 0)
	ev, _ := eq.Poll()
	if ev.Kind != EventPut || ev.Offset != 0 || ev.MLength != 60 {
		t.Fatalf("first put event %+v", ev)
	}
	// Second put truncates to the remaining 40 bytes and exhausts the MD,
	// unlinking the entry.
	tab.ProcessPut(Put{Bits: 1, Length: 60}, 0)
	ev, _ = eq.Poll()
	if ev.Kind != EventPutOverflow || ev.Offset != 60 || ev.MLength != 40 {
		t.Fatalf("second put event %+v", ev)
	}
	ev, ok := eq.Poll()
	if !ok || ev.Kind != EventUnlink {
		t.Fatalf("expected unlink event, got %+v ok=%v", ev, ok)
	}
	if tab.Len() != 0 {
		t.Fatal("exhausted MD entry still linked")
	}
}

func TestEventQueueCapacity(t *testing.T) {
	eq := &EventQueue{Cap: 2}
	for i := 0; i < 5; i++ {
		eq.Push(Event{Kind: EventPut})
	}
	if eq.Len() != 2 || eq.Dropped != 3 {
		t.Fatalf("Len=%d Dropped=%d", eq.Len(), eq.Dropped)
	}
}

func TestExplicitUnlink(t *testing.T) {
	var tab Table
	a := &MatchEntry{Match: 1, UseOnce: true}
	tab.Attach(a)
	if !tab.Unlink(a) {
		t.Fatal("Unlink failed")
	}
	if tab.Unlink(a) {
		t.Fatal("double Unlink succeeded")
	}
}

// meSpec is a reproducible match-entry recipe shared between the plain
// and accelerated tables in the equivalence tests.
type meSpec struct {
	match   uint64
	ignore  uint64
	useOnce bool
	managed bool
}

func buildME(s meSpec) *MatchEntry {
	me := &MatchEntry{Match: bitsOf(s.match), Ignore: bitsOf(s.ignore), UseOnce: s.useOnce}
	if s.managed {
		me.MD = &MemDesc{Length: 256, ManagedOffset: true}
	}
	return me
}

// Property: AccelTable produces the same match sequence, drop count and
// final list as the functional Table, for random workloads mixing
// use-once, persistent, and managed-offset entries with wide wildcards.
func TestAccelEquivalentToTable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var plain Table
		accel := NewAccelTable(16) // small unit to force fencing + overflow

		var plainMEs, accelMEs []*MatchEntry
		attach := func() {
			s := meSpec{
				match:   uint64(rng.Intn(4)),
				useOnce: rng.Intn(3) != 0,
				managed: rng.Intn(8) == 0,
			}
			if rng.Intn(4) == 0 {
				s.ignore = 3 // wildcard the low field
			}
			pm, am := buildME(s), buildME(s)
			plain.Attach(pm)
			accel.Attach(am)
			plainMEs = append(plainMEs, pm)
			accelMEs = append(accelMEs, am)
		}
		idOf := func(me *MatchEntry, list []*MatchEntry) int {
			for i, x := range list {
				if x == me {
					return i
				}
			}
			return -1
		}

		for op := 0; op < 60; op++ {
			if rng.Intn(2) == 0 {
				attach()
				continue
			}
			p := Put{Bits: bitsOf(uint64(rng.Intn(4))), Length: rng.Intn(300)}
			pg := plain.ProcessPut(p, 0)
			ag := accel.ProcessPut(p, 0)
			if (pg == nil) != (ag == nil) {
				return false
			}
			if pg != nil && idOf(pg, plainMEs) != idOf(ag, accelMEs) {
				return false
			}
		}
		if plain.Len() != accel.Len() || plain.Drops != accel.table.Drops {
			return false
		}
		// Final list identity order must agree.
		for i := range plain.entries {
			if idOf(plain.entries[i], plainMEs) != idOf(accel.table.entries[i], accelMEs) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAccelFencePersistentEntries(t *testing.T) {
	accel := NewAccelTable(64)
	accel.Attach(&MatchEntry{Match: 1, UseOnce: true})
	accel.Attach(&MatchEntry{Match: 2, UseOnce: true})
	accel.Attach(&MatchEntry{Match: 3, UseOnce: false}) // persistent: fence
	accel.Attach(&MatchEntry{Match: 4, UseOnce: true})  // behind the fence
	if accel.InALPU() != 2 {
		t.Fatalf("InALPU = %d, want 2 (fenced at the persistent entry)", accel.InALPU())
	}
	// Puts behind the fence still work, via the software suffix.
	if me := accel.ProcessPut(Put{Bits: 4}, 0); me == nil || me.Match != 4 {
		t.Fatal("suffix put failed")
	}
	// Consuming the prefix, then the persistent entry still fences.
	accel.ProcessPut(Put{Bits: 1}, 0)
	accel.ProcessPut(Put{Bits: 2}, 0)
	if accel.InALPU() != 0 {
		t.Fatalf("InALPU = %d after prefix drained, want 0", accel.InALPU())
	}
	if me := accel.ProcessPut(Put{Bits: 3}, 0); me == nil {
		t.Fatal("persistent entry missed")
	}
}

func TestAccelHitsAndDeviceTime(t *testing.T) {
	accel := NewAccelTable(64)
	for i := 0; i < 32; i++ {
		accel.Attach(&MatchEntry{Match: bitsOf(uint64(i)), UseOnce: true})
	}
	for i := 0; i < 32; i++ {
		if accel.ProcessPut(Put{Bits: bitsOf(uint64(i))}, 0) == nil {
			t.Fatalf("put %d missed", i)
		}
	}
	if accel.Hits != 32 {
		t.Errorf("Hits = %d, want 32", accel.Hits)
	}
	if accel.DeviceTime <= 0 {
		t.Error("no device time accumulated")
	}
	_, drops, traversed := accel.Stats()
	if drops != 0 {
		t.Errorf("drops = %d", drops)
	}
	if traversed != 0 {
		t.Errorf("traversed = %d, want 0 (all hits served by the unit)", traversed)
	}
}

func TestAccelUnlinkUnshadowedPrefixEntry(t *testing.T) {
	accel := NewAccelTable(64)
	a := &MatchEntry{Match: 10, UseOnce: true}
	b := &MatchEntry{Match: 20, UseOnce: true}
	accel.Attach(a)
	accel.Attach(b)
	if !accel.Unlink(a) {
		t.Fatal("Unlink(a) failed")
	}
	if accel.Len() != 1 || accel.InALPU() != 1 {
		t.Fatalf("Len=%d InALPU=%d after unlink", accel.Len(), accel.InALPU())
	}
	// b must still be matchable.
	if accel.ProcessPut(Put{Bits: 20}, 0) != b {
		t.Fatal("b lost after unlinking a")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventPut: "PUT", EventPutOverflow: "PUT_OVERFLOW",
		EventUnlink: "UNLINK", EventDropped: "DROPPED",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

// The full-width configuration exercises masks the MPI triple never
// produces; cross-check the underlying matcher on raw 64-bit patterns.
func TestWideMaskMatchesProperty(t *testing.T) {
	f := func(bits, ignore, probe uint64) bool {
		me := &MatchEntry{Match: bitsOf(bits), Ignore: bitsOf(ignore)}
		want := (bits^probe)&^ignore == 0
		return me.matches(bitsOf(probe)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Regression: the unit must compare ALL 64 bits for Portals entries —
// entries that differ only above MPI's 42-bit field must not cross-match.
func TestAccelHighBitsDiscriminate(t *testing.T) {
	accel := NewAccelTable(32)
	a := &MatchEntry{Match: bitsOf(1 << 60), UseOnce: true}
	b := &MatchEntry{Match: bitsOf(1 << 61), UseOnce: true}
	accel.Attach(a)
	accel.Attach(b)
	if got := accel.ProcessPut(Put{Bits: bitsOf(1 << 61)}, 0); got != b {
		t.Fatalf("high-bit probe matched the wrong entry (%v)", got)
	}
	if got := accel.ProcessPut(Put{Bits: bitsOf(1 << 62)}, 0); got != nil {
		t.Fatal("unrelated high-bit probe matched")
	}
	if got := accel.ProcessPut(Put{Bits: bitsOf(1 << 60)}, 0); got != a {
		t.Fatal("remaining high-bit entry missed")
	}
}

var _ = match.FullMask // keep the import meaningful if helpers change
