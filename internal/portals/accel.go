package portals

import (
	"fmt"

	"alpusim/internal/alpu"
	"alpusim/internal/sim"
)

// AccelTable is a portal index whose match list is fronted by an ALPU in
// the §III-A full-width-mask configuration (mask bit per match bit —
// footnote 7's worst case, which is exactly what Portals needs).
//
// Hardware constraint, and the reason the paper pitches the ALPU at MPI's
// "high list entry turnover": the unit deletes on match, which implements
// use-once semantics natively. Persistent match entries cannot live in
// the unit — a persistent entry therefore fences ALPU insertion: the unit
// only ever holds the maximal use-once prefix of the list that precedes
// the first persistent entry, and everything from that entry on is
// searched in software. This preserves Portals' first-attached-wins
// ordering in all cases.
type AccelTable struct {
	table Table // the software copy (the §IV-B shadow list)

	eng     *sim.Engine
	dev     *alpu.Device
	inALPU  int
	tags    map[uint32]*MatchEntry
	nextTag uint32
	seq     uint64

	// Stats.
	Hits, Misses uint64
	// DeviceTime accumulates simulated device/interface time across
	// operations, for the acceleration benches.
	DeviceTime sim.Time
}

// NewAccelTable builds an accelerated portal index with the given unit
// capacity.
func NewAccelTable(cells int) *AccelTable {
	eng := sim.NewEngine()
	cfg := alpu.DefaultConfig(alpu.PostedReceives, cells) // stored-mask cell variant
	t := &AccelTable{
		eng:  eng,
		dev:  alpu.MustDevice(eng, "portals-alpu", cfg),
		tags: make(map[uint32]*MatchEntry),
	}
	return t
}

// Len returns the list length.
func (t *AccelTable) Len() int { return t.table.Len() }

// InALPU reports how many entries the unit currently holds (tests).
func (t *AccelTable) InALPU() int { return t.inALPU }

// Attach appends a match entry and, when the insertion fence allows,
// loads it into the unit.
func (t *AccelTable) Attach(me *MatchEntry) {
	t.table.Attach(me)
	t.update()
}

// update performs the insert episode for any eligible suffix: entries are
// loaded in order until the first persistent entry or the unit is full.
func (t *AccelTable) update() {
	var toInsert []*MatchEntry
	for i := t.inALPU; i < t.table.Len(); i++ {
		me := t.table.entries[i]
		if !me.UseOnce || (me.MD != nil && me.MD.ManagedOffset) {
			break // fence: not representable as delete-on-match
		}
		toInsert = append(toInsert, me)
	}
	if len(toInsert) == 0 {
		return
	}
	start := t.eng.Now()
	done := false
	t.eng.Spawn("attach", func(p *sim.Process) {
		defer func() { done = true }()
		t.dev.PushCommand(alpu.Command{Op: alpu.OpStartInsert})
		r := t.waitResult(p)
		if r.Kind != alpu.RespStartAck {
			panic(fmt.Sprintf("portals: expected ack, got %v", r.Kind))
		}
		n := len(toInsert)
		if n > r.Free {
			n = r.Free
		}
		for _, me := range toInsert[:n] {
			tag := t.allocTag(me)
			t.dev.PushCommand(alpu.Command{Op: alpu.OpInsert, Bits: me.Match, Mask: ^me.Ignore, Tag: tag})
		}
		t.dev.PushCommand(alpu.Command{Op: alpu.OpStopInsert})
		t.inALPU += n
		// Quiesce: let the unit drain and compact.
		for t.dev.InsertMode() || t.dev.Commands.Len() > 0 {
			p.Sleep(10 * sim.Nanosecond)
		}
	})
	t.eng.Run()
	if !done {
		panic("portals: attach episode did not complete")
	}
	t.DeviceTime += t.eng.Now() - start
}

// ProcessPut matches an incoming put through the unit first and falls
// back to the software suffix, with identical semantics to Table.
func (t *AccelTable) ProcessPut(p Put, now sim.Time) *MatchEntry {
	t.table.Puts++
	start := t.eng.Now()
	var resp alpu.Response
	got := false
	t.eng.Spawn("put", func(pr *sim.Process) {
		t.seq++
		t.dev.PushProbe(alpu.Probe{Bits: p.Bits, Meta: t.seq})
		resp = t.waitResult(pr)
		got = true
	})
	t.eng.Run()
	if !got {
		panic("portals: put probe produced no result")
	}
	t.DeviceTime += t.eng.Now() - start

	if resp.Kind == alpu.RespMatchSuccess {
		t.Hits++
		me := t.tags[resp.Tag]
		if me == nil {
			panic(fmt.Sprintf("portals: unit returned unknown tag %d", resp.Tag))
		}
		delete(t.tags, resp.Tag)
		idx := t.indexOf(me)
		if idx < 0 || idx >= t.inALPU {
			panic("portals: unit matched an entry outside its prefix")
		}
		// The unit already deleted its copy (use-once); mirror it.
		t.inALPU--
		t.table.consume(me, idx, p, now)
		t.update()
		return me
	}

	t.Misses++
	// Software search of the fenced suffix.
	for i := t.inALPU; i < t.table.Len(); i++ {
		me := t.table.entries[i]
		t.table.Traversed++
		if !me.matches(p.Bits) {
			continue
		}
		wasLen := t.table.Len()
		t.table.consume(me, i, p, now)
		if t.table.Len() != wasLen {
			// The entry unlinked (use-once or exhausted MD); the fence may
			// have moved.
			t.update()
		}
		return me
	}
	t.table.Drops++
	t.table.event(nil, Event{Kind: EventDropped, Bits: p.Bits, RLength: p.Length, At: now})
	return nil
}

// Unlink removes an entry explicitly. Entries inside the unit cannot be
// removed by command (Table I has no DELETE), so the firmware purges them
// with an exact self-probe, as the NIC firmware does for the §IV-C race.
func (t *AccelTable) Unlink(me *MatchEntry) bool {
	idx := t.indexOf(me)
	if idx < 0 {
		return false
	}
	if idx < t.inALPU {
		// Purge probe: within the prefix, the first entry matching this
		// entry's own pattern could be an earlier entry; walk candidates
		// until the right one is consumed, reinserting innocents.
		t.purge(me)
		t.inALPU--
	}
	ok := t.table.Unlink(me)
	t.update()
	return ok
}

// purge consumes entries matching me.Match until me itself comes out,
// reinserting any earlier entries that were consumed collaterally (their
// relative order among themselves is preserved by reinsertion fences —
// they go back through Attach-order at the tail of the unit's content,
// which is only safe when no other matching entries sit between; the
// model asserts the common case and panics otherwise, documenting the
// hardware's lack of random delete).
func (t *AccelTable) purge(me *MatchEntry) {
	for guard := 0; guard < t.inALPU+1; guard++ {
		var resp alpu.Response
		t.eng.Spawn("purge", func(pr *sim.Process) {
			t.seq++
			t.dev.PushProbe(alpu.Probe{Bits: me.Match, Mask: ^me.Ignore, Meta: t.seq})
			resp = t.waitResult(pr)
		})
		t.eng.Run()
		if resp.Kind != alpu.RespMatchSuccess {
			panic("portals: purge probe found nothing")
		}
		victim := t.tags[resp.Tag]
		delete(t.tags, resp.Tag)
		if victim == me {
			return
		}
		panic("portals: explicit unlink of a shadowed entry is not supported by the hardware")
	}
}

func (t *AccelTable) indexOf(me *MatchEntry) int {
	for i, e := range t.table.entries {
		if e == me {
			return i
		}
	}
	return -1
}

func (t *AccelTable) allocTag(me *MatchEntry) uint32 {
	for {
		t.nextTag = (t.nextTag + 1) & 0xffff
		if _, used := t.tags[t.nextTag]; !used {
			t.tags[t.nextTag] = me
			return t.nextTag
		}
	}
}

func (t *AccelTable) waitResult(p *sim.Process) alpu.Response {
	p.WaitCond(t.dev.Results.NotEmpty, func() bool { return t.dev.Results.Len() > 0 })
	r, _ := t.dev.Results.Pop()
	return r
}

// Stats proxies the software copy's counters.
func (t *AccelTable) Stats() (puts, drops, traversed uint64) {
	return t.table.Puts, t.table.Drops, t.table.Traversed
}

// EntriesLen mirrors Table.Len for interface parity in tests.
func (t *AccelTable) Entries() []*MatchEntry { return t.table.entries }
