// Package proc provides the embedded-processor timing engine that replaces
// SimpleScalar sim-outorder in the paper's methodology (§V-B): firmware and
// host library code are written as Go functions against an Engine that
// charges issue cycles and routes loads/stores through the cache/DRAM
// models, calibrated to the paper's measured per-entry costs. DESIGN.md §2
// documents the substitution.
package proc

import (
	"alpusim/internal/memsys"
	"alpusim/internal/params"
	"alpusim/internal/sim"
)

// Engine charges simulated time to a sim.Process according to a processor
// model. All methods must be called from inside the bound process.
type Engine struct {
	P   *sim.Process
	CPU params.CPU
	Mem *memsys.Hierarchy

	// Stats.
	busy      sim.Time
	loads     uint64
	stores    uint64
	l1Misses  uint64
	cyclesRun int64
}

// New binds a timing engine to a process.
func New(p *sim.Process, cpu params.CPU, mem *memsys.Hierarchy) *Engine {
	return &Engine{P: p, CPU: cpu, Mem: mem}
}

// Now returns the current simulated time.
func (e *Engine) Now() sim.Time { return e.P.Now() }

// Cycles charges n processor cycles of computation.
func (e *Engine) Cycles(n int64) {
	if n <= 0 {
		return
	}
	d := e.CPU.Clock.Cycles(n)
	e.busy += d
	e.cyclesRun += n
	e.P.Sleep(d)
}

// Load charges a read of size bytes at addr.
func (e *Engine) Load(addr uint64, size int) memsys.Access {
	a := e.Mem.Read(e.Now(), addr, size)
	e.loads++
	e.l1Misses += uint64(a.Misses)
	e.busy += a.Latency
	e.P.Sleep(a.Latency)
	return a
}

// Store charges a write of size bytes at addr.
func (e *Engine) Store(addr uint64, size int) memsys.Access {
	a := e.Mem.Write(e.Now(), addr, size)
	e.stores++
	e.l1Misses += uint64(a.Misses)
	e.busy += a.Latency
	e.P.Sleep(a.Latency)
	return a
}

// LoadOverlapped models an out-of-order core executing computeCycles of
// independent work while a load of size bytes at addr is outstanding: the
// charge is compute+hit-latency when the load hits in L1, and
// max(compute, miss-latency) when it misses. This is what keeps the
// baseline's out-of-cache per-entry traversal cost near the paper's ~64 ns
// rather than a fully serialised compute+miss sum.
func (e *Engine) LoadOverlapped(addr uint64, size int, computeCycles int64) memsys.Access {
	a := e.Mem.Read(e.Now(), addr, size)
	e.loads++
	e.l1Misses += uint64(a.Misses)
	compute := e.CPU.Clock.Cycles(computeCycles)
	d := compute + a.Latency
	if !a.L1Hit && a.Latency > compute {
		d = a.Latency
	}
	e.busy += d
	e.cyclesRun += computeCycles
	e.P.Sleep(d)
	return a
}

// Prefetch updates memory state for [addr, addr+size) with no latency
// charge — lines brought in under an outstanding miss (see
// memsys.Hierarchy.Prefetch).
func (e *Engine) Prefetch(addr uint64, size int, write bool) {
	e.Mem.Prefetch(e.Now(), addr, size, write)
}

// BusTransaction charges one transaction on the NIC local bus: the fixed
// 20 ns bus delay (§V-B) plus cycles of processor work to issue it.
func (e *Engine) BusTransaction(cycles int64) {
	e.Cycles(cycles)
	e.busy += params.NICBusDelay
	e.P.Sleep(params.NICBusDelay)
}

// BusyTime reports the cumulative time this engine has charged.
func (e *Engine) BusyTime() sim.Time { return e.busy }

// Loads reports the number of Load/LoadOverlapped calls.
func (e *Engine) Loads() uint64 { return e.loads }

// Stores reports the number of Store calls.
func (e *Engine) Stores() uint64 { return e.stores }

// L1Misses reports demand misses charged so far.
func (e *Engine) L1Misses() uint64 { return e.l1Misses }

// CyclesRun reports total compute cycles charged.
func (e *Engine) CyclesRun() int64 { return e.cyclesRun }
