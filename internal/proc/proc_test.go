package proc

import (
	"testing"

	"alpusim/internal/dram"
	"alpusim/internal/memsys"
	"alpusim/internal/params"
	"alpusim/internal/sim"
)

func run(t *testing.T, fn func(e *Engine)) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	cpu := params.NICCPU()
	mem := memsys.New(cpu, dram.New(dram.DefaultConfig()))
	var elapsed sim.Time
	eng.Spawn("fw", func(p *sim.Process) {
		e := New(p, cpu, mem)
		start := p.Now()
		fn(e)
		elapsed = p.Now() - start
	})
	eng.Run()
	return elapsed
}

func TestCyclesCharge(t *testing.T) {
	got := run(t, func(e *Engine) { e.Cycles(10) })
	if got != 20*sim.Nanosecond {
		t.Fatalf("10 cycles at 500MHz = %v, want 20ns", got)
	}
}

func TestCyclesZeroFree(t *testing.T) {
	got := run(t, func(e *Engine) {
		e.Cycles(0)
		e.Cycles(-5)
	})
	if got != 0 {
		t.Fatalf("zero/negative cycles charged %v", got)
	}
}

func TestLoadHitVsMiss(t *testing.T) {
	var cold, warm sim.Time
	run(t, func(e *Engine) {
		t0 := e.Now()
		e.Load(0x1000, 4)
		cold = e.Now() - t0
		t0 = e.Now()
		e.Load(0x1000, 4)
		warm = e.Now() - t0
	})
	if warm != 2*sim.Nanosecond {
		t.Fatalf("warm load = %v, want 2ns (1 cycle)", warm)
	}
	if cold <= warm {
		t.Fatalf("cold load %v not slower than warm %v", cold, warm)
	}
}

func TestLoadOverlappedHidesComputeUnderMiss(t *testing.T) {
	var miss, hit sim.Time
	run(t, func(e *Engine) {
		t0 := e.Now()
		e.LoadOverlapped(0x2000, 4, params.TraverseCyclesPerEntry) // cold
		miss = e.Now() - t0
		t0 = e.Now()
		e.LoadOverlapped(0x2000, 4, params.TraverseCyclesPerEntry) // warm
		hit = e.Now() - t0
	})
	// Warm: compute (12ns) + hit (2ns) = 14ns ~ the paper's 15 ns/entry.
	if hit != 14*sim.Nanosecond {
		t.Fatalf("warm overlapped entry = %v, want 14ns", hit)
	}
	// Cold: miss latency dominates, compute hidden: ~60-90ns (~64 paper).
	if miss < 55*sim.Nanosecond || miss > 95*sim.Nanosecond {
		t.Fatalf("cold overlapped entry = %v, want ~60-90ns", miss)
	}
}

func TestBusTransaction(t *testing.T) {
	got := run(t, func(e *Engine) { e.BusTransaction(params.ALPUCommandCycles) })
	want := params.NICBusDelay + params.NICCPU().Clock.Cycles(params.ALPUCommandCycles)
	if got != want {
		t.Fatalf("bus transaction = %v, want %v", got, want)
	}
}

func TestStats(t *testing.T) {
	run(t, func(e *Engine) {
		e.Cycles(5)
		e.Load(0, 4)
		e.Store(0x100, 4)
		e.LoadOverlapped(0x200, 4, 3)
		if e.Loads() != 2 || e.Stores() != 1 {
			t.Errorf("Loads=%d Stores=%d, want 2,1", e.Loads(), e.Stores())
		}
		if e.CyclesRun() != 8 {
			t.Errorf("CyclesRun=%d, want 8", e.CyclesRun())
		}
		if e.L1Misses() != 3 {
			t.Errorf("L1Misses=%d, want 3 (all cold)", e.L1Misses())
		}
		if e.BusyTime() != e.Now() {
			t.Errorf("BusyTime=%v Now=%v: engine was never idle", e.BusyTime(), e.Now())
		}
	})
}

func TestTwoEnginesShareDRAM(t *testing.T) {
	eng := sim.NewEngine()
	d := dram.New(dram.DefaultConfig())
	nicMem := memsys.New(params.NICCPU(), d)
	hostMem := memsys.New(params.HostCPU(), d)
	done := 0
	eng.Spawn("nic", func(p *sim.Process) {
		e := New(p, params.NICCPU(), nicMem)
		for i := 0; i < 100; i++ {
			e.Load(uint64(i*32), 4)
		}
		done++
	})
	eng.Spawn("host", func(p *sim.Process) {
		e := New(p, params.HostCPU(), hostMem)
		for i := 0; i < 100; i++ {
			e.Load(uint64(0x80000+i*64), 4)
		}
		done++
	})
	eng.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if d.Accesses() == 0 {
		t.Fatal("shared DRAM saw no traffic")
	}
}
