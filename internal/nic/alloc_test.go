package nic

import "testing"

func TestAddrAllocBumpAndReuse(t *testing.T) {
	a := addrAlloc{next: 0x1000, size: 128}
	a1 := a.get()
	a2 := a.get()
	if a1 != 0x1000 || a2 != 0x1080 {
		t.Fatalf("bump allocation gave %#x, %#x", a1, a2)
	}
	a.put(a1)
	// LIFO reuse: the hottest address comes back first.
	if got := a.get(); got != a1 {
		t.Fatalf("reuse gave %#x, want %#x", got, a1)
	}
	if got := a.get(); got != 0x1100 {
		t.Fatalf("post-reuse bump gave %#x, want 0x1100", got)
	}
}

func TestMutuallyExclusiveConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UseALPU+UseHashList did not panic")
		}
	}()
	New(nil, Config{UseALPU: true, UseHashList: true}, nil)
}
