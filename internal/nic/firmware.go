package nic

import (
	"fmt"

	"alpusim/internal/alpu"
	"alpusim/internal/match"
	"alpusim/internal/network"
	"alpusim/internal/params"
	"alpusim/internal/proc"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

// firmware is the NIC processor's supervisor: it runs the §V-C main loop
// and, when crash injection unwinds it, models the embedded processor
// rebooting — a restart delay, then device state replay from the shadow
// queues before the loop resumes. No queued work is lost across a crash
// (injection fires before anything is popped).
func (n *NIC) firmware(p *sim.Process) {
	for n.fwSession(p) {
		p.Sleep(n.fwRestartDelay())
		n.recoverFirmware()
	}
}

// fwSession is the NIC processor's main loop (§V-C): check the network
// for incoming messages, check for new host requests, and update the
// ALPUs, repeatedly. All costs are charged through the proc.Engine, so
// list traversals exercise the cache/DRAM model. Returns true only when
// an injected FirmwareCrash unwound the loop; any other panic propagates.
func (n *NIC) fwSession(p *sim.Process) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*FirmwareCrash); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	e := proc.New(p, n.cpu, n.mem)
	for {
		n.maintainDevices(e)
		if n.fab != nil {
			n.fabricMaintain()
		}
		if n.crashRng != nil && (n.ep.RxQ.Len() > 0 || n.HostQ.Len() > 0) {
			n.maybeCrash()
		}
		if pkt, ok := n.ep.RxQ.Pop(); ok {
			n.handlePacket(e, pkt)
			continue
		}
		if req, ok := n.HostQ.Pop(); ok {
			n.handleHostReq(e, req)
			continue
		}
		if n.updateALPUs(e) {
			continue
		}
		p.WaitCond(n.kick, func() bool {
			return n.ep.RxQ.Len() > 0 || n.HostQ.Len() > 0
		})
		// The polling iteration that discovers the new work.
		e.Cycles(params.PollIterationCycles)
	}
}

// handlePacket processes one incoming network packet.
func (n *NIC) handlePacket(e *proc.Engine, pkt network.Packet) {
	n.stats.PacketsHandled++
	if n.tracer != nil {
		start := e.Now()
		defer func() {
			n.tracer.Span(n.cfg.ID, tidFirmware, "fw", "pkt "+pkt.Kind.String(), start, e.Now())
		}()
	}
	switch pkt.Kind {
	case network.Eager, network.RTS:
		key := uint64(match.Pack(pkt.Hdr))
		if n.phases != nil {
			n.phases.Stamp(key, telemetry.StampFwPop, e.Now())
		}
		n.causal.Stamp(key, telemetry.StampFwPop, e.Now())
		if n.tracer != nil {
			// Terminate the cross-rank flow arrow started at the sender's
			// firmware (the flow id is the packed envelope, globally unique).
			n.tracer.FlowEnd(n.cfg.ID, tidFirmware, "mpi", "msg", e.Now(), key)
		}
		if n.admittedHdrs > 0 {
			// This header no longer counts against the reliability engine's
			// unexpected-queue admission bound: from here it either matches
			// or joins the queue itself.
			n.admittedHdrs--
		}
		e.Cycles(params.HeaderProcessCycles)
		searchT0, faults0 := e.Now(), n.faultEvents
		entry, mq := n.matchPosted(e, pkt)
		n.annotateFaultSearch(mq, key, searchT0, faults0, e.Now())
		n.matchLat.Add(int((e.Now() - searchT0) / (64 * sim.Nanosecond)))
		if entry != nil {
			n.stats.PostedMatches++
			if n.phases != nil {
				n.phases.Stamp(key, telemetry.StampMatch, e.Now())
			}
			n.causal.Stamp(key, telemetry.StampMatch, e.Now())
			pr := n.fabricResolve(e, entry)
			n.entryAlloc.put(entry.Addr)
			n.deliverMatched(e, pkt, pr)
			return
		}
		n.stats.Unexpected++
		n.addUnexpected(e, pkt)

	case network.CTS:
		e.Cycles(params.HeaderProcessCycles)
		s := n.pendingSends[pkt.SenderReq]
		if s == nil {
			// A CTS for a send we no longer (or never) track: stale control
			// traffic, e.g. after a peer recovered through retransmission.
			// Recoverable — count it and drop the packet.
			n.noteError(&ProtocolError{NIC: n.cfg.ID, Op: "cts-unknown-send",
				Detail: fmt.Sprintf("CTS for unknown send %d from nic%d", pkt.SenderReq, pkt.Src)})
			return
		}
		delete(n.pendingSends, pkt.SenderReq)
		done := n.dmaTx.Transfer(e.Now(), s.req.Size)
		data := network.Packet{
			Kind: network.Data, Src: n.cfg.ID, Dst: pkt.Src,
			Size: s.req.Size, RecvReq: pkt.RecvReq,
		}
		n.eng.At(done, func() { n.send(data) })
		e.Cycles(params.CompletionCycles)
		n.complete(s.req.ID, done, CompletionStatus{})

	case network.Data:
		e.Cycles(params.HeaderProcessCycles)
		done := n.dmaRx.Transfer(e.Now(), pkt.Size)
		e.Cycles(params.CompletionCycles)
		st := n.rndvStatus[pkt.RecvReq]
		delete(n.rndvStatus, pkt.RecvReq)
		n.complete(pkt.RecvReq, done, st)
	}
}

// deliverMatched completes the receive side of a message that matched a
// posted receive: eager data DMAs straight to the host buffer; a
// rendezvous request gets a CTS.
func (n *NIC) deliverMatched(e *proc.Engine, pkt network.Packet, pr *postedRecv) {
	if pkt.Kind == network.Eager {
		done := n.dmaRx.Transfer(e.Now(), pkt.Size)
		e.Cycles(params.CompletionCycles)
		n.stampCompletion(pkt.Hdr, done)
		n.complete(pr.req.ID, done, statusOf(pkt.Hdr, pkt.Size))
		return
	}
	e.Cycles(params.CompletionCycles)
	n.rndvStatus[pr.req.ID] = statusOf(pkt.Hdr, pkt.Size)
	n.send(network.Packet{
		Kind: network.CTS, Src: n.cfg.ID, Dst: pkt.Src,
		SenderReq: pkt.SenderReq, RecvReq: pr.req.ID,
	})
}

// addUnexpected appends an arrived message to the unexpected queue (§V-C:
// "entered on the unexpectedQ, to be matched against future receives").
func (n *NIC) addUnexpected(e *proc.Engine, pkt network.Packet) {
	um := &unexMsg{pkt: pkt}
	if pkt.Kind == network.Eager && pkt.Size > 0 {
		// Buffer the eager payload in NIC-attached memory.
		n.dmaRx.Transfer(e.Now(), pkt.Size)
		um.bufLen = pkt.Size
	}
	n.appendEntry(e, &n.unexp, match.Pack(pkt.Hdr), match.FullMask, um)
}

var reqSpanNames = map[ReqKind]string{
	ReqSend: "req send", ReqRecv: "req recv", ReqProbe: "req probe",
}

// handleHostReq processes one request from the main processor.
func (n *NIC) handleHostReq(e *proc.Engine, req HostRequest) {
	n.stats.HostReqsHandled++
	if n.tracer != nil {
		start := e.Now()
		defer func() {
			n.tracer.Span(n.cfg.ID, tidFirmware, "fw", reqSpanNames[req.Kind], start, e.Now())
		}()
	}
	switch req.Kind {
	case ReqSend:
		e.Cycles(params.SendProcessCycles)
		if n.tracer != nil {
			// Open the cross-rank flow arrow for this message; the receiver's
			// firmware closes it when it pops the header.
			n.tracer.FlowStart(n.cfg.ID, tidFirmware, "mpi", "msg", e.Now(), uint64(match.Pack(req.Hdr)))
		}
		if req.Size <= params.EagerLimit {
			done := n.dmaTx.Transfer(e.Now(), req.Size)
			pkt := network.Packet{
				Kind: network.Eager, Src: n.cfg.ID, Dst: req.Dst,
				Hdr: req.Hdr, Size: req.Size,
			}
			n.eng.At(done, func() { n.send(pkt) })
			e.Cycles(params.CompletionCycles)
			// An eager send completes locally once the data has left the
			// host buffer.
			n.complete(req.ID, done, CompletionStatus{})
			return
		}
		n.pendingSends[req.ID] = &sendState{req: req}
		n.send(network.Packet{
			Kind: network.RTS, Src: n.cfg.ID, Dst: req.Dst,
			Hdr: req.Hdr, Size: req.Size, SenderReq: req.ID,
		})

	case ReqProbe:
		e.Cycles(params.PostProcessCycles)
		// Non-consuming search: the ALPU cannot answer (delete-on-match),
		// so the firmware walks the full software copy even when a unit
		// is fitted.
		b, m := match.PackRecv(req.Recv)
		st := CompletionStatus{}
		if entry := n.peekUnexpected(e, b, m); entry != nil {
			um := entry.Req.(*unexMsg)
			st = statusOf(um.pkt.Hdr, um.pkt.Size)
		}
		e.Cycles(params.CompletionCycles)
		n.complete(req.ID, e.Now(), st)

	case ReqRecv:
		e.Cycles(params.PostProcessCycles)
		// §II: the unexpected-queue search and the posting must be atomic;
		// the single firmware thread guarantees it.
		searchT0, faults0 := e.Now(), n.faultEvents
		entry := n.matchUnexpected(e, req)
		if entry == nil {
			pr := &postedRecv{req: req}
			b, m := match.PackRecv(req.Recv)
			if n.fab != nil {
				n.fabricPost(e, b, m, pr)
			} else {
				n.appendEntry(e, &n.posted, b, m, pr)
			}
			return
		}
		n.stats.UnexpMatches++
		um := entry.Req.(*unexMsg)
		key := uint64(match.Pack(um.pkt.Hdr))
		n.annotateFaultSearch(&n.unexp, key, searchT0, faults0, e.Now())
		if n.phases != nil {
			n.phases.Stamp(key, telemetry.StampMatch, e.Now())
		}
		n.causal.Stamp(key, telemetry.StampMatch, e.Now())
		n.entryAlloc.put(entry.Addr)
		if um.pkt.Kind == network.Eager {
			// Copy the buffered payload to the host buffer.
			done := n.dmaRx.Transfer(e.Now(), um.pkt.Size)
			e.Cycles(params.CompletionCycles)
			n.stampCompletion(um.pkt.Hdr, done)
			n.complete(req.ID, done, statusOf(um.pkt.Hdr, um.pkt.Size))
			return
		}
		e.Cycles(params.CompletionCycles)
		n.rndvStatus[req.ID] = statusOf(um.pkt.Hdr, um.pkt.Size)
		n.send(network.Packet{
			Kind: network.CTS, Src: n.cfg.ID, Dst: um.pkt.Src,
			SenderReq: um.pkt.SenderReq, RecvReq: req.ID,
		})
	}
}

// matchPosted finds and removes the posted receive matching an incoming
// header, or returns nil (-> unexpected), along with the queue it was
// resolved against (the owner shard under the fabric).
func (n *NIC) matchPosted(e *proc.Engine, pkt network.Packet) (*match.Entry, *mirrorQueue) {
	probe := match.Pack(pkt.Hdr)
	q := &n.posted
	if n.fab != nil {
		// Every candidate for this header — its (context, source) exact
		// receives and one copy of every wildcard — lives in the owner
		// shard, in posting order, so the shard search is the whole search.
		q = n.dispatchShard(e, probe)
	}
	if q.engaged {
		// A packet can slip past the engagement point unprobed (it was
		// already queued when the firmware engaged the unit mid-loop);
		// the firmware then injects the probe itself over the bus.
		if !q.probed[pkt.Seq] {
			e.BusTransaction(params.ALPUCommandCycles)
			q.dev.PushProbe(alpu.Probe{Bits: probe, Meta: pkt.Seq})
			q.probed[pkt.Seq] = true
		}
		r, from, ok := n.resultFor(e, q, pkt.Seq)
		if !ok {
			// The device never answered: strike, repair (resync or failover),
			// and resolve this match entirely in software.
			n.deviceFault(e, q, "result-timeout",
				fmt.Sprintf("no response for packet seq %d", pkt.Seq))
			return n.softwareMatch(e, q, probe, match.FullMask), q
		}
		if r.Kind == alpu.RespMatchSuccess {
			if q.stale[r.Tag] {
				// The success was generated before an INVALIDATE for this tag
				// was processed: the device consumed a purged wildcard copy.
				// The cell is gone either way (the pending INVALIDATE finds
				// nothing and no-ops); resolve the probe against the list,
				// which no longer holds the purged copy.
				delete(q.stale, r.Tag)
				n.fab.staleWildHits++
				n.stats.ALPUPostedMisses++
				return n.fallbackSearch(e, q, alpu.Probe{Bits: probe, Meta: pkt.Seq}, probe, match.FullMask, 0), q
			}
			n.stats.ALPUPostedHits++
			n.noteDeviceSuccess(q)
			return n.consumeALPUMatch(e, q, r.Tag, probe, match.FullMask), q
		}
		n.stats.ALPUPostedMisses++
		// §IV-D: on MATCH FAILURE, search only the portion of the list
		// that had not been loaded into the ALPU when the failure was
		// generated.
		return n.fallbackSearch(e, q, alpu.Probe{Bits: probe, Meta: pkt.Seq}, probe, match.FullMask, from), q
	}
	if q.hash != nil {
		return n.searchRemoveHash(e, q, probe, match.FullMask), q
	}
	return n.searchRemoveShard(e, q, probe, match.FullMask), q
}

// matchUnexpected finds and removes the unexpected message matching a
// receive being posted, or returns nil.
func (n *NIC) matchUnexpected(e *proc.Engine, req HostRequest) *match.Entry {
	b, m := match.PackRecv(req.Recv)
	if n.unexp.engaged {
		if !n.unexp.probed[req.ID] {
			e.BusTransaction(params.ALPUCommandCycles)
			n.unexp.dev.PushProbe(alpu.Probe{Bits: b, Mask: m, Meta: req.ID})
			n.unexp.probed[req.ID] = true
		}
		r, from, ok := n.resultFor(e, &n.unexp, req.ID)
		if !ok {
			n.deviceFault(e, &n.unexp, "result-timeout",
				fmt.Sprintf("no response for request %d", req.ID))
			return n.softwareMatch(e, &n.unexp, b, m)
		}
		if r.Kind == alpu.RespMatchSuccess {
			n.stats.ALPUUnexpHits++
			n.noteDeviceSuccess(&n.unexp)
			return n.consumeALPUMatch(e, &n.unexp, r.Tag, b, m)
		}
		n.stats.ALPUUnexpMisses++
		return n.fallbackSearch(e, &n.unexp, alpu.Probe{Bits: b, Mask: m, Meta: req.ID}, b, m, from)
	}
	if n.unexp.hash != nil {
		return n.searchRemoveHash(e, &n.unexp, b, m)
	}
	return n.searchRemoveList(e, &n.unexp, b, m, 0)
}

// consumeALPUMatch resolves an ALPU MATCH SUCCESS tag to the shadow-list
// entry (§IV-B: the tag points into the processor's copy) and unlinks it.
// An unknown tag means the hardware/software mirror diverged; that is
// recoverable — the match is resolved in software over the full list —
// so it is counted rather than fatal. bits/mask are the original probe,
// needed for that software resolution.
func (n *NIC) consumeALPUMatch(e *proc.Engine, q *mirrorQueue, tag uint32, bits, mask match.Bits) *match.Entry {
	entry := q.tags[tag]
	if entry == nil {
		n.noteError(&ProtocolError{NIC: n.cfg.ID, Op: "alpu-unknown-tag",
			Detail: fmt.Sprintf("%s ALPU returned unknown tag %d", q.name, tag)})
		idx := n.searchShard(e, q, bits, mask, 0)
		if idx < 0 {
			return nil
		}
		q.depths.Add(idx)
		entry = q.list.At(idx)
		inOver := idx >= q.inALPU
		if !inOver {
			// The entry was inside the mirrored prefix; keep the pointer
			// consistent with the unit having consumed its copy.
			q.inALPU--
		}
		e.Cycles(8)
		q.removeAt(idx)
		if inOver {
			q.dropOverflow(entry)
		}
		return entry
	}
	delete(q.tags, tag)
	// Fetch the entry directly by pointer — no traversal (§VI-B: "the
	// returned tag can be used to point directly to the matching list
	// item").
	e.Load(entry.Addr, params.QueueEntryBytes)
	e.Prefetch(entry.Addr+uint64(params.QueueEntryBytes), params.QueueEntryFullBytes-params.QueueEntryBytes, false)
	idx := q.list.IndexOf(entry)
	if idx < 0 || idx >= q.inALPU {
		if !n.devFaultsOn() {
			panic(fmt.Sprintf("nic%d: %s ALPU matched entry outside the ALPU prefix (idx %d, inALPU %d)",
				n.cfg.ID, q.name, idx, q.inALPU))
		}
		// A fault knocked the mirror askew (e.g. a stale success resolved
		// after a resync): the shadow list is the truth, so resolve there
		// and schedule a resync to realign the device.
		n.noteDeviceFault(q, "prefix-mismatch",
			fmt.Sprintf("tag %d resolved to idx %d, inALPU %d", tag, idx, q.inALPU))
		if idx < 0 {
			idx = n.searchShard(e, q, bits, mask, 0)
			if idx < 0 {
				return nil
			}
			entry = q.list.At(idx)
		}
		q.depths.Add(idx)
		inOver := idx >= q.inALPU
		e.Cycles(8)
		q.removeAt(idx)
		if inOver {
			q.dropOverflow(entry)
		}
		return entry
	}
	q.depths.Add(idx)
	q.removeAt(idx)
	q.inALPU--
	e.Cycles(8) // list unlink bookkeeping
	return entry
}

// searchList traverses the software list from index `from`, charging the
// per-entry cost through the cache model, and returns the index of the
// first match, or -1.
func (n *NIC) searchList(e *proc.Engine, q *mirrorQueue, bits, mask match.Bits, from int) int {
	for i := from; i < q.list.Len(); i++ {
		entry := q.list.At(i)
		// The match line is the demand load; the rest of the entry is
		// fetched under its miss (it still occupies the cache).
		e.LoadOverlapped(entry.Addr, params.QueueEntryBytes, params.TraverseCyclesPerEntry)
		e.Prefetch(entry.Addr+uint64(params.QueueEntryBytes), params.QueueEntryFullBytes-params.QueueEntryBytes, false)
		n.stats.EntriesTraversed++
		if match.Matches(entry.Bits, entry.Mask, bits, mask) {
			return i
		}
	}
	return -1
}

// peekUnexpected finds the first matching unexpected message without
// unlinking it (the MPI_Probe path), whatever the queue organisation.
func (n *NIC) peekUnexpected(e *proc.Engine, bits, mask match.Bits) *match.Entry {
	q := &n.unexp
	if q.hash != nil {
		before := q.hash.SearchSteps
		entry := q.hash.FindFirst(bits, mask)
		steps := q.hash.SearchSteps - before
		for s := uint64(0); s < steps; s++ {
			e.Cycles(4)
			e.Load(hashBucketAddr(bits+match.Bits(s)), 8)
		}
		n.stats.EntriesTraversed += steps
		return entry
	}
	if idx := n.searchList(e, q, bits, mask, 0); idx >= 0 {
		return q.list.At(idx)
	}
	return nil
}

// searchRemoveList is searchList plus unlinking of the match.
func (n *NIC) searchRemoveList(e *proc.Engine, q *mirrorQueue, bits, mask match.Bits, from int) *match.Entry {
	i := n.searchList(e, q, bits, mask, from)
	if i < 0 {
		return nil
	}
	q.depths.Add(i)
	entry := q.list.At(i)
	e.Cycles(8)
	q.removeAt(i)
	return entry
}

// fallbackSearch resolves a MATCH FAILURE in software. The failure
// reflects the unit's contents when it was generated, so the search
// starts from that era's not-in-ALPU pointer. If the match lands inside
// the *current* ALPU prefix, an insert episode loaded the entry after the
// failure was generated (the §IV-C race); the unit then holds a stale
// copy, which the firmware purges by re-probing: the stale entry is the
// unit's highest-priority match for this probe, so the purge consumes
// exactly it.
func (n *NIC) fallbackSearch(e *proc.Engine, q *mirrorQueue, probe alpu.Probe, bits, mask match.Bits, from int) *match.Entry {
	if from > q.inALPU {
		from = q.inALPU
	}
	if q.needResync {
		// A strike is pending repair: the device has lost at least one
		// loaded entry (quarantined cell, dropped result), so a MATCH
		// FAILURE no longer brackets the unloaded suffix. Search the whole
		// list; a hit inside the prefix goes through the purge probe as
		// usual, which misses the vanished copy and feeds the resync.
		from = 0
	}
	idx := n.searchShard(e, q, bits, mask, from)
	if idx < 0 {
		return nil
	}
	q.depths.Add(idx)
	entry := q.list.At(idx)
	inOver := idx >= q.inALPU
	if idx < q.inALPU {
		n.stats.ALPUPurges++
		key := n.nextPurgeKey()
		probe.Meta = key
		e.BusTransaction(params.ALPUCommandCycles)
		q.dev.PushProbe(probe)
		q.probed[key] = true
		r, _, ok := n.resultFor(e, q, key)
		switch {
		case !ok:
			n.deviceFault(e, q, "purge-timeout", "no response to purge probe")
		case r.Kind != alpu.RespMatchSuccess:
			if !n.devFaultsOn() {
				panic(fmt.Sprintf("nic%d: %s purge probe missed the stale entry", n.cfg.ID, q.name))
			}
			// The stale copy vanished from the device (quarantined by the
			// scrubber): the mirror is off by at least one entry — resync.
			n.deviceFault(e, q, "purge-miss", "purge probe found no stale copy")
		case q.tags[r.Tag] != entry:
			if !n.devFaultsOn() {
				panic(fmt.Sprintf("nic%d: %s purge consumed tag %d, not the stale entry", n.cfg.ID, q.name, r.Tag))
			}
			delete(q.tags, r.Tag)
			n.deviceFault(e, q, "purge-mismatch", "purge probe consumed a different entry")
		default:
			delete(q.tags, r.Tag)
			q.inALPU--
		}
	}
	e.Cycles(8)
	q.removeAt(idx)
	if inOver {
		q.dropOverflow(entry)
	}
	if q.alpuDead && q.hash != nil {
		// A failover during the purge rebuilt the hash shadow from the list
		// with this entry still in it; keep the shadow exact.
		q.hash.Remove(entry)
	}
	return entry
}

// nextPurgeKey returns a correlation key that can never collide with a
// packet sequence number or request id.
func (n *NIC) nextPurgeKey() uint64 {
	n.purgeKey++
	return n.purgeKey | 1<<63
}

// hashRegionBase is where the hash-table buckets live in NIC memory for
// the abl-hash cost model.
const hashRegionBase = 0x800_0000

func hashBucketAddr(bits match.Bits) uint64 {
	return hashRegionBase + uint64(bits%4096)*8
}

// searchRemoveHash is the §II hash-organisation search path (ablation).
func (n *NIC) searchRemoveHash(e *proc.Engine, q *mirrorQueue, bits, mask match.Bits) *match.Entry {
	before := q.hash.SearchSteps
	entry := q.hash.FindFirst(bits, mask)
	steps := q.hash.SearchSteps - before
	// Each search step is a bucket-head probe: hash compute + load.
	for s := uint64(0); s < steps; s++ {
		e.Cycles(4)
		e.Load(hashBucketAddr(bits+match.Bits(s)), 8)
	}
	n.stats.EntriesTraversed += steps
	if entry == nil {
		return nil
	}
	q.depths.Add(int(steps))
	e.Load(entry.Addr, params.QueueEntryBytes)
	e.Prefetch(entry.Addr+uint64(params.QueueEntryBytes), params.QueueEntryFullBytes-params.QueueEntryBytes, false)
	e.Cycles(12) // bucket unlink is costlier than list unlink
	q.hash.Remove(entry)
	return entry
}

// appendEntry creates a queue entry, charges its construction, and appends
// it to the software queue.
func (n *NIC) appendEntry(e *proc.Engine, q *mirrorQueue, bits, mask match.Bits, req any) *match.Entry {
	addr := n.entryAlloc.get()
	entry := &match.Entry{Bits: bits, Mask: mask, Addr: addr, Req: req}
	e.Store(addr, params.QueueEntryBytes)
	e.Prefetch(addr+uint64(params.QueueEntryBytes), params.QueueEntryFullBytes-params.QueueEntryBytes, true)
	if q.hash != nil {
		before := q.hash.InsertSteps
		q.hash.Append(entry)
		steps := q.hash.InsertSteps - before
		// §II: "can also significantly increase the time needed to insert
		// an entry": hash compute, bucket lookup, tail update.
		e.Cycles(int64(steps) * 4)
		e.Store(hashBucketAddr(bits), 8)
	} else {
		q.list.Append(entry)
		e.Cycles(4) // tail pointer update
	}
	if l := n.queueLen(q); l > q.peakLen {
		q.peakLen = l
	}
	return entry
}

// updateALPUs performs the per-iteration ALPU maintenance of §V-C,
// returning whether any work was done.
func (n *NIC) updateALPUs(e *proc.Engine) bool {
	if !n.cfg.UseALPU {
		return false
	}
	did := false
	for _, q := range n.alpuQueues {
		if n.updateALPU(e, q) {
			did = true
		}
	}
	return did
}

// updateALPU runs one insert episode for a queue if it has a not-yet-
// inserted suffix: START INSERT, drain results until the acknowledge,
// insert as many entries as fit, STOP INSERT (§IV-C, §V-C).
func (n *NIC) updateALPU(e *proc.Engine, q *mirrorQueue) bool {
	if q.alpuDead || (n.devFaultsOn() && n.eng.Now() < q.retryAt) {
		// Failed over, or backing off after a strike: no insert episodes.
		return false
	}
	pend := q.list.Len() - q.inALPU
	if pend <= 0 || q.list.Len() < n.cfg.Threshold {
		return false
	}
	cells := q.dev.Config().Geometry.Cells
	if q.inALPU >= cells {
		return false // ALPU prefix full; overflow stays in software
	}

	if !q.engaged {
		// Initialise the unit: enable duplicate-information delivery
		// (§IV-C). From here on probes flow in hardware.
		e.BusTransaction(params.ALPUCommandCycles)
		q.engaged = true
	}

	e.BusTransaction(params.ALPUCommandCycles)
	n.pushCommand(e, q, alpu.Command{Op: alpu.OpStartInsert})
	n.stats.InsertEpisodes++

	// Drain results until the START ACKNOWLEDGE; anything else is a match
	// result for a header we have not processed yet (§IV-C).
	var free int
	for {
		r, ok := n.readResult(e, q)
		if !ok {
			// The acknowledge never came: strike and abort the episode. The
			// repair's STOP INSERT unwinds whatever state the device is in.
			n.deviceFault(e, q, "ack-timeout", "START ACKNOWLEDGE timed out")
			return true
		}
		if r.Kind == alpu.RespStartAck {
			free = r.Free
			break
		}
		q.pending = append(q.pending, stashedResp{r: r, from: q.inALPU})
	}

	k := pend
	if k > free {
		k = free
	}
	if n.cfg.InsertBatchMax > 0 && k > n.cfg.InsertBatchMax {
		k = n.cfg.InsertBatchMax
	}
	for i := 0; i < k; i++ {
		entry := q.list.At(q.inALPU + i)
		if q.over != nil {
			// The entry leaves the shard's software overflow for a cell:
			// unlink it from the overflow hash (fabric promotion).
			q.over.Remove(entry)
			q.promotions++
			e.Cycles(4)
		}
		tag := n.allocTag(q, entry)
		e.BusTransaction(params.ALPUCommandCycles)
		n.pushCommand(e, q, alpu.Command{Op: alpu.OpInsert, Bits: entry.Bits, Mask: entry.Mask, Tag: tag})
		n.stats.ALPUInserts++
		// §IV-C: periodically clear the result FIFO of successful matches
		// that occur during the insert process to prevent it filling.
		if q.dev.Results.Len() > q.dev.Results.Cap()/2 {
			n.drainResults(e, q)
		}
	}
	e.BusTransaction(params.ALPUCommandCycles)
	n.pushCommand(e, q, alpu.Command{Op: alpu.OpStopInsert})
	q.inALPU += k
	n.noteDeviceSuccess(q)
	return k > 0
}

// allocTag assigns a free 16-bit tag to an entry. Tags quarantined in
// q.stale (invalidated cells whose responses may still be in flight) are
// skipped so a stale MATCH SUCCESS can never alias a fresh entry.
func (n *NIC) allocTag(q *mirrorQueue, entry *match.Entry) uint32 {
	for {
		q.nextTag = (q.nextTag + 1) & 0xffff
		if _, used := q.tags[q.nextTag]; !used && !q.stale[q.nextTag] {
			q.tags[q.nextTag] = entry
			return q.nextTag
		}
	}
}

// pushCommand writes one command into the device command FIFO, respecting
// backpressure (the bus write itself was already charged by the caller).
// While the FIFO is full the result FIFO is drained into the pending
// stash: header copies flow to the device in hardware, so it can be
// blocked pushing a match result at the very moment the firmware needs
// command space — each side waiting on the other's FIFO. Draining here is
// the §IV-C mid-episode discipline applied to every backpressured
// command, and breaks that cycle.
func (n *NIC) pushCommand(e *proc.Engine, q *mirrorQueue, c alpu.Command) {
	for !q.dev.PushCommand(c) {
		n.drainResults(e, q)
		e.P.WaitCondAny(q.dev.Commands.NotFull, q.dev.Results.NotEmpty, func() bool {
			return !q.dev.Commands.Full() || q.dev.Results.Len() > 0
		})
	}
}

// readResult reads one response from the device result FIFO: a status
// read to see that a result is present, then the data read — two
// transactions on the 20 ns local bus. This interaction cost is what
// produces the paper's ~80 ns penalty on zero-length queues (§VI-B).
//
// Without device faults the wait is unbounded and ok is always true —
// the pre-existing behaviour, cycle for cycle. With device faults the
// wait is bounded (exponential in the queue's strike count) so a dying
// device cannot hang the firmware; FAULT responses from the device
// scrubber are absorbed here as strikes and never surface to callers.
func (n *NIC) readResult(e *proc.Engine, q *mirrorQueue) (alpu.Response, bool) {
	wait := n.resultWait(q)
	for {
		e.BusTransaction(params.ALPUStatusPollCycles)
		if q.dev.Results.Len() == 0 {
			cond := func() bool { return q.dev.Results.Len() > 0 }
			if wait == 0 {
				e.P.WaitCond(q.dev.Results.NotEmpty, cond)
			} else if !e.P.WaitCondUntil(q.dev.Results.NotEmpty, cond, wait) {
				return alpu.Response{}, false
			}
			continue
		}
		e.BusTransaction(params.ALPUResultPollCycles)
		r, ok := q.dev.Results.Pop()
		if !ok {
			continue
		}
		if r.Kind == alpu.RespFault {
			// The scrubber quarantined a corrupted cell: the device lost an
			// entry the shadow still holds. Strike; the resync at the next
			// safe point realigns the device with the shadow.
			n.failCounter("fault_responses")
			n.noteDeviceFault(q, "parity", fmt.Sprintf("device quarantined tag %d", r.Tag))
			continue
		}
		return r, true
	}
}

// drainResults moves everything currently in the result FIFO into the
// pending list (used mid-insert-episode).
func (n *NIC) drainResults(e *proc.Engine, q *mirrorQueue) {
	for {
		e.BusTransaction(params.ALPUResultPollCycles)
		r, ok := q.dev.Results.Pop()
		if !ok {
			return
		}
		q.pending = append(q.pending, stashedResp{r: r, from: q.inALPU})
	}
}

// stashedResp is a drained response stamped with the not-in-ALPU pointer
// value current when it was read: a MATCH FAILURE reflects the unit's
// contents at generation time, so its software fallback search must start
// from the pointer value of that era, not the present one.
type stashedResp struct {
	r    alpu.Response
	from int
}

// resultFor returns the response whose probe carried the given
// correlation key, consuming it from the drained-pending list or the
// result FIFO, plus the fallback search index for a failure. Responses
// for probes whose packets have not been processed yet are stashed in
// arrival order. ok is false only when device faults are configured and
// the response timed out (the caller strikes and resolves in software).
func (n *NIC) resultFor(e *proc.Engine, q *mirrorQueue, key uint64) (alpu.Response, int, bool) {
	delete(q.probed, key)
	for i, st := range q.pending {
		if meta, ok := st.r.Probe.Meta.(uint64); ok && meta == key {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			e.Cycles(4)
			return st.r, st.from, true
		}
	}
	for {
		r, ok := n.readResult(e, q)
		if !ok {
			return alpu.Response{}, 0, false
		}
		if meta, ok := r.Probe.Meta.(uint64); ok && meta == key {
			return r, q.inALPU, true
		}
		q.pending = append(q.pending, stashedResp{r: r, from: q.inALPU})
	}
}

// annotateFaultSearch re-attributes a match-resolution span to the
// resync/failover resource on the message's causal chain when the queue
// was degraded while it ran: a strike fired mid-resolution (faultEvents
// moved), a resync is still pending, the unit carries strikes (matching
// runs in software until a health check clears them or failover makes
// alpuDead permanent), or the unit is dead and matching runs on the hash
// shadow. Fault-free resolutions stay plain search time. The causal
// analysis clamps the annotation to the FwPop→Match gap, so
// over-approximation here cannot break telescoping.
func (n *NIC) annotateFaultSearch(q *mirrorQueue, key uint64, t0 sim.Time, faults0 uint64, now sim.Time) {
	if n.causal == nil {
		return
	}
	if n.faultEvents != faults0 || q.needResync || q.strikes > 0 || q.alpuDead {
		n.causal.Annotate(key, telemetry.ResResync, now-t0)
	}
}

// softwareMatch resolves a match entirely in software after the device
// path failed: the hash shadow when the queue has failed over, else a
// full list search. The immediately preceding repair left inALPU at zero
// (resync) or the unit permanently disengaged (failover), so no stale
// device copy can survive the removal.
func (n *NIC) softwareMatch(e *proc.Engine, q *mirrorQueue, bits, mask match.Bits) *match.Entry {
	if q.hash != nil {
		return n.searchRemoveHash(e, q, bits, mask)
	}
	return n.searchRemoveShard(e, q, bits, mask)
}
