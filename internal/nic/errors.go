package nic

import "fmt"

// ProtocolError is a recoverable protocol-level fault observed by the
// firmware: a condition a robust NIC must tolerate (stale control traffic
// after a retransmission, a diverged hardware/software mirror) rather
// than a programming error. Recoverable faults are counted per NIC
// (NIC.Errors) and the firmware continues; violations of true internal
// invariants still panic.
type ProtocolError struct {
	NIC    int    // NIC id that observed the fault
	Op     string // counter key, e.g. "cts-unknown-send"
	Detail string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("nic%d: %s: %s", e.NIC, e.Op, e.Detail)
}
