package nic

import (
	"fmt"

	"alpusim/internal/network"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
)

// This file is the NIC's link reliability engine: a go-back-N protocol
// that restores the in-order, loss-free delivery MPI matching rests on
// (§II ordering guarantee) when the network runs a fault model. It is
// modelled as NIC hardware beside the DMA engines — real RDMA NICs carry
// exactly such an ACK/retransmit engine — so its work happens at packet
// delivery time and on simulator timers, not on the firmware processor.
//
// Protocol summary:
//
//   - every data-plane packet (EAGER, RTS, CTS, DATA) carries a per
//     (src, dst) link sequence number RelSeq (1-based) and a header
//     checksum;
//   - the receiver accepts only the next in-order sequence, cumulatively
//     ACKs it, discards duplicates (re-ACKing) and corrupt packets, and
//     answers a sequence gap with a NACK naming the expected sequence
//     (go-back-N: everything past the gap was discarded);
//   - admission control: an in-order packet that would overflow the Rx
//     FIFO — or an EAGER/RTS that would overflow a bounded unexpected
//     queue — is refused with an RNR (receiver-not-ready) NACK instead of
//     being dropped on the floor or growing the queue without bound;
//   - the sender keeps a bounded window of unacknowledged packets,
//     retransmits from the NACKed sequence on NACK, backs off before
//     resuming on RNR, and retransmits the whole window on timeout with
//     exponential backoff (reset on forward progress).
//
// ACK/NACK/RNR control packets are themselves unsequenced and may be
// lost or corrupted; the timeout path recovers. The protocol never
// delivers a corrupt, duplicate, or out-of-order packet to the firmware,
// so the matching queues observe exactly the traffic a reliable network
// would have produced.

// RelStats is a snapshot of the reliability-engine activity counters for
// the chaos reports. The live counters reside in the telemetry registry
// under "nic<ID>/rel/..."; Rel() reconstructs this struct from them.
type RelStats struct {
	DataSent    uint64 // data-plane packets given a sequence number
	Retransmits uint64 // data-plane packets sent again
	Timeouts    uint64 // retransmit timer expiries
	AcksSent    uint64
	NacksSent   uint64 // gap NACKs sent
	RNRSent     uint64 // flow-control NACKs sent (admission refused)
	AcksRecv    uint64
	NacksRecv   uint64
	RNRRecv     uint64
	CsumDrops   uint64 // packets discarded on checksum mismatch
	DupDrops    uint64 // duplicate sequence numbers discarded
	GapDrops    uint64 // out-of-order packets discarded (go-back-N)
	Recoveries  uint64 // in-order resumptions after a discard episode
}

// relCounters caches the registry handles the reliability engine
// increments on its hot paths (one map lookup each at relInit, none
// afterwards).
type relCounters struct {
	dataSent    *telemetry.Counter
	retransmits *telemetry.Counter
	timeouts    *telemetry.Counter
	acksSent    *telemetry.Counter
	nacksSent   *telemetry.Counter
	rnrSent     *telemetry.Counter
	acksRecv    *telemetry.Counter
	nacksRecv   *telemetry.Counter
	rnrRecv     *telemetry.Counter
	csumDrops   *telemetry.Counter
	dupDrops    *telemetry.Counter
	gapDrops    *telemetry.Counter
	recoveries  *telemetry.Counter
}

// relPeer is the per-remote-NIC protocol state, split into the transmit
// window and the receive cursor.
type relPeer struct {
	id int // remote NIC id

	// Transmit side.
	nextSeq  uint64           // next RelSeq to assign (1-based)
	unacked  []network.Packet // sent, not yet cumulatively ACKed (seq order)
	sendQ    []network.Packet // sequenced, waiting for window space
	rto      sim.Time         // current retransmit timeout (exponential)
	timer    sim.EventID
	armed    bool
	paused   bool     // RNR backoff in progress; timer is the resume event
	lastNack uint64   // last go-back seq honoured (NACK storm suppression)
	lastAt   sim.Time // when it was honoured

	// Receive side.
	expected  uint64 // next RelSeq accepted from this peer
	nackedFor uint64 // gap NACK suppression: expected value already NACKed
	stalled   bool   // a discard episode is open (for Recoveries)
}

// relInit sizes the reliability state; called from New when enabled.
func (n *NIC) relInit() {
	n.relPeers = make([]*relPeer, n.net.Size())
	pre := fmt.Sprintf("nic%d/rel/", n.cfg.ID)
	n.rel = relCounters{
		dataSent:    n.reg.Counter(pre + "data_sent"),
		retransmits: n.reg.Counter(pre + "retransmits"),
		timeouts:    n.reg.Counter(pre + "timeouts"),
		acksSent:    n.reg.Counter(pre + "acks_sent"),
		nacksSent:   n.reg.Counter(pre + "nacks_sent"),
		rnrSent:     n.reg.Counter(pre + "rnr_sent"),
		acksRecv:    n.reg.Counter(pre + "acks_recv"),
		nacksRecv:   n.reg.Counter(pre + "nacks_recv"),
		rnrRecv:     n.reg.Counter(pre + "rnr_recv"),
		csumDrops:   n.reg.Counter(pre + "csum_drops"),
		dupDrops:    n.reg.Counter(pre + "dup_drops"),
		gapDrops:    n.reg.Counter(pre + "gap_drops"),
		recoveries:  n.reg.Counter(pre + "recoveries"),
	}
	n.rtoInit = n.cfg.RelTimeout
	if n.rtoInit <= 0 {
		// Initial RTO: a round trip (two wire crossings) plus generous
		// slack for transmit serialisation and firmware turnaround.
		n.rtoInit = 4*n.net.Wire() + 8*sim.Microsecond
	}
	n.rtoMax = 64 * n.rtoInit
	if n.cfg.RelWindow <= 0 {
		n.cfg.RelWindow = 64
	}
	n.ep.Ingress = n.relIngress
}

// peer returns (allocating) the protocol state for remote NIC id.
func (n *NIC) peer(id int) *relPeer {
	pr := n.relPeers[id]
	if pr == nil {
		pr = &relPeer{id: id, nextSeq: 1, expected: 1, rto: n.rtoInit}
		n.relPeers[id] = pr
	}
	return pr
}

// send is the firmware's transmit entry point for data-plane packets.
// Without the reliability engine it is a straight network send (the
// paper's reliable in-order world); with it, the packet is sequenced,
// checksummed, and window-controlled.
func (n *NIC) send(pkt network.Packet) {
	if !n.cfg.Reliable {
		n.net.Send(pkt)
		return
	}
	pr := n.peer(pkt.Dst)
	pkt.RelSeq = pr.nextSeq
	pr.nextSeq++
	pkt.Seal()
	n.rel.dataSent.Inc()
	if len(pr.unacked) >= n.cfg.RelWindow {
		pr.sendQ = append(pr.sendQ, pkt)
		return
	}
	n.txData(pr, pkt)
}

// txData admits one sequenced packet to the window and puts it on the wire.
func (n *NIC) txData(pr *relPeer, pkt network.Packet) {
	pr.unacked = append(pr.unacked, pkt)
	n.net.Send(pkt)
	if !pr.armed && !pr.paused {
		n.armTimer(pr, pr.rto, func() { n.relTimeout(pr) })
	}
}

// sendCtl emits an unsequenced, checksummed control packet.
func (n *NIC) sendCtl(kind network.PacketKind, dst int, seq uint64) {
	pkt := network.Packet{Kind: kind, Src: n.cfg.ID, Dst: dst, RelSeq: seq}
	pkt.Seal()
	n.net.Send(pkt)
}

// armTimer (re)arms the peer's single timer slot.
func (n *NIC) armTimer(pr *relPeer, d sim.Time, fn func()) {
	if pr.armed {
		n.eng.Cancel(pr.timer)
	}
	pr.armed = true
	pr.timer = n.eng.ScheduleCancellable(d, func() {
		pr.armed = false
		fn()
	})
}

func (n *NIC) disarmTimer(pr *relPeer) {
	if pr.armed {
		n.eng.Cancel(pr.timer)
		pr.armed = false
	}
}

// relTimeout is the go-back-N timeout: resend the full window with
// exponential backoff. The timer stays armed while anything is unacked.
func (n *NIC) relTimeout(pr *relPeer) {
	if len(pr.unacked) == 0 {
		return
	}
	n.rel.timeouts.Inc()
	if n.tracer != nil {
		n.tracer.Instant(n.cfg.ID, tidReliability, "rel", "timeout", n.eng.Now())
	}
	pr.rto *= 2
	if pr.rto > n.rtoMax {
		pr.rto = n.rtoMax
	}
	for _, pkt := range pr.unacked {
		n.rel.retransmits.Inc()
		if n.tracer != nil {
			n.tracer.Instant(n.cfg.ID, tidReliability, "rel", "retransmit", n.eng.Now())
		}
		n.net.Send(pkt)
	}
	n.armTimer(pr, pr.rto, func() { n.relTimeout(pr) })
}

// relIngress is the endpoint delivery hook: every arriving packet passes
// through here before the ALPU header replication and the Rx FIFO.
// Returning true hands the packet to the normal receive path.
func (n *NIC) relIngress(pkt network.Packet) bool {
	if !pkt.ChecksumOK() {
		n.rel.csumDrops.Inc()
		if pkt.Kind != network.Ack && pkt.Kind != network.Nack && pkt.Kind != network.RNR {
			n.peer(pkt.Src).stalled = true
		}
		return false
	}
	switch pkt.Kind {
	case network.Ack:
		n.rel.acksRecv.Inc()
		n.handleAck(n.peer(pkt.Src), pkt.RelSeq)
		return false
	case network.Nack:
		n.rel.nacksRecv.Inc()
		n.handleNack(n.peer(pkt.Src), pkt.RelSeq)
		return false
	case network.RNR:
		n.rel.rnrRecv.Inc()
		n.handleRNR(n.peer(pkt.Src), pkt.RelSeq)
		return false
	}

	pr := n.peer(pkt.Src)
	switch {
	case pkt.RelSeq < pr.expected:
		// Duplicate (retransmit raced the ACK, or the network duplicated
		// it): discard and re-ACK so the sender's window advances.
		n.rel.dupDrops.Inc()
		n.sendAckNow(pr)
		return false
	case pkt.RelSeq > pr.expected:
		// Sequence gap: go-back-N discards everything past the gap and
		// asks for the expected packet, once per gap episode.
		n.rel.gapDrops.Inc()
		pr.stalled = true
		if pr.nackedFor != pr.expected {
			pr.nackedFor = pr.expected
			n.rel.nacksSent.Inc()
			if n.tracer != nil {
				n.tracer.Instant(n.cfg.ID, tidReliability, "rel", "nack", n.eng.Now())
			}
			n.sendCtl(network.Nack, pr.id, pr.expected)
		}
		return false
	}

	// In-order: admission control before the sequence advances, so a
	// refused packet is simply retransmitted later.
	if n.refuseAdmission(pkt) {
		n.rel.rnrSent.Inc()
		pr.stalled = true
		if n.tracer != nil {
			n.tracer.Instant(n.cfg.ID, tidReliability, "rel", "rnr", n.eng.Now())
		}
		n.sendCtl(network.RNR, pr.id, pkt.RelSeq)
		return false
	}

	pr.expected++
	pr.nackedFor = 0
	if pr.stalled {
		pr.stalled = false
		n.rel.recoveries.Inc()
		if n.tracer != nil {
			n.tracer.Instant(n.cfg.ID, tidReliability, "rel", "recovery", n.eng.Now())
		}
	}
	if pkt.Kind == network.Eager || pkt.Kind == network.RTS {
		n.admittedHdrs++
	}
	n.sendAckNow(pr)
	return true
}

// refuseAdmission reports whether an in-order packet must be RNR-refused:
// the Rx FIFO has no room, or it is a matchable header (EAGER/RTS) and the
// bounded unexpected queue — plus headers already admitted but not yet
// processed by the firmware — is at its limit.
func (n *NIC) refuseAdmission(pkt network.Packet) bool {
	if n.ep.RxQ.Full() {
		return true
	}
	if n.cfg.MaxUnexpected > 0 && (pkt.Kind == network.Eager || pkt.Kind == network.RTS) {
		if n.queueLen(&n.unexp)+n.admittedHdrs >= n.cfg.MaxUnexpected {
			return true
		}
	}
	return false
}

// sendAckNow cumulatively ACKs everything accepted so far from pr.
func (n *NIC) sendAckNow(pr *relPeer) {
	n.rel.acksSent.Inc()
	n.sendCtl(network.Ack, pr.id, pr.expected-1)
}

// handleAck processes a cumulative acknowledgement up to seq.
func (n *NIC) handleAck(pr *relPeer, seq uint64) {
	progress := false
	for len(pr.unacked) > 0 && pr.unacked[0].RelSeq <= seq {
		pr.unacked = pr.unacked[1:]
		progress = true
	}
	if !progress {
		return
	}
	// Forward progress: the path works; reset the backoff.
	pr.rto = n.rtoInit
	pr.paused = false
	// Refill the window from the software send queue.
	for len(pr.sendQ) > 0 && len(pr.unacked) < n.cfg.RelWindow {
		pkt := pr.sendQ[0]
		pr.sendQ = pr.sendQ[1:]
		n.txData(pr, pkt)
	}
	if len(pr.unacked) == 0 {
		n.disarmTimer(pr)
		return
	}
	n.armTimer(pr, pr.rto, func() { n.relTimeout(pr) })
}

// handleNack is the go-back-N retransmit request: the receiver discarded
// everything from seq on. Duplicate NACKs for the same point inside one
// round trip are suppressed to avoid a retransmit storm.
func (n *NIC) handleNack(pr *relPeer, seq uint64) {
	if len(pr.unacked) == 0 {
		return
	}
	if seq == pr.lastNack && n.eng.Now() < pr.lastAt+pr.rto {
		return
	}
	pr.lastNack = seq
	pr.lastAt = n.eng.Now()
	n.goBack(pr, seq)
}

// handleRNR pauses the window and retries from seq after a backoff: the
// receiver had no room, so immediate retransmission would only be refused
// again. Each consecutive RNR doubles the pause (reset on ACK progress).
func (n *NIC) handleRNR(pr *relPeer, seq uint64) {
	if len(pr.unacked) == 0 {
		return
	}
	pr.paused = true
	pause := pr.rto
	pr.rto *= 2
	if pr.rto > n.rtoMax {
		pr.rto = n.rtoMax
	}
	n.armTimer(pr, pause, func() {
		pr.paused = false
		n.goBack(pr, seq)
		if !pr.armed && len(pr.unacked) > 0 {
			n.armTimer(pr, pr.rto, func() { n.relTimeout(pr) })
		}
	})
}

// goBack retransmits every unacked packet with RelSeq >= seq, in order.
func (n *NIC) goBack(pr *relPeer, seq uint64) {
	for _, pkt := range pr.unacked {
		if pkt.RelSeq < seq {
			continue
		}
		n.rel.retransmits.Inc()
		if n.tracer != nil {
			n.tracer.Instant(n.cfg.ID, tidReliability, "rel", "retransmit", n.eng.Now())
		}
		n.net.Send(pkt)
	}
}

// Rel returns a snapshot of the reliability counters, reconstructed from
// the registry handles (all zero for an unreliable NIC).
func (n *NIC) Rel() RelStats {
	return RelStats{
		DataSent:    n.rel.dataSent.Get(),
		Retransmits: n.rel.retransmits.Get(),
		Timeouts:    n.rel.timeouts.Get(),
		AcksSent:    n.rel.acksSent.Get(),
		NacksSent:   n.rel.nacksSent.Get(),
		RNRSent:     n.rel.rnrSent.Get(),
		AcksRecv:    n.rel.acksRecv.Get(),
		NacksRecv:   n.rel.nacksRecv.Get(),
		RNRRecv:     n.rel.rnrRecv.Get(),
		CsumDrops:   n.rel.csumDrops.Get(),
		DupDrops:    n.rel.dupDrops.Get(),
		GapDrops:    n.rel.gapDrops.Get(),
		Recoveries:  n.rel.recoveries.Get(),
	}
}

// RelPending reports outstanding transmit state (unacked + queued), for
// drain assertions in tests and the watchdog diagnostic dump.
func (n *NIC) RelPending() int {
	total := 0
	for _, pr := range n.relPeers {
		if pr != nil {
			total += len(pr.unacked) + len(pr.sendQ)
		}
	}
	return total
}
