package nic

import (
	"fmt"

	"alpusim/internal/network"
	"alpusim/internal/sim"
)

// This file is the NIC's link reliability engine: a go-back-N protocol
// that restores the in-order, loss-free delivery MPI matching rests on
// (§II ordering guarantee) when the network runs a fault model. It is
// modelled as NIC hardware beside the DMA engines — real RDMA NICs carry
// exactly such an ACK/retransmit engine — so its work happens at packet
// delivery time and on simulator timers, not on the firmware processor.
//
// Protocol summary:
//
//   - every data-plane packet (EAGER, RTS, CTS, DATA) carries a per
//     (src, dst) link sequence number RelSeq (1-based) and a header
//     checksum;
//   - the receiver accepts only the next in-order sequence, cumulatively
//     ACKs it, discards duplicates (re-ACKing) and corrupt packets, and
//     answers a sequence gap with a NACK naming the expected sequence
//     (go-back-N: everything past the gap was discarded);
//   - admission control: an in-order packet that would overflow the Rx
//     FIFO — or an EAGER/RTS that would overflow a bounded unexpected
//     queue — is refused with an RNR (receiver-not-ready) NACK instead of
//     being dropped on the floor or growing the queue without bound;
//   - the sender keeps a bounded window of unacknowledged packets,
//     retransmits from the NACKed sequence on NACK, backs off before
//     resuming on RNR, and retransmits the whole window on timeout with
//     exponential backoff (reset on forward progress).
//
// ACK/NACK/RNR control packets are themselves unsequenced and may be
// lost or corrupted; the timeout path recovers. The protocol never
// delivers a corrupt, duplicate, or out-of-order packet to the firmware,
// so the matching queues observe exactly the traffic a reliable network
// would have produced.

// RelStats counts reliability-engine activity for the chaos reports.
type RelStats struct {
	DataSent    uint64 // data-plane packets given a sequence number
	Retransmits uint64 // data-plane packets sent again
	Timeouts    uint64 // retransmit timer expiries
	AcksSent    uint64
	NacksSent   uint64 // gap NACKs sent
	RNRSent     uint64 // flow-control NACKs sent (admission refused)
	AcksRecv    uint64
	NacksRecv   uint64
	RNRRecv     uint64
	CsumDrops   uint64 // packets discarded on checksum mismatch
	DupDrops    uint64 // duplicate sequence numbers discarded
	GapDrops    uint64 // out-of-order packets discarded (go-back-N)
	Recoveries  uint64 // in-order resumptions after a discard episode
}

// relPeer is the per-remote-NIC protocol state, split into the transmit
// window and the receive cursor.
type relPeer struct {
	id int // remote NIC id

	// Transmit side.
	nextSeq  uint64           // next RelSeq to assign (1-based)
	unacked  []network.Packet // sent, not yet cumulatively ACKed (seq order)
	sendQ    []network.Packet // sequenced, waiting for window space
	rto      sim.Time         // current retransmit timeout (exponential)
	timer    sim.EventID
	armed    bool
	paused   bool     // RNR backoff in progress; timer is the resume event
	lastNack uint64   // last go-back seq honoured (NACK storm suppression)
	lastAt   sim.Time // when it was honoured

	// Receive side.
	expected  uint64 // next RelSeq accepted from this peer
	nackedFor uint64 // gap NACK suppression: expected value already NACKed
	stalled   bool   // a discard episode is open (for Recoveries)
}

// relInit sizes the reliability state; called from New when enabled.
func (n *NIC) relInit() {
	n.relPeers = make([]*relPeer, n.net.Size())
	n.rtoInit = n.cfg.RelTimeout
	if n.rtoInit <= 0 {
		// Initial RTO: a round trip (two wire crossings) plus generous
		// slack for transmit serialisation and firmware turnaround.
		n.rtoInit = 4*n.net.Wire() + 8*sim.Microsecond
	}
	n.rtoMax = 64 * n.rtoInit
	if n.cfg.RelWindow <= 0 {
		n.cfg.RelWindow = 64
	}
	n.ep.Ingress = n.relIngress
}

// peer returns (allocating) the protocol state for remote NIC id.
func (n *NIC) peer(id int) *relPeer {
	pr := n.relPeers[id]
	if pr == nil {
		pr = &relPeer{id: id, nextSeq: 1, expected: 1, rto: n.rtoInit}
		n.relPeers[id] = pr
	}
	return pr
}

// send is the firmware's transmit entry point for data-plane packets.
// Without the reliability engine it is a straight network send (the
// paper's reliable in-order world); with it, the packet is sequenced,
// checksummed, and window-controlled.
func (n *NIC) send(pkt network.Packet) {
	if !n.cfg.Reliable {
		n.net.Send(pkt)
		return
	}
	pr := n.peer(pkt.Dst)
	pkt.RelSeq = pr.nextSeq
	pr.nextSeq++
	pkt.Seal()
	n.rel.DataSent++
	if len(pr.unacked) >= n.cfg.RelWindow {
		pr.sendQ = append(pr.sendQ, pkt)
		return
	}
	n.txData(pr, pkt)
}

// txData admits one sequenced packet to the window and puts it on the wire.
func (n *NIC) txData(pr *relPeer, pkt network.Packet) {
	pr.unacked = append(pr.unacked, pkt)
	n.net.Send(pkt)
	if !pr.armed && !pr.paused {
		n.armTimer(pr, pr.rto, func() { n.relTimeout(pr) })
	}
}

// sendCtl emits an unsequenced, checksummed control packet.
func (n *NIC) sendCtl(kind network.PacketKind, dst int, seq uint64) {
	pkt := network.Packet{Kind: kind, Src: n.cfg.ID, Dst: dst, RelSeq: seq}
	pkt.Seal()
	n.net.Send(pkt)
}

// armTimer (re)arms the peer's single timer slot.
func (n *NIC) armTimer(pr *relPeer, d sim.Time, fn func()) {
	if pr.armed {
		n.eng.Cancel(pr.timer)
	}
	pr.armed = true
	pr.timer = n.eng.ScheduleCancellable(d, func() {
		pr.armed = false
		fn()
	})
}

func (n *NIC) disarmTimer(pr *relPeer) {
	if pr.armed {
		n.eng.Cancel(pr.timer)
		pr.armed = false
	}
}

// relTimeout is the go-back-N timeout: resend the full window with
// exponential backoff. The timer stays armed while anything is unacked.
func (n *NIC) relTimeout(pr *relPeer) {
	if len(pr.unacked) == 0 {
		return
	}
	n.rel.Timeouts++
	pr.rto *= 2
	if pr.rto > n.rtoMax {
		pr.rto = n.rtoMax
	}
	for _, pkt := range pr.unacked {
		n.rel.Retransmits++
		n.net.Send(pkt)
	}
	n.armTimer(pr, pr.rto, func() { n.relTimeout(pr) })
}

// relIngress is the endpoint delivery hook: every arriving packet passes
// through here before the ALPU header replication and the Rx FIFO.
// Returning true hands the packet to the normal receive path.
func (n *NIC) relIngress(pkt network.Packet) bool {
	if !pkt.ChecksumOK() {
		n.rel.CsumDrops++
		if pkt.Kind != network.Ack && pkt.Kind != network.Nack && pkt.Kind != network.RNR {
			n.peer(pkt.Src).stalled = true
		}
		return false
	}
	switch pkt.Kind {
	case network.Ack:
		n.rel.AcksRecv++
		n.handleAck(n.peer(pkt.Src), pkt.RelSeq)
		return false
	case network.Nack:
		n.rel.NacksRecv++
		n.handleNack(n.peer(pkt.Src), pkt.RelSeq)
		return false
	case network.RNR:
		n.rel.RNRRecv++
		n.handleRNR(n.peer(pkt.Src), pkt.RelSeq)
		return false
	}

	pr := n.peer(pkt.Src)
	switch {
	case pkt.RelSeq < pr.expected:
		// Duplicate (retransmit raced the ACK, or the network duplicated
		// it): discard and re-ACK so the sender's window advances.
		n.rel.DupDrops++
		n.sendAckNow(pr)
		return false
	case pkt.RelSeq > pr.expected:
		// Sequence gap: go-back-N discards everything past the gap and
		// asks for the expected packet, once per gap episode.
		n.rel.GapDrops++
		pr.stalled = true
		if pr.nackedFor != pr.expected {
			pr.nackedFor = pr.expected
			n.rel.NacksSent++
			n.sendCtl(network.Nack, pr.id, pr.expected)
		}
		return false
	}

	// In-order: admission control before the sequence advances, so a
	// refused packet is simply retransmitted later.
	if n.refuseAdmission(pkt) {
		n.rel.RNRSent++
		pr.stalled = true
		n.sendCtl(network.RNR, pr.id, pkt.RelSeq)
		return false
	}

	pr.expected++
	pr.nackedFor = 0
	if pr.stalled {
		pr.stalled = false
		n.rel.Recoveries++
	}
	if pkt.Kind == network.Eager || pkt.Kind == network.RTS {
		n.admittedHdrs++
	}
	n.sendAckNow(pr)
	return true
}

// refuseAdmission reports whether an in-order packet must be RNR-refused:
// the Rx FIFO has no room, or it is a matchable header (EAGER/RTS) and the
// bounded unexpected queue — plus headers already admitted but not yet
// processed by the firmware — is at its limit.
func (n *NIC) refuseAdmission(pkt network.Packet) bool {
	if n.ep.RxQ.Full() {
		return true
	}
	if n.cfg.MaxUnexpected > 0 && (pkt.Kind == network.Eager || pkt.Kind == network.RTS) {
		if n.queueLen(&n.unexp)+n.admittedHdrs >= n.cfg.MaxUnexpected {
			return true
		}
	}
	return false
}

// sendAckNow cumulatively ACKs everything accepted so far from pr.
func (n *NIC) sendAckNow(pr *relPeer) {
	n.rel.AcksSent++
	n.sendCtl(network.Ack, pr.id, pr.expected-1)
}

// handleAck processes a cumulative acknowledgement up to seq.
func (n *NIC) handleAck(pr *relPeer, seq uint64) {
	progress := false
	for len(pr.unacked) > 0 && pr.unacked[0].RelSeq <= seq {
		pr.unacked = pr.unacked[1:]
		progress = true
	}
	if !progress {
		return
	}
	// Forward progress: the path works; reset the backoff.
	pr.rto = n.rtoInit
	pr.paused = false
	// Refill the window from the software send queue.
	for len(pr.sendQ) > 0 && len(pr.unacked) < n.cfg.RelWindow {
		pkt := pr.sendQ[0]
		pr.sendQ = pr.sendQ[1:]
		n.txData(pr, pkt)
	}
	if len(pr.unacked) == 0 {
		n.disarmTimer(pr)
		return
	}
	n.armTimer(pr, pr.rto, func() { n.relTimeout(pr) })
}

// handleNack is the go-back-N retransmit request: the receiver discarded
// everything from seq on. Duplicate NACKs for the same point inside one
// round trip are suppressed to avoid a retransmit storm.
func (n *NIC) handleNack(pr *relPeer, seq uint64) {
	if len(pr.unacked) == 0 {
		return
	}
	if seq == pr.lastNack && n.eng.Now() < pr.lastAt+pr.rto {
		return
	}
	pr.lastNack = seq
	pr.lastAt = n.eng.Now()
	n.goBack(pr, seq)
}

// handleRNR pauses the window and retries from seq after a backoff: the
// receiver had no room, so immediate retransmission would only be refused
// again. Each consecutive RNR doubles the pause (reset on ACK progress).
func (n *NIC) handleRNR(pr *relPeer, seq uint64) {
	if len(pr.unacked) == 0 {
		return
	}
	pr.paused = true
	pause := pr.rto
	pr.rto *= 2
	if pr.rto > n.rtoMax {
		pr.rto = n.rtoMax
	}
	n.armTimer(pr, pause, func() {
		pr.paused = false
		n.goBack(pr, seq)
		if !pr.armed && len(pr.unacked) > 0 {
			n.armTimer(pr, pr.rto, func() { n.relTimeout(pr) })
		}
	})
}

// goBack retransmits every unacked packet with RelSeq >= seq, in order.
func (n *NIC) goBack(pr *relPeer, seq uint64) {
	for _, pkt := range pr.unacked {
		if pkt.RelSeq < seq {
			continue
		}
		n.rel.Retransmits++
		n.net.Send(pkt)
	}
}

// Rel returns a snapshot of the reliability counters.
func (n *NIC) Rel() RelStats { return n.rel }

// RelPending reports outstanding transmit state (unacked + queued), for
// drain assertions in tests and the watchdog diagnostic dump.
func (n *NIC) RelPending() int {
	total := 0
	for _, pr := range n.relPeers {
		if pr != nil {
			total += len(pr.unacked) + len(pr.sendQ)
		}
	}
	return total
}

// Diag renders the NIC's live state for watchdog diagnostic dumps: queue
// occupancy, recoverable-error counters, and (when the reliability engine
// runs) its protocol counters and outstanding transmit state.
func (n *NIC) Diag() string {
	s := fmt.Sprintf("nic%d: rxq=%d hostq=%d posted=%d unexp=%d errs[%s]",
		n.cfg.ID, n.ep.RxQ.Len(), n.HostQ.Len(),
		n.queueLen(&n.posted), n.queueLen(&n.unexp), n.errs.String())
	if !n.cfg.Reliable {
		return s
	}
	return s + fmt.Sprintf(
		"\n  rel: sent=%d retx=%d timeouts=%d acks=%d/%d nacks=%d rnr=%d drops(csum/dup/gap)=%d/%d/%d pending=%d",
		n.rel.DataSent, n.rel.Retransmits, n.rel.Timeouts,
		n.rel.AcksSent, n.rel.AcksRecv, n.rel.NacksSent, n.rel.RNRSent,
		n.rel.CsumDrops, n.rel.DupDrops, n.rel.GapDrops, n.RelPending())
}
