package nic_test

import (
	"errors"
	"testing"

	"alpusim/internal/alpu"
	"alpusim/internal/mpi"
	"alpusim/internal/network"
	"alpusim/internal/nic"
	"alpusim/internal/sim"
)

// buildQueue pre-posts q receives on rank 1 and then matches one probe.
func buildQueue(t *testing.T, nc nic.Config, q int) *mpi.World {
	t.Helper()
	return mpi.RunPrograms(mpi.Config{Ranks: 2, NIC: nc}, []mpi.Program{
		func(r *mpi.Rank) {
			r.Barrier()
			r.Send(1, 0x500, 0)
		},
		func(r *mpi.Rank) {
			for i := 0; i < q; i++ {
				r.Irecv(0, 0x100+i, 0)
			}
			req := r.Irecv(0, 0x500, 0)
			r.Barrier()
			r.Wait(req)
		},
	})
}

// TestThresholdHeuristic checks §VI-B's software heuristic: below the
// threshold the firmware leaves the queue in software; above it the ALPU
// is engaged.
func TestThresholdHeuristic(t *testing.T) {
	cfg := nic.Config{UseALPU: true, Cells: 128, Threshold: 50}

	w := buildQueue(t, cfg, 10) // below threshold
	if n := w.NICs[1].Stats().ALPUInserts; n != 0 {
		t.Errorf("below threshold: %d inserts, want 0", n)
	}
	// Below the threshold the unit is never engaged: no probes, no result
	// reads, no interface penalty (§IV-C / §VI-B).
	st := w.NICs[1].Stats()
	if st.ALPUPostedMisses != 0 || st.ALPUPostedHits != 0 {
		t.Errorf("below threshold: ALPU interactions happened (hits=%d misses=%d)",
			st.ALPUPostedHits, st.ALPUPostedMisses)
	}
	if st.EntriesTraversed < 10 {
		t.Errorf("below threshold: software search traversed %d entries, want >= 10", st.EntriesTraversed)
	}

	w = buildQueue(t, cfg, 80) // above threshold
	if n := w.NICs[1].Stats().ALPUInserts; n == 0 {
		t.Error("above threshold: no inserts")
	}
	if w.NICs[1].Stats().ALPUPostedHits == 0 {
		t.Error("above threshold: probe missed the ALPU")
	}
}

// TestInsertBatching: conglomerated inserts (§IV-B) need far fewer
// START/STOP INSERT episodes than one-at-a-time insertion.
func TestInsertBatching(t *testing.T) {
	batched := nic.Config{UseALPU: true, Cells: 128}
	single := nic.Config{UseALPU: true, Cells: 128, InsertBatchMax: 1}

	wb := buildQueue(t, batched, 60)
	ws := buildQueue(t, single, 60)

	eb := wb.NICs[1].Stats().InsertEpisodes
	es := ws.NICs[1].Stats().InsertEpisodes
	if es < 60 {
		t.Errorf("single-insert mode ran %d episodes, want >= 60", es)
	}
	if eb*4 > es {
		t.Errorf("batching did not help: %d batched vs %d single episodes", eb, es)
	}
	// Counts may differ by a couple of control-traffic (barrier) receives
	// whose insertion races their match differently under each pacing.
	ib, is := wb.NICs[1].Stats().ALPUInserts, ws.NICs[1].Stats().ALPUInserts
	if d := int64(ib) - int64(is); d < -2 || d > 2 {
		t.Errorf("insert counts differ too much: %d vs %d", ib, is)
	}
}

// TestALPUOverflowPrefix: with more receives than cells, the ALPU holds
// the oldest prefix and the firmware searches only the overflow suffix.
func TestALPUOverflowPrefix(t *testing.T) {
	cfg := nic.Config{UseALPU: true, Cells: 32}
	w := mpi.RunPrograms(mpi.Config{Ranks: 2, NIC: cfg}, []mpi.Program{
		func(r *mpi.Rank) {
			r.Barrier()
			// Match deep in the overflow region (position 50 of 60).
			r.Send(1, 0x100+50, 0)
		},
		func(r *mpi.Rank) {
			reqs := make([]*mpi.Request, 60)
			for i := 0; i < 60; i++ {
				reqs[i] = r.Irecv(0, 0x100+i, 0)
			}
			r.Barrier()
			r.Wait(reqs[50])
		},
	})
	st := w.NICs[1].Stats()
	if st.ALPUPostedMisses == 0 {
		t.Error("overflow probe should miss the ALPU")
	}
	// Suffix searches traverse only past the 32-entry prefix: ~19 for the
	// probe plus ~28 for the barrier-release header that also misses the
	// ALPU — far fewer than the 50+ a full software search would cost.
	if st.EntriesTraversed < 19 || st.EntriesTraversed > 60 {
		t.Errorf("suffix searches traversed %d entries, want ~47", st.EntriesTraversed)
	}
	if dev := w.NICs[1].PostedALPU(); dev.Stats().MaxOccupancy != 32 {
		t.Errorf("ALPU max occupancy %d, want 32 (full prefix)", dev.Stats().MaxOccupancy)
	}
}

// TestALPURefillAfterMatch: consuming an ALPU entry makes room and the
// firmware tops the unit back up from the software suffix.
func TestALPURefillAfterMatch(t *testing.T) {
	cfg := nic.Config{UseALPU: true, Cells: 16}
	w := mpi.RunPrograms(mpi.Config{Ranks: 2, NIC: cfg}, []mpi.Program{
		func(r *mpi.Rank) {
			r.Barrier()
			for k := 0; k < 8; k++ {
				r.Send(1, 0x100+k, 0)
				r.Recv(1, 0x200+k, 0) // ack => firmware idles => refill
			}
		},
		func(r *mpi.Rank) {
			reqs := make([]*mpi.Request, 24)
			for i := 0; i < 24; i++ {
				reqs[i] = r.Irecv(0, 0x100+i, 0)
			}
			r.Barrier()
			for k := 0; k < 8; k++ {
				r.Wait(reqs[k])
				r.Send(0, 0x200+k, 0)
			}
		},
	})
	st := w.NICs[1].Stats()
	// 16 initial + one refill per consumed entry (8) = 24 total inserts.
	if st.ALPUInserts != 24 {
		t.Errorf("inserts = %d, want 24 (16 initial + 8 refills)", st.ALPUInserts)
	}
	if st.ALPUPostedHits != 8 {
		t.Errorf("ALPU hits = %d, want 8", st.ALPUPostedHits)
	}
}

// TestInsertRacePurge reproduces the §IV-C ordering race: a header whose
// MATCH FAILURE was generated just before an insert episode loaded the
// matching entry. The firmware must resolve the header against the
// pre-episode list state and purge the stale ALPU copy.
func TestInsertRacePurge(t *testing.T) {
	cfg := nic.Config{UseALPU: true, Cells: 128}
	w := mpi.RunPrograms(mpi.Config{Ranks: 2, NIC: cfg}, []mpi.Program{
		func(r *mpi.Rank) {
			// The send leaves before rank 1 posts anything; the recv post
			// and the header race at rank 1's NIC.
			req := r.Isend(1, 1, 32<<10)
			r.Barrier()
			r.Wait(req)
		},
		func(r *mpi.Rank) {
			r.Barrier()
			r.Recv(0, 1, 32<<10)
		},
	})
	// The run completing at all is the regression check (this pattern
	// deadlocked before the purge path existed); when the race fires the
	// purge counters record it on one of the NICs.
	total := w.NICs[0].Stats().ALPUPurges + w.NICs[1].Stats().ALPUPurges
	t.Logf("purges: %d", total)
	for i, n := range w.NICs {
		if n.PostedLen() != 0 || n.UnexpLen() != 0 {
			t.Errorf("nic%d: leftover entries posted=%d unexp=%d", i, n.PostedLen(), n.UnexpLen())
		}
	}
}

// TestHashQueueEndToEnd drives the §II hash organisation through real
// traffic, including unexpected messages and a probe.
func TestHashQueueEndToEnd(t *testing.T) {
	cfg := nic.Config{UseHashList: true}
	w := mpi.RunPrograms(mpi.Config{Ranks: 2, NIC: cfg}, []mpi.Program{
		func(r *mpi.Rank) {
			for i := 0; i < 10; i++ {
				r.Send(1, 0x200+i, 0) // unexpected at rank 1
			}
			r.Barrier()
			r.Send(1, 0x300, 64)
		},
		func(r *mpi.Rank) {
			r.Barrier()
			if found, st := r.Iprobe(0, 0x205); !found || st.Tag != 0x205 {
				t.Errorf("hash probe: found=%v st=%+v", found, st)
			}
			// Drain deep-first to exercise hash search + remove.
			for i := 9; i >= 0; i-- {
				r.Recv(0, 0x200+i, 0)
			}
			r.Recv(0, 0x300, 64) // posted-then-matched path
		},
	})
	if w.NICs[1].UnexpLen() != 0 || w.NICs[1].PostedLen() != 0 {
		t.Error("hash queues not drained")
	}
	if w.NICs[1].UnexpDepths().N() == 0 {
		t.Error("hash search depths not recorded")
	}
}

// TestAccessors covers the instrumentation surface.
func TestAccessors(t *testing.T) {
	w := buildQueue(t, nic.Config{UseALPU: true, Cells: 64}, 12)
	n := w.NICs[1]
	if n.Config().Cells != 64 {
		t.Error("Config lost")
	}
	if n.Mem() == nil || n.UnexpALPU() == nil || n.PostedALPU() == nil {
		t.Error("nil accessor")
	}
	if n.PeakPostedLen() < 12 {
		t.Errorf("PeakPostedLen = %d", n.PeakPostedLen())
	}
	if n.PeakUnexpLen() < 0 {
		t.Error("PeakUnexpLen negative")
	}
	if n.PostedDepths().N() == 0 {
		t.Error("no posted depths")
	}
	_ = n.UnexpDepths()
}

// TestALPUConfigOverride covers custom device geometry via ALPUConfig.
func TestALPUConfigOverride(t *testing.T) {
	acfg := alpu.DefaultConfig(alpu.PostedReceives, 0)
	acfg.Geometry.Cells = 0 // filled from Cells
	acfg.Geometry.BlockSize = 8
	cfg := nic.Config{UseALPU: true, Cells: 32, ALPUConfig: &acfg}
	w := buildQueue(t, cfg, 10)
	dev := w.NICs[1].PostedALPU()
	if got := dev.Config().Geometry; got.Cells != 32 || got.BlockSize != 8 {
		t.Errorf("override geometry = %+v", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	w := buildQueue(t, nic.Config{}, 25)
	st := w.NICs[1].Stats()
	if st.PacketsHandled == 0 || st.HostReqsHandled == 0 {
		t.Error("handler counters empty")
	}
	if st.PostedMatches == 0 {
		t.Error("no posted matches recorded")
	}
	// The probe traversed the 25 non-matching entries (plus barrier
	// bookkeeping).
	if st.EntriesTraversed < 25 {
		t.Errorf("EntriesTraversed = %d, want >= 25", st.EntriesTraversed)
	}
	if st.Completions == 0 {
		t.Error("no completions recorded")
	}
}

// TestFallbackSearchPrefixFull pins the prefix-full overflow path: when
// the ALPU holds exactly Cells entries, updateALPU must stop feeding it
// (the inALPU >= cells guard) and every match landing past the prefix must
// resolve through fallbackSearch over the software suffix only.
func TestFallbackSearchPrefixFull(t *testing.T) {
	const cells, posted, hits = 16, 40, 4
	cfg := nic.Config{UseALPU: true, Cells: cells}
	w := mpi.RunPrograms(mpi.Config{Ranks: 2, NIC: cfg}, []mpi.Program{
		func(r *mpi.Rank) {
			r.Barrier()
			// Match from the far end of the overflow region inward; each
			// probe misses the full 16-cell prefix and resolves in software.
			for k := 0; k < hits; k++ {
				r.Send(1, 0x100+(posted-1-k), 0)
				r.Recv(1, 0x200+k, 0)
			}
		},
		func(r *mpi.Rank) {
			reqs := make([]*mpi.Request, posted)
			for i := 0; i < posted; i++ {
				reqs[i] = r.Irecv(0, 0x100+i, 0)
			}
			r.Barrier()
			for k := 0; k < hits; k++ {
				r.Wait(reqs[posted-1-k])
				r.Send(0, 0x200+k, 0)
			}
		},
	})
	st := w.NICs[1].Stats()
	if st.ALPUPostedMisses < hits {
		t.Errorf("ALPUPostedMisses = %d, want >= %d (every probe lands past the prefix)",
			st.ALPUPostedMisses, hits)
	}
	dev := w.NICs[1].PostedALPU()
	if dev.Stats().MaxOccupancy > cells {
		t.Errorf("ALPU occupancy exceeded its %d cells: %d", cells, dev.Stats().MaxOccupancy)
	}
	if w.NICs[1].PostedLen() != posted-hits {
		t.Errorf("posted queue length = %d, want %d", w.NICs[1].PostedLen(), posted-hits)
	}
	if errs := w.NICs[1].ErrorsTotal(); errs != 0 {
		t.Errorf("recoverable errors recorded on a clean run: %d (last: %v)",
			errs, w.NICs[1].LastError())
	}
}

// TestBoundedRxQReliableRecovers: with a tiny Rx FIFO and the reliability
// engine on, a traffic burst must survive via RNR flow control — nothing
// may be silently dropped by the FIFO, and all messages must complete.
func TestBoundedRxQReliableRecovers(t *testing.T) {
	const msgs = 16
	cfg := mpi.Config{Ranks: 2, NIC: nic.Config{Reliable: true, RxQDepth: 2}}
	w := mpi.RunPrograms(cfg, []mpi.Program{
		func(r *mpi.Rank) {
			reqs := make([]*mpi.Request, msgs)
			for i := 0; i < msgs; i++ {
				reqs[i] = r.Isend(1, i, 256)
			}
			r.Waitall(reqs...)
		},
		func(r *mpi.Rank) {
			reqs := make([]*mpi.Request, msgs)
			for i := 0; i < msgs; i++ {
				reqs[i] = r.Irecv(0, i, 256)
			}
			for i, req := range reqs {
				r.Wait(req)
				if st := req.Status(); st.Tag != i {
					t.Errorf("recv %d matched tag %d", i, st.Tag)
				}
			}
		},
	})
	for i, n := range w.NICs {
		if d := n.RxDrops(); d != 0 {
			t.Errorf("nic%d: reliable endpoint dropped %d packets in the Rx FIFO", i, d)
		}
		if p := n.RelPending(); p != 0 {
			t.Errorf("nic%d: %d packets unacked after drain", i, p)
		}
	}
}

// TestStaleCTSCountedNotFatal: a CTS naming a send the NIC does not track
// (stale control traffic) must be counted as a recoverable protocol error
// and dropped — the firmware used to panic here.
func TestStaleCTSCountedNotFatal(t *testing.T) {
	eng := sim.NewEngine()
	net := network.New(eng, 2, 0, 0)
	n := nic.New(eng, nic.Config{ID: 1}, net)
	net.Send(network.Packet{Kind: network.CTS, Src: 0, Dst: 1, SenderReq: 42})
	eng.Run()
	if got := n.ErrorCount("cts-unknown-send"); got != 1 {
		t.Errorf("cts-unknown-send counter = %d, want 1 (total: %d)", got, n.ErrorsTotal())
	}
	err := n.LastError()
	var perr *nic.ProtocolError
	if !errors.As(err, &perr) || perr.Op != "cts-unknown-send" || perr.NIC != 1 {
		t.Errorf("LastError = %v, want a cts-unknown-send ProtocolError for nic1", err)
	}
}
