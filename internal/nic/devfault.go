// Device-fault tolerance: the firmware-side recovery machinery for a
// misbehaving or dying ALPU, and firmware crash/restart itself.
//
// Detection is end-to-end: the firmware never peeks at device internals.
// It sees FAULT responses (the device scrubber quarantining parity-bad
// cells) and response timeouts (results lost in the FIFO, or a device
// that went dark). Each detection is a *strike*; every strike triggers a
// resync — RESET the unit and discard the mirror protocol state, leaving
// the host-side shadow list as the sole truth, to be reloaded through
// ordinary insert episodes gated by an exponentially backed-off retry
// time. When strikes reach the limit without an intervening successful
// interaction, the firmware declares the device dead and hot-fails-over:
// the shadow list is rebuilt into a match.HashList (in list order, so
// relative priority is preserved) and all matching continues in software.
//
// The correctness argument for zero lost/duplicated/misordered matches is
// in DESIGN.md §5.10: the software list always contains every unmatched
// entry (an ALPU delete is only mirrored when its MATCH SUCCESS response
// is consumed), a corrupted cell is quarantined by parity before any
// probe can match it, and a stale MATCH SUCCESS consumed after a resync
// resolves through the cleared tag table into a full software search.
package nic

import (
	"fmt"

	"alpusim/internal/alpu"
	"alpusim/internal/match"
	"alpusim/internal/params"
	"alpusim/internal/proc"
	"alpusim/internal/sim"
)

// Recovery-policy defaults (overridable through Config).
const (
	defaultStrikeLimit    = 5
	defaultResultTimeout  = 10 * sim.Microsecond
	defaultRetryBase      = 20 * sim.Microsecond
	defaultRetryCap       = 320 * sim.Microsecond
	defaultFwRestartDelay = 10 * sim.Microsecond
)

// FirmwareCrash is the typed panic value a crash-injected firmware raises.
// The firmware supervisor recovers exactly this type, restarts the loop
// after FwRestartDelay, and replays device state from the shadow queues;
// any other panic keeps propagating.
type FirmwareCrash struct {
	NIC int
	At  sim.Time
}

func (c *FirmwareCrash) Error() string {
	return fmt.Sprintf("nic%d: injected firmware crash at %v", c.NIC, c.At)
}

// fwRand is the firmware's private splitmix64 crash stream (the same
// generator the network and alpu fault layers use; tiny enough to keep
// per-package so the fault layers stay dependency-free).
type fwRand struct{ state uint64 }

func newFwRand(seed uint64) *fwRand {
	return &fwRand{state: seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
}

func (r *fwRand) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < p
}

// devFaultsOn reports whether any device-level fault class is configured —
// the gate for response timeouts and the recovery machinery. Fault-free
// worlds take exactly the pre-existing code paths.
func (n *NIC) devFaultsOn() bool {
	if n.cfg.ALPUFaults.Active() || n.cfg.FwCrashProb > 0 {
		return true
	}
	for _, f := range n.cfg.ShardFaults {
		if f.Active() {
			return true
		}
	}
	return false
}

func (n *NIC) strikeLimit() int {
	if n.cfg.FaultStrikeLimit > 0 {
		return n.cfg.FaultStrikeLimit
	}
	return defaultStrikeLimit
}

// resultWait returns the response-wait budget: 0 (wait forever) without
// device faults, else the base timeout scaled exponentially by the
// queue's strike count — each consecutive fault buys the device a longer
// grace period before the next retry, capped.
func (n *NIC) resultWait(q *mirrorQueue) sim.Time {
	if !n.devFaultsOn() {
		return 0
	}
	t := n.cfg.FaultResultTimeout
	if t == 0 {
		t = defaultResultTimeout
	}
	for s := 0; s < q.strikes && s < 5; s++ {
		t *= 2
	}
	return t
}

// retryBackoff computes the re-engagement delay after the given strike
// count: base << (strikes-1), capped.
func (n *NIC) retryBackoff(strikes int) sim.Time {
	base := n.cfg.FaultRetryBase
	if base == 0 {
		base = defaultRetryBase
	}
	d := base
	for s := 1; s < strikes && d < defaultRetryCap; s++ {
		d *= 2
	}
	if d > defaultRetryCap {
		d = defaultRetryCap
	}
	return d
}

// failCounter bumps a live failover counter under "nic<ID>/failover/...".
func (n *NIC) failCounter(name string) {
	n.reg.Counter(fmt.Sprintf("nic%d/failover/%s", n.cfg.ID, name)).Inc()
}

// noteDeviceFault records one strike against a queue's device: telemetry,
// a recoverable protocol error (which feeds the log, the error hook and
// the flight recorder), the exponential retry gate, and a pending-resync
// mark that the next safe point acts on.
func (n *NIC) noteDeviceFault(q *mirrorQueue, op, detail string) {
	n.faultEvents++
	q.strikes++
	q.needResync = true
	q.retryAt = n.eng.Now() + n.retryBackoff(q.strikes)
	n.failCounter("strikes")
	n.noteError(&ProtocolError{NIC: n.cfg.ID, Op: "alpu-" + op,
		Detail: fmt.Sprintf("%s ALPU strike %d/%d: %s", q.name, q.strikes, n.strikeLimit(), detail)})
	if n.tracer != nil {
		n.tracer.Instant(n.cfg.ID, tidFirmware, "fault", "alpu-"+op, n.eng.Now())
	}
}

// deviceFault is noteDeviceFault plus immediate repair — callable only
// from safe points (not mid-FIFO-wait, not mid-insert-bookkeeping).
func (n *NIC) deviceFault(e *proc.Engine, q *mirrorQueue, op, detail string) {
	n.noteDeviceFault(q, op, detail)
	n.repairALPU(e, q)
}

// noteDeviceSuccess clears the strike counter after a successful device
// interaction: faults must be *repeated* (consecutive) to kill the unit.
func (n *NIC) noteDeviceSuccess(q *mirrorQueue) {
	if q.strikes > 0 && !q.needResync {
		q.strikes = 0
		q.retryAt = 0
	}
}

// maintainDevices is called at the firmware loop top: act on any pending
// resync marks left by fault detections inside protocol waits, and
// health-check struck units whose retry gate has opened.
func (n *NIC) maintainDevices(e *proc.Engine) {
	if !n.cfg.UseALPU || !n.devFaultsOn() {
		return
	}
	for _, q := range n.alpuQueues {
		if q.needResync {
			n.repairALPU(e, q)
		}
		if q.strikes > 0 && !q.alpuDead && n.eng.Now() >= q.retryAt {
			n.healthCheckALPU(e, q)
		}
	}
}

// healthCheckALPU verifies a struck unit is answering before it is
// trusted with traffic again: an empty insert episode, whose START
// ACKNOWLEDGE a live device must return. A silent device strikes again —
// so a dead unit is driven to the strike limit and failover by the
// firmware itself, at backoff intervals, independent of whether traffic
// happens to re-engage it. A live one clears its strike count.
func (n *NIC) healthCheckALPU(e *proc.Engine, q *mirrorQueue) {
	e.BusTransaction(params.ALPUCommandCycles)
	n.pushCommand(e, q, alpu.Command{Op: alpu.OpStartInsert})
	for {
		r, ok := n.readResult(e, q)
		if !ok {
			n.deviceFault(e, q, "health-timeout", "health check never acknowledged")
			return
		}
		if r.Kind == alpu.RespStartAck {
			break
		}
		q.pending = append(q.pending, stashedResp{r: r, from: q.inALPU})
	}
	e.BusTransaction(params.ALPUCommandCycles)
	n.pushCommand(e, q, alpu.Command{Op: alpu.OpStopInsert})
	n.noteDeviceSuccess(q)
}

// repairALPU resolves a pending resync: escalate to failover once the
// strike limit is reached, otherwise resync the unit.
func (n *NIC) repairALPU(e *proc.Engine, q *mirrorQueue) {
	q.needResync = false
	if q.alpuDead {
		return
	}
	if q.strikes >= n.strikeLimit() {
		n.failoverALPU(e, q)
		return
	}
	n.resyncALPU(e, q)
}

// resyncALPU discards the hardware mirror and rebuilds from the shadow:
// the unit is disengaged (no new probes flow while it is being repaired),
// told to exit any insert episode and RESET, and *quiesced* — every
// response it still emits from old-era probes is discarded before the tag
// table, probed set and pending responses are dropped and the not-in-ALPU
// pointer returns to zero. Matching runs in pure software until the retry
// gate opens and the next insert episode re-engages the unit and reloads
// the list from the front.
//
// The quiesce is load-bearing: the RESET is asynchronous, so a probe
// already queued in the device can be answered against pre-reset state
// *after* a naive drain. Such a response carries a tag and correlation
// key from the old era; once tags are reallocated by the reload, a stale
// MATCH SUCCESS would resolve through a reused tag to the wrong entry and
// silently consume the wrong receive. After the quiesce the device is
// provably silent, so old-era output cannot leak into the new era.
func (n *NIC) resyncALPU(e *proc.Engine, q *mirrorQueue) {
	n.failCounter("resyncs")
	if n.cfg.Log != nil {
		n.cfg.Log.Warn("alpu resync", "nic", n.cfg.ID, "queue", q.name,
			"strikes", q.strikes, "inALPU", q.inALPU)
	}
	q.engaged = false
	// STOP INSERT first: if the fault struck mid-episode the device is in
	// insert mode, where RESET would be discarded (§III-C); out of insert
	// mode the stray STOP is itself discarded. Then RESET clears the array.
	e.BusTransaction(params.ALPUCommandCycles)
	n.pushCommand(e, q, alpu.Command{Op: alpu.OpStopInsert})
	e.BusTransaction(params.ALPUCommandCycles)
	n.pushCommand(e, q, alpu.Command{Op: alpu.OpReset})
	n.quiesceDevice(e, q)
	q.pending = q.pending[:0]
	for k := range q.probed {
		delete(q.probed, k)
	}
	for t := range q.tags {
		delete(q.tags, t)
	}
	if q.over != nil {
		// Fabric shard: with the pointer returning to zero the whole list
		// becomes the unloaded suffix, so the formerly mirrored prefix
		// demotes back into the overflow hash, keeping over == list[0:]
		// exact. The quiesce above guarantees no old-era response can
		// surface, so the stale quarantine empties with the tag table.
		for i := 0; i < q.inALPU && i < q.list.Len(); i++ {
			entry := q.list.At(i)
			q.over.InsertOrdered(entry)
			q.demotions++
			e.Cycles(4)
			e.Store(hashBucketAddr(entry.Bits), 8)
		}
		for t := range q.stale {
			delete(q.stale, t)
		}
	}
	q.inALPU = 0
}

// quiesceDevice waits until the unit has consumed every queued command
// and probe and gone silent, discarding everything it emits meanwhile.
// Disengagement (done by the caller) stops new probes from being
// replicated, so the backlog is finite; the wait is bounded anyway so a
// wedged device cannot hang the repair. Simulated time only — recovery
// is allowed to be slow, never wrong.
func (n *NIC) quiesceDevice(e *proc.Engine, q *mirrorQueue) {
	const step = 1 * sim.Microsecond
	idle := 0
	for budget := 0; budget < 64; budget++ {
		drained := false
		for {
			r, ok := q.dev.Results.Pop()
			if !ok {
				break
			}
			drained = true
			if r.Kind == alpu.RespFault {
				n.failCounter("fault_responses")
			}
			e.BusTransaction(params.ALPUResultPollCycles)
		}
		if !drained && q.dev.Commands.Len() == 0 && q.dev.Headers.Len() == 0 {
			// All FIFOs empty and nothing new emerged: after two silent
			// windows (longer than any single device operation) the unit
			// cannot produce further old-era output.
			idle++
			if idle >= 2 {
				return
			}
		} else {
			idle = 0
		}
		e.P.Sleep(step)
	}
}

// failoverALPU declares the device dead and hot-fails-over to software
// matching: the shadow list is rebuilt into a hash-list (in list order —
// HashList.Append stamps ascending sequence numbers, so first-posted
// priority is preserved exactly) and the queue permanently takes the
// software hash path. Probes stop flowing (engaged=false gates both
// hardware replication hooks), so from this instant the unit is inert.
func (n *NIC) failoverALPU(e *proc.Engine, q *mirrorQueue) {
	q.alpuDead = true
	q.engaged = false
	q.needResync = false
	q.pending = nil
	for k := range q.probed {
		delete(q.probed, k)
	}
	for t := range q.tags {
		delete(q.tags, t)
	}
	q.inALPU = 0
	if q.over != nil {
		// Fabric shard: the hash shadow built below takes over as the only
		// live structure; the overflow mirror and stale quarantine retire
		// with the device.
		q.over = nil
		for t := range q.stale {
			delete(q.stale, t)
		}
	}
	n.failCounter("deaths")
	n.failCounter("shadow_rebuilds")
	if n.cfg.Log != nil {
		n.cfg.Log.Warn("alpu declared dead, failing over to software matching",
			"nic", n.cfg.ID, "queue", q.name, "strikes", q.strikes, "entries", q.list.Len())
	}
	if n.tracer != nil {
		n.tracer.Instant(n.cfg.ID, tidFirmware, "fault", "alpu-failover", n.eng.Now())
	}
	// Rebuild the fallback structure from the shadow list, charging the
	// reconstruction like the hash inserts it is.
	q.hash = match.NewHashList()
	for i := 0; i < q.list.Len(); i++ {
		entry := q.list.At(i)
		q.hash.Append(entry)
		e.Cycles(4)
		e.Store(hashBucketAddr(entry.Bits), 8)
	}
	// Best-effort quiesce: if the device is merely flaky (not dark), a
	// RESET stops it answering probes already in its header FIFO. A dead
	// device discards this silently.
	q.dev.PushCommand(alpu.Command{Op: alpu.OpStopInsert})
	q.dev.PushCommand(alpu.Command{Op: alpu.OpReset})
}

// maybeCrash injects a firmware crash: drawn once per pending work item
// at the loop top, *before* the item is popped, so nothing is ever half
// applied — the queued work survives the crash and is replayed by the
// restarted loop.
func (n *NIC) maybeCrash() {
	if n.crashRng == nil || !n.crashRng.chance(n.cfg.FwCrashProb) {
		return
	}
	n.failCounter("fw_crashes")
	if n.cfg.Log != nil {
		n.cfg.Log.Warn("firmware crash injected", "nic", n.cfg.ID)
	}
	panic(&FirmwareCrash{NIC: n.cfg.ID, At: n.eng.Now()})
}

// fwRestartDelay is the modelled reboot time of the embedded processor.
func (n *NIC) fwRestartDelay() sim.Time {
	if n.cfg.FwRestartDelay > 0 {
		return n.cfg.FwRestartDelay
	}
	return defaultFwRestartDelay
}

// recoverFirmware is the post-crash state replay: every live ALPU mirror
// is marked for resync, so the first loop iteration rebuilds the devices
// from the host-side shadow queues before touching new work. Host and
// network queues were never half-consumed (maybeCrash fires before any
// pop), so no request or packet is lost.
func (n *NIC) recoverFirmware() {
	n.failCounter("fw_restarts")
	if n.cfg.Log != nil {
		n.cfg.Log.Warn("firmware restarted", "nic", n.cfg.ID)
	}
	if !n.cfg.UseALPU {
		return
	}
	for _, q := range n.alpuQueues {
		if !q.alpuDead && q.engaged {
			q.needResync = true
		}
	}
}
