package nic_test

import (
	"testing"

	"alpusim/internal/alpu"
	"alpusim/internal/mpi"
	"alpusim/internal/nic"
	"alpusim/internal/sim"
)

// devFaultWatchdog bounds the faulty worlds in this file: recovery costs
// simulated time (timeouts, backoff, firmware reboots), but a correct
// failover still drains these plans in well under 50 ms.
const devFaultWatchdog = 50 * sim.Millisecond

// runPipeline drives msgs uniquely-tagged eager messages 0->1 with all
// receives pre-posted (so the posted queue is long enough to engage the
// ALPU), optionally pausing the sender mid-stream so a scheduled device
// death lands inside the traffic. Every receive must complete with the
// matching envelope — faults may cost time, never correctness.
func runPipeline(t *testing.T, nc nic.Config, msgs int, pause sim.Time) *mpi.World {
	t.Helper()
	var statuses []mpi.Status
	w := mpi.RunPrograms(mpi.Config{Ranks: 2, NIC: nc, WatchdogLimit: devFaultWatchdog}, []mpi.Program{
		func(r *mpi.Rank) {
			r.Barrier()
			for i := 0; i < msgs; i++ {
				if pause > 0 && i == msgs/2 {
					r.Compute(pause)
				}
				r.Wait(r.Isend(1, 0x100+i, 32))
			}
		},
		func(r *mpi.Rank) {
			reqs := make([]*mpi.Request, msgs)
			for i := 0; i < msgs; i++ {
				reqs[i] = r.Irecv(0, 0x100+i, 32)
			}
			r.Barrier()
			for i := 0; i < msgs; i++ {
				r.Wait(reqs[i])
				statuses = append(statuses, reqs[i].Status())
			}
		},
	})
	if len(statuses) != msgs {
		t.Fatalf("completed %d receives, want %d", len(statuses), msgs)
	}
	for i, st := range statuses {
		if st.Source != 0 || st.Tag != 0x100+i {
			t.Errorf("receive %d matched wrong envelope: %+v", i, st)
		}
	}
	if n := w.NICs[1]; n.PostedLen() != 0 || n.UnexpLen() != 0 {
		t.Errorf("leftovers after drain: posted=%d unexp=%d", n.PostedLen(), n.UnexpLen())
	}
	return w
}

// TestALPUDeathFailsOverMidRun is the tentpole scenario at NIC scope: the
// posted-receive unit dies mid-traffic, the firmware strikes out through
// response timeouts, declares it dead, and every remaining message is
// matched by the software hash shadow — no loss, no hang.
func TestALPUDeathFailsOverMidRun(t *testing.T) {
	cfg := nic.Config{
		UseALPU: true, Cells: 32,
		ALPUFaults: &alpu.FaultModel{Seed: 3, DeathAt: 40 * sim.Microsecond},
		// Tight recovery policy so the strike ladder (timeouts plus
		// exponential backoff between health checks) fits inside the run.
		FaultResultTimeout: 1 * sim.Microsecond,
		FaultRetryBase:     3 * sim.Microsecond,
	}
	w := runPipeline(t, cfg, 128, 600*sim.Microsecond)
	n := w.NICs[1]
	if !n.ALPUDead("posted") {
		t.Fatalf("posted ALPU not declared dead after its device went dark (strikes=%d resyncs=%d deaths=%d unexpDead=%v)",
			n.FailoverCount("strikes"), n.FailoverCount("resyncs"),
			n.FailoverCount("deaths"), n.ALPUDead("unexp"))
	}
	if n.FailoverCount("deaths") == 0 || n.FailoverCount("shadow_rebuilds") == 0 {
		t.Errorf("failover not recorded: deaths=%d rebuilds=%d",
			n.FailoverCount("deaths"), n.FailoverCount("shadow_rebuilds"))
	}
	if n.FailoverCount("strikes") < 5 {
		t.Errorf("death declared after only %d strikes", n.FailoverCount("strikes"))
	}
	// The first half of the run used the healthy unit; the second half the
	// software shadow: both paths must have seen real work.
	st := n.Stats()
	if st.ALPUPostedHits == 0 {
		t.Error("no ALPU hits before the death — scenario never exercised the unit")
	}
}

// TestBitFlipStormResyncsAndSurvives: a storm of transient cell
// corruption is detected by parity, surfaced as FAULT responses, and
// absorbed through resyncs — the run completes with every envelope
// matched, without (necessarily) killing the unit.
func TestBitFlipStormResyncsAndSurvives(t *testing.T) {
	cfg := nic.Config{
		UseALPU: true, Cells: 32,
		ALPUFaults: &alpu.FaultModel{Seed: 5, BitFlipProb: 0.02},
	}
	w := runPipeline(t, cfg, 96, 0)
	n := w.NICs[1]
	if n.FailoverCount("fault_responses") == 0 {
		t.Error("storm injected no observed FAULT responses; scenario idle")
	}
	if n.FailoverCount("resyncs") == 0 {
		t.Error("parity faults never triggered a resync")
	}
	if dev := n.PostedALPU(); dev.Stats().BitFlips == 0 {
		t.Error("device injected no bit flips")
	}
}

// TestResultDropsStrikeAndRecover: silently lost result-FIFO entries
// surface as response timeouts; the firmware strikes, resyncs, and the
// run still completes correctly.
func TestResultDropsStrikeAndRecover(t *testing.T) {
	cfg := nic.Config{
		UseALPU: true, Cells: 32,
		ALPUFaults: &alpu.FaultModel{Seed: 11, ResultDropProb: 0.05},
	}
	w := runPipeline(t, cfg, 96, 0)
	n := w.NICs[1]
	if dev := n.PostedALPU(); dev.Stats().DroppedResults == 0 {
		t.Skip("seed produced no drops at this rate; nothing to observe")
	}
	if n.FailoverCount("strikes") == 0 {
		t.Error("dropped results never struck")
	}
}

// TestFirmwareCrashRestarts: injected firmware crashes restart after the
// reboot delay and replay device state from the shadow queues; no queued
// packet or host request is lost across any crash.
func TestFirmwareCrashRestarts(t *testing.T) {
	cfg := nic.Config{
		UseALPU: true, Cells: 32,
		FwCrashProb: 0.03, FwCrashSeed: 7,
	}
	w := runPipeline(t, cfg, 96, 0)
	crashes, restarts := uint64(0), uint64(0)
	for _, n := range w.NICs {
		crashes += n.FailoverCount("fw_crashes")
		restarts += n.FailoverCount("fw_restarts")
	}
	if crashes == 0 {
		t.Fatal("crash injection idle over ~200 work items at 3%")
	}
	if crashes != restarts {
		t.Errorf("crashes=%d restarts=%d — a firmware died for good", crashes, restarts)
	}
}

// TestDeviceFaultDeterminism: the same device-fault seeds must reproduce
// the identical strike/resync/failover history, run to run.
func TestDeviceFaultDeterminism(t *testing.T) {
	run := func() [4]uint64 {
		cfg := nic.Config{
			UseALPU: true, Cells: 32,
			ALPUFaults:  &alpu.FaultModel{Seed: 9, BitFlipProb: 0.01, ResultDropProb: 0.02},
			FwCrashProb: 0.01, FwCrashSeed: 13,
		}
		w := runPipeline(t, cfg, 64, 0)
		n := w.NICs[1]
		return [4]uint64{
			n.FailoverCount("strikes"), n.FailoverCount("resyncs"),
			n.FailoverCount("deaths"), w.NICs[0].FailoverCount("fw_crashes") + n.FailoverCount("fw_crashes"),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seeds, different recovery history: %v vs %v", a, b)
	}
	if a[0] == 0 && a[3] == 0 {
		t.Fatalf("fault injection idle: %v", a)
	}
}
